// Checkpointing a federated run and warm-starting a new one from it.
//
// Trains MIDDLE for a while, saves the global model to disk, then builds a
// SECOND simulation (fresh devices, different mobility seed — e.g. "the
// next day's fleet") whose cloud/edges/devices all warm-start from the
// checkpoint, and shows the head start it gets over a cold start.
//
//   ./examples/checkpoint_resume
#include <cstdio>
#include <iostream>
#include <memory>

#include "middlefl.hpp"

using namespace middlefl;

namespace {

struct World {
  data::Dataset train;
  data::Dataset test;
  data::Partition partition;
  std::vector<std::size_t> homes;
  nn::ModelSpec spec;
  core::SimulationConfig cfg;
};

World make_world() {
  auto dcfg = data::task_config(data::TaskKind::kMnist, 0.5);
  dcfg.noise_std *= 1.5f;
  const data::SyntheticGenerator gen(dcfg);
  World world{
      .train = gen.generate(60, 1),
      .test = gen.generate(30, 2),
      .partition = {},
      .homes = {},
      .spec = {},
      .cfg = {},
  };
  world.partition =
      data::partition_major_class(world.train, 20, 80, 0.9, 7);
  world.homes =
      data::assign_edges_by_major_class(world.partition, 4, dcfg.num_classes);
  world.spec.arch = nn::ModelArch::kMlp2;
  world.spec.input_shape =
      tensor::Shape{dcfg.channels, dcfg.height, dcfg.width};
  world.spec.num_classes = dcfg.num_classes;
  world.spec.hidden = 48;
  world.cfg.select_per_edge = 3;
  world.cfg.local_steps = 5;
  world.cfg.cloud_interval = 10;
  world.cfg.batch_size = 8;
  world.cfg.total_steps = 80;
  world.cfg.eval_every = 20;
  world.cfg.seed = 42;
  return world;
}

core::Simulation make_sim(const World& world, std::uint64_t mobility_seed) {
  auto mobility = std::make_unique<mobility::MarkovMobility>(
      world.homes, 4, 0.5, mobility_seed);
  mobility->set_topology(mobility::MoveTopology::kHomeRing, 0.5);
  const optim::Sgd sgd({.learning_rate = 0.01, .momentum = 0.9});
  return core::Simulation(world.cfg, world.spec, sgd, world.train,
                          world.partition, world.test, std::move(mobility),
                          core::make_algorithm(core::Algorithm::kMiddle));
}

}  // namespace

int main() {
  const std::string checkpoint = "/tmp/middlefl_quickstart_checkpoint.bin";
  const World world = make_world();

  // Day 1: train and checkpoint the global model.
  auto day1 = make_sim(world, 8);
  const auto history1 = day1.run();
  {
    auto holder = nn::build_model(world.spec, 0);
    holder->set_parameters(
        std::vector<float>(day1.cloud_params().begin(),
                           day1.cloud_params().end()));
    nn::save_model_file(*holder, checkpoint);
  }
  std::cout << "day 1 final accuracy " << history1.final_accuracy()
            << "; checkpoint saved to " << checkpoint << "\n";

  // Day 2, cold start: a fresh fleet from scratch.
  auto cold = make_sim(world, 99);
  cold.step();  // one step so both runs have comparable bookkeeping
  const double cold_start_acc =
      cold.evaluator().evaluate(cold.cloud_params()).accuracy;

  // Day 2, warm start: load the checkpoint into cloud, edges and devices.
  auto warm = make_sim(world, 99);
  {
    auto holder = nn::build_model(world.spec, 0);
    nn::load_model_file(*holder, checkpoint);
    warm.warm_start(holder->parameters());  // cloud + edges + devices
    const double warm_acc =
        warm.evaluator().evaluate(warm.cloud_params()).accuracy;
    std::cout << "day 2 cold-start accuracy after 1 step: " << cold_start_acc
              << "\n"
              << "day 2 warm-start accuracy before any training: " << warm_acc
              << "\n";
    if (warm_acc <= cold_start_acc) {
      std::cout << "(unexpected: warm start not ahead)\n";
      return 1;
    }
  }
  std::remove(checkpoint.c_str());
  std::cout << "warm start inherits day 1's progress — checkpointing works "
               "end to end\n";
  return 0;
}
