// Running every algorithm the paper compares on one shared task and
// printing a side-by-side table — a miniature of the Figure-6 harness built
// purely on the public API.
//
//   ./examples/baseline_comparison
#include <iomanip>
#include <iostream>
#include <memory>

#include "core/simulation.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "mobility/markov_mobility.hpp"
#include "nn/model_factory.hpp"
#include "optim/sgd.hpp"

using namespace middlefl;

int main() {
  auto cfg = data::task_config(data::TaskKind::kMnist, 0.5);
  cfg.noise_std *= 1.5f;  // stretch the learning curve
  const data::SyntheticGenerator generator(cfg);
  const data::Dataset train = generator.generate(60, 1);
  const data::Dataset test = generator.generate(30, 2);

  const auto partition =
      data::partition_major_class(train, 30, 80, 0.9, 7);
  const auto initial =
      data::assign_edges_by_major_class(partition, 6, cfg.num_classes);

  nn::ModelSpec model;
  model.arch = nn::ModelArch::kMlp2;
  model.input_shape = tensor::Shape{cfg.channels, cfg.height, cfg.width};
  model.num_classes = cfg.num_classes;
  model.hidden = 48;
  const optim::Sgd sgd({.learning_rate = 0.005, .momentum = 0.9});

  core::SimulationConfig sim_cfg;
  sim_cfg.select_per_edge = 3;
  sim_cfg.local_steps = 5;
  sim_cfg.cloud_interval = 10;
  sim_cfg.batch_size = 8;
  sim_cfg.total_steps = 200;
  sim_cfg.eval_every = 10;
  sim_cfg.seed = 42;

  constexpr double kTarget = 0.6;
  std::cout << std::fixed << std::setprecision(3);
  std::cout << "algorithm   final  best   time-to-" << kTarget
            << "  on-device-aggs\n";
  for (const auto algorithm :
       {core::Algorithm::kMiddle, core::Algorithm::kOort,
        core::Algorithm::kFedMes, core::Algorithm::kGreedy,
        core::Algorithm::kEnsemble, core::Algorithm::kHierFavg}) {
    auto mobility = std::make_unique<mobility::MarkovMobility>(
        initial, 6, 0.5, 8);
    mobility->set_topology(mobility::MoveTopology::kHomeRing, 0.5);
    core::Simulation sim(sim_cfg, model, sgd, train, partition, test,
                         std::move(mobility),
                         core::make_algorithm(algorithm));
    const auto history = sim.run();
    const auto tta = history.time_to_accuracy(kTarget);
    std::cout << std::left << std::setw(10) << core::to_string(algorithm)
              << std::right << "  " << history.final_accuracy() << "  "
              << history.best_accuracy() << "  " << std::setw(10)
              << (tta ? std::to_string(*tta) : std::string("-")) << "  "
              << std::setw(10) << sim.on_device_aggregations() << "\n";
  }
  return 0;
}
