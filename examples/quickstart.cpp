// Quickstart: the smallest end-to-end MIDDLE run.
//
// Builds a synthetic 10-class image task, partitions it Non-IID over 20
// mobile devices in 4 edge regions, and trains a small model with the full
// MIDDLE pipeline (similarity-based in-edge device selection + on-device
// model aggregation on every edge crossing). Prints the global model's
// test accuracy as training progresses.
//
//   ./examples/quickstart
#include <iostream>
#include <memory>

#include "core/simulation.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "mobility/markov_mobility.hpp"
#include "nn/model_factory.hpp"
#include "optim/sgd.hpp"

using namespace middlefl;

int main() {
  // 1. Data: a procedural MNIST-like task (10 classes of 8x8 glyphs); in a
  //    real deployment this is each device's private data.
  auto cfg = data::task_config(data::TaskKind::kMnist, /*scale=*/0.5);
  const data::SyntheticGenerator generator(cfg);
  const data::Dataset train = generator.generate(/*per_class=*/60, /*salt=*/1);
  const data::Dataset test = generator.generate(/*per_class=*/30, /*salt=*/2);

  // 2. Non-IID partition: 20 devices, each with an 85% major class, grouped
  //    onto 4 edges by class so edge data is Non-IID too.
  const auto partition =
      data::partition_major_class(train, /*num_devices=*/20,
                                  /*samples_per_device=*/80,
                                  /*major_fraction=*/0.85, /*seed=*/7);
  const auto initial_edges =
      data::assign_edges_by_major_class(partition, /*num_edges=*/4,
                                        cfg.num_classes);

  // 3. Mobility: devices hop between edges with probability P = 0.5 per
  //    time step, drifting to neighbouring edges and returning home.
  auto mobility = std::make_unique<mobility::MarkovMobility>(
      initial_edges, /*num_edges=*/4, /*move_probability=*/0.5, /*seed=*/8);
  mobility->set_topology(mobility::MoveTopology::kHomeRing, 0.5);

  // 4. Model and local optimizer (every device gets a clone).
  nn::ModelSpec model;
  model.arch = nn::ModelArch::kMlp2;
  model.input_shape = tensor::Shape{cfg.channels, cfg.height, cfg.width};
  model.num_classes = cfg.num_classes;
  model.hidden = 48;
  const optim::Sgd sgd({.learning_rate = 0.01, .momentum = 0.9});

  // 5. The MIDDLE training loop (paper Algorithm 1).
  core::SimulationConfig sim_cfg;
  sim_cfg.select_per_edge = 3;   // K devices per edge per step
  sim_cfg.local_steps = 5;       // I local SGD steps
  sim_cfg.cloud_interval = 10;   // T_c steps between cloud syncs
  sim_cfg.batch_size = 8;
  sim_cfg.total_steps = 150;
  sim_cfg.eval_every = 10;
  sim_cfg.seed = 42;

  core::Simulation simulation(
      sim_cfg, model, sgd, train, partition, test, std::move(mobility),
      core::make_algorithm(core::Algorithm::kMiddle));

  std::cout << "Training MIDDLE on the synthetic MNIST-like task\n";
  const auto history = simulation.run([](const core::EvalPoint& point) {
    std::cout << "step " << point.step << "  accuracy " << point.accuracy
              << "  loss " << point.loss << "\n";
  });

  std::cout << "final accuracy: " << history.final_accuracy() << "\n"
            << "on-device aggregations performed: "
            << simulation.on_device_aggregations() << "\n";
  return 0;
}
