// Plugging a user-defined dataset and model into the framework.
//
// Shows the extension points a downstream user works with:
//   * build a Dataset sample-by-sample from any source (here: a hand-rolled
//     "two rings" 2-D toy problem, nothing from data/synthetic.hpp);
//   * assemble a custom architecture directly from layers instead of the
//     model factory;
//   * run any algorithm / mobility combination over it.
//
//   ./examples/custom_task
#include <cmath>
#include <iostream>
#include <memory>

#include "core/simulation.hpp"
#include "data/partition.hpp"
#include "mobility/markov_mobility.hpp"
#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "optim/adam.hpp"
#include "parallel/rng.hpp"

using namespace middlefl;

namespace {

/// Three concentric rings in the plane, one class per ring — a classic
/// not-linearly-separable toy.
data::Dataset make_rings(std::size_t per_class, std::uint64_t seed) {
  data::Dataset dataset(tensor::Shape{2}, /*num_classes=*/3);
  parallel::Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < per_class; ++i) {
    for (std::int32_t cls = 0; cls < 3; ++cls) {
      const double radius = 1.0 + cls + 0.15 * rng.normal();
      const double angle = rng.uniform() * 2.0 * 3.14159265358979;
      const float features[2] = {
          static_cast<float>(radius * std::cos(angle)),
          static_cast<float>(radius * std::sin(angle)),
      };
      dataset.add(features, cls);
    }
  }
  return dataset;
}

}  // namespace

int main() {
  const data::Dataset train = make_rings(200, 1);
  const data::Dataset test = make_rings(80, 2);

  // Non-IID: each device dominated by one ring.
  const auto partition = data::partition_major_class(
      train, /*num_devices=*/12, /*samples_per_device=*/100,
      /*major_fraction=*/0.9, /*seed=*/3);
  const auto edges =
      data::assign_edges_by_major_class(partition, /*num_edges=*/3, 3);

  // Custom architecture: the ModelSpec factory is bypassed entirely — any
  // Sequential works. Simulation only needs a spec for cloning, so we wrap
  // the handmade net in a ModelSpec-compatible description via the MLP
  // arch... or simpler, demonstrate the Sequential API directly first:
  nn::Sequential demo(tensor::Shape{2});
  demo.add(std::make_unique<nn::Linear>(2, 24));
  demo.add(std::make_unique<nn::Tanh>());
  demo.add(std::make_unique<nn::Linear>(24, 3));
  demo.build(/*seed=*/5);
  std::cout << "custom architecture: " << demo.summary() << "\n";

  // For the federated run itself we describe the same shape through
  // ModelSpec (the simulator clones one model per device).
  nn::ModelSpec spec;
  spec.arch = nn::ModelArch::kMlp;
  spec.input_shape = tensor::Shape{2};
  spec.num_classes = 3;
  spec.hidden = 24;

  auto mobility = std::make_unique<mobility::MarkovMobility>(
      edges, /*num_edges=*/3, /*move_probability=*/0.4, /*seed=*/6);
  mobility->set_topology(mobility::MoveTopology::kHomeRing, 0.5);

  // Adam on the devices, exactly as the paper does for its speech task.
  const optim::Adam adam({.learning_rate = 0.01});

  core::SimulationConfig cfg;
  cfg.select_per_edge = 2;
  cfg.local_steps = 5;
  cfg.cloud_interval = 5;
  cfg.batch_size = 16;
  cfg.total_steps = 100;
  cfg.eval_every = 20;
  cfg.seed = 9;

  core::Simulation sim(cfg, spec, adam, train, partition, test,
                       std::move(mobility),
                       core::make_algorithm(core::Algorithm::kMiddle));
  const auto history = sim.run([](const core::EvalPoint& point) {
    std::cout << "step " << point.step << "  accuracy " << point.accuracy
              << "\n";
  });

  std::cout << "final accuracy on the rings task: "
            << history.final_accuracy() << " (chance = 0.333)\n";
  return history.final_accuracy() > 0.5 ? 0 : 1;
}
