// Mobility substrate tour: the three Markov topologies, the 2-D
// random-waypoint model with nearest-edge association, speed calibration to
// a target global mobility P, and trace record/replay.
//
//   ./examples/mobility_patterns
#include <iomanip>
#include <iostream>
#include <sstream>

#include "mobility/markov_mobility.hpp"
#include "mobility/random_waypoint.hpp"
#include "mobility/trace.hpp"

using namespace middlefl::mobility;

namespace {

std::vector<std::size_t> round_robin(std::size_t devices, std::size_t edges) {
  std::vector<std::size_t> a(devices);
  for (std::size_t m = 0; m < devices; ++m) a[m] = m % edges;
  return a;
}

/// How quickly do edge populations mix? Measures, after `steps` steps, the
/// fraction of devices still connected to their initial edge.
double home_retention(MobilityModel& model, std::size_t steps) {
  model.reset();
  const auto initial = model.assignment();
  for (std::size_t t = 0; t < steps; ++t) model.advance();
  std::size_t at_home = 0;
  for (std::size_t m = 0; m < initial.size(); ++m) {
    if (model.assignment()[m] == initial[m]) ++at_home;
  }
  model.reset();
  return static_cast<double>(at_home) / static_cast<double>(initial.size());
}

}  // namespace

int main() {
  constexpr std::size_t kDevices = 100;
  constexpr std::size_t kEdges = 10;
  std::cout << std::fixed << std::setprecision(3);

  // --- Markov topologies -------------------------------------------------
  std::cout << "Markov edge-transition mobility, P = 0.5:\n";
  for (const auto [topology, name] :
       {std::pair{MoveTopology::kUniform, "uniform teleport"},
        std::pair{MoveTopology::kRing, "ring neighbour"},
        std::pair{MoveTopology::kHomeRing, "home-biased ring"}}) {
    MarkovMobility model(round_robin(kDevices, kEdges), kEdges, 0.5, 11);
    model.set_topology(topology, 0.5);
    std::cout << "  " << std::setw(17) << name
              << "  empirical P = " << measure_mobility(model, 300)
              << "  home retention after 50 steps = "
              << home_retention(model, 50) << "\n";
  }
  std::cout << "(uniform mixes populations into IID; home-biased keeps the\n"
               " geographic class correlation that makes edge data Non-IID)\n\n";

  // --- Random waypoint ----------------------------------------------------
  WaypointConfig wp;
  wp.num_devices = kDevices;
  wp.num_edges = kEdges;
  std::cout << "Random-waypoint mobility on a " << wp.width << " x "
            << wp.height << " plane:\n";
  RandomWaypointMobility raw(wp);
  std::cout << "  default speeds:    empirical P = "
            << measure_mobility(raw, 300) << "\n";

  const auto calibrated = calibrate_speed(wp, /*target_p=*/0.3);
  RandomWaypointMobility tuned(calibrated);
  std::cout << "  calibrated to 0.3: empirical P = "
            << measure_mobility(tuned, 300) << "  (speeds "
            << calibrated.speed_min << " - " << calibrated.speed_max
            << ")\n";

  // Nearest-edge association at work.
  const auto pos = tuned.device_position(0);
  const std::size_t edge = tuned.assignment()[0];
  const auto epos = tuned.edge_position(edge);
  std::cout << "  device 0 at (" << pos.x << ", " << pos.y
            << ") associates with edge " << edge << " at (" << epos.x << ", "
            << epos.y << ")\n\n";

  // --- Trace record / replay ----------------------------------------------
  std::cout << "Trace record/replay:\n";
  Trace trace = record_trace(tuned, /*steps=*/40);
  std::ostringstream buffer;
  trace.save(buffer);
  std::cout << "  recorded " << trace.num_steps() << " snapshots ("
            << buffer.str().size() << " bytes serialized)\n";

  std::istringstream reader(buffer.str());
  TraceMobility replay(Trace::load(reader));
  bool identical = true;
  tuned.reset();
  for (std::size_t t = 0; t < 40; ++t) {
    tuned.advance();
    replay.advance();
    identical = identical && tuned.assignment() == replay.assignment();
  }
  std::cout << "  replay matches live model step-for-step: "
            << (identical ? "yes" : "NO") << "\n";
  return identical ? 0 : 1;
}
