// Property tests for the packed micro-kernel GEMM (src/tensor/kernels/):
// value correctness against a naive double-accumulated reference across
// shapes that exercise partial MR/NR edge tiles and multi-Kc sweeps, exact
// fused-epilogue semantics (bias / ReLU / mask / row-sums bitwise equal to
// the unfused elementwise passes), and dispatch parity — every ISA tier the
// host supports must produce byte-identical output for the same input.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <random>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "tensor/blas.hpp"
#include "tensor/cpu_features.hpp"

namespace {

using middlefl::tensor::GemmEpilogue;
using middlefl::tensor::IsaLevel;
using middlefl::tensor::Trans;

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

/// Naive op(A)*op(B) with double accumulation — the correctness oracle.
std::vector<float> naive_gemm(Trans ta, Trans tb, std::size_t m,
                              std::size_t n, std::size_t k, float alpha,
                              const std::vector<float>& a,
                              const std::vector<float>& b, float beta,
                              const std::vector<float>& c_in) {
  std::vector<float> c = c_in;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        const float av = ta == Trans::kNo ? a[i * k + p] : a[p * m + i];
        const float bv = tb == Trans::kNo ? b[p * n + j] : b[j * k + p];
        acc += static_cast<double>(av) * bv;
      }
      c[i * n + j] =
          alpha * static_cast<float>(acc) + beta * c_in[i * n + j];
    }
  }
  return c;
}

/// Pins the GEMM dispatch to a level for the lifetime of the guard.
struct IsaGuard {
  explicit IsaGuard(IsaLevel level)
      : applied(middlefl::tensor::force_isa(level)) {}
  ~IsaGuard() { middlefl::tensor::clear_forced_isa(); }
  IsaGuard(const IsaGuard&) = delete;
  IsaGuard& operator=(const IsaGuard&) = delete;
  IsaLevel applied;
};

void check_against_naive(Trans ta, Trans tb, std::size_t m, std::size_t n,
                         std::size_t k, float alpha, float beta) {
  SCOPED_TRACE(::testing::Message()
               << "ta=" << (ta == Trans::kYes) << " tb="
               << (tb == Trans::kYes) << " m=" << m << " n=" << n
               << " k=" << k << " alpha=" << alpha << " beta=" << beta);
  const auto a = random_vec(m * k, 101 + m * 13 + k * 3);
  const auto b = random_vec(k * n, 202 + n * 17 + k * 5);
  const auto c0 = random_vec(m * n, 303 + m * 7 + n);
  const auto expected = naive_gemm(ta, tb, m, n, k, alpha, a, b, beta, c0);
  std::vector<float> c = c0;
  middlefl::tensor::gemm(ta, tb, m, n, k, alpha, a, b, beta, c);
  const double tol = 1e-4 * (1.0 + static_cast<double>(k) * 0.01);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], expected[i], tol) << "at flat index " << i;
  }
}

// Shapes chosen to hit every structural case of the packed kernels: exact
// multiples of the widest register tile (8 x 32), partial edge tiles in M
// and N, single rows/columns, n/k below the small-NT threshold, and k
// values that cross one and two Kc = 256 block boundaries.
struct ShapeCase {
  std::size_t m, n, k;
};
const ShapeCase kShapes[] = {
    {1, 1, 1},    {3, 5, 7},     {8, 32, 16},  {16, 64, 64},
    {6, 16, 8},   {13, 33, 21},  {17, 48, 19}, {9, 40, 257},
    {5, 17, 300}, {12, 70, 513}, {33, 10, 64}, {2, 100, 31},
};

TEST(GemmKernel, MatchesNaiveReferenceAllTransposes) {
  for (const auto& s : kShapes) {
    for (const Trans ta : {Trans::kNo, Trans::kYes}) {
      for (const Trans tb : {Trans::kNo, Trans::kYes}) {
        check_against_naive(ta, tb, s.m, s.n, s.k, 1.0f, 0.0f);
      }
    }
  }
}

TEST(GemmKernel, AlphaBetaVariants) {
  const float alphas[] = {1.0f, 0.5f, -2.0f};
  const float betas[] = {0.0f, 1.0f, -0.75f};
  for (const auto& s : {ShapeCase{13, 33, 21}, ShapeCase{9, 40, 257}}) {
    for (const float alpha : alphas) {
      for (const float beta : betas) {
        check_against_naive(Trans::kNo, Trans::kNo, s.m, s.n, s.k, alpha,
                            beta);
        check_against_naive(Trans::kYes, Trans::kNo, s.m, s.n, s.k, alpha,
                            beta);
      }
    }
  }
}

TEST(GemmKernel, KZeroScalesCAndAppliesEpilogue) {
  const std::size_t m = 7, n = 19;
  const auto c0 = random_vec(m * n, 42);
  const auto bias = random_vec(n, 43);

  std::vector<float> c = c0;
  GemmEpilogue epi;
  epi.col_bias = bias.data();
  epi.relu = true;
  middlefl::tensor::gemm(Trans::kNo, Trans::kNo, m, n, 0, 1.0f, {}, {},
                         0.5f, c, nullptr, &epi);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float want = 0.5f * c0[i * n + j];
      want += bias[j];
      want = want > 0.0f ? want : 0.0f;
      EXPECT_EQ(c[i * n + j], want) << "at (" << i << "," << j << ")";
    }
  }
}

/// Applies the documented epilogue steps elementwise to a plain GEMM
/// result — the reference the fused path must match bitwise.
void apply_epilogue_reference(const GemmEpilogue& epi, std::size_t m,
                              std::size_t n, std::vector<float>& c,
                              std::vector<std::uint8_t>* mask) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float v = c[i * n + j];
      if (epi.col_bias != nullptr) v += epi.col_bias[j];
      if (epi.row_bias != nullptr) v += epi.row_bias[i];
      if (epi.relu) v = v > 0.0f ? v : 0.0f;
      c[i * n + j] = v;
      if (mask != nullptr) (*mask)[i * n + j] = v > 0.0f ? 1 : 0;
    }
  }
}

void check_fused_epilogue_bitwise(Trans ta, Trans tb, std::size_t m,
                                  std::size_t n, std::size_t k) {
  SCOPED_TRACE(::testing::Message() << "ta=" << (ta == Trans::kYes)
                                    << " tb=" << (tb == Trans::kYes)
                                    << " m=" << m << " n=" << n
                                    << " k=" << k);
  const auto a = random_vec(m * k, 900 + m + k);
  const auto b = random_vec(k * n, 901 + n + k);
  const auto c0 = random_vec(m * n, 902 + m + n);
  const auto col_bias = random_vec(n, 903);
  const auto row_bias = random_vec(m, 904);

  // Unfused reference: plain gemm, then the elementwise passes.
  std::vector<float> ref = c0;
  middlefl::tensor::gemm(ta, tb, m, n, k, 1.0f, a, b, 1.0f, ref);
  GemmEpilogue epi;
  epi.col_bias = col_bias.data();
  epi.row_bias = row_bias.data();
  epi.relu = true;
  std::vector<std::uint8_t> ref_mask(m * n, 0);
  apply_epilogue_reference(epi, m, n, ref, &ref_mask);

  // Fused: one gemm call with the epilogue attached.
  std::vector<float> fused = c0;
  std::vector<std::uint8_t> fused_mask(m * n, 0xCC);
  epi.relu_mask = fused_mask.data();
  middlefl::tensor::gemm(ta, tb, m, n, k, 1.0f, a, b, 1.0f, fused, nullptr,
                         &epi);

  ASSERT_EQ(0, std::memcmp(ref.data(), fused.data(),
                           ref.size() * sizeof(float)))
      << "fused epilogue changed output bits";
  EXPECT_EQ(ref_mask, fused_mask);
}

TEST(GemmKernel, FusedEpilogueBitwiseEqualsUnfused) {
  // Packed-path shapes (n, k >= 16) and small-NT shapes (n < 16), plus a
  // Kc-crossing depth: the epilogue must behave identically on both paths.
  check_fused_epilogue_bitwise(Trans::kNo, Trans::kNo, 13, 33, 21);
  check_fused_epilogue_bitwise(Trans::kNo, Trans::kNo, 9, 40, 257);
  check_fused_epilogue_bitwise(Trans::kNo, Trans::kYes, 11, 10, 24);
  check_fused_epilogue_bitwise(Trans::kNo, Trans::kYes, 16, 48, 32);
  check_fused_epilogue_bitwise(Trans::kYes, Trans::kNo, 12, 20, 18);
}

TEST(GemmKernel, RowSumsAccumulateExactly) {
  for (const Trans ta : {Trans::kNo, Trans::kYes}) {
    for (const auto& s : {ShapeCase{13, 33, 21}, ShapeCase{9, 40, 257},
                          ShapeCase{11, 10, 24}}) {
      SCOPED_TRACE(::testing::Message() << "ta=" << (ta == Trans::kYes)
                                        << " m=" << s.m << " n=" << s.n
                                        << " k=" << s.k);
      const auto a = random_vec(s.m * s.k, 700 + s.m);
      const auto b = random_vec(s.k * s.n, 701 + s.n);
      std::vector<float> c(s.m * s.n, 0.0f);

      // The contract: row_sums[i] += sum_p op(A)[i,p], raw values (no
      // alpha), ascending p, float accumulation, exactly once per row.
      auto sums = random_vec(s.m, 702);  // nonzero start proves +=
      std::vector<float> want = sums;
      for (std::size_t i = 0; i < s.m; ++i) {
        float acc = want[i];
        for (std::size_t p = 0; p < s.k; ++p) {
          acc += ta == Trans::kNo ? a[i * s.k + p] : a[p * s.m + i];
        }
        want[i] = acc;
      }

      GemmEpilogue epi;
      epi.row_sums = sums.data();
      middlefl::tensor::gemm(ta, Trans::kNo, s.m, s.n, s.k, 2.0f, a, b,
                             0.0f, c, nullptr, &epi);
      ASSERT_EQ(0, std::memcmp(want.data(), sums.data(),
                               want.size() * sizeof(float)));
    }
  }
}

TEST(GemmKernel, RowSumsOnSmallNtPath) {
  // n < 16 routes through the legacy dot-form NT kernel; its scalar
  // row-sums helper must obey the same contract as the packed path.
  const std::size_t m = 9, n = 10, k = 24;
  const auto a = random_vec(m * k, 750);
  const auto b = random_vec(n * k, 751);
  std::vector<float> c(m * n, 0.0f);

  auto sums = random_vec(m, 752);
  std::vector<float> want = sums;
  for (std::size_t i = 0; i < m; ++i) {
    float acc = want[i];
    for (std::size_t p = 0; p < k; ++p) acc += a[i * k + p];
    want[i] = acc;
  }

  GemmEpilogue epi;
  epi.row_sums = sums.data();
  middlefl::tensor::gemm(Trans::kNo, Trans::kYes, m, n, k, 1.0f, a, b, 0.0f,
                         c, nullptr, &epi);
  ASSERT_EQ(0,
            std::memcmp(want.data(), sums.data(), m * sizeof(float)));
}

TEST(GemmKernel, RowSumsExactlyOnceWithThreadPool) {
  // Parallel row splits must not double-count: A is packed once per row
  // regardless of how many chunks the pool runs.
  const std::size_t m = 64, n = 48, k = 512;  // big enough to parallelize
  const auto a = random_vec(m * k, 800);
  const auto b = random_vec(k * n, 801);

  std::vector<float> c_serial(m * n, 0.0f);
  std::vector<float> sums_serial(m, 1.0f);
  GemmEpilogue epi;
  epi.row_sums = sums_serial.data();
  middlefl::tensor::gemm(Trans::kNo, Trans::kNo, m, n, k, 1.0f, a, b, 0.0f,
                         c_serial, nullptr, &epi);

  middlefl::parallel::ThreadPool pool(4);
  std::vector<float> c_par(m * n, 0.0f);
  std::vector<float> sums_par(m, 1.0f);
  epi.row_sums = sums_par.data();
  middlefl::tensor::gemm(Trans::kNo, Trans::kNo, m, n, k, 1.0f, a, b, 0.0f,
                         c_par, &pool, &epi);

  ASSERT_EQ(0, std::memcmp(sums_serial.data(), sums_par.data(),
                           m * sizeof(float)));
  ASSERT_EQ(0, std::memcmp(c_serial.data(), c_par.data(),
                           m * n * sizeof(float)));
}

// Dispatch parity: the same inputs through every ISA tier this host
// supports must produce byte-identical C (and mask). This is the
// determinism contract the golden-run fingerprints rely on — a portable
// binary's output cannot depend on which CPU it lands on.
TEST(GemmKernel, DispatchParityAcrossIsaTiers) {
  const IsaLevel detected = middlefl::tensor::detected_isa();

  for (const auto& s : kShapes) {
    for (const Trans ta : {Trans::kNo, Trans::kYes}) {
      const auto a = random_vec(s.m * s.k, 500 + s.m + s.k);
      const auto b = random_vec(s.k * s.n, 501 + s.n + s.k);
      const auto c0 = random_vec(s.m * s.n, 502 + s.m + s.n);
      const auto bias = random_vec(s.n, 503);

      GemmEpilogue epi;
      epi.col_bias = bias.data();
      epi.relu = true;

      // Baseline: forced scalar.
      std::vector<float> c_scalar = c0;
      std::vector<std::uint8_t> mask_scalar(s.m * s.n, 0);
      {
        IsaGuard guard(IsaLevel::kScalar);
        ASSERT_EQ(guard.applied, IsaLevel::kScalar);
        epi.relu_mask = mask_scalar.data();
        middlefl::tensor::gemm(ta, Trans::kNo, s.m, s.n, s.k, 1.0f, a, b,
                               0.5f, c_scalar, nullptr, &epi);
      }

      for (const IsaLevel level : {IsaLevel::kAvx2, IsaLevel::kAvx512}) {
        if (static_cast<int>(level) > static_cast<int>(detected)) continue;
        SCOPED_TRACE(::testing::Message()
                     << "isa=" << middlefl::tensor::to_string(level)
                     << " ta=" << (ta == Trans::kYes) << " m=" << s.m
                     << " n=" << s.n << " k=" << s.k);
        std::vector<float> c_simd = c0;
        std::vector<std::uint8_t> mask_simd(s.m * s.n, 0);
        IsaGuard guard(level);
        ASSERT_EQ(guard.applied, level);
        epi.relu_mask = mask_simd.data();
        middlefl::tensor::gemm(ta, Trans::kNo, s.m, s.n, s.k, 1.0f, a, b,
                               0.5f, c_simd, nullptr, &epi);
        ASSERT_EQ(0, std::memcmp(c_scalar.data(), c_simd.data(),
                                 c_scalar.size() * sizeof(float)))
            << "ISA tier changed output bits";
        ASSERT_EQ(mask_scalar, mask_simd);
      }
    }
  }
}

TEST(GemmKernel, ForceIsaClampsToDetected) {
  const IsaLevel detected = middlefl::tensor::detected_isa();
  IsaGuard guard(IsaLevel::kAvx512);
  EXPECT_LE(static_cast<int>(guard.applied), static_cast<int>(detected));
  EXPECT_EQ(middlefl::tensor::active_isa(), guard.applied);
}

TEST(GemmKernel, IsaStringRoundTrip) {
  using middlefl::tensor::isa_from_string;
  using middlefl::tensor::to_string;
  for (const IsaLevel level :
       {IsaLevel::kScalar, IsaLevel::kAvx2, IsaLevel::kAvx512}) {
    const auto parsed = isa_from_string(to_string(level));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, level);
  }
  EXPECT_FALSE(isa_from_string("sse9").has_value());
}

}  // namespace
