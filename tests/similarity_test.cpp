#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/similarity.hpp"

namespace {

using middlefl::core::accumulated_update;
using middlefl::core::cosine_similarity;
using middlefl::core::on_device_aggregate;
using middlefl::core::on_device_aggregate_fixed;
using middlefl::core::selection_utility;
using middlefl::core::similarity_utility;

TEST(Cosine, IdenticalVectorsGiveOne) {
  const std::vector<float> v{1, 2, 3};
  EXPECT_NEAR(cosine_similarity(v, v), 1.0, 1e-9);
}

TEST(Cosine, OppositeVectorsGiveMinusOne) {
  const std::vector<float> a{1, 2, 3};
  const std::vector<float> b{-1, -2, -3};
  EXPECT_NEAR(cosine_similarity(a, b), -1.0, 1e-9);
}

TEST(Cosine, OrthogonalVectorsGiveZero) {
  const std::vector<float> a{1, 0};
  const std::vector<float> b{0, 1};
  EXPECT_NEAR(cosine_similarity(a, b), 0.0, 1e-9);
}

TEST(Cosine, ScaleInvariant) {
  const std::vector<float> a{1, 2, 3};
  const std::vector<float> b{0.5f, -1, 2};
  std::vector<float> b_scaled(b);
  for (float& x : b_scaled) x *= 7.0f;
  EXPECT_NEAR(cosine_similarity(a, b), cosine_similarity(a, b_scaled), 1e-6);
}

TEST(Cosine, ZeroVectorGivesZero) {
  const std::vector<float> z{0, 0, 0};
  const std::vector<float> v{1, 2, 3};
  EXPECT_EQ(cosine_similarity(z, v), 0.0);
  EXPECT_EQ(cosine_similarity(v, z), 0.0);
}

TEST(Cosine, SizeMismatchThrows) {
  const std::vector<float> a{1, 2};
  const std::vector<float> b{1, 2, 3};
  EXPECT_THROW(cosine_similarity(a, b), std::invalid_argument);
}

TEST(SimilarityUtility, ClampsNegativeToZero) {
  // Eq. 8: U = max(cos, 0) — anti-aligned models contribute nothing.
  const std::vector<float> a{1, 0};
  const std::vector<float> b{-1, 0};
  EXPECT_EQ(similarity_utility(a, b), 0.0);
  const std::vector<float> c{1, 1};
  EXPECT_NEAR(similarity_utility(a, c), 1.0 / std::sqrt(2.0), 1e-6);
}

TEST(OnDeviceAggregate, WeightsFollowEq9) {
  // With U = 1 (identical direction): w_hat = 1/2 w_n + 1/2 w_m.
  const std::vector<float> edge{2, 2};
  const std::vector<float> local{4, 4};
  std::vector<float> out(2);
  const double local_weight = on_device_aggregate(edge, local, out);
  EXPECT_NEAR(local_weight, 0.5, 1e-9);
  EXPECT_NEAR(out[0], 3.0f, 1e-5);
}

TEST(OnDeviceAggregate, AntiAlignedLocalIsIgnored) {
  // U = 0 -> w_hat = w_n exactly: the noisy carried model is dropped.
  const std::vector<float> edge{1, 0};
  const std::vector<float> local{-5, 0};
  std::vector<float> out(2);
  const double local_weight = on_device_aggregate(edge, local, out);
  EXPECT_EQ(local_weight, 0.0);
  EXPECT_FLOAT_EQ(out[0], 1.0f);
  EXPECT_FLOAT_EQ(out[1], 0.0f);
}

TEST(OnDeviceAggregate, EdgeModelAlwaysDominates) {
  // 1/(1+U) >= U/(1+U) for U in [0, 1]: the edge weight never drops below
  // one half (the paper: "still dominated by the current edge model").
  const std::vector<float> edge{1, 2, 3, 4};
  const std::vector<float> local{1.5f, 2.5f, 2.5f, 4.5f};
  std::vector<float> out(4);
  const double local_weight = on_device_aggregate(edge, local, out);
  EXPECT_LE(local_weight, 0.5 + 1e-12);
  EXPECT_GE(local_weight, 0.0);
}

TEST(OnDeviceAggregate, OutputBetweenInputs) {
  const std::vector<float> edge{0, 0};
  const std::vector<float> local{2, 2};
  std::vector<float> out(2);
  on_device_aggregate(edge, local, out);
  EXPECT_GE(out[0], 0.0f);
  EXPECT_LE(out[0], 2.0f);
}

TEST(OnDeviceAggregate, SizeMismatchThrows) {
  const std::vector<float> a{1, 2};
  const std::vector<float> b{1, 2, 3};
  std::vector<float> out(2);
  EXPECT_THROW(on_device_aggregate(a, b, out), std::invalid_argument);
}

TEST(FixedAlphaAggregate, ExactConvexCombination) {
  const std::vector<float> edge{10, 0};
  const std::vector<float> local{0, 10};
  std::vector<float> out(2);
  on_device_aggregate_fixed(edge, local, 0.25, out);
  EXPECT_FLOAT_EQ(out[0], 2.5f);
  EXPECT_FLOAT_EQ(out[1], 7.5f);
}

TEST(FixedAlphaAggregate, RejectsBoundaryAlpha) {
  const std::vector<float> v{1};
  std::vector<float> out(1);
  EXPECT_THROW(on_device_aggregate_fixed(v, v, 0.0, out),
               std::invalid_argument);
  EXPECT_THROW(on_device_aggregate_fixed(v, v, 1.0, out),
               std::invalid_argument);
}

TEST(AccumulatedUpdate, ComputesDelta) {
  const std::vector<float> local{3, 5};
  const std::vector<float> cloud{1, 2};
  const auto delta = accumulated_update(local, cloud);
  EXPECT_FLOAT_EQ(delta[0], 2.0f);
  EXPECT_FLOAT_EQ(delta[1], 3.0f);
}

TEST(SelectionUtility, ZeroForUntrainedDevice) {
  // local == cloud -> delta == 0 -> U = 0.
  const std::vector<float> cloud{1, 2, 3};
  EXPECT_EQ(selection_utility(cloud, cloud), 0.0);
}

TEST(SelectionUtility, HigherForAlignedUpdates) {
  const std::vector<float> cloud{1, 0};
  const std::vector<float> aligned{2, 0};     // delta = (1, 0), cos = 1
  const std::vector<float> orthogonal{1, 1};  // delta = (0, 1), cos = 0
  EXPECT_GT(selection_utility(cloud, aligned),
            selection_utility(cloud, orthogonal));
}

TEST(SelectionUtility, NegativeSimilarityClamped) {
  const std::vector<float> cloud{1, 0};
  const std::vector<float> opposed{0, 0};  // delta = (-1, 0), cos = -1
  EXPECT_EQ(selection_utility(cloud, opposed), 0.0);
}

}  // namespace
