#include <gtest/gtest.h>

#include <sstream>

#include "nn/model_factory.hpp"
#include "nn/serialize.hpp"

namespace {

using middlefl::nn::architecture_fingerprint;
using middlefl::nn::build_model;
using middlefl::nn::load_model;
using middlefl::nn::ModelArch;
using middlefl::nn::ModelSpec;
using middlefl::nn::save_model;
using middlefl::tensor::Shape;

ModelSpec small_spec() {
  ModelSpec spec;
  spec.arch = ModelArch::kMlp;
  spec.input_shape = Shape{6};
  spec.num_classes = 3;
  spec.hidden = 8;
  return spec;
}

TEST(Serialize, RoundTripPreservesEveryParameter) {
  auto source = build_model(small_spec(), 11);
  std::stringstream buffer;
  save_model(*source, buffer);

  auto target = build_model(small_spec(), 99);  // different init
  load_model(*target, buffer);
  ASSERT_EQ(target->param_count(), source->param_count());
  for (std::size_t i = 0; i < source->param_count(); ++i) {
    EXPECT_EQ(target->parameters()[i], source->parameters()[i]);
  }
}

TEST(Serialize, FingerprintStableAcrossInits) {
  auto a = build_model(small_spec(), 1);
  auto b = build_model(small_spec(), 2);
  EXPECT_EQ(architecture_fingerprint(*a), architecture_fingerprint(*b));
}

TEST(Serialize, FingerprintDiffersAcrossArchitectures) {
  auto mlp = build_model(small_spec(), 1);
  auto spec = small_spec();
  spec.hidden = 16;
  auto wider = build_model(spec, 1);
  EXPECT_NE(architecture_fingerprint(*mlp), architecture_fingerprint(*wider));
}

TEST(Serialize, RejectsArchitectureMismatch) {
  auto source = build_model(small_spec(), 11);
  std::stringstream buffer;
  save_model(*source, buffer);

  // Same parameter count, different structure: swap hidden sizes so
  // 6->8->3 becomes... easiest is a logistic model with padded features; a
  // cleaner guaranteed-same-count twin is hard to build, so check that a
  // mismatched count ALSO fails with a clear error first:
  auto spec = small_spec();
  spec.hidden = 9;
  auto different = build_model(spec, 11);
  EXPECT_THROW(load_model(*different, buffer), std::runtime_error);
}

TEST(Serialize, RejectsGarbageAndTruncation) {
  auto model = build_model(small_spec(), 11);
  std::stringstream garbage("not a checkpoint\n");
  EXPECT_THROW(load_model(*model, garbage), std::runtime_error);

  std::stringstream truncated;
  save_model(*model, truncated);
  std::string text = truncated.str();
  text.resize(text.size() / 2);
  std::stringstream half(text);
  EXPECT_THROW(load_model(*model, half), std::runtime_error);

  std::stringstream empty;
  EXPECT_THROW(load_model(*model, empty), std::runtime_error);
}

TEST(Serialize, FileRoundTrip) {
  const std::string path = "/tmp/middlefl_serialize_test.bin";
  auto source = build_model(small_spec(), 21);
  middlefl::nn::save_model_file(*source, path);
  auto target = build_model(small_spec(), 22);
  middlefl::nn::load_model_file(*target, path);
  for (std::size_t i = 0; i < source->param_count(); ++i) {
    EXPECT_EQ(target->parameters()[i], source->parameters()[i]);
  }
  EXPECT_THROW(
      middlefl::nn::load_model_file(*target, "/nonexistent/dir/x.bin"),
      std::runtime_error);
}

TEST(Serialize, UnbuiltModelRejected) {
  middlefl::nn::Sequential model(Shape{4});
  std::stringstream buffer;
  EXPECT_THROW(save_model(model, buffer), std::invalid_argument);
  EXPECT_THROW(load_model(model, buffer), std::invalid_argument);
}

}  // namespace
