// Convergence sanity sweep across every model architecture the factory
// builds: each must learn an easy centralized 3-class task well above
// chance. This guards the full forward/backward path of every layer
// combination (including conv stacks) end to end, not just per-layer
// gradients.
#include <gtest/gtest.h>

#include "data/sampler.hpp"
#include "data/synthetic.hpp"
#include "nn/loss.hpp"
#include "nn/model_factory.hpp"
#include "optim/sgd.hpp"

namespace {

using middlefl::nn::ModelArch;

class ArchConvergence : public ::testing::TestWithParam<ModelArch> {};

TEST_P(ArchConvergence, LearnsEasyTaskAboveChance) {
  middlefl::data::SyntheticConfig cfg;
  cfg.num_classes = 3;
  cfg.channels = 1;
  cfg.height = 8;
  cfg.width = 8;
  cfg.noise_std = 0.15f;
  cfg.deform = 0;
  const middlefl::data::SyntheticGenerator generator(cfg);
  const auto train = generator.generate(40, 1);
  const auto test = generator.generate(20, 2);

  middlefl::nn::ModelSpec spec;
  spec.arch = GetParam();
  spec.input_shape = middlefl::tensor::Shape{1, 8, 8};
  spec.num_classes = 3;
  spec.hidden = 24;
  spec.base_channels = 4;
  auto model = middlefl::nn::build_model(spec, 7);

  middlefl::optim::Sgd sgd({.learning_rate = 0.02, .momentum = 0.9});
  middlefl::parallel::Xoshiro256 rng(8);
  const auto view = middlefl::data::DataView::all(train);
  const int steps = spec.arch == ModelArch::kLogistic ? 400 : 250;
  for (int i = 0; i < steps; ++i) {
    const auto batch = middlefl::data::sample_minibatch(view, 16, rng);
    const auto& logits = model->forward(batch.features, true);
    auto loss = middlefl::nn::softmax_cross_entropy(logits, batch.labels);
    ASSERT_TRUE(std::isfinite(loss.loss)) << "diverged at step " << i;
    model->zero_grad();
    model->backward(loss.grad_logits);
    sgd.step(model->parameters(), model->gradients());
  }

  const auto tview = middlefl::data::DataView::all(test);
  const auto features = tview.all_features();
  const auto labels = tview.all_labels();
  const auto& logits = model->forward(features, false);
  const double accuracy =
      static_cast<double>(middlefl::nn::count_correct(logits, labels)) /
      static_cast<double>(labels.size());
  EXPECT_GT(accuracy, 0.75) << middlefl::nn::to_string(spec.arch)
                            << " failed to learn (chance = 0.33)";
}

INSTANTIATE_TEST_SUITE_P(
    AllArchitectures, ArchConvergence,
    ::testing::Values(ModelArch::kLogistic, ModelArch::kMlp,
                      ModelArch::kMlp2, ModelArch::kCnn2, ModelArch::kCnn3),
    [](const ::testing::TestParamInfo<ModelArch>& info) {
      return middlefl::nn::to_string(info.param);
    });

}  // namespace
