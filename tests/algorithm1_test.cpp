// Pinning the exact semantics of Algorithm 1 that are easy to get subtly
// wrong: (i) Eq. 6's d_m-weighted edge aggregation, (ii) Eq. 7's
// participating-sample cloud weights, (iii) the on-move rule firing ONLY
// for devices that entered the edge THIS step (line 4 reads M^{t-1}_n, the
// connected set, not the selected set).
#include <gtest/gtest.h>

#include "mobility/trace.hpp"
#include "sim_fixture.hpp"

namespace {

using middlefl::core::Algorithm;
using middlefl::testing::SimBundle;

/// Test-only strategy: returns a scripted selection per call, intersected
/// with the actual candidate set.
class ScriptedSelection final : public middlefl::core::SelectionStrategy {
 public:
  explicit ScriptedSelection(std::vector<std::size_t> allowed)
      : allowed_(std::move(allowed)) {}

  std::string name() const override { return "scripted"; }

  std::vector<std::size_t> select(
      std::span<const middlefl::core::Candidate> candidates,
      std::span<const float> /*cloud*/, std::size_t k,
      middlefl::parallel::Xoshiro256& /*rng*/,
      const middlefl::core::SelectionContext& /*context*/) const override {
    std::vector<std::size_t> picked;
    for (const auto& c : candidates) {
      if (std::find(allowed_.begin(), allowed_.end(), c.device_id) !=
          allowed_.end()) {
        picked.push_back(c.device_id);
        if (picked.size() == k) break;
      }
    }
    return picked;
  }

 private:
  std::vector<std::size_t> allowed_;
};

/// Two devices on one edge with very different d_m; after one step the
/// edge model must be the d_m-weighted average of the two uploads (Eq. 6).
TEST(Algorithm1, EdgeAggregationWeightsByDataSize) {
  SimBundle bundle;  // base datasets reused; partition rebuilt below
  middlefl::data::Partition partition;
  partition.device_indices.resize(2);
  partition.major_class = {0, 1};
  // Device 0: 9x the data of device 1.
  for (std::size_t i = 0; i < 90; ++i) {
    partition.device_indices[0].push_back(i % bundle.train.size());
  }
  for (std::size_t i = 0; i < 10; ++i) {
    partition.device_indices[1].push_back((200 + i) % bundle.train.size());
  }

  middlefl::mobility::Trace trace(2, 1);
  for (int t = 0; t <= 4; ++t) trace.append({0, 0});

  auto cfg = bundle.cfg;
  cfg.select_per_edge = 2;
  cfg.cloud_interval = 100;
  const middlefl::optim::Sgd sgd({.learning_rate = 0.05, .momentum = 0.9});
  middlefl::core::AlgorithmSpec spec;
  spec.name = "scripted";
  spec.selection = std::make_unique<ScriptedSelection>(
      std::vector<std::size_t>{0, 1});
  spec.on_move = middlefl::core::OnDeviceRule::kDownloadEdge;

  middlefl::core::Simulation sim(
      cfg, bundle.model_spec, sgd, bundle.train, partition, bundle.test,
      std::make_unique<middlefl::mobility::TraceMobility>(trace),
      std::move(spec));
  sim.step();

  // Uploads == device params after the step (no broadcast happened).
  const auto w0 = sim.device(0).params();
  const auto w1 = sim.device(1).params();
  const auto edge = sim.edge_params(0);
  for (std::size_t i = 0; i < edge.size(); ++i) {
    const double expected = (90.0 * w0[i] + 10.0 * w1[i]) / 100.0;
    ASSERT_NEAR(edge[i], expected, 1e-5) << "param " << i;
  }
}

/// Two edges with wildly different participating sample counts; with
/// Eq. 7's weights the cloud lands near the heavy edge's model, with
/// uniform weights at the midpoint.
TEST(Algorithm1, CloudAggregationUsesParticipatingSampleWeights) {
  SimBundle bundle;
  middlefl::data::Partition partition;
  partition.device_indices.resize(2);
  partition.major_class = {0, 1};
  for (std::size_t i = 0; i < 500; ++i) {
    partition.device_indices[0].push_back(i % bundle.train.size());
  }
  partition.device_indices[1].push_back(7);  // d = 1

  const auto run_with = [&](bool weighted) {
    middlefl::mobility::Trace trace(2, 2);
    for (int t = 0; t <= 2; ++t) trace.append({0, 1});
    auto cfg = bundle.cfg;
    cfg.select_per_edge = 1;
    cfg.cloud_interval = 1;          // sync every step
    cfg.broadcast_to_devices = false;  // keep uploads readable
    cfg.weighted_cloud_aggregation = weighted;
    const middlefl::optim::Sgd sgd({.learning_rate = 0.05, .momentum = 0.9});
    middlefl::core::AlgorithmSpec spec;
    spec.name = "scripted";
    spec.selection = std::make_unique<ScriptedSelection>(
        std::vector<std::size_t>{0, 1});
    auto sim = std::make_unique<middlefl::core::Simulation>(
        cfg, bundle.model_spec, sgd, bundle.train, partition, bundle.test,
        std::make_unique<middlefl::mobility::TraceMobility>(trace),
        std::move(spec));
    sim->step();
    return sim;
  };

  const auto weighted = run_with(true);
  const auto w0 = weighted->device(0).params();  // edge 0's upload
  const auto w1 = weighted->device(1).params();  // edge 1's upload
  const auto cloud_weighted = weighted->cloud_params();
  for (std::size_t i = 0; i < cloud_weighted.size(); ++i) {
    const double expected = (500.0 * w0[i] + 1.0 * w1[i]) / 501.0;
    ASSERT_NEAR(cloud_weighted[i], expected, 1e-5) << "param " << i;
  }

  const auto uniform = run_with(false);
  const auto u0 = uniform->device(0).params();
  const auto u1 = uniform->device(1).params();
  const auto cloud_uniform = uniform->cloud_params();
  for (std::size_t i = 0; i < cloud_uniform.size(); ++i) {
    const double expected = 0.5 * (u0[i] + u1[i]);
    ASSERT_NEAR(cloud_uniform[i], expected, 1e-5) << "param " << i;
  }
}

/// A device that moved at step 2 but is first SELECTED at step 3 must NOT
/// blend: by then it is already in M^{t-1}_n (Algorithm 1, line 4 checks
/// connection, not participation).
TEST(Algorithm1, BlendFiresOnlyOnArrivalStep) {
  SimBundle bundle;
  const std::size_t devices = bundle.partition.num_devices();

  // Device 0 moves from edge 0 to edge 1 at step 2 and stays.
  middlefl::mobility::Trace trace(devices, 3);
  for (std::size_t t = 0; t <= 6; ++t) {
    std::vector<std::size_t> assignment(devices);
    for (std::size_t m = 0; m < devices; ++m) {
      assignment[m] = bundle.initial_edges[m];
    }
    assignment[0] = t >= 2 ? 1 : 0;
    trace.append(assignment);
  }

  const auto run_selecting_device0_at = [&](std::size_t select_step) {
    auto cfg = bundle.cfg;
    cfg.cloud_interval = 100;
    const middlefl::optim::Sgd sgd({.learning_rate = 0.05, .momentum = 0.9});
    middlefl::core::AlgorithmSpec spec;
    spec.name = "scripted";
    // Select ONLY device 0, and only from `select_step` on (before that,
    // scripted selection picks nothing so nothing trains anywhere).
    spec.selection = std::make_unique<ScriptedSelection>(
        std::vector<std::size_t>{0});
    spec.on_move = middlefl::core::OnDeviceRule::kSimilarityBlend;
    middlefl::core::Simulation sim(
        cfg, bundle.model_spec, sgd, bundle.train, bundle.partition,
        bundle.test,
        std::make_unique<middlefl::mobility::TraceMobility>(trace),
        std::move(spec));
    // Give device 0 a distinct local model so a blend would be observable.
    std::vector<float> marked(sim.device(0).params().begin(),
                              sim.device(0).params().end());
    for (float& p : marked) p += 0.1f;
    sim.device(0).set_params(marked);
    for (std::size_t t = 1; t < select_step; ++t) sim.step();
    sim.step();  // the step where device 0 trains
    return sim.on_device_aggregations();
  };

  // Selected exactly at the arrival step (2): one blend.
  EXPECT_EQ(run_selecting_device0_at(2), 1u);
  // Device 0 is selected at every step 1..3 under this script; it arrives
  // at step 2 (blend) and stays at step 3 (no blend): still exactly one.
  EXPECT_EQ(run_selecting_device0_at(3), 1u);
}

}  // namespace
