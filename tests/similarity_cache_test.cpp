// Fused Eq. 11 kernel vs the materialize-Delta reference, and the
// version-keyed SimilarityCache: hit/miss semantics, invalidation on
// device/cloud mutation, and end-to-end equivalence of cache on vs off.
#include <gtest/gtest.h>

#include <cstddef>
#include <random>
#include <vector>

#include "core/similarity.hpp"
#include "core/similarity_cache.hpp"
#include "sim_fixture.hpp"

namespace {

using middlefl::core::Algorithm;
using middlefl::core::SimilarityCache;
using middlefl::testing::SimBundle;

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

TEST(FusedSelectionUtility, MatchesMaterializedReference) {
  for (const std::size_t n :
       {std::size_t{1}, std::size_t{5}, std::size_t{1023},
        std::size_t{4099}, std::size_t{65536}}) {
    const auto cloud = random_vec(n, 100 + n);
    auto local = random_vec(n, 200 + n);
    // Bias local toward cloud so the delta has a nonzero cosine.
    for (std::size_t i = 0; i < n; ++i) local[i] += 0.3f * cloud[i];
    const double fused = middlefl::core::selection_utility(cloud, local);
    const double ref =
        middlefl::core::selection_utility_reference(cloud, local);
    EXPECT_NEAR(fused, ref, 1e-9) << "n=" << n;
    EXPECT_GE(fused, 0.0);
    EXPECT_LE(fused, 1.0);
  }
}

TEST(FusedSelectionUtility, DegenerateInputsReturnZero) {
  const std::vector<float> zeros(64, 0.0f);
  const auto v = random_vec(64, 1);
  // Zero cloud model and zero delta (local == cloud) are both defined as 0.
  EXPECT_EQ(middlefl::core::selection_utility(zeros, v), 0.0);
  EXPECT_EQ(middlefl::core::selection_utility(v, v), 0.0);
}

TEST(SimilarityCache, MissThenHitThenInvalidate) {
  SimilarityCache cache;
  cache.resize(4);
  EXPECT_FALSE(cache.lookup(2, 5, 9).has_value());
  EXPECT_EQ(cache.misses(), 1u);

  cache.store(2, 5, 9, 0.75);
  const auto hit = cache.lookup(2, 5, 9);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 0.75);
  EXPECT_EQ(cache.hits(), 1u);

  // Device trained (version 5 -> 6): the entry no longer applies.
  EXPECT_FALSE(cache.lookup(2, 6, 9).has_value());
  // Cloud synchronized (version 9 -> 10): likewise.
  EXPECT_FALSE(cache.lookup(2, 5, 10).has_value());
  // The original pair still hits — entries are keyed, not timestamped.
  EXPECT_TRUE(cache.lookup(2, 5, 9).has_value());
}

TEST(SimilarityCache, ClearAndOutOfRange) {
  SimilarityCache cache;
  cache.resize(2);
  cache.store(1, 1, 1, 0.5);
  EXPECT_TRUE(cache.lookup(1, 1, 1).has_value());
  cache.clear();
  EXPECT_FALSE(cache.lookup(1, 1, 1).has_value());
  // Lookups past the sized range are misses, not UB.
  EXPECT_FALSE(cache.lookup(99, 0, 0).has_value());
}

TEST(SimilarityCache, DeviceMutationsBumpVersion) {
  SimBundle bundle;
  auto sim = bundle.make(Algorithm::kMiddle);
  auto& dev = sim->device(0);
  const auto v0 = dev.params_version();
  const std::vector<float> params(dev.params().begin(), dev.params().end());
  dev.set_params(params);
  EXPECT_GT(dev.params_version(), v0);
}

TEST(SimilarityCache, SimulationHitsAfterWarmup) {
  SimBundle bundle;
  bundle.cfg.cloud_interval = 10;  // no sync within the window
  auto sim = bundle.make(Algorithm::kMiddle);
  for (int i = 0; i < 4; ++i) sim->step();
  // Unselected devices keep their parameter version across steps, so their
  // scores must start hitting the cache from the second step on.
  EXPECT_GT(sim->similarity_cache().hits(), 0u);
  EXPECT_GT(sim->similarity_cache().misses(), 0u);
}

TEST(SimilarityCache, CacheOnOffRunsAreBitwiseIdentical) {
  SimBundle bundle;
  bundle.cfg.total_steps = 8;
  bundle.cfg.cloud_interval = 4;
  bundle.cfg.eval_every = 4;

  bundle.cfg.use_similarity_cache = true;
  auto sim_on = bundle.make(Algorithm::kMiddle);
  bundle.cfg.use_similarity_cache = false;
  auto sim_off = bundle.make(Algorithm::kMiddle);

  const auto history_on = sim_on->run();
  const auto history_off = sim_off->run();

  ASSERT_EQ(history_on.points.size(), history_off.points.size());
  for (std::size_t i = 0; i < history_on.points.size(); ++i) {
    EXPECT_EQ(history_on.points[i].accuracy, history_off.points[i].accuracy);
    EXPECT_EQ(history_on.points[i].loss, history_off.points[i].loss);
  }
  const auto cloud_on = sim_on->cloud_params();
  const auto cloud_off = sim_off->cloud_params();
  ASSERT_EQ(cloud_on.size(), cloud_off.size());
  for (std::size_t i = 0; i < cloud_on.size(); ++i) {
    ASSERT_EQ(cloud_on[i], cloud_off[i]) << "param " << i;
  }
  EXPECT_GT(sim_on->similarity_cache().hits(), 0u);
  EXPECT_EQ(sim_off->similarity_cache().hits(), 0u);
}

}  // namespace
