// Behavioural tests for individual layers (shape inference, known-value
// forward results, caching contracts). Gradient correctness is covered by
// nn_gradcheck_test.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/dropout.hpp"
#include "nn/flatten.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "parallel/rng.hpp"

namespace {

using middlefl::nn::Conv2d;
using middlefl::nn::Conv2dConfig;
using middlefl::nn::Dropout;
using middlefl::nn::Flatten;
using middlefl::nn::Linear;
using middlefl::nn::MaxPool2d;
using middlefl::nn::ReLU;
using middlefl::nn::Shape;
using middlefl::nn::Tanh;
using middlefl::nn::Tensor;
using middlefl::parallel::Xoshiro256;

template <typename L>
void bind_layer(L& layer, std::vector<float>& params,
                std::vector<float>& grads) {
  params.assign(layer.param_count(), 0.0f);
  grads.assign(layer.param_count(), 0.0f);
  layer.bind(params, grads);
}

TEST(Linear, ShapeInference) {
  Linear layer(6, 4);
  EXPECT_EQ(layer.build(Shape{6}), Shape{4});
  EXPECT_EQ(layer.param_count(), 6u * 4u + 4u);
}

TEST(Linear, InferInputFromShape) {
  Linear layer(0, 4);
  EXPECT_EQ(layer.build(Shape{2, 3}), Shape{4});  // flattens 2*3 = 6
  EXPECT_EQ(layer.in_features(), 6u);
}

TEST(Linear, RejectsWrongInputSize) {
  Linear layer(6, 4);
  EXPECT_THROW(layer.build(Shape{5}), std::invalid_argument);
}

TEST(Linear, KnownForwardValue) {
  Linear layer(2, 2);
  layer.build(Shape{2});
  std::vector<float> params, grads;
  bind_layer(layer, params, grads);
  // W = [[1, 2], [3, 4]], b = [10, 20]
  params = {1, 2, 3, 4, 10, 20};
  layer.bind(params, grads);
  const Tensor input(Shape{1, 2}, {5, 6});
  Tensor out;
  layer.forward(input, out, false);
  EXPECT_FLOAT_EQ(out.at({0, 0}), 1 * 5 + 2 * 6 + 10);
  EXPECT_FLOAT_EQ(out.at({0, 1}), 3 * 5 + 4 * 6 + 20);
}

TEST(Linear, BatchIndependence) {
  Linear layer(3, 2);
  layer.build(Shape{3});
  std::vector<float> params, grads;
  bind_layer(layer, params, grads);
  Xoshiro256 rng(9);
  layer.init_params(rng);

  const Tensor one(Shape{1, 3}, {1, 2, 3});
  Tensor out_single;
  layer.forward(one, out_single, false);

  const Tensor batch(Shape{2, 3}, {0, 0, 0, 1, 2, 3});
  Tensor out_batch;
  layer.forward(batch, out_batch, false);
  EXPECT_FLOAT_EQ(out_batch.at({1, 0}), out_single.at({0, 0}));
  EXPECT_FLOAT_EQ(out_batch.at({1, 1}), out_single.at({0, 1}));
}

TEST(Conv2d, OutputShape) {
  Conv2d same(Conv2dConfig{3, 8, 3, 1, 1});
  EXPECT_EQ(same.build(Shape{3, 16, 16}), (Shape{8, 16, 16}));

  Conv2d strided(Conv2dConfig{1, 4, 3, 2, 1});
  EXPECT_EQ(strided.build(Shape{1, 8, 8}), (Shape{4, 4, 4}));

  Conv2d valid(Conv2dConfig{1, 2, 3, 1, 0});
  EXPECT_EQ(valid.build(Shape{1, 5, 5}), (Shape{2, 3, 3}));
}

TEST(Conv2d, RejectsBadInput) {
  Conv2d layer(Conv2dConfig{3, 8, 3, 1, 1});
  EXPECT_THROW(layer.build(Shape{1, 16, 16}), std::invalid_argument);
  EXPECT_THROW(layer.build(Shape{16, 16}), std::invalid_argument);
  Conv2d huge(Conv2dConfig{1, 1, 9, 1, 0});
  EXPECT_THROW(huge.build(Shape{1, 4, 4}), std::invalid_argument);
}

TEST(Conv2d, IdentityKernelReproducesInput) {
  // 1x1 kernel with weight 1, bias 0 == identity.
  Conv2d layer(Conv2dConfig{1, 1, 1, 1, 0});
  layer.build(Shape{1, 3, 3});
  std::vector<float> params, grads;
  bind_layer(layer, params, grads);
  params = {1.0f, 0.0f};  // weight, bias
  layer.bind(params, grads);
  Xoshiro256 rng(10);
  const Tensor input = Tensor::randn(Shape{2, 1, 3, 3}, rng);
  Tensor out;
  layer.forward(input, out, false);
  for (std::size_t i = 0; i < input.numel(); ++i) {
    EXPECT_FLOAT_EQ(out[i], input[i]);
  }
}

TEST(Conv2d, KnownSum3x3) {
  // All-ones 3x3 kernel with padding 1 computes the 8-neighbour+self sum.
  Conv2d layer(Conv2dConfig{1, 1, 3, 1, 1});
  layer.build(Shape{1, 3, 3});
  std::vector<float> params, grads;
  bind_layer(layer, params, grads);
  std::fill(params.begin(), params.end() - 1, 1.0f);
  params.back() = 0.0f;
  layer.bind(params, grads);
  Tensor input(Shape{1, 1, 3, 3});
  input.fill(1.0f);
  Tensor out;
  layer.forward(input, out, false);
  EXPECT_FLOAT_EQ(out.at({0, 0, 1, 1}), 9.0f);  // full window
  EXPECT_FLOAT_EQ(out.at({0, 0, 0, 0}), 4.0f);  // corner
  EXPECT_FLOAT_EQ(out.at({0, 0, 0, 1}), 6.0f);  // border
}

TEST(Conv2d, BackwardRequiresTrainingForward) {
  Conv2d layer(Conv2dConfig{1, 1, 3, 1, 1});
  layer.build(Shape{1, 4, 4});
  std::vector<float> params, grads;
  bind_layer(layer, params, grads);
  const Tensor input(Shape{1, 1, 4, 4});
  Tensor out;
  layer.forward(input, out, false);  // eval mode: no cache
  Tensor grad_in;
  EXPECT_THROW(layer.backward(input, out, grad_in), std::logic_error);
}

TEST(MaxPool2d, ForwardKnownValues) {
  MaxPool2d layer(2);
  EXPECT_EQ(layer.build(Shape{1, 4, 4}), (Shape{1, 2, 2}));
  const Tensor input(Shape{1, 1, 4, 4},
                     {1, 2, 3, 4,
                      5, 6, 7, 8,
                      9, 10, 11, 12,
                      13, 14, 15, 16});
  Tensor out;
  layer.forward(input, out, false);
  EXPECT_FLOAT_EQ(out.at({0, 0, 0, 0}), 6.0f);
  EXPECT_FLOAT_EQ(out.at({0, 0, 0, 1}), 8.0f);
  EXPECT_FLOAT_EQ(out.at({0, 0, 1, 0}), 14.0f);
  EXPECT_FLOAT_EQ(out.at({0, 0, 1, 1}), 16.0f);
}

TEST(MaxPool2d, BackwardRoutesToArgmax) {
  MaxPool2d layer(2);
  layer.build(Shape{1, 2, 2});
  const Tensor input(Shape{1, 1, 2, 2}, {1, 9, 2, 3});
  Tensor out;
  layer.forward(input, out, true);
  const Tensor grad_out(Shape{1, 1, 1, 1}, {5.0f});
  Tensor grad_in;
  layer.backward(input, grad_out, grad_in);
  EXPECT_FLOAT_EQ(grad_in[0], 0.0f);
  EXPECT_FLOAT_EQ(grad_in[1], 5.0f);  // max was at index 1
  EXPECT_FLOAT_EQ(grad_in[2], 0.0f);
  EXPECT_FLOAT_EQ(grad_in[3], 0.0f);
}

TEST(MaxPool2d, OverlappingStride) {
  MaxPool2d layer(2, 1);
  EXPECT_EQ(layer.build(Shape{1, 3, 3}), (Shape{1, 2, 2}));
}

TEST(AvgPool2d, ForwardIsWindowMean) {
  middlefl::nn::AvgPool2d layer(2);
  EXPECT_EQ(layer.build(Shape{1, 4, 4}), (Shape{1, 2, 2}));
  const Tensor input(Shape{1, 1, 4, 4},
                     {1, 2, 3, 4,
                      5, 6, 7, 8,
                      9, 10, 11, 12,
                      13, 14, 15, 16});
  Tensor out;
  layer.forward(input, out, false);
  EXPECT_FLOAT_EQ(out.at({0, 0, 0, 0}), 3.5f);   // mean(1,2,5,6)
  EXPECT_FLOAT_EQ(out.at({0, 0, 1, 1}), 13.5f);  // mean(11,12,15,16)
}

TEST(AvgPool2d, BackwardSpreadsUniformly) {
  middlefl::nn::AvgPool2d layer(2);
  layer.build(Shape{1, 2, 2});
  const Tensor input(Shape{1, 1, 2, 2}, {1, 2, 3, 4});
  Tensor out;
  layer.forward(input, out, true);
  const Tensor grad_out(Shape{1, 1, 1, 1}, {8.0f});
  Tensor grad_in;
  layer.backward(input, grad_out, grad_in);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(grad_in[i], 2.0f);  // 8 / 4 per input
  }
}

TEST(AvgPool2d, Validation) {
  EXPECT_THROW(middlefl::nn::AvgPool2d(0), std::invalid_argument);
  middlefl::nn::AvgPool2d layer(5);
  EXPECT_THROW(layer.build(Shape{1, 4, 4}), std::invalid_argument);
  EXPECT_THROW(layer.build(Shape{4, 4}), std::invalid_argument);
}

TEST(ReLU, ForwardClampsNegatives) {
  ReLU layer;
  layer.build(Shape{4});
  const Tensor input(Shape{1, 4}, {-1, 0, 2, -3});
  Tensor out;
  layer.forward(input, out, false);
  EXPECT_FLOAT_EQ(out[0], 0.0f);
  EXPECT_FLOAT_EQ(out[1], 0.0f);
  EXPECT_FLOAT_EQ(out[2], 2.0f);
  EXPECT_FLOAT_EQ(out[3], 0.0f);
}

TEST(ReLU, BackwardMasksGradient) {
  ReLU layer;
  layer.build(Shape{3});
  const Tensor input(Shape{1, 3}, {-1, 1, 2});
  Tensor out;
  layer.forward(input, out, true);
  const Tensor grad_out(Shape{1, 3}, {10, 20, 30});
  Tensor grad_in;
  layer.backward(input, grad_out, grad_in);
  EXPECT_FLOAT_EQ(grad_in[0], 0.0f);
  EXPECT_FLOAT_EQ(grad_in[1], 20.0f);
  EXPECT_FLOAT_EQ(grad_in[2], 30.0f);
}

TEST(Tanh, ForwardSaturates) {
  Tanh layer;
  layer.build(Shape{2});
  const Tensor input(Shape{1, 2}, {100.0f, -100.0f});
  Tensor out;
  layer.forward(input, out, false);
  EXPECT_NEAR(out[0], 1.0f, 1e-6);
  EXPECT_NEAR(out[1], -1.0f, 1e-6);
}

TEST(Flatten, CollapsesSampleDims) {
  Flatten layer;
  EXPECT_EQ(layer.build(Shape{2, 3, 4}), Shape{24});
  const Tensor input(Shape{5, 2, 3, 4});
  Tensor out;
  layer.forward(input, out, false);
  EXPECT_EQ(out.shape(), (Shape{5, 24}));
}

TEST(Flatten, BackwardRestoresShape) {
  Flatten layer;
  layer.build(Shape{2, 2});
  const Tensor input(Shape{3, 2, 2});
  Tensor out;
  layer.forward(input, out, true);
  Tensor grad_in;
  layer.backward(input, out, grad_in);
  EXPECT_EQ(grad_in.shape(), (Shape{3, 2, 2}));
}

TEST(Dropout, RejectsBadProbability) {
  EXPECT_THROW(Dropout(-0.1f), std::invalid_argument);
  EXPECT_THROW(Dropout(1.0f), std::invalid_argument);
  EXPECT_NO_THROW(Dropout(0.0f));
}

TEST(Dropout, EvalModeIsIdentity) {
  Dropout layer(0.5f);
  layer.build(Shape{8});
  const Tensor input(Shape{2, 8}, std::vector<float>(16, 3.0f));
  Tensor out;
  layer.forward(input, out, false);
  for (std::size_t i = 0; i < out.numel(); ++i) EXPECT_FLOAT_EQ(out[i], 3.0f);
}

TEST(Dropout, TrainModePreservesExpectation) {
  Dropout layer(0.3f);
  layer.build(Shape{1});
  Xoshiro256 rng(77);
  layer.set_rng(&rng);
  const Tensor input(Shape{1, 1}, {1.0f});
  double sum = 0.0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    Tensor out;
    layer.forward(input, out, true);
    sum += out[0];
  }
  EXPECT_NEAR(sum / trials, 1.0, 0.05);  // inverted dropout keeps E[x]
}

TEST(Dropout, TrainWithoutRngThrows) {
  Dropout layer(0.5f);
  layer.build(Shape{2});
  const Tensor input(Shape{1, 2});
  Tensor out;
  EXPECT_THROW(layer.forward(input, out, true), std::logic_error);
}

TEST(Init, KaimingVarianceMatchesFanIn) {
  std::vector<float> weights(20000);
  Xoshiro256 rng(99);
  const std::size_t fan_in = 50;
  middlefl::nn::kaiming_normal(weights, fan_in, rng);
  double mean = 0.0;
  for (float w : weights) mean += w;
  mean /= static_cast<double>(weights.size());
  double var = 0.0;
  for (float w : weights) var += (w - mean) * (w - mean);
  var /= static_cast<double>(weights.size());
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 2.0 / fan_in, 0.004);  // He init: Var = 2/fan_in
}

TEST(Init, XavierUniformBounds) {
  std::vector<float> weights(10000);
  Xoshiro256 rng(100);
  middlefl::nn::xavier_uniform(weights, 30, 70, rng);
  const float bound = std::sqrt(6.0f / 100.0f);
  for (float w : weights) {
    EXPECT_GE(w, -bound);
    EXPECT_LE(w, bound);
  }
}

TEST(Layers, CloneProducesIndependentLayer) {
  Linear layer(3, 2);
  layer.build(Shape{3});
  auto copy = layer.clone();
  EXPECT_EQ(copy->build(Shape{3}), Shape{2});
  EXPECT_EQ(copy->param_count(), layer.param_count());
}

}  // namespace
