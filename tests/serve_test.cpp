// Edge inference serving tests (src/serve).
//
// Every suite here is named Serve* so the ThreadSanitizer CI job picks the
// whole file up via its -R regex: the hot-swap and republish stress tests
// are primarily TSan subjects — a torn model, a lost drain wakeup, or a
// racy ticket completion shows up as a data race or a hang under TSan
// long before it corrupts a prediction in an optimized build.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/snapshot.hpp"
#include "nn/model_factory.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/load_gen.hpp"
#include "serve/serving.hpp"
#include "sim_fixture.hpp"

namespace {

using middlefl::core::ServingConfig;
using middlefl::core::Snapshot;
using middlefl::core::SnapshotSlot;
using middlefl::core::SnapshotStore;
using middlefl::serve::LoadGenerator;
using middlefl::serve::ServeTicket;
using middlefl::serve::ServingHub;

// ---------------------------------------------------------------------------
// SnapshotSlot: the lock-free hot-swap primitive.

// A writer republishes every iteration while readers spin on
// refresh()/acquire(). Each published block is filled with one constant,
// so ANY mix of two publishes inside one observed block — a torn model —
// breaks the uniformity check. Also pins the refresh contract: after a
// refresh the cached block's version matches what the slot advertised.
TEST(ServeSnapshotSlot, PublishIsAtomicUnderConcurrentReaders) {
  SnapshotStore store;
  SnapshotSlot slot;
  constexpr std::size_t kParams = 257;  // odd size: no lucky alignment
  constexpr int kIterations = 400;

  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (int i = 0; i < kIterations; ++i) {
      std::vector<float> block = store.borrow(kParams);
      block.assign(kParams, static_cast<float>(i));
      slot.publish(store.seal(std::move(block)));
    }
    done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  std::atomic<int> failures{0};
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      Snapshot cached;
      std::uint64_t last_version = 0;
      while (!done.load(std::memory_order_acquire)) {
        if (!slot.refresh(cached)) continue;
        // Version stamps move forward only.
        if (cached->version() < last_version) failures.fetch_add(1);
        last_version = cached->version();
        const auto span = cached->span();
        const float first = span[0];
        for (const float v : span) {
          if (v != first) {
            failures.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Final state: the last publish is visible and version-consistent.
  Snapshot last = slot.acquire();
  ASSERT_NE(last, nullptr);
  EXPECT_EQ(last->version(), slot.version());
  EXPECT_EQ(last->span()[0], static_cast<float>(kIterations - 1));
}

TEST(ServeSnapshotSlot, RefreshIsNoOpWhileVersionUnchanged) {
  SnapshotStore store;
  SnapshotSlot slot;
  Snapshot cached;
  EXPECT_FALSE(slot.refresh(cached));  // nothing published yet
  EXPECT_EQ(cached, nullptr);
  EXPECT_EQ(slot.version(), 0u);

  slot.publish(store.publish(std::vector<float>(8, 1.0f)));
  EXPECT_TRUE(slot.refresh(cached));
  ASSERT_NE(cached, nullptr);
  const Snapshot first = cached;
  EXPECT_FALSE(slot.refresh(cached));  // same version: untouched
  EXPECT_EQ(cached, first);

  slot.publish(store.publish(std::vector<float>(8, 2.0f)));
  EXPECT_TRUE(slot.refresh(cached));
  EXPECT_NE(cached, first);
}

// ---------------------------------------------------------------------------
// EdgeServer + ServingHub.

middlefl::nn::ModelSpec tiny_spec() {
  middlefl::nn::ModelSpec spec;
  spec.arch = middlefl::nn::ModelArch::kMlp;
  spec.input_shape = middlefl::tensor::Shape{1, 6, 6};
  spec.num_classes = 4;
  spec.hidden = 16;
  return spec;
}

/// Publishes a freshly-initialized model (seed-controlled) into `edge`.
Snapshot publish_model(ServingHub& hub, SnapshotStore& store,
                       const middlefl::nn::ModelSpec& spec, std::size_t edge,
                       std::uint64_t seed) {
  const auto model = middlefl::nn::build_model(spec, seed);
  Snapshot snap = store.publish(model->parameters());
  hub.on_edge_model(edge, snap);
  return snap;
}

TEST(ServeEdgeServer, RejectsBeforeAnyModelIsPublished) {
  const auto spec = tiny_spec();
  ServingConfig cfg;
  cfg.enabled = true;
  ServingHub hub(cfg, /*num_edges=*/2, spec, /*pool=*/nullptr);
  SnapshotStore store;
  publish_model(hub, store, spec, /*edge=*/0, /*seed=*/7);

  const std::vector<float> sample(spec.input_shape.numel(), 0.5f);
  ServeTicket ticket;
  // Edge 1 never saw a publish: admission fails, ticket stays un-armed.
  EXPECT_FALSE(hub.edge(1).submit(sample, ticket));
  EXPECT_TRUE(hub.edge(0).submit(sample, ticket));
  ticket.wait();  // inline drain (null pool) already completed it
  EXPECT_EQ(hub.stats().rejected, 1u);
  EXPECT_EQ(hub.stats().served, 1u);
}

// Requests stacked up behind a busy pool coalesce into ONE batch whose
// predictions match the reference model bit for bit.
TEST(ServeEdgeServer, CoalescesQueuedRequestsIntoOneBatch) {
  const auto spec = tiny_spec();
  ServingConfig cfg;
  cfg.enabled = true;
  cfg.max_batch = 16;
  middlefl::parallel::ThreadPool pool(1);
  ServingHub hub(cfg, /*num_edges=*/1, spec, &pool);
  SnapshotStore store;
  publish_model(hub, store, spec, /*edge=*/0, /*seed=*/7);

  // Occupy the single worker so every submit lands in the queue before
  // the (single) scheduled drain task can run.
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  auto blocker = pool.submit([gate] { gate.wait(); });

  constexpr std::size_t kRequests = 8;
  const std::size_t sample_len = spec.input_shape.numel();
  std::vector<std::vector<float>> samples;
  for (std::size_t i = 0; i < kRequests; ++i) {
    samples.emplace_back(sample_len, 0.1f * static_cast<float>(i + 1));
  }
  std::vector<ServeTicket> tickets(kRequests);
  for (std::size_t i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(hub.edge(0).submit(samples[i], tickets[i]));
  }
  release.set_value();
  for (auto& ticket : tickets) ticket.wait();
  blocker.wait();

  const ServingHub::Stats stats = hub.stats();
  EXPECT_EQ(stats.served, kRequests);
  EXPECT_EQ(stats.batches, 1u) << "queued requests must coalesce";

  // Reference: the same architecture + published parameters, batch of 1.
  const auto reference = middlefl::nn::build_model(spec, /*seed=*/7);
  for (std::size_t i = 0; i < kRequests; ++i) {
    middlefl::tensor::Tensor batch({1, 1, 6, 6});
    std::copy(samples[i].begin(), samples[i].end(), batch.data().begin());
    std::int32_t expected = -1;
    reference->predict(batch, std::span(&expected, 1));
    EXPECT_EQ(tickets[i].prediction(), expected) << "request " << i;
  }
}

TEST(ServeEdgeServer, RejectsWhenQueueIsFull) {
  const auto spec = tiny_spec();
  ServingConfig cfg;
  cfg.enabled = true;
  cfg.max_queue = 2;
  middlefl::parallel::ThreadPool pool(1);
  ServingHub hub(cfg, /*num_edges=*/1, spec, &pool);
  SnapshotStore store;
  publish_model(hub, store, spec, /*edge=*/0, /*seed=*/3);

  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  auto blocker = pool.submit([gate] { gate.wait(); });

  const std::vector<float> sample(spec.input_shape.numel(), 0.25f);
  ServeTicket a, b, c;
  EXPECT_TRUE(hub.edge(0).submit(sample, a));
  EXPECT_TRUE(hub.edge(0).submit(sample, b));
  EXPECT_FALSE(hub.edge(0).submit(sample, c)) << "queue capacity is 2";
  release.set_value();
  a.wait();
  b.wait();
  blocker.wait();
  EXPECT_EQ(hub.stats().rejected, 1u);
  EXPECT_EQ(hub.stats().served, 2u);
}

// The satellite stress test: a writer republishes a new model EVERY
// iteration while reader threads run closed-loop inference. Every
// completed ticket must carry a model version that was genuinely
// published, and per-client versions must never move backwards (the slot
// only ever swaps forward). Run under TSan in CI.
TEST(ServeHotSwap, RepublishEveryIterationWhileServing) {
  const auto spec = tiny_spec();
  ServingConfig cfg;
  cfg.enabled = true;
  cfg.max_batch = 8;
  cfg.runtimes = 2;
  middlefl::parallel::ThreadPool pool(2);
  ServingHub hub(cfg, /*num_edges=*/1, spec, &pool);
  SnapshotStore store;
  const Snapshot initial = publish_model(hub, store, spec, 0, /*seed=*/1);
  const std::uint64_t first_version = initial->version();

  constexpr int kPublishes = 300;
  constexpr int kRequestsPerClient = 200;
  const auto model = middlefl::nn::build_model(spec, /*seed=*/1);
  const std::size_t param_count = model->param_count();

  std::atomic<std::uint64_t> last_published{first_version};
  std::thread writer([&] {
    for (int i = 0; i < kPublishes; ++i) {
      std::vector<float> block = store.borrow(param_count);
      block.assign(param_count, 0.01f * static_cast<float>(i));
      Snapshot snap = store.seal(std::move(block));
      last_published.store(snap->version(), std::memory_order_release);
      hub.on_edge_model(0, snap);
    }
  });

  const std::vector<float> sample(spec.input_shape.numel(), 0.5f);
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&] {
      ServeTicket ticket;
      std::uint64_t last_seen = 0;
      for (int i = 0; i < kRequestsPerClient; ++i) {
        if (!hub.edge(0).submit(sample, ticket)) {
          std::this_thread::yield();
          continue;
        }
        ticket.wait();
        if (ticket.prediction() < 0 ||
            ticket.prediction() >= static_cast<std::int32_t>(
                                       spec.num_classes)) {
          failures.fetch_add(1);
        }
        // Versions a server hands out only move forward, and are never
        // newer than the newest publish.
        if (ticket.model_version() < last_seen ||
            ticket.model_version() <
                first_version) {
          failures.fetch_add(1);
        }
        last_seen = ticket.model_version();
      }
    });
  }
  writer.join();
  for (auto& t : clients) t.join();
  hub.quiesce();
  EXPECT_EQ(failures.load(), 0);
  const ServingHub::Stats stats = hub.stats();
  EXPECT_EQ(stats.publishes, static_cast<std::uint64_t>(kPublishes) + 1);
  EXPECT_EQ(stats.served, stats.submitted) << "quiesce left requests behind";
  EXPECT_GT(stats.served, 0u);
  // The hub's servers end on the final published model.
  EXPECT_EQ(hub.edge(0).model_version(),
            last_published.load(std::memory_order_acquire));
}

TEST(ServeLoadGen, ClosedLoopWindowAccountsEveryRequest) {
  const auto spec = tiny_spec();
  ServingConfig cfg;
  cfg.enabled = true;
  middlefl::parallel::ThreadPool pool(1);
  ServingHub hub(cfg, /*num_edges=*/2, spec, &pool);
  SnapshotStore store;
  publish_model(hub, store, spec, 0, /*seed=*/5);
  publish_model(hub, store, spec, 1, /*seed=*/5);

  middlefl::testing::SimBundle bundle;  // reuse its synthetic datasets
  LoadGenerator::Options options;
  options.clients = 2;
  LoadGenerator generator(hub, bundle.test, options);
  generator.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const LoadGenerator::Window window = generator.stop();
  hub.quiesce();

  EXPECT_GT(window.completed, 0u);
  EXPECT_EQ(window.latencies_us.size(), window.completed);
  EXPECT_GT(window.wall_seconds, 0.0);
  for (const double latency : window.latencies_us) {
    EXPECT_GE(latency, 0.0);
  }
  const ServingHub::Stats stats = hub.stats();
  EXPECT_EQ(stats.served, window.completed);
  EXPECT_EQ(stats.rejected, window.rejected);
}

// ---------------------------------------------------------------------------
// Determinism: serving must not perturb training by a single bit.

std::uint64_t fnv1a(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t run_fingerprint(middlefl::core::Simulation& sim) {
  std::uint64_t h = 0;
  const auto cloud = sim.cloud_params();
  h ^= fnv1a(cloud.data(), cloud.size() * sizeof(float));
  for (std::size_t n = 0; n < sim.num_edges(); ++n) {
    const auto e = sim.edge_params(n);
    h = fnv1a(e.data(), e.size() * sizeof(float)) ^ (h * 3);
  }
  for (std::size_t m = 0; m < sim.num_devices(); ++m) {
    const auto d = sim.device(m).params();
    h = fnv1a(d.data(), d.size() * sizeof(float)) ^ (h * 3);
  }
  return h;
}

TEST(ServeDeterminism, ServingTrafficDoesNotPerturbTraining) {
  middlefl::testing::SimBundle bundle;

  // Reference: plain run, no serving attached.
  std::uint64_t bare = 0;
  {
    auto sim = bundle.make(middlefl::core::Algorithm::kMiddle);
    sim->run();
    bare = run_fingerprint(*sim);
  }

  // Same run with a hub attached and live closed-loop traffic throughout.
  {
    auto sim = bundle.make(middlefl::core::Algorithm::kMiddle);
    ServingConfig cfg;
    cfg.enabled = true;
    middlefl::parallel::ThreadPool pool(1);  // serving-only pool
    ServingHub hub(cfg, bundle.num_edges, bundle.model_spec, &pool);
    sim->set_edge_model_sink(&hub);
    LoadGenerator::Options options;
    options.clients = 2;
    LoadGenerator generator(hub, bundle.test, options);
    generator.start();
    sim->run();
    // The generator threads race the (tiny) run for CPU time and may not
    // get a slice before it completes; a direct submit per edge makes the
    // served-traffic assertion deterministic.
    ServeTicket ticket;
    for (std::size_t n = 0; n < hub.num_edges(); ++n) {
      ASSERT_TRUE(hub.edge(n).submit(bundle.test.features(n), ticket));
      ticket.wait();
    }
    generator.stop();
    hub.quiesce();
    EXPECT_GT(hub.stats().served, 0u);
    EXPECT_GT(hub.stats().publishes, 0u);
    EXPECT_EQ(run_fingerprint(*sim), bare)
        << "attaching serving changed training state";
  }
}

}  // namespace
