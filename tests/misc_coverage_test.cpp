// Remaining-path coverage: logging filters, file-backed CSV/trace/model IO
// error paths, BLAS scalar corner cases, generator validation.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "data/synthetic.hpp"
#include "mobility/random_waypoint.hpp"
#include "mobility/trace.hpp"
#include "tensor/blas.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"

namespace {

using middlefl::util::LogLevel;

TEST(Logging, LevelGateIsRespected) {
  const auto saved = middlefl::util::log_level();
  middlefl::util::set_log_level(LogLevel::kOff);
  // Must not crash or emit; we can at least exercise the disabled path.
  MIDDLEFL_LOG(Error) << "suppressed " << 42;
  middlefl::util::set_log_level(LogLevel::kTrace);
  MIDDLEFL_LOG(Trace) << "emitted to stderr " << 3.14;
  middlefl::util::set_log_level(saved);
  SUCCEED();
}

TEST(Logging, OrderingOfLevels) {
  EXPECT_LT(static_cast<int>(LogLevel::kTrace),
            static_cast<int>(LogLevel::kDebug));
  EXPECT_LT(static_cast<int>(LogLevel::kWarn),
            static_cast<int>(LogLevel::kError));
}

TEST(CsvWriter, FileConstructorCreatesAndFails) {
  const std::string path = "/tmp/middlefl_csv_test.csv";
  {
    middlefl::util::CsvWriter writer(path);
    writer.header({"a", "b"});
    writer.add(1).add(2.5).end_row();
  }
  std::ifstream check(path);
  std::string line;
  std::getline(check, line);
  EXPECT_EQ(line, "a,b");
  std::getline(check, line);
  EXPECT_EQ(line, "1,2.5");
  std::remove(path.c_str());

  EXPECT_THROW(middlefl::util::CsvWriter("/nonexistent/dir/out.csv"),
               std::runtime_error);
}

TEST(Blas, GemmAlphaZeroScalesOnly) {
  std::vector<float> a(4, 100.0f), b(4, 100.0f);
  std::vector<float> c{1, 2, 3, 4};
  middlefl::tensor::gemm(middlefl::tensor::Trans::kNo,
                         middlefl::tensor::Trans::kNo, 2, 2, 2, 0.0f, a, b,
                         2.0f, c);
  EXPECT_FLOAT_EQ(c[0], 2.0f);
  EXPECT_FLOAT_EQ(c[3], 8.0f);
}

TEST(Blas, GemvSizeChecks) {
  std::vector<float> a(6), x(2), y(3);
  EXPECT_NO_THROW(middlefl::tensor::gemv(middlefl::tensor::Trans::kNo, 3, 2,
                                         1.0f, a, x, 0.0f, y));
  std::vector<float> bad_x(3);
  EXPECT_THROW(middlefl::tensor::gemv(middlefl::tensor::Trans::kNo, 3, 2,
                                      1.0f, a, bad_x, 0.0f, y),
               std::invalid_argument);
}

TEST(Synthetic, SampleIntoValidation) {
  middlefl::data::SyntheticConfig cfg;
  cfg.num_classes = 3;
  cfg.height = 4;
  cfg.width = 4;
  const middlefl::data::SyntheticGenerator gen(cfg);
  middlefl::parallel::Xoshiro256 rng(1);
  std::vector<float> sample(16);
  EXPECT_THROW(gen.sample_into(3, rng, sample), std::out_of_range);
  EXPECT_THROW(gen.sample_into(-1, rng, sample), std::out_of_range);
  std::vector<float> wrong(8);
  EXPECT_THROW(gen.sample_into(0, rng, wrong), std::invalid_argument);
  EXPECT_NO_THROW(gen.sample_into(0, rng, sample));
}

TEST(Trace, FileRoundTrip) {
  middlefl::mobility::Trace trace(3, 2);
  trace.append({0, 1, 0});
  trace.append({1, 1, 0});
  const std::string path = "/tmp/middlefl_trace_test.txt";
  trace.save_file(path);
  const auto loaded = middlefl::mobility::Trace::load_file(path);
  EXPECT_EQ(loaded.num_steps(), 2u);
  EXPECT_EQ(loaded.edge_at(1, 0), 1u);
  std::remove(path.c_str());
  EXPECT_THROW(middlefl::mobility::Trace::load_file("/no/such/file"),
               std::runtime_error);
  EXPECT_THROW(trace.save_file("/nonexistent/dir/trace.txt"),
               std::runtime_error);
}

TEST(Waypoint, ConfigValidation) {
  middlefl::mobility::WaypointConfig cfg;
  cfg.num_devices = 0;
  EXPECT_THROW(middlefl::mobility::RandomWaypointMobility{cfg},
               std::invalid_argument);
  cfg = {};
  cfg.speed_min = 10.0;
  cfg.speed_max = 5.0;
  EXPECT_THROW(middlefl::mobility::RandomWaypointMobility{cfg},
               std::invalid_argument);
  cfg = {};
  cfg.pause_probability = 1.5;
  EXPECT_THROW(middlefl::mobility::RandomWaypointMobility{cfg},
               std::invalid_argument);
  cfg = {};
  cfg.width = -5.0;
  EXPECT_THROW(middlefl::mobility::RandomWaypointMobility{cfg},
               std::invalid_argument);
}

TEST(Waypoint, CalibrateRejectsBadTarget) {
  middlefl::mobility::WaypointConfig cfg;
  cfg.num_devices = 10;
  cfg.num_edges = 4;
  EXPECT_THROW(middlefl::mobility::calibrate_speed(cfg, 0.0),
               std::invalid_argument);
  EXPECT_THROW(middlefl::mobility::calibrate_speed(cfg, 1.5),
               std::invalid_argument);
}

}  // namespace
