#include <gtest/gtest.h>

#include <vector>

#include "core/aggregation.hpp"

namespace {

using middlefl::core::weighted_average;
using middlefl::core::WeightedModel;

TEST(WeightedAverage, UniformWeightsIsMean) {
  const std::vector<float> a{1, 2};
  const std::vector<float> b{3, 6};
  const std::vector<WeightedModel> models{{a, 1.0}, {b, 1.0}};
  const auto avg = weighted_average(models);
  EXPECT_FLOAT_EQ(avg[0], 2.0f);
  EXPECT_FLOAT_EQ(avg[1], 4.0f);
}

TEST(WeightedAverage, DataSizeWeighting) {
  // FedAvg (Eq. 6): weights proportional to d_m.
  const std::vector<float> a{0};
  const std::vector<float> b{10};
  const std::vector<WeightedModel> models{{a, 3.0}, {b, 1.0}};
  const auto avg = weighted_average(models);
  EXPECT_FLOAT_EQ(avg[0], 2.5f);
}

TEST(WeightedAverage, SingleModelIdentity) {
  const std::vector<float> a{1.5f, -2.5f};
  const std::vector<WeightedModel> models{{a, 7.0}};
  const auto avg = weighted_average(models);
  EXPECT_FLOAT_EQ(avg[0], 1.5f);
  EXPECT_FLOAT_EQ(avg[1], -2.5f);
}

TEST(WeightedAverage, ZeroWeightModelIgnored) {
  const std::vector<float> a{1};
  const std::vector<float> b{1000};
  const std::vector<WeightedModel> models{{a, 1.0}, {b, 0.0}};
  const auto avg = weighted_average(models);
  EXPECT_FLOAT_EQ(avg[0], 1.0f);
}

TEST(WeightedAverage, ScaleInvariantInWeights) {
  const std::vector<float> a{2, 4};
  const std::vector<float> b{6, 8};
  const std::vector<WeightedModel> m1{{a, 1.0}, {b, 2.0}};
  const std::vector<WeightedModel> m2{{a, 10.0}, {b, 20.0}};
  const auto avg1 = weighted_average(m1);
  const auto avg2 = weighted_average(m2);
  EXPECT_FLOAT_EQ(avg1[0], avg2[0]);
  EXPECT_FLOAT_EQ(avg1[1], avg2[1]);
}

TEST(WeightedAverage, ConvexHullProperty) {
  const std::vector<float> a{-1, 5};
  const std::vector<float> b{3, 7};
  const std::vector<WeightedModel> models{{a, 0.3}, {b, 0.7}};
  const auto avg = weighted_average(models);
  EXPECT_GE(avg[0], -1.0f);
  EXPECT_LE(avg[0], 3.0f);
  EXPECT_GE(avg[1], 5.0f);
  EXPECT_LE(avg[1], 7.0f);
}

TEST(WeightedAverage, OrderIndependent) {
  const std::vector<float> a{1, 2, 3};
  const std::vector<float> b{4, 5, 6};
  const std::vector<float> c{7, 8, 9};
  const std::vector<WeightedModel> abc{{a, 1.0}, {b, 2.0}, {c, 3.0}};
  const std::vector<WeightedModel> cba{{c, 3.0}, {b, 2.0}, {a, 1.0}};
  const auto avg1 = weighted_average(abc);
  const auto avg2 = weighted_average(cba);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(avg1[i], avg2[i], 1e-6f);
  }
}

TEST(WeightedAverage, ValidatesInput) {
  const std::vector<float> a{1, 2};
  const std::vector<float> short_vec{1};
  EXPECT_THROW(weighted_average(std::vector<WeightedModel>{}),
               std::invalid_argument);
  EXPECT_THROW(weighted_average(std::vector<WeightedModel>{{a, -1.0}}),
               std::invalid_argument);
  EXPECT_THROW(weighted_average(std::vector<WeightedModel>{{a, 0.0}}),
               std::invalid_argument);
  EXPECT_THROW(
      weighted_average(std::vector<WeightedModel>{{a, 1.0}, {short_vec, 1.0}}),
      std::invalid_argument);
}

TEST(WeightedAverage, InPlaceOverloadWritesOut) {
  const std::vector<float> a{2, 2};
  const std::vector<float> b{4, 4};
  std::vector<float> out(2, -1.0f);
  const std::vector<WeightedModel> models{{a, 1.0}, {b, 1.0}};
  weighted_average(models, out);
  EXPECT_FLOAT_EQ(out[0], 3.0f);
}

}  // namespace
