#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/algorithms.hpp"

namespace {

using middlefl::core::Algorithm;
using middlefl::core::apply_on_device_rule;
using middlefl::core::make_algorithm;
using middlefl::core::OnDeviceRule;
using middlefl::core::parse_algorithm;

TEST(Algorithms, NameRoundTrip) {
  for (auto alg : {Algorithm::kMiddle, Algorithm::kOort, Algorithm::kFedMes,
                   Algorithm::kGreedy, Algorithm::kEnsemble,
                   Algorithm::kHierFavg}) {
    EXPECT_EQ(parse_algorithm(to_string(alg)), alg);
  }
  EXPECT_EQ(parse_algorithm("middle"), Algorithm::kMiddle);
  EXPECT_EQ(parse_algorithm("general"), Algorithm::kHierFavg);
  EXPECT_THROW(parse_algorithm("fedprox"), std::invalid_argument);
}

TEST(Algorithms, PolicyTableMatchesPaper) {
  // MIDDLE: similarity selection + similarity blend.
  const auto middle = make_algorithm(Algorithm::kMiddle);
  EXPECT_EQ(middle.on_move, OnDeviceRule::kSimilarityBlend);
  EXPECT_NE(middle.selection->name().find("MIDDLE"), std::string::npos);

  // OORT: stat-utility selection, no on-device aggregation.
  const auto oort = make_algorithm(Algorithm::kOort);
  EXPECT_EQ(oort.on_move, OnDeviceRule::kDownloadEdge);
  EXPECT_EQ(oort.selection->name(), "stat-utility");

  // FedMes: random selection, averages the two edge models.
  const auto fedmes = make_algorithm(Algorithm::kFedMes);
  EXPECT_EQ(fedmes.on_move, OnDeviceRule::kPrevEdgeAverage);
  EXPECT_EQ(fedmes.selection->name(), "random");

  // Greedy: keeps the carried local model.
  const auto greedy = make_algorithm(Algorithm::kGreedy);
  EXPECT_EQ(greedy.on_move, OnDeviceRule::kKeepLocal);
  EXPECT_EQ(greedy.selection->name(), "stat-utility");

  // Ensemble: plain average.
  const auto ensemble = make_algorithm(Algorithm::kEnsemble);
  EXPECT_EQ(ensemble.on_move, OnDeviceRule::kPlainAverage);

  // HierFAVG: vanilla.
  const auto hier = make_algorithm(Algorithm::kHierFavg);
  EXPECT_EQ(hier.on_move, OnDeviceRule::kDownloadEdge);
  EXPECT_EQ(hier.selection->name(), "random");
}

class OnDeviceRuleTest : public ::testing::Test {
 protected:
  const std::vector<float> edge_{4.0f, 0.0f};
  const std::vector<float> local_{0.0f, 4.0f};
  const std::vector<float> prev_edge_{2.0f, 2.0f};
  std::vector<float> out_ = std::vector<float>(2);
};

TEST_F(OnDeviceRuleTest, DownloadEdgeCopiesEdgeModel) {
  const double w = apply_on_device_rule(OnDeviceRule::kDownloadEdge, edge_,
                                        local_, {}, 0.5, out_);
  EXPECT_EQ(w, 0.0);
  EXPECT_EQ(out_[0], 4.0f);
  EXPECT_EQ(out_[1], 0.0f);
}

TEST_F(OnDeviceRuleTest, KeepLocalCopiesLocalModel) {
  const double w = apply_on_device_rule(OnDeviceRule::kKeepLocal, edge_,
                                        local_, {}, 0.5, out_);
  EXPECT_EQ(w, 1.0);
  EXPECT_EQ(out_[0], 0.0f);
  EXPECT_EQ(out_[1], 4.0f);
}

TEST_F(OnDeviceRuleTest, PlainAverage) {
  apply_on_device_rule(OnDeviceRule::kPlainAverage, edge_, local_, {}, 0.5,
                       out_);
  EXPECT_EQ(out_[0], 2.0f);
  EXPECT_EQ(out_[1], 2.0f);
}

TEST_F(OnDeviceRuleTest, SimilarityBlendOrthogonalDropsLocal) {
  // edge (4,0) and local (0,4) are orthogonal: U = 0, w_hat = edge.
  const double w = apply_on_device_rule(OnDeviceRule::kSimilarityBlend, edge_,
                                        local_, {}, 0.5, out_);
  EXPECT_EQ(w, 0.0);
  EXPECT_FLOAT_EQ(out_[0], 4.0f);
  EXPECT_FLOAT_EQ(out_[1], 0.0f);
}

TEST_F(OnDeviceRuleTest, FixedAlpha) {
  apply_on_device_rule(OnDeviceRule::kFixedAlpha, edge_, local_, {}, 0.75,
                       out_);
  EXPECT_FLOAT_EQ(out_[0], 3.0f);  // 0.75*4
  EXPECT_FLOAT_EQ(out_[1], 1.0f);  // 0.25*4
}

TEST_F(OnDeviceRuleTest, PrevEdgeAverageUsesBothEdges) {
  apply_on_device_rule(OnDeviceRule::kPrevEdgeAverage, edge_, local_,
                       prev_edge_, 0.5, out_);
  EXPECT_FLOAT_EQ(out_[0], 3.0f);  // (4+2)/2
  EXPECT_FLOAT_EQ(out_[1], 1.0f);  // (0+2)/2
}

TEST_F(OnDeviceRuleTest, PrevEdgeAverageRequiresPrevModel) {
  EXPECT_THROW(apply_on_device_rule(OnDeviceRule::kPrevEdgeAverage, edge_,
                                    local_, {}, 0.5, out_),
               std::invalid_argument);
}

TEST_F(OnDeviceRuleTest, SizeMismatchThrows) {
  std::vector<float> bad(3);
  EXPECT_THROW(apply_on_device_rule(OnDeviceRule::kDownloadEdge, edge_, local_,
                                    {}, 0.5, bad),
               std::invalid_argument);
}

TEST(OnDeviceRuleNames, AllDistinct) {
  std::set<std::string> names;
  for (auto rule : {OnDeviceRule::kDownloadEdge, OnDeviceRule::kKeepLocal,
                    OnDeviceRule::kPlainAverage, OnDeviceRule::kSimilarityBlend,
                    OnDeviceRule::kFixedAlpha, OnDeviceRule::kPrevEdgeAverage}) {
    names.insert(to_string(rule));
  }
  EXPECT_EQ(names.size(), 6u);
}

TEST(Algorithms, AllAlgorithmsListMatchesPaperOrder) {
  using middlefl::core::kAllAlgorithms;
  ASSERT_EQ(std::size(kAllAlgorithms), 5u);
  EXPECT_EQ(kAllAlgorithms[0], Algorithm::kMiddle);
  EXPECT_EQ(kAllAlgorithms[1], Algorithm::kOort);
}

}  // namespace
