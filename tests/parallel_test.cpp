#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using middlefl::parallel::GrainSize;
using middlefl::parallel::parallel_for;
using middlefl::parallel::ThreadPool;

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto future = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(pool, 0, kN, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(pool, 5, 5, [&calls](std::size_t) { ++calls; });
  parallel_for(pool, 7, 3, [&calls](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, NonZeroBegin) {
  ThreadPool pool(2);
  std::vector<int> hits(10, 0);
  parallel_for(pool, 3, 8, [&hits](std::size_t i) { hits[i] = 1; });
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(hits[i], (i >= 3 && i < 8) ? 1 : 0);
  }
}

TEST(ParallelFor, MatchesSerialSum) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<long long> out(kN);
  parallel_for(pool, 0, kN, [&out](std::size_t i) {
    out[i] = static_cast<long long>(i) * i;
  });
  long long sum = std::accumulate(out.begin(), out.end(), 0LL);
  long long expected = 0;
  for (std::size_t i = 0; i < kN; ++i) {
    expected += static_cast<long long>(i) * i;
  }
  EXPECT_EQ(sum, expected);
}

TEST(ParallelFor, RethrowsBodyException) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 0, 100,
                            [](std::size_t i) {
                              if (i == 57) throw std::runtime_error("body");
                            }),
               std::runtime_error);
}

TEST(ParallelFor, GrainSizeRespected) {
  ThreadPool pool(4);
  // With grain = n the loop must run inline (single chunk).
  constexpr std::size_t kN = 64;
  std::vector<int> order;
  parallel_for(
      pool, 0, kN,
      [&order](std::size_t i) { order.push_back(static_cast<int>(i)); },
      GrainSize{kN});
  ASSERT_EQ(order.size(), kN);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(order[i], static_cast<int>(i));  // sequential => in order
  }
}

TEST(ParallelFor, GlobalPoolOverloadWorks) {
  std::atomic<int> counter{0};
  parallel_for(0, 100, [&counter](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 100);
}

}  // namespace
