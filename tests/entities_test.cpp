#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/entities.hpp"
#include "data/synthetic.hpp"
#include "nn/model_factory.hpp"
#include "optim/sgd.hpp"

namespace {

using middlefl::core::Cloud;
using middlefl::core::Device;
using middlefl::core::Edge;
using middlefl::data::DataView;
using middlefl::data::Dataset;
using middlefl::nn::ModelArch;
using middlefl::nn::ModelSpec;
using middlefl::parallel::Xoshiro256;
using middlefl::tensor::Shape;

struct Fixture {
  Dataset dataset;
  ModelSpec spec;

  Fixture() : dataset(make_dataset()) {
    spec.arch = ModelArch::kMlp;
    spec.input_shape = Shape{1, 6, 6};
    spec.num_classes = 3;
    spec.hidden = 8;
  }

  static Dataset make_dataset() {
    middlefl::data::SyntheticConfig cfg;
    cfg.num_classes = 3;
    cfg.height = 6;
    cfg.width = 6;
    const middlefl::data::SyntheticGenerator gen(cfg);
    return gen.generate(30, 0);
  }

  Device make_device(std::size_t id) const {
    return Device(id, DataView::all(dataset),
                  middlefl::nn::build_model(spec, 7),
                  std::make_unique<middlefl::optim::Sgd>(
                      middlefl::optim::SgdConfig{.learning_rate = 0.05,
                                                 .momentum = 0.9}));
  }
};

TEST(Device, ConstructionValidation) {
  const Fixture fx;
  EXPECT_THROW(
      Device(0, DataView(&fx.dataset, {}),
             middlefl::nn::build_model(fx.spec, 1),
             std::make_unique<middlefl::optim::Sgd>(
                 middlefl::optim::SgdConfig{})),
      std::invalid_argument);
  EXPECT_THROW(Device(0, DataView::all(fx.dataset),
                      middlefl::nn::build_model(fx.spec, 1), nullptr),
               std::invalid_argument);
}

TEST(Device, TrainReducesLossOnItsData) {
  const Fixture fx;
  Device device = fx.make_device(0);
  Xoshiro256 rng(1);
  const auto first = device.train(10, 16, 0.05, true, rng);
  Xoshiro256 rng2(2);
  // Continue training; average loss over the next round should be lower.
  const auto second = device.train(10, 16, 0.05, true, rng2);
  EXPECT_LT(second.mean_loss, first.mean_loss);
}

TEST(Device, TrainChangesParameters) {
  const Fixture fx;
  Device device = fx.make_device(0);
  const std::vector<float> before(device.params().begin(),
                                  device.params().end());
  Xoshiro256 rng(3);
  device.train(2, 8, 0.05, true, rng);
  bool changed = false;
  for (std::size_t i = 0; i < before.size(); ++i) {
    changed = changed || before[i] != device.params()[i];
  }
  EXPECT_TRUE(changed);
}

TEST(Device, StatUtilityPopulatedAfterTraining) {
  const Fixture fx;
  Device device = fx.make_device(0);
  EXPECT_FALSE(device.stat_utility().has_value());
  Xoshiro256 rng(4);
  device.train(2, 8, 0.05, true, rng);
  ASSERT_TRUE(device.stat_utility().has_value());
  EXPECT_GT(*device.stat_utility(), 0.0);
  device.clear_history();
  EXPECT_FALSE(device.stat_utility().has_value());
}

TEST(Device, SetParamsRoundTrip) {
  const Fixture fx;
  Device device = fx.make_device(0);
  std::vector<float> zeros(device.params().size(), 0.0f);
  device.set_params(zeros);
  for (float p : device.params()) EXPECT_EQ(p, 0.0f);
}

TEST(Device, TrainValidatesArguments) {
  const Fixture fx;
  Device device = fx.make_device(0);
  Xoshiro256 rng(5);
  EXPECT_THROW(device.train(0, 8, 0.05, true, rng), std::invalid_argument);
  EXPECT_THROW(device.train(2, 0, 0.05, true, rng), std::invalid_argument);
}

TEST(Device, TrainDeterministicGivenRngAndStart) {
  const Fixture fx;
  Device a = fx.make_device(0);
  Device b = fx.make_device(1);
  b.set_params(a.params());
  Xoshiro256 rng_a(6), rng_b(6);
  a.train(5, 8, 0.05, true, rng_a);
  b.train(5, 8, 0.05, true, rng_b);
  for (std::size_t i = 0; i < a.params().size(); ++i) {
    EXPECT_EQ(a.params()[i], b.params()[i]);
  }
}

TEST(Device, MarkTrainedTracksStep) {
  const Fixture fx;
  Device device = fx.make_device(0);
  EXPECT_FALSE(device.last_trained_step().has_value());
  device.mark_trained(17);
  EXPECT_EQ(device.last_trained_step().value(), 17u);
}

TEST(Device, OortUtilityMatchesFormula) {
  // U_stat = d_m * sqrt(mean squared per-sample loss on the final batch),
  // with the stats the training round itself reports.
  const Fixture fx;
  Device device = fx.make_device(0);
  Xoshiro256 rng(21);
  const auto stats = device.train(3, 8, 0.05, true, rng);
  ASSERT_TRUE(device.stat_utility().has_value());
  const double expected = static_cast<double>(device.data_size()) *
                          std::sqrt(stats.mean_sq_loss);
  EXPECT_NEAR(*device.stat_utility(), expected, 1e-9);
  EXPECT_EQ(stats.batches, 3u);
  EXPECT_GT(stats.mean_loss, 0.0);
}

TEST(Device, GradientClippingBoundsStepSize) {
  const Fixture fx;
  // Unclipped vs tightly-clipped single step from the same start: the
  // clipped parameter displacement must be <= lr * clip_norm (plain SGD).
  Device free = fx.make_device(0);
  Device clipped = fx.make_device(1);
  clipped.set_params(free.params());
  const std::vector<float> start(free.params().begin(), free.params().end());

  middlefl::parallel::Xoshiro256 rng1(9), rng2(9);
  // momentum 0.9 in the fixture; use 1 step so displacement = lr * grad.
  free.train(1, 8, 0.1, true, rng1, 0.0, 0.0);
  const double tiny_clip = 1e-3;
  clipped.train(1, 8, 0.1, true, rng2, 0.0, tiny_clip);

  const auto displacement = [&start](const Device& device) {
    double acc = 0.0;
    for (std::size_t i = 0; i < start.size(); ++i) {
      const double d = device.params()[i] - start[i];
      acc += d * d;
    }
    return std::sqrt(acc);
  };
  EXPECT_LE(displacement(clipped), 0.1 * tiny_clip + 1e-9);
  EXPECT_GT(displacement(free), displacement(clipped));
}

TEST(Device, NegativeClipNormRejected) {
  const Fixture fx;
  Device device = fx.make_device(0);
  middlefl::parallel::Xoshiro256 rng(5);
  EXPECT_THROW(device.train(1, 8, 0.1, true, rng, 0.0, -1.0),
               std::invalid_argument);
}

TEST(Edge, ParticipationAccumulates) {
  Edge edge(0, 4);
  EXPECT_EQ(edge.participation_weight(), 0.0);
  edge.add_participation(30.0);
  edge.add_participation(20.0);
  EXPECT_EQ(edge.participation_weight(), 50.0);
  edge.reset_participation();
  EXPECT_EQ(edge.participation_weight(), 0.0);
}

TEST(Edge, SetParamsValidatesSize) {
  Edge edge(0, 4);
  EXPECT_THROW(edge.set_params(std::vector<float>(3)), std::invalid_argument);
  const std::vector<float> good{1, 2, 3, 4};
  edge.set_params(good);
  EXPECT_EQ(edge.params()[2], 3.0f);
}

TEST(Cloud, SetParamsValidatesSize) {
  Cloud cloud(2);
  EXPECT_THROW(cloud.set_params(std::vector<float>(5)),
               std::invalid_argument);
  cloud.set_params(std::vector<float>{1.0f, 2.0f});
  EXPECT_EQ(cloud.params()[1], 2.0f);
}

}  // namespace
