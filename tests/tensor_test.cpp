#include <gtest/gtest.h>

#include <stdexcept>

#include "parallel/rng.hpp"
#include "tensor/tensor.hpp"

namespace {

using middlefl::parallel::Xoshiro256;
using middlefl::tensor::Shape;
using middlefl::tensor::Tensor;

TEST(Shape, RankAndNumel) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s.numel(), 24u);
  EXPECT_EQ(s.dim(0), 2u);
  EXPECT_EQ(s.dim(2), 4u);
}

TEST(Shape, ScalarRankZero) {
  const Shape s;
  EXPECT_EQ(s.rank(), 0u);
  EXPECT_EQ(s.numel(), 1u);
}

TEST(Shape, EqualityAndToString) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_EQ(Shape({2, 3}).to_string(), "[2, 3]");
}

TEST(Shape, RejectsZeroDimension) {
  EXPECT_THROW(Shape({2, 0, 3}), std::invalid_argument);
}

TEST(Shape, DimOutOfRangeThrows) {
  const Shape s{2, 3};
  EXPECT_THROW(s.dim(2), std::out_of_range);
}

TEST(Tensor, ZeroInitialized) {
  const Tensor t(Shape{3, 3});
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FullFill) {
  Tensor t = Tensor::full(Shape{4}, 2.5f);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(t[i], 2.5f);
  t.fill(-1.0f);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(t[i], -1.0f);
}

TEST(Tensor, ConstructFromDataValidatesSize) {
  EXPECT_NO_THROW(Tensor(Shape{2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor(Shape{2, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(Tensor, AtRowMajorIndexing) {
  Tensor t(Shape{2, 3}, {0, 1, 2, 3, 4, 5});
  EXPECT_EQ(t.at({0, 0}), 0.0f);
  EXPECT_EQ(t.at({0, 2}), 2.0f);
  EXPECT_EQ(t.at({1, 0}), 3.0f);
  EXPECT_EQ(t.at({1, 2}), 5.0f);
}

TEST(Tensor, AtBoundsChecked) {
  Tensor t(Shape{2, 3});
  EXPECT_THROW(t.at({2, 0}), std::out_of_range);
  EXPECT_THROW(t.at({0, 3}), std::out_of_range);
  EXPECT_THROW(t.at({0}), std::out_of_range);  // wrong rank
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t(Shape{2, 3}, {0, 1, 2, 3, 4, 5});
  t.reshape(Shape{3, 2});
  EXPECT_EQ(t.at({0, 1}), 1.0f);
  EXPECT_EQ(t.at({2, 1}), 5.0f);
  EXPECT_THROW(t.reshape(Shape{4}), std::invalid_argument);
}

TEST(Tensor, ElementwiseArithmetic) {
  Tensor a(Shape{3}, {1, 2, 3});
  const Tensor b(Shape{3}, {10, 20, 30});
  a += b;
  EXPECT_EQ(a[1], 22.0f);
  a -= b;
  EXPECT_EQ(a[1], 2.0f);
  a *= b;  // Hadamard
  EXPECT_EQ(a[2], 90.0f);
  a *= 0.5f;
  EXPECT_EQ(a[2], 45.0f);
  a += 1.0f;
  EXPECT_EQ(a[0], 6.0f);
}

TEST(Tensor, ShapeMismatchThrows) {
  Tensor a(Shape{3});
  const Tensor b(Shape{4});
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a -= b, std::invalid_argument);
  EXPECT_THROW(a.axpy(1.0f, b), std::invalid_argument);
}

TEST(Tensor, Axpy) {
  Tensor a(Shape{3}, {1, 1, 1});
  const Tensor b(Shape{3}, {1, 2, 3});
  a.axpy(2.0f, b);
  EXPECT_EQ(a[0], 3.0f);
  EXPECT_EQ(a[2], 7.0f);
}

TEST(Tensor, Reductions) {
  const Tensor t(Shape{4}, {1, -2, 3, 0.5f});
  EXPECT_FLOAT_EQ(t.sum(), 2.5f);
  EXPECT_FLOAT_EQ(t.max(), 3.0f);
  EXPECT_EQ(t.argmax(), 2u);
  EXPECT_NEAR(t.norm(), std::sqrt(1 + 4 + 9 + 0.25), 1e-6);
}

TEST(Tensor, ArgmaxFirstOnTies) {
  const Tensor t(Shape{4}, {1, 3, 3, 2});
  EXPECT_EQ(t.argmax(), 1u);
}

TEST(Tensor, RandnStatistics) {
  Xoshiro256 rng(5);
  const Tensor t = Tensor::randn(Shape{10000}, rng, 2.0f);
  double mean = 0.0;
  for (std::size_t i = 0; i < t.numel(); ++i) mean += t[i];
  mean /= static_cast<double>(t.numel());
  double var = 0.0;
  for (std::size_t i = 0; i < t.numel(); ++i) {
    var += (t[i] - mean) * (t[i] - mean);
  }
  var /= static_cast<double>(t.numel());
  EXPECT_NEAR(mean, 0.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Tensor, RandUniformRange) {
  Xoshiro256 rng(6);
  const Tensor t = Tensor::rand_uniform(Shape{1000}, rng, -1.0f, 3.0f);
  for (std::size_t i = 0; i < t.numel(); ++i) {
    EXPECT_GE(t[i], -1.0f);
    EXPECT_LT(t[i], 3.0f);
  }
}

TEST(Tensor, OutOfPlaceOperators) {
  const Tensor a(Shape{2}, {1, 2});
  const Tensor b(Shape{2}, {3, 4});
  const Tensor sum = a + b;
  EXPECT_EQ(sum[0], 4.0f);
  const Tensor diff = b - a;
  EXPECT_EQ(diff[1], 2.0f);
  const Tensor scaled = a * 3.0f;
  EXPECT_EQ(scaled[1], 6.0f);
}

}  // namespace
