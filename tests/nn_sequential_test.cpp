#include <gtest/gtest.h>

#include <memory>

#include "nn/activations.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/model_factory.hpp"
#include "nn/sequential.hpp"
#include "parallel/rng.hpp"

namespace {

using middlefl::nn::build_model;
using middlefl::nn::Linear;
using middlefl::nn::ModelArch;
using middlefl::nn::ModelSpec;
using middlefl::nn::ReLU;
using middlefl::nn::Sequential;
using middlefl::nn::Shape;
using middlefl::nn::Tensor;
using middlefl::parallel::Xoshiro256;

std::unique_ptr<Sequential> small_mlp(std::uint64_t seed) {
  auto model = std::make_unique<Sequential>(Shape{4});
  model->add(std::make_unique<Linear>(4, 8));
  model->add(std::make_unique<ReLU>());
  model->add(std::make_unique<Linear>(8, 3));
  model->build(seed);
  return model;
}

TEST(Sequential, BuildComputesShapesAndParams) {
  auto model = small_mlp(1);
  EXPECT_TRUE(model->built());
  EXPECT_EQ(model->output_shape(), Shape{3});
  EXPECT_EQ(model->param_count(), 4u * 8 + 8 + 8 * 3 + 3);
  EXPECT_EQ(model->layer_count(), 3u);
}

TEST(Sequential, AddAfterBuildThrows) {
  auto model = small_mlp(1);
  EXPECT_THROW(model->add(std::make_unique<ReLU>()), std::logic_error);
}

TEST(Sequential, BuildTwiceThrows) {
  auto model = small_mlp(1);
  EXPECT_THROW(model->build(2), std::logic_error);
}

TEST(Sequential, EmptyModelThrows) {
  Sequential model(Shape{4});
  EXPECT_THROW(model.build(1), std::logic_error);
}

TEST(Sequential, ForwardShape) {
  auto model = small_mlp(3);
  Xoshiro256 rng(5);
  const Tensor batch = Tensor::randn(Shape{7, 4}, rng);
  const Tensor& out = model->forward(batch, false);
  EXPECT_EQ(out.shape(), (Shape{7, 3}));
}

TEST(Sequential, ForwardRejectsWrongShape) {
  auto model = small_mlp(3);
  const Tensor bad(Shape{2, 5});
  EXPECT_THROW(model->forward(bad, false), std::invalid_argument);
}

TEST(Sequential, DeterministicInitialization) {
  auto a = small_mlp(42);
  auto b = small_mlp(42);
  ASSERT_EQ(a->param_count(), b->param_count());
  for (std::size_t i = 0; i < a->param_count(); ++i) {
    EXPECT_EQ(a->parameters()[i], b->parameters()[i]);
  }
  auto c = small_mlp(43);
  bool any_diff = false;
  for (std::size_t i = 0; i < a->param_count(); ++i) {
    any_diff = any_diff || a->parameters()[i] != c->parameters()[i];
  }
  EXPECT_TRUE(any_diff);
}

TEST(Sequential, SetParametersRoundTrip) {
  auto model = small_mlp(4);
  std::vector<float> values(model->param_count(), 0.5f);
  model->set_parameters(values);
  for (float p : model->parameters()) EXPECT_EQ(p, 0.5f);
  std::vector<float> wrong(model->param_count() + 1);
  EXPECT_THROW(model->set_parameters(wrong), std::invalid_argument);
}

TEST(Sequential, CloneCopiesParametersButNotState) {
  auto model = small_mlp(5);
  auto copy = model->clone();
  ASSERT_EQ(copy->param_count(), model->param_count());
  for (std::size_t i = 0; i < model->param_count(); ++i) {
    EXPECT_EQ(copy->parameters()[i], model->parameters()[i]);
  }
  // Mutating the clone leaves the original untouched.
  copy->parameters()[0] += 1.0f;
  EXPECT_NE(copy->parameters()[0], model->parameters()[0]);
}

TEST(Sequential, BackwardWithoutTrainingForwardThrows) {
  auto model = small_mlp(6);
  Xoshiro256 rng(6);
  const Tensor batch = Tensor::randn(Shape{2, 4}, rng);
  const Tensor& out = model->forward(batch, false);
  EXPECT_THROW(model->backward(out), std::logic_error);
}

TEST(Sequential, ZeroGradClears) {
  auto model = small_mlp(7);
  Xoshiro256 rng(7);
  const Tensor batch = Tensor::randn(Shape{3, 4}, rng);
  const Tensor& logits = model->forward(batch, true);
  auto loss = middlefl::nn::softmax_cross_entropy(
      logits, std::vector<std::int32_t>{0, 1, 2});
  model->backward(loss.grad_logits);
  bool any_nonzero = false;
  for (float g : model->gradients()) any_nonzero = any_nonzero || g != 0.0f;
  EXPECT_TRUE(any_nonzero);
  model->zero_grad();
  for (float g : model->gradients()) EXPECT_EQ(g, 0.0f);
}

TEST(Sequential, SummaryMentionsLayersAndParams) {
  auto model = small_mlp(8);
  const std::string s = model->summary();
  EXPECT_NE(s.find("Linear"), std::string::npos);
  EXPECT_NE(s.find("ReLU"), std::string::npos);
  EXPECT_NE(s.find("params="), std::string::npos);
}

// --- Model factory ---

TEST(ModelFactory, ArchRoundTrip) {
  using middlefl::nn::parse_model_arch;
  using middlefl::nn::to_string;
  for (auto arch : {ModelArch::kLogistic, ModelArch::kMlp, ModelArch::kCnn2,
                    ModelArch::kCnn3}) {
    EXPECT_EQ(parse_model_arch(to_string(arch)), arch);
  }
  EXPECT_THROW(parse_model_arch("resnet"), std::invalid_argument);
}

TEST(ModelFactory, Cnn2MatchesPaperStructure) {
  // 2 conv + 2 fc, as used for MNIST/EMNIST (§6.1.2).
  ModelSpec spec;
  spec.arch = ModelArch::kCnn2;
  spec.input_shape = Shape{1, 16, 16};
  spec.num_classes = 10;
  auto model = build_model(spec, 1);
  EXPECT_EQ(model->output_shape(), Shape{10});
  const std::string s = model->summary();
  // Two Conv2d occurrences.
  std::size_t convs = 0;
  for (std::size_t pos = s.find("Conv2d"); pos != std::string::npos;
       pos = s.find("Conv2d", pos + 1)) {
    ++convs;
  }
  EXPECT_EQ(convs, 2u);
}

TEST(ModelFactory, Cnn3HasThreeConvs) {
  ModelSpec spec;
  spec.arch = ModelArch::kCnn3;
  spec.input_shape = Shape{3, 16, 16};
  spec.num_classes = 10;
  auto model = build_model(spec, 1);
  const std::string s = model->summary();
  std::size_t convs = 0;
  for (std::size_t pos = s.find("Conv2d"); pos != std::string::npos;
       pos = s.find("Conv2d", pos + 1)) {
    ++convs;
  }
  EXPECT_EQ(convs, 3u);
}

TEST(ModelFactory, MlpAndLogisticWork) {
  ModelSpec mlp;
  mlp.arch = ModelArch::kMlp;
  mlp.input_shape = Shape{1, 8, 8};
  mlp.num_classes = 26;
  mlp.hidden = 32;
  auto mlp_model = build_model(mlp, 2);
  EXPECT_EQ(mlp_model->output_shape(), Shape{26});

  ModelSpec logistic;
  logistic.arch = ModelArch::kLogistic;
  logistic.input_shape = Shape{5};
  logistic.num_classes = 3;
  auto log_model = build_model(logistic, 2);
  EXPECT_EQ(log_model->param_count(), 5u * 3 + 3);
}

TEST(ModelFactory, Mlp2HasTwoHiddenLayers) {
  ModelSpec spec;
  spec.arch = ModelArch::kMlp2;
  spec.input_shape = Shape{1, 8, 8};
  spec.num_classes = 10;
  spec.hidden = 48;
  auto model = build_model(spec, 4);
  const std::string s = model->summary();
  std::size_t linears = 0;
  for (std::size_t pos = s.find("Linear"); pos != std::string::npos;
       pos = s.find("Linear", pos + 1)) {
    ++linears;
  }
  EXPECT_EQ(linears, 3u);  // 48 -> 24 -> classes
  EXPECT_NE(s.find("->24)"), std::string::npos);
}

TEST(ModelFactory, ConvArchRejectsFlatInput) {
  ModelSpec spec;
  spec.arch = ModelArch::kCnn2;
  spec.input_shape = Shape{64};
  EXPECT_THROW(build_model(spec, 1), std::invalid_argument);
}

TEST(ModelFactory, DropoutVariantTrains) {
  ModelSpec spec;
  spec.arch = ModelArch::kMlp;
  spec.input_shape = Shape{8};
  spec.num_classes = 4;
  spec.dropout = 0.25f;
  auto model = build_model(spec, 3);
  Xoshiro256 rng(3);
  const Tensor batch = Tensor::randn(Shape{4, 8}, rng);
  const Tensor& logits = model->forward(batch, true);
  auto loss = middlefl::nn::softmax_cross_entropy(
      logits, std::vector<std::int32_t>{0, 1, 2, 3});
  model->zero_grad();
  EXPECT_NO_THROW(model->backward(loss.grad_logits));
}

}  // namespace
