// Observability subsystem tests.
//
// 1. MetricsRegistry: registration semantics, hot-path recording across
//    threads, histogram bucketing, JSON export shape.
// 2. TraceRecorder: event kinds, ring-buffer overwrite accounting, thread
//    naming, Chrome trace-event export, TraceSpan null fast path.
// 3. RunLogger: JSONL record shape and counts.
// 4. History CSV round-trip, including algorithm names containing commas
//    and quotes (util::csv_split_row undoing util::csv_escape).
// 5. The StepObserver event stream (on_dropouts / on_blends /
//    on_cloud_sync) and CommStatsObserver under lossy + latency link
//    policies — the events must reconcile exactly with the simulation's
//    own counters and the transport's wire reports.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/metrics.hpp"
#include "core/step_observer.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/run_logger.hpp"
#include "obs/trace_recorder.hpp"
#include "sim_fixture.hpp"
#include "util/csv.hpp"

namespace {

using middlefl::core::Algorithm;
using middlefl::core::CommStatsObserver;
using middlefl::core::RunHistory;
using middlefl::core::StepObserver;
using middlefl::core::StepPhase;
using middlefl::obs::MetricsRegistry;
using middlefl::obs::RunLogger;
using middlefl::obs::TraceRecorder;
using middlefl::obs::TraceSpan;
using middlefl::testing::SimBundle;
using middlefl::transport::LinkKind;
using middlefl::transport::LinkStats;

// ---------------------------------------------------------------------------
// MetricsRegistry

TEST(MetricsRegistry, RegistrationIsIdempotentPerFamily) {
  MetricsRegistry registry;
  const auto a = registry.counter("events");
  EXPECT_EQ(registry.counter("events"), a);
  const auto g = registry.gauge("depth");
  EXPECT_EQ(registry.gauge("depth"), g);
  // Same name in a different family is a configuration bug.
  EXPECT_THROW(registry.gauge("events"), std::invalid_argument);
  EXPECT_THROW(registry.counter("depth"), std::invalid_argument);
  // Histograms must re-register with identical bounds.
  const auto h = registry.histogram("lat", {1.0, 2.0});
  EXPECT_EQ(registry.histogram("lat", {1.0, 2.0}), h);
  EXPECT_THROW(registry.histogram("lat", {1.0, 3.0}), std::invalid_argument);
}

TEST(MetricsRegistry, CountersAndGaugesAggregate) {
  MetricsRegistry registry;
  const auto hits = registry.counter("hits");
  const auto depth = registry.gauge("depth");
  registry.add(hits);
  registry.add(hits, 4.0);
  registry.set(depth, 7.0);
  registry.set(depth, 3.0);  // last writer wins

  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "hits");
  EXPECT_DOUBLE_EQ(snap.counters[0].second, 5.0);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].second, 3.0);
}

TEST(MetricsRegistry, CountersSumAcrossThreads) {
  MetricsRegistry registry;
  const auto hits = registry.counter("hits");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&registry, hits] {
      for (int j = 0; j < kPerThread; ++j) registry.add(hits);
    });
  }
  for (auto& t : threads) t.join();
  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.counters[0].second, kThreads * kPerThread);
  EXPECT_GE(registry.num_threads_seen(), static_cast<std::size_t>(kThreads));
}

TEST(MetricsRegistry, HistogramBucketsValues) {
  MetricsRegistry registry;
  // Buckets: (-inf,1], (1,5], (5,+inf)
  const auto lat = registry.histogram("lat", {1.0, 5.0});
  registry.observe(lat, 0.5);
  registry.observe(lat, 1.0);  // boundary lands in its own bucket
  registry.observe(lat, 3.0);
  registry.observe(lat, 100.0);  // overflow bucket

  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const auto& h = snap.histograms[0];
  ASSERT_EQ(h.counts.size(), 3u);
  EXPECT_EQ(h.counts[0], 2u);
  EXPECT_EQ(h.counts[1], 1u);
  EXPECT_EQ(h.counts[2], 1u);
  EXPECT_EQ(h.count, 4u);
  EXPECT_DOUBLE_EQ(h.sum, 104.5);
}

TEST(MetricsRegistry, QuantileInterpolatesWithinBucket) {
  MetricsRegistry registry;
  // Buckets: (0,10], (10,20], (20,+inf); 10 observations in the first
  // bucket, 10 in the second -> exact uniform ranks.
  const auto lat = registry.histogram("lat", {10.0, 20.0});
  for (int i = 0; i < 10; ++i) registry.observe(lat, 5.0);
  for (int i = 0; i < 10; ++i) registry.observe(lat, 15.0);

  const auto h = registry.snapshot().histograms[0];
  // rank 10 of 20 = top of the first bucket; rank 5 = its midpoint.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 5.0);
  // rank 15 = midpoint of the second bucket (10, 20].
  EXPECT_DOUBLE_EQ(h.quantile(0.75), 15.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 20.0);
  // q clamps to [0, 1] and q=0 sits on the first populated bucket's floor.
  EXPECT_DOUBLE_EQ(h.quantile(-3.0), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(7.0), h.quantile(1.0));
}

TEST(MetricsRegistry, QuantileHandlesOverflowAndEmpty) {
  MetricsRegistry registry;
  const auto lat = registry.histogram("lat", {1.0, 5.0});
  const auto empty = registry.snapshot().histograms[0];
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);

  // Everything lands past the last bound: the estimate saturates at the
  // largest value the buckets can still resolve.
  registry.observe(lat, 100.0);
  registry.observe(lat, 200.0);
  const auto h = registry.snapshot().histograms[0];
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 5.0);
}

TEST(MetricsRegistry, QuantileMatchesExactPercentileOnDenseBuckets) {
  MetricsRegistry registry;
  // One-unit-wide buckets over [0, 100]: bucket interpolation reproduces
  // exact percentiles of uniformly spread integer samples to within one
  // bucket width — the cross-check bench/serving_load runs against its
  // client-side sorted-sample percentiles.
  std::vector<double> bounds;
  for (int b = 1; b <= 100; ++b) bounds.push_back(b);
  const auto lat = registry.histogram("lat", bounds);
  for (int v = 1; v <= 100; ++v) registry.observe(lat, v - 0.5);

  const auto h = registry.snapshot().histograms[0];
  EXPECT_NEAR(h.quantile(0.50), 50.0, 1.0);
  EXPECT_NEAR(h.quantile(0.95), 95.0, 1.0);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.0);
}

TEST(MetricsRegistry, JsonExportHasStableShape) {
  MetricsRegistry registry;
  registry.add(registry.counter("a.count"), 2.0);
  registry.set(registry.gauge("b.depth"), 1.5);
  registry.observe(registry.histogram("c.lat", {1.0}), 0.5);
  std::ostringstream out;
  registry.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"a.count\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"b.depth\": 1.5"), std::string::npos);
  EXPECT_NE(json.find("\"bounds\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// TraceRecorder

TEST(TraceRecorder, RecordsAllEventKinds) {
  TraceRecorder trace;
  trace.name_this_thread("main");
  const auto begin = TraceRecorder::Clock::now();
  trace.complete("span", "test", begin, TraceRecorder::Clock::now(), 7, "n");
  trace.instant("marker", "test", 3, "count");
  trace.counter("queue", "test", 2.0);
  EXPECT_EQ(trace.event_count(), 3u);
  EXPECT_EQ(trace.dropped_events(), 0u);
  EXPECT_EQ(trace.num_threads_seen(), 1u);

  std::ostringstream out;
  trace.write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("\"main\""), std::string::npos);
  EXPECT_NE(json.find("\"n\": 7"), std::string::npos);
}

TEST(TraceRecorder, RingBufferKeepsTailAndCountsDrops) {
  TraceRecorder trace(/*events_per_thread=*/4);
  for (int i = 0; i < 10; ++i) trace.instant("e" + std::to_string(i), "t");
  EXPECT_EQ(trace.event_count(), 4u);
  EXPECT_EQ(trace.dropped_events(), 6u);
  std::ostringstream out;
  trace.write_chrome_trace(out);
  // The tail of the run survives, the head is gone.
  EXPECT_NE(out.str().find("\"e9\""), std::string::npos);
  EXPECT_EQ(out.str().find("\"e0\""), std::string::npos);
}

TEST(TraceRecorder, SpanIsNoOpOnNullRecorder) {
  // Must not crash, allocate buffers, or read clocks.
  TraceSpan span(nullptr, "never", "test");
  TraceRecorder trace;
  { TraceSpan live(&trace, "scoped", "test", 1, "k"); }
  EXPECT_EQ(trace.event_count(), 1u);
}

TEST(TraceRecorder, MergesPerThreadTimelines) {
  TraceRecorder trace;
  std::thread a([&trace] {
    trace.name_this_thread("a");
    trace.instant("from-a", "t");
  });
  std::thread b([&trace] {
    trace.name_this_thread("b");
    trace.instant("from-b", "t");
  });
  a.join();
  b.join();
  EXPECT_EQ(trace.event_count(), 2u);
  EXPECT_EQ(trace.num_threads_seen(), 2u);
  std::ostringstream out;
  trace.write_chrome_trace(out);
  EXPECT_NE(out.str().find("from-a"), std::string::npos);
  EXPECT_NE(out.str().find("from-b"), std::string::npos);
}

// ---------------------------------------------------------------------------
// RunLogger

TEST(RunLogger, WritesOneJsonObjectPerRecord) {
  std::ostringstream out;
  RunLogger logger(out);

  middlefl::obs::StepRecord step;
  step.step = 3;
  step.synced = true;
  step.selected = 6;
  step.stragglers = 1;
  step.blends = 2;
  step.blend_weight_sum = 0.75;
  step.contributing_edges = 3;
  step.step_wall_us = 120.5;
  step.phase_us = {{"select", 10.0}, {"local_train", 90.0}};
  step.links.push_back({"wireless_up", 6, 1, 4096, 2});
  logger.log_step(step);
  logger.log_eval({3, 0.5, 1.25, 900.0});
  logger.flush();
  EXPECT_EQ(logger.records_written(), 2u);

  std::istringstream lines(out.str());
  std::string line;
  std::vector<std::string> records;
  while (std::getline(lines, line)) records.push_back(line);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_NE(records[0].find("\"kind\": \"step\""), std::string::npos);
  EXPECT_NE(records[0].find("\"step\": 3"), std::string::npos);
  EXPECT_NE(records[0].find("\"synced\": true"), std::string::npos);
  EXPECT_NE(records[0].find("\"wireless_up\""), std::string::npos);
  EXPECT_NE(records[0].find("\"select\""), std::string::npos);
  EXPECT_NE(records[1].find("\"kind\": \"eval\""), std::string::npos);
  EXPECT_NE(records[1].find("\"accuracy\": 0.5"), std::string::npos);
}

// ---------------------------------------------------------------------------
// History CSV round-trip (names with commas/quotes)

TEST(HistoryCsv, RoundTripsAlgorithmNameWithCommasAndQuotes) {
  RunHistory history;
  history.algorithm = "MIDDLE, \"tuned\", v2";
  history.points.push_back({5, 0.25, 1.5, {}, {}});
  history.points.push_back({10, 0.5, 0.75, {}, {}});

  const std::string path =
      ::testing::TempDir() + "obs_test_history_roundtrip.csv";
  middlefl::core::save_history_csv(history, path);
  const RunHistory loaded = middlefl::core::load_history_csv(path);
  std::remove(path.c_str());

  EXPECT_EQ(loaded.algorithm, history.algorithm);
  ASSERT_EQ(loaded.points.size(), 2u);
  EXPECT_EQ(loaded.points[0].step, 5u);
  EXPECT_DOUBLE_EQ(loaded.points[0].accuracy, 0.25);
  EXPECT_DOUBLE_EQ(loaded.points[1].loss, 0.75);
}

TEST(CsvSplitRow, UndoesEscaping) {
  using middlefl::util::csv_split_row;
  EXPECT_EQ(csv_split_row("a,b,c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(csv_split_row("\"a,b\",c"),
            (std::vector<std::string>{"a,b", "c"}));
  EXPECT_EQ(csv_split_row("\"say \"\"hi\"\"\",x"),
            (std::vector<std::string>{"say \"hi\"", "x"}));
  EXPECT_EQ(csv_split_row("a,,c"),
            (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(csv_split_row("a,"), (std::vector<std::string>{"a", ""}));
  EXPECT_EQ(csv_split_row(""), (std::vector<std::string>{""}));
  EXPECT_THROW(csv_split_row("\"unterminated"), std::invalid_argument);
  EXPECT_THROW(csv_split_row("\"x\"y,z"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Step-event stream under lossy + latency link policies (satellite 3)

/// Collects every pipeline event relevant to the dropout/blend/sync
/// contract so tests can reconcile the stream against the simulation's
/// counters.
class EventLog final : public StepObserver {
 public:
  struct Dropout {
    std::size_t step, stragglers, lost;
  };
  struct Blend {
    std::size_t step, count;
    double weight_sum;
  };
  struct Sync {
    std::size_t step, contributing;
  };

  std::vector<Dropout> dropouts;
  std::vector<Blend> blends;
  std::vector<Sync> syncs;
  LinkStats uplink_total;
  LinkStats downlink_total;

  void on_dropouts(std::size_t step, std::size_t stragglers,
                   std::size_t lost) override {
    dropouts.push_back({step, stragglers, lost});
  }
  void on_blends(std::size_t step, std::size_t count,
                 double weight_sum) override {
    blends.push_back({step, count, weight_sum});
  }
  void on_cloud_sync(std::size_t step, std::size_t contributing) override {
    syncs.push_back({step, contributing});
  }
  void on_transfers(StepPhase, LinkKind kind, const LinkStats& delta,
                    std::size_t) override {
    if (kind == LinkKind::kWirelessUp) uplink_total += delta;
    if (kind == LinkKind::kWirelessDown) downlink_total += delta;
  }
};

TEST(EventStream, ReconcilesWithCountersUnderLossyLatencyLinks) {
  SimBundle bundle;
  // Lossy wireless in both directions, one step of uplink latency, plus a
  // straggler-heavy device population: every dropout path fires.
  bundle.cfg.transport.wireless_up.loss_prob = 0.3;
  bundle.cfg.transport.wireless_up.latency_steps = 1;
  bundle.cfg.transport.wireless_down.loss_prob = 0.25;
  bundle.cfg.device_speeds.assign(12, 1.0);
  bundle.cfg.device_speeds[0] = 0.05;
  bundle.cfg.round_deadline = 5.0;
  auto sim = bundle.make(Algorithm::kMiddle);

  EventLog events;
  CommStatsObserver comm;  // independent copy of the built-in observer
  sim->add_observer(&events);
  sim->add_observer(&comm);
  sim->run();

  // Dropout events must sum exactly to the simulation's counters, and a
  // lossy downlink + slow device must actually produce some.
  std::size_t stragglers = 0, lost = 0;
  for (const auto& d : events.dropouts) {
    EXPECT_GT(d.stragglers + d.lost, 0u) << "empty dropout event";
    stragglers += d.stragglers;
    lost += d.lost;
  }
  EXPECT_EQ(stragglers, sim->straggler_drops());
  // lost_downloads() counts every downlink drop, including drops on
  // downloads to devices that were then dropped as stragglers anyway (the
  // event classifies those as stragglers, not lost downloads).
  EXPECT_LE(lost, sim->lost_downloads());
  EXPECT_GT(stragglers, 0u);
  EXPECT_GT(lost, 0u);

  // Blend events reconcile with the on-device aggregation counter.
  std::size_t blend_count = 0;
  for (const auto& b : events.blends) {
    EXPECT_GT(b.count, 0u);
    EXPECT_GT(b.weight_sum, 0.0);
    blend_count += b.count;
  }
  EXPECT_EQ(blend_count, sim->on_device_aggregations());

  // Cloud syncs fire every cloud_interval steps, never with more edges
  // than exist.
  ASSERT_EQ(events.syncs.size(),
            bundle.cfg.total_steps / bundle.cfg.cloud_interval);
  for (const auto& s : events.syncs) {
    EXPECT_EQ(s.step % bundle.cfg.cloud_interval, 0u);
    EXPECT_LE(s.contributing, sim->num_edges());
  }

  // Transfer deltas reconcile with the transport's own wire report, drops
  // included (lossy uplink must have dropped something).
  const auto& up = sim->transport().link(LinkKind::kWirelessUp).stats();
  const auto& down = sim->transport().link(LinkKind::kWirelessDown).stats();
  EXPECT_EQ(events.uplink_total.transfers, up.transfers);
  EXPECT_EQ(events.uplink_total.dropped, up.dropped);
  EXPECT_EQ(events.uplink_total.bytes, up.bytes);
  EXPECT_EQ(events.downlink_total.transfers, down.transfers);
  EXPECT_EQ(events.downlink_total.dropped, down.dropped);
  EXPECT_GT(up.dropped, 0u);
  EXPECT_GT(down.dropped, 0u);

  // The user-registered CommStatsObserver saw the identical stream as the
  // built-in one behind comm_stats().
  const auto& mine = comm.stats();
  const auto& builtin = sim->comm_stats();
  EXPECT_EQ(mine.device_downloads, builtin.device_downloads);
  EXPECT_EQ(mine.device_uploads, builtin.device_uploads);
  EXPECT_EQ(mine.edge_uploads, builtin.edge_uploads);
  EXPECT_EQ(mine.edge_downloads, builtin.edge_downloads);
  EXPECT_EQ(mine.device_broadcasts, builtin.device_broadcasts);
}

TEST(EventStream, WanLatencyDefersCloudContributions) {
  SimBundle bundle;
  bundle.cfg.transport.wan_up.latency_steps = 1;
  auto sim = bundle.make(Algorithm::kMiddle);

  EventLog events;
  sim->add_observer(&events);
  sim->run();

  // With one step of WAN latency every sync's uploads are still in flight
  // when the cloud aggregates, so the first sync has no contributions and
  // later syncs see only the previous sync's (stale) uploads.
  ASSERT_FALSE(events.syncs.empty());
  EXPECT_EQ(events.syncs.front().contributing, 0u);
  for (std::size_t i = 1; i < events.syncs.size(); ++i) {
    EXPECT_LE(events.syncs[i].contributing, sim->num_edges());
  }
  // The stale uploads do eventually land: the final in-flight count equals
  // exactly one sync's worth of WAN uploads.
  EXPECT_EQ(sim->transport().total_in_flight(), 0u + sim->num_edges());
}

TEST(EventStream, TraceCapturesDropoutAndBlendInstants) {
  SimBundle bundle;
  bundle.cfg.transport.wireless_down.loss_prob = 0.3;
  auto sim = bundle.make(Algorithm::kMiddle);

  TraceRecorder trace;
  sim->set_observability({&trace, nullptr, nullptr});
  sim->run();

  std::ostringstream out;
  trace.write_chrome_trace(out);
  const std::string json = out.str();
  // The serial replay point emits instant markers for the lossy downlink's
  // dropouts and the mobility-driven blends, and every phase span shows up.
  EXPECT_NE(json.find("\"dropouts\""), std::string::npos);
  EXPECT_NE(json.find("\"blends\""), std::string::npos);
  for (const char* phase : {"\"select\"", "\"distribute\"", "\"local_train\"",
                            "\"upload\"", "\"edge_aggregate\"",
                            "\"cloud_sync\"", "\"step\"", "\"evaluate\""}) {
    EXPECT_NE(json.find(phase), std::string::npos) << phase;
  }
}

}  // namespace
