// Finite-difference gradient checks for every layer type, run through
// Sequential + softmax cross-entropy. These tests anchor the correctness of
// the whole training stack: if they pass, local SGD optimizes the real
// loss.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/pooling.hpp"
#include "nn/sequential.hpp"
#include "parallel/rng.hpp"

namespace {

using middlefl::nn::Conv2d;
using middlefl::nn::Conv2dConfig;
using middlefl::nn::Flatten;
using middlefl::nn::Linear;
using middlefl::nn::MaxPool2d;
using middlefl::nn::ReLU;
using middlefl::nn::Sequential;
using middlefl::nn::Shape;
using middlefl::nn::Tanh;
using middlefl::nn::Tensor;
using middlefl::parallel::Xoshiro256;

float loss_at(Sequential& model, const Tensor& input,
              std::span<const std::int32_t> labels) {
  const Tensor& logits = model.forward(input, false);
  return middlefl::nn::cross_entropy_value(logits, labels);
}

struct GradCheckResult {
  /// Number of parameters whose relative error exceeds the tolerance.
  std::size_t failures = 0;
  std::size_t total = 0;
  /// Worst relative error among the PASSING majority is implied < tol;
  /// `worst` is the overall worst, for diagnostics.
  double worst = 0.0;
};

/// Central-difference check of d(loss)/d(theta_i) for every parameter.
/// ReLU/MaxPool kinks make a handful of coordinates non-differentiable
/// inside the finite-difference window, so the caller asserts a bound on
/// the *count* of failing coordinates instead of the max error (zero for
/// smooth networks).
GradCheckResult gradient_check(Sequential& model, const Tensor& input,
                               std::span<const std::int32_t> labels,
                               double tol = 0.05, float eps = 5e-3f) {
  const Tensor& logits = model.forward(input, true);
  auto result = middlefl::nn::softmax_cross_entropy(logits, labels);
  model.zero_grad();
  model.backward(result.grad_logits);
  std::vector<float> analytic(model.gradients().begin(),
                              model.gradients().end());

  GradCheckResult out;
  auto params = model.parameters();
  out.total = params.size();
  for (std::size_t i = 0; i < params.size(); ++i) {
    const float saved = params[i];
    params[i] = saved + eps;
    const double plus = loss_at(model, input, labels);
    params[i] = saved - eps;
    const double minus = loss_at(model, input, labels);
    params[i] = saved;
    const double numeric = (plus - minus) / (2.0 * eps);
    const double denom =
        std::max({2e-2, std::abs(numeric),
                  std::abs(static_cast<double>(analytic[i]))});
    const double rel = std::abs(numeric - analytic[i]) / denom;
    out.worst = std::max(out.worst, rel);
    if (rel > tol) ++out.failures;
  }
  return out;
}

Tensor random_batch(const Shape& sample_shape, std::size_t batch,
                    Xoshiro256& rng) {
  std::vector<std::size_t> dims{batch};
  for (std::size_t d : sample_shape.dims()) dims.push_back(d);
  return Tensor::randn(Shape(dims), rng);
}

std::vector<std::int32_t> random_labels(std::size_t batch,
                                        std::size_t classes,
                                        Xoshiro256& rng) {
  std::vector<std::int32_t> labels(batch);
  for (auto& l : labels) l = static_cast<std::int32_t>(rng.bounded(classes));
  return labels;
}

TEST(GradCheck, LinearOnly) {
  Sequential model(Shape{5});
  model.add(std::make_unique<Linear>(5, 4));
  model.build(11);
  Xoshiro256 rng(21);
  const Tensor input = random_batch(Shape{5}, 3, rng);
  const auto labels = random_labels(3, 4, rng);
  const auto check = gradient_check(model, input, labels);
  EXPECT_EQ(check.failures, 0u) << "worst rel error " << check.worst;
}

TEST(GradCheck, TwoLinearRelu) {
  Sequential model(Shape{6});
  model.add(std::make_unique<Linear>(6, 8));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<Linear>(8, 3));
  model.build(12);
  Xoshiro256 rng(22);
  const Tensor input = random_batch(Shape{6}, 4, rng);
  const auto labels = random_labels(4, 3, rng);
  const auto check = gradient_check(model, input, labels);
  EXPECT_LE(check.failures, check.total / 20) << "worst " << check.worst;
}

TEST(GradCheck, TanhMlp) {
  Sequential model(Shape{4});
  model.add(std::make_unique<Linear>(4, 6));
  model.add(std::make_unique<Tanh>());
  model.add(std::make_unique<Linear>(6, 3));
  model.build(13);
  Xoshiro256 rng(23);
  const Tensor input = random_batch(Shape{4}, 2, rng);
  const auto labels = random_labels(2, 3, rng);
  const auto check = gradient_check(model, input, labels);
  EXPECT_EQ(check.failures, 0u) << "worst rel error " << check.worst;
}

TEST(GradCheck, ConvNoPadding) {
  Sequential model(Shape{1, 5, 5});
  model.add(std::make_unique<Conv2d>(Conv2dConfig{1, 2, 3, 1, 0}));
  model.add(std::make_unique<Flatten>());
  model.add(std::make_unique<Linear>(0, 3));
  model.build(14);
  Xoshiro256 rng(24);
  const Tensor input = random_batch(Shape{1, 5, 5}, 2, rng);
  const auto labels = random_labels(2, 3, rng);
  const auto check = gradient_check(model, input, labels);
  EXPECT_EQ(check.failures, 0u) << "worst rel error " << check.worst;
}

TEST(GradCheck, ConvWithPaddingAndStride) {
  Sequential model(Shape{2, 6, 6});
  model.add(std::make_unique<Conv2d>(Conv2dConfig{2, 3, 3, 2, 1}));
  model.add(std::make_unique<Flatten>());
  model.add(std::make_unique<Linear>(0, 4));
  model.build(15);
  Xoshiro256 rng(25);
  const Tensor input = random_batch(Shape{2, 6, 6}, 2, rng);
  const auto labels = random_labels(2, 4, rng);
  const auto check = gradient_check(model, input, labels);
  EXPECT_EQ(check.failures, 0u) << "worst rel error " << check.worst;
}

TEST(GradCheck, ConvReluPoolStack) {
  Sequential model(Shape{1, 8, 8});
  model.add(std::make_unique<Conv2d>(Conv2dConfig{1, 2, 3, 1, 1}));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<MaxPool2d>(2));
  model.add(std::make_unique<Flatten>());
  model.add(std::make_unique<Linear>(0, 3));
  model.build(16);
  Xoshiro256 rng(26);
  const Tensor input = random_batch(Shape{1, 8, 8}, 2, rng);
  const auto labels = random_labels(2, 3, rng);
  const auto check = gradient_check(model, input, labels);
  EXPECT_LE(check.failures, 1 + check.total / 20) << "worst " << check.worst;
}

TEST(GradCheck, DeepConvStack) {
  Sequential model(Shape{1, 8, 8});
  model.add(std::make_unique<Conv2d>(Conv2dConfig{1, 2, 3, 1, 1}));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<MaxPool2d>(2));
  model.add(std::make_unique<Conv2d>(Conv2dConfig{2, 4, 3, 1, 1}));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<MaxPool2d>(2));
  model.add(std::make_unique<Flatten>());
  model.add(std::make_unique<Linear>(0, 5));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<Linear>(5, 3));
  model.build(17);
  Xoshiro256 rng(27);
  const Tensor input = random_batch(Shape{1, 8, 8}, 2, rng);
  const auto labels = random_labels(2, 3, rng);
  const auto check = gradient_check(model, input, labels);
  EXPECT_LE(check.failures, 1 + check.total / 20) << "worst " << check.worst;
}

TEST(GradCheck, ConvAvgPoolStack) {
  // AvgPool is smooth, so with Tanh this whole stack admits an exact
  // finite-difference check (zero failing coordinates).
  Sequential model(Shape{1, 6, 6});
  model.add(std::make_unique<Conv2d>(Conv2dConfig{1, 2, 3, 1, 1}));
  model.add(std::make_unique<Tanh>());
  model.add(std::make_unique<middlefl::nn::AvgPool2d>(2));
  model.add(std::make_unique<Flatten>());
  model.add(std::make_unique<Linear>(0, 3));
  model.build(20);
  Xoshiro256 rng(30);
  const Tensor input = random_batch(Shape{1, 6, 6}, 2, rng);
  const auto labels = random_labels(2, 3, rng);
  const auto check = gradient_check(model, input, labels);
  EXPECT_EQ(check.failures, 0u) << "worst rel error " << check.worst;
}

TEST(GradCheck, BatchSizeOne) {
  Sequential model(Shape{3});
  model.add(std::make_unique<Linear>(3, 4));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<Linear>(4, 2));
  model.build(18);
  Xoshiro256 rng(28);
  const Tensor input = random_batch(Shape{3}, 1, rng);
  const auto labels = random_labels(1, 2, rng);
  const auto check = gradient_check(model, input, labels);
  EXPECT_LE(check.failures, 1 + check.total / 20) << "worst " << check.worst;
}

// Per-layer INPUT gradient checks: with the scalar probe s(y) = <c, y> the
// exact d(s)/d(input) equals the layer's backward output for grad_output=c.
class InputGradCheck : public ::testing::Test {
 protected:
  /// Checks d<c, layer(x)>/dx against central differences on a built layer.
  static double input_grad_error(middlefl::nn::Layer& layer,
                                 const Shape& sample_shape, std::size_t batch,
                                 std::uint64_t seed) {
    Xoshiro256 rng(seed);
    Tensor input = random_batch(sample_shape, batch, rng);
    Tensor out;
    layer.forward(input, out, true);
    const Tensor probe = Tensor::randn(out.shape(), rng);
    Tensor grad_input;
    layer.backward(input, probe, grad_input);

    double worst = 0.0;
    const float eps = 1e-2f;
    for (std::size_t i = 0; i < input.numel(); ++i) {
      const float saved = input[i];
      Tensor scratch;
      input[i] = saved + eps;
      layer.forward(input, scratch, false);
      double plus = 0.0;
      for (std::size_t j = 0; j < scratch.numel(); ++j) {
        plus += static_cast<double>(probe[j]) * scratch[j];
      }
      input[i] = saved - eps;
      layer.forward(input, scratch, false);
      double minus = 0.0;
      for (std::size_t j = 0; j < scratch.numel(); ++j) {
        minus += static_cast<double>(probe[j]) * scratch[j];
      }
      input[i] = saved;
      const double numeric = (plus - minus) / (2.0 * eps);
      const double denom = std::max(
          {1e-2, std::abs(numeric), std::abs(static_cast<double>(grad_input[i]))});
      worst = std::max(worst, std::abs(numeric - grad_input[i]) / denom);
    }
    return worst;
  }
};

TEST_F(InputGradCheck, Linear) {
  Linear layer(4, 5);
  layer.build(Shape{4});
  std::vector<float> params(layer.param_count());
  std::vector<float> grads(layer.param_count());
  layer.bind(params, grads);
  Xoshiro256 rng(31);
  layer.init_params(rng);
  EXPECT_LT(input_grad_error(layer, Shape{4}, 3, 131), 0.05);
}

TEST_F(InputGradCheck, Conv2d) {
  Conv2d layer(Conv2dConfig{2, 3, 3, 1, 1});
  layer.build(Shape{2, 5, 5});
  std::vector<float> params(layer.param_count());
  std::vector<float> grads(layer.param_count());
  layer.bind(params, grads);
  Xoshiro256 rng(32);
  layer.init_params(rng);
  EXPECT_LT(input_grad_error(layer, Shape{2, 5, 5}, 2, 132), 0.05);
}

TEST_F(InputGradCheck, Tanh) {
  Tanh layer;
  layer.build(Shape{6});
  EXPECT_LT(input_grad_error(layer, Shape{6}, 3, 133), 0.05);
}

}  // namespace
