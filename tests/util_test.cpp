#include <gtest/gtest.h>

#include <sstream>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"

namespace {

using middlefl::util::CliParser;
using middlefl::util::csv_escape;
using middlefl::util::CsvWriter;
using middlefl::util::EmaSmoother;
using middlefl::util::RunningStats;

TEST(CsvEscape, PlainFieldUnchanged) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape("1.5"), "1.5");
}

TEST(CsvEscape, QuotesWhenNeeded) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriter, WritesHeaderAndRows) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.header({"step", "acc"});
  writer.add(10).add(0.5).end_row();
  writer.add(20).add(0.75).end_row();
  EXPECT_EQ(out.str(), "step,acc\n10,0.5\n20,0.75\n");
  EXPECT_EQ(writer.rows_written(), 2u);
}

TEST(CsvWriter, HeaderAfterRowsThrows) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.add("x").end_row();
  EXPECT_THROW(writer.header({"a"}), std::logic_error);
}

TEST(CsvWriter, NumberFormattingRoundTrips) {
  EXPECT_EQ(middlefl::util::csv_number(0.125), "0.125");
  EXPECT_EQ(middlefl::util::csv_number(3.0), "3");
  // 9 significant digits round-trip typical accuracies.
  EXPECT_EQ(middlefl::util::csv_number(0.123456789), "0.123456789");
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 4.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats stats;
  stats.add(3.5);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.5);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 3.5);
  EXPECT_DOUBLE_EQ(stats.max(), 3.5);
}

TEST(EmaSmoother, FirstValuePassesThrough) {
  EmaSmoother ema(0.5);
  EXPECT_FALSE(ema.initialized());
  EXPECT_DOUBLE_EQ(ema.update(4.0), 4.0);
  EXPECT_DOUBLE_EQ(ema.update(8.0), 6.0);
  EXPECT_DOUBLE_EQ(ema.update(6.0), 6.0);
}

TEST(MovingAverage, FlatSeriesUnchanged) {
  const std::vector<double> series(10, 3.0);
  const auto smoothed = middlefl::util::moving_average(series, 2);
  for (double v : smoothed) EXPECT_DOUBLE_EQ(v, 3.0);
}

TEST(MovingAverage, WindowTruncatesAtEnds) {
  const std::vector<double> series{0, 10, 20};
  const auto smoothed = middlefl::util::moving_average(series, 1);
  EXPECT_DOUBLE_EQ(smoothed[0], 5.0);   // mean of {0, 10}
  EXPECT_DOUBLE_EQ(smoothed[1], 10.0);  // mean of {0, 10, 20}
  EXPECT_DOUBLE_EQ(smoothed[2], 15.0);  // mean of {10, 20}
}

TEST(Quantile, MedianAndExtremes) {
  std::vector<double> values{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(middlefl::util::quantile(values, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(middlefl::util::quantile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(middlefl::util::quantile(values, 1.0), 5.0);
  EXPECT_THROW(middlefl::util::quantile({}, 0.5), std::invalid_argument);
}

TEST(Stats, MeanAndStddev) {
  const std::vector<double> values{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(middlefl::util::mean(values), 2.5);
  EXPECT_NEAR(middlefl::util::sample_stddev(values), 1.2909944, 1e-6);
  EXPECT_DOUBLE_EQ(middlefl::util::mean({}), 0.0);
}

TEST(Logging, LevelRoundTrip) {
  using middlefl::util::LogLevel;
  using middlefl::util::parse_log_level;
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("WARN"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("nonsense"), LogLevel::kInfo);
  EXPECT_EQ(middlefl::util::to_string(LogLevel::kError), "ERROR");
}

TEST(Cli, ParsesTypedFlags) {
  int steps = 10;
  double lr = 0.01;
  bool verbose = false;
  std::string task = "mnist";
  CliParser cli("test");
  cli.add_flag("steps", "step count", &steps);
  cli.add_flag("lr", "learning rate", &lr);
  cli.add_flag("verbose", "chatty", &verbose);
  cli.add_flag("task", "task name", &task);

  const char* argv[] = {"prog", "--steps", "50", "--lr=0.5", "--verbose",
                        "--task", "cifar10"};
  EXPECT_TRUE(cli.parse(7, argv));
  EXPECT_EQ(steps, 50);
  EXPECT_DOUBLE_EQ(lr, 0.5);
  EXPECT_TRUE(verbose);
  EXPECT_EQ(task, "cifar10");
}

TEST(Cli, UnknownFlagThrows) {
  CliParser cli("test");
  int x = 0;
  cli.add_flag("x", "", &x);
  const char* argv[] = {"prog", "--y", "1"};
  EXPECT_THROW(cli.parse(3, argv), std::invalid_argument);
}

TEST(Cli, BadValueThrows) {
  CliParser cli("test");
  int x = 0;
  cli.add_flag("x", "", &x);
  const char* argv[] = {"prog", "--x", "abc"};
  EXPECT_THROW(cli.parse(3, argv), std::invalid_argument);
}

TEST(Cli, MissingValueThrows) {
  CliParser cli("test");
  int x = 0;
  cli.add_flag("x", "", &x);
  const char* argv[] = {"prog", "--x"};
  EXPECT_THROW(cli.parse(2, argv), std::invalid_argument);
}

TEST(Cli, HelpReturnsFalse) {
  CliParser cli("test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, DuplicateFlagThrows) {
  CliParser cli("test");
  int x = 0;
  cli.add_flag("x", "", &x);
  EXPECT_THROW(cli.add_flag("x", "", &x), std::logic_error);
}

TEST(Cli, HelpTextListsFlagsAndDefaults) {
  CliParser cli("my tool");
  int steps = 42;
  cli.add_flag("steps", "number of steps", &steps);
  const std::string help = cli.help_text();
  EXPECT_NE(help.find("my tool"), std::string::npos);
  EXPECT_NE(help.find("--steps"), std::string::npos);
  EXPECT_NE(help.find("42"), std::string::npos);
}

}  // namespace
