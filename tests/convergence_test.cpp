#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/convergence.hpp"
#include "parallel/rng.hpp"

namespace {

using middlefl::core::Theorem1Params;
using middlefl::core::theorem1_big_b;
using middlefl::core::theorem1_bound;
using middlefl::core::theorem1_dbound_dmobility;
using middlefl::core::theorem1_gamma;
using middlefl::core::theorem1_lr;
using middlefl::core::theorem1_mobility_term;

Theorem1Params default_params() {
  Theorem1Params p;
  p.beta = 1.0;
  p.mu = 0.1;
  p.big_g = 1.0;
  p.big_b = 1.0;
  p.local_steps = 10;
  p.alpha = 0.5;
  p.mobility = 0.5;
  p.horizon = 1000;
  p.init_distance_sq = 1.0;
  return p;
}

TEST(Theorem1, GammaIsMaxOf8BetaOverMuAndI) {
  auto p = default_params();
  // 8 * 1 / 0.1 = 80 > I = 10.
  EXPECT_DOUBLE_EQ(theorem1_gamma(p), 80.0);
  p.mu = 10.0;  // 8/10 = 0.8 < I
  EXPECT_DOUBLE_EQ(theorem1_gamma(p), 10.0);
}

TEST(Theorem1, LrIsDiminishing) {
  const auto p = default_params();
  EXPECT_GT(theorem1_lr(p, 0), theorem1_lr(p, 10));
  EXPECT_GT(theorem1_lr(p, 10), theorem1_lr(p, 1000));
  const double gamma = theorem1_gamma(p);
  EXPECT_NEAR(theorem1_lr(p, 0), 2.0 / (p.mu * gamma), 1e-12);
}

TEST(Theorem1, BoundIsPositiveAndFinite) {
  const double bound = theorem1_bound(default_params());
  EXPECT_GT(bound, 0.0);
  EXPECT_TRUE(std::isfinite(bound));
}

TEST(Theorem1, BoundDecreasesWithMobility) {
  // Remark 1: higher P, lower bound, monotonically.
  auto p = default_params();
  double prev = std::numeric_limits<double>::infinity();
  for (double mobility : {0.1, 0.3, 0.5, 0.7, 1.0}) {
    p.mobility = mobility;
    const double bound = theorem1_bound(p);
    EXPECT_LT(bound, prev) << "P = " << mobility;
    prev = bound;
  }
}

TEST(Theorem1, DerivativeIsNegativeEverywhere) {
  auto p = default_params();
  for (double mobility : {0.05, 0.25, 0.5, 0.9, 1.0}) {
    for (double alpha : {0.1, 0.5, 0.9}) {
      p.mobility = mobility;
      p.alpha = alpha;
      EXPECT_LT(theorem1_dbound_dmobility(p), 0.0);
    }
  }
}

TEST(Theorem1, DerivativeMatchesFiniteDifference) {
  auto p = default_params();
  const double eps = 1e-6;
  auto plus = p, minus = p;
  plus.mobility += eps;
  minus.mobility -= eps;
  const double numeric =
      (theorem1_bound(plus) - theorem1_bound(minus)) / (2.0 * eps);
  EXPECT_NEAR(theorem1_dbound_dmobility(p), numeric,
              std::abs(numeric) * 1e-3);
}

TEST(Theorem1, MobilityTermSymmetricInAlpha) {
  // alpha(1-alpha) is symmetric about 1/2 and maximized there, so the term
  // is minimized at alpha = 1/2.
  auto p = default_params();
  p.alpha = 0.3;
  const double at_03 = theorem1_mobility_term(p);
  p.alpha = 0.7;
  const double at_07 = theorem1_mobility_term(p);
  EXPECT_NEAR(at_03, at_07, 1e-9);
  p.alpha = 0.5;
  EXPECT_LT(theorem1_mobility_term(p), at_03);
}

TEST(Theorem1, OptimizationTermVanishesWithHorizon) {
  auto p = default_params();
  p.horizon = 10;
  const double early = theorem1_bound(p) - theorem1_mobility_term(p);
  p.horizon = 1000000;
  const double late = theorem1_bound(p) - theorem1_mobility_term(p);
  EXPECT_LT(late, early / 100.0);
}

TEST(Theorem1, LargerLocalStepsLoosenBound) {
  // The mobility term scales with I^2 (once gamma is pinned by 8beta/mu).
  auto p = default_params();
  p.local_steps = 5;
  const double small_i = theorem1_mobility_term(p);
  p.local_steps = 20;
  const double large_i = theorem1_mobility_term(p);
  EXPECT_GT(large_i, small_i);
}

TEST(Theorem1, ValidatesParameterRanges) {
  auto p = default_params();
  p.alpha = 0.0;
  EXPECT_THROW(theorem1_bound(p), std::invalid_argument);
  p = default_params();
  p.alpha = 1.0;
  EXPECT_THROW(theorem1_bound(p), std::invalid_argument);
  p = default_params();
  p.mobility = 0.0;
  EXPECT_THROW(theorem1_bound(p), std::invalid_argument);
  p = default_params();
  p.mobility = 1.5;
  EXPECT_THROW(theorem1_bound(p), std::invalid_argument);
  p = default_params();
  p.beta = -1.0;
  EXPECT_THROW(theorem1_bound(p), std::invalid_argument);
  p = default_params();
  p.local_steps = 0;
  EXPECT_THROW(theorem1_bound(p), std::invalid_argument);
}

// --- Lemma 1, verified numerically on exact quadratic instances ---
//
// With F_m(w) = |w - c_m|^2 (beta = mu = 2), full participation,
// deterministic full-batch gradients (sigma = 0) and one local step per
// round, Lemma 1 reduces to
//   |w^{t+1} - w*|^2 <= (1 - eta mu) |w^t - w*|^2 + 6 beta eta^2 Gamma
//                        + 2 sum_m h_m |w^t - w_m^t|^2,
// which we can check step by step on simulated trajectories.
class Lemma1Quadratic : public ::testing::TestWithParam<int> {};

TEST_P(Lemma1Quadratic, StepInequalityHolds) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  middlefl::parallel::Xoshiro256 rng(seed);
  const std::size_t devices = 3 + rng.bounded(5);
  const std::size_t dim = 2 + rng.bounded(6);
  constexpr double beta = 2.0, mu = 2.0;

  // Device optima c_m and weights h_m = 1/M.
  std::vector<std::vector<double>> c(devices, std::vector<double>(dim));
  for (auto& cm : c) {
    for (double& v : cm) v = rng.normal();
  }
  std::vector<double> w_star(dim, 0.0);
  for (const auto& cm : c) {
    for (std::size_t d = 0; d < dim; ++d) w_star[d] += cm[d];
  }
  for (double& v : w_star) v /= static_cast<double>(devices);
  // Gamma = F* - sum h_m F_m* = F(w*) since F_m* = 0.
  double gamma_gap = 0.0;
  for (const auto& cm : c) {
    for (std::size_t d = 0; d < dim; ++d) {
      const double diff = w_star[d] - cm[d];
      gamma_gap += diff * diff;
    }
  }
  gamma_gap /= static_cast<double>(devices);

  // FedAvg trajectory, eta_t <= 1/(4 beta) = 1/8 as Lemma 1 requires.
  std::vector<double> w(dim);
  for (double& v : w) v = rng.normal() * 3.0;
  const auto dist_sq = [&](const std::vector<double>& a) {
    double acc = 0.0;
    for (std::size_t d = 0; d < dim; ++d) {
      const double diff = a[d] - w_star[d];
      acc += diff * diff;
    }
    return acc;
  };

  for (int t = 0; t < 50; ++t) {
    const double eta = 1.0 / (8.0 + t);  // diminishing, <= 1/8
    const double before = dist_sq(w);
    // One local step per device from the shared model, then average; the
    // divergence term sum h |w - w_m| is zero in this I=1 regime.
    std::vector<double> next(dim, 0.0);
    for (const auto& cm : c) {
      for (std::size_t d = 0; d < dim; ++d) {
        const double grad = 2.0 * (w[d] - cm[d]);
        next[d] += (w[d] - eta * grad) / static_cast<double>(devices);
      }
    }
    w = next;
    const double after = dist_sq(w);
    const double bound =
        (1.0 - eta * mu) * before + 6.0 * beta * eta * eta * gamma_gap;
    EXPECT_LE(after, bound + 1e-9)
        << "step " << t << " violates Lemma 1";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, Lemma1Quadratic,
                         ::testing::Range(1, 9));

TEST(Theorem1, BigBFormula) {
  // B = sum h^2 sigma^2 + 6 beta Gamma.
  const std::vector<double> h{0.5, 0.5};
  const std::vector<double> sigma_sq{1.0, 4.0};
  EXPECT_DOUBLE_EQ(theorem1_big_b(h, sigma_sq, 2.0, 0.1),
                   0.25 * 1.0 + 0.25 * 4.0 + 6.0 * 2.0 * 0.1);
  EXPECT_THROW(theorem1_big_b({0.5}, sigma_sq, 1.0, 0.0),
               std::invalid_argument);
}

}  // namespace
