// Copy-on-write snapshot-store semantics: version uniqueness, zero-copy
// aliasing between tiers, copy-on-first-write isolation, version-keyed
// similarity-cache invalidation across cloud syncs, checkpoint round-trips
// through shared snapshots, and buffer recycling.
#include <gtest/gtest.h>

#include <cstddef>
#include <set>
#include <sstream>
#include <vector>

#include "core/snapshot.hpp"
#include "nn/serialize.hpp"
#include "sim_fixture.hpp"

namespace {

using middlefl::core::Algorithm;
using middlefl::core::Snapshot;
using middlefl::core::SnapshotStore;
using middlefl::testing::SimBundle;

TEST(SnapshotStore, VersionsAreUniqueAndIncreasing) {
  auto& store = SnapshotStore::global();
  const std::vector<float> data(8, 0.5f);
  std::set<std::uint64_t> seen;
  std::uint64_t prev = 0;
  for (int i = 0; i < 16; ++i) {
    const Snapshot snap = store.publish(data);
    EXPECT_GT(snap->version(), prev);
    prev = snap->version();
    EXPECT_TRUE(seen.insert(snap->version()).second) << "duplicate version";
  }
}

TEST(SnapshotStore, PublishCopiesAndSealMoves) {
  auto& store = SnapshotStore::global();
  std::vector<float> data{1.0f, 2.0f, 3.0f};
  const Snapshot published = store.publish(data);
  data[0] = 99.0f;  // the published block must be an independent copy
  EXPECT_EQ(published->span()[0], 1.0f);
  EXPECT_EQ(published->size(), 3u);

  std::vector<float> buffer = store.borrow(4);
  ASSERT_EQ(buffer.size(), 4u);
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    buffer[i] = static_cast<float>(i);
  }
  const float* payload = buffer.data();
  const Snapshot sealed = store.seal(std::move(buffer));
  // seal() moves the buffer into the block — no copy.
  EXPECT_EQ(sealed->span().data(), payload);
  EXPECT_EQ(sealed->span()[3], 3.0f);
  EXPECT_GT(sealed->version(), published->version());
}

TEST(SnapshotStore, RetiredBlocksRecycleIntoTheFreelist) {
  auto& store = SnapshotStore::global();
  const std::vector<float> data(64, 1.0f);
  const std::size_t pooled_before = store.pooled();
  Snapshot snap = store.publish(data);
  snap.reset();  // last reference gone: buffer returns to the freelist
  EXPECT_GE(store.pooled(), pooled_before + 1);
  // borrow() prefers recycled buffers over fresh allocations.
  const std::size_t pooled_full = store.pooled();
  std::vector<float> reused = store.borrow(64);
  EXPECT_EQ(reused.size(), 64u);
  EXPECT_LT(store.pooled(), pooled_full);
}

TEST(Snapshot, WarmStartAliasesOneBlockAcrossAllTiers) {
  SimBundle bundle;
  auto sim = bundle.make(Algorithm::kMiddle);
  const std::vector<float> params(sim->cloud_params().begin(),
                                  sim->cloud_params().end());
  sim->warm_start(params);

  // Every tier reads the SAME published block: num_devices + num_edges
  // copies collapse into refcount bumps.
  const float* block = sim->cloud_params().data();
  for (std::size_t n = 0; n < sim->num_edges(); ++n) {
    EXPECT_EQ(sim->edge_params(n).data(), block) << "edge " << n;
  }
  for (std::size_t m = 0; m < sim->num_devices(); ++m) {
    EXPECT_EQ(sim->device(m).params().data(), block) << "device " << m;
    EXPECT_TRUE(sim->device(m).shares_snapshot()) << "device " << m;
  }
}

TEST(Snapshot, CopyOnFirstWriteIsolatesSharers) {
  SimBundle bundle;
  auto sim = bundle.make(Algorithm::kMiddle);
  const std::vector<float> params(sim->cloud_params().begin(),
                                  sim->cloud_params().end());
  sim->warm_start(params);
  ASSERT_TRUE(sim->device(0).shares_snapshot());
  ASSERT_TRUE(sim->device(1).shares_snapshot());
  const auto v0 = sim->device(0).params_version();
  const auto v1 = sim->device(1).params_version();
  // Both devices adopted the same block, so they carry its version.
  EXPECT_EQ(v0, v1);

  // Device 0 writes: it materializes a private copy; device 1 still reads
  // the shared block, bitwise untouched.
  std::vector<float> mutated(params);
  mutated[0] += 1.0f;
  sim->device(0).set_params(mutated);
  EXPECT_FALSE(sim->device(0).shares_snapshot());
  EXPECT_TRUE(sim->device(1).shares_snapshot());
  EXPECT_NE(sim->device(0).params().data(), sim->device(1).params().data());
  EXPECT_GT(sim->device(0).params_version(), v0);
  EXPECT_EQ(sim->device(1).params_version(), v1);
  EXPECT_EQ(sim->device(1).params()[0], params[0]);
  EXPECT_EQ(sim->cloud_params()[0], params[0]);
}

TEST(Snapshot, CloudSyncInvalidatesSimilarityCacheByVersion) {
  SimBundle bundle;
  bundle.cfg.total_steps = 12;
  bundle.cfg.cloud_interval = 4;
  bundle.cfg.use_similarity_cache = true;
  auto sim = bundle.make(Algorithm::kMiddle);

  // Steps 1-3: no sync. Devices that sat out a step keep their version, so
  // their Eq. 11 scores start hitting the cache.
  for (int s = 0; s < 3; ++s) sim->step();
  EXPECT_GT(sim->similarity_cache().hits(), 0u);

  sim->step();  // t=4: cloud sync publishes a new global block
  const auto hits_after_sync = sim->similarity_cache().hits();
  const auto misses_after_sync = sim->similarity_cache().misses();

  // t=5: the cloud version changed (and the broadcast re-stamped every
  // device), so every cached pair is stale — all lookups miss, no stale
  // score can ever be served.
  sim->step();
  EXPECT_EQ(sim->similarity_cache().hits(), hits_after_sync);
  EXPECT_GT(sim->similarity_cache().misses(), misses_after_sync);
}

TEST(Snapshot, CheckpointRoundTripsThroughSharedSnapshots) {
  SimBundle bundle;
  bundle.cfg.total_steps = 10;
  auto trained = bundle.make(Algorithm::kMiddle);
  for (int s = 0; s < 5; ++s) trained->step();
  const std::vector<float> weights(trained->cloud_params().begin(),
                                   trained->cloud_params().end());

  // Save the global model, restore into a fresh architecture, warm-start a
  // new simulation from it: the shared snapshot hands every tier the
  // restored bits unchanged.
  auto model = middlefl::nn::build_model(bundle.model_spec, bundle.seed);
  model->set_parameters(weights);
  std::stringstream stream;
  middlefl::nn::save_model(*model, stream);
  auto restored =
      middlefl::nn::build_model(bundle.model_spec, bundle.seed + 17);
  middlefl::nn::load_model(*restored, stream);

  auto resumed = bundle.make(Algorithm::kMiddle);
  resumed->warm_start(restored->parameters());
  const auto cloud = resumed->cloud_params();
  ASSERT_EQ(cloud.size(), weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    ASSERT_EQ(cloud[i], weights[i]) << "param " << i;
  }
  EXPECT_EQ(resumed->device(0).params().data(), cloud.data());

  // And the resumed simulation still trains (the shared start is a real
  // working state, not a frozen alias).
  resumed->step();
  EXPECT_EQ(resumed->current_step(), 1u);
}

}  // namespace
