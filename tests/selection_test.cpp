#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/selection.hpp"
#include "core/similarity.hpp"

namespace {

using middlefl::core::Candidate;
using middlefl::core::RandomSelection;
using middlefl::core::SimilaritySelection;
using middlefl::core::StatUtilitySelection;
using middlefl::parallel::Xoshiro256;

struct Pool {
  // Owns candidate parameter storage so spans stay valid.
  std::vector<std::vector<float>> params;
  std::vector<Candidate> candidates;

  void add(std::size_t id, std::vector<float> p,
           std::optional<double> utility = std::nullopt,
           double data_size = 10.0) {
    params.push_back(std::move(p));
    candidates.push_back(Candidate{id, data_size, utility, params.back()});
  }
};

TEST(RandomSelection, ReturnsKDistinctIds) {
  Pool pool;
  for (std::size_t i = 0; i < 10; ++i) pool.add(i, {1.0f});
  RandomSelection strategy;
  Xoshiro256 rng(1);
  const auto selected =
      strategy.select(pool.candidates, std::vector<float>{1.0f}, 4, rng);
  EXPECT_EQ(selected.size(), 4u);
  EXPECT_EQ(std::set<std::size_t>(selected.begin(), selected.end()).size(), 4u);
}

TEST(RandomSelection, FewerCandidatesThanK) {
  Pool pool;
  pool.add(7, {1.0f});
  pool.add(9, {1.0f});
  RandomSelection strategy;
  Xoshiro256 rng(2);
  const auto selected =
      strategy.select(pool.candidates, std::vector<float>{1.0f}, 5, rng);
  EXPECT_EQ(selected.size(), 2u);
}

TEST(RandomSelection, UniformOverCandidates) {
  Pool pool;
  for (std::size_t i = 0; i < 5; ++i) pool.add(i, {1.0f});
  RandomSelection strategy;
  std::vector<std::size_t> counts(5, 0);
  for (std::uint64_t trial = 0; trial < 5000; ++trial) {
    Xoshiro256 rng(trial);
    const auto sel =
        strategy.select(pool.candidates, std::vector<float>{1.0f}, 1, rng);
    ++counts[sel[0]];
  }
  for (std::size_t c : counts) EXPECT_NEAR(c, 1000.0, 150.0);
}

TEST(StatUtility, PicksHighestUtility) {
  Pool pool;
  pool.add(0, {1.0f}, 1.0);
  pool.add(1, {1.0f}, 5.0);
  pool.add(2, {1.0f}, 3.0);
  StatUtilitySelection strategy;
  Xoshiro256 rng(3);
  const auto selected =
      strategy.select(pool.candidates, std::vector<float>{1.0f}, 2, rng);
  EXPECT_EQ(std::set<std::size_t>(selected.begin(), selected.end()),
            (std::set<std::size_t>{1, 2}));
}

TEST(StatUtility, UnexploredDevicesRankFirst) {
  Pool pool;
  pool.add(0, {1.0f}, 100.0);
  pool.add(1, {1.0f}, std::nullopt);  // never trained
  StatUtilitySelection strategy;
  Xoshiro256 rng(4);
  const auto selected =
      strategy.select(pool.candidates, std::vector<float>{1.0f}, 1, rng);
  EXPECT_EQ(selected[0], 1u);
}

TEST(Similarity, LeastSimilarFirst) {
  // Cloud = (1, 0). Delta of device 0 is aligned (high U), device 1 is
  // orthogonal (U = 0). MIDDLE must pick the orthogonal one.
  const std::vector<float> cloud{1.0f, 0.0f};
  Pool pool;
  pool.add(0, {2.0f, 0.0f});  // delta (1, 0): U = 1
  pool.add(1, {1.0f, 1.0f});  // delta (0, 1): U = 0
  SimilaritySelection strategy;
  Xoshiro256 rng(5);
  const auto selected = strategy.select(pool.candidates, cloud, 1, rng);
  EXPECT_EQ(selected[0], 1u);
}

TEST(Similarity, InvertedAblationPicksMostSimilar) {
  const std::vector<float> cloud{1.0f, 0.0f};
  Pool pool;
  pool.add(0, {2.0f, 0.0f});
  pool.add(1, {1.0f, 1.0f});
  SimilaritySelection inverted(/*invert=*/true);
  Xoshiro256 rng(6);
  const auto selected = inverted.select(pool.candidates, cloud, 1, rng);
  EXPECT_EQ(selected[0], 0u);
}

TEST(Similarity, TiesBrokenRandomly) {
  // All candidates have delta = 0 (just synced): U = 0 for everyone, so
  // selection must not systematically favour low ids.
  const std::vector<float> cloud{1.0f, 1.0f};
  Pool pool;
  for (std::size_t i = 0; i < 6; ++i) pool.add(i, {1.0f, 1.0f});
  SimilaritySelection strategy;
  std::vector<std::size_t> counts(6, 0);
  for (std::uint64_t trial = 0; trial < 3000; ++trial) {
    Xoshiro256 rng(trial);
    const auto sel = strategy.select(pool.candidates, cloud, 1, rng);
    ++counts[sel[0]];
  }
  for (std::size_t c : counts) EXPECT_GT(c, 300u);
}

TEST(Similarity, RanksByUtilityOrder) {
  // Three candidates with distinct utilities; k = 2 must take the two
  // LOWEST-U ones.
  const std::vector<float> cloud{1.0f, 0.0f};
  Pool pool;
  pool.add(0, {3.0f, 0.0f});     // delta (2,0): U = 1      (most similar)
  pool.add(1, {1.5f, 1.0f});     // delta (.5,1): U ~ 0.45
  pool.add(2, {0.0f, 2.0f});     // delta (-1,2): U = 0 (clamped)
  SimilaritySelection strategy;
  Xoshiro256 rng(8);
  const auto selected = strategy.select(pool.candidates, cloud, 2, rng);
  EXPECT_EQ(std::set<std::size_t>(selected.begin(), selected.end()),
            (std::set<std::size_t>{1, 2}));
}

TEST(Selection, NamesAreInformative) {
  EXPECT_EQ(RandomSelection().name(), "random");
  EXPECT_EQ(StatUtilitySelection().name(), "stat-utility");
  EXPECT_NE(SimilaritySelection().name().find("MIDDLE"), std::string::npos);
}

TEST(Selection, EmptyCandidatesGiveEmptySelection) {
  RandomSelection random;
  StatUtilitySelection stat;
  SimilaritySelection sim;
  Xoshiro256 rng(9);
  const std::vector<Candidate> none;
  const std::vector<float> cloud{1.0f};
  EXPECT_TRUE(random.select(none, cloud, 3, rng).empty());
  EXPECT_TRUE(stat.select(none, cloud, 3, rng).empty());
  EXPECT_TRUE(sim.select(none, cloud, 3, rng).empty());
}

TEST(Selection, DeterministicGivenRng) {
  Pool pool;
  for (std::size_t i = 0; i < 8; ++i) pool.add(i, {1.0f, float(i)});
  const std::vector<float> cloud{1.0f, 0.5f};
  SimilaritySelection strategy;
  Xoshiro256 rng1(10), rng2(10);
  EXPECT_EQ(strategy.select(pool.candidates, cloud, 3, rng1),
            strategy.select(pool.candidates, cloud, 3, rng2));
}

// --- Partial top-k vs legacy full sort ---
//
// top_k_by_score replaced the full stable_sort with nth_element + partial
// sort over (score desc, shuffle-rank asc). The ids must be bitwise
// identical to the legacy path for ANY score vector — every strategy's
// selection, and therefore every golden fingerprint, rides on this.

using middlefl::core::HybridSelection;
using middlefl::core::selection_utility;
using middlefl::core::top_k_by_score;
using middlefl::core::top_k_by_score_reference;

TEST(SelectionEquivalence, PartialMatchesReferenceUnderHeavyTies) {
  for (std::uint64_t trial = 0; trial < 300; ++trial) {
    Xoshiro256 gen(trial * 7919 + 1);
    const std::size_t n = gen.bounded(65);  // includes n = 0 and n = 1
    Pool pool;
    std::vector<double> scores(n);
    for (std::size_t i = 0; i < n; ++i) {
      pool.add(i, {1.0f});
      // Three discrete levels: long runs of equal scores stress the
      // shuffle-rank tiebreak far harder than continuous draws would.
      scores[i] = 0.5 * static_cast<double>(gen.bounded(3));
    }
    for (const std::size_t k : {std::size_t{0}, std::size_t{1}, n / 2,
                                n > 0 ? n - 1 : 0, n, n + 5}) {
      Xoshiro256 rng_fast(trial), rng_ref(trial);
      EXPECT_EQ(top_k_by_score(pool.candidates, scores, k, rng_fast),
                top_k_by_score_reference(pool.candidates, scores, k, rng_ref))
          << "trial " << trial << " n " << n << " k " << k;
    }
  }
}

TEST(SelectionEquivalence, AllStrategiesMatchLegacyRanking) {
  // Reconstruct each strategy's documented score vector and pin select()
  // against the legacy reference ranking of those scores. Candidates mix
  // never-trained devices (no utility) with duplicated utilities and
  // duplicated parameter vectors so every tiebreak path fires.
  Pool pool;
  const std::vector<float> cloud{1.0f, -0.5f, 2.0f};
  for (std::size_t i = 0; i < 24; ++i) {
    std::vector<float> params{static_cast<float>(i % 4), 1.0f, -1.0f};
    std::optional<double> utility;
    if (i % 3 != 0) utility = static_cast<double>(i % 5);
    pool.add(i, std::move(params), utility);
  }
  const std::size_t n = pool.candidates.size();

  double max_utility = 0.0;
  std::vector<double> similarity(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& c = pool.candidates[i];
    if (c.stat_utility) max_utility = std::max(max_utility, *c.stat_utility);
    similarity[i] = selection_utility(cloud, c.local_params);
  }
  std::vector<double> stat_scores(n), middle_scores(n), hybrid_scores(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& c = pool.candidates[i];
    stat_scores[i] = c.stat_utility ? *c.stat_utility : max_utility + 1.0;
    middle_scores[i] = -similarity[i];
    hybrid_scores[i] = c.stat_utility
                           ? *c.stat_utility * (1.0 - similarity[i])
                           : (max_utility + 1.0) * 2.0;
  }
  const std::vector<double> equal_scores(n, 0.0);  // random = pure shuffle

  struct Case {
    const middlefl::core::SelectionStrategy& strategy;
    const std::vector<double>& scores;
  };
  const RandomSelection random;
  const StatUtilitySelection stat;
  const SimilaritySelection middle;
  const HybridSelection hybrid;
  const Case cases[] = {{random, equal_scores},
                        {stat, stat_scores},
                        {middle, middle_scores},
                        {hybrid, hybrid_scores}};
  for (const auto& c : cases) {
    for (const std::size_t k : {std::size_t{1}, std::size_t{5}, n}) {
      for (std::uint64_t seed = 0; seed < 20; ++seed) {
        Xoshiro256 rng_strategy(seed), rng_ref(seed);
        EXPECT_EQ(c.strategy.select(pool.candidates, cloud, k, rng_strategy),
                  top_k_by_score_reference(pool.candidates, c.scores, k,
                                           rng_ref))
            << c.strategy.name() << " k " << k << " seed " << seed;
      }
    }
  }
}

TEST(SelectionEquivalence, RandomSelectIdsMatchesSelect) {
  // The id-only fast path must make exactly the draws select() makes over
  // candidates carrying the same ids, and return the same picks.
  Pool pool;
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < 17; ++i) {
    const std::size_t id = i * 3 + 1;  // non-contiguous ids
    pool.add(id, {1.0f});
    ids.push_back(id);
  }
  const RandomSelection strategy;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    for (const std::size_t k : {std::size_t{0}, std::size_t{4}, ids.size(),
                                ids.size() + 3}) {
      Xoshiro256 rng_ids(seed), rng_full(seed);
      EXPECT_EQ(strategy.select_ids(ids, k, rng_ids),
                strategy.select(pool.candidates, std::vector<float>{1.0f}, k,
                                rng_full))
          << "seed " << seed << " k " << k;
    }
  }
}

TEST(SelectionEquivalence, MetadataStrategiesRejectIdOnlyPath) {
  // Strategies that rank on candidate metadata must fail loudly if handed
  // bare ids, instead of silently selecting on nothing.
  const std::vector<std::size_t> ids{1, 2, 3};
  Xoshiro256 rng(4);
  EXPECT_THROW(StatUtilitySelection().select_ids(ids, 2, rng),
               std::logic_error);
  EXPECT_THROW(SimilaritySelection().select_ids(ids, 2, rng),
               std::logic_error);
  EXPECT_THROW(HybridSelection().select_ids(ids, 2, rng), std::logic_error);
  EXPECT_FALSE(RandomSelection().needs_metadata());
  EXPECT_TRUE(StatUtilitySelection().needs_metadata());
}

}  // namespace
