#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/selection.hpp"

namespace {

using middlefl::core::Candidate;
using middlefl::core::RandomSelection;
using middlefl::core::SimilaritySelection;
using middlefl::core::StatUtilitySelection;
using middlefl::parallel::Xoshiro256;

struct Pool {
  // Owns candidate parameter storage so spans stay valid.
  std::vector<std::vector<float>> params;
  std::vector<Candidate> candidates;

  void add(std::size_t id, std::vector<float> p,
           std::optional<double> utility = std::nullopt,
           double data_size = 10.0) {
    params.push_back(std::move(p));
    candidates.push_back(Candidate{id, data_size, utility, params.back()});
  }
};

TEST(RandomSelection, ReturnsKDistinctIds) {
  Pool pool;
  for (std::size_t i = 0; i < 10; ++i) pool.add(i, {1.0f});
  RandomSelection strategy;
  Xoshiro256 rng(1);
  const auto selected =
      strategy.select(pool.candidates, std::vector<float>{1.0f}, 4, rng);
  EXPECT_EQ(selected.size(), 4u);
  EXPECT_EQ(std::set<std::size_t>(selected.begin(), selected.end()).size(), 4u);
}

TEST(RandomSelection, FewerCandidatesThanK) {
  Pool pool;
  pool.add(7, {1.0f});
  pool.add(9, {1.0f});
  RandomSelection strategy;
  Xoshiro256 rng(2);
  const auto selected =
      strategy.select(pool.candidates, std::vector<float>{1.0f}, 5, rng);
  EXPECT_EQ(selected.size(), 2u);
}

TEST(RandomSelection, UniformOverCandidates) {
  Pool pool;
  for (std::size_t i = 0; i < 5; ++i) pool.add(i, {1.0f});
  RandomSelection strategy;
  std::vector<std::size_t> counts(5, 0);
  for (std::uint64_t trial = 0; trial < 5000; ++trial) {
    Xoshiro256 rng(trial);
    const auto sel =
        strategy.select(pool.candidates, std::vector<float>{1.0f}, 1, rng);
    ++counts[sel[0]];
  }
  for (std::size_t c : counts) EXPECT_NEAR(c, 1000.0, 150.0);
}

TEST(StatUtility, PicksHighestUtility) {
  Pool pool;
  pool.add(0, {1.0f}, 1.0);
  pool.add(1, {1.0f}, 5.0);
  pool.add(2, {1.0f}, 3.0);
  StatUtilitySelection strategy;
  Xoshiro256 rng(3);
  const auto selected =
      strategy.select(pool.candidates, std::vector<float>{1.0f}, 2, rng);
  EXPECT_EQ(std::set<std::size_t>(selected.begin(), selected.end()),
            (std::set<std::size_t>{1, 2}));
}

TEST(StatUtility, UnexploredDevicesRankFirst) {
  Pool pool;
  pool.add(0, {1.0f}, 100.0);
  pool.add(1, {1.0f}, std::nullopt);  // never trained
  StatUtilitySelection strategy;
  Xoshiro256 rng(4);
  const auto selected =
      strategy.select(pool.candidates, std::vector<float>{1.0f}, 1, rng);
  EXPECT_EQ(selected[0], 1u);
}

TEST(Similarity, LeastSimilarFirst) {
  // Cloud = (1, 0). Delta of device 0 is aligned (high U), device 1 is
  // orthogonal (U = 0). MIDDLE must pick the orthogonal one.
  const std::vector<float> cloud{1.0f, 0.0f};
  Pool pool;
  pool.add(0, {2.0f, 0.0f});  // delta (1, 0): U = 1
  pool.add(1, {1.0f, 1.0f});  // delta (0, 1): U = 0
  SimilaritySelection strategy;
  Xoshiro256 rng(5);
  const auto selected = strategy.select(pool.candidates, cloud, 1, rng);
  EXPECT_EQ(selected[0], 1u);
}

TEST(Similarity, InvertedAblationPicksMostSimilar) {
  const std::vector<float> cloud{1.0f, 0.0f};
  Pool pool;
  pool.add(0, {2.0f, 0.0f});
  pool.add(1, {1.0f, 1.0f});
  SimilaritySelection inverted(/*invert=*/true);
  Xoshiro256 rng(6);
  const auto selected = inverted.select(pool.candidates, cloud, 1, rng);
  EXPECT_EQ(selected[0], 0u);
}

TEST(Similarity, TiesBrokenRandomly) {
  // All candidates have delta = 0 (just synced): U = 0 for everyone, so
  // selection must not systematically favour low ids.
  const std::vector<float> cloud{1.0f, 1.0f};
  Pool pool;
  for (std::size_t i = 0; i < 6; ++i) pool.add(i, {1.0f, 1.0f});
  SimilaritySelection strategy;
  std::vector<std::size_t> counts(6, 0);
  for (std::uint64_t trial = 0; trial < 3000; ++trial) {
    Xoshiro256 rng(trial);
    const auto sel = strategy.select(pool.candidates, cloud, 1, rng);
    ++counts[sel[0]];
  }
  for (std::size_t c : counts) EXPECT_GT(c, 300u);
}

TEST(Similarity, RanksByUtilityOrder) {
  // Three candidates with distinct utilities; k = 2 must take the two
  // LOWEST-U ones.
  const std::vector<float> cloud{1.0f, 0.0f};
  Pool pool;
  pool.add(0, {3.0f, 0.0f});     // delta (2,0): U = 1      (most similar)
  pool.add(1, {1.5f, 1.0f});     // delta (.5,1): U ~ 0.45
  pool.add(2, {0.0f, 2.0f});     // delta (-1,2): U = 0 (clamped)
  SimilaritySelection strategy;
  Xoshiro256 rng(8);
  const auto selected = strategy.select(pool.candidates, cloud, 2, rng);
  EXPECT_EQ(std::set<std::size_t>(selected.begin(), selected.end()),
            (std::set<std::size_t>{1, 2}));
}

TEST(Selection, NamesAreInformative) {
  EXPECT_EQ(RandomSelection().name(), "random");
  EXPECT_EQ(StatUtilitySelection().name(), "stat-utility");
  EXPECT_NE(SimilaritySelection().name().find("MIDDLE"), std::string::npos);
}

TEST(Selection, EmptyCandidatesGiveEmptySelection) {
  RandomSelection random;
  StatUtilitySelection stat;
  SimilaritySelection sim;
  Xoshiro256 rng(9);
  const std::vector<Candidate> none;
  const std::vector<float> cloud{1.0f};
  EXPECT_TRUE(random.select(none, cloud, 3, rng).empty());
  EXPECT_TRUE(stat.select(none, cloud, 3, rng).empty());
  EXPECT_TRUE(sim.select(none, cloud, 3, rng).empty());
}

TEST(Selection, DeterministicGivenRng) {
  Pool pool;
  for (std::size_t i = 0; i < 8; ++i) pool.add(i, {1.0f, float(i)});
  const std::vector<float> cloud{1.0f, 0.5f};
  SimilaritySelection strategy;
  Xoshiro256 rng1(10), rng2(10);
  EXPECT_EQ(strategy.select(pool.candidates, cloud, 3, rng1),
            strategy.select(pool.candidates, cloud, 3, rng2));
}

}  // namespace
