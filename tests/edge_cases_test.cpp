// Edge-case and failure-path coverage across layers and the simulator.
#include <gtest/gtest.h>

#include <memory>

#include "mobility/trace.hpp"
#include "nn/conv2d.hpp"
#include "nn/pooling.hpp"
#include "sim_fixture.hpp"

namespace {

using middlefl::core::Algorithm;
using middlefl::nn::Conv2d;
using middlefl::nn::Conv2dConfig;
using middlefl::nn::MaxPool2d;
using middlefl::nn::Shape;
using middlefl::nn::Tensor;
using middlefl::testing::SimBundle;

// --- Conv/pool geometry corners ---

TEST(ConvEdgeCases, RectangularInput) {
  Conv2d layer(Conv2dConfig{1, 2, 3, 1, 1});
  EXPECT_EQ(layer.build(Shape{1, 4, 9}), (Shape{2, 4, 9}));
}

TEST(ConvEdgeCases, StrideLargerThanKernel) {
  Conv2d layer(Conv2dConfig{1, 1, 2, 3, 0});
  // positions: floor((8-2)/3)+1 = 3
  EXPECT_EQ(layer.build(Shape{1, 8, 8}), (Shape{1, 3, 3}));
}

TEST(ConvEdgeCases, KernelEqualsInput) {
  Conv2d layer(Conv2dConfig{2, 4, 5, 1, 0});
  EXPECT_EQ(layer.build(Shape{2, 5, 5}), (Shape{4, 1, 1}));
}

TEST(ConvEdgeCases, OneByOneInputWithPadding) {
  Conv2d layer(Conv2dConfig{1, 1, 3, 1, 1});
  EXPECT_EQ(layer.build(Shape{1, 1, 1}), (Shape{1, 1, 1}));
  std::vector<float> params(layer.param_count());
  std::vector<float> grads(layer.param_count());
  // center weight 1 => identity on the single pixel.
  params[4] = 1.0f;
  layer.bind(params, grads);
  const Tensor input(Shape{1, 1, 1, 1}, {7.5f});
  Tensor out;
  layer.forward(input, out, false);
  EXPECT_FLOAT_EQ(out[0], 7.5f);
}

TEST(PoolEdgeCases, NonDivisibleInputTruncates) {
  MaxPool2d layer(2);
  // 5x5 with stride-2 windows -> floor((5-2)/2)+1 = 2.
  EXPECT_EQ(layer.build(Shape{1, 5, 5}), (Shape{1, 2, 2}));
}

TEST(PoolEdgeCases, WindowEqualsInput) {
  MaxPool2d layer(4);
  EXPECT_EQ(layer.build(Shape{3, 4, 4}), (Shape{3, 1, 1}));
  const Tensor input(Shape{1, 3, 4, 4},
                     std::vector<float>(48, -1.0f));
  Tensor out;
  layer.forward(input, out, false);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(out[i], -1.0f);
}

// --- Simulator under degenerate mobility ---

TEST(SimEdgeCases, EmptyEdgeKeepsItsModelAndDoesNotCrash) {
  SimBundle bundle;
  // Scripted trace: every device sits on edge 0; edges 1 and 2 are empty
  // for the entire run.
  middlefl::mobility::Trace trace(bundle.partition.num_devices(), 3);
  for (int t = 0; t <= 10; ++t) {
    trace.append(
        std::vector<std::size_t>(bundle.partition.num_devices(), 0));
  }
  const middlefl::optim::Sgd sgd({.learning_rate = 0.05, .momentum = 0.9});
  middlefl::core::Simulation sim(
      bundle.cfg, bundle.model_spec, sgd, bundle.train, bundle.partition,
      bundle.test,
      std::make_unique<middlefl::mobility::TraceMobility>(trace),
      middlefl::core::make_algorithm(Algorithm::kMiddle));

  const std::vector<float> edge1_before(sim.edge_params(1).begin(),
                                        sim.edge_params(1).end());
  for (int t = 0; t < 4; ++t) sim.step();
  // Edge 1 hosted nobody: its model is untouched.
  const auto edge1_after = sim.edge_params(1);
  for (std::size_t i = 0; i < edge1_before.size(); ++i) {
    EXPECT_EQ(edge1_before[i], edge1_after[i]);
  }
  // Edge 0 trained.
  EXPECT_FALSE(sim.last_selection()[0].empty());
  EXPECT_TRUE(sim.last_selection()[1].empty());
}

TEST(SimEdgeCases, CloudSyncWithIdleEdgesUsesOnlyParticipants) {
  SimBundle bundle;
  bundle.cfg.cloud_interval = 2;
  middlefl::mobility::Trace trace(bundle.partition.num_devices(), 3);
  for (int t = 0; t <= 10; ++t) {
    trace.append(
        std::vector<std::size_t>(bundle.partition.num_devices(), 0));
  }
  const middlefl::optim::Sgd sgd({.learning_rate = 0.05, .momentum = 0.9});
  middlefl::core::Simulation sim(
      bundle.cfg, bundle.model_spec, sgd, bundle.train, bundle.partition,
      bundle.test,
      std::make_unique<middlefl::mobility::TraceMobility>(trace),
      middlefl::core::make_algorithm(Algorithm::kHierFavg));
  sim.step();
  sim.step();  // sync: only edge 0 has participation weight
  // The cloud must equal edge 0's pre-sync aggregate (single participant),
  // and all edges are reset to it afterwards.
  const auto cloud = sim.cloud_params();
  for (std::size_t n = 0; n < 3; ++n) {
    const auto edge = sim.edge_params(n);
    for (std::size_t i = 0; i < cloud.size(); ++i) {
      ASSERT_EQ(edge[i], cloud[i]);
    }
  }
}

TEST(SimEdgeCases, KLargerThanPopulationSelectsEveryone) {
  SimBundle bundle;
  bundle.cfg.select_per_edge = 1000;
  auto sim = bundle.make(Algorithm::kMiddle);
  sim->step();
  std::size_t total_selected = 0;
  for (const auto& sel : sim->last_selection()) total_selected += sel.size();
  EXPECT_EQ(total_selected, sim->num_devices());
}

TEST(SimEdgeCases, SingleDevicePerEdgeStillTrains) {
  SimBundle bundle(/*classes=*/4, /*devices=*/3, /*edges=*/3);
  bundle.cfg.total_steps = 6;
  auto sim = bundle.make(Algorithm::kMiddle);
  const auto history = sim->run();
  EXPECT_FALSE(history.points.empty());
  EXPECT_TRUE(std::isfinite(history.final_accuracy()));
}

TEST(SimEdgeCases, TinyBatchAndSingleLocalStep) {
  SimBundle bundle;
  bundle.cfg.batch_size = 1;
  bundle.cfg.local_steps = 1;
  bundle.cfg.total_steps = 5;
  auto sim = bundle.make(Algorithm::kMiddle);
  EXPECT_NO_THROW(sim->run());
}

TEST(SimEdgeCases, CloudIntervalOneSyncsEveryStep) {
  SimBundle bundle;
  bundle.cfg.cloud_interval = 1;
  auto sim = bundle.make(Algorithm::kMiddle);
  for (int t = 0; t < 4; ++t) {
    EXPECT_TRUE(sim->step());
  }
  // Syncing every step means no on-device aggregation ever helps, but it
  // must also never crash; devices equal cloud after each step.
  const auto cloud = sim->cloud_params();
  const auto dev = sim->device(0).params();
  for (std::size_t i = 0; i < cloud.size(); ++i) {
    EXPECT_EQ(dev[i], cloud[i]);
  }
}

}  // namespace
