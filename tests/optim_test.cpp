#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "optim/adam.hpp"
#include "optim/lr_schedule.hpp"
#include "optim/sgd.hpp"

namespace {

using middlefl::optim::Adam;
using middlefl::optim::AdamConfig;
using middlefl::optim::Sgd;
using middlefl::optim::SgdConfig;

TEST(Sgd, PlainStep) {
  Sgd sgd({.learning_rate = 0.1});
  std::vector<float> params{1.0f, 2.0f};
  const std::vector<float> grads{10.0f, -10.0f};
  sgd.step(params, grads);
  // Tolerance, not exact: with FMA contraction (-march=native) the update
  // 1 - 0.1*10 is computed with an unrounded product and lands ~1e-8 off 0.
  EXPECT_NEAR(params[0], 0.0f, 1e-6f);
  EXPECT_FLOAT_EQ(params[1], 3.0f);
}

TEST(Sgd, MomentumAccumulates) {
  Sgd sgd({.learning_rate = 1.0, .momentum = 0.5});
  std::vector<float> params{0.0f};
  const std::vector<float> grads{1.0f};
  sgd.step(params, grads);  // v=1, p=-1
  EXPECT_FLOAT_EQ(params[0], -1.0f);
  sgd.step(params, grads);  // v=1.5, p=-2.5
  EXPECT_FLOAT_EQ(params[0], -2.5f);
  sgd.reset();
  sgd.step(params, grads);  // momentum cleared: v=1, p=-3.5
  EXPECT_FLOAT_EQ(params[0], -3.5f);
}

TEST(Sgd, WeightDecayPullsTowardZero) {
  Sgd sgd({.learning_rate = 0.1, .weight_decay = 1.0});
  std::vector<float> params{1.0f};
  const std::vector<float> grads{0.0f};
  sgd.step(params, grads);
  EXPECT_FLOAT_EQ(params[0], 0.9f);
}

TEST(Sgd, ValidatesConfig) {
  EXPECT_THROW(Sgd({.learning_rate = 0.0}), std::invalid_argument);
  EXPECT_THROW(Sgd({.learning_rate = 0.1, .momentum = 1.0}),
               std::invalid_argument);
  EXPECT_THROW(Sgd({.learning_rate = 0.1, .weight_decay = -1.0}),
               std::invalid_argument);
}

TEST(Sgd, SizeMismatchThrows) {
  Sgd sgd({.learning_rate = 0.1});
  std::vector<float> params{1.0f};
  const std::vector<float> grads{1.0f, 2.0f};
  EXPECT_THROW(sgd.step(params, grads), std::invalid_argument);
}

TEST(Sgd, CloneConfigIsFresh) {
  Sgd sgd({.learning_rate = 0.5, .momentum = 0.9});
  std::vector<float> params{0.0f};
  const std::vector<float> grads{1.0f};
  sgd.step(params, grads);
  auto clone = sgd.clone_config();
  EXPECT_EQ(clone->learning_rate(), 0.5);
  // A fresh clone has no momentum state: its first step is a plain step.
  std::vector<float> p2{0.0f};
  clone->step(p2, grads);
  EXPECT_FLOAT_EQ(p2[0], -0.5f);
}

TEST(Adam, FirstStepIsSignedLr) {
  // With bias correction, the very first Adam step is ~ -lr * sign(grad).
  Adam adam({.learning_rate = 0.01});
  std::vector<float> params{0.0f, 0.0f};
  const std::vector<float> grads{3.0f, -0.5f};
  adam.step(params, grads);
  EXPECT_NEAR(params[0], -0.01f, 1e-4);
  EXPECT_NEAR(params[1], 0.01f, 1e-4);
}

TEST(Adam, ConvergesOnQuadratic) {
  // Minimize f(x) = (x - 3)^2; gradient 2(x - 3).
  Adam adam({.learning_rate = 0.1});
  std::vector<float> x{0.0f};
  for (int i = 0; i < 500; ++i) {
    const std::vector<float> grad{2.0f * (x[0] - 3.0f)};
    adam.step(x, grad);
  }
  EXPECT_NEAR(x[0], 3.0f, 0.05f);
}

TEST(Adam, ResetClearsStepCount) {
  Adam adam({.learning_rate = 0.01});
  std::vector<float> params{0.0f};
  const std::vector<float> grads{1.0f};
  adam.step(params, grads);
  adam.step(params, grads);
  EXPECT_EQ(adam.step_count(), 2u);
  adam.reset();
  EXPECT_EQ(adam.step_count(), 0u);
}

TEST(Adam, ValidatesConfig) {
  EXPECT_THROW(Adam({.learning_rate = -1.0}), std::invalid_argument);
  EXPECT_THROW(Adam({.learning_rate = 0.1, .beta1 = 1.0}),
               std::invalid_argument);
  EXPECT_THROW(Adam({.learning_rate = 0.1, .beta2 = -0.1}),
               std::invalid_argument);
  EXPECT_THROW(Adam({.learning_rate = 0.1, .epsilon = 0.0}),
               std::invalid_argument);
}

TEST(SgdVsAdam, BothMinimizeConvexProblem) {
  const auto run = [](middlefl::optim::Optimizer& opt) {
    std::vector<float> x{5.0f};
    for (int i = 0; i < 300; ++i) {
      const std::vector<float> grad{2.0f * x[0]};
      opt.step(x, grad);
    }
    return std::abs(x[0]);
  };
  Sgd sgd({.learning_rate = 0.05, .momentum = 0.9});
  Adam adam({.learning_rate = 0.05});
  EXPECT_LT(run(sgd), 0.05f);
  EXPECT_LT(run(adam), 0.05f);
}

// --- LR schedules ---

TEST(LrSchedule, Constant) {
  const auto lr = middlefl::optim::constant_lr(0.02);
  EXPECT_EQ(lr(0), 0.02);
  EXPECT_EQ(lr(1000), 0.02);
}

TEST(LrSchedule, StepDecay) {
  const auto lr = middlefl::optim::step_decay_lr(1.0, 0.5, 10);
  EXPECT_DOUBLE_EQ(lr(0), 1.0);
  EXPECT_DOUBLE_EQ(lr(9), 1.0);
  EXPECT_DOUBLE_EQ(lr(10), 0.5);
  EXPECT_DOUBLE_EQ(lr(25), 0.25);
}

TEST(LrSchedule, Theorem1Diminishing) {
  // gamma = max(8*beta/mu, I); eta_t = 2 / (mu (gamma + t)).
  const double mu = 0.1, beta = 1.0;
  const std::size_t local_steps = 10;
  const auto lr = middlefl::optim::theorem1_lr(mu, beta, local_steps);
  const double gamma = std::max(8.0 * beta / mu, 10.0);
  EXPECT_NEAR(lr(0), 2.0 / (mu * gamma), 1e-12);
  EXPECT_GT(lr(0), lr(100));
  EXPECT_GT(lr(100), lr(10000));
}

TEST(LrSchedule, Warmup) {
  const auto lr = middlefl::optim::warmup_lr(1.0, 4);
  EXPECT_DOUBLE_EQ(lr(0), 0.25);
  EXPECT_DOUBLE_EQ(lr(1), 0.5);
  EXPECT_DOUBLE_EQ(lr(3), 1.0);
  EXPECT_DOUBLE_EQ(lr(100), 1.0);
}

}  // namespace
