// Staged step-pipeline tests.
//
// 1. Golden seed-parity pins: under default (lossless, zero-latency) link
//    policies the transport-layer pipeline must reproduce the pre-refactor
//    monolithic loop bit for bit — accuracies, parameter hashes, and every
//    communication counter. The fingerprints below were captured from the
//    last pre-transport commit on two codegen targets (-march=native with
//    FMA contraction, and portable x86-64). Integer counters and accuracy
//    bits are ISA-invariant and always asserted hard, as is bare ==
//    observed equality of every float fingerprint (observation must not
//    perturb the run). The float-valued hashes themselves depend on the
//    compiler's FP codegen: on a recorded target they must match one of
//    the two variants; on an unrecorded target the test SKIPS with the
//    observed hashes so the signal stays clean — see tests/README.md for
//    the root-cause writeup and how to record a new variant.
// 2. Observer events: phase ordering, transfer accounting, and the
//    guarantee that observing a run cannot perturb it.
// 3. Per-link policies: legacy-alias equivalence, downlink/broadcast loss
//    semantics, uplink latency (stale aggregation).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <span>
#include <sstream>
#include <vector>

#include "obs/metrics_registry.hpp"
#include "obs/run_logger.hpp"
#include "obs/trace_recorder.hpp"
#include "sim_fixture.hpp"

namespace {

using middlefl::core::Algorithm;
using middlefl::core::RunHistory;
using middlefl::core::Simulation;
using middlefl::core::StepObserver;
using middlefl::core::StepPhase;
using middlefl::testing::SimBundle;
using middlefl::transport::LinkKind;
using middlefl::transport::LinkStats;

std::uint64_t fnv1a(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t bits(double v) {
  std::uint64_t u;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

std::uint64_t cloud_hash(Simulation& sim) {
  const auto cloud = sim.cloud_params();
  return fnv1a(cloud.data(), cloud.size() * sizeof(float));
}

std::uint64_t edge_hash(Simulation& sim) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t n = 0; n < sim.num_edges(); ++n) {
    const auto e = sim.edge_params(n);
    h = fnv1a(e.data(), e.size() * sizeof(float)) ^ (h * 3);
  }
  return h;
}

std::uint64_t device_hash(Simulation& sim) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t m = 0; m < sim.num_devices(); ++m) {
    const auto d = sim.device(m).params();
    h = fnv1a(d.data(), d.size() * sizeof(float)) ^ (h * 3);
  }
  return h;
}

// Pre-refactor fingerprints of one SimBundle run (20 steps, 5 eval
// points). `native` / `generic` are the two recorded codegen variants.
struct GoldenRun {
  const char* name;
  std::uint64_t acc_bits[5];  // ISA-invariant
  std::uint64_t cloud_hash[2], edge_hash[2], device_hash[2];
  std::size_t dd, du, eu, ed, db;
  std::size_t failed, stragglers, upload_bytes, blends;
  std::uint64_t blend_w[2];
};

/// The codegen-dependent half of a golden fingerprint: FNV-1a hashes of
/// float parameter state plus the mean-blend-weight bit pattern.
struct FloatFingerprints {
  std::uint64_t cloud = 0;
  std::uint64_t edge = 0;
  std::uint64_t device = 0;
  std::uint64_t blend = 0;
};

FloatFingerprints collect_fingerprints(Simulation& sim) {
  return {cloud_hash(sim), edge_hash(sim), device_hash(sim),
          bits(sim.mean_blend_weight())};
}

/// ISA-invariant pins, asserted hard on every target: evaluation accuracy
/// bit patterns (sample counts quantize them) and the integer counters.
void expect_invariants(Simulation& sim, const RunHistory& history,
                       const GoldenRun& g) {
  ASSERT_EQ(history.points.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(bits(history.points[i].accuracy), g.acc_bits[i])
        << "eval point " << i;
  }
  const auto& comm = sim.comm_stats();
  EXPECT_EQ(comm.device_downloads, g.dd);
  EXPECT_EQ(comm.device_uploads, g.du);
  EXPECT_EQ(comm.edge_uploads, g.eu);
  EXPECT_EQ(comm.edge_downloads, g.ed);
  EXPECT_EQ(comm.device_broadcasts, g.db);
  EXPECT_EQ(sim.failed_uploads(), g.failed);
  EXPECT_EQ(sim.straggler_drops(), g.stragglers);
  EXPECT_EQ(sim.upload_bytes(), g.upload_bytes);
  EXPECT_EQ(sim.on_device_aggregations(), g.blends);
}

bool matches_recorded(const FloatFingerprints& f, const GoldenRun& g) {
  return (f.cloud == g.cloud_hash[0] || f.cloud == g.cloud_hash[1]) &&
         (f.edge == g.edge_hash[0] || f.edge == g.edge_hash[1]) &&
         (f.device == g.device_hash[0] || f.device == g.device_hash[1]) &&
         (f.blend == g.blend_w[0] || f.blend == g.blend_w[1]);
}

std::string describe(const FloatFingerprints& f) {
  std::ostringstream os;
  os << std::hex << "cloud 0x" << f.cloud << " edge 0x" << f.edge
     << " device 0x" << f.device << " blend 0x" << f.blend;
  return os.str();
}

// Runs the configured bundle twice — bare, then with the full
// observability stack attached (trace recorder + metrics registry + JSONL
// logger). Both runs hard-assert the ISA-invariant pins and must agree on
// every float fingerprint bit for bit (recording reads only the steady
// clock, so attaching it cannot change the run). Returns an empty string
// when the fingerprints match a recorded codegen variant, otherwise a
// skip reason carrying the observed hashes (see tests/README.md).
std::string run_golden(SimBundle& bundle, Algorithm algorithm,
                       const GoldenRun& g) {
  SCOPED_TRACE(g.name);
  FloatFingerprints bare;
  {
    SCOPED_TRACE("bare");
    auto sim = bundle.make(algorithm);
    const RunHistory history = sim->run();
    expect_invariants(*sim, history, g);
    bare = collect_fingerprints(*sim);
  }
  FloatFingerprints observed;
  {
    SCOPED_TRACE("observed");
    middlefl::obs::TraceRecorder trace;
    middlefl::obs::MetricsRegistry metrics;
    std::ostringstream jsonl;
    middlefl::obs::RunLogger logger(jsonl);
    auto sim = bundle.make(algorithm);
    sim->set_observability({&trace, &metrics, &logger});
    const RunHistory history = sim->run();
    expect_invariants(*sim, history, g);
    observed = collect_fingerprints(*sim);
    EXPECT_GT(trace.event_count(), 0u);
    EXPECT_GT(logger.records_written(), 0u);
  }
  EXPECT_EQ(bare.cloud, observed.cloud) << "observation perturbed the run";
  EXPECT_EQ(bare.edge, observed.edge) << "observation perturbed the run";
  EXPECT_EQ(bare.device, observed.device) << "observation perturbed the run";
  EXPECT_EQ(bare.blend, observed.blend) << "observation perturbed the run";
  if (matches_recorded(bare, g)) return {};
  return std::string(g.name) +
         ": float fingerprints match neither recorded codegen variant "
         "(invariants and bare==observed still pass; this host's FP "
         "codegen is unrecorded — see tests/README.md): " +
         describe(bare);
}

TEST(GoldenParity, MiddleDefault) {
  const GoldenRun golden{
      "middle_default",
      {0x3fcc28f5c28f5c29, 0x3fceb851eb851eb8, 0x3fd0000000000000,
       0x3fd3d70a3d70a3d7, 0x3fd3d70a3d70a3d7},
      {0xa6e48d10ecf20269, 0x159bb9b71d73fa40},
      {0xc677cc5187254832, 0x5b08d7667fa48211},
      {0xed80f5423a901f27, 0x07ff30c38db5f7d3},
      117, 117, 12, 12, 48,
      0, 0, 308880, 61,
      {0x3fdfffa9a58325ac, 0x3fdfffa9a582ae6b}};
  SimBundle bundle;
  const std::string skip = run_golden(bundle, Algorithm::kMiddle, golden);
  if (!skip.empty()) GTEST_SKIP() << skip;
}

TEST(GoldenParity, MiddleDefaultParallel) {
  // Same fingerprints with the thread pool on: parity AND determinism.
  const GoldenRun golden{
      "middle_parallel",
      {0x3fcc28f5c28f5c29, 0x3fceb851eb851eb8, 0x3fd0000000000000,
       0x3fd3d70a3d70a3d7, 0x3fd3d70a3d70a3d7},
      {0xa6e48d10ecf20269, 0x159bb9b71d73fa40},
      {0xc677cc5187254832, 0x5b08d7667fa48211},
      {0xed80f5423a901f27, 0x07ff30c38db5f7d3},
      117, 117, 12, 12, 48,
      0, 0, 308880, 61,
      {0x3fdfffa9a58325ac, 0x3fdfffa9a582ae6b}};
  SimBundle bundle;
  bundle.cfg.parallel_devices = true;
  const std::string skip = run_golden(bundle, Algorithm::kMiddle, golden);
  if (!skip.empty()) GTEST_SKIP() << skip;
}

TEST(GoldenParity, MiddleUploadFailures) {
  // The legacy upload_failure_prob alias must drive the uplink loss policy
  // through the exact same RNG stream as the pre-refactor failure draw.
  const GoldenRun golden{
      "middle_failures",
      {0x3fcc28f5c28f5c29, 0x3fd0000000000000, 0x3fd0a3d70a3d70a4,
       0x3fd1eb851eb851ec, 0x3fd5c28f5c28f5c3},
      {0x9ce4853f26efeb88, 0x9c3e7c355f7b457b},
      {0xf077f623d0203229, 0xe116ec3eb404457c},
      {0xdef31f491db3dfd3, 0xb749a55846a39b57},
      117, 117, 12, 12, 48,
      27, 0, 237600, 60,
      {0x3fdfff99a8d61897, 0x3fdfff99a8d59276}};
  SimBundle bundle;
  bundle.cfg.upload_failure_prob = 0.25;
  const std::string skip = run_golden(bundle, Algorithm::kMiddle, golden);
  if (!skip.empty()) GTEST_SKIP() << skip;
}

TEST(GoldenParity, MiddleTopKCompression) {
  const GoldenRun golden{
      "middle_topk",
      {0x3fcc28f5c28f5c29, 0x3fcd70a3d70a3d71, 0x3fd0000000000000,
       0x3fd3333333333333, 0x3fd3333333333333},
      {0xc9632228bb922210, 0xa7aba8e75bcc999a},
      {0x89f632a7f28a3181, 0x9fd915f75216f873},
      {0x58fc2ed312b62773, 0x895938b32e461f43},
      117, 117, 12, 12, 48,
      0, 0, 154440, 61,
      {0x3fdfffaccfb76416, 0x3fdfffaccfb76817}};
  SimBundle bundle;
  bundle.cfg.upload_compression.kind =
      middlefl::core::CompressionKind::kTopK;
  bundle.cfg.upload_compression.top_k_fraction = 0.25;
  const std::string skip = run_golden(bundle, Algorithm::kMiddle, golden);
  if (!skip.empty()) GTEST_SKIP() << skip;
}

TEST(GoldenParity, FedMesMobile) {
  // FedMes pins the extra previous-edge download accounting (dd > du).
  const GoldenRun golden{
      "fedmes_mobile",
      {0x3fcc28f5c28f5c29, 0x3fd0000000000000, 0x3fd1eb851eb851ec,
       0x3fd3d70a3d70a3d7, 0x3fd6666666666666},
      {0x74d5fb910676bd55, 0x82ba6637fadaf8d0},
      {0x8fa569a13ccc6d16, 0xb6ab51fbaa037741},
      {0x81b15e4f7c1dd26f, 0x5dd8815c8b7451f3},
      201, 116, 12, 12, 48,
      0, 0, 306240, 85,
      {0x3fe0000000000000, 0x3fe0000000000000}};
  SimBundle bundle;
  bundle.mobility_p = 0.8;
  const std::string skip = run_golden(bundle, Algorithm::kFedMes, golden);
  if (!skip.empty()) GTEST_SKIP() << skip;
}

TEST(GoldenParity, MiddleHeterogeneousStragglers) {
  // Stragglers pay the download but never train or upload.
  const GoldenRun golden{
      "middle_hetero",
      {0x3fcc28f5c28f5c29, 0x3fceb851eb851eb8, 0x3fd0a3d70a3d70a4,
       0x3fd147ae147ae148, 0x3fd51eb851eb851f},
      {0xe8dd24b476f77b9f, 0xcff7be885e9e9e18},
      {0xd3fc37a7a1350108, 0x898da041a858f519},
      {0xb99e916635c4eb8f, 0xba03489419661533},
      117, 107, 12, 12, 48,
      21, 10, 227040, 54,
      {0x3fdfff854d65ebdc, 0x3fdfff854d65ab85}};
  SimBundle bundle;
  bundle.cfg.device_speeds.assign(12, 1.0);
  bundle.cfg.device_speeds[0] = 0.05;
  bundle.cfg.device_speeds[1] = 0.4;
  bundle.cfg.round_deadline = 5.0;
  bundle.cfg.upload_failure_prob = 0.2;
  const std::string skip = run_golden(bundle, Algorithm::kMiddle, golden);
  if (!skip.empty()) GTEST_SKIP() << skip;
}

// ---------------------------------------------------------------------------
// Observer events

struct RecordingObserver final : StepObserver {
  struct TransferEvent {
    StepPhase phase;
    LinkKind kind;
    LinkStats delta;
    std::size_t step;
  };
  std::vector<std::size_t> begun;
  std::vector<std::pair<StepPhase, std::size_t>> phases;
  std::vector<TransferEvent> transfers;
  std::vector<std::pair<std::size_t, bool>> ended;
  std::vector<std::size_t> sync_contributions;
  std::size_t selections = 0;
  std::size_t evaluations = 0;
  std::size_t dropout_events = 0;
  std::size_t blend_events = 0;

  void on_step_begin(std::size_t step) override { begun.push_back(step); }
  void on_phase(StepPhase phase, std::size_t step) override {
    phases.emplace_back(phase, step);
  }
  void on_transfers(StepPhase phase, LinkKind kind, const LinkStats& delta,
                    std::size_t step) override {
    transfers.push_back(TransferEvent{phase, kind, delta, step});
  }
  void on_selection(std::size_t,
                    const std::vector<std::vector<std::size_t>>&) override {
    ++selections;
  }
  void on_dropouts(std::size_t, std::size_t, std::size_t) override {
    ++dropout_events;
  }
  void on_blends(std::size_t, std::size_t, double) override {
    ++blend_events;
  }
  void on_cloud_sync(std::size_t, std::size_t contributing) override {
    sync_contributions.push_back(contributing);
  }
  void on_step_end(std::size_t step, bool synced) override {
    ended.emplace_back(step, synced);
  }
  void on_evaluation(const middlefl::core::EvalPoint&) override {
    ++evaluations;
  }
};

TEST(StepObserverTest, PhaseSequenceAndStepEvents) {
  SimBundle bundle;
  bundle.cfg.total_steps = 6;
  bundle.cfg.cloud_interval = 3;
  bundle.cfg.eval_every = 3;
  auto sim = bundle.make(Algorithm::kMiddle);
  RecordingObserver rec;
  sim->add_observer(&rec);
  sim->run();

  ASSERT_EQ(rec.begun.size(), 6u);
  ASSERT_EQ(rec.ended.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    const std::size_t step = i + 1;
    EXPECT_EQ(rec.begun[i], step);
    EXPECT_EQ(rec.ended[i].first, step);
    EXPECT_EQ(rec.ended[i].second, step % 3 == 0);  // T_c = 3
  }

  // Per step: the five always-on phases in pipeline order, plus CloudSync
  // on sync steps.
  const StepPhase base[] = {StepPhase::kSelect, StepPhase::kDistribute,
                            StepPhase::kLocalTrain, StepPhase::kUpload,
                            StepPhase::kEdgeAggregate};
  std::size_t i = 0;
  for (std::size_t step = 1; step <= 6; ++step) {
    for (const StepPhase expected : base) {
      ASSERT_LT(i, rec.phases.size());
      EXPECT_EQ(rec.phases[i].first, expected) << to_string(expected);
      EXPECT_EQ(rec.phases[i].second, step);
      ++i;
    }
    if (step % 3 == 0) {
      ASSERT_LT(i, rec.phases.size());
      EXPECT_EQ(rec.phases[i].first, StepPhase::kCloudSync);
      ++i;
    }
  }
  EXPECT_EQ(i, rec.phases.size());

  EXPECT_EQ(rec.selections, 6u);
  EXPECT_EQ(rec.sync_contributions.size(), 2u);
  for (const std::size_t contributing : rec.sync_contributions) {
    EXPECT_GT(contributing, 0u);
    EXPECT_LE(contributing, sim->num_edges());
  }
  // run() evaluates at t=0, t=3 and t=6.
  EXPECT_EQ(rec.evaluations, 3u);

  // Transfer events carry phase-consistent link kinds, and their deltas
  // must reassemble the built-in counters exactly.
  middlefl::core::CommStats rebuilt;
  for (const auto& event : rec.transfers) {
    EXPECT_GT(event.delta.transfers, 0u);
    switch (event.kind) {
      case LinkKind::kWirelessDown:
        EXPECT_EQ(event.phase, StepPhase::kDistribute);
        rebuilt.device_downloads += event.delta.transfers;
        break;
      case LinkKind::kCarry:
        EXPECT_EQ(event.phase, StepPhase::kDistribute);
        break;
      case LinkKind::kWirelessUp:
        EXPECT_EQ(event.phase, StepPhase::kUpload);
        rebuilt.device_uploads += event.delta.transfers;
        break;
      case LinkKind::kWanUp:
        EXPECT_EQ(event.phase, StepPhase::kCloudSync);
        rebuilt.edge_uploads += event.delta.transfers;
        break;
      case LinkKind::kWanDown:
        EXPECT_EQ(event.phase, StepPhase::kCloudSync);
        rebuilt.edge_downloads += event.delta.transfers;
        break;
      case LinkKind::kBroadcast:
        EXPECT_EQ(event.phase, StepPhase::kCloudSync);
        rebuilt.device_broadcasts += event.delta.transfers;
        break;
    }
  }
  const auto& comm = sim->comm_stats();
  EXPECT_EQ(rebuilt.device_downloads, comm.device_downloads);
  EXPECT_EQ(rebuilt.device_uploads, comm.device_uploads);
  EXPECT_EQ(rebuilt.edge_uploads, comm.edge_uploads);
  EXPECT_EQ(rebuilt.edge_downloads, comm.edge_downloads);
  EXPECT_EQ(rebuilt.device_broadcasts, comm.device_broadcasts);
}

TEST(StepObserverTest, ExternalCommStatsObserverMatchesBuiltIn) {
  SimBundle bundle;
  bundle.cfg.upload_failure_prob = 0.2;
  auto sim = bundle.make(Algorithm::kFedMes);
  middlefl::core::CommStatsObserver external;
  sim->add_observer(&external);
  sim->run();
  const auto& a = sim->comm_stats();
  const auto& b = external.stats();
  EXPECT_EQ(a.device_downloads, b.device_downloads);
  EXPECT_EQ(a.device_uploads, b.device_uploads);
  EXPECT_EQ(a.edge_uploads, b.edge_uploads);
  EXPECT_EQ(a.edge_downloads, b.edge_downloads);
  EXPECT_EQ(a.device_broadcasts, b.device_broadcasts);
  EXPECT_EQ(a.total_transfers(), b.total_transfers());
}

TEST(StepObserverTest, ObservingDoesNotPerturbTheRun) {
  SimBundle bundle;
  bundle.cfg.total_steps = 10;
  auto plain = bundle.make(Algorithm::kMiddle);
  auto observed = bundle.make(Algorithm::kMiddle);
  RecordingObserver rec;
  observed->add_observer(&rec);

  const RunHistory h1 = plain->run();
  const RunHistory h2 = observed->run();
  ASSERT_EQ(h1.points.size(), h2.points.size());
  for (std::size_t i = 0; i < h1.points.size(); ++i) {
    EXPECT_EQ(h1.points[i].accuracy, h2.points[i].accuracy);
    EXPECT_EQ(h1.points[i].loss, h2.points[i].loss);
  }
  EXPECT_EQ(cloud_hash(*plain), cloud_hash(*observed));
  EXPECT_EQ(device_hash(*plain), device_hash(*observed));
}

TEST(StepObserverTest, RejectsNullObserver) {
  SimBundle bundle;
  auto sim = bundle.make(Algorithm::kMiddle);
  EXPECT_THROW(sim->add_observer(nullptr), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Per-link policies

TEST(TransportPolicy, LegacyAliasMatchesExplicitUplinkPolicy) {
  SimBundle bundle;
  bundle.cfg.upload_failure_prob = 0.3;
  auto legacy = bundle.make(Algorithm::kMiddle);

  SimBundle explicit_bundle;
  explicit_bundle.cfg.transport.wireless_up.loss_prob = 0.3;
  auto modern = explicit_bundle.make(Algorithm::kMiddle);

  // Both views of the config agree after construction.
  EXPECT_EQ(legacy->config().transport.wireless_up.loss_prob, 0.3);
  EXPECT_EQ(modern->config().upload_failure_prob, 0.3);

  const RunHistory h1 = legacy->run();
  const RunHistory h2 = modern->run();
  ASSERT_EQ(h1.points.size(), h2.points.size());
  for (std::size_t i = 0; i < h1.points.size(); ++i) {
    EXPECT_EQ(h1.points[i].accuracy, h2.points[i].accuracy);
    EXPECT_EQ(h1.points[i].loss, h2.points[i].loss);
  }
  EXPECT_EQ(cloud_hash(*legacy), cloud_hash(*modern));
  EXPECT_EQ(legacy->failed_uploads(), modern->failed_uploads());
  EXPECT_EQ(legacy->upload_bytes(), modern->upload_bytes());
}

TEST(TransportPolicy, TotalDownlinkLossFreezesTraining) {
  // Every download lost: no device trains, no upload happens, and the
  // global model never moves off its initialization.
  SimBundle bundle;
  bundle.cfg.transport.wireless_down.loss_prob = 1.0;
  auto sim = bundle.make(Algorithm::kMiddle);
  const RunHistory history = sim->run();

  const auto& comm = sim->comm_stats();
  EXPECT_GT(comm.device_downloads, 0u);
  EXPECT_EQ(sim->lost_downloads(), comm.device_downloads);
  EXPECT_EQ(comm.device_uploads, 0u);
  EXPECT_EQ(sim->upload_bytes(), 0u);
  for (const auto& point : history.points) {
    EXPECT_EQ(point.accuracy, history.points.front().accuracy);
  }
  // Lost sends never touch the wire.
  EXPECT_EQ(sim->transport().stats(LinkKind::kWirelessDown).bytes, 0u);
}

TEST(TransportPolicy, TotalBroadcastLossKeepsLocalModels) {
  SimBundle bundle;
  bundle.cfg.total_steps = 5;  // exactly one cloud sync
  auto lossless = bundle.make(Algorithm::kMiddle);

  SimBundle lossy_bundle;
  lossy_bundle.cfg.total_steps = 5;
  lossy_bundle.cfg.transport.broadcast.loss_prob = 1.0;
  auto lossy = lossy_bundle.make(Algorithm::kMiddle);

  lossless->run();
  lossy->run();

  // Broadcast attempts are still counted (and still charged zero bytes
  // since every one was dropped), but no device received the global model.
  const auto stats = lossy->transport().stats(LinkKind::kBroadcast);
  EXPECT_EQ(stats.transfers, lossy->num_devices());
  EXPECT_EQ(stats.dropped, stats.transfers);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(lossy->comm_stats().device_broadcasts,
            lossless->comm_stats().device_broadcasts);
  // The cloud agrees (uplink path identical), but devices diverge: the
  // lossless run overwrote them with the broadcast.
  EXPECT_EQ(cloud_hash(*lossless), cloud_hash(*lossy));
  EXPECT_NE(device_hash(*lossless), device_hash(*lossy));
}

TEST(TransportPolicy, UplinkLatencyAggregatesStaleUploads) {
  SimBundle bundle;
  bundle.cfg.total_steps = 6;
  bundle.cfg.cloud_interval = 100;  // isolate the wireless path
  bundle.cfg.transport.wireless_up.latency_steps = 1;
  auto sim = bundle.make(Algorithm::kMiddle);

  // Step 1: uploads enter the delay queue; no edge aggregates anything.
  const auto init = std::vector<float>(sim->edge_params(0).begin(),
                                       sim->edge_params(0).end());
  sim->step();
  EXPECT_GT(sim->transport().total_in_flight(), 0u);
  std::span<const float> after1 = sim->edge_params(0);
  EXPECT_TRUE(std::equal(after1.begin(), after1.end(), init.begin()));

  // Step 2: step-1 uploads arrive and move the edge models.
  sim->step();
  bool any_edge_moved = false;
  for (std::size_t n = 0; n < sim->num_edges() && !any_edge_moved; ++n) {
    const auto params = sim->edge_params(n);
    any_edge_moved = !std::equal(params.begin(), params.end(), init.begin());
  }
  EXPECT_TRUE(any_edge_moved);

  while (sim->current_step() < 6) sim->step();
  // Conservation: every attempted upload was either delivered into an
  // aggregation or is still in flight; none were lost.
  const auto up = sim->transport().stats(LinkKind::kWirelessUp);
  EXPECT_EQ(up.dropped, 0u);
  EXPECT_EQ(sim->transport().total_in_flight(),
            sim->transport().wireless_up().in_flight());
  EXPECT_GT(up.transfers, 0u);
  // Queued sends were charged at send time.
  EXPECT_EQ(up.bytes, up.transfers * init.size() * sizeof(float));
}

TEST(TransportPolicy, BytesByLinkReportIsCoherent) {
  SimBundle bundle;
  bundle.cfg.transport.wireless_up.compression = {
      middlefl::transport::CompressionKind::kQuant8, 0.1};
  auto sim = bundle.make(Algorithm::kMiddle);
  sim->run();

  const auto report = sim->transport().bytes_by_link();
  std::size_t total = 0;
  for (const auto& entry : report) {
    total += entry.stats.bytes;
    if (entry.kind == LinkKind::kCarry) {
      // On-device aggregations ride the carry link for free.
      EXPECT_EQ(entry.stats.transfers, sim->on_device_aggregations());
      EXPECT_EQ(entry.stats.bytes, 0u);
    }
    if (entry.kind == LinkKind::kWirelessUp) {
      EXPECT_EQ(entry.stats.bytes, sim->upload_bytes());
      // q8 wire model: n + 4 bytes per delivered upload.
      const std::size_t n = sim->cloud_params().size();
      EXPECT_EQ(entry.stats.bytes, entry.stats.delivered() * (n + 4));
    }
  }
  EXPECT_EQ(total, sim->transport().total_bytes());
}

}  // namespace
