#include <gtest/gtest.h>

#include "sim_fixture.hpp"

namespace {

using middlefl::core::Algorithm;
using middlefl::core::Simulation;
using middlefl::testing::SimBundle;

TEST(Simulation, ConstructionValidatesWiring) {
  SimBundle bundle;
  // Mobility device count mismatch.
  auto bad_mobility = std::make_unique<middlefl::mobility::MarkovMobility>(
      std::vector<std::size_t>(5, 0), 3, 0.5, 1);
  const middlefl::optim::Sgd sgd({.learning_rate = 0.05});
  EXPECT_THROW(
      Simulation(bundle.cfg, bundle.model_spec, sgd, bundle.train,
                 bundle.partition, bundle.test, std::move(bad_mobility),
                 middlefl::core::make_algorithm(Algorithm::kMiddle)),
      std::invalid_argument);
  EXPECT_THROW(
      Simulation(bundle.cfg, bundle.model_spec, sgd, bundle.train,
                 bundle.partition, bundle.test, nullptr,
                 middlefl::core::make_algorithm(Algorithm::kMiddle)),
      std::invalid_argument);
}

TEST(Simulation, InitialModelsAreAligned) {
  SimBundle bundle;
  auto sim = bundle.make(Algorithm::kMiddle);
  const auto cloud = sim->cloud_params();
  for (std::size_t n = 0; n < sim->num_edges(); ++n) {
    const auto edge = sim->edge_params(n);
    for (std::size_t i = 0; i < cloud.size(); ++i) {
      EXPECT_EQ(cloud[i], edge[i]);
    }
  }
  for (std::size_t m = 0; m < sim->num_devices(); ++m) {
    const auto device = sim->device(m).params();
    for (std::size_t i = 0; i < cloud.size(); ++i) {
      EXPECT_EQ(cloud[i], device[i]);
    }
  }
}

TEST(Simulation, StepAdvancesTimeAndSyncsOnSchedule) {
  SimBundle bundle;
  bundle.cfg.cloud_interval = 3;
  auto sim = bundle.make(Algorithm::kHierFavg);
  EXPECT_FALSE(sim->step());  // t=1
  EXPECT_FALSE(sim->step());  // t=2
  EXPECT_TRUE(sim->step());   // t=3: sync
  EXPECT_FALSE(sim->step());  // t=4
  EXPECT_EQ(sim->current_step(), 4u);
}

TEST(Simulation, SelectionRespectsK) {
  SimBundle bundle;
  bundle.cfg.select_per_edge = 2;
  auto sim = bundle.make(Algorithm::kMiddle);
  sim->step();
  for (std::size_t n = 0; n < sim->num_edges(); ++n) {
    EXPECT_LE(sim->last_selection()[n].size(), 2u);
  }
  // Selected devices must be connected to the edge they trained for.
  for (std::size_t n = 0; n < sim->num_edges(); ++n) {
    for (std::size_t m : sim->last_selection()[n]) {
      EXPECT_EQ(sim->assignment()[m], n);
    }
  }
}

TEST(Simulation, CloudSyncBroadcastsGlobalModel) {
  SimBundle bundle;
  bundle.cfg.cloud_interval = 2;
  auto sim = bundle.make(Algorithm::kMiddle);
  sim->step();
  sim->step();  // sync at t=2
  const auto cloud = sim->cloud_params();
  for (std::size_t n = 0; n < sim->num_edges(); ++n) {
    const auto edge = sim->edge_params(n);
    for (std::size_t i = 0; i < cloud.size(); ++i) {
      EXPECT_EQ(edge[i], cloud[i]);
    }
  }
  for (std::size_t m = 0; m < sim->num_devices(); ++m) {
    const auto dev = sim->device(m).params();
    for (std::size_t i = 0; i < cloud.size(); ++i) {
      EXPECT_EQ(dev[i], cloud[i]);
    }
  }
}

TEST(Simulation, NoBroadcastAblationKeepsLocalModels) {
  SimBundle bundle;
  bundle.cfg.cloud_interval = 2;
  bundle.cfg.broadcast_to_devices = false;
  auto sim = bundle.make(Algorithm::kMiddle);
  sim->step();
  sim->step();  // sync, but devices keep their local models
  const auto cloud = sim->cloud_params();
  bool any_device_differs = false;
  for (std::size_t m = 0; m < sim->num_devices(); ++m) {
    const auto dev = sim->device(m).params();
    for (std::size_t i = 0; i < cloud.size(); ++i) {
      any_device_differs = any_device_differs || dev[i] != cloud[i];
    }
  }
  EXPECT_TRUE(any_device_differs);
}

TEST(Simulation, TrainingMovesEdgeModels) {
  SimBundle bundle;
  auto sim = bundle.make(Algorithm::kHierFavg);
  const std::vector<float> before(sim->edge_params(0).begin(),
                                  sim->edge_params(0).end());
  sim->step();
  bool changed = false;
  const auto after = sim->edge_params(0);
  for (std::size_t i = 0; i < before.size(); ++i) {
    changed = changed || before[i] != after[i];
  }
  EXPECT_TRUE(changed);
}

TEST(Simulation, DeterministicAcrossRuns) {
  SimBundle bundle;
  bundle.cfg.total_steps = 10;
  auto sim1 = bundle.make(Algorithm::kMiddle);
  auto sim2 = bundle.make(Algorithm::kMiddle);
  const auto h1 = sim1->run();
  const auto h2 = sim2->run();
  ASSERT_EQ(h1.points.size(), h2.points.size());
  for (std::size_t i = 0; i < h1.points.size(); ++i) {
    EXPECT_EQ(h1.points[i].accuracy, h2.points[i].accuracy);
    EXPECT_EQ(h1.points[i].loss, h2.points[i].loss);
  }
}

TEST(Simulation, ParallelMatchesSerial) {
  SimBundle bundle;
  bundle.cfg.total_steps = 8;
  bundle.cfg.parallel_devices = false;
  auto serial = bundle.make(Algorithm::kMiddle);
  const auto hs = serial->run();

  SimBundle bundle2;
  bundle2.cfg.total_steps = 8;
  bundle2.cfg.parallel_devices = true;
  auto parallel = bundle2.make(Algorithm::kMiddle);
  const auto hp = parallel->run();

  ASSERT_EQ(hs.points.size(), hp.points.size());
  for (std::size_t i = 0; i < hs.points.size(); ++i) {
    EXPECT_EQ(hs.points[i].accuracy, hp.points[i].accuracy)
        << "eval point " << i;
  }
}

TEST(Simulation, RunRecordsEvalSchedule) {
  SimBundle bundle;
  bundle.cfg.total_steps = 20;
  bundle.cfg.eval_every = 5;
  auto sim = bundle.make(Algorithm::kOort);
  const auto history = sim->run();
  // Initial point + evals at 5, 10, 15, 20.
  ASSERT_EQ(history.points.size(), 5u);
  EXPECT_EQ(history.points[0].step, 0u);
  EXPECT_EQ(history.points[1].step, 5u);
  EXPECT_EQ(history.points.back().step, 20u);
  EXPECT_EQ(history.algorithm, "OORT");
}

TEST(Simulation, ProgressCallbackFires) {
  SimBundle bundle;
  bundle.cfg.total_steps = 10;
  bundle.cfg.eval_every = 5;
  auto sim = bundle.make(Algorithm::kMiddle);
  std::size_t calls = 0;
  sim->run([&calls](const middlefl::core::EvalPoint&) { ++calls; });
  EXPECT_EQ(calls, 3u);  // step 0, 5, 10
}

TEST(Simulation, TrackPerClassRecordsVector) {
  SimBundle bundle(/*classes=*/4);
  bundle.cfg.total_steps = 5;
  bundle.cfg.eval_every = 5;
  bundle.cfg.track_per_class = true;
  auto sim = bundle.make(Algorithm::kMiddle);
  const auto history = sim->run();
  for (const auto& point : history.points) {
    EXPECT_EQ(point.per_class_accuracy.size(), 4u);
  }
}

TEST(Simulation, TrackEdgeAccuracyRecordsVector) {
  SimBundle bundle;
  bundle.cfg.total_steps = 5;
  bundle.cfg.eval_every = 5;
  bundle.cfg.track_edge_accuracy = true;
  auto sim = bundle.make(Algorithm::kMiddle);
  const auto history = sim->run();
  for (const auto& point : history.points) {
    EXPECT_EQ(point.edge_accuracy.size(), 3u);
  }
}

TEST(Simulation, MiddlePerformsOnDeviceAggregations) {
  SimBundle bundle;
  bundle.mobility_p = 0.8;  // lots of movement
  bundle.cfg.total_steps = 10;
  auto sim = bundle.make(Algorithm::kMiddle);
  sim->run();
  EXPECT_GT(sim->on_device_aggregations(), 0u);
  EXPECT_GE(sim->mean_blend_weight(), 0.0);
  EXPECT_LE(sim->mean_blend_weight(), 0.5);  // Eq. 9: local weight <= 1/2
}

TEST(Simulation, OortNeverBlends) {
  SimBundle bundle;
  bundle.mobility_p = 0.8;
  bundle.cfg.total_steps = 10;
  auto sim = bundle.make(Algorithm::kOort);
  sim->run();
  EXPECT_EQ(sim->on_device_aggregations(), 0u);
}

TEST(Simulation, ZeroMobilityNeverBlends) {
  SimBundle bundle;
  bundle.mobility_p = 0.0;
  bundle.cfg.total_steps = 10;
  auto sim = bundle.make(Algorithm::kMiddle);
  sim->run();
  EXPECT_EQ(sim->on_device_aggregations(), 0u);
}

TEST(Simulation, HistoryHelpersWork) {
  SimBundle bundle;
  bundle.cfg.total_steps = 10;
  auto sim = bundle.make(Algorithm::kMiddle);
  const auto history = sim->run();
  EXPECT_FALSE(std::isnan(history.final_accuracy()));
  EXPECT_GE(history.best_accuracy(), history.points[0].accuracy);
  // Accuracy target of 0 is reached immediately; 2.0 never.
  EXPECT_TRUE(history.time_to_accuracy(0.0).has_value());
  EXPECT_FALSE(history.time_to_accuracy(2.0).has_value());
  EXPECT_EQ(history.accuracy_series().size(), history.points.size());
}

TEST(Simulation, EvaluateNowAppendsPoint) {
  SimBundle bundle;
  auto sim = bundle.make(Algorithm::kMiddle);
  EXPECT_TRUE(sim->history().points.empty());
  sim->evaluate_now();
  EXPECT_EQ(sim->history().points.size(), 1u);
}

TEST(Simulation, WarmStartInstallsEverywhere) {
  SimBundle bundle;
  auto sim = bundle.make(Algorithm::kMiddle);
  std::vector<float> checkpoint(sim->cloud_params().size(), 0.25f);
  sim->warm_start(checkpoint);
  for (float p : sim->cloud_params()) EXPECT_EQ(p, 0.25f);
  for (std::size_t n = 0; n < sim->num_edges(); ++n) {
    for (float p : sim->edge_params(n)) EXPECT_EQ(p, 0.25f);
  }
  for (std::size_t m = 0; m < sim->num_devices(); ++m) {
    for (float p : sim->device(m).params()) EXPECT_EQ(p, 0.25f);
  }
  std::vector<float> wrong(3);
  EXPECT_THROW(sim->warm_start(wrong), std::invalid_argument);
}

TEST(Simulation, AssignmentAlwaysPartitionsDevices) {
  SimBundle bundle;
  bundle.mobility_p = 0.7;
  auto sim = bundle.make(Algorithm::kMiddle);
  for (int t = 0; t < 10; ++t) {
    sim->step();
    const auto& assignment = sim->assignment();
    EXPECT_EQ(assignment.size(), sim->num_devices());
    for (std::size_t e : assignment) EXPECT_LT(e, sim->num_edges());
  }
}

}  // namespace
