// Tests for the features beyond the paper's core: communication
// accounting, upload-failure injection, the signed-blend ablation rule and
// the hybrid selection strategy.
#include <gtest/gtest.h>

#include "core/similarity.hpp"
#include "sim_fixture.hpp"

namespace {

using middlefl::core::Algorithm;
using middlefl::core::OnDeviceRule;
using middlefl::testing::SimBundle;

// --- Communication accounting ---

TEST(CommStats, CountsMatchScheduleForVanillaHfl) {
  SimBundle bundle;
  bundle.cfg.total_steps = 10;
  bundle.cfg.cloud_interval = 5;
  auto sim = bundle.make(Algorithm::kHierFavg);
  std::size_t expected_selected = 0;
  for (std::size_t t = 0; t < 10; ++t) {
    sim->step();
    for (const auto& sel : sim->last_selection()) {
      expected_selected += sel.size();
    }
  }
  const auto& comm = sim->comm_stats();
  EXPECT_EQ(comm.device_downloads, expected_selected);
  EXPECT_EQ(comm.device_uploads, expected_selected);
  // Two syncs (t=5, 10): every edge uploads and downloads once per sync,
  // every device receives a broadcast.
  EXPECT_EQ(comm.edge_uploads, 2 * sim->num_edges());
  EXPECT_EQ(comm.edge_downloads, 2 * sim->num_edges());
  EXPECT_EQ(comm.device_broadcasts, 2 * sim->num_devices());
  EXPECT_EQ(comm.total_transfers(),
            comm.wireless_transfers() + comm.wan_transfers());
}

TEST(CommStats, FedMesPaysExtraDownloads) {
  SimBundle bundle;
  bundle.mobility_p = 0.8;
  bundle.cfg.total_steps = 10;
  auto fedmes = bundle.make(Algorithm::kFedMes);
  auto middle = bundle.make(Algorithm::kMiddle);
  fedmes->run();
  middle->run();
  // FedMes fetches the previous edge's model for every moved selected
  // device; MIDDLE blends a model that is already on the device.
  EXPECT_GT(fedmes->comm_stats().device_downloads,
            fedmes->comm_stats().device_uploads);
  EXPECT_EQ(middle->comm_stats().device_downloads,
            middle->comm_stats().device_uploads);
}

TEST(CommStats, BytesScaleWithParamCount) {
  middlefl::core::CommStats stats;
  stats.device_uploads = 3;
  EXPECT_EQ(stats.total_bytes(100), 3u * 100u * sizeof(float));
  middlefl::core::CommStats more;
  more.edge_uploads = 2;
  stats += more;
  EXPECT_EQ(stats.total_transfers(), 5u);
}

TEST(CommStats, NoBroadcastAblationSkipsBroadcastTraffic) {
  SimBundle bundle;
  bundle.cfg.total_steps = 10;
  bundle.cfg.cloud_interval = 5;
  bundle.cfg.broadcast_to_devices = false;
  auto sim = bundle.make(Algorithm::kMiddle);
  sim->run();
  EXPECT_EQ(sim->comm_stats().device_broadcasts, 0u);
  EXPECT_GT(sim->comm_stats().edge_uploads, 0u);
}

// --- Failure injection ---

TEST(FailureInjection, ZeroProbabilityLosesNothing) {
  SimBundle bundle;
  bundle.cfg.total_steps = 10;
  auto sim = bundle.make(Algorithm::kMiddle);
  sim->run();
  EXPECT_EQ(sim->failed_uploads(), 0u);
}

TEST(FailureInjection, AllUploadsFailFreezesEdgeModels) {
  SimBundle bundle;
  bundle.cfg.total_steps = 6;
  bundle.cfg.cloud_interval = 100;  // no sync in this window
  bundle.cfg.upload_failure_prob = 1.0;
  auto sim = bundle.make(Algorithm::kMiddle);
  const std::vector<float> before(sim->edge_params(0).begin(),
                                  sim->edge_params(0).end());
  for (int t = 0; t < 6; ++t) sim->step();
  const auto after = sim->edge_params(0);
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i], after[i]);
  }
  EXPECT_GT(sim->failed_uploads(), 0u);
}

TEST(FailureInjection, PartialFailureStillTrains) {
  SimBundle bundle;
  bundle.cfg.total_steps = 30;
  bundle.cfg.upload_failure_prob = 0.3;
  auto sim = bundle.make(Algorithm::kMiddle);
  const auto history = sim->run();
  EXPECT_GT(sim->failed_uploads(), 0u);
  // Training still converges above chance despite 30% losses.
  EXPECT_GT(history.final_accuracy(), 0.3);
  for (const auto& point : history.points) {
    EXPECT_TRUE(std::isfinite(point.loss));
  }
}

TEST(FailureInjection, DeterministicGivenSeed) {
  SimBundle bundle;
  bundle.cfg.total_steps = 15;
  bundle.cfg.upload_failure_prob = 0.4;
  auto a = bundle.make(Algorithm::kMiddle);
  auto b = bundle.make(Algorithm::kMiddle);
  a->run();
  b->run();
  EXPECT_EQ(a->failed_uploads(), b->failed_uploads());
}

// --- Signed blend (clamp ablation) ---

TEST(SignedBlend, MatchesClampedBlendForAlignedModels) {
  const std::vector<float> edge{1, 2, 3};
  const std::vector<float> local{1.1f, 2.1f, 2.9f};
  std::vector<float> clamped(3), signed_out(3);
  const double w1 = middlefl::core::on_device_aggregate(edge, local, clamped);
  const double w2 =
      middlefl::core::on_device_aggregate_signed(edge, local, signed_out);
  EXPECT_NEAR(w1, w2, 1e-9);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_FLOAT_EQ(clamped[i], signed_out[i]);
  }
}

TEST(SignedBlend, AntiAlignedGetsNegativeWeight) {
  const std::vector<float> edge{1.0f, 0.0f};
  const std::vector<float> local{-1.0f, 0.0f};
  std::vector<float> out(2);
  const double weight =
      middlefl::core::on_device_aggregate_signed(edge, local, out);
  EXPECT_LT(weight, 0.0);   // the ablation's failure mode
  EXPECT_GE(weight, -1.0);  // bounded by the -0.5 cosine floor
  // The clamped rule would return exactly the edge model instead.
  std::vector<float> clamped(2);
  EXPECT_EQ(middlefl::core::on_device_aggregate(edge, local, clamped), 0.0);
}

TEST(SignedBlend, RunsEndToEnd) {
  SimBundle bundle;
  bundle.mobility_p = 0.8;
  bundle.cfg.total_steps = 15;
  auto spec = middlefl::core::make_algorithm(Algorithm::kMiddle);
  spec.on_move = OnDeviceRule::kSignedBlend;
  auto mobility = std::make_unique<middlefl::mobility::MarkovMobility>(
      bundle.initial_edges, bundle.num_edges, bundle.mobility_p,
      bundle.seed + 1);
  const middlefl::optim::Sgd sgd({.learning_rate = 0.05, .momentum = 0.9});
  middlefl::core::Simulation sim(bundle.cfg, bundle.model_spec, sgd,
                                 bundle.train, bundle.partition, bundle.test,
                                 std::move(mobility), std::move(spec));
  const auto history = sim.run();
  EXPECT_GT(sim.on_device_aggregations(), 0u);
  for (const auto& point : history.points) {
    EXPECT_TRUE(std::isfinite(point.loss));
  }
}

// --- Hybrid selection ---

TEST(HybridSelection, PrefersHighLossDissimilarDevices) {
  std::vector<std::vector<float>> storage;
  std::vector<middlefl::core::Candidate> candidates;
  const std::vector<float> cloud{1.0f, 0.0f};
  // Device 0: high loss but fully similar (delta aligned with cloud).
  storage.push_back({2.0f, 0.0f});
  candidates.push_back({0, 10.0, 5.0, storage.back()});
  // Device 1: same loss, orthogonal delta (dissimilar) -> must win.
  storage.push_back({1.0f, 1.0f});
  candidates.push_back({1, 10.0, 5.0, storage.back()});
  // Device 2: low loss, dissimilar.
  storage.push_back({1.0f, -1.0f});
  candidates.push_back({2, 10.0, 0.5, storage.back()});

  middlefl::core::HybridSelection strategy;
  middlefl::parallel::Xoshiro256 rng(3);
  const auto selected = strategy.select(candidates, cloud, 1, rng);
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(selected[0], 1u);
}

TEST(HybridSelection, UnexploredFirst) {
  std::vector<std::vector<float>> storage;
  std::vector<middlefl::core::Candidate> candidates;
  const std::vector<float> cloud{1.0f};
  storage.push_back({5.0f});
  candidates.push_back({0, 10.0, 100.0, storage.back()});
  storage.push_back({1.0f});
  candidates.push_back({1, 10.0, std::nullopt, storage.back()});
  middlefl::core::HybridSelection strategy;
  middlefl::parallel::Xoshiro256 rng(4);
  EXPECT_EQ(strategy.select(candidates, cloud, 1, rng)[0], 1u);
}

TEST(HybridSelection, DrivesFullSimulation) {
  SimBundle bundle;
  bundle.cfg.total_steps = 40;
  middlefl::core::AlgorithmSpec spec;
  spec.name = "MIDDLE+hybrid";
  spec.selection = std::make_unique<middlefl::core::HybridSelection>();
  spec.on_move = OnDeviceRule::kSimilarityBlend;
  auto mobility = std::make_unique<middlefl::mobility::MarkovMobility>(
      bundle.initial_edges, bundle.num_edges, 0.5, bundle.seed + 1);
  const middlefl::optim::Sgd sgd({.learning_rate = 0.05, .momentum = 0.9});
  middlefl::core::Simulation sim(bundle.cfg, bundle.model_spec, sgd,
                                 bundle.train, bundle.partition, bundle.test,
                                 std::move(mobility), std::move(spec));
  const auto history = sim.run();
  // Chance is 0.25 on the 4-class fixture task.
  EXPECT_GT(history.best_accuracy(), 0.35);
}

// --- Server momentum (FedAvgM) ---

TEST(ServerMomentum, ZeroMatchesPlainAggregation) {
  SimBundle bundle;
  bundle.cfg.total_steps = 10;
  bundle.cfg.cloud_interval = 5;
  auto plain = bundle.make(Algorithm::kMiddle);
  const auto h1 = plain->run();
  SimBundle bundle2;
  bundle2.cfg.total_steps = 10;
  bundle2.cfg.cloud_interval = 5;
  bundle2.cfg.server_momentum = 0.0;
  auto zero = bundle2.make(Algorithm::kMiddle);
  const auto h2 = zero->run();
  for (std::size_t i = 0; i < h1.points.size(); ++i) {
    EXPECT_EQ(h1.points[i].accuracy, h2.points[i].accuracy);
  }
}

TEST(ServerMomentum, ChangesCloudTrajectory) {
  SimBundle bundle;
  bundle.cfg.total_steps = 10;
  bundle.cfg.cloud_interval = 5;
  auto plain = bundle.make(Algorithm::kMiddle);
  plain->run();
  SimBundle bundle2;
  bundle2.cfg.total_steps = 10;
  bundle2.cfg.cloud_interval = 5;
  bundle2.cfg.server_momentum = 0.9;
  auto momentum = bundle2.make(Algorithm::kMiddle);
  momentum->run();
  bool any_diff = false;
  for (std::size_t i = 0; i < plain->cloud_params().size(); ++i) {
    any_diff =
        any_diff || plain->cloud_params()[i] != momentum->cloud_params()[i];
  }
  EXPECT_TRUE(any_diff);
}

TEST(ServerMomentum, StillConverges) {
  SimBundle bundle;
  bundle.cfg.total_steps = 40;
  bundle.cfg.server_momentum = 0.5;
  auto sim = bundle.make(Algorithm::kMiddle);
  const auto history = sim->run();
  EXPECT_GT(history.best_accuracy(), 0.35);
  for (const auto& point : history.points) {
    EXPECT_TRUE(std::isfinite(point.loss));
  }
}

// --- Edge skew metric ---

TEST(EdgeSkew, ZeroForIdenticalMixtures) {
  const std::vector<std::vector<std::size_t>> hists{{10, 10}, {5, 5}};
  EXPECT_NEAR(middlefl::core::mean_edge_skew(hists), 0.0, 1e-12);
}

TEST(EdgeSkew, OneForDisjointSupport) {
  const std::vector<std::vector<std::size_t>> hists{{10, 0}, {0, 10}};
  EXPECT_NEAR(middlefl::core::mean_edge_skew(hists), 0.5, 1e-12);
  // TV of each edge vs the 50/50 global is 0.5; with fully disjoint support
  // over C edges == C classes the skew approaches 1 - 1/C.
  const std::vector<std::vector<std::size_t>> four{
      {9, 0, 0, 0}, {0, 9, 0, 0}, {0, 0, 9, 0}, {0, 0, 0, 9}};
  EXPECT_NEAR(middlefl::core::mean_edge_skew(four), 0.75, 1e-12);
}

TEST(EdgeSkew, SkipsEmptyEdgesAndValidates) {
  const std::vector<std::vector<std::size_t>> hists{{10, 10}, {0, 0}};
  EXPECT_NEAR(middlefl::core::mean_edge_skew(hists), 0.0, 1e-12);
  EXPECT_EQ(middlefl::core::mean_edge_skew({}), 0.0);
  const std::vector<std::vector<std::size_t>> ragged{{1, 2}, {1, 2, 3}};
  EXPECT_THROW(middlefl::core::mean_edge_skew(ragged), std::invalid_argument);
}

TEST(EdgeSkew, UniformMobilityErasesSkewHomeRingKeepsIt) {
  // The phenomenon that motivated the home-ring topology, measured with
  // the metric itself.
  const auto tail_skew = [](middlefl::mobility::MoveTopology topology) {
    SimBundle bundle(/*classes=*/10, /*devices=*/40, /*edges=*/10);
    auto mobility = std::make_unique<middlefl::mobility::MarkovMobility>(
        bundle.initial_edges, bundle.num_edges, 0.5, 77);
    mobility->set_topology(topology, 0.7);
    const middlefl::optim::Sgd sgd({.learning_rate = 0.05});
    middlefl::core::Simulation sim(
        bundle.cfg, bundle.model_spec, sgd, bundle.train, bundle.partition,
        bundle.test, std::move(mobility),
        middlefl::core::make_algorithm(Algorithm::kHierFavg));
    double acc = 0.0;
    for (int t = 0; t < 30; ++t) {
      sim.step();
      if (t >= 20) acc += sim.current_edge_skew();
    }
    return acc / 10.0;
  };
  const double uniform =
      tail_skew(middlefl::mobility::MoveTopology::kUniform);
  const double home = tail_skew(middlefl::mobility::MoveTopology::kHomeRing);
  EXPECT_GT(home, uniform + 0.08);
}

// --- System heterogeneity: speeds, deadlines, stragglers ---

TEST(Heterogeneity, HomogeneousDefaultUnchanged) {
  SimBundle bundle;
  bundle.cfg.total_steps = 8;
  auto plain = bundle.make(Algorithm::kMiddle);
  const auto h1 = plain->run();
  SimBundle bundle2;
  bundle2.cfg.total_steps = 8;
  bundle2.cfg.round_deadline = 0.0;  // explicit no-deadline
  bundle2.cfg.device_speeds.assign(bundle2.partition.num_devices(), 0.25);
  auto hetero = bundle2.make(Algorithm::kMiddle);
  const auto h2 = hetero->run();
  // Without a deadline, speeds are irrelevant: identical trajectories.
  for (std::size_t i = 0; i < h1.points.size(); ++i) {
    EXPECT_EQ(h1.points[i].accuracy, h2.points[i].accuracy);
  }
  EXPECT_EQ(hetero->straggler_drops(), 0u);
}

TEST(Heterogeneity, DeadlineDropsSlowDevices) {
  SimBundle bundle;
  bundle.cfg.total_steps = 6;
  bundle.cfg.local_steps = 4;
  bundle.cfg.round_deadline = 4.0;  // speed-1 devices finish all 4 steps
  bundle.cfg.device_speeds.assign(bundle.partition.num_devices(), 1.0);
  bundle.cfg.device_speeds[0] = 0.1;  // finishes 0 steps: always dropped
  auto sim = bundle.make(Algorithm::kHierFavg);
  sim->run();
  EXPECT_GT(sim->straggler_drops(), 0u);
  // Dropped devices never trained: their stat utility stays unset.
  EXPECT_FALSE(sim->device(0).stat_utility().has_value());
}

TEST(Heterogeneity, PartialBudgetTrainsFewerSteps) {
  SimBundle bundle;
  bundle.cfg.total_steps = 4;
  bundle.cfg.local_steps = 8;
  bundle.cfg.round_deadline = 8.0;
  bundle.cfg.device_speeds.assign(bundle.partition.num_devices(), 1.0);
  bundle.cfg.device_speeds[1] = 0.5;  // budget 4 of 8 steps
  auto sim = bundle.make(Algorithm::kHierFavg);
  EXPECT_NO_THROW(sim->run());
  EXPECT_EQ(sim->straggler_drops(), 0u);  // everyone finishes >= 1 step
}

TEST(Heterogeneity, ValidatesConfig) {
  SimBundle bundle;
  bundle.cfg.device_speeds = {1.0, 2.0};  // wrong count
  auto mobility = std::make_unique<middlefl::mobility::MarkovMobility>(
      bundle.initial_edges, bundle.num_edges, 0.5, 1);
  const middlefl::optim::Sgd sgd({.learning_rate = 0.05});
  EXPECT_THROW(
      middlefl::core::Simulation(
          bundle.cfg, bundle.model_spec, sgd, bundle.train, bundle.partition,
          bundle.test, std::move(mobility),
          middlefl::core::make_algorithm(Algorithm::kMiddle)),
      std::invalid_argument);

  SimBundle bundle2;
  bundle2.cfg.round_deadline = 1.0;
  bundle2.cfg.device_speeds.assign(bundle2.partition.num_devices(), -1.0);
  auto mobility2 = std::make_unique<middlefl::mobility::MarkovMobility>(
      bundle2.initial_edges, bundle2.num_edges, 0.5, 1);
  EXPECT_THROW(
      middlefl::core::Simulation(
          bundle2.cfg, bundle2.model_spec, sgd, bundle2.train,
          bundle2.partition, bundle2.test, std::move(mobility2),
          middlefl::core::make_algorithm(Algorithm::kMiddle)),
      std::invalid_argument);
}

TEST(Heterogeneity, AllStragglersFreezeEdges) {
  SimBundle bundle;
  bundle.cfg.total_steps = 4;
  bundle.cfg.cloud_interval = 100;
  bundle.cfg.round_deadline = 0.5;  // nobody finishes one step
  bundle.cfg.device_speeds.assign(bundle.partition.num_devices(), 1.0);
  auto sim = bundle.make(Algorithm::kHierFavg);
  const std::vector<float> before(sim->edge_params(0).begin(),
                                  sim->edge_params(0).end());
  for (int t = 0; t < 4; ++t) sim->step();
  const auto after = sim->edge_params(0);
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i], after[i]);
  }
}

}  // namespace
