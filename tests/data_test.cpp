#include <gtest/gtest.h>

#include <set>

#include "data/dataset.hpp"
#include "data/sampler.hpp"
#include "data/synthetic.hpp"
#include "parallel/rng.hpp"

namespace {

using middlefl::data::Dataset;
using middlefl::data::DataView;
using middlefl::data::SyntheticConfig;
using middlefl::data::SyntheticGenerator;
using middlefl::data::TaskKind;
using middlefl::parallel::Xoshiro256;
using middlefl::tensor::Shape;

Dataset tiny_dataset() {
  Dataset ds(Shape{2}, 3);
  ds.add(std::vector<float>{0.f, 0.f}, 0);
  ds.add(std::vector<float>{1.f, 1.f}, 1);
  ds.add(std::vector<float>{2.f, 2.f}, 2);
  ds.add(std::vector<float>{3.f, 3.f}, 0);
  return ds;
}

TEST(Dataset, AddAndAccess) {
  const Dataset ds = tiny_dataset();
  EXPECT_EQ(ds.size(), 4u);
  EXPECT_EQ(ds.num_classes(), 3u);
  EXPECT_EQ(ds.label(1), 1);
  EXPECT_FLOAT_EQ(ds.features(2)[0], 2.0f);
}

TEST(Dataset, ValidatesInput) {
  Dataset ds(Shape{2}, 3);
  EXPECT_THROW(ds.add(std::vector<float>{1.f}, 0), std::invalid_argument);
  EXPECT_THROW(ds.add(std::vector<float>{1.f, 2.f}, 3), std::out_of_range);
  EXPECT_THROW(ds.add(std::vector<float>{1.f, 2.f}, -1), std::out_of_range);
  EXPECT_THROW(Dataset(Shape{2}, 1), std::invalid_argument);
}

TEST(Dataset, GatherBuildsBatch) {
  const Dataset ds = tiny_dataset();
  const std::vector<std::size_t> idx{2, 0};
  const auto batch = ds.gather(idx);
  EXPECT_EQ(batch.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(batch.at({0, 0}), 2.0f);
  EXPECT_FLOAT_EQ(batch.at({1, 0}), 0.0f);
  const auto labels = ds.gather_labels(idx);
  EXPECT_EQ(labels[0], 2);
  EXPECT_EQ(labels[1], 0);
}

TEST(Dataset, GatherEmptyThrows) {
  const Dataset ds = tiny_dataset();
  EXPECT_THROW(ds.gather({}), std::invalid_argument);
}

TEST(Dataset, ClassHistogramAndLookup) {
  const Dataset ds = tiny_dataset();
  const auto hist = ds.class_histogram();
  EXPECT_EQ(hist[0], 2u);
  EXPECT_EQ(hist[1], 1u);
  EXPECT_EQ(hist[2], 1u);
  const auto zeros = ds.indices_of_class(0);
  EXPECT_EQ(zeros, (std::vector<std::size_t>{0, 3}));
}

TEST(DataView, SubsetsAndBoundsChecks) {
  const Dataset ds = tiny_dataset();
  const DataView view(&ds, {1, 3});
  EXPECT_EQ(view.size(), 2u);
  EXPECT_EQ(view.label(0), 1);
  EXPECT_EQ(view.label(1), 0);
  EXPECT_THROW(DataView(&ds, {4}), std::out_of_range);
  EXPECT_THROW(DataView(nullptr, {}), std::invalid_argument);
}

TEST(DataView, AllCoversDataset) {
  const Dataset ds = tiny_dataset();
  const auto view = DataView::all(ds);
  EXPECT_EQ(view.size(), ds.size());
  const auto feats = view.all_features();
  EXPECT_EQ(feats.dim(0), 4u);
  const auto labels = view.all_labels();
  EXPECT_EQ(labels.size(), 4u);
}

TEST(DataView, HistogramCountsViewOnly) {
  const Dataset ds = tiny_dataset();
  const DataView view(&ds, {0, 3});
  const auto hist = view.class_histogram();
  EXPECT_EQ(hist[0], 2u);
  EXPECT_EQ(hist[1], 0u);
}

// --- Synthetic generators ---

TEST(Synthetic, TaskRoundTrip) {
  using middlefl::data::parse_task;
  using middlefl::data::to_string;
  for (auto kind : {TaskKind::kMnist, TaskKind::kEmnist, TaskKind::kCifar,
                    TaskKind::kSpeech}) {
    EXPECT_EQ(parse_task(to_string(kind)), kind);
  }
  EXPECT_THROW(parse_task("imagenet"), std::invalid_argument);
}

TEST(Synthetic, TaskPresetsMatchPaper) {
  const auto mnist = middlefl::data::task_config(TaskKind::kMnist);
  EXPECT_EQ(mnist.num_classes, 10u);
  EXPECT_EQ(mnist.channels, 1u);
  const auto emnist = middlefl::data::task_config(TaskKind::kEmnist);
  EXPECT_EQ(emnist.num_classes, 26u);  // EMNIST "Letters"
  const auto cifar = middlefl::data::task_config(TaskKind::kCifar);
  EXPECT_EQ(cifar.channels, 3u);
  const auto speech = middlefl::data::task_config(TaskKind::kSpeech);
  EXPECT_GT(speech.sparsity, 0.0f);  // "long sparse vectors"
  EXPECT_GT(speech.width, speech.height);
}

TEST(Synthetic, ScaleShrinksButKeepsClasses) {
  const auto full = middlefl::data::task_config(TaskKind::kEmnist, 1.0);
  const auto small = middlefl::data::task_config(TaskKind::kEmnist, 0.5);
  EXPECT_LT(small.height, full.height);
  EXPECT_EQ(small.num_classes, full.num_classes);
  EXPECT_THROW(middlefl::data::task_config(TaskKind::kMnist, 0.0),
               std::invalid_argument);
}

TEST(Synthetic, GenerateBalancedDataset) {
  SyntheticConfig cfg;
  cfg.num_classes = 4;
  cfg.height = 8;
  cfg.width = 8;
  const SyntheticGenerator gen(cfg);
  const Dataset ds = gen.generate(25, 0);
  EXPECT_EQ(ds.size(), 100u);
  for (std::size_t count : ds.class_histogram()) EXPECT_EQ(count, 25u);
}

TEST(Synthetic, DeterministicInSeedAndSalt) {
  SyntheticConfig cfg;
  cfg.num_classes = 3;
  cfg.height = 6;
  cfg.width = 6;
  const SyntheticGenerator gen1(cfg);
  const SyntheticGenerator gen2(cfg);
  const Dataset a = gen1.generate(5, 1);
  const Dataset b = gen2.generate(5, 1);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.label(i), b.label(i));
    const auto fa = a.features(i);
    const auto fb = b.features(i);
    for (std::size_t j = 0; j < fa.size(); ++j) EXPECT_EQ(fa[j], fb[j]);
  }
  // Different salt gives a different draw (train vs test split).
  const Dataset c = gen1.generate(5, 2);
  bool any_diff = false;
  for (std::size_t j = 0; j < a.features(0).size(); ++j) {
    any_diff = any_diff || a.features(0)[j] != c.features(0)[j];
  }
  EXPECT_TRUE(any_diff);
}

TEST(Synthetic, ClassesAreSeparable) {
  // Nearest-prototype classification must beat chance by a wide margin;
  // otherwise the learning tasks would be vacuous.
  SyntheticConfig cfg;
  cfg.num_classes = 5;
  cfg.height = 8;
  cfg.width = 8;
  cfg.noise_std = 0.2f;
  cfg.deform = 0;
  const SyntheticGenerator gen(cfg);
  const Dataset ds = gen.generate(20, 3);

  // Use class means of a reference draw as prototypes.
  const Dataset ref = gen.generate(20, 4);
  const std::size_t dim = ref.sample_shape().numel();
  std::vector<std::vector<double>> means(5, std::vector<double>(dim, 0.0));
  std::vector<std::size_t> counts(5, 0);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    const auto f = ref.features(i);
    auto& m = means[static_cast<std::size_t>(ref.label(i))];
    for (std::size_t j = 0; j < dim; ++j) m[j] += f[j];
    ++counts[static_cast<std::size_t>(ref.label(i))];
  }
  for (std::size_t c = 0; c < 5; ++c) {
    for (double& v : means[c]) v /= static_cast<double>(counts[c]);
  }

  std::size_t correct = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const auto f = ds.features(i);
    double best = 1e300;
    std::size_t best_c = 0;
    for (std::size_t c = 0; c < 5; ++c) {
      double d2 = 0.0;
      for (std::size_t j = 0; j < dim; ++j) {
        const double d = f[j] - means[c][j];
        d2 += d * d;
      }
      if (d2 < best) {
        best = d2;
        best_c = c;
      }
    }
    if (best_c == static_cast<std::size_t>(ds.label(i))) ++correct;
  }
  const double acc = static_cast<double>(correct) / ds.size();
  EXPECT_GT(acc, 0.6);  // chance is 0.2
}

TEST(Synthetic, SparsityZeroesPositions) {
  SyntheticConfig cfg;
  cfg.num_classes = 2;
  cfg.height = 8;
  cfg.width = 8;
  cfg.sparsity = 0.5f;
  cfg.noise_std = 0.5f;
  const SyntheticGenerator gen(cfg);
  Xoshiro256 rng(1);
  std::vector<float> sample(64);
  gen.sample_into(0, rng, sample);
  std::size_t zeros = 0;
  for (float v : sample) {
    if (v == 0.0f) ++zeros;
  }
  EXPECT_GT(zeros, 16u);  // ~32 expected
  EXPECT_LT(zeros, 48u);
}

TEST(Synthetic, InvalidConfigThrows) {
  SyntheticConfig cfg;
  cfg.num_classes = 1;
  EXPECT_THROW(SyntheticGenerator{cfg}, std::invalid_argument);
  cfg = SyntheticConfig{};
  cfg.sparsity = 1.0f;
  EXPECT_THROW(SyntheticGenerator{cfg}, std::invalid_argument);
  cfg = SyntheticConfig{};
  cfg.proto_grid = 1;
  EXPECT_THROW(SyntheticGenerator{cfg}, std::invalid_argument);
}

// --- Sampler ---

TEST(Sampler, MinibatchShapesAndDeterminism) {
  const Dataset ds = tiny_dataset();
  const auto view = DataView::all(ds);
  Xoshiro256 rng1(5), rng2(5);
  const auto b1 = middlefl::data::sample_minibatch(view, 3, rng1);
  const auto b2 = middlefl::data::sample_minibatch(view, 3, rng2);
  EXPECT_EQ(b1.features.dim(0), 3u);
  EXPECT_EQ(b1.labels.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(b1.labels[i], b2.labels[i]);
}

TEST(Sampler, EmptyViewThrows) {
  const Dataset ds = tiny_dataset();
  const DataView empty(&ds, {});
  Xoshiro256 rng(5);
  EXPECT_THROW(middlefl::data::sample_minibatch(empty, 2, rng),
               std::invalid_argument);
}

TEST(Sampler, SequentialBatchesCoverAll) {
  const auto batches = middlefl::data::sequential_batches(10, 4);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0].size(), 4u);
  EXPECT_EQ(batches[2].size(), 2u);
  std::set<std::size_t> seen;
  for (const auto& b : batches) seen.insert(b.begin(), b.end());
  EXPECT_EQ(seen.size(), 10u);
}

}  // namespace
