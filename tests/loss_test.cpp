#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "nn/loss.hpp"

namespace {

using middlefl::nn::count_correct;
using middlefl::nn::cross_entropy_value;
using middlefl::nn::per_example_cross_entropy;
using middlefl::nn::softmax;
using middlefl::nn::softmax_cross_entropy;
using middlefl::tensor::Shape;
using middlefl::tensor::Tensor;

TEST(Softmax, RowsSumToOne) {
  const Tensor logits(Shape{2, 3}, {1, 2, 3, -1, 0, 5});
  const Tensor probs = softmax(logits);
  for (std::size_t b = 0; b < 2; ++b) {
    double sum = 0.0;
    for (std::size_t c = 0; c < 3; ++c) sum += probs.at({b, c});
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }
}

TEST(Softmax, UniformLogitsUniformProbs) {
  const Tensor logits(Shape{1, 4}, {2, 2, 2, 2});
  const Tensor probs = softmax(logits);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_NEAR(probs.at({0, c}), 0.25, 1e-6);
  }
}

TEST(Softmax, NumericallyStableForLargeLogits) {
  const Tensor logits(Shape{1, 3}, {1000.0f, 999.0f, 998.0f});
  const Tensor probs = softmax(logits);
  EXPECT_TRUE(std::isfinite(probs.at({0, 0})));
  EXPECT_GT(probs.at({0, 0}), probs.at({0, 1}));
  double sum = 0.0;
  for (std::size_t c = 0; c < 3; ++c) sum += probs.at({0, c});
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(CrossEntropy, KnownValue) {
  // Uniform logits over C classes: loss = log(C).
  const Tensor logits(Shape{1, 4}, {0, 0, 0, 0});
  const std::vector<std::int32_t> labels{2};
  EXPECT_NEAR(cross_entropy_value(logits, labels), std::log(4.0), 1e-5);
}

TEST(CrossEntropy, PerfectPredictionNearZero) {
  const Tensor logits(Shape{1, 3}, {100.0f, 0.0f, 0.0f});
  const std::vector<std::int32_t> labels{0};
  EXPECT_LT(cross_entropy_value(logits, labels), 1e-4);
}

TEST(CrossEntropy, GradientMatchesSoftmaxMinusOnehot) {
  const Tensor logits(Shape{2, 3}, {1, 2, 3, 0, 0, 0});
  const std::vector<std::int32_t> labels{0, 2};
  const auto result = softmax_cross_entropy(logits, labels);
  const Tensor probs = softmax(logits);
  for (std::size_t b = 0; b < 2; ++b) {
    for (std::size_t c = 0; c < 3; ++c) {
      const double expected =
          (probs.at({b, c}) -
           (static_cast<std::int32_t>(c) == labels[b] ? 1.0 : 0.0)) /
          2.0;  // mean over batch of 2
      EXPECT_NEAR(result.grad_logits.at({b, c}), expected, 1e-5);
    }
  }
}

TEST(CrossEntropy, GradientRowsSumToZero) {
  const Tensor logits(Shape{3, 4}, {1, -1, 0.5f, 2, 0, 0, 0, 0, 3, 1, 4, 1});
  const std::vector<std::int32_t> labels{1, 0, 3};
  const auto result = softmax_cross_entropy(logits, labels);
  for (std::size_t b = 0; b < 3; ++b) {
    double sum = 0.0;
    for (std::size_t c = 0; c < 4; ++c) sum += result.grad_logits.at({b, c});
    EXPECT_NEAR(sum, 0.0, 1e-6);
  }
}

TEST(CrossEntropy, MeanLossMatchesValueOnlyPath) {
  const Tensor logits(Shape{2, 3}, {1, 2, 3, -1, 0, 5});
  const std::vector<std::int32_t> labels{0, 2};
  const auto result = softmax_cross_entropy(logits, labels);
  EXPECT_NEAR(result.loss, cross_entropy_value(logits, labels), 1e-6);
}

TEST(CrossEntropy, PerExampleAveragesToMean) {
  const Tensor logits(Shape{3, 2}, {1, 0, 0, 1, 2, 2});
  const std::vector<std::int32_t> labels{0, 0, 1};
  std::vector<float> per(3);
  per_example_cross_entropy(logits, labels, per);
  const float mean = (per[0] + per[1] + per[2]) / 3.0f;
  EXPECT_NEAR(mean, cross_entropy_value(logits, labels), 1e-5);
}

TEST(CrossEntropy, BadLabelThrows) {
  const Tensor logits(Shape{1, 3});
  EXPECT_THROW(cross_entropy_value(logits, std::vector<std::int32_t>{3}),
               std::out_of_range);
  EXPECT_THROW(cross_entropy_value(logits, std::vector<std::int32_t>{-1}),
               std::out_of_range);
}

TEST(CrossEntropy, BatchLabelMismatchThrows) {
  const Tensor logits(Shape{2, 3});
  EXPECT_THROW(cross_entropy_value(logits, std::vector<std::int32_t>{0}),
               std::invalid_argument);
}

TEST(CountCorrect, CountsArgmaxMatches) {
  const Tensor logits(Shape{3, 3},
                      {5, 1, 1,    // pred 0
                       0, 9, 2,    // pred 1
                       1, 2, 0});  // pred 1
  EXPECT_EQ(count_correct(logits, std::vector<std::int32_t>{0, 1, 2}), 2u);
  EXPECT_EQ(count_correct(logits, std::vector<std::int32_t>{1, 0, 0}), 0u);
}

}  // namespace
