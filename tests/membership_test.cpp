// Incremental edge membership: Simulation patches members_ from the
// mobility mover delta instead of rescanning the fleet. These tests pin
// the invariant that makes the patch safe to trust — after every step the
// patched lists are exactly what a full rebuild from the assignment would
// produce: same devices, same edges, ascending by id, each device on
// exactly one edge.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <memory>
#include <vector>

#include "mobility/markov_mobility.hpp"
#include "optim/sgd.hpp"
#include "sim_fixture.hpp"

namespace {

using middlefl::core::Algorithm;
using middlefl::core::Simulation;
using middlefl::mobility::MarkovMobility;
using middlefl::mobility::MoveTopology;
using middlefl::testing::SimBundle;

std::vector<std::vector<std::size_t>> rebuild_members(
    const std::vector<std::size_t>& assignment, std::size_t num_edges) {
  std::vector<std::vector<std::size_t>> members(num_edges);
  for (std::size_t m = 0; m < assignment.size(); ++m) {
    members[assignment[m]].push_back(m);
  }
  return members;
}

/// Steps the simulation to completion, checking the patched membership
/// against a from-scratch rebuild after every step.
void expect_members_match_rebuild(const SimBundle& bundle,
                                  Algorithm algorithm, MoveTopology topology,
                                  double mobility_p, double home_bias) {
  auto mobility = std::make_unique<MarkovMobility>(
      bundle.initial_edges, bundle.num_edges, mobility_p, bundle.seed + 1);
  mobility->set_topology(topology, home_bias);
  const middlefl::optim::Sgd sgd(
      {.learning_rate = 0.05, .momentum = 0.9, .weight_decay = 0.0});
  Simulation sim(bundle.cfg, bundle.model_spec, sgd, bundle.train,
                 bundle.partition, bundle.test, std::move(mobility),
                 middlefl::core::make_algorithm(algorithm));
  for (std::size_t t = 0; t < bundle.cfg.total_steps; ++t) {
    sim.step();
    const auto expected = rebuild_members(sim.assignment(), sim.num_edges());
    ASSERT_EQ(sim.edge_members(), expected) << "step " << t;
    // Partition check: ascending lists covering every device exactly once.
    std::size_t covered = 0;
    for (const auto& list : sim.edge_members()) {
      EXPECT_TRUE(std::is_sorted(list.begin(), list.end()));
      covered += list.size();
    }
    EXPECT_EQ(covered, sim.num_devices()) << "step " << t;
  }
}

TEST(MembershipIncremental, HomeRingChurnMatchesRebuild) {
  // Commuter pattern: a steady minority of devices moves each step, so the
  // delta-patch path (movers < fleet/2) runs on every step.
  SimBundle bundle(4, 60, 6);
  bundle.cfg.total_steps = 25;
  bundle.cfg.eval_every = 25;
  expect_members_match_rebuild(bundle, Algorithm::kMiddle,
                               MoveTopology::kHomeRing, 0.4, 0.6);
}

TEST(MembershipIncremental, HeavyUniformChurnMatchesRebuild) {
  // P = 0.9 moves nearly everyone: the movers-per-step heuristic tips into
  // the full-rebuild fallback, which must land on the same lists.
  SimBundle bundle(4, 40, 5);
  bundle.cfg.total_steps = 15;
  bundle.cfg.eval_every = 15;
  expect_members_match_rebuild(bundle, Algorithm::kFedMes,
                               MoveTopology::kUniform, 0.9, 0.0);
}

TEST(MembershipIncremental, StationaryFleetMatchesRebuild) {
  // P = 0: after the first build no mover delta ever arrives; the lists
  // must simply persist unchanged.
  SimBundle bundle(4, 30, 3);
  bundle.cfg.total_steps = 10;
  bundle.cfg.eval_every = 10;
  expect_members_match_rebuild(bundle, Algorithm::kHierFavg,
                               MoveTopology::kUniform, 0.0, 0.0);
}

}  // namespace
