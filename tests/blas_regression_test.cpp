// Regression tests for the vectorized BLAS kernels against a naive
// triple-loop reference, plus bitwise serial-vs-parallel pins for the
// chunk-deterministic reductions and row-panel gemm.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <random>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "tensor/blas.hpp"

namespace {

using middlefl::tensor::Trans;

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

/// Naive op(A)*op(B) with double accumulation — the correctness oracle.
std::vector<float> naive_gemm(Trans ta, Trans tb, std::size_t m,
                              std::size_t n, std::size_t k, float alpha,
                              const std::vector<float>& a,
                              const std::vector<float>& b, float beta,
                              const std::vector<float>& c_in) {
  std::vector<float> c = c_in;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        const float av = ta == Trans::kNo ? a[i * k + p] : a[p * m + i];
        const float bv = tb == Trans::kNo ? b[p * n + j] : b[j * k + p];
        acc += static_cast<double>(av) * bv;
      }
      c[i * n + j] =
          alpha * static_cast<float>(acc) + beta * c_in[i * n + j];
    }
  }
  return c;
}

void check_case(Trans ta, Trans tb, std::size_t m, std::size_t n,
                std::size_t k, float alpha, float beta) {
  SCOPED_TRACE(::testing::Message()
               << "ta=" << (ta == Trans::kYes) << " tb="
               << (tb == Trans::kYes) << " m=" << m << " n=" << n
               << " k=" << k << " alpha=" << alpha << " beta=" << beta);
  const auto a = random_vec(m * k, 1000 + m * 7 + k);
  const auto b = random_vec(k * n, 2000 + n * 11 + k);
  const auto c0 = random_vec(m * n, 3000 + m + n);
  const auto expected = naive_gemm(ta, tb, m, n, k, alpha, a, b, beta, c0);
  std::vector<float> c = c0;
  middlefl::tensor::gemm(ta, tb, m, n, k, alpha, a, b, beta, c);
  for (std::size_t i = 0; i < c.size(); ++i) {
    // Kernels reorder the k-sum (lanes, FMA); allow a small absolute slack
    // scaled by the reduction length.
    const double tol = 1e-5 * static_cast<double>(k + 1);
    ASSERT_NEAR(c[i], expected[i], tol) << "element " << i;
  }
}

TEST(GemmRegression, AllTransposeCombosMatchNaive) {
  // Sizes straddle kernel tails (odd dims), the register-block width, and
  // the NT pack-B threshold (n >= 16 && k >= 16).
  const struct {
    std::size_t m, n, k;
  } sizes[] = {{1, 1, 1},   {3, 5, 7},    {4, 16, 16},
               {8, 48, 17}, {17, 33, 29}, {16, 16, 16}};
  for (const Trans ta : {Trans::kNo, Trans::kYes}) {
    for (const Trans tb : {Trans::kNo, Trans::kYes}) {
      for (const auto& s : sizes) {
        check_case(ta, tb, s.m, s.n, s.k, 1.0f, 0.0f);
      }
    }
  }
}

TEST(GemmRegression, AlphaBetaVariants) {
  for (const Trans ta : {Trans::kNo, Trans::kYes}) {
    for (const Trans tb : {Trans::kNo, Trans::kYes}) {
      for (const float beta : {0.0f, 1.0f, 0.5f}) {
        check_case(ta, tb, 9, 21, 19, 1.0f, beta);
        check_case(ta, tb, 9, 21, 19, 0.5f, beta);
      }
    }
  }
}

TEST(GemmRegression, ParallelMatchesSerialBitwise) {
  middlefl::parallel::ThreadPool pool(4);
  const std::size_t m = 64, n = 48, k = 33;
  for (const Trans ta : {Trans::kNo, Trans::kYes}) {
    for (const Trans tb : {Trans::kNo, Trans::kYes}) {
      const auto a = random_vec(m * k, 10);
      const auto b = random_vec(k * n, 20);
      std::vector<float> c_serial(m * n, 0.5f);
      std::vector<float> c_parallel(m * n, 0.5f);
      middlefl::tensor::gemm(ta, tb, m, n, k, 1.0f, a, b, 1.0f, c_serial);
      middlefl::tensor::gemm(ta, tb, m, n, k, 1.0f, a, b, 1.0f, c_parallel,
                             &pool);
      for (std::size_t i = 0; i < c_serial.size(); ++i) {
        ASSERT_EQ(c_serial[i], c_parallel[i]) << "element " << i;
      }
    }
  }
}

TEST(ChunkedReductions, DotParallelIsBitwiseIdentical) {
  middlefl::parallel::ThreadPool pool(4);
  // Sizes below, at, just past, and far past the fixed reduction chunk.
  for (const std::size_t n :
       {std::size_t{100}, std::size_t{1} << 15, (std::size_t{1} << 15) + 1,
        3 * (std::size_t{1} << 15) + 17}) {
    const auto x = random_vec(n, 7 + n);
    const auto y = random_vec(n, 13 + n);
    const double serial = middlefl::tensor::dot(x, y, nullptr);
    const double parallel = middlefl::tensor::dot(x, y, &pool);
    EXPECT_EQ(serial, parallel) << "n=" << n;
  }
}

TEST(ChunkedReductions, Nrm2ParallelIsBitwiseIdentical) {
  middlefl::parallel::ThreadPool pool(4);
  for (const std::size_t n :
       {std::size_t{100}, std::size_t{1} << 15, (std::size_t{1} << 15) + 1,
        3 * (std::size_t{1} << 15) + 17}) {
    const auto x = random_vec(n, 29 + n);
    const double serial = middlefl::tensor::nrm2(x, nullptr);
    const double parallel = middlefl::tensor::nrm2(x, &pool);
    EXPECT_EQ(serial, parallel) << "n=" << n;
  }
}

TEST(ChunkedReductions, PoolOverloadMatchesPlainSerial) {
  // The chunked serial path must agree with the plain single-sweep kernels
  // to double precision (identical lane structure, chunked partial order).
  const auto x = random_vec(70000, 3);
  const auto y = random_vec(70000, 4);
  EXPECT_NEAR(middlefl::tensor::dot(x, y),
              middlefl::tensor::dot(x, y, nullptr), 1e-6);
  EXPECT_NEAR(middlefl::tensor::nrm2(x),
              middlefl::tensor::nrm2(x, nullptr), 1e-9);
}

}  // namespace
