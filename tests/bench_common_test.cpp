// Tests for the benchmark harness helpers (bench/bench_common): the
// task-setup factory, repeat runner and repeat summarizer — these decide
// what the recorded EXPERIMENTS numbers mean, so they are tested like
// library code.
#include <gtest/gtest.h>

#include "bench_common.hpp"

namespace {

using middlefl::bench::BenchOptions;
using middlefl::bench::make_simulation;
using middlefl::bench::make_task_setup;
using middlefl::bench::run_repeats;
using middlefl::bench::summarize_repeats;
using middlefl::core::EvalPoint;
using middlefl::core::RunHistory;

RunHistory history_of(std::string algorithm,
                      std::initializer_list<double> accuracies) {
  RunHistory history;
  history.algorithm = std::move(algorithm);
  std::size_t step = 0;
  for (double a : accuracies) {
    EvalPoint point;
    point.step = step;
    point.accuracy = a;
    history.points.push_back(point);
    step += 10;
  }
  return history;
}

TEST(TaskSetup, FastScaleMatchesDocumentedDefaults) {
  BenchOptions options;
  const auto setup =
      make_task_setup(middlefl::data::TaskKind::kMnist, options);
  EXPECT_EQ(setup.num_edges, 10u);
  EXPECT_EQ(setup.partition.num_devices(), 30u);
  EXPECT_EQ(setup.sim_cfg.select_per_edge, 3u);
  EXPECT_EQ(setup.sim_cfg.local_steps, 10u);
  EXPECT_EQ(setup.sim_cfg.cloud_interval, 10u);
  EXPECT_GT(setup.target_accuracy, 0.0);
  EXPECT_EQ(setup.train->num_classes(), 10u);
  // Every device got data; edge homes in range.
  for (const auto& indices : setup.partition.device_indices) {
    EXPECT_FALSE(indices.empty());
  }
  for (std::size_t e : setup.initial_edges) EXPECT_LT(e, 10u);
}

TEST(TaskSetup, PaperScaleUsesPaperParameters) {
  BenchOptions options;
  options.paper = true;
  options.steps_scale = 0.001;  // keep the config cheap to build
  const auto setup =
      make_task_setup(middlefl::data::TaskKind::kEmnist, options);
  EXPECT_EQ(setup.num_edges, 10u);
  EXPECT_EQ(setup.partition.num_devices(), 100u);
  EXPECT_EQ(setup.sim_cfg.select_per_edge, 5u);  // K = 5 (§6.1.2)
  EXPECT_EQ(setup.sim_cfg.local_steps, 10u);     // I = 10
  EXPECT_EQ(setup.model_spec.arch, middlefl::nn::ModelArch::kCnn2);
  EXPECT_EQ(setup.model_spec.num_classes, 26u);  // EMNIST Letters
}

TEST(TaskSetup, SpeechUsesAdam) {
  BenchOptions options;
  const auto setup =
      make_task_setup(middlefl::data::TaskKind::kSpeech, options);
  EXPECT_EQ(setup.optimizer->name(), "Adam");
  const auto mnist = make_task_setup(middlefl::data::TaskKind::kMnist,
                                     options);
  EXPECT_EQ(mnist.optimizer->name(), "SGD");
}

TEST(TaskSetup, StepsScaleShrinksBudget) {
  BenchOptions options;
  options.steps_scale = 0.1;
  const auto small =
      make_task_setup(middlefl::data::TaskKind::kMnist, options);
  options.steps_scale = 1.0;
  const auto full = make_task_setup(middlefl::data::TaskKind::kMnist,
                                    options);
  EXPECT_LT(small.sim_cfg.total_steps, full.sim_cfg.total_steps);
  EXPECT_GE(small.sim_cfg.total_steps, 10u);  // floor
}

TEST(RunRepeats, DistinctSeedsDistinctRuns) {
  BenchOptions options;
  options.repeats = 2;
  options.steps_scale = 0.05;  // 20 steps: fast
  const auto setup =
      make_task_setup(middlefl::data::TaskKind::kMnist, options);
  const auto runs =
      run_repeats(setup, middlefl::core::Algorithm::kMiddle, options);
  ASSERT_EQ(runs.size(), 2u);
  // Different mobility/simulation seeds: trajectories should differ
  // somewhere (identical would indicate the repeat seed is ignored).
  bool any_diff = false;
  for (std::size_t i = 0; i < runs[0].points.size(); ++i) {
    any_diff =
        any_diff || runs[0].points[i].accuracy != runs[1].points[i].accuracy;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RunRepeats, SameRepeatIndexIsDeterministic) {
  BenchOptions options;
  options.repeats = 1;
  options.steps_scale = 0.05;
  const auto setup =
      make_task_setup(middlefl::data::TaskKind::kMnist, options);
  auto sim1 = make_simulation(setup, middlefl::core::Algorithm::kOort,
                              options, /*repeat=*/3);
  auto sim2 = make_simulation(setup, middlefl::core::Algorithm::kOort,
                              options, /*repeat=*/3);
  const auto h1 = sim1->run();
  const auto h2 = sim2->run();
  for (std::size_t i = 0; i < h1.points.size(); ++i) {
    EXPECT_EQ(h1.points[i].accuracy, h2.points[i].accuracy);
  }
}

TEST(SummarizeRepeats, MeanStdAndMedianTta) {
  const std::vector<RunHistory> runs{
      history_of("A", {0.1, 0.5, 0.7}),   // tta(0.5) = 10
      history_of("A", {0.1, 0.2, 0.5}),   // tta(0.5) = 20
      history_of("A", {0.1, 0.6, 0.9}),   // tta(0.5) = 10
  };
  const auto summary = summarize_repeats(runs, 0.5);
  EXPECT_NEAR(summary.mean_final, (0.7 + 0.5 + 0.9) / 3.0, 1e-12);
  EXPECT_GT(summary.std_final, 0.0);
  EXPECT_NEAR(summary.mean_best, (0.7 + 0.5 + 0.9) / 3.0, 1e-12);
  ASSERT_TRUE(summary.median_tta.has_value());
  EXPECT_EQ(*summary.median_tta, 10u);
}

TEST(SummarizeRepeats, MedianTtaRequiresMajorityQuorum) {
  // Only 1 of 3 runs reaches the target: no median reported.
  const std::vector<RunHistory> runs{
      history_of("A", {0.1, 0.9}),
      history_of("A", {0.1, 0.2}),
      history_of("A", {0.1, 0.3}),
  };
  const auto summary = summarize_repeats(runs, 0.5);
  EXPECT_FALSE(summary.median_tta.has_value());
  // 2 of 3: reported.
  const std::vector<RunHistory> runs2{
      history_of("A", {0.1, 0.9}),
      history_of("A", {0.1, 0.6}),
      history_of("A", {0.1, 0.3}),
  };
  EXPECT_TRUE(summarize_repeats(runs2, 0.5).median_tta.has_value());
}

}  // namespace
