// The declarative-scenario contract: strict JSON parsing with source
// locations, schema round trips (write -> read -> write is a fixpoint),
// unknown-key rejection, legacy-alias normalization, the reflection-driven
// per-leaf perturbation property, and config-built vs hand-built
// simulation equivalence.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>

#include "config/json.hpp"
#include "config/reflect.hpp"
#include "config/scenario.hpp"
#include "config/scenario_build.hpp"
#include "core/simulation.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "mobility/markov_mobility.hpp"
#include "optim/sgd.hpp"
#include "parallel/rng.hpp"

namespace {

using namespace middlefl;
using config::Json;

// ---------------------------------------------------------------------------
// JSON value/parser

TEST(JsonParser, ParsesScalarsAndStructure) {
  const Json doc = config::parse_json(
      R"({"a": 1, "b": -2.5, "c": "s", "d": [true, false, null], "e": {}})",
      "buf");
  ASSERT_TRUE(doc.is_object());
  EXPECT_TRUE(doc.find("a")->is_unsigned());
  EXPECT_EQ(doc.find("a")->as_uint(), 1u);
  EXPECT_FALSE(doc.find("b")->is_unsigned());
  EXPECT_DOUBLE_EQ(doc.find("b")->as_number(), -2.5);
  EXPECT_EQ(doc.find("c")->as_string(), "s");
  ASSERT_TRUE(doc.find("d")->is_array());
  EXPECT_EQ(doc.find("d")->items().size(), 3u);
  EXPECT_TRUE(doc.find("e")->is_object());
}

TEST(JsonParser, ErrorsCarrySourceLineAndColumn) {
  try {
    config::parse_json("{\n  \"a\": 1,\n  \"b\": nul\n}", "spec.json");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("spec.json:3:"), std::string::npos)
        << e.what();
  }
}

TEST(JsonParser, RejectsDuplicateKeys) {
  EXPECT_THROW(config::parse_json(R"({"a": 1, "a": 2})", "buf"),
               std::runtime_error);
}

TEST(JsonParser, RejectsTrailingContent) {
  EXPECT_THROW(config::parse_json("{} {}", "buf"), std::runtime_error);
}

TEST(JsonParser, PreservesUint64BeyondDoubleRange) {
  const std::uint64_t big = (1ull << 53) + 1;  // not representable as double
  const Json doc =
      config::parse_json("{\"seed\": " + std::to_string(big) + "}", "buf");
  ASSERT_TRUE(doc.find("seed")->is_unsigned());
  EXPECT_EQ(doc.find("seed")->as_uint(), big);
  EXPECT_NE(doc.dump(0).find(std::to_string(big)), std::string::npos);
}

TEST(JsonParser, DumpParseDumpIsFixpoint) {
  const Json doc = config::parse_json(
      R"({"w": 0.1, "x": [1, 2.75, "s"], "y": {"z": true}, "n": null})",
      "buf");
  const std::string once = doc.dump();
  const std::string twice = config::parse_json(once, "buf").dump();
  EXPECT_EQ(once, twice);
}

TEST(JsonSetByPath, ReplacesNestedLeavesAndCreatesMissingOnes) {
  Json doc = config::parse_json(R"({"sim": {"seed": 1}})", "buf");
  config::set_by_path(doc, "sim.seed", Json::make_uint(7));
  config::set_by_path(doc, "sim.transport.wan_up.loss_prob",
                      Json::make_number(0.25));
  EXPECT_EQ(doc.find("sim")->find("seed")->as_uint(), 7u);
  EXPECT_DOUBLE_EQ(doc.find("sim")
                       ->find("transport")
                       ->find("wan_up")
                       ->find("loss_prob")
                       ->as_number(),
                   0.25);
  EXPECT_THROW(config::set_by_path(doc, "sim.seed.deeper", Json::make_null()),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// ScenarioSpec schema

TEST(ScenarioSchema, LeafCountsArePinned) {
  // Adding a member to SimulationConfig (or any spec struct) without a
  // describe() entry fails here: bump the constant only together with the
  // schema entry, the perturbation property below then covers the new leaf.
  EXPECT_EQ(config::count_fields<core::SimulationConfig>(),
            config::kSimulationConfigLeaves);
  EXPECT_EQ(config::count_fields<config::ScenarioSpec>(),
            config::kScenarioSpecLeaves);
}

TEST(ScenarioSchema, DefaultSpecRoundTripsAsFixpoint) {
  const config::ScenarioSpec spec;
  const std::string once = config::scenario_to_text(spec);
  const config::ScenarioSpec reparsed =
      config::parse_scenario(once, "default");
  EXPECT_EQ(config::scenario_to_text(reparsed), once);
}

TEST(ScenarioSchema, EveryLeafPerturbationRoundTrips) {
  const std::string baseline =
      config::scenario_to_text(config::ScenarioSpec{});
  for (std::size_t leaf = 0; leaf < config::kScenarioSpecLeaves; ++leaf) {
    config::ScenarioSpec spec;
    const std::string name = config::perturb_field(spec, leaf);
    ASSERT_FALSE(name.empty()) << "leaf " << leaf << " not reachable";
    const std::string once = config::scenario_to_text(spec);
    EXPECT_NE(once, baseline)
        << "leaf " << leaf << " ('" << name << "') is invisible in the "
        << "serialized form";
    config::ScenarioSpec reparsed;
    ASSERT_NO_THROW(reparsed = config::parse_scenario(once, name))
        << "leaf " << leaf << " ('" << name << "')";
    EXPECT_EQ(config::scenario_to_text(reparsed), once)
        << "leaf " << leaf << " ('" << name << "') does not round-trip";
  }
  // One past the last leaf: nothing to mutate.
  config::ScenarioSpec spec;
  EXPECT_TRUE(
      config::perturb_field(spec, config::kScenarioSpecLeaves).empty());
}

TEST(ScenarioSchema, RejectsUnknownKeysWithLocation) {
  try {
    config::parse_scenario("{\n  \"edges\": 4,\n  \"edgez\": 5\n}",
                           "spec.json");
    FAIL() << "expected unknown-key error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("spec.json:3:"), std::string::npos) << what;
    EXPECT_NE(what.find("unknown key 'edgez'"), std::string::npos) << what;
  }
}

TEST(ScenarioSchema, RejectsUnknownNestedKeysWithLocation) {
  try {
    config::parse_scenario(
        "{\n  \"mobility\": {\n    \"switch_probability\": 0.5\n  }\n}",
        "spec.json");
    FAIL() << "expected unknown-key error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("spec.json:3:"), std::string::npos) << what;
    EXPECT_NE(what.find("'switch_probability'"), std::string::npos) << what;
  }
}

TEST(ScenarioSchema, RejectsTypeMismatch) {
  EXPECT_THROW(config::parse_scenario(R"({"edges": "ten"})", "buf"),
               std::runtime_error);
  EXPECT_THROW(config::parse_scenario(R"({"edges": -4})", "buf"),
               std::runtime_error);
}

TEST(ScenarioSchema, RejectsIllegalChoiceListingOptions) {
  try {
    config::parse_scenario(R"({"algorithm": "fedfoo"})", "buf");
    FAIL() << "expected choice error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("middle"), std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// Legacy uplink aliases

TEST(ScenarioAliases, UploadFailureProbNormalizesIntoTransport) {
  const auto spec = config::parse_scenario(
      R"({"sim": {"upload_failure_prob": 0.2}})", "buf");
  EXPECT_DOUBLE_EQ(spec.sim.transport.wireless_up.loss_prob, 0.2);
  EXPECT_DOUBLE_EQ(spec.sim.upload_failure_prob, 0.2);
  // The canonical form speaks only the transport view.
  EXPECT_EQ(config::scenario_to_text(spec).find("upload_failure_prob"),
            std::string::npos);
}

TEST(ScenarioAliases, AgreeingViewsAreAccepted) {
  const auto spec = config::parse_scenario(
      R"({"sim": {"upload_failure_prob": 0.2,
                  "transport": {"wireless_up": {"loss_prob": 0.2}}}})",
      "buf");
  EXPECT_DOUBLE_EQ(spec.sim.transport.wireless_up.loss_prob, 0.2);
}

TEST(ScenarioAliases, ConflictingViewsAreAHardError) {
  EXPECT_THROW(config::parse_scenario(
                   R"({"sim": {"upload_failure_prob": 0.2,
                               "transport": {"wireless_up":
                                             {"loss_prob": 0.1}}}})",
                   "buf"),
               std::runtime_error);
}

TEST(ScenarioAliases, ReconcileIsIdempotent) {
  core::SimulationConfig cfg;
  cfg.upload_failure_prob = 0.3;
  core::reconcile_uplink_aliases(cfg);
  core::reconcile_uplink_aliases(cfg);
  EXPECT_DOUBLE_EQ(cfg.transport.wireless_up.loss_prob, 0.3);
  EXPECT_DOUBLE_EQ(cfg.upload_failure_prob, 0.3);
}

// ---------------------------------------------------------------------------
// Algorithm registry

TEST(AlgorithmRegistry, CoversEveryEnumValue) {
  const auto& names = core::algorithm_names();
  ASSERT_EQ(names.size(), 6u);
  for (std::size_t i = 0; i < names.size(); ++i) {
    // Registry keys are listed in enum order and round-trip through the
    // parser; every entry builds a complete policy.
    EXPECT_EQ(core::parse_algorithm(names[i]),
              static_cast<core::Algorithm>(i));
    const core::AlgorithmSpec spec = core::make_algorithm(names[i]);
    EXPECT_NE(spec.selection, nullptr) << names[i];
  }
  EXPECT_THROW(core::make_algorithm("fedfoo"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Builder equivalence: config-built == hand-built, bit for bit

TEST(ScenarioBuilder, MatchesHandConstructedSimulationBitwise) {
  config::ScenarioSpec spec;
  spec.sim.total_steps = 20;
  spec.sim.eval_every = 10;
  spec.sim.eval_samples = 100;
  spec.data.devices = 12;
  spec.edges = 3;

  const auto built = config::build_scenario(spec);
  auto config_sim = config::make_simulation(built);
  const auto config_history =
      config_sim->run([](const core::EvalPoint&) {});

  // The same construction sequence, written out by hand the way the flag
  // front ends always did it.
  auto dcfg = data::task_config(data::TaskKind::kMnist, 0.5);
  dcfg.seed = parallel::hash_combine(dcfg.seed, spec.sim.seed);
  const data::SyntheticGenerator generator(dcfg);
  const data::Dataset train = generator.generate(60, 1);
  const data::Dataset test = generator.generate(30, 2);
  const auto partition =
      data::partition_major_class(train, 12, 80, 0.9, spec.sim.seed + 11);
  auto homes =
      data::assign_edges_by_major_class(partition, 3, dcfg.num_classes);
  auto mobility_model = std::make_unique<mobility::MarkovMobility>(
      homes, 3, 0.5, spec.sim.seed + 101);
  mobility_model->set_topology(mobility::MoveTopology::kHomeRing, 0.5);
  nn::ModelSpec model = spec.model;
  model.input_shape =
      tensor::Shape{dcfg.channels, dcfg.height, dcfg.width};
  model.num_classes = dcfg.num_classes;
  optim::Sgd optimizer(
      optim::SgdConfig{.learning_rate = 0.005, .momentum = 0.9});
  core::Simulation manual_sim(spec.sim, model, optimizer, train, partition,
                              test, std::move(mobility_model),
                              core::make_algorithm(core::Algorithm::kMiddle));
  const auto manual_history =
      manual_sim.run([](const core::EvalPoint&) {});

  ASSERT_EQ(config_history.points.size(), manual_history.points.size());
  for (std::size_t i = 0; i < config_history.points.size(); ++i) {
    EXPECT_EQ(config_history.points[i].step, manual_history.points[i].step);
    EXPECT_EQ(config_history.points[i].accuracy,
              manual_history.points[i].accuracy);
    EXPECT_EQ(config_history.points[i].loss, manual_history.points[i].loss);
  }
}

// ---------------------------------------------------------------------------
// Topology names (shared parser used by CLI and schema)

TEST(TopologyNames, RoundTripAndLegacyAliases) {
  EXPECT_EQ(mobility::parse_topology("home-ring"),
            mobility::MoveTopology::kHomeRing);
  EXPECT_EQ(mobility::parse_topology("home_ring"),
            mobility::MoveTopology::kHomeRing);
  EXPECT_EQ(mobility::to_string(mobility::MoveTopology::kRing), "ring");
  EXPECT_THROW(mobility::parse_topology("torus"), std::invalid_argument);
}

}  // namespace
