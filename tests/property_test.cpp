// Parameterized property sweeps over the core invariants:
//   - weighted_average stays in the convex hull and is weight-scale
//     invariant for random inputs;
//   - the Eq. 9 blend never weights the local model above 1/2, for any
//     random model pair;
//   - every selection strategy obeys the K / membership / determinism
//     contract across K values;
//   - Markov mobility matches its nominal P across (P, topology);
//   - the full simulation keeps its structural invariants for EVERY
//     algorithm (partition of devices, finite losses, aligned models after
//     sync).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/aggregation.hpp"
#include "core/similarity.hpp"
#include "sim_fixture.hpp"

namespace {

using middlefl::core::Algorithm;
using middlefl::parallel::Xoshiro256;
using middlefl::testing::SimBundle;

// --- weighted_average properties ---

class WeightedAverageProperty : public ::testing::TestWithParam<int> {};

TEST_P(WeightedAverageProperty, ConvexHullAndScaleInvariance) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t models = 2 + rng.bounded(8);
  const std::size_t dim = 1 + rng.bounded(64);
  std::vector<std::vector<float>> storage(models);
  std::vector<middlefl::core::WeightedModel> weighted;
  std::vector<middlefl::core::WeightedModel> scaled;
  for (auto& params : storage) {
    params.resize(dim);
    for (auto& p : params) p = static_cast<float>(rng.normal());
  }
  for (std::size_t i = 0; i < models; ++i) {
    const double w = 0.1 + rng.uniform() * 5.0;
    weighted.push_back({storage[i], w});
    scaled.push_back({storage[i], w * 17.0});
  }
  const auto avg = middlefl::core::weighted_average(weighted);
  const auto avg_scaled = middlefl::core::weighted_average(scaled);
  for (std::size_t d = 0; d < dim; ++d) {
    float lo = storage[0][d], hi = storage[0][d];
    for (const auto& params : storage) {
      lo = std::min(lo, params[d]);
      hi = std::max(hi, params[d]);
    }
    EXPECT_GE(avg[d], lo - 1e-4f);
    EXPECT_LE(avg[d], hi + 1e-4f);
    EXPECT_NEAR(avg[d], avg_scaled[d], 1e-5f);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, WeightedAverageProperty,
                         ::testing::Range(1, 13));

// --- Eq. 9 blend properties ---

class BlendProperty : public ::testing::TestWithParam<int> {};

TEST_P(BlendProperty, LocalWeightNeverExceedsHalf) {
  Xoshiro256 rng(100 + static_cast<std::uint64_t>(GetParam()));
  const std::size_t dim = 2 + rng.bounded(128);
  std::vector<float> edge(dim), local(dim), out(dim);
  for (auto& v : edge) v = static_cast<float>(rng.normal());
  for (auto& v : local) v = static_cast<float>(rng.normal());
  const double weight = middlefl::core::on_device_aggregate(edge, local, out);
  EXPECT_GE(weight, 0.0);
  EXPECT_LE(weight, 0.5 + 1e-12);
  // Blend must lie on the segment between the two models.
  for (std::size_t d = 0; d < dim; ++d) {
    const float lo = std::min(edge[d], local[d]);
    const float hi = std::max(edge[d], local[d]);
    EXPECT_GE(out[d], lo - 1e-4f);
    EXPECT_LE(out[d], hi + 1e-4f);
  }
}

TEST_P(BlendProperty, MatchesManualFormula) {
  Xoshiro256 rng(200 + static_cast<std::uint64_t>(GetParam()));
  const std::size_t dim = 2 + rng.bounded(32);
  std::vector<float> edge(dim), local(dim), out(dim);
  for (auto& v : edge) v = static_cast<float>(rng.normal());
  for (auto& v : local) v = static_cast<float>(rng.normal());
  middlefl::core::on_device_aggregate(edge, local, out);
  const double u = middlefl::core::similarity_utility(local, edge);
  for (std::size_t d = 0; d < dim; ++d) {
    const double expected =
        edge[d] / (1.0 + u) + local[d] * u / (1.0 + u);
    EXPECT_NEAR(out[d], expected, 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, BlendProperty,
                         ::testing::Range(1, 13));

// --- selection contract across strategies and K ---

struct SelectionCase {
  int strategy;  // 0 random, 1 stat, 2 similarity
  std::size_t k;
};

class SelectionContract : public ::testing::TestWithParam<SelectionCase> {};

TEST_P(SelectionContract, KBoundMembershipDeterminism) {
  const auto& param = GetParam();
  std::unique_ptr<middlefl::core::SelectionStrategy> strategy;
  switch (param.strategy) {
    case 0: strategy = std::make_unique<middlefl::core::RandomSelection>(); break;
    case 1:
      strategy = std::make_unique<middlefl::core::StatUtilitySelection>();
      break;
    default:
      strategy = std::make_unique<middlefl::core::SimilaritySelection>();
  }
  Xoshiro256 data_rng(7);
  std::vector<std::vector<float>> storage;
  std::vector<middlefl::core::Candidate> candidates;
  const std::vector<float> cloud{1.0f, -0.5f, 2.0f};
  for (std::size_t i = 0; i < 9; ++i) {
    storage.push_back({static_cast<float>(data_rng.normal()),
                       static_cast<float>(data_rng.normal()),
                       static_cast<float>(data_rng.normal())});
    candidates.push_back(middlefl::core::Candidate{
        .device_id = 100 + i,
        .data_size = 10.0,
        .stat_utility = i % 3 == 0 ? std::nullopt
                                   : std::optional<double>(data_rng.uniform()),
        .local_params = storage.back(),
    });
  }
  Xoshiro256 rng1(param.k * 31 + param.strategy);
  Xoshiro256 rng2(param.k * 31 + param.strategy);
  const auto s1 = strategy->select(candidates, cloud, param.k, rng1);
  const auto s2 = strategy->select(candidates, cloud, param.k, rng2);
  EXPECT_EQ(s1, s2);  // deterministic given the stream
  EXPECT_EQ(s1.size(), std::min<std::size_t>(param.k, candidates.size()));
  const std::set<std::size_t> unique(s1.begin(), s1.end());
  EXPECT_EQ(unique.size(), s1.size());  // no duplicates
  for (std::size_t id : s1) {
    EXPECT_GE(id, 100u);
    EXPECT_LT(id, 109u);  // only candidate ids
  }
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesAndK, SelectionContract,
    ::testing::Values(SelectionCase{0, 1}, SelectionCase{0, 5},
                      SelectionCase{0, 20}, SelectionCase{1, 1},
                      SelectionCase{1, 5}, SelectionCase{1, 20},
                      SelectionCase{2, 1}, SelectionCase{2, 5},
                      SelectionCase{2, 20}));

// --- mobility P across topologies ---

struct MobilityCase {
  double p;
  middlefl::mobility::MoveTopology topology;
};

class MobilityP : public ::testing::TestWithParam<MobilityCase> {};

TEST_P(MobilityP, EmpiricalMatchesNominal) {
  const auto& param = GetParam();
  std::vector<std::size_t> initial(120);
  for (std::size_t m = 0; m < initial.size(); ++m) initial[m] = m % 8;
  middlefl::mobility::MarkovMobility model(initial, 8, param.p, 91);
  model.set_topology(param.topology, 0.5);
  EXPECT_NEAR(middlefl::mobility::measure_mobility(model, 400), param.p,
              0.035);
}

INSTANTIATE_TEST_SUITE_P(
    PAndTopology, MobilityP,
    ::testing::Values(
        MobilityCase{0.1, middlefl::mobility::MoveTopology::kUniform},
        MobilityCase{0.3, middlefl::mobility::MoveTopology::kUniform},
        MobilityCase{0.5, middlefl::mobility::MoveTopology::kUniform},
        MobilityCase{0.1, middlefl::mobility::MoveTopology::kRing},
        MobilityCase{0.5, middlefl::mobility::MoveTopology::kRing},
        MobilityCase{0.1, middlefl::mobility::MoveTopology::kHomeRing},
        MobilityCase{0.3, middlefl::mobility::MoveTopology::kHomeRing},
        MobilityCase{0.5, middlefl::mobility::MoveTopology::kHomeRing}));

// --- simulation invariants for every algorithm ---

class SimulationInvariants : public ::testing::TestWithParam<Algorithm> {};

TEST_P(SimulationInvariants, StructurePreservedThroughoutTraining) {
  SimBundle bundle;
  bundle.cfg.total_steps = 12;
  bundle.cfg.cloud_interval = 4;
  bundle.cfg.eval_every = 4;
  auto sim = bundle.make(GetParam());
  const std::size_t param_count = sim->cloud_params().size();

  for (std::size_t t = 0; t < 12; ++t) {
    const bool synced = sim->step();

    // Devices always partition onto valid edges.
    for (std::size_t e : sim->assignment()) {
      EXPECT_LT(e, sim->num_edges());
    }
    // Selection never exceeds K and only picks connected devices.
    for (std::size_t n = 0; n < sim->num_edges(); ++n) {
      EXPECT_LE(sim->last_selection()[n].size(),
                sim->config().select_per_edge);
      for (std::size_t m : sim->last_selection()[n]) {
        EXPECT_EQ(sim->assignment()[m], n);
      }
    }
    // All parameters stay finite.
    for (float p : sim->cloud_params()) ASSERT_TRUE(std::isfinite(p));
    for (std::size_t n = 0; n < sim->num_edges(); ++n) {
      EXPECT_EQ(sim->edge_params(n).size(), param_count);
    }
    // After a sync, edges and devices hold the cloud model exactly.
    if (synced) {
      const auto cloud = sim->cloud_params();
      for (std::size_t n = 0; n < sim->num_edges(); ++n) {
        const auto edge = sim->edge_params(n);
        for (std::size_t i = 0; i < cloud.size(); ++i) {
          ASSERT_EQ(edge[i], cloud[i]);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, SimulationInvariants,
    ::testing::Values(Algorithm::kMiddle, Algorithm::kOort,
                      Algorithm::kFedMes, Algorithm::kGreedy,
                      Algorithm::kEnsemble, Algorithm::kHierFavg),
    [](const ::testing::TestParamInfo<Algorithm>& info) {
      return middlefl::core::to_string(info.param);
    });

// --- Dirichlet pruning ---

TEST(PartitionPrune, RemovesOnlyEmptyDevices) {
  middlefl::data::Partition partition;
  partition.device_indices = {{1, 2}, {}, {3}, {}, {4, 5, 6}};
  partition.major_class = {0, -1, 1, -1, 2};
  EXPECT_EQ(partition.prune_empty(), 2u);
  ASSERT_EQ(partition.num_devices(), 3u);
  EXPECT_EQ(partition.device_indices[0], (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(partition.device_indices[1], (std::vector<std::size_t>{3}));
  EXPECT_EQ(partition.major_class[2], 2);
  EXPECT_EQ(partition.prune_empty(), 0u);  // idempotent
}

}  // namespace
