#include <gtest/gtest.h>

#include <vector>

#include "parallel/rng.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/blas.hpp"

namespace {

using middlefl::parallel::Xoshiro256;
using middlefl::tensor::Trans;

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

/// Reference O(n^3) GEMM with explicit index math for all transpose
/// combinations.
std::vector<float> reference_gemm(Trans ta, Trans tb, std::size_t m,
                                  std::size_t n, std::size_t k, float alpha,
                                  const std::vector<float>& a,
                                  const std::vector<float>& b, float beta,
                                  std::vector<float> c) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        const float av = ta == Trans::kNo ? a[i * k + p] : a[p * m + i];
        const float bv = tb == Trans::kNo ? b[p * n + j] : b[j * k + p];
        acc += static_cast<double>(av) * bv;
      }
      c[i * n + j] = alpha * static_cast<float>(acc) + beta * c[i * n + j];
    }
  }
  return c;
}

TEST(Blas, AxpyAndScal) {
  std::vector<float> x{1, 2, 3};
  std::vector<float> y{10, 20, 30};
  middlefl::tensor::axpy(2.0f, x, y);
  EXPECT_FLOAT_EQ(y[0], 12.0f);
  EXPECT_FLOAT_EQ(y[2], 36.0f);
  middlefl::tensor::scal(0.5f, y);
  EXPECT_FLOAT_EQ(y[0], 6.0f);
}

TEST(Blas, AxpySizeMismatchThrows) {
  std::vector<float> x{1, 2};
  std::vector<float> y{1, 2, 3};
  EXPECT_THROW(middlefl::tensor::axpy(1.0f, x, y), std::invalid_argument);
}

TEST(Blas, DotAndNorm) {
  std::vector<float> x{1, 2, 3};
  std::vector<float> y{4, -5, 6};
  EXPECT_DOUBLE_EQ(middlefl::tensor::dot(x, y), 4 - 10 + 18);
  EXPECT_NEAR(middlefl::tensor::nrm2(x), std::sqrt(14.0), 1e-9);
}

struct GemmCase {
  Trans ta, tb;
  std::size_t m, n, k;
  float alpha, beta;
};

class GemmTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmTest, MatchesReference) {
  const auto& p = GetParam();
  const auto a = random_vec(p.m * p.k, 1);
  const auto b = random_vec(p.k * p.n, 2);
  auto c = random_vec(p.m * p.n, 3);
  auto expected = reference_gemm(p.ta, p.tb, p.m, p.n, p.k, p.alpha, a, b,
                                 p.beta, c);
  middlefl::tensor::gemm(p.ta, p.tb, p.m, p.n, p.k, p.alpha, a, b, p.beta, c);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], expected[i], 1e-3f) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTransposesAndShapes, GemmTest,
    ::testing::Values(
        GemmCase{Trans::kNo, Trans::kNo, 4, 5, 6, 1.0f, 0.0f},
        GemmCase{Trans::kNo, Trans::kYes, 4, 5, 6, 1.0f, 0.0f},
        GemmCase{Trans::kYes, Trans::kNo, 4, 5, 6, 1.0f, 0.0f},
        GemmCase{Trans::kYes, Trans::kYes, 4, 5, 6, 1.0f, 0.0f},
        GemmCase{Trans::kNo, Trans::kNo, 1, 1, 1, 1.0f, 0.0f},
        GemmCase{Trans::kNo, Trans::kNo, 7, 3, 9, 2.0f, 0.5f},
        GemmCase{Trans::kNo, Trans::kYes, 3, 7, 2, -1.0f, 1.0f},
        GemmCase{Trans::kYes, Trans::kNo, 5, 5, 5, 0.5f, 2.0f},
        GemmCase{Trans::kNo, Trans::kNo, 16, 16, 16, 1.0f, 1.0f},
        GemmCase{Trans::kNo, Trans::kNo, 33, 17, 29, 1.0f, 0.0f}));

TEST(Blas, GemmParallelMatchesSerial) {
  const std::size_t m = 64, n = 64, k = 64;
  const auto a = random_vec(m * k, 11);
  const auto b = random_vec(k * n, 12);
  std::vector<float> serial(m * n, 0.0f);
  std::vector<float> parallel_out(m * n, 0.0f);
  middlefl::tensor::gemm(Trans::kNo, Trans::kNo, m, n, k, 1.0f, a, b, 0.0f,
                         serial);
  middlefl::parallel::ThreadPool pool(4);
  middlefl::tensor::gemm(Trans::kNo, Trans::kNo, m, n, k, 1.0f, a, b, 0.0f,
                         parallel_out, &pool);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel_out[i]) << "at " << i;
  }
}

TEST(Blas, GemmSizeChecks) {
  std::vector<float> a(6), b(6), c(4);
  EXPECT_NO_THROW(
      middlefl::tensor::gemm(Trans::kNo, Trans::kNo, 2, 2, 3, 1, a, b, 0, c));
  EXPECT_THROW(
      middlefl::tensor::gemm(Trans::kNo, Trans::kNo, 2, 2, 4, 1, a, b, 0, c),
      std::invalid_argument);
}

TEST(Blas, GemvNoTrans) {
  // A = [[1,2],[3,4],[5,6]] (3x2), x = [1, -1]
  std::vector<float> a{1, 2, 3, 4, 5, 6};
  std::vector<float> x{1, -1};
  std::vector<float> y{100, 100, 100};
  middlefl::tensor::gemv(Trans::kNo, 3, 2, 1.0f, a, x, 0.0f, y);
  EXPECT_FLOAT_EQ(y[0], -1.0f);
  EXPECT_FLOAT_EQ(y[1], -1.0f);
  EXPECT_FLOAT_EQ(y[2], -1.0f);
}

TEST(Blas, GemvTransposed) {
  std::vector<float> a{1, 2, 3, 4, 5, 6};  // 3x2
  std::vector<float> x{1, 1, 1};
  std::vector<float> y{0, 0};
  middlefl::tensor::gemv(Trans::kYes, 3, 2, 1.0f, a, x, 0.0f, y);
  EXPECT_FLOAT_EQ(y[0], 9.0f);   // 1+3+5
  EXPECT_FLOAT_EQ(y[1], 12.0f);  // 2+4+6
}

TEST(Blas, GemvBetaAccumulates) {
  std::vector<float> a{1, 0, 0, 1};  // identity 2x2
  std::vector<float> x{3, 4};
  std::vector<float> y{1, 1};
  middlefl::tensor::gemv(Trans::kNo, 2, 2, 2.0f, a, x, 1.0f, y);
  EXPECT_FLOAT_EQ(y[0], 7.0f);
  EXPECT_FLOAT_EQ(y[1], 9.0f);
}

}  // namespace
