// sched::TaskGraph semantics: execution completeness, dependency ordering,
// the serial fallback, failure propagation and graph reuse — on pools of
// several sizes, since the simulator runs the same graph at any worker
// count and expects identical behavior.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "sched/task_graph.hpp"

namespace {

using middlefl::parallel::ThreadPool;
using middlefl::sched::TaskGraph;

TEST(TaskGraph, RunsEveryTaskOnce) {
  for (const std::size_t threads : {0u, 1u, 4u}) {
    TaskGraph graph;
    std::vector<std::atomic<int>> runs(16);
    for (auto& r : runs) r = 0;
    for (std::size_t i = 0; i < runs.size(); ++i) {
      graph.add("t" + std::to_string(i), [&runs, i] { ++runs[i]; });
    }
    ThreadPool pool(threads == 0 ? 1 : threads);
    graph.run(threads == 0 ? nullptr : &pool);
    for (std::size_t i = 0; i < runs.size(); ++i) {
      EXPECT_EQ(runs[i].load(), 1) << "task " << i << ", " << threads
                                   << " threads";
    }
  }
}

TEST(TaskGraph, DependenciesRunFirst) {
  // A diamond per lane: root -> {left, right} -> join. The join must
  // observe both sides done, at every pool size.
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    TaskGraph graph;
    std::atomic<int> root_done{0}, sides_done{0};
    bool join_saw_all = false;
    const auto root = graph.add("root", [&] { ++root_done; });
    const TaskGraph::TaskId root_deps[] = {root};
    const auto left = graph.add(
        "left",
        [&] {
          EXPECT_EQ(root_done.load(), 1);
          ++sides_done;
        },
        root_deps);
    const auto right = graph.add(
        "right",
        [&] {
          EXPECT_EQ(root_done.load(), 1);
          ++sides_done;
        },
        root_deps);
    const TaskGraph::TaskId join_deps[] = {left, right};
    graph.add("join", [&] { join_saw_all = sides_done.load() == 2; },
              join_deps);
    graph.run(&pool);
    EXPECT_TRUE(join_saw_all) << threads << " threads";
  }
}

TEST(TaskGraph, SerialFallbackRunsInInsertionOrder) {
  // Null pool: tasks must execute in insertion order on the calling
  // thread (the order the barriered serial simulator used).
  TaskGraph graph;
  std::vector<int> order;
  for (int i = 0; i < 6; ++i) {
    graph.add("t" + std::to_string(i), [&order, i] { order.push_back(i); });
  }
  graph.run(nullptr);
  ASSERT_EQ(order.size(), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(order[i], i);
}

TEST(TaskGraph, RejectsForwardDependencies) {
  TaskGraph graph;
  const auto first = graph.add("first", [] {});
  const TaskGraph::TaskId bogus[] = {first + 5};
  EXPECT_THROW(graph.add("second", [] {}, bogus), std::invalid_argument);
  EXPECT_THROW(graph.add("self", [] {},
                         std::vector<TaskGraph::TaskId>{graph.size()}),
               std::invalid_argument);
  EXPECT_THROW(graph.add("null", nullptr), std::invalid_argument);
}

TEST(TaskGraph, FirstExceptionPropagatesAndDependentsAreSkipped) {
  for (const std::size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    TaskGraph graph;
    std::atomic<int> after_runs{0};
    const auto bad = graph.add("bad", [] {
      throw std::runtime_error("task failed");
    });
    const TaskGraph::TaskId deps[] = {bad};
    graph.add("dependent", [&] { ++after_runs; }, deps);
    EXPECT_THROW(graph.run(&pool), std::runtime_error);
    // The dependent still "finishes" (the graph quiesces) but fail-fast
    // skips its body.
    EXPECT_EQ(after_runs.load(), 0) << threads << " threads";
  }
}

TEST(TaskGraph, ClearAllowsReuse) {
  ThreadPool pool(2);
  TaskGraph graph;
  std::atomic<int> counter{0};
  graph.add("a", [&] { counter += 1; });
  graph.add("b", [&] { counter += 10; });
  graph.run(&pool);
  EXPECT_EQ(counter.load(), 11);
  EXPECT_EQ(graph.size(), 2u);

  graph.clear();
  EXPECT_EQ(graph.size(), 0u);
  graph.run(&pool);  // empty graph is a no-op
  graph.add("c", [&] { counter += 100; });
  graph.run(&pool);
  EXPECT_EQ(counter.load(), 111);
}

TEST(TaskGraph, LabelsAreRetained) {
  TaskGraph graph;
  const auto id = graph.add("edge-chain/3", [] {});
  EXPECT_EQ(graph.label(id), "edge-chain/3");
}

TEST(TaskGraph, ManyIndependentTasksOnSmallPool) {
  // More tasks than workers: the queue must drain completely with each
  // task running exactly once.
  ThreadPool pool(2);
  TaskGraph graph;
  std::atomic<int> total{0};
  for (int i = 0; i < 64; ++i) {
    graph.add("n" + std::to_string(i), [&] { ++total; });
  }
  graph.run(&pool);
  EXPECT_EQ(total.load(), 64);
}

}  // namespace
