#include <gtest/gtest.h>

#include <random>
#include <set>
#include <vector>

#include "parallel/rng.hpp"

namespace {

using middlefl::parallel::hash_combine;
using middlefl::parallel::splitmix64;
using middlefl::parallel::StreamRng;
using middlefl::parallel::Xoshiro256;

TEST(SplitMix64, DeterministicAndNonTrivial) {
  EXPECT_EQ(splitmix64(1), splitmix64(1));
  EXPECT_NE(splitmix64(1), splitmix64(2));
  EXPECT_NE(splitmix64(0), 0u);
}

TEST(HashCombine, OrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
  EXPECT_EQ(hash_combine(7, 9), hash_combine(7, 9));
}

TEST(Xoshiro, SameSeedSameStream) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256 a(123), b(124);
  int differences = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() != b()) ++differences;
  }
  EXPECT_GT(differences, 90);
}

TEST(Xoshiro, UniformInUnitInterval) {
  Xoshiro256 rng(5);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Xoshiro, BoundedIsUnbiased) {
  Xoshiro256 rng(6);
  constexpr std::uint64_t kBound = 7;
  std::vector<std::size_t> counts(kBound, 0);
  constexpr int kDraws = 70000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.bounded(kBound)];
  for (std::size_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kDraws / 7.0, 450.0);
  }
}

TEST(Xoshiro, NormalMomentsMatch) {
  Xoshiro256 rng(7);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kDraws, 1.0, 0.03);
}

TEST(Xoshiro, WorksWithStdShuffle) {
  // UniformRandomBitGenerator compliance.
  std::vector<int> v{1, 2, 3, 4, 5};
  Xoshiro256 rng(8);
  std::shuffle(v.begin(), v.end(), rng);
  std::set<int> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 5u);
}

TEST(StreamRng, StreamsAreReproducible) {
  StreamRng streams(42);
  auto a1 = streams.stream(3, 7);
  auto a2 = streams.stream(3, 7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a1(), a2());
}

TEST(StreamRng, StreamsAreDecorrelated) {
  StreamRng streams(42);
  auto a = streams.stream(3, 7);
  auto b = streams.stream(3, 8);
  auto c = streams.stream(4, 7);
  int ab = 0, ac = 0;
  for (int i = 0; i < 64; ++i) {
    const auto va = a(), vb = b(), vc = c();
    if (va == vb) ++ab;
    if (va == vc) ++ac;
  }
  EXPECT_EQ(ab, 0);
  EXPECT_EQ(ac, 0);
}

TEST(StreamRng, CoordinateArityMatters) {
  StreamRng streams(42);
  auto one = streams.stream(5);
  auto two = streams.stream(5, 0);
  // stream(5) and stream(5, 0) must not collide.
  EXPECT_NE(one(), two());
}

TEST(StreamRng, RootSeedChangesEverything) {
  StreamRng a(1), b(2);
  EXPECT_NE(a.stream(0, 0)(), b.stream(0, 0)());
}

TEST(Xoshiro, UniformFloatInRange) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 10000; ++i) {
    const float f = rng.uniform_float();
    ASSERT_GE(f, 0.0f);
    ASSERT_LT(f, 1.0f);
  }
}

TEST(Xoshiro, BoundedOneAlwaysZero) {
  Xoshiro256 rng(10);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.bounded(1), 0u);
}

}  // namespace
