// Shared helper constructing small, fast Simulation instances for tests.
#pragma once

#include <memory>

#include "core/simulation.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "mobility/markov_mobility.hpp"
#include "nn/model_factory.hpp"
#include "optim/sgd.hpp"

namespace middlefl::testing {

struct SimBundle {
  data::Dataset train;
  data::Dataset test;
  data::Partition partition;
  nn::ModelSpec model_spec;
  core::SimulationConfig cfg;
  std::vector<std::size_t> initial_edges;
  std::size_t num_edges = 3;
  double mobility_p = 0.5;
  std::uint64_t seed = 42;

  SimBundle(std::size_t classes = 4, std::size_t devices = 12,
            std::size_t edges = 3)
      : train(make_data(classes, 60, 0)),
        test(make_data(classes, 25, 1)),
        partition(data::partition_major_class(train, devices, 60, 0.8, 7)),
        num_edges(edges) {
    initial_edges =
        data::assign_edges_by_major_class(partition, edges, classes);

    model_spec.arch = nn::ModelArch::kMlp;
    model_spec.input_shape = tensor::Shape{1, 6, 6};
    model_spec.num_classes = classes;
    model_spec.hidden = 16;

    cfg.select_per_edge = 2;
    cfg.local_steps = 2;
    cfg.cloud_interval = 5;
    cfg.batch_size = 8;
    cfg.total_steps = 20;
    cfg.eval_every = 5;
    cfg.eval_samples = 0;  // tiny test set: use all of it
    cfg.seed = seed;
    cfg.parallel_devices = false;  // single-threaded default for tests
  }

  static data::Dataset make_data(std::size_t classes, std::size_t per_class,
                                 std::uint64_t salt) {
    data::SyntheticConfig dcfg;
    dcfg.num_classes = classes;
    dcfg.height = 6;
    dcfg.width = 6;
    dcfg.noise_std = 0.2f;
    dcfg.seed = 5;
    return data::SyntheticGenerator(dcfg).generate(per_class, salt);
  }

  std::unique_ptr<core::Simulation> make(core::Algorithm algorithm) const {
    auto mobility = std::make_unique<mobility::MarkovMobility>(
        initial_edges, num_edges, mobility_p, seed + 1);
    const optim::Sgd sgd(
        {.learning_rate = 0.05, .momentum = 0.9, .weight_decay = 0.0});
    return std::make_unique<core::Simulation>(
        cfg, model_spec, sgd, train, partition, test, std::move(mobility),
        core::make_algorithm(algorithm));
  }
};

}  // namespace middlefl::testing
