#include <gtest/gtest.h>

#include <cmath>

#include "core/compression.hpp"
#include "parallel/rng.hpp"
#include "sim_fixture.hpp"

namespace {

using middlefl::core::Algorithm;
using middlefl::core::compress_model;
using middlefl::core::compress_update;
using middlefl::core::CompressionConfig;
using middlefl::core::CompressionKind;
using middlefl::testing::SimBundle;

std::vector<float> random_update(std::size_t n, std::uint64_t seed) {
  middlefl::parallel::Xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

TEST(Compression, NoneIsLossless) {
  const auto update = random_update(100, 1);
  const auto result = compress_update(update, {CompressionKind::kNone, 0.1});
  EXPECT_EQ(result.bytes, 400u);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(result.reconstruction[i], update[i]);
  }
}

TEST(Compression, TopKKeepsExactlyKLargest) {
  const std::vector<float> update{0.1f, -5.0f, 0.2f, 3.0f, -0.05f,
                                  1.0f, 0.0f,  0.3f, -2.0f, 0.4f};
  const auto result =
      compress_update(update, {CompressionKind::kTopK, 0.3});  // k = 3
  // Largest magnitudes: -5, 3, -2.
  EXPECT_EQ(result.reconstruction[1], -5.0f);
  EXPECT_EQ(result.reconstruction[3], 3.0f);
  EXPECT_EQ(result.reconstruction[8], -2.0f);
  std::size_t nonzero = 0;
  for (float v : result.reconstruction) {
    if (v != 0.0f) ++nonzero;
  }
  EXPECT_EQ(nonzero, 3u);
  EXPECT_EQ(result.bytes, 3u * 8u);
}

TEST(Compression, TopKAtLeastOneCoordinate) {
  const auto update = random_update(1000, 2);
  const auto result =
      compress_update(update, {CompressionKind::kTopK, 1e-9});
  std::size_t nonzero = 0;
  for (float v : result.reconstruction) {
    if (v != 0.0f) ++nonzero;
  }
  EXPECT_EQ(nonzero, 1u);
}

TEST(Compression, TopKFullFractionIsLossless) {
  const auto update = random_update(64, 3);
  const auto result = compress_update(update, {CompressionKind::kTopK, 1.0});
  for (std::size_t i = 0; i < update.size(); ++i) {
    EXPECT_EQ(result.reconstruction[i], update[i]);
  }
}

TEST(Compression, TopKValidatesFraction) {
  const auto update = random_update(8, 4);
  EXPECT_THROW(compress_update(update, {CompressionKind::kTopK, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(compress_update(update, {CompressionKind::kTopK, 1.5}),
               std::invalid_argument);
}

TEST(Compression, Quant8BoundedError) {
  const auto update = random_update(500, 5);
  const auto result = compress_update(update, {CompressionKind::kQuant8});
  float max_mag = 0.0f;
  for (float v : update) max_mag = std::max(max_mag, std::fabs(v));
  const float step = max_mag / 127.0f;
  for (std::size_t i = 0; i < update.size(); ++i) {
    EXPECT_NEAR(result.reconstruction[i], update[i], 0.51f * step);
  }
  EXPECT_EQ(result.bytes, 500u + 4u);
}

TEST(Compression, Quant8ZeroUpdate) {
  const std::vector<float> zeros(16, 0.0f);
  const auto result = compress_update(zeros, {CompressionKind::kQuant8});
  for (float v : result.reconstruction) EXPECT_EQ(v, 0.0f);
}

TEST(Compression, ModelVariantRoundTripsReference) {
  const auto reference = random_update(50, 6);
  auto model = reference;
  model[7] += 2.0f;  // one large update coordinate
  const auto result =
      compress_model(model, reference, {CompressionKind::kTopK, 0.02});
  // k = 1 keeps only the single changed coordinate: reconstruction == model
  // there and == reference everywhere else.
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_FLOAT_EQ(result.reconstruction[i], i == 7 ? model[i] : reference[i]);
  }
  EXPECT_THROW(
      compress_model(model, random_update(49, 7), {CompressionKind::kNone}),
      std::invalid_argument);
}

TEST(Compression, SimulationTracksUploadBytes) {
  SimBundle bundle;
  bundle.cfg.total_steps = 6;
  auto plain = bundle.make(Algorithm::kMiddle);
  plain->run();
  const std::size_t full_bytes = plain->upload_bytes();
  EXPECT_GT(full_bytes, 0u);

  SimBundle bundle2;
  bundle2.cfg.total_steps = 6;
  bundle2.cfg.upload_compression = {middlefl::core::CompressionKind::kTopK,
                                    0.1};
  auto compressed = bundle2.make(Algorithm::kMiddle);
  compressed->run();
  // Top-10% costs 8 bytes/kept coordinate vs 4 bytes/coordinate raw: ~5x
  // less traffic.
  EXPECT_LT(compressed->upload_bytes(), full_bytes / 3);
}

TEST(Compression, TrainingSurvivesAggressiveCompression) {
  SimBundle bundle;
  bundle.cfg.total_steps = 40;
  bundle.cfg.upload_compression = {middlefl::core::CompressionKind::kQuant8};
  auto sim = bundle.make(Algorithm::kMiddle);
  const auto history = sim->run();
  EXPECT_GT(history.best_accuracy(), 0.35);  // chance 0.25
  for (const auto& point : history.points) {
    EXPECT_TRUE(std::isfinite(point.loss));
  }
}

// --- FedProx ---

TEST(FedProx, ProxTermLimitsDrift) {
  SimBundle bundle;
  const auto drift = [&bundle](double mu) {
    auto sim = bundle.make(Algorithm::kHierFavg);
    // Manually train one device with/without prox and measure |w - w0|.
    auto& device = sim->device(0);
    const std::vector<float> start(device.params().begin(),
                                   device.params().end());
    middlefl::parallel::Xoshiro256 rng(5);
    device.train(20, 8, 0.05, true, rng, mu);
    double dist = 0.0;
    for (std::size_t i = 0; i < start.size(); ++i) {
      const double d = device.params()[i] - start[i];
      dist += d * d;
    }
    return std::sqrt(dist);
  };
  const double free_drift = drift(0.0);
  const double prox_drift = drift(1.0);
  EXPECT_LT(prox_drift, free_drift * 0.9);
  EXPECT_GT(prox_drift, 0.0);  // still moves
}

TEST(FedProx, NegativeMuRejected) {
  SimBundle bundle;
  auto sim = bundle.make(Algorithm::kHierFavg);
  middlefl::parallel::Xoshiro256 rng(5);
  EXPECT_THROW(sim->device(0).train(2, 8, 0.05, true, rng, -0.5),
               std::invalid_argument);
}

TEST(FedProx, EndToEndSimulationTrains) {
  SimBundle bundle;
  bundle.cfg.total_steps = 40;
  bundle.cfg.prox_mu = 0.1;
  auto sim = bundle.make(Algorithm::kMiddle);
  const auto history = sim->run();
  EXPECT_GT(history.best_accuracy(), 0.35);
}

TEST(FedProx, ZeroMuMatchesPlainTraining) {
  SimBundle bundle;
  bundle.cfg.total_steps = 8;
  auto plain = bundle.make(Algorithm::kMiddle);
  const auto h1 = plain->run();
  SimBundle bundle2;
  bundle2.cfg.total_steps = 8;
  bundle2.cfg.prox_mu = 0.0;
  auto zero = bundle2.make(Algorithm::kMiddle);
  const auto h2 = zero->run();
  ASSERT_EQ(h1.points.size(), h2.points.size());
  for (std::size_t i = 0; i < h1.points.size(); ++i) {
    EXPECT_EQ(h1.points[i].accuracy, h2.points[i].accuracy);
  }
}

}  // namespace
