#include <gtest/gtest.h>

#include <numeric>

#include "data/partition.hpp"
#include "data/synthetic.hpp"

namespace {

using middlefl::data::Dataset;
using middlefl::data::Partition;
using middlefl::data::SyntheticConfig;
using middlefl::data::SyntheticGenerator;
using middlefl::tensor::Shape;

Dataset make_dataset(std::size_t classes, std::size_t per_class) {
  SyntheticConfig cfg;
  cfg.num_classes = classes;
  cfg.height = 4;
  cfg.width = 4;
  const SyntheticGenerator gen(cfg);
  return gen.generate(per_class, 0);
}

double major_fraction_of(const Dataset& ds, const Partition& p,
                         std::size_t device) {
  std::size_t major_hits = 0;
  for (std::size_t i : p.device_indices[device]) {
    if (ds.label(i) == p.major_class[device]) ++major_hits;
  }
  return static_cast<double>(major_hits) /
         static_cast<double>(p.device_indices[device].size());
}

TEST(MajorClassPartition, FractionApproximatelyHonored) {
  const Dataset ds = make_dataset(10, 50);
  const auto p =
      middlefl::data::partition_major_class(ds, 20, 200, 0.8, 42);
  ASSERT_EQ(p.num_devices(), 20u);
  for (std::size_t m = 0; m < 20; ++m) {
    EXPECT_EQ(p.device_indices[m].size(), 200u);
    EXPECT_EQ(p.major_class[m], static_cast<std::int32_t>(m % 10));
    EXPECT_NEAR(major_fraction_of(ds, p, m), 0.8, 0.12);
  }
}

TEST(MajorClassPartition, RoundRobinCoversAllClasses) {
  const Dataset ds = make_dataset(5, 20);
  const auto p = middlefl::data::partition_major_class(ds, 10, 50, 0.9, 1);
  std::vector<bool> seen(5, false);
  for (std::int32_t c : p.major_class) {
    seen[static_cast<std::size_t>(c)] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(MajorClassPartition, IndicesPointToMajorLabel) {
  const Dataset ds = make_dataset(4, 30);
  const auto p = middlefl::data::partition_major_class(ds, 4, 100, 1.0, 7);
  for (std::size_t m = 0; m < 4; ++m) {
    for (std::size_t i : p.device_indices[m]) {
      EXPECT_EQ(ds.label(i), p.major_class[m]);
    }
  }
}

TEST(MajorClassPartition, Deterministic) {
  const Dataset ds = make_dataset(3, 30);
  const auto a = middlefl::data::partition_major_class(ds, 6, 40, 0.8, 5);
  const auto b = middlefl::data::partition_major_class(ds, 6, 40, 0.8, 5);
  EXPECT_EQ(a.device_indices, b.device_indices);
}

TEST(MajorClassPartition, Validation) {
  const Dataset ds = make_dataset(3, 10);
  EXPECT_THROW(middlefl::data::partition_major_class(ds, 0, 10, 0.8, 1),
               std::invalid_argument);
  EXPECT_THROW(middlefl::data::partition_major_class(ds, 2, 0, 0.8, 1),
               std::invalid_argument);
  EXPECT_THROW(middlefl::data::partition_major_class(ds, 2, 10, 1.5, 1),
               std::invalid_argument);
}

TEST(SingleClassPartition, OneClassPerDevice) {
  const Dataset ds = make_dataset(10, 20);
  const auto p = middlefl::data::partition_single_class(ds, 10, 30, 3);
  for (std::size_t m = 0; m < 10; ++m) {
    for (std::size_t i : p.device_indices[m]) {
      EXPECT_EQ(ds.label(i), p.major_class[m]);
    }
  }
}

TEST(DirichletPartition, CoversDatasetWithoutReplacement) {
  const Dataset ds = make_dataset(5, 40);
  const auto p = middlefl::data::partition_dirichlet(ds, 8, 0.5, 9);
  std::vector<std::size_t> all;
  for (const auto& d : p.device_indices) {
    all.insert(all.end(), d.begin(), d.end());
  }
  std::sort(all.begin(), all.end());
  // Every index appears exactly once.
  EXPECT_EQ(all.size(), ds.size());
  for (std::size_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i], i);
}

TEST(DirichletPartition, SmallAlphaIsSkewed) {
  const Dataset ds = make_dataset(10, 100);
  const auto skewed = middlefl::data::partition_dirichlet(ds, 10, 0.05, 11);
  const auto smooth = middlefl::data::partition_dirichlet(ds, 10, 100.0, 11);
  // Measure max class share per device, averaged.
  const auto mean_major_share = [&](const Partition& p) {
    double total = 0.0;
    std::size_t counted = 0;
    for (const auto& dev : p.device_indices) {
      if (dev.empty()) continue;
      std::vector<std::size_t> hist(10, 0);
      for (std::size_t i : dev) {
        ++hist[static_cast<std::size_t>(ds.label(i))];
      }
      total += static_cast<double>(
                   *std::max_element(hist.begin(), hist.end())) /
               static_cast<double>(dev.size());
      ++counted;
    }
    return total / static_cast<double>(counted);
  };
  EXPECT_GT(mean_major_share(skewed), mean_major_share(smooth) + 0.2);
}

TEST(DirichletPartition, RecordsEmpiricalMajorClass) {
  const Dataset ds = make_dataset(4, 50);
  const auto p = middlefl::data::partition_dirichlet(ds, 5, 0.1, 13);
  for (std::size_t m = 0; m < 5; ++m) {
    if (!p.device_indices[m].empty()) {
      EXPECT_GE(p.major_class[m], 0);
      EXPECT_LT(p.major_class[m], 4);
    }
  }
}

TEST(IidPartition, BalancedSizes) {
  const Dataset ds = make_dataset(5, 40);  // 200 samples
  const auto p = middlefl::data::partition_iid(ds, 8, 17);
  for (const auto& dev : p.device_indices) {
    EXPECT_EQ(dev.size(), 25u);
  }
  EXPECT_EQ(p.major_class[0], -1);
}

TEST(EdgeAssignment, GroupsByMajorClass) {
  const Dataset ds = make_dataset(10, 20);
  const auto p = middlefl::data::partition_major_class(ds, 20, 30, 0.9, 3);
  const auto edges = middlefl::data::assign_edges_by_major_class(p, 5, 10);
  ASSERT_EQ(edges.size(), 20u);
  // Classes {0,1} -> edge 0, {2,3} -> edge 1, ..., {8,9} -> edge 4.
  for (std::size_t m = 0; m < 20; ++m) {
    const auto major = static_cast<std::size_t>(p.major_class[m]);
    EXPECT_EQ(edges[m], major / 2);
  }
}

TEST(EdgeAssignment, UniformCoversRange) {
  const auto edges = middlefl::data::assign_edges_uniform(1000, 4, 5);
  std::vector<std::size_t> counts(4, 0);
  for (std::size_t e : edges) {
    ASSERT_LT(e, 4u);
    ++counts[e];
  }
  for (std::size_t c : counts) EXPECT_GT(c, 180u);  // roughly balanced
}

TEST(EdgeAssignment, Validation) {
  Partition p;
  p.device_indices.resize(3);
  p.major_class.assign(3, -1);
  EXPECT_THROW(middlefl::data::assign_edges_by_major_class(p, 0, 10),
               std::invalid_argument);
  EXPECT_THROW(middlefl::data::assign_edges_uniform(5, 0, 1),
               std::invalid_argument);
}

TEST(PartitionView, BuildsWorkingView) {
  const Dataset ds = make_dataset(3, 20);
  const auto p = middlefl::data::partition_major_class(ds, 3, 15, 0.8, 21);
  const auto view = p.view(ds, 1);
  EXPECT_EQ(view.size(), 15u);
}

}  // namespace
