// Checkpoint round-trip through a full simulation: a trained global model
// saved with nn::save_model, restored with nn::load_model and installed
// via Simulation::warm_start must continue training bitwise identically to
// warm-starting from the in-memory parameters directly — pinning that the
// checkpoint format is lossless end to end, not just span-equal.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <vector>

#include "nn/serialize.hpp"
#include "sim_fixture.hpp"

namespace {

using middlefl::core::Algorithm;
using middlefl::core::RunHistory;
using middlefl::core::Simulation;
using middlefl::testing::SimBundle;

std::vector<float> checkpoint_after_training(const SimBundle& bundle,
                                             std::size_t steps) {
  auto sim = bundle.make(Algorithm::kMiddle);
  for (std::size_t i = 0; i < steps; ++i) sim->step();
  const auto params = sim->cloud_params();
  return std::vector<float>(params.begin(), params.end());
}

void expect_identical(const RunHistory& a, const RunHistory& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].accuracy, b.points[i].accuracy) << "point " << i;
    EXPECT_EQ(a.points[i].loss, b.points[i].loss) << "point " << i;
  }
}

TEST(Checkpoint, SaveLoadWarmStartResumesBitwise) {
  SimBundle bundle;
  bundle.cfg.total_steps = 10;
  const std::vector<float> trained = checkpoint_after_training(bundle, 10);

  // Round-trip the trained global model through the checkpoint format.
  auto model = middlefl::nn::build_model(bundle.model_spec, bundle.seed);
  model->set_parameters(trained);
  std::stringstream stream;
  middlefl::nn::save_model(*model, stream);
  auto restored = middlefl::nn::build_model(bundle.model_spec, bundle.seed + 99);
  middlefl::nn::load_model(*restored, stream);

  // The restored parameters are bit-identical...
  const auto loaded = restored->parameters();
  ASSERT_EQ(loaded.size(), trained.size());
  for (std::size_t i = 0; i < trained.size(); ++i) {
    ASSERT_EQ(loaded[i], trained[i]) << "param " << i;
  }

  // ...and a simulation resumed from them behaves bit-identically to one
  // resumed from the in-memory weights.
  SimBundle resume_bundle;
  resume_bundle.cfg.total_steps = 10;
  auto direct = resume_bundle.make(Algorithm::kMiddle);
  auto via_checkpoint = resume_bundle.make(Algorithm::kMiddle);
  direct->warm_start(trained);
  via_checkpoint->warm_start(restored->parameters());

  expect_identical(direct->run(), via_checkpoint->run());
  const auto cloud_a = direct->cloud_params();
  const auto cloud_b = via_checkpoint->cloud_params();
  for (std::size_t i = 0; i < cloud_a.size(); ++i) {
    ASSERT_EQ(cloud_a[i], cloud_b[i]) << "cloud param " << i;
  }
  for (std::size_t m = 0; m < direct->num_devices(); ++m) {
    const auto da = direct->device(m).params();
    const auto db = via_checkpoint->device(m).params();
    for (std::size_t i = 0; i < da.size(); ++i) {
      ASSERT_EQ(da[i], db[i]) << "device " << m << " param " << i;
    }
  }
}

TEST(Checkpoint, FileRoundTripMatchesStreamRoundTrip) {
  SimBundle bundle;
  const std::vector<float> trained = checkpoint_after_training(bundle, 5);
  auto model = middlefl::nn::build_model(bundle.model_spec, bundle.seed);
  model->set_parameters(trained);

  const std::string path = ::testing::TempDir() + "middlefl_ckpt_test.bin";
  middlefl::nn::save_model_file(*model, path);
  auto restored = middlefl::nn::build_model(bundle.model_spec, 7);
  middlefl::nn::load_model_file(*restored, path);
  std::remove(path.c_str());

  const auto loaded = restored->parameters();
  ASSERT_EQ(loaded.size(), trained.size());
  for (std::size_t i = 0; i < trained.size(); ++i) {
    ASSERT_EQ(loaded[i], trained[i]) << "param " << i;
  }
}

TEST(Checkpoint, ArchitectureMismatchThrows) {
  SimBundle bundle;
  auto model = middlefl::nn::build_model(bundle.model_spec, bundle.seed);
  std::stringstream stream;
  middlefl::nn::save_model(*model, stream);

  auto wider = bundle.model_spec;
  wider.hidden = bundle.model_spec.hidden * 2;
  auto mismatched = middlefl::nn::build_model(wider, bundle.seed);
  EXPECT_THROW(middlefl::nn::load_model(*mismatched, stream),
               std::runtime_error);
}

TEST(Checkpoint, WarmStartIsNotNetworkTraffic) {
  // warm_start is an out-of-band operator action: installing a checkpoint
  // must not charge any transport link or communication counter.
  SimBundle bundle;
  const std::vector<float> trained = checkpoint_after_training(bundle, 3);
  auto sim = bundle.make(Algorithm::kMiddle);
  sim->warm_start(trained);
  EXPECT_EQ(sim->comm_stats().total_transfers(), 0u);
  EXPECT_EQ(sim->transport().total_bytes(), 0u);
  for (const auto kind : middlefl::transport::kAllLinkKinds) {
    EXPECT_EQ(sim->transport().stats(kind).transfers, 0u)
        << to_string(kind);
  }
}

TEST(Checkpoint, WarmStartRejectsWrongSize) {
  SimBundle bundle;
  auto sim = bundle.make(Algorithm::kMiddle);
  const std::vector<float> wrong(sim->cloud_params().size() + 1, 0.0f);
  EXPECT_THROW(sim->warm_start(wrong), std::invalid_argument);
}

}  // namespace
