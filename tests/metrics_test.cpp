#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>

#include "core/metrics.hpp"
#include "data/synthetic.hpp"
#include "nn/model_factory.hpp"

namespace {

using middlefl::core::EvalPoint;
using middlefl::core::Evaluator;
using middlefl::core::RunHistory;
using middlefl::data::DataView;
using middlefl::data::Dataset;
using middlefl::nn::ModelArch;
using middlefl::nn::ModelSpec;
using middlefl::tensor::Shape;

struct EvalFixture {
  Dataset test;
  ModelSpec spec;

  EvalFixture() : test(make_data()) {
    spec.arch = ModelArch::kMlp;
    spec.input_shape = Shape{1, 6, 6};
    spec.num_classes = 4;
    spec.hidden = 8;
  }

  static Dataset make_data() {
    middlefl::data::SyntheticConfig cfg;
    cfg.num_classes = 4;
    cfg.height = 6;
    cfg.width = 6;
    return middlefl::data::SyntheticGenerator(cfg).generate(20, 9);
  }

  Evaluator make_evaluator(std::size_t batch = 32) const {
    return Evaluator(middlefl::nn::build_model(spec, 3),
                     DataView::all(test), batch);
  }
};

TEST(Evaluator, ConstructionValidation) {
  const EvalFixture fx;
  EXPECT_THROW(Evaluator(nullptr, DataView::all(fx.test)),
               std::invalid_argument);
  EXPECT_THROW(Evaluator(middlefl::nn::build_model(fx.spec, 1),
                         DataView(&fx.test, {}), 32),
               std::invalid_argument);
  EXPECT_THROW(Evaluator(middlefl::nn::build_model(fx.spec, 1),
                         DataView::all(fx.test), 0),
               std::invalid_argument);
}

TEST(Evaluator, AccuracyInUnitRangeAndConsistent) {
  const EvalFixture fx;
  auto evaluator = fx.make_evaluator();
  const auto model = middlefl::nn::build_model(fx.spec, 5);
  const auto r1 = evaluator.evaluate(model->parameters());
  const auto r2 = evaluator.evaluate(model->parameters());
  EXPECT_GE(r1.accuracy, 0.0);
  EXPECT_LE(r1.accuracy, 1.0);
  EXPECT_EQ(r1.accuracy, r2.accuracy);  // deterministic
  EXPECT_EQ(r1.samples, fx.test.size());
}

TEST(Evaluator, BatchSizeDoesNotChangeResult) {
  const EvalFixture fx;
  auto small = fx.make_evaluator(3);
  auto large = fx.make_evaluator(64);
  const auto model = middlefl::nn::build_model(fx.spec, 6);
  EXPECT_EQ(small.evaluate(model->parameters()).accuracy,
            large.evaluate(model->parameters()).accuracy);
}

TEST(Evaluator, SubsampleIsDeterministicAndSmaller) {
  const EvalFixture fx;
  auto evaluator = fx.make_evaluator();
  const auto model = middlefl::nn::build_model(fx.spec, 7);
  const auto sub1 = evaluator.evaluate(model->parameters(), 20);
  const auto sub2 = evaluator.evaluate(model->parameters(), 20);
  EXPECT_EQ(sub1.accuracy, sub2.accuracy);
  EXPECT_EQ(sub1.samples, 20u);
  // max_samples >= size falls back to the full set.
  const auto full = evaluator.evaluate(model->parameters(), 10000);
  EXPECT_EQ(full.samples, fx.test.size());
}

TEST(Evaluator, PerClassAccuracyAveragesToOverall) {
  const EvalFixture fx;
  auto evaluator = fx.make_evaluator();
  const auto model = middlefl::nn::build_model(fx.spec, 8);
  const auto per_class = evaluator.per_class_accuracy(model->parameters());
  ASSERT_EQ(per_class.size(), 4u);
  // Balanced test set: mean of per-class accuracies == overall accuracy.
  double mean = 0.0;
  for (double a : per_class) {
    EXPECT_FALSE(std::isnan(a));
    mean += a;
  }
  mean /= 4.0;
  const auto overall = evaluator.evaluate(model->parameters());
  EXPECT_NEAR(mean, overall.accuracy, 1e-9);
}

TEST(Evaluator, EvaluateClassesRestrictsToSubset) {
  const EvalFixture fx;
  auto evaluator = fx.make_evaluator();
  const auto model = middlefl::nn::build_model(fx.spec, 9);
  const std::vector<std::int32_t> subset{0, 1};
  const auto restricted =
      evaluator.evaluate_classes(model->parameters(), subset);
  EXPECT_EQ(restricted.samples, 40u);  // 20 per class x 2 classes
  const auto per_class = evaluator.per_class_accuracy(model->parameters());
  EXPECT_NEAR(restricted.accuracy, (per_class[0] + per_class[1]) / 2.0,
              1e-9);
  EXPECT_THROW(evaluator.evaluate_classes(model->parameters(),
                                          std::vector<std::int32_t>{}),
               std::invalid_argument);
}

TEST(Evaluator, ConfusionMatrixRowsSumToOne) {
  const EvalFixture fx;
  auto evaluator = fx.make_evaluator();
  const auto model = middlefl::nn::build_model(fx.spec, 10);
  const auto matrix = evaluator.confusion_matrix(model->parameters());
  ASSERT_EQ(matrix.size(), 4u);
  for (std::size_t t = 0; t < 4; ++t) {
    double row_sum = 0.0;
    for (double v : matrix[t]) {
      EXPECT_GE(v, 0.0);
      row_sum += v;
    }
    EXPECT_NEAR(row_sum, 1.0, 1e-9);  // balanced test set: every row present
  }
  // Diagonal must equal per-class accuracy.
  const auto per_class = evaluator.per_class_accuracy(model->parameters());
  for (std::size_t t = 0; t < 4; ++t) {
    EXPECT_NEAR(matrix[t][t], per_class[t], 1e-9);
  }
}

TEST(HistoryIo, CsvRoundTrip) {
  middlefl::core::RunHistory history;
  history.algorithm = "MIDDLE";
  for (std::size_t i = 0; i < 5; ++i) {
    middlefl::core::EvalPoint point;
    point.step = i * 10;
    point.accuracy = 0.1 * static_cast<double>(i);
    point.loss = 2.0 - 0.3 * static_cast<double>(i);
    history.points.push_back(point);
  }
  const std::string path = "/tmp/middlefl_history_test.csv";
  middlefl::core::save_history_csv(history, path);
  const auto loaded = middlefl::core::load_history_csv(path);
  EXPECT_EQ(loaded.algorithm, "MIDDLE");
  ASSERT_EQ(loaded.points.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(loaded.points[i].step, history.points[i].step);
    EXPECT_NEAR(loaded.points[i].accuracy, history.points[i].accuracy, 1e-9);
    EXPECT_NEAR(loaded.points[i].loss, history.points[i].loss, 1e-9);
  }
  std::remove(path.c_str());
  EXPECT_THROW(middlefl::core::load_history_csv("/no/such/file.csv"),
               std::runtime_error);
}

TEST(HistoryIo, LoadRejectsWrongHeader) {
  const std::string path = "/tmp/middlefl_history_bad.csv";
  {
    std::ofstream out(path);
    out << "foo,bar\n1,2\n";
  }
  EXPECT_THROW(middlefl::core::load_history_csv(path), std::runtime_error);
  std::remove(path.c_str());
}

// --- RunHistory ---

RunHistory make_history(std::initializer_list<double> accuracies) {
  RunHistory history;
  std::size_t step = 0;
  for (double a : accuracies) {
    EvalPoint point;
    point.step = step;
    point.accuracy = a;
    history.points.push_back(point);
    step += 10;
  }
  return history;
}

TEST(RunHistory, TimeToAccuracyFindsFirstCrossing) {
  const auto history = make_history({0.1, 0.3, 0.5, 0.45, 0.7});
  EXPECT_EQ(history.time_to_accuracy(0.3).value(), 10u);
  EXPECT_EQ(history.time_to_accuracy(0.5).value(), 20u);
  EXPECT_EQ(history.time_to_accuracy(0.6).value(), 40u);
  EXPECT_FALSE(history.time_to_accuracy(0.9).has_value());
}

TEST(RunHistory, FinalAndBestAccuracy) {
  const auto history = make_history({0.1, 0.8, 0.6});
  EXPECT_DOUBLE_EQ(history.final_accuracy(), 0.6);
  EXPECT_DOUBLE_EQ(history.best_accuracy(), 0.8);
  const RunHistory empty;
  EXPECT_TRUE(std::isnan(empty.final_accuracy()));
  EXPECT_TRUE(std::isnan(empty.best_accuracy()));
}

TEST(RunHistory, AccuracySeries) {
  const auto history = make_history({0.2, 0.4});
  EXPECT_EQ(history.accuracy_series(), (std::vector<double>{0.2, 0.4}));
}

// --- speedup ---

TEST(Speedup, RatioOfTimeToTarget) {
  const auto fast = make_history({0.1, 0.6, 0.8});   // hits 0.5 at step 10
  const auto slow = make_history({0.1, 0.2, 0.3, 0.4, 0.6});  // at step 40
  const auto ratio = middlefl::core::speedup(fast, slow, 0.5);
  ASSERT_TRUE(ratio.has_value());
  EXPECT_DOUBLE_EQ(*ratio, 4.0);
}

TEST(Speedup, BaselineNeverReachesGivesInfinity) {
  const auto fast = make_history({0.1, 0.6});
  const auto slow = make_history({0.1, 0.2});
  const auto ratio = middlefl::core::speedup(fast, slow, 0.5);
  ASSERT_TRUE(ratio.has_value());
  EXPECT_TRUE(std::isinf(*ratio));
}

TEST(Speedup, OursMissesGivesNullopt) {
  const auto fast = make_history({0.1, 0.2});
  const auto slow = make_history({0.1, 0.6});
  EXPECT_FALSE(middlefl::core::speedup(fast, slow, 0.5).has_value());
}

TEST(Speedup, ImmediateHitGivesInfinity) {
  // Both cross at step 0 -> ours took 0 steps.
  const auto ours = make_history({0.9});
  const auto base = make_history({0.1, 0.9});
  const auto ratio = middlefl::core::speedup(ours, base, 0.5);
  ASSERT_TRUE(ratio.has_value());
  EXPECT_TRUE(std::isinf(*ratio));
}

}  // namespace
