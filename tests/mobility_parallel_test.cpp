// Sharded mobility advance: pins the two contracts the sublinear stepping
// path leans on.
//
//  1. Bitwise equivalence — because every transition draws from a private
//     (device, step) stream, advancing the fleet in parallel shards must
//     reproduce the serial walk exactly: same assignments, same mover
//     delta, at every pool size.
//  2. The mover-list contract — each model's movers() equals
//     moved_devices(before, after), ascending by id, and clears on reset;
//     this is what lets Simulation patch edge membership instead of
//     rescanning the fleet.
//
// Also holds the regression for the latent out-of-bounds read when
// MarkovMobility was built with an empty per-device probability vector.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <vector>

#include "mobility/markov_mobility.hpp"
#include "mobility/mobility_model.hpp"
#include "mobility/random_waypoint.hpp"
#include "mobility/trace.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using middlefl::mobility::MarkovMobility;
using middlefl::mobility::MobilityModel;
using middlefl::mobility::moved_devices;
using middlefl::mobility::MoveTopology;
using middlefl::mobility::RandomWaypointMobility;
using middlefl::mobility::record_trace;
using middlefl::mobility::TraceMobility;
using middlefl::mobility::WaypointConfig;
using middlefl::parallel::ThreadPool;

std::vector<std::size_t> initial_assignment(std::size_t devices,
                                            std::size_t edges) {
  std::vector<std::size_t> a(devices);
  for (std::size_t m = 0; m < devices; ++m) a[m] = m % edges;
  return a;
}

/// Asserts movers() matches the brute-force diff and stays ascending.
void expect_movers_contract(const MobilityModel& model,
                            const std::vector<std::size_t>& before) {
  const auto* movers = model.movers();
  ASSERT_NE(movers, nullptr) << model.name();
  EXPECT_EQ(*movers, moved_devices(before, model.assignment()))
      << model.name();
  EXPECT_TRUE(std::is_sorted(movers->begin(), movers->end())) << model.name();
}

// Big enough for several 16k-device shards so the pooled path actually
// fans out instead of falling back to the serial loop.
constexpr std::size_t kFleet = 40000;
constexpr std::size_t kEdges = 8;

void expect_parallel_matches_serial(MoveTopology topology,
                                    std::size_t pool_size) {
  MarkovMobility serial(initial_assignment(kFleet, kEdges), kEdges, 0.3, 91);
  MarkovMobility sharded(initial_assignment(kFleet, kEdges), kEdges, 0.3, 91);
  serial.set_topology(topology, 0.6);
  sharded.set_topology(topology, 0.6);
  ThreadPool pool(pool_size);
  sharded.set_pool(&pool);
  for (int t = 0; t < 8; ++t) {
    const auto before = serial.assignment();
    serial.advance();
    sharded.advance();
    ASSERT_EQ(serial.assignment(), sharded.assignment())
        << to_string(topology) << " pool=" << pool_size << " step " << t;
    ASSERT_EQ(*serial.movers(), *sharded.movers())
        << to_string(topology) << " pool=" << pool_size << " step " << t;
    expect_movers_contract(sharded, before);
  }
}

TEST(MobilityParallel, UniformMatchesSerialAtEveryPoolSize) {
  for (std::size_t workers : {1u, 2u, 8u}) {
    expect_parallel_matches_serial(MoveTopology::kUniform, workers);
  }
}

TEST(MobilityParallel, RingMatchesSerialAtEveryPoolSize) {
  for (std::size_t workers : {1u, 2u, 8u}) {
    expect_parallel_matches_serial(MoveTopology::kRing, workers);
  }
}

TEST(MobilityParallel, HomeRingMatchesSerialAtEveryPoolSize) {
  for (std::size_t workers : {1u, 2u, 8u}) {
    expect_parallel_matches_serial(MoveTopology::kHomeRing, workers);
  }
}

TEST(MobilityParallel, WholeRunHashUnchangedByPool) {
  // Fold every step's assignment into one hash; the whole trajectory, not
  // just the endpoint, must be pool-size invariant.
  const auto run_hash = [](ThreadPool* pool) {
    MarkovMobility model(initial_assignment(kFleet, kEdges), kEdges, 0.25, 7);
    model.set_topology(MoveTopology::kHomeRing, 0.5);
    model.set_pool(pool);
    std::uint64_t h = 0;
    for (int t = 0; t < 10; ++t) {
      model.advance();
      for (const std::size_t e : model.assignment()) {
        h = middlefl::parallel::hash_combine(h, e);
      }
    }
    return h;
  };
  const std::uint64_t serial = run_hash(nullptr);
  for (std::size_t workers : {1u, 2u, 8u}) {
    ThreadPool pool(workers);
    EXPECT_EQ(run_hash(&pool), serial) << "pool=" << workers;
  }
}

// --- Mover-list contract across the other models ---

TEST(MobilityParallel, WaypointMoversMatchDiff) {
  WaypointConfig cfg;
  cfg.num_devices = 60;
  cfg.num_edges = 9;
  cfg.speed_max = 120.0;
  RandomWaypointMobility model(cfg);
  for (int t = 0; t < 20; ++t) {
    const auto before = model.assignment();
    model.advance();
    expect_movers_contract(model, before);
  }
  model.reset();
  ASSERT_NE(model.movers(), nullptr);
  EXPECT_TRUE(model.movers()->empty());
}

TEST(MobilityParallel, TraceMoversMatchDiff) {
  MarkovMobility source(initial_assignment(30, 5), 5, 0.6, 17);
  TraceMobility replay(record_trace(source, 15));
  for (int t = 0; t < 20; ++t) {  // runs past the end: held steps move nobody
    const auto before = replay.assignment();
    replay.advance();
    expect_movers_contract(replay, before);
  }
  replay.reset();
  ASSERT_NE(replay.movers(), nullptr);
  EXPECT_TRUE(replay.movers()->empty());
}

TEST(MobilityParallel, MarkovResetClearsMovers) {
  MarkovMobility model(initial_assignment(50, 4), 4, 1.0, 3);
  model.advance();
  ASSERT_FALSE(model.movers()->empty());
  model.reset();
  EXPECT_TRUE(model.movers()->empty());
}

// --- Regression: empty per-device probability vector ---

TEST(MobilityParallel, EmptyMoveProbabilitiesMeansNoMovement) {
  // The heterogeneous constructor documents an empty vector as P_m = 0,
  // but advance() used to index move_prob_[m] unconditionally — an
  // out-of-bounds read for every device. Now it must be a well-defined
  // stationary fleet.
  MarkovMobility model(initial_assignment(25, 4), 4, std::vector<double>{},
                       19);
  EXPECT_EQ(model.global_mobility(), 0.0);
  const auto before = model.assignment();
  for (int t = 0; t < 10; ++t) {
    model.advance();
    EXPECT_TRUE(model.movers()->empty());
  }
  EXPECT_EQ(model.assignment(), before);
}

}  // namespace
