// Unit tests for the typed transport layer: link policies (loss,
// compression, latency), byte accounting, and the Transport registry.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "parallel/rng.hpp"
#include "transport/link.hpp"
#include "transport/transport.hpp"

namespace {

using middlefl::parallel::Xoshiro256;
using middlefl::transport::Arrival;
using middlefl::transport::CarryLink;
using middlefl::transport::CompressionConfig;
using middlefl::transport::CompressionKind;
using middlefl::transport::Delivery;
using middlefl::transport::kAllLinkKinds;
using middlefl::transport::LinkKind;
using middlefl::transport::LinkPolicy;
using middlefl::transport::LinkStats;
using middlefl::transport::SendContext;
using middlefl::transport::Transport;
using middlefl::transport::TransportConfig;
using middlefl::transport::WanLink;
using middlefl::transport::WirelessLink;

std::vector<float> ramp(std::size_t n) {
  std::vector<float> v(n);
  std::iota(v.begin(), v.end(), 1.0f);
  return v;
}

TEST(Link, DefaultPolicyIsCountedPassThrough) {
  WirelessLink link(LinkKind::kWirelessDown, LinkPolicy{});
  const auto payload = ramp(8);
  const Delivery d = link.send(payload, SendContext{});
  EXPECT_TRUE(d.delivered);
  EXPECT_FALSE(d.queued);
  // Zero-copy: the receiver sees the sender's buffer.
  EXPECT_EQ(d.payload.data(), payload.data());
  EXPECT_EQ(d.bytes, 8 * sizeof(float));

  const LinkStats stats = link.stats();
  EXPECT_EQ(stats.transfers, 1u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.bytes, 8 * sizeof(float));
  EXPECT_EQ(stats.delivered(), 1u);
}

TEST(Link, LossDropsDeterministically) {
  LinkPolicy policy;
  policy.loss_prob = 0.5;
  WirelessLink link(LinkKind::kWirelessUp, policy);
  const auto payload = ramp(4);

  std::size_t delivered = 0;
  for (std::uint64_t i = 0; i < 200; ++i) {
    Xoshiro256 rng(i);
    SendContext ctx;
    ctx.rng = &rng;
    if (link.send(payload, ctx).delivered) ++delivered;
  }
  const LinkStats stats = link.stats();
  EXPECT_EQ(stats.transfers, 200u);
  EXPECT_EQ(stats.dropped, 200u - delivered);
  // ~half lost; with 200 draws a [60, 140] window is astronomically safe.
  EXPECT_GT(delivered, 60u);
  EXPECT_LT(delivered, 140u);
  // Dropped sends put no bytes on the wire.
  EXPECT_EQ(stats.bytes, delivered * 4 * sizeof(float));

  // Same seeds, fresh link: identical outcomes.
  WirelessLink replay(LinkKind::kWirelessUp, policy);
  std::size_t replay_delivered = 0;
  for (std::uint64_t i = 0; i < 200; ++i) {
    Xoshiro256 rng(i);
    SendContext ctx;
    ctx.rng = &rng;
    if (replay.send(payload, ctx).delivered) ++replay_delivered;
  }
  EXPECT_EQ(delivered, replay_delivered);
}

TEST(Link, LossRequiresRng) {
  LinkPolicy policy;
  policy.loss_prob = 0.5;
  WirelessLink link(LinkKind::kWirelessUp, policy);
  const auto payload = ramp(4);
  EXPECT_THROW(link.send(payload, SendContext{}), std::invalid_argument);
}

TEST(Link, CompressionChargesWireBytesAndReconstructs) {
  LinkPolicy policy;
  policy.compression = CompressionConfig{CompressionKind::kQuant8, 0.1};
  WirelessLink link(LinkKind::kWirelessUp, policy);
  const auto payload = ramp(16);
  const auto reference = std::vector<float>(16, 1.0f);

  std::vector<std::vector<float>> arena;
  SendContext ctx;
  ctx.reference = reference;
  ctx.arena = &arena;
  const Delivery d = link.send(payload, ctx);
  ASSERT_TRUE(d.delivered);
  // q8 wire model: one byte per coordinate plus the float32 scale.
  EXPECT_EQ(d.bytes, 16u + 4u);
  EXPECT_EQ(link.stats().bytes, 16u + 4u);
  // The receiver gets the lossy reconstruction owned by the arena, not the
  // sender's buffer.
  ASSERT_EQ(arena.size(), 1u);
  EXPECT_EQ(d.payload.data(), arena.back().data());
  ASSERT_EQ(d.payload.size(), payload.size());
  for (std::size_t i = 0; i < payload.size(); ++i) {
    EXPECT_NEAR(d.payload[i], payload[i], 0.1f) << i;
  }
}

TEST(Link, CompressionRequiresArena) {
  LinkPolicy policy;
  policy.compression = CompressionConfig{CompressionKind::kQuant8, 0.1};
  WirelessLink link(LinkKind::kWirelessUp, policy);
  const auto payload = ramp(4);
  EXPECT_THROW(link.send(payload, SendContext{}), std::invalid_argument);
}

TEST(Link, LatencyQueuesAndDrainsFifo) {
  LinkPolicy policy;
  policy.latency_steps = 2;
  WirelessLink link(LinkKind::kWirelessUp, policy, /*shards=*/2);

  const auto first = ramp(4);
  const auto second = ramp(4);
  SendContext ctx;
  ctx.step = 1;
  ctx.shard = 1;
  ctx.weight = 10.0;
  Delivery d = link.send(first, ctx);
  EXPECT_FALSE(d.delivered);
  EXPECT_TRUE(d.queued);
  EXPECT_EQ(d.bytes, 4 * sizeof(float));  // charged at send time
  ctx.weight = 20.0;
  link.send(second, ctx);
  EXPECT_EQ(link.in_flight(), 2u);

  // Not due yet, and the other shard holds nothing.
  EXPECT_TRUE(link.drain(2, 1).empty());
  EXPECT_TRUE(link.drain(100, 0).empty());
  EXPECT_EQ(link.in_flight(), 2u);

  const std::vector<Arrival> due = link.drain(3, 1);
  ASSERT_EQ(due.size(), 2u);  // FIFO send order
  EXPECT_EQ(due[0].weight, 10.0);
  EXPECT_EQ(due[1].weight, 20.0);
  EXPECT_EQ(due[0].sent_step, 1u);
  EXPECT_EQ(due[0].payload, first);
  EXPECT_EQ(link.in_flight(), 0u);
}

TEST(Link, LatencyRejectedOnDownlinks) {
  LinkPolicy policy;
  policy.latency_steps = 1;
  EXPECT_THROW(WirelessLink(LinkKind::kWirelessDown, policy),
               std::invalid_argument);
  EXPECT_THROW(WanLink(LinkKind::kWanDown, policy), std::invalid_argument);
  EXPECT_NO_THROW(WirelessLink(LinkKind::kWirelessUp, policy));
  EXPECT_NO_THROW(WanLink(LinkKind::kWanUp, policy));
}

TEST(Link, RejectsOutOfRangeLoss) {
  LinkPolicy policy;
  policy.loss_prob = 1.5;
  EXPECT_THROW(WirelessLink(LinkKind::kWirelessUp, policy),
               std::invalid_argument);
}

TEST(CarryLinkTest, FreeCountedAndPolicyLocked) {
  CarryLink carry{LinkPolicy{}};
  const auto payload = ramp(8);
  const Delivery d = carry.send(payload, SendContext{});
  EXPECT_TRUE(d.delivered);
  EXPECT_EQ(d.payload.data(), payload.data());
  EXPECT_EQ(d.bytes, 0u);  // the model never leaves the device
  EXPECT_EQ(carry.stats().transfers, 1u);
  EXPECT_EQ(carry.stats().bytes, 0u);

  LinkPolicy lossy;
  lossy.loss_prob = 0.1;
  EXPECT_THROW(CarryLink{lossy}, std::invalid_argument);
  LinkPolicy compressed;
  compressed.compression = CompressionConfig{CompressionKind::kQuant8, 0.1};
  EXPECT_THROW(CarryLink{compressed}, std::invalid_argument);
}

TEST(TransportTest, BuildsAllLinksAndReports) {
  TransportConfig config;
  config.wireless_up.loss_prob = 0.25;
  Transport transport(config, /*uplink_shards=*/3);

  for (const LinkKind kind : kAllLinkKinds) {
    EXPECT_EQ(transport.link(kind).kind(), kind) << to_string(kind);
  }
  EXPECT_EQ(transport.wireless_up().policy().loss_prob, 0.25);

  const auto payload = ramp(4);
  transport.wireless_down().send(payload, SendContext{});
  transport.wan_up().send(payload, SendContext{});
  transport.wan_up().send(payload, SendContext{});

  const auto report = transport.bytes_by_link();
  ASSERT_EQ(report.size(), std::size(kAllLinkKinds));
  std::size_t total = 0;
  for (const auto& entry : report) {
    total += entry.stats.bytes;
    if (entry.kind == LinkKind::kWanUp) {
      EXPECT_EQ(entry.stats.transfers, 2u);
      EXPECT_EQ(entry.stats.bytes, 2 * 4 * sizeof(float));
    }
  }
  EXPECT_EQ(total, transport.total_bytes());
  EXPECT_EQ(transport.total_bytes(), 3 * 4 * sizeof(float));
  EXPECT_EQ(transport.total_in_flight(), 0u);
}

TEST(TransportTest, LinkStatsArithmetic) {
  const LinkStats a{10, 2, 400};
  const LinkStats b{4, 1, 100};
  const LinkStats delta = a - b;
  EXPECT_EQ(delta.transfers, 6u);
  EXPECT_EQ(delta.dropped, 1u);
  EXPECT_EQ(delta.bytes, 300u);
  LinkStats sum = b;
  sum += delta;
  EXPECT_EQ(sum.transfers, a.transfers);
  EXPECT_EQ(sum.dropped, a.dropped);
  EXPECT_EQ(sum.bytes, a.bytes);
}

TEST(TransportTest, ParseCompressionSpecs) {
  using middlefl::transport::parse_compression;
  EXPECT_EQ(parse_compression("none").kind, CompressionKind::kNone);
  EXPECT_EQ(parse_compression("").kind, CompressionKind::kNone);
  EXPECT_EQ(parse_compression("q8").kind, CompressionKind::kQuant8);
  EXPECT_EQ(parse_compression("quant8").kind, CompressionKind::kQuant8);
  const auto topk = parse_compression("topk:0.25");
  EXPECT_EQ(topk.kind, CompressionKind::kTopK);
  EXPECT_EQ(topk.top_k_fraction, 0.25);
  EXPECT_THROW(parse_compression("topk:0"), std::invalid_argument);
  EXPECT_THROW(parse_compression("topk:2"), std::invalid_argument);
  EXPECT_THROW(parse_compression("gzip"), std::invalid_argument);

  using middlefl::transport::to_string;
  EXPECT_EQ(to_string(parse_compression("q8")), "q8");
  EXPECT_EQ(to_string(parse_compression("none")), "none");
  EXPECT_EQ(to_string(parse_compression("topk:0.25")),
            "topk:" + std::to_string(0.25));
}

}  // namespace
