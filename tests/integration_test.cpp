// End-to-end convergence and cross-algorithm behaviour on a small but real
// federated task. These run a few hundred local SGD steps each; they are
// the slowest tests in the suite (a few seconds total).
#include <gtest/gtest.h>

#include "core/convergence.hpp"
#include "mobility/random_waypoint.hpp"
#include "mobility/trace.hpp"
#include "optim/adam.hpp"
#include "sim_fixture.hpp"

namespace {

using middlefl::core::Algorithm;
using middlefl::testing::SimBundle;

TEST(Integration, GlobalModelLearnsTheTask) {
  SimBundle bundle(/*classes=*/4, /*devices=*/12, /*edges=*/3);
  bundle.cfg.total_steps = 150;
  bundle.cfg.local_steps = 5;
  bundle.cfg.eval_every = 25;
  auto sim = bundle.make(Algorithm::kMiddle);
  const auto history = sim->run();
  // Chance is 0.25; the task is easy, so the global model should be well
  // above it after 60 steps.
  EXPECT_GT(history.final_accuracy(), 0.6) << "final accuracy too low";
  // And it should have improved substantially over the initial point.
  EXPECT_GT(history.final_accuracy(), history.points.front().accuracy + 0.2);
}

TEST(Integration, AllAlgorithmsTrainWithoutDivergence) {
  for (const auto algorithm :
       {Algorithm::kMiddle, Algorithm::kOort, Algorithm::kFedMes,
        Algorithm::kGreedy, Algorithm::kEnsemble, Algorithm::kHierFavg}) {
    SimBundle bundle;
    bundle.cfg.total_steps = 30;
    bundle.cfg.eval_every = 10;
    auto sim = bundle.make(algorithm);
    const auto history = sim->run();
    EXPECT_GT(history.final_accuracy(), 0.3)
        << to_string(algorithm) << " failed to learn";
    for (const auto& point : history.points) {
      EXPECT_TRUE(std::isfinite(point.loss))
          << to_string(algorithm) << " diverged";
    }
  }
}

TEST(Integration, MobilityHelpsMiddleOnCrossEdgeSkew) {
  // With strong cross-edge label skew, MIDDLE at P=0.5 should reach a given
  // target no slower than (and typically faster than) the same setup at
  // P=0 where no knowledge travels. This checks the direction of the
  // paper's headline effect on a small instance.
  const auto run_with_mobility = [](double p) {
    SimBundle bundle(/*classes=*/4, /*devices=*/12, /*edges=*/4);
    bundle.mobility_p = p;
    bundle.cfg.total_steps = 60;
    bundle.cfg.eval_every = 10;
    bundle.cfg.cloud_interval = 20;  // rare cloud syncs: mobility matters
    auto sim = bundle.make(Algorithm::kMiddle);
    return sim->run();
  };
  const auto mobile = run_with_mobility(0.5);
  const auto frozen = run_with_mobility(0.0);
  // Mean accuracy across the curve (robust to endpoint noise).
  const auto mean_acc = [](const middlefl::core::RunHistory& h) {
    double sum = 0.0;
    for (const auto& pt : h.points) sum += pt.accuracy;
    return sum / static_cast<double>(h.points.size());
  };
  EXPECT_GE(mean_acc(mobile) + 0.05, mean_acc(frozen));
}

TEST(Integration, SpeedupHelperComputesRatio) {
  SimBundle bundle;
  bundle.cfg.total_steps = 40;
  bundle.cfg.eval_every = 5;
  auto fast_sim = bundle.make(Algorithm::kMiddle);
  const auto fast = fast_sim->run();
  auto slow_sim = bundle.make(Algorithm::kHierFavg);
  const auto slow = slow_sim->run();
  const double target = 0.4;
  const auto ratio = middlefl::core::speedup(fast, slow, target);
  if (fast.time_to_accuracy(target).has_value()) {
    ASSERT_TRUE(ratio.has_value());
    EXPECT_GT(*ratio, 0.0);
  } else {
    EXPECT_FALSE(ratio.has_value());
  }
}

TEST(Integration, AdamOptimizerPathWorks) {
  // The speech task uses Adam (§6.1.2); exercise that code path end to end.
  SimBundle bundle;
  bundle.cfg.total_steps = 20;
  bundle.cfg.eval_every = 10;
  auto mobility = std::make_unique<middlefl::mobility::MarkovMobility>(
      bundle.initial_edges, bundle.num_edges, 0.5, 99);
  const middlefl::optim::Adam adam({.learning_rate = 0.005});
  middlefl::core::Simulation sim(
      bundle.cfg, bundle.model_spec, adam, bundle.train, bundle.partition,
      bundle.test, std::move(mobility),
      middlefl::core::make_algorithm(Algorithm::kMiddle));
  const auto history = sim.run();
  EXPECT_GT(history.final_accuracy(), 0.3);
}

TEST(Integration, WaypointMobilityDrivesSimulation) {
  SimBundle bundle;
  bundle.cfg.total_steps = 15;
  middlefl::mobility::WaypointConfig wp;
  wp.num_devices = bundle.partition.num_devices();
  wp.num_edges = bundle.num_edges;
  wp.speed_min = 100.0;
  wp.speed_max = 300.0;
  auto mobility = std::make_unique<middlefl::mobility::RandomWaypointMobility>(wp);
  const middlefl::optim::Sgd sgd({.learning_rate = 0.05, .momentum = 0.9});
  middlefl::core::Simulation sim(
      bundle.cfg, bundle.model_spec, sgd, bundle.train, bundle.partition,
      bundle.test, std::move(mobility),
      middlefl::core::make_algorithm(Algorithm::kMiddle));
  const auto history = sim.run();
  EXPECT_FALSE(history.points.empty());
  EXPECT_TRUE(std::isfinite(history.final_accuracy()));
}

TEST(Integration, TraceReplayReproducesMarkovRun) {
  // A simulation driven by a recorded trace must equal one driven by the
  // original model (mobility is the only stochastic input that differs).
  SimBundle bundle;
  bundle.cfg.total_steps = 10;

  middlefl::mobility::MarkovMobility source(bundle.initial_edges,
                                            bundle.num_edges, 0.5,
                                            bundle.seed + 1);
  auto trace = middlefl::mobility::record_trace(source, 10);

  auto live = bundle.make(Algorithm::kMiddle);
  const auto live_history = live->run();

  const middlefl::optim::Sgd sgd({.learning_rate = 0.05, .momentum = 0.9});
  middlefl::core::Simulation replay_sim(
      bundle.cfg, bundle.model_spec, sgd, bundle.train, bundle.partition,
      bundle.test,
      std::make_unique<middlefl::mobility::TraceMobility>(std::move(trace)),
      middlefl::core::make_algorithm(Algorithm::kMiddle));
  const auto replay_history = replay_sim.run();

  ASSERT_EQ(live_history.points.size(), replay_history.points.size());
  for (std::size_t i = 0; i < live_history.points.size(); ++i) {
    EXPECT_EQ(live_history.points[i].accuracy,
              replay_history.points[i].accuracy);
  }
}

TEST(Integration, FixedAlphaRuleMatchesTheoremSetting) {
  // Run MIDDLE's pipeline with the fixed-alpha rule from Theorem 1 and
  // check it both trains and blends.
  SimBundle bundle;
  bundle.mobility_p = 0.8;
  bundle.cfg.total_steps = 20;
  auto spec = middlefl::core::make_algorithm(Algorithm::kMiddle);
  spec.on_move = middlefl::core::OnDeviceRule::kFixedAlpha;
  spec.fixed_alpha = 0.7;
  auto mobility = std::make_unique<middlefl::mobility::MarkovMobility>(
      bundle.initial_edges, bundle.num_edges, bundle.mobility_p,
      bundle.seed + 1);
  const middlefl::optim::Sgd sgd({.learning_rate = 0.05, .momentum = 0.9});
  middlefl::core::Simulation sim(bundle.cfg, bundle.model_spec, sgd,
                                 bundle.train, bundle.partition, bundle.test,
                                 std::move(mobility), std::move(spec));
  sim.run();
  EXPECT_GT(sim.on_device_aggregations(), 0u);
  EXPECT_NEAR(sim.mean_blend_weight(), 0.3, 1e-9);  // 1 - alpha
}

}  // namespace
