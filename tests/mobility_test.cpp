#include <gtest/gtest.h>

#include <sstream>

#include "mobility/markov_mobility.hpp"
#include "mobility/mobility_model.hpp"
#include "mobility/random_waypoint.hpp"
#include "mobility/trace.hpp"

namespace {

using middlefl::mobility::MarkovMobility;
using middlefl::mobility::measure_mobility;
using middlefl::mobility::moved_devices;
using middlefl::mobility::RandomWaypointMobility;
using middlefl::mobility::record_trace;
using middlefl::mobility::Trace;
using middlefl::mobility::TraceMobility;
using middlefl::mobility::WaypointConfig;

std::vector<std::size_t> initial_assignment(std::size_t devices,
                                            std::size_t edges) {
  std::vector<std::size_t> a(devices);
  for (std::size_t m = 0; m < devices; ++m) a[m] = m % edges;
  return a;
}

TEST(MovedDevices, DetectsChanges) {
  EXPECT_EQ(moved_devices({0, 1, 2}, {0, 2, 2}), std::vector<std::size_t>{1});
  EXPECT_TRUE(moved_devices({0, 1}, {0, 1}).empty());
  EXPECT_THROW(moved_devices({0}, {0, 1}), std::invalid_argument);
}

TEST(Markov, ValidatesArguments) {
  EXPECT_THROW(MarkovMobility({0, 1}, 2, -0.1, 1), std::invalid_argument);
  EXPECT_THROW(MarkovMobility({0, 1}, 2, 1.5, 1), std::invalid_argument);
  EXPECT_THROW(MarkovMobility({0, 5}, 2, 0.5, 1), std::out_of_range);
  EXPECT_THROW(MarkovMobility({0, 1}, 0, 0.5, 1), std::invalid_argument);
}

TEST(Markov, ZeroMobilityNeverMoves) {
  MarkovMobility model(initial_assignment(20, 4), 4, 0.0, 7);
  const auto before = model.assignment();
  for (int t = 0; t < 50; ++t) model.advance();
  EXPECT_EQ(model.assignment(), before);
}

TEST(Markov, FullMobilityAlwaysMoves) {
  MarkovMobility model(initial_assignment(20, 4), 4, 1.0, 7);
  auto prev = model.assignment();
  for (int t = 0; t < 10; ++t) {
    model.advance();
    EXPECT_EQ(moved_devices(prev, model.assignment()).size(), 20u);
    prev = model.assignment();
  }
}

TEST(Markov, EmpiricalMobilityMatchesP) {
  for (double p : {0.1, 0.3, 0.5}) {
    MarkovMobility model(initial_assignment(100, 10), 10, p, 11);
    const double measured = measure_mobility(model, 500);
    EXPECT_NEAR(measured, p, 0.03) << "P = " << p;
  }
}

TEST(Markov, MovesGoToOtherEdges) {
  MarkovMobility model(initial_assignment(50, 5), 5, 1.0, 3);
  auto prev = model.assignment();
  model.advance();
  const auto& cur = model.assignment();
  for (std::size_t m = 0; m < 50; ++m) EXPECT_NE(prev[m], cur[m]);
}

TEST(Markov, SingleEdgeIsStationary) {
  MarkovMobility model(std::vector<std::size_t>(10, 0), 1, 1.0, 3);
  model.advance();
  for (std::size_t e : model.assignment()) EXPECT_EQ(e, 0u);
}

TEST(Markov, ResetRestoresInitialState) {
  const auto init = initial_assignment(30, 3);
  MarkovMobility model(init, 3, 0.5, 9);
  for (int t = 0; t < 20; ++t) model.advance();
  model.reset();
  EXPECT_EQ(model.assignment(), init);
  EXPECT_EQ(model.step(), 0u);
}

TEST(Markov, DeterministicReplay) {
  MarkovMobility a(initial_assignment(40, 4), 4, 0.4, 13);
  MarkovMobility b(initial_assignment(40, 4), 4, 0.4, 13);
  for (int t = 0; t < 30; ++t) {
    a.advance();
    b.advance();
    EXPECT_EQ(a.assignment(), b.assignment());
  }
}

TEST(Markov, HeterogeneousProbabilities) {
  std::vector<double> probs(10, 0.0);
  probs[0] = 1.0;  // only device 0 moves
  MarkovMobility model(initial_assignment(10, 3), 3, probs, 5);
  EXPECT_NEAR(model.global_mobility(), 0.1, 1e-12);
  auto prev = model.assignment();
  model.advance();
  const auto moved = moved_devices(prev, model.assignment());
  ASSERT_EQ(moved.size(), 1u);
  EXPECT_EQ(moved[0], 0u);
}

// --- Random waypoint ---

TEST(Waypoint, PartitionsDevicesAmongEdges) {
  WaypointConfig cfg;
  cfg.num_devices = 50;
  cfg.num_edges = 9;
  RandomWaypointMobility model(cfg);
  EXPECT_EQ(model.assignment().size(), 50u);
  for (std::size_t e : model.assignment()) EXPECT_LT(e, 9u);
}

TEST(Waypoint, NearestEdgeIsActuallyNearest) {
  WaypointConfig cfg;
  cfg.num_devices = 20;
  cfg.num_edges = 4;
  RandomWaypointMobility model(cfg);
  for (std::size_t m = 0; m < 20; ++m) {
    const auto p = model.device_position(m);
    const std::size_t assigned = model.assignment()[m];
    const auto ae = model.edge_position(assigned);
    const double assigned_d2 = (p.x - ae.x) * (p.x - ae.x) +
                               (p.y - ae.y) * (p.y - ae.y);
    for (std::size_t e = 0; e < 4; ++e) {
      const auto ep = model.edge_position(e);
      const double d2 =
          (p.x - ep.x) * (p.x - ep.x) + (p.y - ep.y) * (p.y - ep.y);
      EXPECT_GE(d2 + 1e-9, assigned_d2);
    }
  }
}

TEST(Waypoint, DevicesStayInBounds) {
  WaypointConfig cfg;
  cfg.num_devices = 30;
  cfg.num_edges = 4;
  cfg.speed_max = 200.0;
  RandomWaypointMobility model(cfg);
  for (int t = 0; t < 100; ++t) {
    model.advance();
    for (std::size_t m = 0; m < 30; ++m) {
      const auto p = model.device_position(m);
      EXPECT_GE(p.x, 0.0);
      EXPECT_LE(p.x, cfg.width);
      EXPECT_GE(p.y, 0.0);
      EXPECT_LE(p.y, cfg.height);
    }
  }
}

TEST(Waypoint, FasterSpeedMeansMoreMobility) {
  WaypointConfig slow;
  slow.num_devices = 60;
  slow.num_edges = 9;
  slow.speed_min = slow.speed_max = 5.0;
  WaypointConfig fast = slow;
  fast.speed_min = fast.speed_max = 150.0;
  RandomWaypointMobility slow_model(slow);
  RandomWaypointMobility fast_model(fast);
  EXPECT_LT(measure_mobility(slow_model, 200),
            measure_mobility(fast_model, 200));
}

TEST(Waypoint, CalibrationHitsTarget) {
  WaypointConfig cfg;
  cfg.num_devices = 60;
  cfg.num_edges = 9;
  const auto calibrated = middlefl::mobility::calibrate_speed(cfg, 0.3, 150);
  RandomWaypointMobility model(calibrated);
  EXPECT_NEAR(measure_mobility(model, 300), 0.3, 0.08);
}

TEST(Waypoint, ResetIsDeterministic) {
  WaypointConfig cfg;
  cfg.num_devices = 25;
  cfg.num_edges = 4;
  RandomWaypointMobility model(cfg);
  std::vector<std::vector<std::size_t>> first_run;
  for (int t = 0; t < 10; ++t) {
    model.advance();
    first_run.push_back(model.assignment());
  }
  model.reset();
  for (int t = 0; t < 10; ++t) {
    model.advance();
    EXPECT_EQ(model.assignment(), first_run[t]);
  }
}

// --- Traces ---

TEST(Trace, RecordAndReplayMatchesSource) {
  MarkovMobility source(initial_assignment(15, 3), 3, 0.5, 21);
  const Trace trace = record_trace(source, 25);
  EXPECT_EQ(trace.num_steps(), 26u);

  TraceMobility replay(trace);
  source.reset();
  EXPECT_EQ(replay.assignment(), source.assignment());
  for (int t = 0; t < 25; ++t) {
    source.advance();
    replay.advance();
    EXPECT_EQ(replay.assignment(), source.assignment());
  }
}

TEST(Trace, ReplayHoldsLastAssignmentPastEnd) {
  MarkovMobility source(initial_assignment(5, 2), 2, 0.5, 22);
  const Trace trace = record_trace(source, 3);
  TraceMobility replay(trace);
  for (int t = 0; t < 10; ++t) replay.advance();
  std::size_t last = trace.num_steps() - 1;
  for (std::size_t m = 0; m < 5; ++m) {
    EXPECT_EQ(replay.assignment()[m], trace.edge_at(last, m));
  }
}

TEST(Trace, SaveLoadRoundTrip) {
  MarkovMobility source(initial_assignment(8, 4), 4, 0.7, 23);
  const Trace trace = record_trace(source, 12);
  std::stringstream buffer;
  trace.save(buffer);
  const Trace loaded = Trace::load(buffer);
  EXPECT_EQ(loaded.num_devices(), trace.num_devices());
  EXPECT_EQ(loaded.num_edges(), trace.num_edges());
  EXPECT_EQ(loaded.num_steps(), trace.num_steps());
  for (std::size_t t = 0; t < trace.num_steps(); ++t) {
    for (std::size_t m = 0; m < trace.num_devices(); ++m) {
      EXPECT_EQ(loaded.edge_at(t, m), trace.edge_at(t, m));
    }
  }
}

TEST(Trace, LoadRejectsMalformedInput) {
  std::stringstream empty;
  EXPECT_THROW(Trace::load(empty), std::runtime_error);
  std::stringstream bad_header("not a header\n");
  EXPECT_THROW(Trace::load(bad_header), std::runtime_error);
  std::stringstream truncated(
      "# middlefl-trace v1 devices=2 edges=2 steps=2\n0 0 0\n");
  EXPECT_THROW(Trace::load(truncated), std::runtime_error);
}

TEST(Trace, AppendValidates) {
  Trace trace(3, 2);
  EXPECT_THROW(trace.append({0, 1}), std::invalid_argument);
  EXPECT_THROW(trace.append({0, 1, 5}), std::out_of_range);
  EXPECT_NO_THROW(trace.append({0, 1, 1}));
  EXPECT_THROW(trace.edge_at(1, 0), std::out_of_range);
}

TEST(MeasureMobility, ZeroStepsIsZero) {
  MarkovMobility model(initial_assignment(5, 2), 2, 0.5, 1);
  EXPECT_EQ(measure_mobility(model, 0), 0.0);
}

// --- Move topologies (locality) ---

using middlefl::mobility::MoveTopology;

TEST(MarkovTopology, DefaultIsUniform) {
  MarkovMobility model(initial_assignment(10, 4), 4, 0.5, 31);
  EXPECT_EQ(model.topology(), MoveTopology::kUniform);
}

TEST(MarkovTopology, SetTopologyValidatesHomeBias) {
  MarkovMobility model(initial_assignment(10, 4), 4, 0.5, 31);
  EXPECT_THROW(model.set_topology(MoveTopology::kHomeRing, -0.1),
               std::invalid_argument);
  EXPECT_THROW(model.set_topology(MoveTopology::kHomeRing, 1.1),
               std::invalid_argument);
  EXPECT_NO_THROW(model.set_topology(MoveTopology::kHomeRing, 0.5));
  EXPECT_EQ(model.topology(), MoveTopology::kHomeRing);
}

TEST(MarkovTopology, RingOnlyMovesToAdjacentEdges) {
  constexpr std::size_t kEdges = 6;
  MarkovMobility model(initial_assignment(60, kEdges), kEdges, 1.0, 33);
  model.set_topology(MoveTopology::kRing);
  auto prev = model.assignment();
  for (int t = 0; t < 20; ++t) {
    model.advance();
    const auto& cur = model.assignment();
    for (std::size_t m = 0; m < cur.size(); ++m) {
      const std::size_t up = (prev[m] + 1) % kEdges;
      const std::size_t down = (prev[m] + kEdges - 1) % kEdges;
      EXPECT_TRUE(cur[m] == up || cur[m] == down)
          << "device " << m << " jumped " << prev[m] << " -> " << cur[m];
    }
    prev = cur;
  }
}

TEST(MarkovTopology, RingPreservesEmpiricalP) {
  MarkovMobility model(initial_assignment(100, 8), 8, 0.3, 35);
  model.set_topology(MoveTopology::kRing);
  EXPECT_NEAR(measure_mobility(model, 400), 0.3, 0.03);
}

TEST(MarkovTopology, HomeRingPreservesEmpiricalP) {
  MarkovMobility model(initial_assignment(100, 8), 8, 0.5, 36);
  model.set_topology(MoveTopology::kHomeRing, 0.5);
  EXPECT_NEAR(measure_mobility(model, 400), 0.5, 0.03);
}

TEST(MarkovTopology, HomeRingRetainsPopulationsBetterThanUniform) {
  // The property that motivates the topology: with home bias, devices stay
  // correlated with their home edge far longer than under uniform jumps.
  const auto retention = [](MoveTopology topology) {
    MarkovMobility model(initial_assignment(200, 10), 10, 0.5, 37);
    model.set_topology(topology, 0.6);
    const auto initial = model.assignment();
    std::size_t at_home = 0, samples = 0;
    for (int t = 0; t < 100; ++t) {
      model.advance();
      if (t < 20) continue;  // past the transient
      for (std::size_t m = 0; m < initial.size(); ++m) {
        if (model.assignment()[m] == initial[m]) ++at_home;
        ++samples;
      }
    }
    return static_cast<double>(at_home) / static_cast<double>(samples);
  };
  const double uniform = retention(MoveTopology::kUniform);
  const double home = retention(MoveTopology::kHomeRing);
  EXPECT_NEAR(uniform, 0.1, 0.03);  // 1/num_edges: fully mixed
  EXPECT_GT(home, uniform + 0.15);  // strong home correlation persists
}

TEST(MarkovTopology, HomeBiasOneSnapsBackImmediately) {
  MarkovMobility model(initial_assignment(50, 5), 5, 1.0, 38);
  model.set_topology(MoveTopology::kHomeRing, 1.0);
  const auto initial = model.assignment();
  model.advance();  // everyone moves off home (they are at home: ring move)
  model.advance();  // every away device returns home
  // After two steps with P=1 and bias 1: devices alternate home/away; at
  // even steps they are home again.
  EXPECT_EQ(model.assignment(), initial);
}

}  // namespace
