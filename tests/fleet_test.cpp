// Lazy device state (core/fleet.hpp): at-rest codec round-trips, bitwise
// lazy/eager parity of whole simulations, and DeviceRegistry invariants
// under id churn.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <numeric>
#include <span>
#include <vector>

#include "core/fleet.hpp"
#include "core/simulation.hpp"
#include "data/partition.hpp"
#include "nn/model_factory.hpp"
#include "optim/sgd.hpp"
#include "parallel/rng.hpp"
#include "sim_fixture.hpp"
#include "transport/compression.hpp"

namespace {

using middlefl::core::Device;
using middlefl::core::DeviceRegistry;
using middlefl::core::FleetConfig;
using middlefl::core::Snapshot;
using middlefl::core::SnapshotStore;
using middlefl::testing::SimBundle;
using middlefl::transport::CompressionConfig;
using middlefl::transport::CompressionKind;
using middlefl::transport::EncodedDelta;

std::vector<float> ramp(std::size_t n, float scale) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = scale * std::sin(0.37f * static_cast<float>(i + 1));
  }
  return v;
}

// ---------------------------------------------------------------------------
// At-rest codec round-trips

TEST(AtRestCodec, LosslessRoundTripsBitwise) {
  const std::vector<float> w = ramp(257, 2.5f);
  EncodedDelta delta;
  middlefl::transport::encode_delta(w, CompressionConfig{}, delta);
  EXPECT_EQ(delta.bytes(), 4 * w.size());

  std::vector<float> out(w.size(), -1.0f);
  middlefl::transport::decode_delta_into(delta, out);
  EXPECT_EQ(std::memcmp(out.data(), w.data(), w.size() * sizeof(float)), 0);

  // decode_delta_onto with kNone installs verbatim too — the base must not
  // perturb the lossless path (base + (w - base) != w in float).
  const std::vector<float> base = ramp(257, 1.0f);
  std::vector<float> onto(w.size(), -1.0f);
  middlefl::transport::decode_delta_onto(delta, base, onto);
  EXPECT_EQ(std::memcmp(onto.data(), w.data(), w.size() * sizeof(float)), 0);
}

TEST(AtRestCodec, Quant8AccumulateDecodeStaysInBounds) {
  // Simulate the settle cycle: w diverges from base, the divergence is
  // quantized at rest, and decode reconstructs base + recon. The error per
  // coordinate is bounded by half a quantization bucket.
  const std::vector<float> base = ramp(500, 1.0f);
  std::vector<float> w = base;
  middlefl::parallel::Xoshiro256 rng(7);
  float max_mag = 0.0f;
  for (std::size_t i = 0; i < w.size(); ++i) {
    const auto nudge = static_cast<float>(rng.uniform() - 0.5) * 0.2f;
    w[i] += nudge;
    max_mag = std::max(max_mag, std::abs(nudge));
  }

  std::vector<float> diff(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) diff[i] = w[i] - base[i];
  EncodedDelta delta;
  middlefl::transport::encode_delta(
      diff, CompressionConfig{.kind = CompressionKind::kQuant8}, delta);
  EXPECT_EQ(delta.bytes(), w.size() + 4);
  EXPECT_GT(delta.scale, 0.0f);

  std::vector<float> out(w.size());
  middlefl::transport::decode_delta_onto(delta, base, out);
  const float bound = max_mag / 127.0f;  // scale = max|d|/127, error <= scale
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(out[i], w[i], bound) << "coordinate " << i;
  }
}

TEST(AtRestCodec, TopKDecodePatchesExactlyKCoordinates) {
  const std::vector<float> base = ramp(200, 1.0f);
  std::vector<float> diff(base.size(), 0.0f);
  // A sparse divergence: 10 touched coordinates with distinct magnitudes.
  for (std::size_t i = 0; i < 10; ++i) {
    diff[i * 17] = (i % 2 == 0 ? 1.0f : -1.0f) * static_cast<float>(i + 1);
  }
  EncodedDelta delta;
  middlefl::transport::encode_delta(
      diff,
      CompressionConfig{.kind = CompressionKind::kTopK,
                        .top_k_fraction = 0.05},
      delta);
  const std::size_t k = delta.indices.size();
  EXPECT_EQ(k, 10u);  // 5% of 200
  EXPECT_EQ(delta.bytes(), 8 * k);
  EXPECT_TRUE(std::is_sorted(delta.indices.begin(), delta.indices.end()));

  std::vector<float> out(base.size());
  middlefl::transport::decode_delta_onto(delta, base, out);
  std::size_t patched = 0;
  for (std::size_t i = 0; i < base.size(); ++i) {
    if (out[i] != base[i]) {
      ++patched;
      EXPECT_EQ(out[i], base[i] + diff[i]) << "coordinate " << i;
    }
  }
  EXPECT_LE(patched, k);
}

// ---------------------------------------------------------------------------
// Lazy vs eager whole-simulation parity

std::uint64_t fnv1a(std::span<const float> data) {
  const auto* p = reinterpret_cast<const unsigned char*>(data.data());
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < data.size() * sizeof(float); ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

struct RunFingerprint {
  std::uint64_t cloud = 0;
  std::vector<std::uint64_t> devices;
  std::vector<double> accuracies;
};

RunFingerprint run_bundle(bool lazy, middlefl::core::Algorithm algorithm) {
  SimBundle bundle;
  bundle.cfg.fleet.lazy_devices = lazy;
  auto sim = bundle.make(algorithm);
  const middlefl::core::RunHistory history = sim->run();
  RunFingerprint fp;
  fp.cloud = fnv1a(sim->cloud_params());
  for (std::size_t m = 0; m < sim->num_devices(); ++m) {
    fp.devices.push_back(fnv1a(sim->device(m).params()));
  }
  for (const auto& point : history.points) {
    fp.accuracies.push_back(point.accuracy);
  }
  return fp;
}

TEST(LazyEagerParity, MiddleRunsAreBitwiseIdentical) {
  const RunFingerprint lazy = run_bundle(true, middlefl::core::Algorithm::kMiddle);
  const RunFingerprint eager =
      run_bundle(false, middlefl::core::Algorithm::kMiddle);
  EXPECT_EQ(lazy.cloud, eager.cloud);
  EXPECT_EQ(lazy.devices, eager.devices);
  EXPECT_EQ(lazy.accuracies, eager.accuracies);
}

TEST(LazyEagerParity, FedMesRunsAreBitwiseIdentical) {
  // Random selection takes the no-params selection path for lazy devices;
  // the float stream must still match the eager run exactly.
  const RunFingerprint lazy = run_bundle(true, middlefl::core::Algorithm::kFedMes);
  const RunFingerprint eager =
      run_bundle(false, middlefl::core::Algorithm::kFedMes);
  EXPECT_EQ(lazy.cloud, eager.cloud);
  EXPECT_EQ(lazy.devices, eager.devices);
  EXPECT_EQ(lazy.accuracies, eager.accuracies);
}

TEST(LazyEagerParity, QuantizedAtRestStaysCloseToLossless) {
  SimBundle bundle;
  bundle.cfg.fleet.lazy_devices = true;
  bundle.cfg.fleet.at_rest.kind = CompressionKind::kQuant8;
  auto sim = bundle.make(middlefl::core::Algorithm::kMiddle);
  const middlefl::core::RunHistory history = sim->run();
  ASSERT_FALSE(history.points.empty());
  // The lossy at-rest codec must not derail training: the run completes
  // and the final model is finite everywhere.
  for (const float v : sim->cloud_params()) {
    EXPECT_TRUE(std::isfinite(v));
  }
  std::size_t at_rest = 0;
  for (std::size_t m = 0; m < sim->num_devices(); ++m) {
    at_rest += sim->device(m).at_rest_bytes();
  }
  // Quantized storage: at most ~1 byte per parameter per settled device.
  EXPECT_LE(at_rest, sim->num_devices() * (sim->cloud_params().size() + 4));
}

TEST(LazyEagerParity, FleetAccountingTracksSelection) {
  SimBundle bundle;
  bundle.cfg.fleet.lazy_devices = true;
  auto sim = bundle.make(middlefl::core::Algorithm::kFedMes);
  sim->step();
  // K=2 over 3 edges: at most 6 selected devices materialize in step 1
  // (fewer when an edge has < K members).
  const auto& fleet = sim->fleet();
  EXPECT_GT(fleet.materializations(), 0u);
  EXPECT_LE(fleet.materializations(), 6u);
  // Every chain settles its members after aggregation: nothing stays
  // resident between steps.
  EXPECT_EQ(fleet.resident_devices(), 0u);
  EXPECT_GT(fleet.delta_bytes_at_rest(), 0u);
}

// ---------------------------------------------------------------------------
// Registry invariants under churned ids

middlefl::data::Dataset& shared_data() {
  static middlefl::data::Dataset data = SimBundle::make_data(4, 30, 3);
  return data;
}

Device make_lazy(std::size_t id, const Snapshot& base,
                 DeviceRegistry* registry) {
  return Device(id, middlefl::data::DataView::window(shared_data(), 0, 8),
                base, registry);
}

TEST(RegistryChurn, InsertEraseReinsertKeepsLookupsExact) {
  DeviceRegistry registry;
  registry.configure(FleetConfig{.shards = 4});
  const std::vector<float> init(64, 0.25f);
  const Snapshot base = SnapshotStore::global().publish(init);

  // Sparse, shard-colliding ids well past the dense fast path, plus a few
  // sequential ones.
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < 64; ++i) ids.push_back(i);
  for (std::size_t i = 0; i < 64; ++i) ids.push_back((i + 1) * 0x10000021);
  for (const std::size_t id : ids) {
    registry.insert(make_lazy(id, base, &registry));
  }
  EXPECT_EQ(registry.size(), ids.size());
  EXPECT_THROW(registry.insert(make_lazy(ids[7], base, &registry)),
               std::invalid_argument);

  // Erase every third id, confirm the others still resolve.
  std::size_t erased = 0;
  for (std::size_t i = 0; i < ids.size(); i += 3) {
    EXPECT_TRUE(registry.erase(ids[i]));
    ++erased;
  }
  EXPECT_EQ(registry.size(), ids.size() - erased);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i % 3 == 0) {
      EXPECT_EQ(registry.find(ids[i]), nullptr) << "id " << ids[i];
      EXPECT_FALSE(registry.erase(ids[i]));
    } else {
      const Device* device = registry.find(ids[i]);
      ASSERT_NE(device, nullptr) << "id " << ids[i];
      EXPECT_EQ(device->id(), ids[i]);
    }
  }

  // Reinsert over the tombstones: recycled slots must key correctly.
  for (std::size_t i = 0; i < ids.size(); i += 3) {
    registry.insert(make_lazy(ids[i], base, &registry));
  }
  EXPECT_EQ(registry.size(), ids.size());
  for (const std::size_t id : ids) {
    EXPECT_EQ(registry.at(id).id(), id);
  }
  EXPECT_THROW(registry.at(0xdeadbeefULL), std::out_of_range);
}

TEST(RegistryChurn, ShardAssignmentIsStableAndMasked) {
  DeviceRegistry registry;
  registry.configure(FleetConfig{.shards = 8});
  EXPECT_EQ(registry.num_shards(), 8u);
  for (std::size_t id = 0; id < 4096; ++id) {
    const std::size_t shard = registry.shard_of(id);
    EXPECT_LT(shard, registry.num_shards());
    EXPECT_EQ(shard, registry.shard_of(id));  // deterministic
  }
  // configure() is construction-time only.
  const std::vector<float> init(8, 0.0f);
  const Snapshot base = SnapshotStore::global().publish(init);
  registry.insert(make_lazy(1, base, &registry));
  EXPECT_THROW(registry.configure(FleetConfig{}), std::logic_error);
}

TEST(RegistryChurn, ResidentFreelistRecyclesBuffers) {
  DeviceRegistry registry;
  registry.configure(FleetConfig{});
  const std::vector<float> init(32, 1.0f);
  const Snapshot base = SnapshotStore::global().publish(init);
  registry.insert(make_lazy(5, base, &registry));

  middlefl::tensor::Tensor a = registry.acquire_resident(5);
  EXPECT_EQ(registry.materializations(), 1u);
  EXPECT_EQ(registry.resident_devices(), 1u);
  const float* raw = a.data().data();
  registry.release_resident(5, std::move(a));
  EXPECT_EQ(registry.resident_devices(), 0u);

  // Same shard, same buffer back.
  middlefl::tensor::Tensor b = registry.acquire_resident(5);
  EXPECT_EQ(registry.materializations(), 2u);
  EXPECT_EQ(b.data().data(), raw);
  registry.release_resident(5, std::move(b));
}

}  // namespace
