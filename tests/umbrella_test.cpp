// Compilation + smoke test of the umbrella header: one end-to-end run that
// only includes <middlefl.hpp>, combining several extension features at
// once (compression + proximal training + failure injection + server
// momentum + heterogeneity) to guard against config interactions.
#include <gtest/gtest.h>

#include "middlefl.hpp"

namespace {

using namespace middlefl;

TEST(Umbrella, EverythingCombinedStillTrainsDeterministically) {
  data::SyntheticConfig dcfg;
  dcfg.num_classes = 4;
  dcfg.height = 6;
  dcfg.width = 6;
  const data::SyntheticGenerator generator(dcfg);
  const auto train = generator.generate(40, 1);
  const auto test = generator.generate(20, 2);
  const auto partition = data::partition_major_class(train, 12, 50, 0.85, 3);
  const auto homes = data::assign_edges_by_major_class(partition, 3, 4);

  nn::ModelSpec spec;
  spec.arch = nn::ModelArch::kMlp;
  spec.input_shape = tensor::Shape{1, 6, 6};
  spec.num_classes = 4;
  spec.hidden = 16;

  core::SimulationConfig cfg;
  cfg.select_per_edge = 2;
  cfg.local_steps = 4;
  cfg.cloud_interval = 5;
  cfg.batch_size = 8;
  cfg.total_steps = 25;
  cfg.eval_every = 5;
  cfg.seed = 11;
  // Every extension at once.
  cfg.prox_mu = 0.05;
  cfg.server_momentum = 0.3;
  cfg.upload_failure_prob = 0.1;
  cfg.upload_compression = {core::CompressionKind::kTopK, 0.25};
  cfg.round_deadline = 4.0;
  cfg.device_speeds.assign(12, 1.0);
  cfg.device_speeds[3] = 0.5;   // half budget
  cfg.device_speeds[7] = 0.01;  // permanent straggler

  const auto run_once = [&]() {
    auto mobility = std::make_unique<mobility::MarkovMobility>(
        homes, 3, 0.5, 12);
    mobility->set_topology(mobility::MoveTopology::kHomeRing, 0.5);
    const optim::Sgd sgd({.learning_rate = 0.05, .momentum = 0.9});
    core::Simulation sim(cfg, spec, sgd, train, partition, test,
                         std::move(mobility),
                         core::make_algorithm(core::Algorithm::kMiddle));
    auto history = sim.run();
    return std::make_pair(std::move(history), sim.straggler_drops());
  };

  const auto [h1, stragglers1] = run_once();
  const auto [h2, stragglers2] = run_once();

  // Deterministic even with every stochastic feature active.
  ASSERT_EQ(h1.points.size(), h2.points.size());
  for (std::size_t i = 0; i < h1.points.size(); ++i) {
    EXPECT_EQ(h1.points[i].accuracy, h2.points[i].accuracy);
  }
  // Still learns (chance = 0.25) and the heterogeneity bit.
  EXPECT_GT(h1.best_accuracy(), 0.3);
  EXPECT_GT(stragglers1, 0u);
  EXPECT_EQ(stragglers1, stragglers2);
  for (const auto& point : h1.points) {
    EXPECT_TRUE(std::isfinite(point.loss));
  }
}

TEST(Umbrella, CheckpointRoundTripsThroughUmbrellaApi) {
  nn::ModelSpec spec;
  spec.arch = nn::ModelArch::kLogistic;
  spec.input_shape = tensor::Shape{8};
  spec.num_classes = 3;
  auto model = nn::build_model(spec, 5);
  std::stringstream buffer;
  nn::save_model(*model, buffer);
  auto restored = nn::build_model(spec, 6);
  nn::load_model(*restored, buffer);
  EXPECT_NEAR(core::cosine_similarity(model->parameters(),
                                      restored->parameters()),
              1.0, 1e-12);
}

}  // namespace
