// Determinism pin: a simulation run must be bitwise identical whether
// device training / edge aggregation run on the thread pool or serially.
// This guards the whole deterministic-parallelism design — per-row gemm
// independence, fixed-chunk reductions, per-task result slots reduced in
// task order — against regressions that would make results depend on
// thread count or scheduling.
#include <gtest/gtest.h>

#include <cstddef>
#include <functional>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "sim_fixture.hpp"

namespace {

using middlefl::core::Algorithm;
using middlefl::core::RunHistory;
using middlefl::core::Simulation;
using middlefl::testing::SimBundle;

void expect_spans_equal(std::span<const float> a, std::span<const float> b,
                        const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << what << " element " << i;
  }
}

void expect_identical_runs(
    Algorithm algorithm,
    const std::function<void(middlefl::core::SimulationConfig&)>& tweak = {}) {
  SimBundle bundle;
  bundle.cfg.total_steps = 8;
  bundle.cfg.cloud_interval = 4;
  bundle.cfg.eval_every = 4;
  bundle.cfg.upload_failure_prob = 0.1;  // exercise the failure RNG path
  if (tweak) tweak(bundle.cfg);

  bundle.cfg.parallel_devices = false;
  auto serial = bundle.make(algorithm);
  bundle.cfg.parallel_devices = true;
  auto parallel = bundle.make(algorithm);

  const RunHistory history_serial = serial->run();
  const RunHistory history_parallel = parallel->run();

  ASSERT_EQ(history_serial.points.size(), history_parallel.points.size());
  for (std::size_t i = 0; i < history_serial.points.size(); ++i) {
    EXPECT_EQ(history_serial.points[i].accuracy,
              history_parallel.points[i].accuracy)
        << "eval point " << i;
    EXPECT_EQ(history_serial.points[i].loss, history_parallel.points[i].loss)
        << "eval point " << i;
  }

  expect_spans_equal(serial->cloud_params(), parallel->cloud_params(),
                     "cloud params");
  for (std::size_t n = 0; n < serial->num_edges(); ++n) {
    expect_spans_equal(serial->edge_params(n), parallel->edge_params(n),
                       "edge params");
  }
  for (std::size_t m = 0; m < serial->num_devices(); ++m) {
    expect_spans_equal(serial->device(m).params(),
                       parallel->device(m).params(), "device params");
  }

  // Serially-reduced counters from the parallel loops must agree too.
  EXPECT_EQ(serial->on_device_aggregations(),
            parallel->on_device_aggregations());
  EXPECT_EQ(serial->mean_blend_weight(), parallel->mean_blend_weight());
  EXPECT_EQ(serial->failed_uploads(), parallel->failed_uploads());
  EXPECT_EQ(serial->straggler_drops(), parallel->straggler_drops());
  EXPECT_EQ(serial->upload_bytes(), parallel->upload_bytes());

  // Per-link transport accounting (relaxed atomic counters in the parallel
  // stages) must also be scheduling-independent.
  for (const auto kind : middlefl::transport::kAllLinkKinds) {
    const auto s = serial->transport().stats(kind);
    const auto p = parallel->transport().stats(kind);
    EXPECT_EQ(s.transfers, p.transfers) << to_string(kind);
    EXPECT_EQ(s.dropped, p.dropped) << to_string(kind);
    EXPECT_EQ(s.bytes, p.bytes) << to_string(kind);
  }
}

TEST(Determinism, MiddleParallelMatchesSerialBitwise) {
  expect_identical_runs(Algorithm::kMiddle);
}

TEST(Determinism, HierFavgParallelMatchesSerialBitwise) {
  expect_identical_runs(Algorithm::kHierFavg);
}

TEST(Determinism, LossyTransportPoliciesParallelMatchesSerialBitwise) {
  // Loss on every link plus uplink compression: loss draws pull from
  // (seed, entity, step)-keyed streams inside parallel stage bodies, so
  // outcomes must not depend on scheduling.
  expect_identical_runs(Algorithm::kMiddle,
                        [](middlefl::core::SimulationConfig& cfg) {
                          // The uplink loss is set through the transport
                          // view here; clear the fixture's legacy alias —
                          // conflicting views are a hard error now.
                          cfg.upload_failure_prob = 0.0;
                          auto& tp = cfg.transport;
                          tp.wireless_down.loss_prob = 0.2;
                          tp.wireless_up.loss_prob = 0.15;
                          tp.wireless_up.compression = {
                              middlefl::transport::CompressionKind::kTopK,
                              0.25};
                          tp.wan_up.loss_prob = 0.1;
                          tp.wan_down.loss_prob = 0.1;
                          tp.broadcast.loss_prob = 0.1;
                        });
}

TEST(Determinism, UplinkLatencyParallelMatchesSerialBitwise) {
  // Delayed uploads enqueue into per-edge delay-queue shards from the
  // parallel Upload stage and drain FIFO; arrival order must be fixed.
  expect_identical_runs(Algorithm::kMiddle,
                        [](middlefl::core::SimulationConfig& cfg) {
                          cfg.transport.wireless_up.latency_steps = 2;
                          cfg.transport.wan_up.latency_steps = 4;
                        });
}

TEST(Determinism, TaskGraphIdenticalAcrossPoolSizes) {
  // The per-edge task-graph scheduler must produce the serial result at
  // every worker count: chains of different edges interleave arbitrarily,
  // but all cross-chain reductions replay in canonical edge order.
  SimBundle bundle;
  bundle.cfg.total_steps = 8;
  bundle.cfg.cloud_interval = 4;
  bundle.cfg.eval_every = 4;
  bundle.cfg.upload_failure_prob = 0.1;
  bundle.cfg.transport.wireless_down.loss_prob = 0.2;

  bundle.cfg.parallel_devices = false;
  auto serial = bundle.make(Algorithm::kMiddle);
  const RunHistory reference = serial->run();

  for (const std::size_t threads : {1u, 2u, 8u}) {
    middlefl::parallel::ThreadPool pool(threads);
    bundle.cfg.parallel_devices = true;
    bundle.cfg.pool = &pool;
    auto sim = bundle.make(Algorithm::kMiddle);
    const RunHistory history = sim->run();

    ASSERT_EQ(reference.points.size(), history.points.size())
        << threads << " threads";
    for (std::size_t i = 0; i < reference.points.size(); ++i) {
      EXPECT_EQ(reference.points[i].accuracy, history.points[i].accuracy)
          << threads << " threads, eval point " << i;
      EXPECT_EQ(reference.points[i].loss, history.points[i].loss)
          << threads << " threads, eval point " << i;
    }
    expect_spans_equal(serial->cloud_params(), sim->cloud_params(),
                       "cloud params");
    for (std::size_t n = 0; n < serial->num_edges(); ++n) {
      expect_spans_equal(serial->edge_params(n), sim->edge_params(n),
                         "edge params");
    }
    for (std::size_t m = 0; m < serial->num_devices(); ++m) {
      expect_spans_equal(serial->device(m).params(), sim->device(m).params(),
                         "device params");
    }
    EXPECT_EQ(serial->mean_blend_weight(), sim->mean_blend_weight())
        << threads << " threads";
    EXPECT_EQ(serial->lost_downloads(), sim->lost_downloads())
        << threads << " threads";
  }
}

TEST(Determinism, RepeatedRunsAreBitwiseIdentical) {
  // Same config, same seed, two fresh simulations: identical histories.
  SimBundle bundle;
  bundle.cfg.total_steps = 6;
  bundle.cfg.eval_every = 3;
  auto first = bundle.make(Algorithm::kMiddle);
  auto second = bundle.make(Algorithm::kMiddle);
  const RunHistory h1 = first->run();
  const RunHistory h2 = second->run();
  ASSERT_EQ(h1.points.size(), h2.points.size());
  for (std::size_t i = 0; i < h1.points.size(); ++i) {
    EXPECT_EQ(h1.points[i].accuracy, h2.points[i].accuracy);
    EXPECT_EQ(h1.points[i].loss, h2.points[i].loss);
  }
  expect_spans_equal(first->cloud_params(), second->cloud_params(),
                     "cloud params");
}

}  // namespace
