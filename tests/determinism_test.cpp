// Determinism pin: a simulation run must be bitwise identical whether
// device training / edge aggregation run on the thread pool or serially.
// This guards the whole deterministic-parallelism design — per-row gemm
// independence, fixed-chunk reductions, per-task result slots reduced in
// task order — against regressions that would make results depend on
// thread count or scheduling.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "sim_fixture.hpp"

namespace {

using middlefl::core::Algorithm;
using middlefl::core::RunHistory;
using middlefl::core::Simulation;
using middlefl::testing::SimBundle;

void expect_spans_equal(std::span<const float> a, std::span<const float> b,
                        const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << what << " element " << i;
  }
}

void expect_identical_runs(Algorithm algorithm) {
  SimBundle bundle;
  bundle.cfg.total_steps = 8;
  bundle.cfg.cloud_interval = 4;
  bundle.cfg.eval_every = 4;
  bundle.cfg.upload_failure_prob = 0.1;  // exercise the failure RNG path

  bundle.cfg.parallel_devices = false;
  auto serial = bundle.make(algorithm);
  bundle.cfg.parallel_devices = true;
  auto parallel = bundle.make(algorithm);

  const RunHistory history_serial = serial->run();
  const RunHistory history_parallel = parallel->run();

  ASSERT_EQ(history_serial.points.size(), history_parallel.points.size());
  for (std::size_t i = 0; i < history_serial.points.size(); ++i) {
    EXPECT_EQ(history_serial.points[i].accuracy,
              history_parallel.points[i].accuracy)
        << "eval point " << i;
    EXPECT_EQ(history_serial.points[i].loss, history_parallel.points[i].loss)
        << "eval point " << i;
  }

  expect_spans_equal(serial->cloud_params(), parallel->cloud_params(),
                     "cloud params");
  for (std::size_t n = 0; n < serial->num_edges(); ++n) {
    expect_spans_equal(serial->edge_params(n), parallel->edge_params(n),
                       "edge params");
  }
  for (std::size_t m = 0; m < serial->num_devices(); ++m) {
    expect_spans_equal(serial->device(m).params(),
                       parallel->device(m).params(), "device params");
  }

  // Serially-reduced counters from the parallel loops must agree too.
  EXPECT_EQ(serial->on_device_aggregations(),
            parallel->on_device_aggregations());
  EXPECT_EQ(serial->mean_blend_weight(), parallel->mean_blend_weight());
  EXPECT_EQ(serial->failed_uploads(), parallel->failed_uploads());
  EXPECT_EQ(serial->straggler_drops(), parallel->straggler_drops());
  EXPECT_EQ(serial->upload_bytes(), parallel->upload_bytes());
}

TEST(Determinism, MiddleParallelMatchesSerialBitwise) {
  expect_identical_runs(Algorithm::kMiddle);
}

TEST(Determinism, HierFavgParallelMatchesSerialBitwise) {
  expect_identical_runs(Algorithm::kHierFavg);
}

TEST(Determinism, RepeatedRunsAreBitwiseIdentical) {
  // Same config, same seed, two fresh simulations: identical histories.
  SimBundle bundle;
  bundle.cfg.total_steps = 6;
  bundle.cfg.eval_every = 3;
  auto first = bundle.make(Algorithm::kMiddle);
  auto second = bundle.make(Algorithm::kMiddle);
  const RunHistory h1 = first->run();
  const RunHistory h2 = second->run();
  ASSERT_EQ(h1.points.size(), h2.points.size());
  for (std::size_t i = 0; i < h1.points.size(); ++i) {
    EXPECT_EQ(h1.points[i].accuracy, h2.points[i].accuracy);
    EXPECT_EQ(h1.points[i].loss, h2.points[i].loss);
  }
  expect_spans_equal(first->cloud_params(), second->cloud_params(),
                     "cloud params");
}

}  // namespace
