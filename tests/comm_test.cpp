// Collectives-layer tests (src/comm/).
//
// CommReducer — the element-block tree-reduction determinism contract:
//   bitwise equality with the serial fixed-order loop at any pool size,
//   for odd/prime participant counts and sizes spanning the block
//   boundary, plus the fixed schedule shape and input validation.
// CommMailbox — the per-edge publish slot semantics.
// CommPipeline — the full simulation pipeline (both aggregation sites now
//   routed through comm::Communicator) stays bitwise identical across
//   pool sizes 1/2/8.
// CommAsync — the staleness-bounded semi-async cloud sync: bound=0 with
//   zero-latency links degenerates to the synchronous schedule bit for
//   bit, past-bound contributions are dropped+folded, results are
//   deterministic across pool sizes, the counters are reconstructible
//   from the StepObserver event stream, and the FedAvgM conflict is
//   rejected at construction.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/mailbox.hpp"
#include "parallel/thread_pool.hpp"
#include "sim_fixture.hpp"

namespace {

using middlefl::comm::CommCounters;
using middlefl::comm::Contribution;
using middlefl::comm::InProcessCommunicator;
using middlefl::comm::kReduceBlock;
using middlefl::comm::Mailbox;
using middlefl::comm::Reducer;
using middlefl::core::Algorithm;
using middlefl::core::RunHistory;
using middlefl::core::Simulation;
using middlefl::core::StepObserver;
using middlefl::core::StepPhase;
using middlefl::parallel::ThreadPool;
using middlefl::testing::SimBundle;
using middlefl::transport::LinkKind;
using middlefl::transport::LinkStats;

// ---------------------------------------------------------------------------
// CommReducer

/// Deterministic pseudo-random contribution data (no <random> so the
/// values are pinned across platforms).
std::vector<float> make_params(std::size_t n, std::uint64_t salt) {
  std::vector<float> v(n);
  std::uint64_t state = 0x9e3779b97f4a7c15ULL ^ (salt * 0xbf58476d1ce4e5b9ULL);
  for (std::size_t i = 0; i < n; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    // Map to roughly [-1, 1] with plenty of mantissa entropy.
    v[i] = static_cast<float>(static_cast<std::int64_t>(state >> 21)) *
           (1.0f / static_cast<float>(std::int64_t{1} << 42));
  }
  return v;
}

/// The historical serial fixed-order loop, written out independently of
/// the library code it validates.
std::vector<float> reference_average(
    const std::vector<std::vector<float>>& parts,
    const std::vector<double>& weights) {
  const std::size_t n = parts.front().size();
  double total = 0.0;
  for (const double w : weights) total += w;
  std::vector<float> out(n);
  std::vector<double> acc(n, 0.0);
  for (std::size_t k = 0; k < parts.size(); ++k) {
    const double w = weights[k] / total;
    if (w == 0.0) continue;
    for (std::size_t i = 0; i < n; ++i) {
      acc[i] += w * static_cast<double>(parts[k][i]);
    }
  }
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<float>(acc[i]);
  return out;
}

TEST(CommReducer, BitwiseMatchesSerialLoopAcrossPoolsAndShapes) {
  // Sizes straddle the block boundary (8192): below, exactly at, one
  // past (first 2-leaf tree), and a 5-leaf tree. Participant counts are
  // odd/prime-heavy so pairing logic never gets a round number.
  const std::size_t sizes[] = {100, kReduceBlock, kReduceBlock + 1, 40000};
  const std::size_t participant_counts[] = {1, 2, 3, 5, 7, 11, 13};
  ThreadPool pool2(2);
  ThreadPool pool8(8);
  ThreadPool* pools[] = {nullptr, &pool2, &pool8};

  for (const std::size_t n : sizes) {
    for (const std::size_t p : participant_counts) {
      std::vector<std::vector<float>> parts;
      std::vector<double> weights;
      std::vector<Contribution> contribs;
      for (std::size_t k = 0; k < p; ++k) {
        parts.push_back(make_params(n, k * 1000 + n));
        weights.push_back(static_cast<double>((k * 7) % 5 + 1));
      }
      for (std::size_t k = 0; k < p; ++k) {
        contribs.push_back(Contribution{parts[k], weights[k]});
      }
      const std::vector<float> expected = reference_average(parts, weights);

      for (ThreadPool* pool : pools) {
        SCOPED_TRACE(::testing::Message()
                     << "n=" << n << " p=" << p << " pool="
                     << (pool == nullptr ? 0 : pool->size()));
        Reducer reducer;
        std::vector<float> out(n, -1.0f);
        const Reducer::Plan ran = reducer.reduce(contribs, out, pool);
        ASSERT_EQ(0, std::memcmp(out.data(), expected.data(),
                                 n * sizeof(float)));
        if (pool != nullptr && pool->size() > 1 && n > kReduceBlock) {
          EXPECT_GT(ran.depth, 0u);  // the tree path actually ran
        } else {
          EXPECT_EQ(ran.depth, 0u);
        }
      }
    }
  }
}

TEST(CommReducer, PlanShapeIsFixedByElementCountOnly) {
  // One flat range while the output fits a block.
  for (const std::size_t n : {std::size_t{1}, std::size_t{100}, kReduceBlock}) {
    const Reducer::Plan p = Reducer::plan(n);
    EXPECT_EQ(p.blocks, 1u);
    EXPECT_EQ(p.depth, 0u);
    EXPECT_EQ(p.tasks, 1u);
  }
  // First real tree: 2 leaves + 1 join.
  const Reducer::Plan two = Reducer::plan(kReduceBlock + 1);
  EXPECT_EQ(two.blocks, 2u);
  EXPECT_EQ(two.depth, 1u);
  EXPECT_EQ(two.tasks, 3u);
  // 40000 elements -> 5 leaves; widths 5 -> 3 -> 2 -> 1 give depth 3 and
  // 2 + 1 + 1 join nodes (odd nodes are promoted, not joined).
  const Reducer::Plan five = Reducer::plan(40000);
  EXPECT_EQ(five.blocks, 5u);
  EXPECT_EQ(five.depth, 3u);
  EXPECT_EQ(five.tasks, 9u);
}

TEST(CommReducer, RejectsInvalidInput) {
  Reducer reducer;
  std::vector<float> out(8);
  const std::vector<float> good(8, 1.0f);
  const std::vector<float> short_params(4, 1.0f);

  const std::vector<Contribution> empty;
  EXPECT_THROW(reducer.reduce(empty, out, nullptr), std::invalid_argument);

  const std::vector<Contribution> mismatched{{good, 1.0}, {short_params, 1.0}};
  EXPECT_THROW(reducer.reduce(mismatched, out, nullptr),
               std::invalid_argument);

  const std::vector<Contribution> negative{{good, -1.0}};
  EXPECT_THROW(reducer.reduce(negative, out, nullptr), std::invalid_argument);

  const std::vector<Contribution> zeros{{good, 0.0}, {good, 0.0}};
  EXPECT_THROW(reducer.reduce(zeros, out, nullptr), std::invalid_argument);
}

TEST(CommReducer, CommunicatorCountersTrackTreeShape) {
  ThreadPool pool(4);
  InProcessCommunicator comm(&pool);
  const std::size_t n = 40000;
  const std::vector<float> a = make_params(n, 1);
  const std::vector<float> b = make_params(n, 2);
  const std::vector<Contribution> contribs{{a, 1.0}, {b, 3.0}};
  std::vector<float> out(n);
  comm.reduce(contribs, out);
  comm.all_reduce(contribs, out);
  std::vector<float> dst(n);
  comm.broadcast(out, dst);
  ASSERT_EQ(0, std::memcmp(dst.data(), out.data(), n * sizeof(float)));
  comm.broadcast(out, out);  // aliasing broadcast is a no-op

  const CommCounters c = comm.counters();
  EXPECT_EQ(c.reduces, 2u);
  EXPECT_EQ(c.reduce_tasks, 2u * Reducer::plan(n).tasks);
  EXPECT_EQ(c.max_depth, Reducer::plan(n).depth);
  EXPECT_EQ(c.broadcasts, 2u);
}

// ---------------------------------------------------------------------------
// CommMailbox

TEST(CommMailbox, PostTakeAndOverwriteSemantics) {
  Mailbox<int> box(3);
  EXPECT_EQ(box.slots(), 3u);
  EXPECT_FALSE(box.has(0));
  EXPECT_FALSE(box.take(0).has_value());

  box.post(0, 11);
  box.post(2, 33);
  EXPECT_TRUE(box.has(0));
  EXPECT_FALSE(box.has(1));

  // The newest contribution supersedes an unread one.
  box.post(0, 12);
  const auto v0 = box.take(0);
  ASSERT_TRUE(v0.has_value());
  EXPECT_EQ(*v0, 12);
  EXPECT_FALSE(box.has(0));
  EXPECT_FALSE(box.take(0).has_value());

  const auto v2 = box.take(2);
  ASSERT_TRUE(v2.has_value());
  EXPECT_EQ(*v2, 33);

  box.resize(5);
  EXPECT_EQ(box.slots(), 5u);
  EXPECT_THROW(box.post(5, 1), std::out_of_range);
}

// ---------------------------------------------------------------------------
// Shared fingerprint helpers for the pipeline suites

std::uint64_t fnv1a(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

struct RunFingerprint {
  std::uint64_t cloud = 0;
  std::uint64_t edges = 0;
  std::uint64_t devices = 0;
  std::vector<double> accuracies;

  bool operator==(const RunFingerprint&) const = default;
};

RunFingerprint fingerprint(Simulation& sim, const RunHistory& history) {
  RunFingerprint f;
  const auto cloud = sim.cloud_params();
  f.cloud = fnv1a(cloud.data(), cloud.size() * sizeof(float));
  f.edges = 1469598103934665603ULL;
  for (std::size_t n = 0; n < sim.num_edges(); ++n) {
    const auto e = sim.edge_params(n);
    f.edges = fnv1a(e.data(), e.size() * sizeof(float)) ^ (f.edges * 3);
  }
  f.devices = 1469598103934665603ULL;
  for (std::size_t m = 0; m < sim.num_devices(); ++m) {
    const auto d = sim.device(m).params();
    f.devices = fnv1a(d.data(), d.size() * sizeof(float)) ^ (f.devices * 3);
  }
  for (const auto& point : history.points) {
    f.accuracies.push_back(point.accuracy);
  }
  return f;
}

/// Runs `bundle` to completion on an optional private pool.
RunFingerprint run_with_pool(SimBundle bundle, Algorithm algorithm,
                             ThreadPool* pool) {
  bundle.cfg.parallel_devices = pool != nullptr;
  bundle.cfg.pool = pool;
  auto sim = bundle.make(algorithm);
  const RunHistory history = sim->run();
  return fingerprint(*sim, history);
}

// ---------------------------------------------------------------------------
// CommPipeline

TEST(CommPipeline, SyncPipelineBitwiseIdenticalAcrossPoolSizes) {
  // Both aggregation sites (edge over devices, cloud over edges) route
  // through comm::Communicator; the run must not depend on the pool.
  for (const Algorithm algorithm : {Algorithm::kMiddle, Algorithm::kFedMes}) {
    SCOPED_TRACE(static_cast<int>(algorithm));
    SimBundle bundle;
    const RunFingerprint serial = run_with_pool(bundle, algorithm, nullptr);
    ThreadPool pool2(2);
    EXPECT_EQ(serial, run_with_pool(bundle, algorithm, &pool2));
    ThreadPool pool8(8);
    EXPECT_EQ(serial, run_with_pool(bundle, algorithm, &pool8));
  }
}

TEST(CommPipeline, ReduceCountersAdvanceEveryAggregation) {
  SimBundle bundle;
  auto sim = bundle.make(Algorithm::kMiddle);
  sim->run();
  const CommCounters c = sim->comm_reduce_counters();
  // Every edge aggregation and every cloud sync is one communicator
  // reduce; with 20 steps, T_c=5 and 3 edges there are at least the 4
  // cloud reduces plus the per-step edge aggregates that had uploads.
  EXPECT_GT(c.reduces, 4u);
  EXPECT_GE(c.reduce_tasks, c.reduces);
  EXPECT_EQ(sim->communicator().backend(), "in_process");
}

// ---------------------------------------------------------------------------
// CommAsync

SimBundle async_bundle(std::size_t max_staleness,
                       std::size_t wan_latency_steps) {
  SimBundle bundle;
  bundle.cfg.comm.async_cloud = true;
  bundle.cfg.comm.max_staleness = max_staleness;
  bundle.cfg.transport.wan_up.latency_steps = wan_latency_steps;
  return bundle;
}

TEST(CommAsync, BoundZeroWithZeroLatencyDegeneratesToSync) {
  // With max_staleness = 0 and instant links every contribution is
  // same-round, so the async schedule applies exactly at the boundaries
  // with weight 1/(1+0): the model trajectory is the synchronous one, bit
  // for bit.
  SimBundle sync_bundle;
  auto sync_sim = sync_bundle.make(Algorithm::kMiddle);
  const RunHistory sync_history = sync_sim->run();
  const RunFingerprint sync_fp = fingerprint(*sync_sim, sync_history);

  SimBundle bundle = async_bundle(0, 0);
  auto async_sim = bundle.make(Algorithm::kMiddle);
  const RunHistory async_history = async_sim->run();
  const RunFingerprint async_fp = fingerprint(*async_sim, async_history);

  EXPECT_EQ(sync_fp, async_fp);
  const auto& stats = async_sim->async_stats();
  EXPECT_GT(stats.published, 0u);
  EXPECT_EQ(stats.deferred, 0u);
  EXPECT_EQ(stats.dropped_stale, 0u);
  EXPECT_EQ(stats.published, stats.applied);
  // 20 steps, T_c=5, 3 edges: every boundary publishes every edge.
  EXPECT_EQ(stats.published, 4u * 3u);
  EXPECT_EQ(stats.applies, 4u);
}

TEST(CommAsync, PastBoundContributionsAreDroppedAndFolded) {
  // wan latency 6 with T_c=5: every contribution lands one round late,
  // which a bound of 0 rejects — nothing is ever applied and the global
  // model never moves — while a bound of 1 admits everything discounted.
  SimBundle strict = async_bundle(0, 6);
  auto strict_sim = strict.make(Algorithm::kMiddle);
  const auto init_cloud = std::vector<float>(
      strict_sim->cloud_params().begin(), strict_sim->cloud_params().end());
  strict_sim->run();
  const auto& dropped = strict_sim->async_stats();
  EXPECT_GT(dropped.published, 0u);
  EXPECT_GT(dropped.dropped_stale, 0u);
  EXPECT_EQ(dropped.applied, 0u);
  EXPECT_EQ(dropped.applies, 0u);
  const auto cloud = strict_sim->cloud_params();
  EXPECT_EQ(0, std::memcmp(cloud.data(), init_cloud.data(),
                           cloud.size() * sizeof(float)));

  SimBundle tolerant = async_bundle(1, 6);
  auto tolerant_sim = tolerant.make(Algorithm::kMiddle);
  tolerant_sim->run();
  const auto& admitted = tolerant_sim->async_stats();
  EXPECT_GT(admitted.applied, 0u);
  EXPECT_EQ(admitted.dropped_stale, 0u);
  EXPECT_GT(admitted.deferred, 0u);  // every publish rode the delay queue
}

TEST(CommAsync, DeterministicAcrossPoolSizes) {
  SimBundle bundle = async_bundle(1, 1);
  const RunFingerprint serial =
      run_with_pool(bundle, Algorithm::kMiddle, nullptr);
  ThreadPool pool2(2);
  EXPECT_EQ(serial, run_with_pool(bundle, Algorithm::kMiddle, &pool2));
  ThreadPool pool8(8);
  EXPECT_EQ(serial, run_with_pool(bundle, Algorithm::kMiddle, &pool8));
}

/// Rebuilds the async counters from the observer event stream.
struct AsyncEventTally final : StepObserver {
  std::uint64_t wan_up_transfers = 0;
  std::uint64_t contributing_sum = 0;
  std::uint64_t cloud_syncs = 0;

  void on_transfers(StepPhase, LinkKind kind, const LinkStats& delta,
                    std::size_t) override {
    if (kind == LinkKind::kWanUp) wan_up_transfers += delta.transfers;
  }
  void on_cloud_sync(std::size_t, std::size_t contributing) override {
    contributing_sum += contributing;
    ++cloud_syncs;
  }
};

TEST(CommAsync, CountersMatchEventStream) {
  SimBundle bundle = async_bundle(1, 1);
  bundle.cfg.total_steps = 30;
  auto sim = bundle.make(Algorithm::kMiddle);
  AsyncEventTally tally;
  sim->add_observer(&tally);
  sim->run();

  const auto& stats = sim->async_stats();
  EXPECT_EQ(stats.published, tally.wan_up_transfers);
  EXPECT_EQ(stats.applied, tally.contributing_sum);
  EXPECT_EQ(stats.applies, tally.cloud_syncs);
  EXPECT_GT(stats.applies, 0u);
  EXPECT_GT(stats.deferred, 0u);
}

TEST(CommAsync, RejectsServerMomentumCombination) {
  // FedAvgM's server-momentum step needs the barriered aggregate-minus-
  // global difference, which the async path cannot provide.
  SimBundle bundle = async_bundle(1, 0);
  bundle.cfg.server_momentum = 0.3;
  EXPECT_THROW(bundle.make(Algorithm::kMiddle), std::invalid_argument);
}

}  // namespace
