#!/usr/bin/env python3
"""Render the bench_results/ CSVs as gnuplot-ready data or quick ASCII plots.

Usage:
    scripts/plot_results.py bench_results/fig6.csv            # ASCII curves
    scripts/plot_results.py bench_results/fig6.csv --gnuplot  # .dat files

No third-party dependencies; works with the CSV schemas emitted by every
bench binary (long format with an 'accuracy' or 'final_accuracy' column).
"""
import argparse
import collections
import csv
import os
import sys


def load(path):
    with open(path) as f:
        return list(csv.DictReader(f))


def series_key(row, x_key):
    parts = []
    for key in ("task", "algorithm", "method", "model", "variant",
                "mobility", "tc", "compression", "alpha", "repeat"):
        if key in row and key != x_key:
            parts.append(f"{key}={row[key]}")
    return " ".join(parts) or "series"


def ascii_plot(rows, x_key, y_key, width=72, height=16):
    groups = collections.defaultdict(list)
    for row in rows:
        try:
            groups[series_key(row, x_key)].append((float(row[x_key]), float(row[y_key])))
        except (KeyError, ValueError):
            continue
    for name, points in groups.items():
        points.sort()
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        lo, hi = min(ys), max(ys)
        span = (hi - lo) or 1.0
        print(f"\n== {name}  ({y_key}: {lo:.3f} .. {hi:.3f})")
        grid = [[" "] * width for _ in range(height)]
        for x, y in points:
            cx = int((x - xs[0]) / ((xs[-1] - xs[0]) or 1) * (width - 1))
            cy = int((y - lo) / span * (height - 1))
            grid[height - 1 - cy][cx] = "*"
        for line in grid:
            print("|" + "".join(line))
        print("+" + "-" * width)


def write_gnuplot(rows, x_key, y_key, out_dir):
    groups = collections.defaultdict(list)
    for row in rows:
        try:
            groups[series_key(row, x_key)].append((float(row[x_key]), float(row[y_key])))
        except (KeyError, ValueError):
            continue
    os.makedirs(out_dir, exist_ok=True)
    for name, points in groups.items():
        safe = name.replace(" ", "_").replace("=", "-")
        path = os.path.join(out_dir, f"{safe}.dat")
        with open(path, "w") as f:
            for x, y in sorted(points):
                f.write(f"{x} {y}\n")
        print(f"wrote {path}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("csv_path")
    parser.add_argument("--gnuplot", action="store_true",
                        help="emit per-series .dat files instead of ASCII")
    parser.add_argument("--out-dir", default="plots")
    args = parser.parse_args()

    rows = load(args.csv_path)
    if not rows:
        sys.exit("empty CSV")
    header = rows[0].keys()
    x_key = "step" if "step" in header else (
        "mobility" if "mobility" in header else next(iter(header)))
    y_candidates = [k for k in ("accuracy", "final_accuracy", "gap", "bound")
                    if k in header]
    y_key = y_candidates[0] if y_candidates else list(header)[-1]
    if args.gnuplot:
        write_gnuplot(rows, x_key, y_key, args.out_dir)
    else:
        ascii_plot(rows, x_key, y_key)


if __name__ == "__main__":
    main()
