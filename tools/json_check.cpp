// json_check — strict validator for the observability output files.
//
// Validates that a file is well-formed JSON (default) or JSONL (--jsonl:
// every non-empty line is one JSON value), with optional structural
// checks used by CI and the smoke tests:
//
//   json_check --require-key traceEvents --nonempty-array traceEvents trace.json
//   json_check --require-key counters,gauges,histograms metrics.json
//   json_check --jsonl --require-key kind --min-records 10 run.jsonl
//
// --require-key demands the top-level value (every line in JSONL mode) be
// an object containing each comma-separated key; --nonempty-array demands
// the named top-level key hold an array with at least one element;
// --min-records demands at least N values (lines in JSONL mode, 1
// otherwise). Exit 0 on success, 1 with a diagnostic on stderr otherwise.
//
// Hand-rolled recursive-descent parser: no external JSON dependency, and
// strict by construction (no trailing commas, no comments, no garbage
// after the value) so anything it accepts loads in Python/Perfetto.
#include <cctype>
#include <cstddef>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/cli.hpp"

namespace {

/// What the validator remembers about one top-level object entry.
struct TopValueInfo {
  char kind = '?';  // 'o' object, 'a' array, 's' string, 'n' number,
                    // 'b' bool, 'z' null
  std::size_t array_size = 0;
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  /// Parses exactly one JSON value spanning the whole input (modulo
  /// whitespace). Throws std::runtime_error with offset context on any
  /// violation. Top-level object entries are recorded in top_level().
  void parse_document() {
    skip_ws();
    parse_value(/*depth=*/0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after JSON value");
  }

  const std::map<std::string, TopValueInfo>& top_level() const {
    return top_level_;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error(what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() const {
    if (pos_ >= text_.size()) {
      throw std::runtime_error("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  TopValueInfo parse_value(int depth) {
    if (depth > 256) fail("nesting too deep");
    TopValueInfo info;
    switch (peek()) {
      case '{':
        info.kind = 'o';
        parse_object(depth);
        break;
      case '[':
        info.kind = 'a';
        info.array_size = parse_array(depth);
        break;
      case '"':
        info.kind = 's';
        parse_string();
        break;
      case 't':
        info.kind = 'b';
        parse_literal("true");
        break;
      case 'f':
        info.kind = 'b';
        parse_literal("false");
        break;
      case 'n':
        info.kind = 'z';
        parse_literal("null");
        break;
      default:
        info.kind = 'n';
        parse_number();
        break;
    }
    return info;
  }

  void parse_object(int depth) {
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return;
    }
    for (;;) {
      skip_ws();
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      const TopValueInfo info = parse_value(depth + 1);
      if (depth == 0) top_level_[key] = info;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return;
    }
  }

  std::size_t parse_array(int depth) {
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return 0;
    }
    std::size_t count = 0;
    for (;;) {
      skip_ws();
      parse_value(depth + 1);
      ++count;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return count;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              fail("bad \\u escape");
            }
          }
          pos_ += 4;  // decoded value irrelevant for validation
          out.push_back('?');
          break;
        }
        default:
          fail("bad escape character");
      }
    }
  }

  void parse_literal(const char* literal) {
    for (const char* c = literal; *c != '\0'; ++c) {
      if (pos_ >= text_.size() || text_[pos_] != *c) fail("bad literal");
      ++pos_;
    }
  }

  void parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      fail("bad number");
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("bad fraction");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("bad exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ == start) fail("bad number");
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::map<std::string, TopValueInfo> top_level_;
};

std::vector<std::string> split_commas(const std::string& list) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    const auto comma = list.find(',', pos);
    const auto end = comma == std::string::npos ? list.size() : comma;
    if (end > pos) out.push_back(list.substr(pos, end - pos));
    pos = end + 1;
  }
  return out;
}

/// Validates one JSON document and applies the structural checks; returns
/// an error message, or empty on success.
std::string check_document(std::string_view text,
                           const std::vector<std::string>& required_keys,
                           const std::string& nonempty_array) {
  JsonParser parser(text);
  try {
    parser.parse_document();
  } catch (const std::exception& error) {
    return error.what();
  }
  for (const std::string& key : required_keys) {
    if (parser.top_level().find(key) == parser.top_level().end()) {
      return "missing required top-level key \"" + key + "\"";
    }
  }
  if (!nonempty_array.empty()) {
    const auto it = parser.top_level().find(nonempty_array);
    if (it == parser.top_level().end()) {
      return "missing array key \"" + nonempty_array + "\"";
    }
    if (it->second.kind != 'a') {
      return "key \"" + nonempty_array + "\" is not an array";
    }
    if (it->second.array_size == 0) {
      return "array \"" + nonempty_array + "\" is empty";
    }
  }
  return {};
}

int run(int argc, const char* const* argv) {
  bool jsonl = false;
  std::string require_key;
  std::string nonempty_array;
  std::size_t min_records = 1;
  std::string file;
  middlefl::util::CliParser cli(
      "json_check: strict JSON/JSONL validator for observability outputs");
  cli.add_flag("jsonl", "treat the file as JSONL (one value per line)",
               &jsonl);
  cli.add_flag("require-key",
               "comma-separated top-level keys that must be present",
               &require_key);
  cli.add_flag("nonempty-array",
               "top-level key that must hold a non-empty array",
               &nonempty_array);
  cli.add_flag("min-records", "minimum number of JSON values (JSONL lines)",
               &min_records);
  cli.add_flag("file", "file to validate", &file);
  if (!cli.parse(argc, argv)) return 0;
  if (file.empty()) {
    std::cerr << "json_check: no input (use --file <path>)\n";
    return 1;
  }

  std::ifstream in(file, std::ios::binary);
  if (!in) {
    std::cerr << "json_check: cannot open " << file << "\n";
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  const std::vector<std::string> required = split_commas(require_key);

  std::size_t records = 0;
  if (jsonl) {
    std::istringstream lines(text);
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(lines, line)) {
      ++line_no;
      if (line.empty()) continue;
      const std::string error = check_document(line, required, nonempty_array);
      if (!error.empty()) {
        std::cerr << "json_check: " << file << ":" << line_no << ": " << error
                  << "\n";
        return 1;
      }
      ++records;
    }
  } else {
    const std::string error = check_document(text, required, nonempty_array);
    if (!error.empty()) {
      std::cerr << "json_check: " << file << ": " << error << "\n";
      return 1;
    }
    records = 1;
  }
  if (records < min_records) {
    std::cerr << "json_check: " << file << ": " << records
              << " record(s), expected at least " << min_records << "\n";
    return 1;
  }
  std::cout << file << ": OK (" << records << " record"
            << (records == 1 ? "" : "s") << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "json_check: " << e.what() << "\n";
    return 1;
  }
}
