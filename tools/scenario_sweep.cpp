// scenario_sweep — declarative experiment matrices over ScenarioSpec.
//
// Takes a base scenario plus an axes file and runs the full cross
// product, one simulation per cell, fanned out over the shared thread
// pool as a task graph:
//
//   scenario_sweep --base examples/scenarios/fig6.json
//                  --axes axes.json --out sweep.jsonl
//
// The axes file is one JSON object mapping a dotted ScenarioSpec path to
// the list of values that axis takes:
//
//   {
//     "algorithm": ["middle", "hierfavg", "fedmes"],
//     "mobility.switch_prob": [0.0, 0.2, 0.5]
//   }
//
// Axis order is file order and the last axis varies fastest, so cell 0 is
// (middle, 0.0), cell 1 is (middle, 0.2), ... — a deterministic
// enumeration that downstream joins can rely on. Each cell's document is
// the base spec with its axis values spliced in by path, then decoded
// through the same strict schema as `middlefl_run --scenario`: a typo in
// an axis path is rejected with the axis name before anything runs.
//
// Cells run concurrently (one task per cell); inside a cell the simulator
// is forced serial (`sim.parallel_devices = false`) so results are
// bitwise identical to running each cell alone. Output is JSONL — one row
// per cell, in cell order, carrying the cell index, the axis values, the
// accuracy results and the shared comm/transport/dropout/fleet summary
// block — validated by `json_check --jsonl`. A cell that fails at runtime
// yields a row with an "error" member and a nonzero exit code; the other
// cells still run and report.
#include <cstddef>
#include <iostream>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "config/json.hpp"
#include "config/scenario.hpp"
#include "config/scenario_build.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/run_logger.hpp"
#include "parallel/thread_pool.hpp"
#include "sched/task_graph.hpp"
#include "util/cli.hpp"

namespace {

using namespace middlefl;

struct Options {
  std::string base;         // --base spec.json (required)
  std::string axes;         // --axes axes.json (required)
  std::string out;          // --out rows.jsonl (stdout when empty)
  std::string metrics_out;  // optional sweep-level metrics snapshot
  std::size_t threads = 0;
  bool quiet = false;
};

/// One sweep dimension: a dotted spec path and the values it takes.
struct Axis {
  std::string path;
  std::vector<config::Json> values;
};

struct CellResult {
  bool ok = false;
  std::string error;
  std::size_t steps = 0;
  double final_accuracy = 0.0;
  double best_accuracy = 0.0;
  double final_loss = 0.0;
  bench::SimRunSummary summary;
};

std::vector<Axis> load_axes(const std::string& path) {
  const config::Json doc = config::parse_json_file(path);
  if (!doc.is_object()) {
    throw std::runtime_error(path +
                             ": axes file must be a JSON object mapping "
                             "dotted spec paths to value arrays");
  }
  std::vector<Axis> axes;
  for (const auto& [key, value] : doc.members()) {
    if (!value.is_array() || value.items().empty()) {
      throw std::runtime_error(path + ": axis '" + key +
                               "' must be a non-empty array");
    }
    axes.push_back(Axis{key, value.items()});
  }
  return axes;
}

/// Per-axis value indices of `cell`, last axis fastest.
std::vector<std::size_t> cell_indices(std::size_t cell,
                                      const std::vector<Axis>& axes) {
  std::vector<std::size_t> indices(axes.size(), 0);
  for (std::size_t a = axes.size(); a-- > 0;) {
    indices[a] = cell % axes[a].values.size();
    cell /= axes[a].values.size();
  }
  return indices;
}

int run(int argc, const char* const* argv) {
  Options opt;
  util::CliParser cli(
      "scenario_sweep: run the cross product of a base scenario and an "
      "axes file, one JSONL row per cell");
  cli.add_flag("base", "base scenario JSON (see examples/scenarios/)",
               &opt.base);
  cli.add_flag("axes", "axes JSON: {\"dotted.path\": [values...], ...}",
               &opt.axes);
  cli.add_flag("out", "write JSONL rows here (default: stdout)", &opt.out);
  cli.add_flag("metrics-out", "write a sweep-level metrics snapshot here",
               &opt.metrics_out);
  cli.add_flag("threads",
               "worker threads (0 = MIDDLEFL_THREADS env or hardware)",
               &opt.threads);
  cli.add_flag("quiet", "suppress per-cell progress lines", &opt.quiet);
  if (!cli.parse(argc, argv)) return 0;
  if (opt.base.empty()) throw std::runtime_error("--base is required");
  if (opt.axes.empty()) throw std::runtime_error("--axes is required");

  parallel::ThreadPool::set_default_size(opt.threads);

  const config::Json base = config::parse_json_file(opt.base);
  const std::vector<Axis> axes = load_axes(opt.axes);
  std::size_t cells = 1;
  for (const auto& axis : axes) cells *= axis.values.size();

  // Splice and decode every cell before anything runs: a bad axis path or
  // value fails the whole sweep up front, with the cell named.
  std::vector<config::ScenarioSpec> specs;
  specs.reserve(cells);
  for (std::size_t cell = 0; cell < cells; ++cell) {
    const auto indices = cell_indices(cell, axes);
    config::Json document = base;
    for (std::size_t a = 0; a < axes.size(); ++a) {
      config::set_by_path(document, axes[a].path,
                          axes[a].values[indices[a]]);
    }
    auto spec = config::scenario_from_json(
        document, opt.base + " [cell " + std::to_string(cell) + "]");
    // The sweep parallelizes across cells; each cell runs serially so its
    // results match a standalone single-threaded run bit for bit.
    spec.sim.parallel_devices = false;
    specs.push_back(std::move(spec));
  }

  if (!opt.quiet) {
    std::cerr << "sweep: " << cells << " cells over " << axes.size()
              << " axes\n";
  }

  std::vector<CellResult> results(cells);
  std::mutex progress_mutex;
  sched::TaskGraph graph;
  for (std::size_t cell = 0; cell < cells; ++cell) {
    graph.add("cell " + std::to_string(cell), [&, cell] {
      auto& result = results[cell];
      try {
        const config::BuiltScenario built =
            config::build_scenario(specs[cell]);
        const auto sim = config::make_simulation(built);
        const auto history = sim->run([](const core::EvalPoint&) {});
        result.steps = sim->current_step();
        result.final_accuracy = history.final_accuracy();
        result.best_accuracy = history.best_accuracy();
        result.final_loss =
            history.points.empty() ? 0.0 : history.points.back().loss;
        result.summary = bench::SimRunSummary::capture(*sim);
        result.ok = true;
      } catch (const std::exception& e) {
        result.error = e.what();
      }
      if (!opt.quiet) {
        const std::scoped_lock lock(progress_mutex);
        std::cerr << "cell " << cell << "/" << cells << "  "
                  << (result.ok ? "acc " + config::format_number(
                                               result.final_accuracy)
                                : "error: " + result.error)
                  << "\n";
      }
    });
  }
  graph.run(&parallel::ThreadPool::global());

  std::unique_ptr<obs::RunLogger> logger;
  if (opt.out.empty()) {
    logger = std::make_unique<obs::RunLogger>(std::cout);
  } else {
    logger = std::make_unique<obs::RunLogger>(opt.out);
  }
  std::size_t failed = 0;
  for (std::size_t cell = 0; cell < cells; ++cell) {
    const auto indices = cell_indices(cell, axes);
    const auto& result = results[cell];
    config::Json row = config::Json::make_object();
    row.set("cell", config::Json::make_uint(cell));
    row.set("scenario", config::Json::make_string(specs[cell].name));
    row.set("algorithm", config::Json::make_string(specs[cell].algorithm));
    for (std::size_t a = 0; a < axes.size(); ++a) {
      row.set(axes[a].path, axes[a].values[indices[a]]);
    }
    if (result.ok) {
      row.set("steps", config::Json::make_uint(result.steps));
      row.set("final_accuracy",
              config::Json::make_number(result.final_accuracy));
      row.set("best_accuracy",
              config::Json::make_number(result.best_accuracy));
      row.set("final_loss", config::Json::make_number(result.final_loss));
      bench::append_summary_members(row, result.summary);
    } else {
      ++failed;
      row.set("error", config::Json::make_string(result.error));
    }
    logger->log_line(row.dump(0));
  }
  logger->flush();
  if (!opt.out.empty()) {
    std::cerr << "sweep rows written to " << opt.out << " (" << cells
              << " cells, " << failed << " failed)\n";
  }

  if (!opt.metrics_out.empty()) {
    obs::MetricsRegistry metrics;
    metrics.set(metrics.gauge("sweep.cells"),
                static_cast<double>(cells));
    metrics.set(metrics.gauge("sweep.failed"),
                static_cast<double>(failed));
    metrics.set(metrics.gauge("sweep.axes"),
                static_cast<double>(axes.size()));
    metrics.write_json_file(opt.metrics_out);
    std::cerr << "metrics written to " << opt.metrics_out << "\n";
  }
  return failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
