// middlefl_run — the command-line front end to the simulator.
//
// Runs any (task, algorithm, topology, hyperparameter) combination without
// writing code and emits the accuracy history as CSV:
//
//   middlefl_run --task emnist --algorithm middle --edges 10 --devices 50
//                --k 3 --local-steps 10 --tc 10 --mobility 0.5
//                --steps 800 --out history.csv      (one command line)
//
// Every run is described internally by a config::ScenarioSpec.
// `--scenario file.json` loads a declarative spec; any flag given
// explicitly on the command line then overrides the corresponding spec
// field (flags keep their historical defaults when no spec is loaded, so
// flag-only invocations behave exactly as before). `--dump-scenario
// file.json` (or `-` for stdout) writes the fully-resolved spec in
// canonical form and exits — the way the shipped examples/scenarios/*.json
// were produced.
//
// Per-link transport policies (loss probability, lossy compression,
// latency in steps) are set with the --uplink-*, --downlink-*, --wan-* and
// --broadcast-loss flags; --upload-failure remains as the legacy alias for
// --uplink-loss (setting both views to conflicting values is an error).
// `--json-summary <path>` dumps the final accuracy,
// communication/transport statistics and dropout counters as JSON for
// sweep tooling.
//
// Defaults mirror the fast-scale benchmark configuration. `--list` prints
// the available tasks/algorithms/architectures/topologies;
// `--list-algorithms` prints the algorithm registry keys one per line.
#include <fstream>
#include <iostream>
#include <memory>
#include <stdexcept>

#include "bench_common.hpp"
#include "config/scenario.hpp"
#include "config/scenario_build.hpp"
#include "serve/load_gen.hpp"
#include "serve/serving.hpp"
#include "middlefl.hpp"

namespace {

using namespace middlefl;

struct Options {
  std::string scenario;       // --scenario file.json
  std::string dump_scenario;  // --dump-scenario file.json | -

  std::string task = "mnist";
  std::string algorithm = "middle";
  std::string arch = "mlp2";
  std::string optimizer = "sgd";
  std::string topology = "home-ring";
  std::string out;
  std::string json_summary;
  /// Closed-loop inference clients served alongside training (0 = only
  /// when the scenario enables serving; then 2 clients).
  std::size_t serve_clients = 0;
  std::string trace_out;    // Chrome trace-event JSON (Perfetto)
  std::string metrics_out;  // metrics snapshot JSON
  std::string log_jsonl;    // per-step/per-eval JSONL flight record
  std::string uplink_compression = "none";
  std::string downlink_compression = "none";
  std::string wan_compression = "none";

  std::size_t edges = 10;
  std::size_t devices = 50;
  std::size_t k = 3;             // selected per edge
  std::size_t local_steps = 10;  // I
  std::size_t tc = 10;           // T_c
  std::size_t batch = 8;
  std::size_t steps = 400;
  std::size_t eval_every = 10;
  std::size_t eval_samples = 300;
  std::size_t samples_per_device = 80;
  std::size_t train_per_class = 60;
  std::size_t test_per_class = 30;
  std::size_t hidden = 48;
  std::uint64_t seed = 42;

  double mobility = 0.5;
  double home_bias = 0.5;
  double major_fraction = 0.9;
  double lr = 0.005;
  double momentum = 0.9;
  double data_scale = 0.5;
  double prox_mu = 0.0;
  double clip_norm = 0.0;
  double server_momentum = 0.0;
  double upload_failure = 0.0;
  double uplink_loss = 0.0;
  double downlink_loss = 0.0;
  double wan_loss = 0.0;
  double broadcast_loss = 0.0;
  std::size_t uplink_latency = 0;
  std::size_t wan_latency = 0;
  bool async_cloud = false;       // comm.async_cloud
  std::size_t max_staleness = 1;  // comm.max_staleness
  double target = 0.0;  // optional time-to-accuracy report
  /// Worker threads (0 = MIDDLEFL_THREADS env or hardware concurrency).
  std::size_t threads = 0;

  bool quiet = false;
  bool list = false;
  bool list_algorithms = false;
};

/// seed flag is an override of spec.sim.seed, but several spec fields are
/// derived from it; keep one place that writes it.
void apply_overrides(config::ScenarioSpec& spec, const Options& opt,
                     const util::CliParser& cli, bool have_scenario) {
  // With no spec loaded every flag applies (the historical flag-only
  // behavior); on top of a spec only explicitly-given flags override.
  const auto use = [&](const char* flag) {
    return !have_scenario || cli.was_set(flag);
  };

  if (use("task")) spec.data.task = opt.task;
  if (use("algorithm")) {
    core::parse_algorithm(opt.algorithm);  // fail fast on typos
    spec.algorithm = opt.algorithm;
  }
  if (use("arch")) spec.model.arch = nn::parse_model_arch(opt.arch);
  if (use("optimizer")) spec.optimizer.kind = opt.optimizer;
  if (use("topology")) {
    mobility::parse_topology(opt.topology);
    spec.mobility.topology = opt.topology;
  }
  if (use("edges")) spec.edges = opt.edges;
  if (use("devices")) spec.data.devices = opt.devices;
  if (use("k")) spec.sim.select_per_edge = opt.k;
  if (use("local-steps")) spec.sim.local_steps = opt.local_steps;
  if (use("tc")) spec.sim.cloud_interval = opt.tc;
  if (use("batch")) spec.sim.batch_size = opt.batch;
  if (use("steps")) spec.sim.total_steps = opt.steps;
  if (use("eval-every")) spec.sim.eval_every = opt.eval_every;
  if (use("eval-samples")) spec.sim.eval_samples = opt.eval_samples;
  if (use("samples-per-device")) {
    spec.data.samples_per_device = opt.samples_per_device;
  }
  if (use("train-per-class")) spec.data.train_per_class = opt.train_per_class;
  if (use("test-per-class")) spec.data.test_per_class = opt.test_per_class;
  if (use("hidden")) spec.model.hidden = opt.hidden;
  if (use("seed")) spec.sim.seed = opt.seed;
  if (use("mobility")) spec.mobility.switch_prob = opt.mobility;
  if (use("home-bias")) spec.mobility.home_bias = opt.home_bias;
  if (use("major-fraction")) spec.data.major_fraction = opt.major_fraction;
  if (use("lr")) spec.optimizer.learning_rate = opt.lr;
  if (use("momentum")) spec.optimizer.momentum = opt.momentum;
  if (use("data-scale")) spec.data.scale = opt.data_scale;
  if (use("prox-mu")) spec.sim.prox_mu = opt.prox_mu;
  if (use("clip-norm")) spec.sim.clip_norm = opt.clip_norm;
  if (use("server-momentum")) spec.sim.server_momentum = opt.server_momentum;
  if (use("upload-failure")) {
    spec.sim.upload_failure_prob = opt.upload_failure;
  }

  // Per-link transport policies. --upload-failure stays as the legacy
  // alias for the uplink loss (reconcile_uplink_aliases merges the views
  // and rejects conflicting settings). The >0 guard on --uplink-loss is
  // historical: a zero keeps whatever the alias resolution produces.
  auto& transport = spec.sim.transport;
  if (use("uplink-loss") && opt.uplink_loss > 0.0) {
    transport.wireless_up.loss_prob = opt.uplink_loss;
  }
  if (use("uplink-compression")) {
    transport.wireless_up.compression =
        transport::parse_compression(opt.uplink_compression);
  }
  if (use("uplink-latency")) {
    transport.wireless_up.latency_steps = opt.uplink_latency;
  }
  if (use("downlink-loss")) {
    transport.wireless_down.loss_prob = opt.downlink_loss;
  }
  if (use("downlink-compression")) {
    transport.wireless_down.compression =
        transport::parse_compression(opt.downlink_compression);
  }
  if (use("wan-loss")) {
    transport.wan_up.loss_prob = opt.wan_loss;
    transport.wan_down.loss_prob = opt.wan_loss;
  }
  if (use("wan-compression")) {
    const auto wan_compression =
        transport::parse_compression(opt.wan_compression);
    transport.wan_up.compression = wan_compression;
    transport.wan_down.compression = wan_compression;
  }
  if (use("wan-latency")) transport.wan_up.latency_steps = opt.wan_latency;
  if (use("async-cloud")) spec.sim.comm.async_cloud = opt.async_cloud;
  if (use("max-staleness")) spec.sim.comm.max_staleness = opt.max_staleness;
  if (use("broadcast-loss")) {
    transport.broadcast.loss_prob = opt.broadcast_loss;
  }
}

/// Machine-readable run summary for sweep tooling: run identity and
/// accuracy up front, then the shared comm/transport/dropout/fleet block
/// (bench::json_summary_fields — the same fields every summary emitter
/// writes).
void write_json_summary(const std::string& path,
                        const config::ScenarioSpec& spec, double target,
                        const core::Simulation& sim,
                        const core::RunHistory& history) {
  std::ofstream file(path);
  if (!file) {
    throw std::runtime_error("cannot write JSON summary to '" + path + "'");
  }
  const auto summary = bench::SimRunSummary::capture(sim);
  file << "{\n";
  file << "  \"task\": \"" << spec.data.task << "\",\n";
  file << "  \"algorithm\": \"" << spec.algorithm << "\",\n";
  file << "  \"seed\": " << spec.sim.seed << ",\n";
  file << "  \"steps\": " << summary.steps << ",\n";
  file << "  \"final_accuracy\": "
       << config::format_number(history.final_accuracy()) << ",\n";
  file << "  \"best_accuracy\": "
       << config::format_number(history.best_accuracy()) << ",\n";
  file << "  \"final_loss\": "
       << config::format_number(
              history.points.empty() ? 0.0 : history.points.back().loss)
       << ",\n";
  if (target > 0.0) {
    const auto tta = history.time_to_accuracy(target);
    file << "  \"target_accuracy\": " << config::format_number(target)
         << ",\n";
    file << "  \"time_to_target\": "
         << (tta ? std::to_string(*tta) : std::string("null")) << ",\n";
  }
  file << bench::json_summary_fields(summary, "  ") << ",\n";
  file << "  \"eval_points\": " << history.points.size() << "\n";
  file << "}\n";
}

int run(int argc, const char* const* argv) {
  Options opt;
  util::CliParser cli(
      "middlefl_run: hierarchical federated learning simulator (MIDDLE, "
      "ICPP 2023 reproduction)");
  cli.add_flag("scenario",
               "load a declarative scenario JSON; explicit flags override "
               "its fields",
               &opt.scenario);
  cli.add_flag("dump-scenario",
               "write the resolved scenario JSON here ('-' = stdout) and "
               "exit",
               &opt.dump_scenario);
  cli.add_flag("task", "mnist|emnist|cifar10|speech", &opt.task);
  cli.add_flag("algorithm", "middle|oort|fedmes|greedy|ensemble|hierfavg",
               &opt.algorithm);
  cli.add_flag("arch", "logistic|mlp|mlp2|cnn2|cnn3", &opt.arch);
  cli.add_flag("optimizer", "sgd|adam", &opt.optimizer);
  cli.add_flag("topology", "uniform|ring|home-ring", &opt.topology);
  cli.add_flag("out", "write history CSV here", &opt.out);
  cli.add_flag("edges", "number of edge servers", &opt.edges);
  cli.add_flag("devices", "number of mobile devices", &opt.devices);
  cli.add_flag("k", "devices selected per edge per step", &opt.k);
  cli.add_flag("local-steps", "local SGD steps I per round", &opt.local_steps);
  cli.add_flag("tc", "cloud-edge sync interval T_c", &opt.tc);
  cli.add_flag("batch", "local minibatch size", &opt.batch);
  cli.add_flag("steps", "total time steps T", &opt.steps);
  cli.add_flag("eval-every", "evaluation cadence", &opt.eval_every);
  cli.add_flag("eval-samples", "test subsample (0 = full)", &opt.eval_samples);
  cli.add_flag("samples-per-device", "local dataset size d_m",
               &opt.samples_per_device);
  cli.add_flag("train-per-class", "train set draws per class",
               &opt.train_per_class);
  cli.add_flag("test-per-class", "test set draws per class",
               &opt.test_per_class);
  cli.add_flag("hidden", "hidden width of the model", &opt.hidden);
  cli.add_flag("seed", "experiment seed", &opt.seed);
  cli.add_flag("mobility", "global mobility P", &opt.mobility);
  cli.add_flag("home-bias", "home-return probability (home-ring)",
               &opt.home_bias);
  cli.add_flag("major-fraction", "per-device major-class share",
               &opt.major_fraction);
  cli.add_flag("lr", "learning rate", &opt.lr);
  cli.add_flag("momentum", "SGD momentum", &opt.momentum);
  cli.add_flag("data-scale", "spatial scale of the synthetic inputs",
               &opt.data_scale);
  cli.add_flag("prox-mu", "FedProx proximal coefficient", &opt.prox_mu);
  cli.add_flag("clip-norm", "gradient clipping threshold (0 = off)",
               &opt.clip_norm);
  cli.add_flag("server-momentum", "FedAvgM momentum at the cloud",
               &opt.server_momentum);
  cli.add_flag("upload-failure", "legacy alias for --uplink-loss",
               &opt.upload_failure);
  cli.add_flag("uplink-loss", "device->edge upload loss probability",
               &opt.uplink_loss);
  cli.add_flag("uplink-compression",
               "device->edge compression (none|q8|topk:<frac>)",
               &opt.uplink_compression);
  cli.add_flag("uplink-latency",
               "device->edge delivery delay in steps (stale aggregation)",
               &opt.uplink_latency);
  cli.add_flag("downlink-loss", "edge->device download loss probability",
               &opt.downlink_loss);
  cli.add_flag("downlink-compression",
               "edge->device compression (none|q8|topk:<frac>)",
               &opt.downlink_compression);
  cli.add_flag("wan-loss", "edge<->cloud sync loss probability",
               &opt.wan_loss);
  cli.add_flag("wan-compression",
               "edge->cloud compression (none|q8|topk:<frac>)",
               &opt.wan_compression);
  cli.add_flag("wan-latency",
               "edge->cloud delivery delay in steps (stale cloud sync)",
               &opt.wan_latency);
  cli.add_flag("async-cloud",
               "staleness-bounded semi-async edge->cloud sync (src/comm)",
               &opt.async_cloud);
  cli.add_flag("max-staleness",
               "staleness bound in cloud rounds for --async-cloud",
               &opt.max_staleness);
  cli.add_flag("broadcast-loss", "cloud->device broadcast loss probability",
               &opt.broadcast_loss);
  cli.add_flag("json-summary", "write a JSON run summary here",
               &opt.json_summary);
  cli.add_flag("serve-clients",
               "serve inference to this many closed-loop clients during "
               "the run (implies serving even if the scenario disables it)",
               &opt.serve_clients);
  cli.add_flag("trace-out",
               "write a Chrome trace-event JSON (Perfetto-loadable) here",
               &opt.trace_out);
  cli.add_flag("metrics-out", "write a metrics snapshot JSON here",
               &opt.metrics_out);
  cli.add_flag("log-jsonl", "write per-step/per-eval JSONL records here",
               &opt.log_jsonl);
  cli.add_flag("target", "report time-to-accuracy for this target (0 = off)",
               &opt.target);
  cli.add_flag("threads",
               "worker threads (0 = MIDDLEFL_THREADS env or hardware)",
               &opt.threads);
  cli.add_flag("quiet", "suppress per-eval progress lines", &opt.quiet);
  cli.add_flag("list", "print available options and exit", &opt.list);
  cli.add_flag("list-algorithms",
               "print the algorithm registry keys and exit",
               &opt.list_algorithms);
  if (!cli.parse(argc, argv)) return 0;

  // Before the first ThreadPool::global() use, so the shared pool is built
  // at the requested size.
  parallel::ThreadPool::set_default_size(opt.threads);

  if (opt.list) {
    std::cout << "tasks:      mnist emnist cifar10 speech\n"
              << "algorithms: middle oort fedmes greedy ensemble hierfavg\n"
              << "archs:      logistic mlp mlp2 cnn2 cnn3\n"
              << "optimizers: sgd adam\n"
              << "topologies: uniform ring home-ring\n";
    return 0;
  }
  if (opt.list_algorithms) {
    for (const auto& name : core::algorithm_names()) {
      std::cout << name << "\n";
    }
    return 0;
  }

  // Resolve the run description: spec file (when given), then explicit
  // flags on top.
  const bool have_scenario = !opt.scenario.empty();
  config::ScenarioSpec spec;
  if (have_scenario) {
    spec = config::load_scenario_file(opt.scenario);
  }
  apply_overrides(spec, opt, cli, have_scenario);

  if (!opt.dump_scenario.empty()) {
    if (opt.dump_scenario == "-") {
      std::cout << config::scenario_to_text(spec);
    } else {
      config::save_scenario_file(spec, opt.dump_scenario);
      std::cerr << "scenario written to " << opt.dump_scenario << "\n";
    }
    return 0;
  }

  const config::BuiltScenario built = config::build_scenario(spec);
  auto sim = config::make_simulation(built);

  // Observability: each recorder exists only when its output was requested;
  // an all-null bundle keeps the simulator on the zero-cost path. The pool
  // trace must be detached before the recorder dies (the global pool
  // outlives this scope).
  std::unique_ptr<obs::TraceRecorder> trace;
  std::unique_ptr<obs::MetricsRegistry> metrics;
  std::unique_ptr<obs::RunLogger> logger;
  obs::Observability bundle;
  if (!opt.trace_out.empty()) {
    trace = std::make_unique<obs::TraceRecorder>();
    bundle.trace = trace.get();
  }
  if (!opt.metrics_out.empty()) {
    metrics = std::make_unique<obs::MetricsRegistry>();
    bundle.metrics = metrics.get();
  }
  if (!opt.log_jsonl.empty()) {
    logger = std::make_unique<obs::RunLogger>(opt.log_jsonl);
    bundle.logger = logger.get();
  }
  if (bundle.enabled()) {
    sim->set_observability(bundle);
    parallel::ThreadPool::global().set_trace(bundle.trace);
    if (bundle.metrics != nullptr) {
      parallel::ThreadPool::global().set_accounting(true);
    }
  }

  // Edge inference serving rides along when the scenario enables it or
  // --serve-clients asks for it: every edge aggregate is republished into
  // the hub and closed-loop clients issue requests for the whole run.
  std::unique_ptr<serve::ServingHub> hub;
  std::unique_ptr<serve::LoadGenerator> load;
  if (opt.serve_clients > 0 || spec.sim.serving.enabled) {
    hub = std::make_unique<serve::ServingHub>(
        spec.sim.serving, spec.edges, built.model,
        &parallel::ThreadPool::global());
    if (bundle.enabled()) hub->set_observability(bundle);
    sim->set_edge_model_sink(hub.get());
    serve::LoadGenerator::Options gen;
    gen.clients = opt.serve_clients > 0 ? opt.serve_clients : 2;
    load = std::make_unique<serve::LoadGenerator>(*hub, built.test, gen);
    load->start();
  }

  const auto history = sim->run([&opt](const core::EvalPoint& point) {
    if (!opt.quiet) {
      std::cerr << "step " << point.step << "  acc " << point.accuracy
                << "  loss " << point.loss << "\n";
    }
  });

  if (load != nullptr) {
    const serve::LoadGenerator::Window window = load->stop();
    hub->quiesce();
    const serve::ServingHub::Stats totals = hub->stats();
    std::cerr << "served " << window.completed << " requests ("
              << window.qps() << " qps, " << window.rejected
              << " rejected) over " << totals.batches << " batches, "
              << totals.publishes << " model hot-swaps\n";
  }

  parallel::ThreadPool::global().set_trace(nullptr);
  if (trace != nullptr) {
    trace->write_chrome_trace_file(opt.trace_out);
    std::cerr << "trace written to " << opt.trace_out << " ("
              << trace->event_count() << " events)\n";
  }
  if (metrics != nullptr) {
    sim->transport().export_metrics(*metrics);
    const parallel::ThreadPool& pool = parallel::ThreadPool::global();
    metrics->set(metrics->gauge("pool.workers"),
                 static_cast<double>(pool.size()));
    double busy_us = 0.0, tasks = 0.0;
    for (const auto& w : pool.worker_stats()) {
      busy_us += w.busy_us;
      tasks += static_cast<double>(w.tasks);
    }
    metrics->set(metrics->gauge("pool.tasks"), tasks);
    metrics->set(metrics->gauge("pool.busy_us"), busy_us);
    metrics->set(metrics->gauge("pool.uptime_us"), pool.uptime_us());
    metrics->write_json_file(opt.metrics_out);
    std::cerr << "metrics written to " << opt.metrics_out << "\n";
  }
  if (logger != nullptr) {
    logger->flush();
    std::cerr << "run log written to " << opt.log_jsonl << " ("
              << logger->records_written() << " records)\n";
  }

  if (!opt.out.empty()) {
    core::save_history_csv(history, opt.out);
    std::cerr << "history written to " << opt.out << "\n";
  }
  if (!opt.json_summary.empty()) {
    write_json_summary(opt.json_summary, spec, opt.target, *sim, history);
    std::cerr << "summary written to " << opt.json_summary << "\n";
  }
  std::cerr << "final accuracy " << history.final_accuracy() << "  best "
            << history.best_accuracy() << "  on-device aggregations "
            << sim->on_device_aggregations() << "  uplink "
            << static_cast<double>(sim->upload_bytes()) / (1024.0 * 1024.0)
            << " MB\n";
  if (opt.target > 0.0) {
    const auto tta = history.time_to_accuracy(opt.target);
    std::cerr << "time to " << opt.target << ": "
              << (tta ? std::to_string(*tta) + " steps"
                      : std::string("not reached"))
              << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
