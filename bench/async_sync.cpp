// Sync vs. staleness-bounded semi-async cloud sync (src/comm) under a
// straggler WAN uplink.
//
// Two arms share one task setup, seed and transport policy
// (wan_up.latency_steps delays every edge->cloud upload); the only
// difference is comm.async_cloud. Each arm times every Simulation::step()
// individually — evaluations run outside the timed region — and reports
// the per-step wall-clock distribution (mean/p95/max), the accuracy
// trajectory against the task's Fig-6 target, and the whole-run comm
// accounting. The async arm additionally cross-checks its staleness
// counters against the StepObserver event stream: `published` must equal
// the kWanUp transfer count, `applied` the sum of on_cloud_sync
// contributing-edge counts, and `applies` the number of on_cloud_sync
// events. A mismatch fails the bench (exit 1), which is what the CI smoke
// job asserts.
//
// The expected shape: under uplink latency the synchronous stage stalls a
// round behind and still rebroadcasts to every device at each boundary,
// while the async stage applies bounded-stale contributions as they land
// and propagates lazily through edge downloads — same target accuracy,
// less work per step.
//
// The intrinsic per-step cost difference is small (the broadcast installs
// a shared snapshot, not a copy), so a single timed run drowns in system
// noise. The arms therefore run interleaved for --repeats rounds and each
// arm reports its best (minimum-mean) repeat — the standard noise-robust
// estimator; model state and counters are bitwise-identical across
// repeats, so only the timings differ.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/step_observer.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using namespace middlefl;
using bench::BenchOptions;

/// Rebuilds the async counters purely from observer events so the bench
/// can assert the Simulation-side accounting agrees with the event stream.
class CrossCheckObserver final : public core::StepObserver {
 public:
  std::uint64_t wan_up_transfers = 0;
  std::uint64_t contributing_sum = 0;
  std::uint64_t cloud_syncs = 0;

  void on_transfers(core::StepPhase, transport::LinkKind kind,
                    const transport::LinkStats& delta,
                    std::size_t) override {
    if (kind == transport::LinkKind::kWanUp) {
      wan_up_transfers += delta.transfers;
    }
  }

  void on_cloud_sync(std::size_t, std::size_t contributing_edges) override {
    contributing_sum += contributing_edges;
    ++cloud_syncs;
  }
};

struct ArmResult {
  /// Mean step wall-clock of every interleaved repeat (best one kept).
  std::vector<double> repeat_means_ms;
  double seconds = 0.0;
  double mean_ms = 0.0;
  double p95_ms = 0.0;
  double max_ms = 0.0;
  double steps_per_sec = 0.0;
  double final_accuracy = 0.0;
  bool target_reached = false;
  std::size_t target_step = 0;
  CrossCheckObserver events;
  bench::SimRunSummary summary;
};

/// Runs one arm: every step timed individually, evaluations (and the
/// time-to-target scan) outside the timed region.
ArmResult run_arm(const bench::TaskSetup& setup, core::Algorithm algorithm,
                  const BenchOptions& options, bool async_cloud,
                  std::size_t max_staleness, bench::ObsSession* obs) {
  bench::TaskSetup run_setup{setup.kind,
                             setup.train,
                             setup.test,
                             setup.partition,
                             setup.initial_edges,
                             setup.model_spec,
                             setup.optimizer->clone_config(),
                             setup.sim_cfg,
                             setup.num_edges,
                             setup.target_accuracy};
  run_setup.sim_cfg.comm.async_cloud = async_cloud;
  run_setup.sim_cfg.comm.max_staleness = max_staleness;
  auto sim = bench::make_simulation(run_setup, algorithm, options);

  ArmResult arm;
  sim->add_observer(&arm.events);
  if (obs != nullptr) obs->attach(*sim);

  const std::size_t steps = run_setup.sim_cfg.total_steps;
  const std::size_t eval_every = std::max<std::size_t>(
      1, run_setup.sim_cfg.eval_every);
  std::vector<double> step_ms;
  step_ms.reserve(steps);
  for (std::size_t t = 1; t <= steps; ++t) {
    const auto start = std::chrono::steady_clock::now();
    sim->step();
    const auto stop = std::chrono::steady_clock::now();
    step_ms.push_back(
        std::chrono::duration<double, std::milli>(stop - start).count());
    if (t % eval_every == 0 || t == steps) {
      const core::EvalPoint& point = sim->evaluate_now();
      arm.final_accuracy = point.accuracy;
      if (!arm.target_reached && point.accuracy >= setup.target_accuracy) {
        arm.target_reached = true;
        arm.target_step = t;
      }
    }
  }
  if (obs != nullptr) obs->collect(*sim);
  arm.summary = bench::SimRunSummary::capture(*sim);

  for (double ms : step_ms) arm.seconds += ms / 1000.0;
  arm.mean_ms = arm.seconds * 1000.0 / static_cast<double>(step_ms.size());
  std::vector<double> sorted = step_ms;
  std::sort(sorted.begin(), sorted.end());
  arm.p95_ms = sorted[(sorted.size() * 95) / 100 == sorted.size()
                          ? sorted.size() - 1
                          : (sorted.size() * 95) / 100];
  arm.max_ms = sorted.back();
  arm.steps_per_sec = static_cast<double>(step_ms.size()) / arm.seconds;
  return arm;
}

void print_arm(const char* name, const ArmResult& arm) {
  std::cerr << "   " << name << ": " << arm.seconds << " s ("
            << arm.mean_ms << " ms/step mean, p95 " << arm.p95_ms
            << ", max " << arm.max_ms << "), final accuracy "
            << arm.final_accuracy;
  if (arm.target_reached) {
    std::cerr << ", target @ step " << arm.target_step;
  } else {
    std::cerr << ", target not reached";
  }
  std::cerr << "\n";
}

void emit_arm(std::ostream& out, const char* name, const ArmResult& arm,
              double target_accuracy) {
  out << "  \"" << name << "\": {\n"
      << "    \"repeat_means_ms\": [";
  for (std::size_t i = 0; i < arm.repeat_means_ms.size(); ++i) {
    out << (i == 0 ? "" : ", ") << arm.repeat_means_ms[i];
  }
  out << "],\n"
      << "    \"seconds\": " << arm.seconds << ",\n"
      << "    \"step_ms_mean\": " << arm.mean_ms << ",\n"
      << "    \"step_ms_p95\": " << arm.p95_ms << ",\n"
      << "    \"step_ms_max\": " << arm.max_ms << ",\n"
      << "    \"steps_per_sec\": " << arm.steps_per_sec << ",\n"
      << "    \"final_accuracy\": " << arm.final_accuracy << ",\n"
      << "    \"target_accuracy\": " << target_accuracy << ",\n"
      << "    \"target_reached\": " << (arm.target_reached ? "true" : "false")
      << ",\n"
      << "    \"target_step\": " << arm.target_step << ",\n"
      << "    \"event_wan_up_transfers\": " << arm.events.wan_up_transfers
      << ",\n"
      << "    \"event_contributing_sum\": " << arm.events.contributing_sum
      << ",\n"
      << "    \"event_cloud_syncs\": " << arm.events.cloud_syncs << ",\n"
      << bench::json_summary_fields(arm.summary, "    ") << "\n"
      << "  }";
}

int run(int argc, const char* const* argv) {
  BenchOptions options;
  options.repeats = 3;  // interleaved timing repeats; results are bitwise
                        // identical across them, only the clock differs
  std::string task_flag = "mnist";
  std::string json_path = "BENCH_async_sync.json";
  std::size_t steps = 0;
  std::size_t wan_latency = 1;
  double broadcast_topk = 0.1;
  std::size_t max_staleness = 1;
  bool fast = false;
  util::CliParser cli(
      "async_sync: sync vs staleness-bounded async cloud sync under a "
      "straggler WAN uplink");
  options.register_flags(cli);
  cli.add_flag("task", "learning task", &task_flag);
  cli.add_flag("json", "JSON output path", &json_path);
  cli.add_flag("steps", "steps per arm (0 = task default)", &steps);
  cli.add_flag("wan-latency", "wan_up latency in steps (straggler policy)",
               &wan_latency);
  cli.add_flag("broadcast-topk",
               "top-k fraction on the device broadcast (0 = lossless)",
               &broadcast_topk);
  cli.add_flag("max-staleness", "async staleness bound in cloud rounds",
               &max_staleness);
  cli.add_flag("fast", "short smoke run for CI (60 steps per arm)", &fast);
  if (!cli.parse(argc, argv)) return 0;

  bench::print_banner("Sync vs async cloud sync", options);
  const auto kind = data::parse_task(task_flag);
  const auto algorithm = core::Algorithm::kMiddle;

  auto setup = bench::make_task_setup(kind, options);
  if (fast && steps == 0) steps = 60;
  if (steps != 0) {
    setup.sim_cfg.total_steps = steps;
    setup.sim_cfg.eval_every = std::max<std::size_t>(1, steps / 40);
  }
  // Both arms run the same straggler link policy: every edge->cloud upload
  // is delayed, so the synchronous boundary always aggregates stale models
  // while the async stage absorbs the same lag without the barrier; the
  // fleet broadcast channel is top-k constrained, so the sync boundary pays
  // a compressed full-fleet push every round — the async mode never uses
  // that channel (the global model reaches devices lazily through the
  // per-step edge downloads instead).
  setup.sim_cfg.transport.wan_up.latency_steps = wan_latency;
  if (broadcast_topk > 0.0) {
    setup.sim_cfg.transport.broadcast.compression.kind =
        transport::CompressionKind::kTopK;
    setup.sim_cfg.transport.broadcast.compression.top_k_fraction =
        broadcast_topk;
  }
  setup.sim_cfg.eval_edges = false;

  // Interleave the arms so slow system phases hit both equally; keep each
  // arm's minimum-mean repeat. Observability captures the first repeat.
  bench::ObsSession obs(options);
  if (fast && options.repeats == 3) options.repeats = 1;
  const std::size_t repeats = std::max<std::size_t>(1, options.repeats);
  ArmResult sync_arm, async_arm;
  std::vector<double> sync_means, async_means;
  for (std::size_t r = 0; r < repeats; ++r) {
    bench::ObsSession* session = r == 0 ? &obs : nullptr;
    ArmResult s =
        run_arm(setup, algorithm, options, false, max_staleness, session);
    ArmResult a =
        run_arm(setup, algorithm, options, true, max_staleness, session);
    sync_means.push_back(s.mean_ms);
    async_means.push_back(a.mean_ms);
    if (r == 0 || s.mean_ms < sync_arm.mean_ms) sync_arm = std::move(s);
    if (r == 0 || a.mean_ms < async_arm.mean_ms) async_arm = std::move(a);
  }
  sync_arm.repeat_means_ms = std::move(sync_means);
  async_arm.repeat_means_ms = std::move(async_means);
  print_arm("sync ", sync_arm);
  print_arm("async", async_arm);
  obs.finish();

  // The async counters must be reconstructible from the event stream alone.
  bool cross_check_ok = true;
  const bench::SimRunSummary& as = async_arm.summary;
  auto check = [&](const char* what, std::uint64_t counter,
                   std::uint64_t from_events) {
    if (counter == from_events) return;
    cross_check_ok = false;
    std::cerr << "   CROSS-CHECK FAILED: " << what << " counter " << counter
              << " != " << from_events << " from events\n";
  };
  check("async_published vs kWanUp transfers", as.async_published,
        async_arm.events.wan_up_transfers);
  check("async_applied vs sum(contributing)", as.async_applied,
        async_arm.events.contributing_sum);
  check("async_applies vs on_cloud_sync events", as.async_applies,
        async_arm.events.cloud_syncs);
  if (sync_arm.summary.async_published != 0) {
    cross_check_ok = false;
    std::cerr << "   CROSS-CHECK FAILED: sync arm published "
              << sync_arm.summary.async_published << " async contributions\n";
  }

  const double speedup = async_arm.mean_ms > 0.0
                             ? sync_arm.mean_ms / async_arm.mean_ms
                             : 0.0;
  std::cerr << "   per-step speedup (sync mean / async mean): " << speedup
            << ", cross-check " << (cross_check_ok ? "ok" : "FAILED") << "\n";

  std::ofstream out(json_path);
  if (!out) {
    std::cerr << "error: cannot write " << json_path << "\n";
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"async_sync\",\n"
      << "  \"task\": \"" << data::to_string(kind) << "\",\n"
      << "  \"scale\": \"" << (options.paper ? "paper" : "fast") << "\",\n"
      << "  \"steps\": " << setup.sim_cfg.total_steps << ",\n"
      << "  \"wan_up_latency_steps\": " << wan_latency << ",\n"
      << "  \"broadcast_topk_fraction\": " << broadcast_topk << ",\n"
      << "  \"max_staleness\": " << max_staleness << ",\n"
      << "  \"async_step_speedup\": " << speedup << ",\n"
      << "  \"cross_check_ok\": " << (cross_check_ok ? "true" : "false")
      << ",\n";
  emit_arm(out, "sync", sync_arm, setup.target_accuracy);
  out << ",\n";
  emit_arm(out, "async", async_arm, setup.target_accuracy);
  out << "\n}\n";
  std::cerr << "   wrote " << json_path << "\n";
  return cross_check_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
