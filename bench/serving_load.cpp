// Serving load bench: QPS and latency of the edge inference path while
// Fig-6 training runs concurrently on the SAME thread pool.
//
// Two driver modes (--mode): `open` (default) paces requests at a fixed
// offered rate with a bounded in-flight ring per client, so queue depth —
// and therefore batch coalescing — builds whenever the serving path falls
// behind the offered load; `closed` keeps one outstanding request per
// client, which bounds occupancy by the client count (on a single-core
// host submits serialize with drains and batches rarely form — the
// batched/unbatched gap is an open-mode measurement).
//
// Protocol — interleaved A/B: the run alternates measurement windows
// between the batched arm (max_batch from the serving config) and the
// unbatched baseline (max_batch = 1), e.g. A B A B A B for --windows 3.
// Interleaving means slow drift (thermal, page cache, competing load)
// lands on both arms symmetrically instead of biasing whichever arm runs
// last. Each window: the load generator's client threads submit
// single-sample requests against every edge while the main thread drives
// --steps-per-window training steps; the window closes by stopping the
// clients and quiescing the hub, so arms never bleed into each other.
// Training republishes every edge aggregate into the serving hub
// throughout, so the hot-swap path is exercised at full training rate.
//
// Figures of merit, emitted as JSON (default BENCH_serving_load.json):
// per-arm QPS + exact client-side p50/p95/p99 latency, batched/unbatched
// QPS speedup (the acceptance gate: >= 1.3x), a QPS-vs-latency sweep
// (batched arm; offered-load steps in open mode, client counts in closed
// mode), histogram-derived percentiles from the
// MetricsRegistry fixed buckets (serve.latency_us via quantile()) as a
// cross-check of the exact ones, and the shared training summary block.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/load_gen.hpp"
#include "serve/serving.hpp"

namespace {

using namespace middlefl;
using bench::BenchOptions;

/// Exact percentile (linear interpolation between order statistics) of a
/// SORTED sample.
double pct(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

/// One arm's accumulated measurement across its interleaved windows.
struct Arm {
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  double wall_seconds = 0.0;
  std::vector<double> latencies_us;
  std::uint64_t batches = 0;  // hub predict() calls attributed to this arm
  std::uint64_t served = 0;

  void absorb(const serve::LoadGenerator::Window& window) {
    completed += window.completed;
    rejected += window.rejected;
    wall_seconds += window.wall_seconds;
    latencies_us.insert(latencies_us.end(), window.latencies_us.begin(),
                        window.latencies_us.end());
  }
  double qps() const {
    return wall_seconds > 0.0 ? static_cast<double>(completed) / wall_seconds
                              : 0.0;
  }
  double mean_occupancy() const {
    return batches > 0
               ? static_cast<double>(served) / static_cast<double>(batches)
               : 0.0;
  }
};

std::string arm_json(Arm& arm, const std::string& indent) {
  std::sort(arm.latencies_us.begin(), arm.latencies_us.end());
  double mean = 0.0;
  for (const double v : arm.latencies_us) mean += v;
  if (!arm.latencies_us.empty()) {
    mean /= static_cast<double>(arm.latencies_us.size());
  }
  std::ostringstream out;
  out << "{\n"
      << indent << "  \"completed\": " << arm.completed << ",\n"
      << indent << "  \"rejected\": " << arm.rejected << ",\n"
      << indent << "  \"wall_seconds\": " << arm.wall_seconds << ",\n"
      << indent << "  \"qps\": " << arm.qps() << ",\n"
      << indent << "  \"latency_mean_us\": " << mean << ",\n"
      << indent << "  \"latency_p50_us\": " << pct(arm.latencies_us, 0.50)
      << ",\n"
      << indent << "  \"latency_p95_us\": " << pct(arm.latencies_us, 0.95)
      << ",\n"
      << indent << "  \"latency_p99_us\": " << pct(arm.latencies_us, 0.99)
      << ",\n"
      << indent << "  \"batches\": " << arm.batches << ",\n"
      << indent << "  \"mean_batch_occupancy\": " << arm.mean_occupancy()
      << "\n"
      << indent << "}";
  return out.str();
}

int run(int argc, const char* const* argv) {
  BenchOptions options;
  std::string task_flag = "mnist";
  std::string algorithm_flag = "middle";
  std::string json_path = "BENCH_serving_load.json";
  std::string mode_flag = "open";
  std::size_t steps_per_window = 40;
  std::size_t warmup_steps = 10;
  std::size_t windows = 3;
  std::size_t clients = 2;
  std::size_t serve_edges = 1;
  std::size_t max_batch = 16;
  double offered_qps = 200000.0;
  bool no_sweep = false;
  util::CliParser cli(
      "serving_load: edge inference QPS/latency under concurrent training");
  options.register_flags(cli);
  cli.add_flag("task", "learning task", &task_flag);
  cli.add_flag("algorithm", "algorithm policy", &algorithm_flag);
  cli.add_flag("json", "JSON output path", &json_path);
  cli.add_flag("mode", "load mode: closed | open", &mode_flag);
  cli.add_flag("steps-per-window", "training steps per measurement window",
               &steps_per_window);
  cli.add_flag("warmup", "untimed warmup training steps", &warmup_steps);
  cli.add_flag("windows", "A/B window pairs", &windows);
  cli.add_flag("clients", "load-generator client threads", &clients);
  cli.add_flag("serve-edges",
               "edges the clients target (0 = all; few edges = deeper "
               "coalescing)",
               &serve_edges);
  cli.add_flag("max-batch", "coalescing cap for the batched arm", &max_batch);
  cli.add_flag("offered-qps", "open mode: total offered request rate",
               &offered_qps);
  cli.add_flag("no-sweep", "skip the QPS-vs-latency client sweep", &no_sweep);
  if (!cli.parse(argc, argv)) return 0;
  if (mode_flag != "closed" && mode_flag != "open") {
    std::cerr << "error: --mode must be closed or open\n";
    return 1;
  }
  if (windows == 0 || steps_per_window == 0 || clients == 0) {
    std::cerr << "error: --windows/--steps-per-window/--clients must be >=1\n";
    return 1;
  }

  bench::print_banner("Serving load (QPS/latency)", options);
  const auto kind = data::parse_task(task_flag);
  const auto algorithm = core::parse_algorithm(algorithm_flag);

  // QPS-vs-latency sweep points: open mode walks the offered load up to
  // the configured rate (the classic load/latency curve); closed mode
  // walks the client count (concurrency-limited curve).
  struct SweepPoint {
    std::size_t clients = 0;
    double offered_qps = 0.0;
  };
  std::vector<SweepPoint> sweep_points;
  if (!no_sweep) {
    if (mode_flag == "open") {
      for (const double f : {0.125, 0.25, 0.5, 1.0}) {
        sweep_points.push_back(SweepPoint{clients, offered_qps * f});
      }
    } else {
      for (const std::size_t c : {1u, 2u, 4u, 8u}) {
        sweep_points.push_back(SweepPoint{c, 0.0});
      }
    }
  }

  auto setup = bench::make_task_setup(kind, options);
  parallel::ThreadPool& pool = parallel::ThreadPool::global();
  setup.sim_cfg.total_steps =
      warmup_steps + 2 * windows * steps_per_window +
      sweep_points.size() * steps_per_window;
  setup.sim_cfg.eval_edges = false;
  setup.sim_cfg.parallel_devices = true;
  setup.sim_cfg.pool = &pool;
  setup.sim_cfg.serving.enabled = true;
  setup.sim_cfg.serving.max_batch = max_batch;

  bench::ObsSession obs(options);
  auto sim = bench::make_simulation(setup, algorithm, options);
  obs.attach(*sim);

  // The hub gets its own MetricsRegistry regardless of --metrics-out so
  // the JSON can cross-check the exact client-side percentiles against
  // the fixed-bucket quantile() estimates.
  obs::MetricsRegistry serve_metrics;
  obs::Observability serve_obs;
  serve_obs.metrics = &serve_metrics;
  serve_obs.trace = obs.trace();
  serve::ServingHub hub(setup.sim_cfg.serving, setup.num_edges,
                        setup.model_spec, &pool);
  hub.set_observability(serve_obs);
  sim->set_edge_model_sink(&hub);  // publishes every edge's current model

  serve::LoadGenerator::Options gen_options;
  gen_options.clients = clients;
  gen_options.open_loop = mode_flag == "open";
  gen_options.offered_qps = offered_qps;
  gen_options.target_edges = serve_edges;
  serve::LoadGenerator generator(hub, *setup.test, gen_options);

  for (std::size_t s = 0; s < warmup_steps; ++s) sim->step();

  // Interleaved A/B windows: batched first, then unbatched, repeated.
  Arm batched;
  Arm unbatched;
  std::size_t trained_steps = warmup_steps;
  for (std::size_t w = 0; w < windows; ++w) {
    for (const bool is_batched : {true, false}) {
      Arm& arm = is_batched ? batched : unbatched;
      hub.set_max_batch(is_batched ? max_batch : 1);
      const serve::ServingHub::Stats before = hub.stats();
      generator.start();
      for (std::size_t s = 0; s < steps_per_window; ++s) sim->step();
      arm.absorb(generator.stop());
      hub.quiesce();
      const serve::ServingHub::Stats after = hub.stats();
      arm.batches += after.batches - before.batches;
      arm.served += after.served - before.served;
      trained_steps += steps_per_window;
    }
  }
  const double speedup =
      unbatched.qps() > 0.0 ? batched.qps() / unbatched.qps() : 0.0;
  std::cerr << "   batched   " << batched.qps() << " qps  (occupancy "
            << batched.mean_occupancy() << ")\n"
            << "   unbatched " << unbatched.qps() << " qps\n"
            << "   speedup   " << speedup << "x\n";

  // QPS-vs-latency: one batched window per client count.
  struct SweepRow {
    std::size_t clients = 0;
    double offered_qps = 0.0;
    double qps = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  std::vector<SweepRow> sweep;
  hub.set_max_batch(max_batch);
  for (const SweepPoint& point : sweep_points) {
    serve::LoadGenerator::Options sweep_options = gen_options;
    sweep_options.clients = point.clients;
    if (point.offered_qps > 0.0) sweep_options.offered_qps = point.offered_qps;
    serve::LoadGenerator sweep_gen(hub, *setup.test, sweep_options);
    sweep_gen.start();
    for (std::size_t s = 0; s < steps_per_window; ++s) sim->step();
    serve::LoadGenerator::Window window = sweep_gen.stop();
    hub.quiesce();
    trained_steps += steps_per_window;
    std::sort(window.latencies_us.begin(), window.latencies_us.end());
    sweep.push_back(SweepRow{point.clients, point.offered_qps, window.qps(),
                             pct(window.latencies_us, 0.50),
                             pct(window.latencies_us, 0.95),
                             pct(window.latencies_us, 0.99)});
    std::cerr << "   sweep " << point.clients << " client"
              << (point.clients == 1 ? "" : "s");
    if (point.offered_qps > 0.0) {
      std::cerr << " @ " << point.offered_qps << " offered";
    }
    std::cerr << ": " << sweep.back().qps << " qps, p95 " << sweep.back().p95
              << " us\n";
  }

  obs.collect(*sim);
  obs.finish();
  const bench::SimRunSummary summary = bench::SimRunSummary::capture(*sim);
  const serve::ServingHub::Stats totals = hub.stats();

  // Histogram cross-check: quantiles from the serve.latency_us fixed
  // buckets (covers all arms + sweep combined).
  double hist_p50 = 0.0;
  double hist_p95 = 0.0;
  double hist_p99 = 0.0;
  for (const auto& hist : serve_metrics.snapshot().histograms) {
    if (hist.name != "serve.latency_us") continue;
    hist_p50 = hist.quantile(0.50);
    hist_p95 = hist.quantile(0.95);
    hist_p99 = hist.quantile(0.99);
  }

  std::ofstream out(json_path);
  if (!out) {
    std::cerr << "error: cannot write " << json_path << "\n";
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"serving_load\",\n"
      << "  \"task\": \"" << data::to_string(kind) << "\",\n"
      << "  \"scale\": \"" << (options.paper ? "paper" : "fast") << "\",\n"
      << "  \"algorithm\": \"" << core::to_string(algorithm) << "\",\n"
      << "  \"protocol\": {\n"
      << "    \"interleaved_ab\": true,\n"
      << "    \"windows_per_arm\": " << windows << ",\n"
      << "    \"order\": \"batched,unbatched per pair\",\n"
      << "    \"steps_per_window\": " << steps_per_window << ",\n"
      << "    \"warmup_steps\": " << warmup_steps << ",\n"
      << "    \"mode\": \"" << mode_flag << "\",\n"
      << "    \"clients\": " << clients << ",\n"
      << "    \"max_batch_batched\": " << max_batch << ",\n"
      << "    \"max_batch_unbatched\": 1,\n"
      << "    \"offered_qps\": " << offered_qps << "\n"
      << "  },\n"
      << "  \"batched\": " << arm_json(batched, "  ") << ",\n"
      << "  \"unbatched\": " << arm_json(unbatched, "  ") << ",\n"
      << "  \"speedup_qps\": " << speedup << ",\n"
      << "  \"qps_vs_latency\": [";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    {\"clients\": " << sweep[i].clients
        << ", \"offered_qps\": " << sweep[i].offered_qps
        << ", \"qps\": " << sweep[i].qps << ", \"p50_us\": " << sweep[i].p50
        << ", \"p95_us\": " << sweep[i].p95
        << ", \"p99_us\": " << sweep[i].p99 << "}";
  }
  out << (sweep.empty() ? "],\n" : "\n  ],\n")
      << "  \"histogram_quantiles\": {\"p50_us\": " << hist_p50
      << ", \"p95_us\": " << hist_p95 << ", \"p99_us\": " << hist_p99
      << "},\n"
      << "  \"serving_totals\": {\"submitted\": " << totals.submitted
      << ", \"served\": " << totals.served
      << ", \"rejected\": " << totals.rejected
      << ", \"batches\": " << totals.batches
      << ", \"model_publishes\": " << totals.publishes
      << ", \"runtime_reloads\": " << totals.reloads << "},\n"
      << "  \"trained_steps\": " << trained_steps << ",\n"
      << "  \"pool_threads\": " << pool.size() << ",\n"
      << "  \"peak_rss_bytes\": " << bench::peak_rss_bytes() << ",\n"
      << bench::json_summary_fields(summary, "  ") << "\n"
      << "}\n";
  std::cerr << "   wrote " << json_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
