// End-to-end step-loop throughput: steps/sec of Simulation::step() on the
// Fig-6 fast-scale configuration (no evaluations, pure training loop).
//
// This is the number the hot-path work optimizes — selection scoring, local
// SGD, edge aggregation and snapshot upkeep all sit inside one step. The
// result is emitted as JSON (default BENCH_step_throughput.json) so the
// perf trajectory is tracked across PRs. Besides the main measurement on
// the configured pool, a thread-scaling sweep (requested sizes 1/2/4/8,
// clamped to the hardware concurrency so a small host measures real scaling
// instead of oversubscription noise) records how the per-edge task-graph
// scheduler scales; --no-sweep skips it. Requested sizes that clamp to the
// same effective pool collapse into ONE sweep row whose
// `threads_requested` lists every requested size it covers (with an
// `oversubscribed` flag when any of them exceeded the hardware), so a
// 1-core host emits one row instead of four duplicates.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using namespace middlefl;
using bench::BenchOptions;

struct Measurement {
  std::size_t pool_threads = 0;
  /// Every requested sweep size that clamped to this pool size.
  std::vector<std::size_t> threads_requested;
  bool oversubscribed = false;
  double seconds = 0.0;
  double steps_per_sec = 0.0;
  /// Whole-run comm/transport/dropout/fleet accounting (captured while the
  /// simulation is alive; emitted for the main measurement only).
  bench::SimRunSummary summary;
};

/// Runs warmup + timed steps of a fresh simulation on `pool` (nullptr =
/// fully serial) and returns the timing.
Measurement measure(const bench::TaskSetup& setup, core::Algorithm algorithm,
                    const BenchOptions& options, std::size_t warmup_steps,
                    std::size_t timed_steps, parallel::ThreadPool* pool,
                    bench::ObsSession* obs = nullptr) {
  bench::TaskSetup run_setup{setup.kind,
                             setup.train,
                             setup.test,
                             setup.partition,
                             setup.initial_edges,
                             setup.model_spec,
                             setup.optimizer->clone_config(),
                             setup.sim_cfg,
                             setup.num_edges,
                             setup.target_accuracy};
  run_setup.sim_cfg.parallel_devices = pool != nullptr;
  run_setup.sim_cfg.pool = pool;
  auto sim = bench::make_simulation(run_setup, algorithm, options);
  if (obs != nullptr) obs->attach(*sim);

  for (std::size_t s = 0; s < warmup_steps; ++s) sim->step();
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t s = 0; s < timed_steps; ++s) sim->step();
  const auto stop = std::chrono::steady_clock::now();
  if (obs != nullptr) obs->collect(*sim);

  Measurement m;
  m.pool_threads = pool == nullptr ? 1 : pool->size();
  m.seconds = std::chrono::duration<double>(stop - start).count();
  m.steps_per_sec = static_cast<double>(timed_steps) / m.seconds;
  m.summary = bench::SimRunSummary::capture(*sim);
  return m;
}

int run(int argc, const char* const* argv) {
  BenchOptions options;
  std::string task_flag = "mnist";
  std::string algorithm_flag = "middle";
  std::string json_path = "BENCH_step_throughput.json";
  std::size_t timed_steps = 300;
  std::size_t warmup_steps = 20;
  bool serial = false;
  bool no_sweep = false;
  util::CliParser cli(
      "step_throughput: steps/sec of the simulation step loop");
  options.register_flags(cli);
  cli.add_flag("task", "learning task", &task_flag);
  cli.add_flag("algorithm", "algorithm policy", &algorithm_flag);
  cli.add_flag("json", "JSON output path", &json_path);
  cli.add_flag("steps", "timed steps", &timed_steps);
  cli.add_flag("warmup", "untimed warmup steps", &warmup_steps);
  cli.add_flag("serial", "disable device-parallel training", &serial);
  cli.add_flag("no-sweep", "skip the thread-scaling sweep", &no_sweep);
  if (!cli.parse(argc, argv)) return 0;

  bench::print_banner("Step-loop throughput", options);
  const auto kind = data::parse_task(task_flag);
  const auto algorithm = core::parse_algorithm(algorithm_flag);

  auto setup = bench::make_task_setup(kind, options);
  // The step budget must cover warmup + timed steps; evals are skipped by
  // calling step() directly, and the per-edge evaluation sweep is off —
  // this bench never reads the edge-accuracy curve.
  setup.sim_cfg.total_steps = warmup_steps + timed_steps;
  setup.sim_cfg.eval_edges = false;

  // Main measurement on the configured pool (--threads / MIDDLEFL_THREADS).
  // Observability (when requested) captures only this measurement, not the
  // sweep; with the flags unset the session is inert and the measured loop
  // runs on the zero-cost disabled path.
  bench::ObsSession obs(options);
  parallel::ThreadPool* main_pool =
      serial ? nullptr : &parallel::ThreadPool::global();
  const Measurement main = measure(setup, algorithm, options, warmup_steps,
                                   timed_steps, main_pool, &obs);
  obs.finish();
  const std::size_t peak_rss = bench::peak_rss_bytes();
  std::cerr << "   " << timed_steps << " steps in " << main.seconds
            << " s  ->  " << main.steps_per_sec << " steps/sec  ("
            << main.pool_threads << " pool thread"
            << (main.pool_threads == 1 ? "" : "s") << ", peak RSS "
            << peak_rss / (1024 * 1024) << " MiB)\n";

  // Thread-scaling sweep on private pools so the pinned sizes do not
  // disturb the shared pool. Requested sizes beyond the hardware
  // concurrency are clamped: oversubscribing a small host measures
  // scheduler contention, not scaling, and each distinct clamped size only
  // needs to run once — further requested sizes that clamp to the same
  // pool fold into the existing row's `threads_requested` list instead of
  // duplicating the measurement.
  std::vector<Measurement> sweep;
  if (!no_sweep) {
    const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
    std::size_t last_run = 0;
    for (const std::size_t n : {1u, 2u, 4u, 8u}) {
      const std::size_t clamped = std::min(n, hw);
      if (clamped == last_run) {
        sweep.back().threads_requested.push_back(n);
        sweep.back().oversubscribed |= n > hw;
        continue;
      }
      std::unique_ptr<parallel::ThreadPool> pool;
      if (clamped > 1) pool = std::make_unique<parallel::ThreadPool>(clamped);
      Measurement m = measure(setup, algorithm, options, warmup_steps,
                              timed_steps, pool.get());
      m.threads_requested = {n};
      m.oversubscribed = n > hw;
      sweep.push_back(std::move(m));
      last_run = clamped;
      std::cerr << "   sweep " << clamped << " thread"
                << (clamped == 1 ? " " : "s")
                << (n > hw ? " (requested " + std::to_string(n) +
                                 ", clamped)"
                           : "")
                << ": " << sweep.back().steps_per_sec << " steps/sec\n";
    }
  }

  std::ofstream out(json_path);
  if (!out) {
    std::cerr << "error: cannot write " << json_path << "\n";
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"step_throughput\",\n"
      << "  \"task\": \"" << data::to_string(kind) << "\",\n"
      << "  \"scale\": \"" << (options.paper ? "paper" : "fast") << "\",\n"
      << "  \"algorithm\": \"" << core::to_string(algorithm) << "\",\n"
      << "  \"warmup_steps\": " << warmup_steps << ",\n"
      << "  \"timed_steps\": " << timed_steps << ",\n"
      << "  \"seconds\": " << main.seconds << ",\n"
      << "  \"steps_per_sec\": " << main.steps_per_sec << ",\n"
      << "  \"parallel_devices\": " << (serial ? "false" : "true") << ",\n"
      << "  \"pool_threads\": " << main.pool_threads << ",\n"
      << "  \"peak_rss_bytes\": " << peak_rss << ",\n"
      << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
      << ",\n"
      << bench::json_summary_fields(main.summary, "  ") << ",\n"
      << "  \"thread_sweep\": [";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n")
        << "    {\"threads\": " << sweep[i].pool_threads
        << ", \"threads_requested\": [";
    for (std::size_t r = 0; r < sweep[i].threads_requested.size(); ++r) {
      out << (r == 0 ? "" : ", ") << sweep[i].threads_requested[r];
    }
    out << "], \"oversubscribed\": "
        << (sweep[i].oversubscribed ? "true" : "false")
        << ", \"seconds\": " << sweep[i].seconds
        << ", \"steps_per_sec\": " << sweep[i].steps_per_sec << "}";
  }
  out << (sweep.empty() ? "]\n" : "\n  ]\n") << "}\n";
  std::cerr << "   wrote " << json_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
