// End-to-end step-loop throughput: steps/sec of Simulation::step() on the
// Fig-6 fast-scale configuration (no evaluations, pure training loop).
//
// This is the number the hot-path work optimizes — selection scoring, local
// SGD, edge aggregation and snapshot upkeep all sit inside one step. The
// result is emitted as JSON (default BENCH_step_throughput.json) so the
// perf trajectory is tracked across PRs.
#include <chrono>
#include <fstream>
#include <iostream>
#include <thread>

#include "bench_common.hpp"

namespace {

using namespace middlefl;
using bench::BenchOptions;

int run(int argc, const char* const* argv) {
  BenchOptions options;
  std::string task_flag = "mnist";
  std::string algorithm_flag = "middle";
  std::string json_path = "BENCH_step_throughput.json";
  std::size_t timed_steps = 300;
  std::size_t warmup_steps = 20;
  bool serial = false;
  util::CliParser cli(
      "step_throughput: steps/sec of the simulation step loop");
  options.register_flags(cli);
  cli.add_flag("task", "learning task", &task_flag);
  cli.add_flag("algorithm", "algorithm policy", &algorithm_flag);
  cli.add_flag("json", "JSON output path", &json_path);
  cli.add_flag("steps", "timed steps", &timed_steps);
  cli.add_flag("warmup", "untimed warmup steps", &warmup_steps);
  cli.add_flag("serial", "disable device-parallel training", &serial);
  if (!cli.parse(argc, argv)) return 0;

  bench::print_banner("Step-loop throughput", options);
  const auto kind = data::parse_task(task_flag);
  const auto algorithm = core::parse_algorithm(algorithm_flag);

  auto setup = bench::make_task_setup(kind, options);
  // The step budget must cover warmup + timed steps; evals are skipped by
  // calling step() directly.
  setup.sim_cfg.total_steps = warmup_steps + timed_steps;
  setup.sim_cfg.parallel_devices = !serial;
  auto sim = bench::make_simulation(setup, algorithm, options);

  for (std::size_t s = 0; s < warmup_steps; ++s) sim->step();

  const auto start = std::chrono::steady_clock::now();
  for (std::size_t s = 0; s < timed_steps; ++s) sim->step();
  const auto stop = std::chrono::steady_clock::now();
  const double seconds =
      std::chrono::duration<double>(stop - start).count();
  const double steps_per_sec = static_cast<double>(timed_steps) / seconds;

  std::cerr << "   " << timed_steps << " steps in " << seconds << " s  ->  "
            << steps_per_sec << " steps/sec\n";

  std::ofstream out(json_path);
  if (!out) {
    std::cerr << "error: cannot write " << json_path << "\n";
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"step_throughput\",\n"
      << "  \"task\": \"" << data::to_string(kind) << "\",\n"
      << "  \"scale\": \"" << (options.paper ? "paper" : "fast") << "\",\n"
      << "  \"algorithm\": \"" << core::to_string(algorithm) << "\",\n"
      << "  \"warmup_steps\": " << warmup_steps << ",\n"
      << "  \"timed_steps\": " << timed_steps << ",\n"
      << "  \"seconds\": " << seconds << ",\n"
      << "  \"steps_per_sec\": " << steps_per_sec << ",\n"
      << "  \"parallel_devices\": " << (serial ? "false" : "true") << ",\n"
      << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
      << "\n"
      << "}\n";
  std::cerr << "   wrote " << json_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
