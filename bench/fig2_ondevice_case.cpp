// Figure 2 — the motivation case study for on-device model aggregation.
//
// Setup (§2, Question 2): two edges; every device holds exactly one class;
// edge 1 hosts classes {0..4}, edge 2 hosts {5..9}. After a warm-up, the
// devices with classes {3,4} move from edge 1 to edge 2 and those with
// {8,9} move the other way, so the class sets become {0,1,2,8,9} and
// {5,6,7,3,4}. Training continues for several steps, then all local models
// are averaged into a cloud model.
//
// Two methods are compared exactly as in the paper:
//   General — moved devices start local training from the downloaded edge
//             model;
//   A Case  — moved devices average the downloaded edge model with their
//             carried local model (plain 1/2-1/2).
//
// Output: per-class accuracy of the cloud model and of edge model 1 under
// both methods — the paper's signature is higher accuracy for "A Case" on
// edge 1's lost classes {5,6,7} (complementary knowledge carried by the
// arriving devices) and a slight drop on the newly arrived classes {3,4}.
#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "core/aggregation.hpp"
#include "mobility/trace.hpp"

namespace {

using namespace middlefl;

struct CaseResult {
  std::vector<double> cloud_per_class;
  std::vector<double> edge1_per_class;
  double cloud_overall = 0.0;
  double edge1_overall = 0.0;
};

CaseResult run_case(bool on_device_aggregation,
                    const bench::BenchOptions& options,
                    std::size_t warmup_steps, std::size_t post_steps) {
  constexpr std::size_t kClasses = 10;
  constexpr std::size_t kDevicesPerClass = 5;
  constexpr std::size_t kDevices = kClasses * kDevicesPerClass;

  // Data: one-class devices (§2: "each device is assigned the samples of
  // only one class").
  auto cfg = data::task_config(data::TaskKind::kMnist,
                               options.paper ? 1.0 : 0.5);
  cfg.seed = parallel::hash_combine(cfg.seed, options.seed);
  const data::SyntheticGenerator generator(cfg);
  const auto train = generator.generate(options.paper ? 300 : 80, 1);
  const auto test = generator.generate(options.paper ? 100 : 40, 2);
  const auto partition = data::partition_single_class(
      train, kDevices, options.paper ? 200 : 60, options.seed + 3);

  // Mobility script: device d has class d % 10. Edge 0 hosts classes 0-4,
  // edge 1 hosts 5-9; at `warmup_steps` classes {3,4} and {8,9} swap.
  const auto edge_of_class = [](std::size_t cls, bool after_swap) {
    const bool originally_edge0 = cls <= 4;
    const bool swaps = cls == 3 || cls == 4 || cls == 8 || cls == 9;
    return (originally_edge0 != (after_swap && swaps)) ? 0u : 1u;
  };
  mobility::Trace trace(kDevices, 2);
  const std::size_t total_steps = warmup_steps + post_steps;
  for (std::size_t t = 0; t <= total_steps; ++t) {
    std::vector<std::size_t> assignment(kDevices);
    for (std::size_t d = 0; d < kDevices; ++d) {
      assignment[d] = edge_of_class(d % kClasses, t > warmup_steps);
    }
    trace.append(assignment);
  }

  // Model/config (lr 0.001 as in §2's motivation experiments, 10 local SGD
  // steps per time step).
  nn::ModelSpec spec;
  spec.input_shape = tensor::Shape{cfg.channels, cfg.height, cfg.width};
  spec.num_classes = kClasses;
  if (options.paper) {
    spec.arch = nn::ModelArch::kCnn2;
    spec.hidden = 64;
  } else {
    spec.arch = nn::ModelArch::kMlp2;
    spec.hidden = 48;
  }

  core::SimulationConfig sim_cfg;
  sim_cfg.select_per_edge = kDevices / 2;  // every connected device trains
  sim_cfg.local_steps = 10;
  sim_cfg.cloud_interval = total_steps + 1;  // no cloud sync during the case
  sim_cfg.batch_size = 8;
  sim_cfg.total_steps = total_steps;
  sim_cfg.eval_every = total_steps;  // evaluate only at the end
  sim_cfg.eval_samples = 0;
  sim_cfg.seed = options.seed;

  core::AlgorithmSpec algorithm;
  algorithm.name = on_device_aggregation ? "A Case" : "General";
  algorithm.selection = std::make_unique<core::RandomSelection>();
  algorithm.on_move = on_device_aggregation
                          ? core::OnDeviceRule::kPlainAverage
                          : core::OnDeviceRule::kDownloadEdge;

  const optim::Sgd sgd({.learning_rate = options.paper ? 0.001 : 0.002,
                        .momentum = 0.9});
  core::Simulation sim(sim_cfg, spec, sgd, train, partition, test,
                       std::make_unique<mobility::TraceMobility>(trace),
                       std::move(algorithm));
  for (std::size_t t = 0; t < total_steps; ++t) sim.step();

  // "aggregate all local models as the cloud model" (§2).
  std::vector<core::WeightedModel> locals;
  for (std::size_t d = 0; d < kDevices; ++d) {
    locals.push_back(core::WeightedModel{
        sim.device(d).params(),
        static_cast<double>(sim.device(d).data_size())});
  }
  const auto cloud = core::weighted_average(locals);

  CaseResult result;
  result.cloud_per_class = sim.evaluator().per_class_accuracy(cloud);
  result.cloud_overall = sim.evaluator().evaluate(cloud).accuracy;
  result.edge1_per_class =
      sim.evaluator().per_class_accuracy(sim.edge_params(0));
  result.edge1_overall =
      sim.evaluator().evaluate(sim.edge_params(0)).accuracy;
  return result;
}

int run(int argc, const char* const* argv) {
  bench::BenchOptions options;
  std::size_t warmup = 30;
  std::size_t post = 3;
  util::CliParser cli("fig2: per-class effect of on-device model aggregation");
  options.register_flags(cli);
  cli.add_flag("warmup", "time steps before the device swap", &warmup);
  cli.add_flag("post", "time steps after the device swap", &post);
  if (!cli.parse(argc, argv)) return 0;

  bench::print_banner("Figure 2: on-device aggregation case study", options);
  const auto general = run_case(false, options, warmup, post);
  const auto a_case = run_case(true, options, warmup, post);

  auto csv = bench::open_csv(options);
  csv->header({"model", "method", "class", "accuracy"});
  for (std::size_t c = 0; c < general.cloud_per_class.size(); ++c) {
    csv->add("cloud").add("General").add(c).add(general.cloud_per_class[c]);
    csv->end_row();
    csv->add("cloud").add("A Case").add(c).add(a_case.cloud_per_class[c]);
    csv->end_row();
    csv->add("edge1").add("General").add(c).add(general.edge1_per_class[c]);
    csv->end_row();
    csv->add("edge1").add("A Case").add(c).add(a_case.edge1_per_class[c]);
    csv->end_row();
  }

  std::cerr << std::fixed << std::setprecision(3);
  std::cerr << "cloud overall: General " << general.cloud_overall
            << "  A-Case " << a_case.cloud_overall << "\n";
  std::cerr << "edge1 overall: General " << general.edge1_overall
            << "  A-Case " << a_case.edge1_overall << "\n";
  std::cerr << "edge1 per class (General / A-Case):\n";
  for (std::size_t c = 0; c < general.edge1_per_class.size(); ++c) {
    std::cerr << "  class " << c << ": " << general.edge1_per_class[c]
              << " / " << a_case.edge1_per_class[c];
    if (c >= 5 && c <= 7) std::cerr << "   <- paper: A-Case higher";
    if (c == 3 || c == 4) std::cerr << "   <- paper: A-Case slightly lower";
    std::cerr << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
