// Figure 3 — a numerical rendition of the paper's parameter-space sketch.
//
// The paper's drawing: two devices train at an edge; device 1 has just
// arrived. Under "General" both start from the edge model w_t and the
// aggregated edge model drifts toward the EDGE optimum, away from the
// global optimum. Under on-device aggregation, device 1 starts from the
// blend w_hat of the edge model and its carried model; the aggregated edge
// model deviates from the edge optimum but lands CLOSER to the global
// optimum.
//
// We realize this with 2-D quadratic losses (exactly the strongly-convex
// setting of the theory): each device's loss is |w - c_m|^2 with distinct
// optima; the edge optimum is the mean of its devices' optima, the global
// optimum the mean over all devices. Output: the trajectory of the edge
// model under both methods plus final distances to both optima.
#include <array>
#include <cmath>
#include <iomanip>
#include <iostream>
#include <memory>

#include "util/cli.hpp"
#include "util/csv.hpp"

namespace {

struct Vec2 {
  double x = 0.0, y = 0.0;
  Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  Vec2 operator*(double s) const { return {x * s, y * s}; }
  double norm() const { return std::hypot(x, y); }
};

/// I gradient-descent steps on |w - c|^2 (gradient 2(w - c)).
Vec2 local_sgd(Vec2 start, Vec2 target, double lr, int steps) {
  Vec2 w = start;
  for (int i = 0; i < steps; ++i) {
    w = w - (w - target) * (2.0 * lr);
  }
  return w;
}

int run(int argc, const char* const* argv) {
  double lr = 0.05;
  int local_steps = 10;
  int rounds = 8;
  std::string out;
  middlefl::util::CliParser cli(
      "fig3: parameter-space effect of on-device aggregation (2-D quadratic)");
  cli.add_flag("lr", "local learning rate", &lr);
  cli.add_flag("local-steps", "SGD steps per round", &local_steps);
  cli.add_flag("rounds", "training rounds to trace", &rounds);
  cli.add_flag("out", "CSV path (stdout otherwise)", &out);
  if (!cli.parse(argc, argv)) return 0;

  // Geometry mirroring the paper's sketch: the current edge hosts device 2
  // (optimum near the edge optimum) and the newly arrived device 1, whose
  // carried local model comes from the OTHER edge whose optimum pulls
  // toward the global one.
  const Vec2 device2_opt{1.0, 0.0};    // resident device's optimum
  const Vec2 device1_opt{1.0, 2.0};    // arriving device's data optimum
  const Vec2 edge_opt = (device1_opt + device2_opt) * 0.5;
  const Vec2 other_edge_opt{-1.0, 2.0};
  const Vec2 global_opt = (edge_opt + other_edge_opt) * 0.5;
  const Vec2 carried_model = other_edge_opt;  // trained at the previous edge
  const Vec2 w0{0.0, 0.0};

  std::unique_ptr<middlefl::util::CsvWriter> csv;
  if (out.empty()) {
    csv = std::make_unique<middlefl::util::CsvWriter>(std::cout);
  } else {
    csv = std::make_unique<middlefl::util::CsvWriter>(out);
  }
  csv->header({"method", "round", "edge_x", "edge_y", "dist_to_edge_opt",
               "dist_to_global_opt"});

  const auto trace = [&](bool on_device_aggregation) {
    Vec2 edge_model = w0;
    Vec2 device1_model = carried_model;
    Vec2 after_first_round = w0;
    const std::string name = on_device_aggregation ? "on-device-agg"
                                                   : "general";
    for (int r = 0; r <= rounds; ++r) {
      csv->add(name)
          .add(static_cast<long long>(r))
          .add(edge_model.x)
          .add(edge_model.y)
          .add((edge_model - edge_opt).norm())
          .add((edge_model - global_opt).norm());
      csv->end_row();
      // One round: device 1 arrives in round 0 (blends once), both devices
      // run local SGD from their starting points, the edge averages.
      Vec2 start1 = edge_model;
      if (on_device_aggregation && r == 0) {
        start1 = (edge_model + device1_model) * 0.5;  // Eq. 9 with U ~ 1
      }
      const Vec2 new1 = local_sgd(start1, device1_opt, lr, local_steps);
      const Vec2 new2 = local_sgd(edge_model, device2_opt, lr, local_steps);
      edge_model = (new1 + new2) * 0.5;
      device1_model = new1;
      if (r == 0) after_first_round = edge_model;
    }
    return after_first_round;
  };

  // The sketch describes the round in which device 1 arrives; a one-time
  // blend washes out over later rounds as the edge re-optimizes, so the
  // comparison point is the aggregated edge model right after that round.
  const Vec2 general = trace(false);
  const Vec2 blended = trace(true);

  std::cerr << std::fixed << std::setprecision(4);
  std::cerr << "edge optimum (" << edge_opt.x << ", " << edge_opt.y
            << "), global optimum (" << global_opt.x << ", " << global_opt.y
            << ")\n";
  std::cerr << "general:        after-arrival dist to edge opt "
            << (general - edge_opt).norm() << ", to global opt "
            << (general - global_opt).norm() << "\n";
  std::cerr << "on-device-agg:  after-arrival dist to edge opt "
            << (blended - edge_opt).norm() << ", to global opt "
            << (blended - global_opt).norm() << "\n";
  std::cerr << "(paper's sketch: on-device aggregation deviates from the "
               "edge optimum but starts closer to the global optimum)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
