// Empirical check of the Theorem-1 premise on a convex instance.
//
// Theorem 1 analyzes MIDDLE with (i) strongly-convex smooth local losses,
// (ii) the diminishing step size eta_t = 2/(mu(gamma+t)), (iii) a fixed
// on-device blend coefficient alpha and (iv) full participation. We build
// exactly that: multinomial logistic regression with L2 regularization
// (lambda-strongly convex), K = all devices per edge, the kFixedAlpha rule
// and the theorem1 learning-rate schedule, and we track the surrogate
//
//     gap(t) = F(w_c^t) - F(w*)
//
// where w* is obtained by long centralized full-batch training. The
// theorem predicts: the gap decays toward a floor, and the floor SHRINKS
// as the global mobility P rises (Remark 1). The bench prints gap
// trajectories for P in {0.1, 0.5, 1.0} plus the matching analytic bounds.
#include <iomanip>
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "core/convergence.hpp"
#include "data/sampler.hpp"
#include "nn/loss.hpp"

namespace {

using namespace middlefl;

/// Full-batch regularized loss of `params` over the dataset.
double full_loss(nn::Sequential& model, std::span<const float> params,
                 const data::Dataset& dataset, double lambda) {
  model.set_parameters(params);
  const auto view = data::DataView::all(dataset);
  const auto features = view.all_features();
  const auto labels = view.all_labels();
  const auto& logits = model.forward(features, false);
  double loss = nn::cross_entropy_value(logits, labels);
  double reg = 0.0;
  for (float p : params) reg += static_cast<double>(p) * p;
  return loss + 0.5 * lambda * reg;
}

int run(int argc, const char* const* argv) {
  bench::BenchOptions options;
  std::size_t steps = 300;
  double lambda = 0.01;  // strong-convexity constant mu ~= lambda
  double alpha = 0.5;
  util::CliParser cli(
      "theory-empirical: convex-case gap trajectories vs Theorem 1");
  options.register_flags(cli);
  cli.add_flag("steps", "federated time steps", &steps);
  cli.add_flag("lambda", "L2 regularization (strong convexity)", &lambda);
  cli.add_flag("alpha", "fixed on-device blend coefficient", &alpha);
  if (!cli.parse(argc, argv)) return 0;
  bench::print_banner("Theorem 1 empirical (convex logistic)", options);

  // Small, clean task: logistic regression is convex in its parameters.
  auto cfg = data::task_config(data::TaskKind::kMnist, 0.5);
  cfg.seed = parallel::hash_combine(cfg.seed, options.seed);
  const data::SyntheticGenerator generator(cfg);
  const auto train = generator.generate(40, 1);
  const auto test = generator.generate(20, 2);
  const auto partition =
      data::partition_major_class(train, 20, 60, 0.9, options.seed + 3);
  const auto initial =
      data::assign_edges_by_major_class(partition, 4, cfg.num_classes);

  nn::ModelSpec spec;
  spec.arch = nn::ModelArch::kLogistic;
  spec.input_shape = tensor::Shape{cfg.channels, cfg.height, cfg.width};
  spec.num_classes = cfg.num_classes;

  // Centralized reference optimum w* via long SGD with weight decay.
  auto reference = nn::build_model(spec, options.seed);
  {
    optim::Sgd sgd({.learning_rate = 0.05, .weight_decay = lambda});
    parallel::Xoshiro256 rng(options.seed + 9);
    const auto view = data::DataView::all(train);
    for (int i = 0; i < 20000; ++i) {
      const auto batch = data::sample_minibatch(view, 64, rng);
      const auto& logits = reference->forward(batch.features, true);
      auto loss = nn::softmax_cross_entropy(logits, batch.labels);
      reference->zero_grad();
      reference->backward(loss.grad_logits);
      sgd.step(reference->parameters(), reference->gradients());
    }
  }
  auto probe = nn::build_model(spec, options.seed + 1);
  const double f_star =
      full_loss(*probe, reference->parameters(), train, lambda);
  std::cerr << "reference optimum: F(w*) = " << f_star << "\n";

  auto csv = bench::open_csv(options);
  csv->header({"mobility", "step", "gap", "accuracy"});

  const double mu = lambda;
  const double beta = 1.0 + lambda;  // CE smoothness is O(1) per feature
  std::vector<double> floors;
  for (const double p : {0.1, 0.5, 1.0}) {
    core::SimulationConfig sim_cfg;
    sim_cfg.select_per_edge = 100;  // full participation (Theorem setting)
    sim_cfg.local_steps = 5;
    sim_cfg.cloud_interval = 5;
    sim_cfg.batch_size = 16;
    sim_cfg.total_steps = steps;
    sim_cfg.eval_every = steps;  // we evaluate the gap manually
    sim_cfg.lr_schedule = optim::theorem1_lr(mu, beta, sim_cfg.local_steps);
    sim_cfg.seed = options.seed;

    core::AlgorithmSpec algorithm;
    algorithm.name = "fixed-alpha";
    algorithm.selection = std::make_unique<core::RandomSelection>();
    algorithm.on_move = core::OnDeviceRule::kFixedAlpha;
    algorithm.fixed_alpha = alpha;

    auto mobility = std::make_unique<mobility::MarkovMobility>(
        initial, 4, p, options.seed + 7);
    const optim::Sgd sgd({.learning_rate = 0.01, .weight_decay = lambda});
    core::Simulation sim(sim_cfg, spec, sgd, train, partition, test,
                         std::move(mobility), std::move(algorithm));

    double tail_gap = 0.0;
    std::size_t tail_count = 0;
    for (std::size_t t = 0; t < steps; ++t) {
      sim.step();
      if (t % 10 != 0 && t + 1 != steps) continue;
      const double gap =
          full_loss(*probe, sim.cloud_params(), train, lambda) - f_star;
      const double acc = sim.evaluator().evaluate(sim.cloud_params()).accuracy;
      csv->add(p).add(sim.current_step()).add(gap).add(acc);
      csv->end_row();
      if (t >= steps / 2) {
        tail_gap += gap;
        ++tail_count;
      }
    }
    const double mean_tail = tail_gap / static_cast<double>(tail_count);
    floors.push_back(mean_tail);

    core::Theorem1Params params;
    params.beta = beta;
    params.mu = mu;
    params.local_steps = sim_cfg.local_steps;
    params.alpha = alpha;
    params.mobility = p;
    params.horizon = steps;
    std::cerr << std::fixed << std::setprecision(4) << "P=" << p
              << "  empirical tail gap " << mean_tail
              << "  analytic bound " << core::theorem1_bound(params) << "\n";
  }

  // Remark-1 direction: the empirical floor must not grow with P.
  const bool direction_ok = floors.front() >= floors.back() - 0.02;
  std::cerr << (direction_ok
                    ? "Remark 1 direction holds empirically (floor shrinks "
                      "or stays flat as P grows)\n"
                    : "WARNING: empirical floor grew with P\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
