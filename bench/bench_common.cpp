#include "bench_common.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "config/json.hpp"
#include "config/scenario_build.hpp"
#include "parallel/thread_pool.hpp"
#include "util/stats.hpp"

namespace middlefl::bench {

void BenchOptions::register_flags(util::CliParser& cli) {
  cli.add_flag("paper", "run the full-scale configuration of §6.1.2", &paper);
  cli.add_flag("mobility", "global mobility P", &mobility);
  cli.add_flag("tc", "cloud-edge communication interval T_c", &cloud_interval);
  cli.add_flag("seed", "experiment seed", &seed);
  cli.add_flag("out", "write CSV here instead of stdout", &out);
  cli.add_flag("steps-scale", "multiply every step budget", &steps_scale);
  cli.add_flag("repeats", "independent repetitions per configuration",
               &repeats);
  cli.add_flag("threads",
               "worker threads (0 = MIDDLEFL_THREADS env or hardware)",
               &threads);
  cli.add_flag("trace-out",
               "write a Chrome trace-event JSON (Perfetto-loadable) here",
               &trace_out);
  cli.add_flag("metrics-out", "write a metrics snapshot JSON here",
               &metrics_out);
  cli.add_flag("log-jsonl", "write per-step/per-eval JSONL records here",
               &log_jsonl);
}

ObsSession::ObsSession(const BenchOptions& options)
    : trace_out_(options.trace_out), metrics_out_(options.metrics_out) {
  if (!options.trace_out.empty()) {
    trace_ = std::make_unique<obs::TraceRecorder>();
    bundle_.trace = trace_.get();
  }
  if (!options.metrics_out.empty()) {
    metrics_ = std::make_unique<obs::MetricsRegistry>();
    bundle_.metrics = metrics_.get();
  }
  if (!options.log_jsonl.empty()) {
    logger_ = std::make_unique<obs::RunLogger>(options.log_jsonl);
    bundle_.logger = logger_.get();
  }
}

ObsSession::~ObsSession() {
  // The global pool outlives this session; never leave it holding a
  // pointer into the dying recorder.
  if (bundle_.trace != nullptr) {
    parallel::ThreadPool::global().set_trace(nullptr);
  }
}

void ObsSession::attach(core::Simulation& simulation) {
  if (!enabled()) return;
  simulation.set_observability(bundle_);
  parallel::ThreadPool::global().set_trace(bundle_.trace);
  if (bundle_.metrics != nullptr) {
    parallel::ThreadPool::global().set_accounting(true);
  }
}

void ObsSession::collect(core::Simulation& simulation) {
  if (bundle_.metrics != nullptr) {
    simulation.transport().export_metrics(*bundle_.metrics);
  }
}

void ObsSession::finish() {
  if (trace_ != nullptr) {
    parallel::ThreadPool::global().set_trace(nullptr);
    trace_->write_chrome_trace_file(trace_out_);
    std::cerr << "   trace written to " << trace_out_ << " ("
              << trace_->event_count() << " events)\n";
  }
  if (metrics_ != nullptr) {
    const parallel::ThreadPool& pool = parallel::ThreadPool::global();
    metrics_->set(metrics_->gauge("pool.workers"),
                  static_cast<double>(pool.size()));
    double busy_us = 0.0, tasks = 0.0;
    for (const auto& w : pool.worker_stats()) {
      busy_us += w.busy_us;
      tasks += static_cast<double>(w.tasks);
    }
    metrics_->set(metrics_->gauge("pool.tasks"), tasks);
    metrics_->set(metrics_->gauge("pool.busy_us"), busy_us);
    metrics_->set(metrics_->gauge("pool.uptime_us"), pool.uptime_us());
    metrics_->write_json_file(metrics_out_);
    std::cerr << "   metrics written to " << metrics_out_ << "\n";
  }
  if (logger_ != nullptr) logger_->flush();
}

namespace {

struct ScaleParams {
  std::size_t num_edges;
  std::size_t num_devices;
  std::size_t select_per_edge;   // K
  std::size_t local_steps;       // I
  std::size_t batch_size;
  std::size_t samples_per_device;
  std::size_t train_per_class;
  std::size_t test_per_class;
  double data_scale;
  std::size_t eval_samples;
};

ScaleParams scale_params(bool paper) {
  if (paper) {
    return ScaleParams{
        .num_edges = 10,
        .num_devices = 100,
        .select_per_edge = 5,
        .local_steps = 10,
        .batch_size = 16,
        .samples_per_device = 300,
        .train_per_class = 400,
        .test_per_class = 100,
        .data_scale = 1.0,
        .eval_samples = 1000,
    };
  }
  return ScaleParams{
      .num_edges = 10,
      .num_devices = 30,
      .select_per_edge = 3,
      .local_steps = 10,
      .batch_size = 8,
      .samples_per_device = 80,
      .train_per_class = 60,
      .test_per_class = 30,
      .data_scale = 0.5,
      .eval_samples = 300,
  };
}

struct TaskTuning {
  std::size_t total_steps;
  double target_fast;
  double target_paper;
};

TaskTuning task_tuning(data::TaskKind kind, bool paper) {
  // Paper step budgets mirror the x-axes of Fig. 6; targets are §6.1.2's.
  // Fast budgets/targets are calibrated so every algorithm's curve fully
  // unfolds within the budget on the synthetic stand-ins.
  switch (kind) {
    case data::TaskKind::kMnist:
      return {paper ? std::size_t{1500} : std::size_t{400}, 0.65, 0.95};
    case data::TaskKind::kEmnist:
      return {paper ? std::size_t{5000} : std::size_t{800}, 0.40, 0.80};
    case data::TaskKind::kCifar:
      return {paper ? std::size_t{20000} : std::size_t{600}, 0.38, 0.55};
    case data::TaskKind::kSpeech:
      return {paper ? std::size_t{10000} : std::size_t{500}, 0.32, 0.85};
  }
  return {100, 0.5, 0.5};
}

}  // namespace

TaskSetup make_task_setup(data::TaskKind kind, const BenchOptions& options) {
  const ScaleParams sp = scale_params(options.paper);
  const TaskTuning tuning = task_tuning(kind, options.paper);

  TaskSetup setup;
  setup.kind = kind;
  setup.num_edges = sp.num_edges;

  // Datasets: independent train/test draws from the same generator. At
  // fast scale the presets are hardened (more prototypes, more noise) so the
  // shrunken models take a few hundred steps to converge, as the paper's
  // tasks do at full scale; otherwise every algorithm saturates within a
  // couple of cloud rounds and the curves cannot separate.
  auto cfg = data::task_config(kind, sp.data_scale);
  cfg.seed = parallel::hash_combine(cfg.seed, options.seed);
  if (!options.paper) {
    // Per-task hardening: enough intra-class variation that the shrunken
    // model needs a few hundred steps, without collapsing the Bayes
    // ceiling (the presets' noise is calibrated for 16x16 inputs and is
    // relatively harsher on the 8x8 fast inputs).
    switch (kind) {
      case data::TaskKind::kMnist:
        cfg.noise_std *= 1.5f;
        cfg.prototypes_per_class += 1;
        cfg.amplitude_jitter = 0.3f;
        break;
      case data::TaskKind::kEmnist:
        cfg.noise_std *= 1.2f;
        cfg.prototypes_per_class += 1;
        cfg.amplitude_jitter = 0.3f;
        break;
      case data::TaskKind::kCifar:
        cfg.noise_std *= 0.9f;
        cfg.amplitude_jitter = 0.3f;
        break;
      case data::TaskKind::kSpeech:
        cfg.noise_std *= 0.8f;
        cfg.deform = 2;
        break;
    }
  }
  const data::SyntheticGenerator generator(cfg);
  setup.train = std::make_shared<data::Dataset>(
      generator.generate(sp.train_per_class, /*salt=*/1));
  setup.test = std::make_shared<data::Dataset>(
      generator.generate(sp.test_per_class, /*salt=*/2));

  // Non-IID partition: each device has a >80% major class (§6.1.2), and
  // devices are initially clustered onto edges by class group so data is
  // Non-IID across edges as well.
  setup.partition = data::partition_major_class(
      *setup.train, sp.num_devices, sp.samples_per_device,
      /*major_fraction=*/1.0, options.seed + 11);
  setup.initial_edges = data::assign_edges_by_major_class(
      setup.partition, sp.num_edges, cfg.num_classes);

  // Model: paper architectures at paper scale, MLP stand-in at fast scale.
  setup.model_spec.input_shape =
      tensor::Shape{cfg.channels, cfg.height, cfg.width};
  setup.model_spec.num_classes = cfg.num_classes;
  if (options.paper) {
    setup.model_spec.arch =
        (kind == data::TaskKind::kCifar || kind == data::TaskKind::kSpeech)
            ? nn::ModelArch::kCnn3
            : nn::ModelArch::kCnn2;
    setup.model_spec.hidden = 64;
    setup.model_spec.base_channels = 8;
  } else {
    setup.model_spec.arch = nn::ModelArch::kMlp2;
    setup.model_spec.hidden = 48;
  }

  // Optimizer: SGD with momentum for image tasks, Adam for speech (§6.1.2).
  if (kind == data::TaskKind::kSpeech) {
    setup.optimizer = std::make_unique<optim::Adam>(
        optim::AdamConfig{.learning_rate = options.paper ? 0.001 : 0.002});
  } else {
    setup.optimizer = std::make_unique<optim::Sgd>(optim::SgdConfig{
        .learning_rate = options.paper ? 0.01 : 0.005, .momentum = 0.9});
  }

  core::SimulationConfig& sim = setup.sim_cfg;
  sim.select_per_edge = sp.select_per_edge;
  sim.local_steps = sp.local_steps;
  sim.cloud_interval = options.cloud_interval;
  sim.batch_size = sp.batch_size;
  sim.total_steps = std::max<std::size_t>(
      10, static_cast<std::size_t>(
              std::lround(static_cast<double>(tuning.total_steps) *
                          options.steps_scale)));
  sim.eval_every = std::max<std::size_t>(1, sim.total_steps / 40);
  sim.eval_samples = sp.eval_samples;
  sim.seed = options.seed;
  sim.parallel_devices = true;

  setup.target_accuracy =
      options.paper ? tuning.target_paper : tuning.target_fast;
  return setup;
}

TaskSetup make_task_setup(const config::ScenarioSpec& spec) {
  config::BuiltScenario built = config::build_scenario(spec);
  TaskSetup setup;
  setup.kind = data::parse_task(spec.data.task);
  setup.train = std::make_shared<data::Dataset>(std::move(built.train));
  setup.test = std::make_shared<data::Dataset>(std::move(built.test));
  setup.partition = std::move(built.partition);
  setup.initial_edges = std::move(built.homes);
  setup.model_spec = built.model;
  setup.optimizer = std::move(built.optimizer);
  setup.sim_cfg = spec.sim;
  setup.sim_cfg.lr_schedule =
      config::make_lr_schedule(spec.lr_schedule, spec.sim.local_steps);
  setup.num_edges = spec.edges;
  return setup;
}

TaskSetup load_scenario_setup(const std::string& path) {
  return make_task_setup(config::load_scenario_file(path));
}

std::unique_ptr<core::Simulation> make_simulation(
    const TaskSetup& setup, core::Algorithm algorithm,
    const BenchOptions& options, std::size_t repeat) {
  auto mobility = std::make_unique<mobility::MarkovMobility>(
      setup.initial_edges, setup.num_edges, options.mobility,
      options.seed + 101 + 7919 * repeat);
  // Commuter-style locality: moved devices drift to neighbouring edges and
  // tend to return home, so the geographic class skew persists the way it
  // does in ONE-simulator traces (a uniform teleport would mix every edge
  // into IID within a few steps and erase the phenomenon under study).
  mobility->set_topology(mobility::MoveTopology::kHomeRing, 0.5);
  auto cfg = setup.sim_cfg;
  cfg.seed = setup.sim_cfg.seed + 104729 * repeat;
  return std::make_unique<core::Simulation>(
      cfg, setup.model_spec, *setup.optimizer, *setup.train,
      setup.partition, *setup.test, std::move(mobility),
      core::make_algorithm(algorithm));
}

std::vector<core::RunHistory> run_repeats(const TaskSetup& setup,
                                          core::Algorithm algorithm,
                                          const BenchOptions& options,
                                          ObsSession* obs) {
  std::vector<core::RunHistory> runs;
  const std::size_t n = std::max<std::size_t>(1, options.repeats);
  runs.reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    auto sim = make_simulation(setup, algorithm, options, r);
    if (obs != nullptr) obs->attach(*sim);
    runs.push_back(sim->run());
    if (obs != nullptr) obs->collect(*sim);
  }
  return runs;
}

RepeatSummary summarize_repeats(const std::vector<core::RunHistory>& runs,
                                double target) {
  RepeatSummary summary;
  std::vector<double> finals, bests;
  std::vector<double> ttas;
  for (const auto& run : runs) {
    finals.push_back(run.final_accuracy());
    bests.push_back(run.best_accuracy());
    if (const auto tta = run.time_to_accuracy(target)) {
      ttas.push_back(static_cast<double>(*tta));
    }
  }
  summary.mean_final = util::mean(finals);
  summary.std_final = util::sample_stddev(finals);
  summary.mean_best = util::mean(bests);
  if (ttas.size() * 2 >= runs.size() && !ttas.empty()) {
    summary.median_tta =
        static_cast<std::size_t>(util::quantile(ttas, 0.5));
  }
  return summary;
}

core::RunHistory run_and_collect(core::Simulation& simulation,
                                 const std::string& label, bool echo) {
  if (echo) {
    return simulation.run([&label](const core::EvalPoint& point) {
      std::cerr << "  [" << label << "] step " << point.step << "  acc "
                << point.accuracy << "  loss " << point.loss << "\n";
    });
  }
  return simulation.run();
}

SimRunSummary SimRunSummary::capture(const core::Simulation& simulation) {
  SimRunSummary s;
  s.steps = simulation.current_step();
  s.comm = simulation.comm_stats();
  for (const auto& link : simulation.transport().bytes_by_link()) {
    s.links.push_back(LinkRow{transport::to_string(link.kind),
                              link.stats.transfers, link.stats.dropped,
                              link.stats.bytes, link.in_flight});
  }
  s.total_wire_bytes = simulation.transport().total_bytes();
  s.total_in_flight = simulation.transport().total_in_flight();
  s.failed_uploads = simulation.failed_uploads();
  s.lost_downloads = simulation.lost_downloads();
  s.straggler_drops = simulation.straggler_drops();
  s.on_device_aggregations = simulation.on_device_aggregations();
  s.mean_blend_weight = simulation.mean_blend_weight();
  s.materializations = simulation.fleet().materializations();
  s.resident_peak = simulation.fleet().resident_peak();
  s.delta_bytes_at_rest = simulation.fleet().delta_bytes_at_rest();
  s.comm_backend = std::string(simulation.communicator().backend());
  const comm::CommCounters reduce_counters = simulation.comm_reduce_counters();
  s.reduces = reduce_counters.reduces;
  s.reduce_tasks = reduce_counters.reduce_tasks;
  s.reduce_max_depth = reduce_counters.max_depth;
  s.async_cloud = simulation.config().comm.async_cloud;
  s.max_staleness = simulation.config().comm.max_staleness;
  const comm::AsyncStats& async = simulation.async_stats();
  s.async_published = async.published;
  s.async_applied = async.applied;
  s.async_deferred = async.deferred;
  s.async_dropped_stale = async.dropped_stale;
  s.async_applies = async.applies;
  return s;
}

std::string json_summary_fields(const SimRunSummary& summary,
                                const std::string& indent) {
  std::ostringstream out;
  out << indent << "\"comm\": {\n"
      << indent << "  \"device_downloads\": " << summary.comm.device_downloads
      << ",\n"
      << indent << "  \"device_uploads\": " << summary.comm.device_uploads
      << ",\n"
      << indent << "  \"edge_uploads\": " << summary.comm.edge_uploads
      << ",\n"
      << indent << "  \"edge_downloads\": " << summary.comm.edge_downloads
      << ",\n"
      << indent << "  \"device_broadcasts\": "
      << summary.comm.device_broadcasts << ",\n"
      << indent << "  \"total_transfers\": " << summary.comm.total_transfers()
      << ",\n"
      << indent << "  \"wan_transfers\": " << summary.comm.wan_transfers()
      << ",\n"
      << indent << "  \"backend\": \"" << summary.comm_backend << "\",\n"
      << indent << "  \"reduces\": " << summary.reduces << ",\n"
      << indent << "  \"reduce_tasks\": " << summary.reduce_tasks << ",\n"
      << indent << "  \"reduce_max_depth\": " << summary.reduce_max_depth
      << ",\n"
      << indent << "  \"async_cloud\": "
      << (summary.async_cloud ? "true" : "false") << ",\n"
      << indent << "  \"max_staleness\": " << summary.max_staleness << ",\n"
      << indent << "  \"async_published\": " << summary.async_published
      << ",\n"
      << indent << "  \"async_applied\": " << summary.async_applied << ",\n"
      << indent << "  \"async_deferred\": " << summary.async_deferred
      << ",\n"
      << indent << "  \"async_dropped_stale\": "
      << summary.async_dropped_stale << ",\n"
      << indent << "  \"async_applies\": " << summary.async_applies << "\n"
      << indent << "},\n";
  out << indent << "\"transport\": {\n";
  for (std::size_t i = 0; i < summary.links.size(); ++i) {
    const auto& link = summary.links[i];
    out << indent << "  \"" << link.link << "\": {"
        << "\"transfers\": " << link.transfers
        << ", \"dropped\": " << link.dropped << ", \"bytes\": " << link.bytes
        << ", \"in_flight\": " << link.in_flight << "}"
        << (i + 1 < summary.links.size() ? "," : "") << "\n";
  }
  out << indent << "},\n"
      << indent << "\"total_wire_bytes\": " << summary.total_wire_bytes
      << ",\n"
      << indent << "\"total_in_flight\": " << summary.total_in_flight
      << ",\n"
      << indent << "\"failed_uploads\": " << summary.failed_uploads << ",\n"
      << indent << "\"lost_downloads\": " << summary.lost_downloads << ",\n"
      << indent << "\"straggler_drops\": " << summary.straggler_drops
      << ",\n"
      << indent << "\"on_device_aggregations\": "
      << summary.on_device_aggregations << ",\n"
      << indent << "\"mean_blend_weight\": "
      << config::format_number(summary.mean_blend_weight) << ",\n"
      << indent << "\"fleet\": {\"materializations\": "
      << summary.materializations
      << ", \"resident_peak\": " << summary.resident_peak
      << ", \"delta_bytes_at_rest\": " << summary.delta_bytes_at_rest << "}";
  return out.str();
}

void append_summary_members(config::Json& object,
                            const SimRunSummary& summary) {
  using config::Json;
  Json comm = Json::make_object();
  comm.set("device_downloads", Json::make_uint(summary.comm.device_downloads));
  comm.set("device_uploads", Json::make_uint(summary.comm.device_uploads));
  comm.set("edge_uploads", Json::make_uint(summary.comm.edge_uploads));
  comm.set("edge_downloads", Json::make_uint(summary.comm.edge_downloads));
  comm.set("device_broadcasts",
           Json::make_uint(summary.comm.device_broadcasts));
  comm.set("total_transfers", Json::make_uint(summary.comm.total_transfers()));
  comm.set("wan_transfers", Json::make_uint(summary.comm.wan_transfers()));
  comm.set("backend", Json::make_string(summary.comm_backend));
  comm.set("reduces", Json::make_uint(summary.reduces));
  comm.set("reduce_tasks", Json::make_uint(summary.reduce_tasks));
  comm.set("reduce_max_depth", Json::make_uint(summary.reduce_max_depth));
  comm.set("async_cloud", Json::make_bool(summary.async_cloud));
  comm.set("max_staleness", Json::make_uint(summary.max_staleness));
  comm.set("async_published", Json::make_uint(summary.async_published));
  comm.set("async_applied", Json::make_uint(summary.async_applied));
  comm.set("async_deferred", Json::make_uint(summary.async_deferred));
  comm.set("async_dropped_stale",
           Json::make_uint(summary.async_dropped_stale));
  comm.set("async_applies", Json::make_uint(summary.async_applies));
  object.set("comm", std::move(comm));
  Json transport = Json::make_object();
  for (const auto& link : summary.links) {
    Json row = Json::make_object();
    row.set("transfers", Json::make_uint(link.transfers));
    row.set("dropped", Json::make_uint(link.dropped));
    row.set("bytes", Json::make_uint(link.bytes));
    row.set("in_flight", Json::make_uint(link.in_flight));
    transport.set(link.link, std::move(row));
  }
  object.set("transport", std::move(transport));
  object.set("total_wire_bytes", Json::make_uint(summary.total_wire_bytes));
  object.set("total_in_flight", Json::make_uint(summary.total_in_flight));
  object.set("failed_uploads", Json::make_uint(summary.failed_uploads));
  object.set("lost_downloads", Json::make_uint(summary.lost_downloads));
  object.set("straggler_drops", Json::make_uint(summary.straggler_drops));
  object.set("on_device_aggregations",
             Json::make_uint(summary.on_device_aggregations));
  object.set("mean_blend_weight",
             Json::make_number(summary.mean_blend_weight));
  Json fleet = Json::make_object();
  fleet.set("materializations", Json::make_uint(summary.materializations));
  fleet.set("resident_peak", Json::make_uint(summary.resident_peak));
  fleet.set("delta_bytes_at_rest",
            Json::make_uint(summary.delta_bytes_at_rest));
  object.set("fleet", std::move(fleet));
}

namespace {

/// Reads a "<key>:   <n> kB" line from /proc/self/status; 0 when absent.
std::size_t proc_status_kb(const char* key) {
  std::ifstream status("/proc/self/status");
  if (!status) return 0;
  const std::string prefix = std::string(key) + ":";
  std::string line;
  while (std::getline(status, line)) {
    if (line.compare(0, prefix.size(), prefix) != 0) continue;
    std::size_t kb = 0;
    std::istringstream fields(line.substr(prefix.size()));
    fields >> kb;
    return kb;
  }
  return 0;
}

}  // namespace

std::size_t peak_rss_bytes() {
  const std::size_t hwm = proc_status_kb("VmHWM");
  if (hwm > 0) return hwm * 1024;
  return current_rss_bytes();
}

std::size_t current_rss_bytes() { return proc_status_kb("VmRSS") * 1024; }

bool reset_peak_rss() {
  std::ofstream clear_refs("/proc/self/clear_refs");
  if (!clear_refs) return false;
  clear_refs << "5";
  return static_cast<bool>(clear_refs);
}

std::unique_ptr<util::CsvWriter> open_csv(const BenchOptions& options) {
  if (options.out.empty()) {
    return std::make_unique<util::CsvWriter>(std::cout);
  }
  return std::make_unique<util::CsvWriter>(options.out);
}

void print_banner(const std::string& title, const BenchOptions& options) {
  // Benches call this right after CLI parsing and before any simulation is
  // built, so the --threads override lands before the first global() use.
  parallel::ThreadPool::set_default_size(options.threads);
  std::cerr << "== " << title << " ==\n"
            << "   scale=" << (options.paper ? "paper" : "fast")
            << " P=" << options.mobility << " Tc=" << options.cloud_interval
            << " seed=" << options.seed
            << " threads=" << parallel::ThreadPool::default_size() << "\n";
}

}  // namespace middlefl::bench
