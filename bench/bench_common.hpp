// Shared experiment plumbing for the figure-reproduction benches.
//
// Every bench runs at one of two scales:
//   fast  (default) — shrunken datasets/models/step counts so the whole
//                     suite finishes in minutes on one core; preserves the
//                     qualitative shape of every figure.
//   paper (--paper)  — the configuration of §6.1.2: 10 edges, 100 devices,
//                     K=5, I=10, T_c=10, P=0.5, CNN-2/CNN-3 models, SGD
//                     (lr .01, momentum .9) or Adam (lr .001, speech).
#pragma once

#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "config/scenario.hpp"
#include "core/simulation.hpp"
#include "data/partition.hpp"
#include "obs/observability.hpp"
#include "data/synthetic.hpp"
#include "mobility/markov_mobility.hpp"
#include "nn/model_factory.hpp"
#include "optim/adam.hpp"
#include "optim/sgd.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

namespace middlefl::bench {

struct BenchOptions {
  bool paper = false;
  double mobility = 0.5;       // global mobility P
  std::size_t cloud_interval = 10;  // T_c
  std::uint64_t seed = 42;
  std::string out;  // optional CSV path (stdout otherwise)
  /// Multiplies every step budget (quick smoke runs: --steps-scale 0.1).
  double steps_scale = 1.0;
  /// Independent repetitions per configuration (different simulation and
  /// mobility seeds over the same datasets); benches report mean +- std.
  std::size_t repeats = 1;
  /// Worker threads for the shared pool (0 = MIDDLEFL_THREADS env or
  /// hardware concurrency). Applied via ThreadPool::set_default_size by
  /// print_banner, before any bench touches the global pool.
  std::size_t threads = 0;

  /// Observability capture (all optional; empty = fully disabled, the
  /// simulator stays on its zero-cost path).
  std::string trace_out;    // Chrome trace-event JSON (Perfetto)
  std::string metrics_out;  // metrics snapshot JSON
  std::string log_jsonl;    // per-step/per-eval JSONL records

  /// Registers the shared flags on a parser.
  void register_flags(util::CliParser& cli);
};

/// Owns the recorders behind the shared --trace-out/--metrics-out/
/// --log-jsonl flags and wires them into simulations. With no capture
/// flags set every method is a no-op. One session spans a whole bench
/// invocation: attach() each simulation before running it, collect() it
/// after (transport gauges), finish() once at the end to write the files.
/// The destructor detaches the recorders from the global pool.
class ObsSession {
 public:
  explicit ObsSession(const BenchOptions& options);
  ~ObsSession();
  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  bool enabled() const noexcept { return bundle_.enabled(); }
  obs::TraceRecorder* trace() noexcept { return bundle_.trace; }

  /// Wires the recorders into `simulation` (and the global pool).
  void attach(core::Simulation& simulation);
  /// Publishes the simulation's transport totals as gauges (last call
  /// wins — hand it the run you want the snapshot to describe).
  void collect(core::Simulation& simulation);
  /// Writes the trace/metrics files; call once, after the last run.
  void finish();

 private:
  std::unique_ptr<obs::TraceRecorder> trace_;
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  std::unique_ptr<obs::RunLogger> logger_;
  obs::Observability bundle_;
  std::string trace_out_;
  std::string metrics_out_;
};

/// Everything needed to construct Simulations for one task at one scale.
struct TaskSetup {
  data::TaskKind kind;
  std::shared_ptr<data::Dataset> train;
  std::shared_ptr<data::Dataset> test;
  data::Partition partition;
  std::vector<std::size_t> initial_edges;
  nn::ModelSpec model_spec;
  std::unique_ptr<optim::Optimizer> optimizer;
  core::SimulationConfig sim_cfg;
  std::size_t num_edges = 0;
  /// The paper's time-to-accuracy target for this task (scaled down in fast
  /// mode because the synthetic stand-in tasks top out lower).
  double target_accuracy = 0.0;
};

/// Builds the full per-task experiment environment (datasets, Non-IID
/// partition, class-grouped initial edge assignment, model, optimizer and
/// simulation config) for the standard evaluation setup of §6.1.
TaskSetup make_task_setup(data::TaskKind kind, const BenchOptions& options);

/// Scenario bridge: builds a TaskSetup from a declarative spec through the
/// config builder, so figure benches and `middlefl_run --scenario` share
/// one construction path (same derived seeds, bitwise-identical runs).
TaskSetup make_task_setup(const config::ScenarioSpec& spec);
/// Loads `path` (strict parse/decode) and builds its TaskSetup.
TaskSetup load_scenario_setup(const std::string& path);

/// Constructs a Simulation for `algorithm` over the given setup, with the
/// requested mobility P (Markov model) and T_c. `repeat` shifts the
/// simulation/mobility seeds (the datasets stay fixed), giving independent
/// repetitions of the same configuration.
std::unique_ptr<core::Simulation> make_simulation(
    const TaskSetup& setup, core::Algorithm algorithm,
    const BenchOptions& options, std::size_t repeat = 0);

/// Runs `options.repeats` independent repetitions and returns all
/// histories (index = repeat). When `obs` is given, every repetition is
/// attached to (and collected into) the session.
std::vector<core::RunHistory> run_repeats(const TaskSetup& setup,
                                          core::Algorithm algorithm,
                                          const BenchOptions& options,
                                          ObsSession* obs = nullptr);

/// Mean and sample standard deviation of final accuracy over repetitions.
struct RepeatSummary {
  double mean_final = 0.0;
  double std_final = 0.0;
  double mean_best = 0.0;
  /// Median time-to-target; nullopt if fewer than half the runs hit it.
  std::optional<std::size_t> median_tta;
};
RepeatSummary summarize_repeats(const std::vector<core::RunHistory>& runs,
                                double target);

/// Runs and returns the history, echoing eval points when `echo` is set.
core::RunHistory run_and_collect(core::Simulation& simulation,
                                 const std::string& label, bool echo = false);

/// Whole-run communication/transport/dropout/fleet accounting captured
/// from a live Simulation — the block every JSON summary emitter
/// (middlefl_run --json-summary, step_throughput, fleet_scale,
/// scenario_sweep) shares. Capture while the simulation is alive; format
/// later with json_summary_fields.
struct SimRunSummary {
  std::size_t steps = 0;
  core::CommStats comm;
  struct LinkRow {
    std::string link;
    std::size_t transfers = 0;
    std::size_t dropped = 0;
    std::size_t bytes = 0;
    std::size_t in_flight = 0;
  };
  std::vector<LinkRow> links;
  std::size_t total_wire_bytes = 0;
  std::size_t total_in_flight = 0;
  std::size_t failed_uploads = 0;
  std::size_t lost_downloads = 0;
  std::size_t straggler_drops = 0;
  std::size_t on_device_aggregations = 0;
  double mean_blend_weight = 0.0;
  std::uint64_t materializations = 0;
  std::uint64_t resident_peak = 0;
  std::uint64_t delta_bytes_at_rest = 0;
  /// Collectives layer: backend id, reduction counters and — when
  /// comm.async_cloud is on — the semi-async sync counters.
  std::string comm_backend;
  std::uint64_t reduces = 0;
  std::uint64_t reduce_tasks = 0;
  std::uint64_t reduce_max_depth = 0;
  bool async_cloud = false;
  std::uint64_t max_staleness = 0;
  std::uint64_t async_published = 0;
  std::uint64_t async_applied = 0;
  std::uint64_t async_deferred = 0;
  std::uint64_t async_dropped_stale = 0;
  std::uint64_t async_applies = 0;

  static SimRunSummary capture(const core::Simulation& simulation);
};

/// Renders the summary as JSON object members — `"comm": {...}`,
/// `"transport": {...}`, wire-byte totals, dropout/blend counters and the
/// `"fleet"` block — one per line, each prefixed with `indent`, without
/// surrounding braces or a trailing comma, so emitters splice it into
/// their own top-level object.
std::string json_summary_fields(const SimRunSummary& summary,
                                const std::string& indent);

/// Appends the same members json_summary_fields renders onto a
/// config::Json object — for emitters that assemble rows as Json values
/// (scenario_sweep dumps each row compact as one JSONL line).
void append_summary_members(config::Json& object, const SimRunSummary& summary);

/// Peak resident set size (VmHWM) of this process in bytes, read from
/// /proc/self/status; falls back to current RSS, and 0 where neither is
/// available (non-Linux). The memory-footprint figure of merit for the
/// fleet-scale benches.
std::size_t peak_rss_bytes();
/// Current resident set size (VmRSS) in bytes; 0 when unavailable.
std::size_t current_rss_bytes();
/// Re-arms the kernel's RSS high-water mark (writes "5" to
/// /proc/self/clear_refs) so peak_rss_bytes() measures only what follows.
/// Returns false when the kernel does not support resetting.
bool reset_peak_rss();

/// Opens options.out or falls back to stdout.
std::unique_ptr<util::CsvWriter> open_csv(const BenchOptions& options);

/// Pretty banner for bench stdout.
void print_banner(const std::string& title, const BenchOptions& options);

}  // namespace middlefl::bench
