// Remark 1 — numerical sweep of the Theorem-1 convergence bound over the
// global mobility P and the blend coefficient alpha.
//
// Reproduces the analytical claims: (i) the bound decreases monotonically
// in P for every admissible alpha (Eq. 20's derivative is negative); (ii)
// the mobility term is minimized at alpha = 1/2; (iii) the optimization
// term vanishes as the horizon T grows, leaving the mobility term as the
// residual error floor.
#include <iomanip>
#include <limits>
#include <iostream>
#include <memory>

#include "core/convergence.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

namespace {

using middlefl::core::Theorem1Params;

int run(int argc, const char* const* argv) {
  double beta = 1.0, mu = 0.1, big_g = 1.0, big_b = 1.0;
  std::size_t local_steps = 10;
  std::size_t horizon = 1000;
  std::string out;
  middlefl::util::CliParser cli("remark1: Theorem-1 bound vs mobility P");
  cli.add_flag("beta", "smoothness constant", &beta);
  cli.add_flag("mu", "strong-convexity constant", &mu);
  cli.add_flag("G", "gradient norm bound", &big_g);
  cli.add_flag("B", "variance+heterogeneity constant B", &big_b);
  cli.add_flag("I", "local steps per round", &local_steps);
  cli.add_flag("T", "horizon", &horizon);
  cli.add_flag("out", "CSV path (stdout otherwise)", &out);
  if (!cli.parse(argc, argv)) return 0;

  std::unique_ptr<middlefl::util::CsvWriter> csv;
  if (out.empty()) {
    csv = std::make_unique<middlefl::util::CsvWriter>(std::cout);
  } else {
    csv = std::make_unique<middlefl::util::CsvWriter>(out);
  }
  csv->header({"alpha", "mobility", "bound", "mobility_term", "dbound_dP"});

  Theorem1Params params;
  params.beta = beta;
  params.mu = mu;
  params.big_g = big_g;
  params.big_b = big_b;
  params.local_steps = local_steps;
  params.horizon = horizon;
  params.init_distance_sq = 1.0;

  bool monotone = true;
  for (const double alpha : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    params.alpha = alpha;
    double previous = std::numeric_limits<double>::infinity();
    for (int i = 1; i <= 20; ++i) {
      const double p = 0.05 * i;
      params.mobility = p;
      const double bound = middlefl::core::theorem1_bound(params);
      const double term = middlefl::core::theorem1_mobility_term(params);
      const double derivative =
          middlefl::core::theorem1_dbound_dmobility(params);
      csv->add(alpha).add(p).add(bound).add(term).add(derivative);
      csv->end_row();
      monotone = monotone && bound < previous && derivative < 0.0;
      previous = bound;
    }
  }

  // Horizon sweep at the reference point to show the error floor.
  std::cerr << std::scientific << std::setprecision(3);
  params.alpha = 0.5;
  params.mobility = 0.5;
  for (const std::size_t t : {std::size_t{10}, std::size_t{100},
                              std::size_t{1000}, std::size_t{10000},
                              std::size_t{100000}}) {
    params.horizon = t;
    std::cerr << "T=" << std::setw(6) << t << "  bound "
              << middlefl::core::theorem1_bound(params) << "  (floor "
              << middlefl::core::theorem1_mobility_term(params) << ")\n";
  }
  std::cerr << (monotone
                    ? "Remark 1 CONFIRMED: bound strictly decreasing in P "
                      "with negative derivative for every alpha\n"
                    : "Remark 1 VIOLATED: non-monotone bound detected\n");
  return monotone ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
