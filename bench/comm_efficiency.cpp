// Communication efficiency — accuracy per transferred byte.
//
// HFL's raison d'etre (§1, [19,33]) is trading expensive WAN traffic for
// cheap edge-local traffic; MIDDLE additionally claims its knowledge
// transfer is communication-free (the carried model is already on the
// device, unlike FedMes' extra edge download). This bench quantifies both:
// for each algorithm it reports final accuracy, wireless/WAN transfer
// counts, and the uplink byte volume under three upload-compression
// settings (none / top-10% sparsification / 8-bit quantization).
#include <iomanip>
#include <iostream>

#include "bench_common.hpp"

namespace {

using namespace middlefl;

int run(int argc, const char* const* argv) {
  bench::BenchOptions options;
  std::string task_flag = "mnist";
  util::CliParser cli("comm-efficiency: accuracy vs transferred bytes");
  options.register_flags(cli);
  cli.add_flag("task", "task to measure on", &task_flag);
  if (!cli.parse(argc, argv)) return 0;
  bench::print_banner("Communication efficiency", options);

  const auto kind = data::parse_task(task_flag);
  const auto setup = bench::make_task_setup(kind, options);

  struct CompressionCase {
    std::string name;
    core::CompressionConfig config;
  };
  const CompressionCase compressions[] = {
      {"none", {core::CompressionKind::kNone, 0.1}},
      {"top10%", {core::CompressionKind::kTopK, 0.1}},
      {"quant8", {core::CompressionKind::kQuant8, 0.1}},
  };

  auto csv = bench::open_csv(options);
  csv->header({"algorithm", "compression", "final_accuracy",
               "wireless_transfers", "wan_transfers", "upload_mb",
               "accuracy_per_upload_mb"});

  for (const auto algorithm : core::kAllAlgorithms) {
    for (const auto& compression : compressions) {
      auto mobility = std::make_unique<mobility::MarkovMobility>(
          setup.initial_edges, setup.num_edges, options.mobility,
          options.seed + 101);
      mobility->set_topology(mobility::MoveTopology::kHomeRing, 0.5);
      auto cfg = setup.sim_cfg;
      cfg.upload_compression = compression.config;
      core::Simulation sim(cfg, setup.model_spec, *setup.optimizer,
                           *setup.train, setup.partition, *setup.test,
                           std::move(mobility),
                           core::make_algorithm(algorithm));
      const auto history = sim.run();
      const double upload_mb =
          static_cast<double>(sim.upload_bytes()) / (1024.0 * 1024.0);
      csv->add(core::to_string(algorithm))
          .add(compression.name)
          .add(history.final_accuracy())
          .add(sim.comm_stats().wireless_transfers())
          .add(sim.comm_stats().wan_transfers())
          .add(upload_mb)
          .add(upload_mb > 0 ? history.final_accuracy() / upload_mb : 0.0);
      csv->end_row();
      std::cerr << "   " << std::setw(8) << core::to_string(algorithm)
                << "  " << std::setw(7) << compression.name << "  acc "
                << std::fixed << std::setprecision(3)
                << history.final_accuracy() << "  uplink " << std::setw(7)
                << std::setprecision(2) << upload_mb << " MB  (wireless "
                << sim.comm_stats().wireless_transfers() << ", WAN "
                << sim.comm_stats().wan_transfers() << " transfers)\n";
    }
  }
  std::cerr << "(MIDDLE's knowledge transfer adds zero transfers; FedMes "
               "pays an extra edge download per moved device)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
