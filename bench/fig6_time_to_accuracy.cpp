// Figure 6 — time-to-accuracy of MIDDLE vs OORT / FedMes / Greedy /
// Ensemble on the four learning tasks, plus the headline speedup table
// (the paper reports 1.51x-6.85x for MIDDLE over the baselines).
//
// Output: one CSV row per (task, algorithm, eval step) with the accuracy
// series, followed by a time-to-target / speedup summary on stderr.
#include <iomanip>
#include <iostream>
#include <map>
#include <vector>

#include "bench_common.hpp"
#include "util/stats.hpp"

namespace {

using namespace middlefl;
using bench::BenchOptions;

int run(int argc, const char* const* argv) {
  BenchOptions options;
  std::string tasks_flag = "mnist,emnist,cifar10,speech";
  util::CliParser cli(
      "fig6: time-to-accuracy over all learning tasks and algorithms");
  options.register_flags(cli);
  cli.add_flag("tasks", "comma-separated task list", &tasks_flag);
  if (!cli.parse(argc, argv)) return 0;

  bench::print_banner("Figure 6: time-to-accuracy", options);
  // One observability session spans the whole figure: every (task,
  // algorithm, repeat) run lands on the same trace/metrics/JSONL outputs,
  // so `--trace-out fig6.json` captures a Perfetto-loadable timeline of
  // the full sweep. Inert without the capture flags.
  bench::ObsSession obs(options);
  auto csv = bench::open_csv(options);
  csv->header({"task", "algorithm", "repeat", "step", "accuracy", "loss"});

  // Parse the task list.
  std::vector<data::TaskKind> kinds;
  for (std::size_t pos = 0; pos < tasks_flag.size();) {
    const auto comma = tasks_flag.find(',', pos);
    const auto end = comma == std::string::npos ? tasks_flag.size() : comma;
    kinds.push_back(data::parse_task(tasks_flag.substr(pos, end - pos)));
    pos = end + 1;
  }

  std::map<std::string, std::map<std::string, bench::RepeatSummary>> summaries;
  std::map<std::string, double> targets;

  for (const auto kind : kinds) {
    const auto setup = bench::make_task_setup(kind, options);
    const std::string task = data::to_string(kind);
    targets[task] = setup.target_accuracy;
    std::cerr << "-- task " << task << ": " << setup.sim_cfg.total_steps
              << " steps, target " << setup.target_accuracy << ", "
              << std::max<std::size_t>(1, options.repeats) << " repeat(s)\n";
    for (const auto algorithm : core::kAllAlgorithms) {
      const auto runs = bench::run_repeats(setup, algorithm, options, &obs);
      for (std::size_t r = 0; r < runs.size(); ++r) {
        for (const auto& point : runs[r].points) {
          csv->add(task)
              .add(runs[r].algorithm)
              .add(r)
              .add(point.step)
              .add(point.accuracy)
              .add(point.loss);
          csv->end_row();
        }
      }
      const auto summary =
          bench::summarize_repeats(runs, setup.target_accuracy);
      summaries[task][runs.front().algorithm] = summary;
      std::cerr << "   " << std::setw(8) << runs.front().algorithm
                << "  final acc " << std::fixed << std::setprecision(3)
                << summary.mean_final;
      if (runs.size() > 1) {
        std::cerr << " +- " << summary.std_final;
      }
      std::cerr << "  time-to-target "
                << (summary.median_tta ? std::to_string(*summary.median_tta)
                                       : std::string("-"))
                << "\n";
    }
  }

  // Speedup table: MIDDLE's median time-to-target vs every baseline.
  std::cerr << "\n== Speedup of MIDDLE over baselines (time steps to target "
               "accuracy) ==\n";
  double best = 0.0, worst = std::numeric_limits<double>::infinity();
  for (const auto& [task, by_alg] : summaries) {
    const auto& middle = by_alg.at("MIDDLE");
    for (const auto& [alg, summary] : by_alg) {
      if (alg == "MIDDLE") continue;
      std::cerr << "   " << task << "  vs " << std::setw(8) << alg << " : ";
      if (!middle.median_tta) {
        std::cerr << "MIDDLE missed target\n";
        continue;
      }
      if (!summary.median_tta) {
        std::cerr << "baseline never reached target (speedup -> inf)\n";
        best = std::max(best, 10.0);
        continue;
      }
      const double ratio = static_cast<double>(*summary.median_tta) /
                           static_cast<double>(*middle.median_tta);
      std::cerr << std::fixed << std::setprecision(2) << ratio << "x\n";
      best = std::max(best, ratio);
      worst = std::min(worst, ratio);
    }
  }
  if (std::isfinite(worst) && best > 0.0) {
    std::cerr << "   overall speedup range: " << std::fixed
              << std::setprecision(2) << worst << "x - " << best
              << "x  (paper: 1.51x - 6.85x)\n";
  }
  obs.finish();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
