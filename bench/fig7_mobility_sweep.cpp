// Figure 7 — final global-model accuracy versus global mobility
// P in {0.1, 0.3, 0.5} for all five algorithms on each task.
//
// The paper's shape: MIDDLE dominates at every P, and for MIDDLE the final
// accuracy grows with P on the image tasks (Remark 1's prediction), while
// several baselines are non-monotone ("rising first and then falling").
#include <iomanip>
#include <iostream>
#include <sstream>

#include "bench_common.hpp"

namespace {

using namespace middlefl;

int run(int argc, const char* const* argv) {
  bench::BenchOptions options;
  std::string tasks_flag = "mnist,emnist,cifar10,speech";
  std::string p_flag = "0.1,0.3,0.5";
  util::CliParser cli("fig7: final accuracy vs global mobility P");
  options.register_flags(cli);
  cli.add_flag("tasks", "comma-separated task list", &tasks_flag);
  cli.add_flag("p-values", "comma-separated mobility values", &p_flag);
  if (!cli.parse(argc, argv)) return 0;
  bench::print_banner("Figure 7: mobility sweep", options);

  std::vector<data::TaskKind> kinds;
  for (std::size_t pos = 0; pos < tasks_flag.size();) {
    const auto comma = tasks_flag.find(',', pos);
    const auto end = comma == std::string::npos ? tasks_flag.size() : comma;
    kinds.push_back(data::parse_task(tasks_flag.substr(pos, end - pos)));
    pos = end + 1;
  }
  std::vector<double> p_values;
  {
    std::istringstream ps(p_flag);
    std::string token;
    while (std::getline(ps, token, ',')) p_values.push_back(std::stod(token));
  }

  auto csv = bench::open_csv(options);
  csv->header({"task", "algorithm", "mobility", "final_accuracy",
               "final_accuracy_std", "best_accuracy"});

  for (const auto kind : kinds) {
    std::cerr << "-- task " << data::to_string(kind) << "\n";
    for (const auto algorithm : core::kAllAlgorithms) {
      std::cerr << "   " << std::setw(8) << core::to_string(algorithm) << ":";
      for (const double p : p_values) {
        bench::BenchOptions run_options = options;
        run_options.mobility = p;
        const auto setup = bench::make_task_setup(kind, run_options);
        const auto runs = bench::run_repeats(setup, algorithm, run_options);
        const auto summary =
            bench::summarize_repeats(runs, setup.target_accuracy);
        csv->add(data::to_string(kind))
            .add(core::to_string(algorithm))
            .add(p)
            .add(summary.mean_final)
            .add(summary.std_final)
            .add(summary.mean_best);
        csv->end_row();
        std::cerr << "  P=" << p << " -> " << std::fixed
                  << std::setprecision(3) << summary.mean_final;
      }
      std::cerr << "\n";
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
