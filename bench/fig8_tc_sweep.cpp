// Figure 8 — effect of the cloud-edge communication interval
// T_c in {5, 10, 20}, MIDDLE vs OORT on each task.
//
// The paper's shape: OORT (no cross-edge knowledge between cloud syncs)
// loses more final accuracy as T_c grows, while MIDDLE's mobility-borne
// model sharing keeps its curves close together and less oscillatory.
#include <iomanip>
#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "util/stats.hpp"

namespace {

using namespace middlefl;

/// Mean absolute step-to-step change of the accuracy series over its second
/// half — the "oscillation" the paper describes qualitatively.
double tail_oscillation(const core::RunHistory& history) {
  const auto series = history.accuracy_series();
  if (series.size() < 4) return 0.0;
  double acc = 0.0;
  std::size_t count = 0;
  for (std::size_t i = series.size() / 2; i + 1 < series.size(); ++i) {
    acc += std::abs(series[i + 1] - series[i]);
    ++count;
  }
  return count > 0 ? acc / static_cast<double>(count) : 0.0;
}

int run(int argc, const char* const* argv) {
  bench::BenchOptions options;
  std::string tasks_flag = "mnist,emnist,cifar10,speech";
  std::string tc_flag = "5,10,20";
  util::CliParser cli("fig8: effect of cloud-edge interval T_c (MIDDLE vs OORT)");
  options.register_flags(cli);
  cli.add_flag("tasks", "comma-separated task list", &tasks_flag);
  cli.add_flag("tc-values", "comma-separated T_c values", &tc_flag);
  if (!cli.parse(argc, argv)) return 0;
  bench::print_banner("Figure 8: T_c sweep", options);

  std::vector<data::TaskKind> kinds;
  for (std::size_t pos = 0; pos < tasks_flag.size();) {
    const auto comma = tasks_flag.find(',', pos);
    const auto end = comma == std::string::npos ? tasks_flag.size() : comma;
    kinds.push_back(data::parse_task(tasks_flag.substr(pos, end - pos)));
    pos = end + 1;
  }
  std::vector<std::size_t> tc_values;
  {
    std::istringstream ts(tc_flag);
    std::string token;
    while (std::getline(ts, token, ',')) {
      tc_values.push_back(std::stoul(token));
    }
  }

  auto csv = bench::open_csv(options);
  csv->header({"task", "algorithm", "tc", "repeat", "step", "accuracy"});

  for (const auto kind : kinds) {
    std::cerr << "-- task " << data::to_string(kind) << "\n";
    for (const auto algorithm : {core::Algorithm::kMiddle,
                                 core::Algorithm::kOort}) {
      for (const std::size_t tc : tc_values) {
        bench::BenchOptions run_options = options;
        run_options.cloud_interval = tc;
        const auto setup = bench::make_task_setup(kind, run_options);
        const auto runs = bench::run_repeats(setup, algorithm, run_options);
        for (std::size_t r = 0; r < runs.size(); ++r) {
          for (const auto& point : runs[r].points) {
            csv->add(data::to_string(kind))
                .add(core::to_string(algorithm))
                .add(tc)
                .add(r)
                .add(point.step)
                .add(point.accuracy);
            csv->end_row();
          }
        }
        const auto summary =
            bench::summarize_repeats(runs, setup.target_accuracy);
        double oscillation = 0.0;
        for (const auto& run : runs) oscillation += tail_oscillation(run);
        oscillation /= static_cast<double>(runs.size());
        std::cerr << "   " << std::setw(6) << core::to_string(algorithm)
                  << " Tc=" << std::setw(2) << tc << "  final acc "
                  << std::fixed << std::setprecision(3)
                  << summary.mean_final;
        if (runs.size() > 1) std::cerr << " +- " << summary.std_final;
        std::cerr << "  tail oscillation " << std::setprecision(4)
                  << oscillation << "\n";
      }
    }
  }
  std::cerr << "(paper's shape: OORT's final accuracy drops faster as T_c "
               "grows; MIDDLE's curves stay closer together)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
