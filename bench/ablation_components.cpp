// Ablation of MIDDLE's design choices (DESIGN.md §5), on the MNIST-like
// task with the Fig-6 configuration:
//
//   full            similarity selection + similarity blend (Eq. 9)
//   no-blend        similarity selection + plain edge download
//   no-selection    random selection      + similarity blend
//   neither         random selection      + plain download (= HierFAVG)
//   inverted-sel    MOST-similar selection + similarity blend (sign flip)
//   alpha=<a>       similarity selection + fixed-alpha blend, a in
//                   {0.3, 0.5, 0.7, 0.9} (Theorem 1's setting; alpha is the
//                   weight of the EDGE model)
//   uniform-cloud   full MIDDLE but uniform edge weights at the cloud
//                   instead of Eq. 7's participating-sample weights
#include <iomanip>
#include <iostream>

#include "bench_common.hpp"

namespace {

using namespace middlefl;

struct Variant {
  std::string name;
  core::AlgorithmSpec spec;
  bool weighted_cloud = true;
  mobility::MoveTopology topology = mobility::MoveTopology::kHomeRing;
};

std::vector<Variant> make_variants() {
  std::vector<Variant> variants;
  const auto add = [&variants](std::string name,
                               std::unique_ptr<core::SelectionStrategy> sel,
                               core::OnDeviceRule rule, double alpha = 0.5,
                               bool weighted_cloud = true) {
    Variant v;
    v.spec.name = name;
    v.spec.selection = std::move(sel);
    v.spec.on_move = rule;
    v.spec.fixed_alpha = alpha;
    v.name = std::move(name);
    v.weighted_cloud = weighted_cloud;
    variants.push_back(std::move(v));
  };
  using core::OnDeviceRule;
  add("full", std::make_unique<core::SimilaritySelection>(),
      OnDeviceRule::kSimilarityBlend);
  add("no-blend", std::make_unique<core::SimilaritySelection>(),
      OnDeviceRule::kDownloadEdge);
  add("no-selection", std::make_unique<core::RandomSelection>(),
      OnDeviceRule::kSimilarityBlend);
  add("neither", std::make_unique<core::RandomSelection>(),
      OnDeviceRule::kDownloadEdge);
  add("inverted-sel",
      std::make_unique<core::SimilaritySelection>(/*invert=*/true),
      OnDeviceRule::kSimilarityBlend);
  for (const double alpha : {0.3, 0.5, 0.7, 0.9}) {
    add("alpha=" + std::to_string(alpha).substr(0, 3),
        std::make_unique<core::SimilaritySelection>(),
        OnDeviceRule::kFixedAlpha, alpha);
  }
  add("uniform-cloud", std::make_unique<core::SimilaritySelection>(),
      OnDeviceRule::kSimilarityBlend, 0.5, /*weighted_cloud=*/false);
  add("signed-blend", std::make_unique<core::SimilaritySelection>(),
      OnDeviceRule::kSignedBlend);
  add("hybrid-sel", std::make_unique<core::HybridSelection>(),
      OnDeviceRule::kSimilarityBlend);
  // Mobility-topology ablation: uniform teleports dissolve the cross-edge
  // class skew within a few steps (see DESIGN.md §2), ring keeps it without
  // a home pull.
  {
    Variant v;
    v.spec.name = "topo-uniform";
    v.spec.selection = std::make_unique<core::SimilaritySelection>();
    v.spec.on_move = OnDeviceRule::kSimilarityBlend;
    v.name = "topo-uniform";
    v.topology = mobility::MoveTopology::kUniform;
    variants.push_back(std::move(v));
  }
  {
    Variant v;
    v.spec.name = "topo-ring";
    v.spec.selection = std::make_unique<core::SimilaritySelection>();
    v.spec.on_move = OnDeviceRule::kSimilarityBlend;
    v.name = "topo-ring";
    v.topology = mobility::MoveTopology::kRing;
    variants.push_back(std::move(v));
  }
  return variants;
}

int run(int argc, const char* const* argv) {
  bench::BenchOptions options;
  std::string task_flag = "mnist";
  util::CliParser cli("ablation: MIDDLE component contributions");
  options.register_flags(cli);
  cli.add_flag("task", "task to ablate on", &task_flag);
  if (!cli.parse(argc, argv)) return 0;
  bench::print_banner("Ablation: MIDDLE components", options);

  const auto kind = data::parse_task(task_flag);
  const auto setup = bench::make_task_setup(kind, options);

  auto csv = bench::open_csv(options);
  csv->header({"variant", "final_accuracy", "best_accuracy",
               "time_to_target", "on_device_aggregations",
               "mean_blend_weight"});

  for (auto& variant : make_variants()) {
    auto mobility = std::make_unique<mobility::MarkovMobility>(
        setup.initial_edges, setup.num_edges, options.mobility,
        options.seed + 101);
    mobility->set_topology(variant.topology, 0.5);
    auto cfg = setup.sim_cfg;
    cfg.weighted_cloud_aggregation = variant.weighted_cloud;
    core::Simulation sim(cfg, setup.model_spec, *setup.optimizer,
                         *setup.train, setup.partition, *setup.test,
                         std::move(mobility), std::move(variant.spec));
    const auto history = sim.run();
    const auto tta = history.time_to_accuracy(setup.target_accuracy);
    csv->add(variant.name)
        .add(history.final_accuracy())
        .add(history.best_accuracy())
        .add(tta ? static_cast<long long>(*tta) : -1)
        .add(sim.on_device_aggregations())
        .add(sim.mean_blend_weight());
    csv->end_row();
    std::cerr << "   " << std::setw(14) << variant.name << "  final "
              << std::fixed << std::setprecision(3)
              << history.final_accuracy() << "  best "
              << history.best_accuracy() << "  tta "
              << (tta ? std::to_string(*tta) : std::string("-")) << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
