// Fleet-scale memory/throughput bench: how far does lazy device state
// stretch one host?
//
// Sweeps the fleet size (default 10k -> 100k -> 1M virtual devices, then
// 10k/100k eager devices for the baseline) over a fixed tiny task:
// random-selection FedMes-style hierarchy, window-partitioned synthetic
// data (O(1) per-device data state), a small MLP, a handful of steps with
// one cloud sync. Per configuration it records wall time, steps/sec, the
// RSS high-water mark (VmHWM, re-armed per configuration via
// /proc/self/clear_refs) and the registry's fleet accounting
// (materializations per step, peak resident devices, at-rest delta bytes).
//
// The headline criterion, recorded in the JSON: the 1M-device lazy run
// must peak below 25% of the fully-materialized footprint extrapolated
// from the 100k eager run (x10). Eager 1M is never run — at ~10 KB per
// materialized device it would need the extrapolation's worth of RAM,
// which is exactly the point.
//
// CI smoke: --devices 100000 --rss-budget-mb N runs the single lazy
// configuration and fails (exit 1) when its peak RSS delta exceeds the
// budget.
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/algorithms.hpp"
#include "obs/metrics_registry.hpp"

namespace {

using middlefl::bench::BenchOptions;

struct FleetMeasurement {
  bool lazy = true;
  std::size_t devices = 0;
  std::size_t steps = 0;
  double seconds = 0.0;
  double steps_per_sec = 0.0;
  /// Mean per-phase wall microseconds from the observed probe steps that
  /// follow the bare timed loop (the timed window itself runs obs-off).
  middlefl::core::Simulation::StepPhaseUs phase_us;
  std::size_t rss_before_bytes = 0;
  std::size_t peak_rss_bytes = 0;
  std::size_t peak_delta_bytes = 0;
  double materializations_per_step = 0.0;
  /// Whole-run comm/transport/dropout/fleet accounting (shared capture;
  /// the fleet fields the sweep reports are read from here).
  middlefl::bench::SimRunSummary summary;
};

struct FleetTask {
  middlefl::data::Dataset train;
  middlefl::data::Dataset test;
  middlefl::nn::ModelSpec model_spec;

  FleetTask() : train(make_data(240, 0)), test(make_data(80, 1)) {
    model_spec.arch = middlefl::nn::ModelArch::kMlp;
    model_spec.input_shape = middlefl::tensor::Shape{1, 6, 6};
    model_spec.num_classes = 4;
    model_spec.hidden = 16;
  }

  static middlefl::data::Dataset make_data(std::size_t per_class,
                                           std::uint64_t salt) {
    middlefl::data::SyntheticConfig dcfg;
    dcfg.num_classes = 4;
    dcfg.height = 6;
    dcfg.width = 6;
    dcfg.noise_std = 0.2f;
    dcfg.seed = 5;
    return middlefl::data::SyntheticGenerator(dcfg).generate(per_class, salt);
  }
};

FleetMeasurement run_config(const FleetTask& task, std::size_t devices,
                            bool lazy, std::size_t steps,
                            std::size_t num_edges,
                            const BenchOptions& options) {
  namespace core = middlefl::core;
  namespace data = middlefl::data;
  using middlefl::bench::current_rss_bytes;
  using middlefl::bench::peak_rss_bytes;
  using middlefl::bench::reset_peak_rss;

  FleetMeasurement m;
  m.lazy = lazy;
  m.devices = devices;
  m.steps = steps;

  reset_peak_rss();
  m.rss_before_bytes = current_rss_bytes();

  const data::Partition partition =
      data::partition_fleet_window(task.train, devices, 16);
  auto initial = data::assign_edges_uniform(devices, num_edges, options.seed);
  auto mobility = std::make_unique<middlefl::mobility::MarkovMobility>(
      std::move(initial), num_edges, options.mobility, options.seed + 11);

  core::SimulationConfig cfg;
  cfg.select_per_edge = 4;
  cfg.local_steps = 2;
  cfg.cloud_interval = options.cloud_interval;
  cfg.batch_size = 8;
  cfg.total_steps = steps;
  cfg.eval_edges = false;
  cfg.seed = options.seed;
  // --threads N > 1 engages the pooled paths (sharded mobility advance,
  // parallel training); results are bitwise identical either way.
  cfg.parallel_devices = options.threads > 1;
  cfg.fleet.lazy_devices = lazy;

  middlefl::optim::Sgd optimizer(
      middlefl::optim::SgdConfig{.learning_rate = 0.05, .momentum = 0.9});
  core::Simulation sim(cfg, task.model_spec, optimizer, task.train, partition,
                       task.test, std::move(mobility),
                       core::make_algorithm(core::Algorithm::kFedMes));

  const auto begin = std::chrono::steady_clock::now();
  for (std::size_t s = 0; s < steps; ++s) sim.step();
  const auto end = std::chrono::steady_clock::now();
  m.seconds = std::chrono::duration<double>(end - begin).count();
  m.steps_per_sec =
      m.seconds > 0.0 ? static_cast<double>(steps) / m.seconds : 0.0;

  m.peak_rss_bytes = peak_rss_bytes();
  m.peak_delta_bytes = m.peak_rss_bytes > m.rss_before_bytes
                           ? m.peak_rss_bytes - m.rss_before_bytes
                           : 0;

  m.summary = middlefl::bench::SimRunSummary::capture(sim);
  m.materializations_per_step =
      static_cast<double>(m.summary.materializations) /
      static_cast<double>(steps);

  // Where do the steps go? Attach a metrics registry (the cheapest
  // observability; phase clocks only run while obs is on) for a few probe
  // steps and average the per-phase wall time. Probes run after the timed
  // window, the RSS peak read and the summary capture, so they contaminate
  // none of them.
  constexpr std::size_t kProbeSteps = 2;
  {
    middlefl::obs::MetricsRegistry probe_metrics;
    middlefl::obs::Observability probe;
    probe.metrics = &probe_metrics;
    sim.set_observability(probe);
    for (std::size_t s = 0; s < kProbeSteps; ++s) {
      sim.step();
      const auto& p = sim.last_step_phase_us();
      m.phase_us.mobility += p.mobility;
      m.phase_us.membership += p.membership;
      m.phase_us.select += p.select;
      m.phase_us.distribute += p.distribute;
      m.phase_us.local_train += p.local_train;
      m.phase_us.upload += p.upload;
      m.phase_us.edge_aggregate += p.edge_aggregate;
      m.phase_us.cloud_sync += p.cloud_sync;
    }
    sim.set_observability(middlefl::obs::Observability{});
    m.phase_us.mobility /= kProbeSteps;
    m.phase_us.membership /= kProbeSteps;
    m.phase_us.select /= kProbeSteps;
    m.phase_us.distribute /= kProbeSteps;
    m.phase_us.local_train /= kProbeSteps;
    m.phase_us.upload /= kProbeSteps;
    m.phase_us.edge_aggregate /= kProbeSteps;
    m.phase_us.cloud_sync /= kProbeSteps;
  }
  return m;
}

void print_row(const FleetMeasurement& m) {
  std::cerr << "   " << (m.lazy ? "lazy " : "eager") << " " << m.devices
            << " devices: " << m.steps << " steps in " << m.seconds
            << " s (" << m.steps_per_sec << " steps/sec), peak RSS +"
            << m.peak_delta_bytes / (1024 * 1024) << " MiB, "
            << m.materializations_per_step << " materializations/step\n"
            << "      phase us/step: mobility " << m.phase_us.mobility
            << " membership " << m.phase_us.membership << " select "
            << m.phase_us.select << " distribute " << m.phase_us.distribute
            << " train " << m.phase_us.local_train << " upload "
            << m.phase_us.upload << " edge_agg " << m.phase_us.edge_aggregate
            << " cloud_sync " << m.phase_us.cloud_sync << "\n";
}

void emit_json(std::ostream& out, const FleetMeasurement& m, bool last) {
  out << "    {\n"
      << "      \"mode\": \"" << (m.lazy ? "lazy" : "eager") << "\",\n"
      << "      \"devices\": " << m.devices << ",\n"
      << "      \"steps\": " << m.steps << ",\n"
      << "      \"seconds\": " << m.seconds << ",\n"
      << "      \"steps_per_sec\": " << m.steps_per_sec << ",\n"
      << "      \"rss_before_bytes\": " << m.rss_before_bytes << ",\n"
      << "      \"peak_rss_bytes\": " << m.peak_rss_bytes << ",\n"
      << "      \"peak_delta_bytes\": " << m.peak_delta_bytes << ",\n"
      << "      \"materializations_per_step\": "
      << m.materializations_per_step << ",\n"
      << "      \"phase_us\": {"
      << "\"mobility\": " << m.phase_us.mobility
      << ", \"membership\": " << m.phase_us.membership
      << ", \"select\": " << m.phase_us.select
      << ", \"distribute\": " << m.phase_us.distribute
      << ", \"local_train\": " << m.phase_us.local_train
      << ", \"upload\": " << m.phase_us.upload
      << ", \"edge_aggregate\": " << m.phase_us.edge_aggregate
      << ", \"cloud_sync\": " << m.phase_us.cloud_sync << "},\n"
      << middlefl::bench::json_summary_fields(m.summary, "      ") << "\n"
      << "    }" << (last ? "\n" : ",\n");
}

}  // namespace

int main(int argc, char** argv) {
  namespace bench = middlefl::bench;
  namespace util = middlefl::util;

  BenchOptions options;
  options.cloud_interval = 5;
  options.mobility = 0.1;
  std::string json_path = "BENCH_fleet_scale.json";
  std::size_t single_devices = 0;
  std::size_t rss_budget_mb = 0;
  std::size_t steps = 6;
  std::size_t num_edges = 8;

  util::CliParser cli(
      "fleet_scale: fleet-size sweep comparing lazy vs eager device state");
  options.register_flags(cli);
  cli.add_flag("json", "JSON output path", &json_path);
  cli.add_flag("devices",
               "run one lazy configuration at this fleet size instead of "
               "the full sweep (CI smoke)",
               &single_devices);
  cli.add_flag("rss-budget-mb",
               "fail when a configuration's peak RSS delta exceeds this "
               "budget (0 = no assertion)",
               &rss_budget_mb);
  cli.add_flag("steps", "simulated steps per configuration", &steps);
  cli.add_flag("edges", "number of edge servers", &num_edges);
  if (!cli.parse(argc, argv)) return 0;
  bench::print_banner("fleet_scale: lazy device state sweep", options);

  const FleetTask task;
  std::vector<FleetMeasurement> results;
  // Lazy ascending first, then the eager baselines: the cheap runs are
  // never contaminated by a bigger predecessor's retained allocator arena,
  // and the headline lazy-1M measurement happens before any eager fleet
  // exists.
  if (single_devices > 0) {
    results.push_back(
        run_config(task, single_devices, true, steps, num_edges, options));
    print_row(results.back());
  } else {
    for (const std::size_t n : {10'000, 100'000, 1'000'000}) {
      results.push_back(run_config(task, n, true, steps, num_edges, options));
      print_row(results.back());
    }
    for (const std::size_t n : {10'000, 100'000}) {
      results.push_back(run_config(task, n, false, steps, num_edges, options));
      print_row(results.back());
    }
  }

  // Headline criterion: the 1M lazy fleet must fit in < 25% of the
  // fully-materialized footprint extrapolated from eager 100k (x10).
  const FleetMeasurement* lazy_10k = nullptr;
  const FleetMeasurement* lazy_1m = nullptr;
  const FleetMeasurement* eager_100k = nullptr;
  for (const auto& m : results) {
    if (m.lazy && m.devices == 10'000) lazy_10k = &m;
    if (m.lazy && m.devices == 1'000'000) lazy_1m = &m;
    if (!m.lazy && m.devices == 100'000) eager_100k = &m;
  }

  // Sublinear-stepping readout: growing the fleet 100x should cost far
  // less than 100x per step now that per-step work tracks movers and
  // selected devices rather than the full fleet.
  double step_cost_ratio = 0.0;
  if (lazy_10k != nullptr && lazy_1m != nullptr &&
      lazy_1m->steps_per_sec > 0.0) {
    step_cost_ratio = lazy_10k->steps_per_sec / lazy_1m->steps_per_sec;
    std::cerr << "   scaling: 100x devices (10k -> 1M) costs "
              << step_cost_ratio << "x per step\n";
  }
  double extrapolated = 0.0;
  double ratio = 0.0;
  bool criterion_pass = true;
  if (lazy_1m != nullptr && eager_100k != nullptr) {
    extrapolated = static_cast<double>(eager_100k->peak_delta_bytes) * 10.0;
    ratio = extrapolated > 0.0
                ? static_cast<double>(lazy_1m->peak_delta_bytes) / extrapolated
                : 0.0;
    criterion_pass = ratio < 0.25;
    std::cerr << "   criterion: lazy 1M peak +"
              << lazy_1m->peak_delta_bytes / (1024 * 1024)
              << " MiB vs eager-1M extrapolation "
              << static_cast<std::size_t>(extrapolated) / (1024 * 1024)
              << " MiB -> ratio " << ratio << " ("
              << (criterion_pass ? "PASS" : "FAIL") << ", budget 0.25)\n";
  }

  bool budget_pass = true;
  if (rss_budget_mb > 0) {
    const std::size_t budget = rss_budget_mb * 1024 * 1024;
    for (const auto& m : results) {
      if (m.peak_delta_bytes > budget) {
        std::cerr << "   RSS budget exceeded: " << (m.lazy ? "lazy" : "eager")
                  << " " << m.devices << " devices peaked at +"
                  << m.peak_delta_bytes / (1024 * 1024) << " MiB > "
                  << rss_budget_mb << " MiB\n";
        budget_pass = false;
      }
    }
  }

  std::ofstream out(json_path);
  if (!out) {
    std::cerr << "error: cannot write " << json_path << "\n";
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"fleet_scale\",\n"
      << "  \"steps\": " << steps << ",\n"
      << "  \"edges\": " << num_edges << ",\n"
      << "  \"select_per_edge\": 4,\n"
      << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    emit_json(out, results[i], i + 1 == results.size());
  }
  out << "  ]";
  if (lazy_1m != nullptr && eager_100k != nullptr) {
    out << ",\n  \"criterion\": {\"lazy_1m_peak_delta_bytes\": "
        << lazy_1m->peak_delta_bytes
        << ", \"eager_100k_peak_delta_bytes\": "
        << eager_100k->peak_delta_bytes
        << ", \"extrapolated_eager_1m_bytes\": "
        << static_cast<std::size_t>(extrapolated)
        << ", \"ratio\": " << ratio << ", \"budget\": 0.25, \"pass\": "
        << (criterion_pass ? "true" : "false") << "}";
  }
  if (lazy_10k != nullptr && lazy_1m != nullptr) {
    out << ",\n  \"scaling\": {\"lazy_10k_steps_per_sec\": "
        << lazy_10k->steps_per_sec
        << ", \"lazy_1m_steps_per_sec\": " << lazy_1m->steps_per_sec
        << ", \"device_ratio\": 100, \"per_step_cost_ratio\": "
        << step_cost_ratio << "}";
  }
  out << "\n}\n";
  std::cerr << "   wrote " << json_path << "\n";
  return (criterion_pass && budget_pass) ? 0 : 1;
}
