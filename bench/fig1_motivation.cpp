// Figure 1 — motivation: Non-IID data across edges makes edge models lose
// the minor classes even while the global model improves.
//
// Setup (§2, Question 1): a three-layer HFL with two edges and 50 devices.
// Edge 1's training data is 70% classes {0..4} (major) and 30% {5..9}
// (minor); edge 2 is the opposite. Devices run 10 local SGD steps per time
// step; edges aggregate every step; the cloud aggregates every 10 steps.
//
// Output series per eval step: global-model accuracy, edge-1 model overall
// accuracy, edge-1 accuracy on its major classes and on its minor classes.
// The paper's signature: global accuracy rises steadily; edge-1 major-class
// accuracy rises; edge-1 MINOR-class accuracy decays between cloud syncs.
#include <iostream>

#include "bench_common.hpp"
#include "mobility/markov_mobility.hpp"

namespace {

using namespace middlefl;

int run(int argc, const char* const* argv) {
  bench::BenchOptions options;
  std::size_t steps = 120;
  util::CliParser cli("fig1: edge-model bias under Non-IID edges");
  options.register_flags(cli);
  cli.add_flag("steps", "time steps to run", &steps);
  if (!cli.parse(argc, argv)) return 0;
  bench::print_banner("Figure 1: Non-IID motivation", options);

  constexpr std::size_t kClasses = 10;
  constexpr std::size_t kDevices = 50;

  auto cfg = data::task_config(data::TaskKind::kMnist,
                               options.paper ? 1.0 : 0.5);
  cfg.seed = parallel::hash_combine(cfg.seed, options.seed);
  if (!options.paper) cfg.noise_std *= 1.5f;
  const data::SyntheticGenerator generator(cfg);
  const auto train = generator.generate(options.paper ? 400 : 80, 1);
  const auto test = generator.generate(options.paper ? 100 : 40, 2);

  // 70/30 major/minor split per edge: devices 0..24 belong to edge 0 and
  // draw 70% of their samples from classes {0..4}; devices 25..49 are the
  // mirror image. Implemented as a major-class partition where the edge's
  // class group plays the "major" role.
  data::Partition partition;
  partition.device_indices.resize(kDevices);
  partition.major_class.assign(kDevices, -1);
  std::vector<std::vector<std::size_t>> by_class(kClasses);
  for (std::size_t c = 0; c < kClasses; ++c) {
    by_class[c] = train.indices_of_class(static_cast<std::int32_t>(c));
  }
  parallel::StreamRng streams(options.seed + 5);
  const std::size_t per_device = options.paper ? 200 : 60;
  for (std::size_t m = 0; m < kDevices; ++m) {
    auto rng = streams.stream(m);
    const bool edge0 = m < kDevices / 2;
    auto& mine = partition.device_indices[m];
    for (std::size_t i = 0; i < per_device; ++i) {
      const bool major_draw = rng.uniform() < 0.7;
      // Edge 0's majors are classes 0-4; edge 1's are 5-9.
      const std::size_t base = (edge0 == major_draw) ? 0 : 5;
      const std::size_t cls = base + rng.bounded(5);
      mine.push_back(by_class[cls][rng.bounded(by_class[cls].size())]);
    }
    partition.major_class[m] = static_cast<std::int32_t>(edge0 ? 0 : 5);
  }
  std::vector<std::size_t> initial(kDevices);
  for (std::size_t m = 0; m < kDevices; ++m) initial[m] = m < kDevices / 2 ? 0 : 1;

  nn::ModelSpec spec;
  spec.input_shape = tensor::Shape{cfg.channels, cfg.height, cfg.width};
  spec.num_classes = kClasses;
  spec.arch = options.paper ? nn::ModelArch::kCnn2 : nn::ModelArch::kMlp2;
  spec.hidden = options.paper ? 64 : 48;

  core::SimulationConfig sim_cfg;
  sim_cfg.select_per_edge = kDevices / 2;  // all devices participate (§2)
  sim_cfg.local_steps = 10;
  sim_cfg.cloud_interval = 10;
  sim_cfg.batch_size = 8;
  sim_cfg.total_steps = steps;
  sim_cfg.eval_every = 2;
  sim_cfg.eval_samples = 0;
  sim_cfg.seed = options.seed;

  // Static devices, classical HFL ("General"): the motivation experiment
  // predates mobility.
  auto mobility = std::make_unique<mobility::MarkovMobility>(
      initial, 2, /*move_probability=*/0.0, options.seed);
  const optim::Sgd sgd({.learning_rate = options.paper ? 0.001 : 0.005,
                        .momentum = 0.9});
  core::Simulation sim(sim_cfg, spec, sgd, train, partition, test,
                       std::move(mobility),
                       core::make_algorithm(core::Algorithm::kHierFavg));

  const std::vector<std::int32_t> major{0, 1, 2, 3, 4};
  const std::vector<std::int32_t> minor{5, 6, 7, 8, 9};

  auto csv = bench::open_csv(options);
  csv->header({"step", "global_acc", "edge1_acc", "edge1_major_acc",
               "edge1_minor_acc"});
  for (std::size_t t = 0; t < steps; ++t) {
    sim.step();
    if (t % sim_cfg.eval_every != 0 && t + 1 != steps) continue;
    auto& evaluator = sim.evaluator();
    const double global_acc = evaluator.evaluate(sim.cloud_params()).accuracy;
    const double edge1_acc = evaluator.evaluate(sim.edge_params(0)).accuracy;
    const double edge1_major =
        evaluator.evaluate_classes(sim.edge_params(0), major).accuracy;
    const double edge1_minor =
        evaluator.evaluate_classes(sim.edge_params(0), minor).accuracy;
    csv->add(sim.current_step())
        .add(global_acc)
        .add(edge1_acc)
        .add(edge1_major)
        .add(edge1_minor);
    csv->end_row();
  }

  // Shape summary: over the recorded tail, major-class accuracy should sit
  // well above minor-class accuracy for the edge model.
  std::cerr << "done; see CSV (paper signature: edge1_major_acc >> "
               "edge1_minor_acc while global_acc rises)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
