// Substrate micro-benchmarks (google-benchmark): the kernels that dominate
// simulation wall-clock — GEMM, conv forward/backward, full local SGD
// steps, flat-vector aggregation and similarity, minibatch gathering, and
// thread-pool dispatch.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/aggregation.hpp"
#include "core/similarity.hpp"
#include "data/sampler.hpp"
#include "data/synthetic.hpp"
#include "nn/loss.hpp"
#include "nn/model_factory.hpp"
#include "optim/sgd.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/rng.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/blas.hpp"
#include "tensor/cpu_features.hpp"

namespace {

using namespace middlefl;

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  parallel::Xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

void BM_GemmSquare(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_vec(n * n, 1);
  const auto b = random_vec(n * n, 2);
  std::vector<float> c(n * n, 0.0f);
  for (auto _ : state) {
    tensor::gemm(tensor::Trans::kNo, tensor::Trans::kNo, n, n, n, 1.0f, a, b,
                 0.0f, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          n * n * n);
}
BENCHMARK(BM_GemmSquare)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

/// Textbook triple loop — the before-kernel baseline the vectorized GEMM
/// path is measured against.
void naive_gemm_nn(std::size_t m, std::size_t n, std::size_t k, const float* a,
                   const float* b, float* c) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += a[i * k + p] * b[p * n + j];
      c[i * n + j] = acc;
    }
  }
}

void BM_GemmNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_vec(n * n, 1);
  const auto b = random_vec(n * n, 2);
  std::vector<float> c(n * n, 0.0f);
  for (auto _ : state) {
    naive_gemm_nn(n, n, n, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          n * n * n);
}
BENCHMARK(BM_GemmNaive)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

/// The Linear::forward shape of the Fig-6 MLP (batch 8, 784 -> 48): NT with
/// a wide reduction, served by the pack-B + streaming-NN path.
void BM_GemmLinearForward(benchmark::State& state) {
  const std::size_t m = 8, n = 48, k = 784;
  const auto a = random_vec(m * k, 3);
  const auto b = random_vec(n * k, 4);
  std::vector<float> c(m * n, 0.0f);
  for (auto _ : state) {
    tensor::gemm(tensor::Trans::kNo, tensor::Trans::kYes, m, n, k, 1.0f, a, b,
                 0.0f, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          m * n * k);
}
BENCHMARK(BM_GemmLinearForward);

/// The fused Linear-forward epilogue (bias + ReLU + mask) against the same
/// GEMM followed by separate bias/ReLU sweeps — the memory-pass saving the
/// layer fusion buys on the Fig-6 hidden-layer shape (batch 8, 64 -> 48).
void BM_GemmFusedEpilogue(benchmark::State& state) {
  const bool fused = state.range(0) != 0;
  const std::size_t m = 8, n = 48, k = 64;
  const auto a = random_vec(m * k, 5);
  const auto b = random_vec(n * k, 6);
  const auto bias = random_vec(n, 7);
  std::vector<float> c(m * n, 0.0f);
  std::vector<std::uint8_t> mask(m * n, 0);
  for (auto _ : state) {
    if (fused) {
      tensor::GemmEpilogue epi;
      epi.col_bias = bias.data();
      epi.relu = true;
      epi.relu_mask = mask.data();
      tensor::gemm(tensor::Trans::kNo, tensor::Trans::kYes, m, n, k, 1.0f, a,
                   b, 0.0f, c, nullptr, &epi);
    } else {
      tensor::gemm(tensor::Trans::kNo, tensor::Trans::kYes, m, n, k, 1.0f, a,
                   b, 0.0f, c);
      for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          float v = c[i * n + j] + bias[j];
          v = v > 0.0f ? v : 0.0f;
          c[i * n + j] = v;
          mask[i * n + j] = v > 0.0f ? 1 : 0;
        }
      }
    }
    benchmark::DoNotOptimize(c.data());
    benchmark::DoNotOptimize(mask.data());
  }
}
BENCHMARK(BM_GemmFusedEpilogue)->Arg(0)->Arg(1);

/// One GEMM shape through each ISA tier the host supports (0 = scalar,
/// 1 = AVX2, 2 = AVX-512): the speed the runtime dispatch buys. Tiers the
/// CPU lacks are clamped by force_isa and reported skipped.
void BM_GemmDispatchIsa(benchmark::State& state) {
  const auto want = static_cast<tensor::IsaLevel>(state.range(0));
  if (tensor::force_isa(want) != want) {
    tensor::clear_forced_isa();
    state.SkipWithError("ISA tier not supported on this host");
    return;
  }
  const std::size_t n = 128;
  const auto a = random_vec(n * n, 8);
  const auto b = random_vec(n * n, 9);
  std::vector<float> c(n * n, 0.0f);
  for (auto _ : state) {
    tensor::gemm(tensor::Trans::kNo, tensor::Trans::kNo, n, n, n, 1.0f, a, b,
                 0.0f, c);
    benchmark::DoNotOptimize(c.data());
  }
  tensor::clear_forced_isa();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          n * n * n);
}
BENCHMARK(BM_GemmDispatchIsa)->Arg(0)->Arg(1)->Arg(2);

void BM_GemmTransB(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_vec(n * n, 3);
  const auto b = random_vec(n * n, 4);
  std::vector<float> c(n * n, 0.0f);
  for (auto _ : state) {
    tensor::gemm(tensor::Trans::kNo, tensor::Trans::kYes, n, n, n, 1.0f, a, b,
                 0.0f, c);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_GemmTransB)->Arg(64)->Arg(128);

void BM_Axpy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = random_vec(n, 5);
  auto y = random_vec(n, 6);
  for (auto _ : state) {
    tensor::axpy(0.5f, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          sizeof(float) * 2);
}
BENCHMARK(BM_Axpy)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_CosineSimilarity(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_vec(n, 7);
  const auto b = random_vec(n, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::cosine_similarity(a, b));
  }
}
BENCHMARK(BM_CosineSimilarity)->Arg(1 << 12)->Arg(1 << 16);

/// Eq. 11 selection utility, fused one-pass kernel (the production path).
void BM_SelectionUtilityFused(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto cloud = random_vec(n, 11);
  const auto local = random_vec(n, 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::selection_utility(cloud, local));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          sizeof(float) * 2);
}
BENCHMARK(BM_SelectionUtilityFused)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

/// The before-kernel: materialize Delta = w_m - w_c, then separate
/// dot/nrm2 sweeps (three passes plus a temporary vector).
void BM_SelectionUtilityMaterialized(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto cloud = random_vec(n, 11);
  const auto local = random_vec(n, 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::selection_utility_reference(cloud, local));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          sizeof(float) * 2);
}
BENCHMARK(BM_SelectionUtilityMaterialized)
    ->Arg(1 << 12)
    ->Arg(1 << 16)
    ->Arg(1 << 20);

/// Chunk-deterministic pool reductions vs their serial forms.
void BM_DotParallel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = random_vec(n, 13);
  const auto y = random_vec(n, 14);
  parallel::ThreadPool pool(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::dot(x, y, &pool));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          sizeof(float) * 2);
}
BENCHMARK(BM_DotParallel)->Arg(1 << 16)->Arg(1 << 20);

void BM_Nrm2Parallel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = random_vec(n, 15);
  parallel::ThreadPool pool(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::nrm2(x, &pool));
  }
}
BENCHMARK(BM_Nrm2Parallel)->Arg(1 << 16)->Arg(1 << 20);

void BM_OnDeviceAggregate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto edge = random_vec(n, 9);
  const auto local = random_vec(n, 10);
  std::vector<float> out(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::on_device_aggregate(edge, local, out));
  }
}
BENCHMARK(BM_OnDeviceAggregate)->Arg(1 << 12)->Arg(1 << 16);

void BM_WeightedAverage(benchmark::State& state) {
  const auto models = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 1 << 14;
  std::vector<std::vector<float>> storage;
  storage.reserve(models);
  std::vector<core::WeightedModel> weighted;
  for (std::size_t i = 0; i < models; ++i) {
    storage.push_back(random_vec(n, 20 + i));
    weighted.push_back(core::WeightedModel{storage.back(), 1.0 + i});
  }
  std::vector<float> out(n);
  for (auto _ : state) {
    core::weighted_average(weighted, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_WeightedAverage)->Arg(5)->Arg(10)->Arg(50);

void BM_WeightedAverageParallel(benchmark::State& state) {
  const auto models = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 1 << 18;
  parallel::ThreadPool pool(4);
  std::vector<std::vector<float>> storage;
  storage.reserve(models);
  std::vector<core::WeightedModel> weighted;
  for (std::size_t i = 0; i < models; ++i) {
    storage.push_back(random_vec(n, 40 + i));
    weighted.push_back(core::WeightedModel{storage.back(), 1.0 + i});
  }
  std::vector<float> out(n);
  for (auto _ : state) {
    core::weighted_average(weighted, out, &pool);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_WeightedAverageParallel)->Arg(5)->Arg(10)->Arg(50);

void BM_ModelForward(benchmark::State& state) {
  nn::ModelSpec spec;
  spec.arch = state.range(0) == 0 ? nn::ModelArch::kMlp2 : nn::ModelArch::kCnn2;
  spec.input_shape = tensor::Shape{1, 16, 16};
  spec.num_classes = 10;
  spec.hidden = 48;
  auto model = nn::build_model(spec, 1);
  parallel::Xoshiro256 rng(2);
  const auto batch = tensor::Tensor::randn(tensor::Shape{16, 1, 16, 16}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(&model->forward(batch, false));
  }
  state.SetLabel(nn::to_string(spec.arch));
}
BENCHMARK(BM_ModelForward)->Arg(0)->Arg(1);

void BM_LocalSgdStep(benchmark::State& state) {
  // One full forward+backward+update on a batch — the simulator's inner
  // loop body.
  nn::ModelSpec spec;
  spec.arch = state.range(0) == 0 ? nn::ModelArch::kMlp2 : nn::ModelArch::kCnn2;
  spec.input_shape = tensor::Shape{1, 16, 16};
  spec.num_classes = 10;
  spec.hidden = 48;
  auto model = nn::build_model(spec, 1);
  optim::Sgd sgd({.learning_rate = 0.01, .momentum = 0.9});
  parallel::Xoshiro256 rng(3);
  const auto batch = tensor::Tensor::randn(tensor::Shape{16, 1, 16, 16}, rng);
  std::vector<std::int32_t> labels(16);
  for (auto& l : labels) l = static_cast<std::int32_t>(rng.bounded(10));
  for (auto _ : state) {
    const auto& logits = model->forward(batch, true);
    auto loss = nn::softmax_cross_entropy(logits, labels);
    model->zero_grad();
    model->backward(loss.grad_logits);
    sgd.step(model->parameters(), model->gradients());
    benchmark::DoNotOptimize(model->parameters().data());
  }
  state.SetLabel(nn::to_string(spec.arch));
}
BENCHMARK(BM_LocalSgdStep)->Arg(0)->Arg(1);

void BM_SyntheticSample(benchmark::State& state) {
  const auto cfg = data::task_config(data::TaskKind::kCifar);
  const data::SyntheticGenerator generator(cfg);
  parallel::Xoshiro256 rng(4);
  std::vector<float> sample(generator.sample_shape().numel());
  for (auto _ : state) {
    generator.sample_into(static_cast<std::int32_t>(rng.bounded(10)), rng,
                          sample);
    benchmark::DoNotOptimize(sample.data());
  }
}
BENCHMARK(BM_SyntheticSample);

void BM_MinibatchGather(benchmark::State& state) {
  const auto cfg = data::task_config(data::TaskKind::kMnist);
  const data::SyntheticGenerator generator(cfg);
  const auto dataset = generator.generate(100, 0);
  const auto view = data::DataView::all(dataset);
  parallel::Xoshiro256 rng(5);
  for (auto _ : state) {
    auto batch = data::sample_minibatch(view, 16, rng);
    benchmark::DoNotOptimize(batch.features.data().data());
  }
}
BENCHMARK(BM_MinibatchGather);

void BM_ParallelForDispatch(benchmark::State& state) {
  const auto tasks = static_cast<std::size_t>(state.range(0));
  parallel::ThreadPool pool(4);
  std::vector<double> sink(tasks, 0.0);
  for (auto _ : state) {
    parallel::parallel_for(pool, 0, tasks, [&sink](std::size_t i) {
      double acc = 0.0;
      for (int k = 0; k < 1000; ++k) acc += static_cast<double>(k) * 1e-9;
      sink[i] = acc;
    });
    benchmark::DoNotOptimize(sink.data());
  }
}
BENCHMARK(BM_ParallelForDispatch)->Arg(8)->Arg(64)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
