// Deterministic tree-reduction engine behind comm::Communicator.
//
// The Reducer computes the weighted average of P contributions over E
// elements as a fixed-shape binary reduction tree scheduled on the shared
// sched::TaskGraph pool. The tree is built over ELEMENT BLOCKS, not over
// participants: each leaf task owns a disjoint range of elements and
// computes the full canonical-order (contribution 0..P-1) double-
// accumulated sum for that range — arithmetic identical to the historical
// serial fixed-order loop — while the interior join nodes only merge
// completion (their ranges are disjoint, so "combining" two children is
// concatenation, never a floating-point reorder). That split is what makes
// the contract possible at all: double addition is non-associative, so a
// participant-space tree would change bits, but an element-space tree only
// changes WHEN ranges are computed, never the per-element sum order.
// Result: bitwise equality with the serial loop at any pool size, with a
// bounded-fan-in reduction schedule whose depth (ceil(log2(blocks))) is
// the shape a future multi-process backend executes for real.
//
// Concurrency contract: reduce() with a tree plan must only be called from
// a serial point (it owns one TaskGraph). Calls from inside a pool worker
// (the per-edge chains) or under a null/size-1 pool take the serial path,
// which touches no shared state, so concurrent in-chain reduces are safe.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "sched/task_graph.hpp"

namespace middlefl::comm {

/// One contribution to a weighted reduction: a flat parameter vector and
/// its aggregation weight (data-sample count at the edge,
/// participating-sample count at the cloud). core::WeightedModel is an
/// alias of this type, so existing aggregation call sites interoperate.
struct Contribution {
  std::span<const float> params;
  double weight = 0.0;
};

/// Elements per leaf task. Per-element sums are independent and each runs
/// in contribution order, so the block size only affects scheduling, never
/// the result. Matches the historical core::weighted_average block.
inline constexpr std::size_t kReduceBlock = std::size_t{1} << 13;

/// Validates `contribs` against `out_size` and writes the normalized
/// weights (w_k / sum w) into `norm` (size contribs.size()). Throws
/// std::invalid_argument — empty input, size mismatch, negative weight,
/// all-zero weights — with messages prefixed by `what`.
void normalize_weights(std::span<const Contribution> contribs,
                       std::size_t out_size, std::span<double> norm,
                       const char* what);

/// Averages elements [lo, hi) into `out` using `acc` as the double
/// accumulator for that range, in canonical contribution order (k = 0 ..
/// P-1). Weights are pre-normalized. This is THE aggregation arithmetic:
/// every reduce path in the system (serial, parallel_for, tree) runs
/// exactly this loop over its ranges.
void accumulate_range(std::span<const Contribution> contribs,
                      std::span<const double> norm_weights,
                      std::span<float> out, std::span<double> acc,
                      std::size_t lo, std::size_t hi);

class Reducer {
 public:
  /// Shape of the reduction schedule for `elements` elements: leaf count,
  /// tree depth (0 = a single flat range, no tree) and total task count
  /// (leaves + interior joins).
  struct Plan {
    std::size_t blocks = 1;
    std::size_t depth = 0;
    std::size_t tasks = 1;
  };
  static Plan plan(std::size_t elements);

  /// out = sum_k weight_k * params_k / sum_k weight_k, accumulated in
  /// double per element in contribution order. Serial when `pool` is null,
  /// size <= 1, the caller is a pool worker, or the output fits one block;
  /// otherwise scheduled as the binary tree described above. Bitwise
  /// identical across all paths. Returns the shape that actually ran
  /// (depth 0 for the serial path).
  Plan reduce(std::span<const Contribution> contribs, std::span<float> out,
              parallel::ThreadPool* pool);

  /// Attaches a span recorder to the tree's task graph ("sched" spans per
  /// leaf/join task). nullptr detaches. Never alters scheduling order.
  void set_trace(obs::TraceRecorder* trace) noexcept {
    graph_.set_trace(trace);
  }

 private:
  sched::TaskGraph graph_;  // rebuilt per tree reduce, buffers reused
};

}  // namespace middlefl::comm
