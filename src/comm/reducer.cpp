#include "comm/reducer.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "parallel/thread_pool.hpp"
#include "tensor/workspace.hpp"

namespace middlefl::comm {

void normalize_weights(std::span<const Contribution> contribs,
                       std::size_t out_size, std::span<double> norm,
                       const char* what) {
  if (contribs.empty()) {
    throw std::invalid_argument(std::string(what) + ": no models");
  }
  double total = 0.0;
  for (const Contribution& c : contribs) {
    if (c.params.size() != out_size) {
      throw std::invalid_argument(std::string(what) +
                                  ": parameter size mismatch");
    }
    if (c.weight < 0.0) {
      throw std::invalid_argument(std::string(what) + ": negative weight");
    }
    total += c.weight;
  }
  if (total <= 0.0) {
    throw std::invalid_argument(std::string(what) + ": all weights zero");
  }
  for (std::size_t k = 0; k < contribs.size(); ++k) {
    norm[k] = contribs[k].weight / total;
  }
}

void accumulate_range(std::span<const Contribution> contribs,
                      std::span<const double> norm_weights,
                      std::span<float> out, std::span<double> acc,
                      std::size_t lo, std::size_t hi) {
  std::fill(acc.begin() + lo, acc.begin() + hi, 0.0);
  for (std::size_t k = 0; k < contribs.size(); ++k) {
    const double w = norm_weights[k];
    if (w == 0.0) continue;
    const std::span<const float> params = contribs[k].params;
    for (std::size_t i = lo; i < hi; ++i) {
      acc[i] += w * static_cast<double>(params[i]);
    }
  }
  for (std::size_t i = lo; i < hi; ++i) {
    out[i] = static_cast<float>(acc[i]);
  }
}

Reducer::Plan Reducer::plan(std::size_t elements) {
  Plan p;
  p.blocks = std::max<std::size_t>(1, (elements + kReduceBlock - 1) / kReduceBlock);
  p.depth = 0;
  for (std::size_t width = p.blocks; width > 1; width = (width + 1) / 2) {
    ++p.depth;
  }
  // Leaves plus one join node per pair at every level of the tree.
  p.tasks = p.blocks;
  for (std::size_t width = p.blocks; width > 1; width = (width + 1) / 2) {
    p.tasks += width / 2;
  }
  return p;
}

Reducer::Plan Reducer::reduce(std::span<const Contribution> contribs,
                              std::span<float> out,
                              parallel::ThreadPool* pool) {
  auto& ws = tensor::Workspace::tls();
  // Normalized weights ride in the tail of the accumulator slot so the
  // whole call stays allocation-free after warm-up (same layout the
  // historical weighted_average used).
  std::span<double> scratch = ws.doubles(tensor::WsDoubleSlot::kAccumulate,
                                         out.size() + contribs.size());
  std::span<double> acc = scratch.first(out.size());
  std::span<double> norm = scratch.last(contribs.size());
  normalize_weights(contribs, out.size(), norm, "comm::Reducer::reduce");

  const std::size_t n = out.size();
  if (pool == nullptr || pool->size() <= 1 || n <= kReduceBlock ||
      parallel::ThreadPool::in_worker()) {
    accumulate_range(contribs, norm, out, acc, 0, n);
    return Plan{1, 0, 1};
  }

  // Fixed-shape binary tree over element blocks. Leaves do the arithmetic
  // for disjoint ranges; join nodes are barriers of the schedule shape (no
  // floating-point work — the ranges never overlap). The shape depends
  // only on n, never on the pool, so the graph is identical at any thread
  // count and the leaf arithmetic is the serial loop's, range by range.
  const Plan shape = plan(n);
  graph_.clear();
  std::vector<sched::TaskGraph::TaskId> level;
  level.reserve(shape.blocks);
  for (std::size_t b = 0; b < shape.blocks; ++b) {
    const std::size_t lo = b * kReduceBlock;
    const std::size_t hi = std::min(n, lo + kReduceBlock);
    level.push_back(graph_.add(
        "reduce-leaf/" + std::to_string(b),
        [contribs, norm, out, acc, lo, hi] {
          accumulate_range(contribs, norm, out, acc, lo, hi);
        }));
  }
  std::size_t depth = 0;
  std::vector<sched::TaskGraph::TaskId> next;
  while (level.size() > 1) {
    ++depth;
    next.clear();
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      const sched::TaskGraph::TaskId deps[2] = {level[i], level[i + 1]};
      next.push_back(graph_.add(
          "reduce-join/d" + std::to_string(depth) + "/" + std::to_string(i / 2),
          [] {}, deps));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level.swap(next);
  }
  graph_.run(pool);
  return shape;
}

}  // namespace middlefl::comm
