// Single-producer-per-slot mailbox: the hand-off between the parallel
// per-edge chains and the serial cloud-apply point of the semi-async sync
// mode. Each edge owns exactly one slot and posts its version-stamped
// contribution from inside its own chain; the serial point consumes every
// slot in canonical edge order after the step's task graph has joined.
//
// Concurrency contract: slot i is written only by the task that owns edge
// i, and read/cleared only at serial points. The task-graph join is the
// happens-before edge between post() and take() — no atomics are needed,
// and the consumption order (edge 0..N-1) is fixed, so the apply sequence
// is deterministic at any thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

namespace middlefl::comm {

template <class T>
class Mailbox {
 public:
  Mailbox() = default;
  explicit Mailbox(std::size_t slots) : slots_(slots) {}

  void resize(std::size_t slots) { slots_.resize(slots); }
  std::size_t slots() const noexcept { return slots_.size(); }

  /// Posts into `slot`, overwriting any unconsumed value (the newest
  /// contribution supersedes an unread one).
  void post(std::size_t slot, T value) {
    Slot& s = slots_.at(slot);
    s.value = std::move(value);
    s.occupied = true;
  }

  bool has(std::size_t slot) const { return slots_.at(slot).occupied; }

  /// Consumes and returns the slot's value, if any.
  std::optional<T> take(std::size_t slot) {
    Slot& s = slots_.at(slot);
    if (!s.occupied) return std::nullopt;
    s.occupied = false;
    return std::move(s.value);
  }

 private:
  struct Slot {
    bool occupied = false;
    T value{};
  };
  std::vector<Slot> slots_;
};

/// Bookkeeping of the semi-async cloud path, updated only at the serial
/// apply point (plain fields). Cross-checkable against the event stream:
/// `applied` equals the sum of on_cloud_sync contributing counts, and
/// `published` equals the WAN-uplink transfer count accumulated in async
/// mode (every publish is exactly one wan_up send).
struct AsyncStats {
  std::uint64_t published = 0;      // contributions posted by edge chains
  std::uint64_t applied = 0;        // folded into a cloud aggregate
  std::uint64_t deferred = 0;       // queued in flight by WAN latency
  std::uint64_t dropped_stale = 0;  // past max_staleness; weight folded
                                    // into the edge's next contribution
  std::uint64_t applies = 0;        // serial apply passes that updated the
                                    // global model
};

}  // namespace middlefl::comm
