#include "comm/communicator.hpp"

#include <algorithm>

#include "obs/trace_recorder.hpp"
#include "parallel/thread_pool.hpp"

namespace middlefl::comm {
namespace {

void atomic_max(std::atomic<std::uint64_t>& slot, std::uint64_t value) {
  std::uint64_t seen = slot.load(std::memory_order_relaxed);
  while (seen < value &&
         !slot.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

void InProcessCommunicator::reduce(std::span<const Contribution> contribs,
                                   std::span<float> out) {
  // Trace only at serial points: in-chain (pool-worker) reduces must not
  // read clocks so bare and observed runs stay bit-identical per chain.
  const bool traced =
      trace_ != nullptr && !parallel::ThreadPool::in_worker();
  obs::TraceRecorder::Clock::time_point begin{};
  if (traced) begin = obs::TraceRecorder::Clock::now();
  const Reducer::Plan ran = reducer_.reduce(contribs, out, pool_);
  reduces_.fetch_add(1, std::memory_order_relaxed);
  reduce_tasks_.fetch_add(ran.tasks, std::memory_order_relaxed);
  atomic_max(max_depth_, ran.depth);
  if (traced) {
    trace_->complete("comm.reduce", "comm", begin,
                     obs::TraceRecorder::Clock::now(), ran.depth, "depth");
  }
}

void InProcessCommunicator::all_reduce(std::span<const Contribution> contribs,
                                       std::span<float> out) {
  // Every in-process rank shares `out`; the redistribution round of a
  // multi-process backend is a no-op here.
  reduce(contribs, out);
}

void InProcessCommunicator::broadcast(std::span<const float> root,
                                      std::span<float> dst) {
  broadcasts_.fetch_add(1, std::memory_order_relaxed);
  if (root.data() == dst.data() || root.empty()) return;
  std::copy(root.begin(), root.end(), dst.begin());
}

CommCounters InProcessCommunicator::counters() const noexcept {
  return CommCounters{reduces_.load(std::memory_order_relaxed),
                      reduce_tasks_.load(std::memory_order_relaxed),
                      max_depth_.load(std::memory_order_relaxed),
                      broadcasts_.load(std::memory_order_relaxed)};
}

}  // namespace middlefl::comm
