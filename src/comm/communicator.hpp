// The collectives seam of the simulator (ROADMAP: collective-communication
// backend). Every aggregation in the pipeline — each edge over its device
// uploads (EdgeAggregate) and the cloud over edge contributions
// (CloudSync) — flows through one Communicator, so the reduction schedule,
// its counters and the future multi-process transport all live behind a
// single interface instead of bespoke loops per call site.
//
// The in-process backend runs comm::Reducer's deterministic element-block
// tree on the shared pool: bitwise identical to the historical serial
// fixed-order loops at any thread count (see reducer.hpp for why the tree
// is built over element blocks, not participants). A socket/shared-memory
// backend slots in behind the same virtual interface; such a backend would
// reduce participant-space for real and therefore NOT be bitwise
// comparable to in-process runs — the determinism contract is per backend.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string_view>

#include "comm/reducer.hpp"

namespace middlefl::obs {
class TraceRecorder;
}

namespace middlefl::comm {

/// SimulationConfig::comm — the collectives/async knobs of one run.
struct CommConfig {
  /// Semi-async cloud sync: edges publish version-stamped contributions
  /// through a mailbox as their chains finish and the cloud applies
  /// bounded-stale updates on arrival, without the global barrier. False =
  /// the historical barriered CloudSync (bitwise unchanged).
  bool async_cloud = false;
  /// Staleness bound in cloud rounds: a contribution sent in round r is
  /// applied while round_now - r <= max_staleness (discounted by
  /// 1/(1 + staleness)) and counted + folded into the edge's next
  /// contribution past the bound. 0 = only same-round contributions apply,
  /// which with zero-latency links degenerates to synchronous FedAvg.
  std::size_t max_staleness = 1;
};

/// Monotonic reduction counters; exact at serial points (in-chain reduces
/// bump them through relaxed atomics, which commute).
struct CommCounters {
  std::uint64_t reduces = 0;       // reduce/all_reduce calls completed
  std::uint64_t reduce_tasks = 0;  // tree tasks scheduled (leaves + joins)
  std::uint64_t max_depth = 0;     // deepest reduction tree executed
  std::uint64_t broadcasts = 0;    // broadcast() calls
};

class Communicator {
 public:
  virtual ~Communicator() = default;

  /// Backend identifier ("in_process" today).
  virtual std::string_view backend() const noexcept = 0;

  /// out = weighted average of `contribs` in canonical contribution order
  /// (double accumulation per element). Throws std::invalid_argument on
  /// empty/mismatched/negative/all-zero inputs.
  virtual void reduce(std::span<const Contribution> contribs,
                      std::span<float> out) = 0;

  /// reduce + make the result visible to every rank. In process, every
  /// rank shares `out` already, so this is reduce(); a multi-process
  /// backend adds the redistribution round.
  virtual void all_reduce(std::span<const Contribution> contribs,
                          std::span<float> out) = 0;

  /// Copies `root` into `dst` (no-op when they alias). The wire-level
  /// broadcast to edges/devices stays on transport::Link — this collective
  /// exists for rank-local fan-out in future multi-process backends.
  virtual void broadcast(std::span<const float> root,
                         std::span<float> dst) = 0;

  virtual CommCounters counters() const noexcept = 0;
};

/// Single-process backend over the shared thread pool.
class InProcessCommunicator final : public Communicator {
 public:
  /// `pool` may be null (fully serial). Non-owning; must outlive this.
  explicit InProcessCommunicator(parallel::ThreadPool* pool) : pool_(pool) {}

  std::string_view backend() const noexcept override { return "in_process"; }
  void reduce(std::span<const Contribution> contribs,
              std::span<float> out) override;
  void all_reduce(std::span<const Contribution> contribs,
                  std::span<float> out) override;
  void broadcast(std::span<const float> root, std::span<float> dst) override;
  CommCounters counters() const noexcept override;

  /// Attaches a span recorder: serial-point reduces become "comm.reduce"
  /// spans (tree depth as argument) and the tree's tasks get "sched"
  /// spans. In-chain reduces skip the clock reads, so observed runs stay
  /// bit-identical to bare ones. nullptr detaches.
  void set_trace(obs::TraceRecorder* trace) noexcept {
    trace_ = trace;
    reducer_.set_trace(trace);
  }

 private:
  parallel::ThreadPool* pool_;
  Reducer reducer_;  // tree graph; only touched at serial points
  obs::TraceRecorder* trace_ = nullptr;
  std::atomic<std::uint64_t> reduces_{0};
  std::atomic<std::uint64_t> reduce_tasks_{0};
  std::atomic<std::uint64_t> max_depth_{0};
  std::atomic<std::uint64_t> broadcasts_{0};
};

}  // namespace middlefl::comm
