// Deterministic task-graph scheduler over the shared thread pool.
//
// A TaskGraph is a DAG of labelled tasks built once per use: add() returns
// a TaskId, later tasks may depend on earlier ones (forward references are
// rejected, which makes insertion order a topological order by
// construction). run() executes every task exactly once with all
// dependencies satisfied, fanning independent tasks out over the pool.
//
// Determinism contract: the scheduler decides only WHEN tasks run, never
// what they compute — bodies must confine writes to task-private state
// (the simulator gives each edge chain its own trace buffer) and any
// cross-task reduction happens after run() returns, in task order. Under a
// null/single-thread pool, or when called from inside a pool worker
// (nested graphs would deadlock a blocked worker), run() degrades to
// executing tasks serially in insertion order — the same order the
// serial simulator uses, so parallel and serial runs are bitwise equal by
// the same argument as parallel_for.
//
// Exceptions: the first exception thrown by any task is rethrown on the
// calling thread after the graph quiesces; tasks not yet started when a
// failure is recorded are skipped (fail-fast, nothing runs on a broken
// premise).
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace middlefl::sched {

class TaskGraph {
 public:
  using TaskId = std::size_t;

  /// Registers a task. Every id in `deps` must come from an earlier add()
  /// on this graph (throws std::invalid_argument otherwise).
  TaskId add(std::string label, std::function<void()> fn,
             std::span<const TaskId> deps = {});

  /// Runs the whole graph and blocks until every task finished or was
  /// skipped after a failure. `pool` null (or size 1, or already inside a
  /// worker) = serial insertion-order execution.
  void run(parallel::ThreadPool* pool);

  /// Drops all tasks so the graph can be rebuilt (buffers are reused).
  void clear();

  /// Attaches a span recorder: every executed task becomes a "sched" span
  /// (named by its label) on the thread that ran it. Survives clear();
  /// nullptr detaches. Tracing never alters scheduling order.
  void set_trace(obs::TraceRecorder* trace) noexcept { trace_ = trace; }

  std::size_t size() const noexcept { return tasks_.size(); }
  const std::string& label(TaskId id) const { return tasks_.at(id).label; }

 private:
  struct Task {
    std::string label;
    std::function<void()> fn;
    std::vector<TaskId> deps;
    std::vector<TaskId> dependents;
  };

  void run_serial();
  void run_parallel(parallel::ThreadPool& pool);
  void run_task(Task& task);

  std::vector<Task> tasks_;
  obs::TraceRecorder* trace_ = nullptr;
};

}  // namespace middlefl::sched
