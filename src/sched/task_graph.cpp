#include "sched/task_graph.hpp"

#include <condition_variable>
#include <exception>
#include <mutex>
#include <stdexcept>

namespace middlefl::sched {

TaskGraph::TaskId TaskGraph::add(std::string label, std::function<void()> fn,
                                 std::span<const TaskId> deps) {
  if (fn == nullptr) {
    throw std::invalid_argument("TaskGraph::add: null task function");
  }
  const TaskId id = tasks_.size();
  for (const TaskId dep : deps) {
    if (dep >= id) {
      throw std::invalid_argument(
          "TaskGraph::add('" + label +
          "'): dependencies must reference earlier tasks");
    }
  }
  Task task;
  task.label = std::move(label);
  task.fn = std::move(fn);
  task.deps.assign(deps.begin(), deps.end());
  tasks_.push_back(std::move(task));
  for (const TaskId dep : tasks_.back().deps) {
    tasks_[dep].dependents.push_back(id);
  }
  return id;
}

void TaskGraph::clear() {
  tasks_.clear();
}

void TaskGraph::run(parallel::ThreadPool* pool) {
  if (tasks_.empty()) return;
  if (pool == nullptr || pool->size() <= 1 ||
      parallel::ThreadPool::in_worker()) {
    run_serial();
  } else {
    run_parallel(*pool);
  }
}

void TaskGraph::run_task(Task& task) {
  if (trace_ == nullptr) {
    task.fn();
    return;
  }
  obs::TraceSpan span(trace_, task.label, "sched");
  task.fn();
}

void TaskGraph::run_serial() {
  // Insertion order is a topological order (add() rejects forward deps).
  std::exception_ptr first_error;
  for (Task& task : tasks_) {
    if (first_error) break;  // fail-fast: skip everything after a failure
    try {
      run_task(task);
    } catch (...) {
      first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void TaskGraph::run_parallel(parallel::ThreadPool& pool) {
  const std::size_t n = tasks_.size();

  struct RunState {
    std::mutex mutex;
    std::condition_variable done_cv;
    std::vector<std::size_t> pending;  // unmet dependency counts
    std::size_t finished = 0;
    std::exception_ptr first_error;
  };
  RunState state;
  state.pending.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    state.pending[i] = tasks_[i].deps.size();
  }

  // Each execution decrements its dependents' pending counts and submits
  // the ones that became ready; the caller waits for the whole graph.
  // Ready tasks are collected under the lock but submitted outside it so a
  // worker never blocks on the pool queue while holding the graph mutex.
  std::function<void(std::size_t)> execute = [&](std::size_t id) {
    bool failed;
    {
      std::lock_guard lock(state.mutex);
      failed = state.first_error != nullptr;
    }
    if (!failed) {
      try {
        run_task(tasks_[id]);
      } catch (...) {
        std::lock_guard lock(state.mutex);
        if (!state.first_error) state.first_error = std::current_exception();
      }
    }
    std::vector<std::size_t> ready;
    {
      std::lock_guard lock(state.mutex);
      ++state.finished;
      for (const TaskId dep : tasks_[id].dependents) {
        if (--state.pending[dep] == 0) ready.push_back(dep);
      }
      // Notify under the lock: once the caller sees finished == n it may
      // destroy the state, so the last worker must not touch it after
      // releasing the mutex.
      if (state.finished == n) state.done_cv.notify_all();
    }
    for (const std::size_t next : ready) {
      pool.submit([&execute, next] { execute(next); });
    }
  };

  std::vector<std::size_t> roots;
  for (std::size_t i = 0; i < n; ++i) {
    if (state.pending[i] == 0) roots.push_back(i);
  }
  for (const std::size_t root : roots) {
    pool.submit([&execute, root] { execute(root); });
  }

  std::unique_lock lock(state.mutex);
  state.done_cv.wait(lock, [&] { return state.finished == n; });
  if (state.first_error) std::rethrow_exception(state.first_error);
}

}  // namespace middlefl::sched
