#include "serve/serving.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace middlefl::serve {

namespace {

/// Upper bucket bounds for serve.latency_us: sub-millisecond resolution at
/// the bottom (single-sample forwards on small models), tapering to 1 s.
std::vector<double> latency_bounds() {
  return {50.0,    100.0,   250.0,   500.0,    1000.0,   2500.0,  5000.0,
          10000.0, 25000.0, 50000.0, 100000.0, 250000.0, 1.0e6};
}

/// serve.batch_occupancy bounds: powers of two up to the largest
/// reasonable coalescing cap.
std::vector<double> occupancy_bounds() {
  return {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0};
}

}  // namespace

// ---------------------------------------------------------------------------
// EdgeServer

bool EdgeServer::submit(std::span<const float> features, ServeTicket& ticket) {
  ServingHub& hub = *hub_;
  bool accepted = false;
  bool need_schedule = false;
  if (slot_.version() != 0) {
    ticket.arm(ServeTicket::Clock::now());
    std::lock_guard lock(mutex_);
    if (queue_.size() < hub.config_.max_queue) {
      queue_.push_back(Pending{features, &ticket});
      need_schedule = !drain_scheduled_;
      drain_scheduled_ = true;
      accepted = true;
    }
  }
  if (!accepted) {
    hub.rejected_.fetch_add(1, std::memory_order_relaxed);
    if (hub.obs_.metrics != nullptr) hub.obs_.metrics->add(hub.rejected_id_);
    return false;
  }
  hub.submitted_.fetch_add(1, std::memory_order_relaxed);
  if (hub.obs_.metrics != nullptr) hub.obs_.metrics->add(hub.requests_id_);
  if (need_schedule) hub.schedule_drain(*this);
  return true;
}

void EdgeServer::publish(const core::Snapshot& model) {
  slot_.publish(model);
}

void EdgeServer::drain() {
  ServingHub& hub = *hub_;
  ServingHub::InferenceRuntime* rt = hub.acquire_runtime();
  const tensor::Shape& input_shape = rt->model->input_shape();
  const std::size_t sample_len = input_shape.numel();
  for (;;) {
    const std::size_t cap = hub.max_batch();
    rt->chunk.clear();
    {
      std::lock_guard lock(mutex_);
      if (queue_.empty()) {
        // Un-schedule under the queue mutex: a submit that raced past the
        // emptiness check sees drain_scheduled_ == false and schedules a
        // fresh drain — no lost wakeup.
        drain_scheduled_ = false;
        break;
      }
      const std::size_t take = std::min(cap, queue_.size());
      for (std::size_t i = 0; i < take; ++i) {
        rt->chunk.push_back(queue_.front());
        queue_.pop_front();
      }
    }
    const std::size_t rows = rt->chunk.size();
    obs::TraceSpan span(hub.obs_.trace, "serve_batch", "serve", rows, "rows");

    // Hot-swap check: one acquire load per batch; reload parameters only
    // when training republished since the last batch this runtime ran.
    slot_.refresh(rt->cached);
    const std::uint64_t version = rt->cached->version();
    if (version != rt->loaded_version) {
      rt->model->set_parameters(rt->cached->span());
      rt->loaded_version = version;
      hub.reloads_.fetch_add(1, std::memory_order_relaxed);
    }

    // Gather the single-sample requests into one pooled batch tensor and
    // run the forward-only fused path. Steady state touches no heap: the
    // shape is cached per row count, the tensor keeps its high-water
    // allocation, and predictions/chunk only grow to max_batch once.
    rt->batch.reset_for_overwrite(hub.batch_shape(*rt, rows));
    float* dst = rt->batch.data().data();
    for (const Pending& pending : rt->chunk) {
      std::memcpy(dst, pending.features.data(), sample_len * sizeof(float));
      dst += sample_len;
    }
    if (rt->predictions.size() < rows) rt->predictions.resize(rows);
    const std::span<std::int32_t> out =
        std::span(rt->predictions).first(rows);
    rt->model->predict(rt->batch, out);

    const auto now = ServeTicket::Clock::now();
    for (std::size_t i = 0; i < rows; ++i) {
      rt->chunk[i].ticket->complete(out[i], version, now);
    }
    hub.served_.fetch_add(rows, std::memory_order_relaxed);
    hub.batches_.fetch_add(1, std::memory_order_relaxed);
    if (hub.obs_.metrics != nullptr) {
      hub.obs_.metrics->add(hub.served_id_, static_cast<double>(rows));
      hub.obs_.metrics->add(hub.batches_id_);
      hub.obs_.metrics->observe(hub.occupancy_id_,
                                static_cast<double>(rows));
      for (std::size_t i = 0; i < rows; ++i) {
        hub.obs_.metrics->observe(hub.latency_id_,
                                  rt->chunk[i].ticket->latency_us());
      }
    }
  }
  hub.release_runtime(rt);
  hub.note_drain_done();
}

// ---------------------------------------------------------------------------
// ServingHub

ServingHub::ServingHub(const core::ServingConfig& config,
                       std::size_t num_edges, const nn::ModelSpec& model_spec,
                       parallel::ThreadPool* pool)
    : config_(config),
      pool_(pool),
      max_batch_(std::max<std::size_t>(1, config.max_batch)) {
  servers_.reserve(num_edges);
  for (std::size_t n = 0; n < num_edges; ++n) {
    servers_.emplace_back(new EdgeServer(n, this));
  }
  const std::size_t count = std::max<std::size_t>(1, config.runtimes);
  runtimes_.reserve(count);
  free_runtimes_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto runtime = std::make_unique<InferenceRuntime>();
    // Seed is irrelevant: parameters are always overwritten from a
    // published snapshot before the first predict().
    runtime->model = nn::build_model(model_spec, /*seed=*/0);
    free_runtimes_.push_back(runtime.get());
    runtimes_.push_back(std::move(runtime));
  }
}

ServingHub::~ServingHub() { quiesce(); }

void ServingHub::on_edge_model(std::size_t edge, const core::Snapshot& model) {
  if (edge >= servers_.size() || model == nullptr) return;
  servers_[edge]->publish(model);
  publishes_.fetch_add(1, std::memory_order_relaxed);
  if (obs_.metrics != nullptr) obs_.metrics->add(swaps_id_);
}

void ServingHub::set_observability(const obs::Observability& obs) {
  obs_ = obs;
  if (obs_.metrics != nullptr) {
    requests_id_ = obs_.metrics->counter("serve.requests");
    served_id_ = obs_.metrics->counter("serve.served");
    rejected_id_ = obs_.metrics->counter("serve.rejected");
    batches_id_ = obs_.metrics->counter("serve.batches");
    swaps_id_ = obs_.metrics->counter("serve.model_swaps");
    latency_id_ = obs_.metrics->histogram("serve.latency_us", latency_bounds());
    occupancy_id_ =
        obs_.metrics->histogram("serve.batch_occupancy", occupancy_bounds());
  }
}

void ServingHub::quiesce() {
  std::unique_lock lock(quiesce_mutex_);
  quiesce_cv_.wait(lock, [this] {
    if (active_drains_ != 0) return false;
    for (const auto& server : servers_) {
      std::lock_guard queue_lock(server->mutex_);
      if (!server->queue_.empty()) return false;
    }
    return true;
  });
}

ServingHub::Stats ServingHub::stats() const noexcept {
  Stats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.served = served_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.publishes = publishes_.load(std::memory_order_relaxed);
  s.reloads = reloads_.load(std::memory_order_relaxed);
  return s;
}

const tensor::Shape& ServingHub::batch_shape(InferenceRuntime& runtime,
                                             std::size_t rows) {
  if (runtime.shapes.size() <= rows) runtime.shapes.resize(rows + 1);
  if (runtime.shapes[rows].rank() == 0) {
    const tensor::Shape& input = runtime.model->input_shape();
    std::vector<std::size_t> dims;
    dims.reserve(input.rank() + 1);
    dims.push_back(rows);
    dims.insert(dims.end(), input.dims().begin(), input.dims().end());
    runtime.shapes[rows] = tensor::Shape(std::move(dims));
  }
  return runtime.shapes[rows];
}

ServingHub::InferenceRuntime* ServingHub::acquire_runtime() {
  std::unique_lock lock(runtime_mutex_);
  // Blocking is deadlock-free: runtimes are held only for the duration of
  // one drain() call (never across a task boundary), so every holder makes
  // progress and releases without waiting on anything else.
  runtime_cv_.wait(lock, [this] { return !free_runtimes_.empty(); });
  InferenceRuntime* runtime = free_runtimes_.back();
  free_runtimes_.pop_back();
  return runtime;
}

void ServingHub::release_runtime(InferenceRuntime* runtime) {
  {
    std::lock_guard lock(runtime_mutex_);
    free_runtimes_.push_back(runtime);
  }
  runtime_cv_.notify_one();
}

void ServingHub::schedule_drain(EdgeServer& server) {
  {
    std::lock_guard lock(quiesce_mutex_);
    ++active_drains_;
  }
  if (pool_ != nullptr) {
    pool_->submit([&server] { server.drain(); });
  } else {
    server.drain();
  }
}

void ServingHub::note_drain_done() {
  {
    std::lock_guard lock(quiesce_mutex_);
    --active_drains_;
  }
  quiesce_cv_.notify_all();
}

}  // namespace middlefl::serve
