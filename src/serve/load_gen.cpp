#include "serve/load_gen.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace middlefl::serve {

namespace {

/// Deterministic request stream: sample index for client c's i-th request.
std::size_t sample_for(std::size_t client, std::uint64_t i,
                       std::size_t dataset_size) {
  return static_cast<std::size_t>((client * 9973 + i * 7919) % dataset_size);
}

}  // namespace

LoadGenerator::LoadGenerator(ServingHub& hub, const data::Dataset& samples,
                             Options options)
    : hub_(hub), samples_(samples), options_(options) {
  if (options_.clients == 0) {
    throw std::invalid_argument("LoadGenerator: clients must be >= 1");
  }
  if (samples_.size() == 0) {
    throw std::invalid_argument("LoadGenerator: empty sample dataset");
  }
  if (options_.open_loop &&
      (options_.offered_qps <= 0.0 || options_.ring == 0)) {
    throw std::invalid_argument(
        "LoadGenerator: open mode needs offered_qps > 0 and ring >= 1");
  }
}

LoadGenerator::~LoadGenerator() {
  if (running_) stop();
}

void LoadGenerator::start() {
  if (running_) throw std::logic_error("LoadGenerator: already running");
  running_ = true;
  stop_.store(false, std::memory_order_relaxed);
  stats_.assign(options_.clients, ClientStats{});
  threads_.clear();
  threads_.reserve(options_.clients);
  started_ = std::chrono::steady_clock::now();
  for (std::size_t c = 0; c < options_.clients; ++c) {
    threads_.emplace_back([this, c] {
      if (options_.open_loop) {
        run_open(c, stats_[c]);
      } else {
        run_closed(c, stats_[c]);
      }
    });
  }
}

LoadGenerator::Window LoadGenerator::stop() {
  if (!running_) throw std::logic_error("LoadGenerator: not running");
  stop_.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads_) t.join();
  threads_.clear();
  running_ = false;
  Window window;
  window.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_)
          .count();
  for (ClientStats& s : stats_) {
    window.rejected += s.rejected;
    window.completed += s.latencies_us.size();
    window.latencies_us.insert(window.latencies_us.end(),
                               s.latencies_us.begin(), s.latencies_us.end());
  }
  return window;
}

void LoadGenerator::run_closed(std::size_t client, ClientStats& stats) {
  const std::size_t edges =
      options_.target_edges == 0
          ? hub_.num_edges()
          : std::min(options_.target_edges, hub_.num_edges());
  ServeTicket ticket;
  std::uint64_t i = 0;
  while (!stop_.load(std::memory_order_relaxed)) {
    const std::size_t edge = (client + i) % edges;
    const std::span<const float> features =
        samples_.features(sample_for(client, i, samples_.size()));
    ++i;
    if (!hub_.edge(edge).submit(features, ticket)) {
      ++stats.rejected;
      std::this_thread::yield();
      continue;
    }
    ticket.wait();
    stats.latencies_us.push_back(ticket.latency_us());
  }
}

void LoadGenerator::run_open(std::size_t client, ClientStats& stats) {
  const std::size_t edges =
      options_.target_edges == 0
          ? hub_.num_edges()
          : std::min(options_.target_edges, hub_.num_edges());
  // deque: ServeTicket is non-movable and the server holds pointers to
  // in-flight slots, so storage must be stable.
  std::deque<ServeTicket> ring(options_.ring);
  std::vector<bool> in_flight(options_.ring, false);
  const auto period = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(std::chrono::duration<double>(
      static_cast<double>(options_.clients) / options_.offered_qps));
  auto next = std::chrono::steady_clock::now();
  std::uint64_t i = 0;
  while (!stop_.load(std::memory_order_relaxed)) {
    const auto now = std::chrono::steady_clock::now();
    if (now < next) std::this_thread::sleep_until(next);
    next += period;
    const std::size_t slot = static_cast<std::size_t>(i % options_.ring);
    if (in_flight[slot]) {
      // Ring wrapped onto an outstanding request: block (backpressure)
      // and harvest its latency before reusing the ticket.
      ring[slot].wait();
      stats.latencies_us.push_back(ring[slot].latency_us());
      in_flight[slot] = false;
    }
    const std::size_t edge = (client + i) % edges;
    const std::span<const float> features =
        samples_.features(sample_for(client, i, samples_.size()));
    ++i;
    if (hub_.edge(edge).submit(features, ring[slot])) {
      in_flight[slot] = true;
    } else {
      ++stats.rejected;
    }
  }
  // Drain the in-flight tail so the server never touches a dead ticket.
  for (std::size_t slot = 0; slot < options_.ring; ++slot) {
    if (!in_flight[slot]) continue;
    ring[slot].wait();
    stats.latencies_us.push_back(ring[slot].latency_us());
  }
}

}  // namespace middlefl::serve
