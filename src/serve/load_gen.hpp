// Closed/open-loop request drivers for the edge serving path.
//
// A LoadGenerator owns a set of client threads that submit single-sample
// inference requests (rows of a Dataset) against a ServingHub and collect
// per-request latencies client-side. Two modes:
//
//   closed  each client keeps exactly one request outstanding: submit,
//           wait, record, repeat. Throughput is whatever the serving path
//           sustains; latency has no queueing inflation from the driver.
//   open    each client fires at a fixed offered rate (offered_qps split
//           evenly across clients), keeping up to `ring` requests in
//           flight; when the ring wraps onto an incomplete ticket the
//           client blocks (bounded memory under overload).
//
// Request targeting is deterministic arithmetic — client c's i-th request
// goes to edge (c + i) % num_edges with sample (c * 9973 + i * 7919) %
// dataset size — so two runs offer identical request streams without
// consuming any simulation RNG.
//
// Lifecycle per measurement window: start(); ... training runs ...;
// Window w = stop(). stop() joins all clients and drains their in-flight
// tickets, so the hub may be quiesced or reconfigured (set_max_batch)
// immediately after.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "data/dataset.hpp"
#include "serve/serving.hpp"

namespace middlefl::serve {

class LoadGenerator {
 public:
  struct Options {
    std::size_t clients = 4;
    bool open_loop = false;
    /// Open mode: total offered request rate across all clients.
    double offered_qps = 1000.0;
    /// Open mode: max in-flight requests per client.
    std::size_t ring = 32;
    /// Confine traffic to the first `target_edges` edges (0 = all): edge
    /// (c + i) % target_edges for client c's i-th request. Concentrating
    /// clients on few edges is how a bench drives batch coalescing —
    /// spread across many edges every queue holds at most one request.
    std::size_t target_edges = 0;
  };

  /// Aggregated results for one start()/stop() window.
  struct Window {
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;
    double wall_seconds = 0.0;
    /// One entry per completed request: server-side enqueue -> completion
    /// latency in microseconds (unsorted).
    std::vector<double> latencies_us;
    double qps() const noexcept {
      return wall_seconds > 0.0
                 ? static_cast<double>(completed) / wall_seconds
                 : 0.0;
    }
  };

  /// `samples` provides the request features and must outlive the
  /// generator; `hub` must have models published before start().
  LoadGenerator(ServingHub& hub, const data::Dataset& samples,
                Options options);
  ~LoadGenerator();

  LoadGenerator(const LoadGenerator&) = delete;
  LoadGenerator& operator=(const LoadGenerator&) = delete;

  /// Launches the client threads. Must not be called while running.
  void start();
  /// Stops the clients, joins them, and returns the merged window.
  Window stop();

 private:
  struct ClientStats {
    std::uint64_t rejected = 0;
    std::vector<double> latencies_us;
  };

  void run_closed(std::size_t client, ClientStats& stats);
  void run_open(std::size_t client, ClientStats& stats);

  ServingHub& hub_;
  const data::Dataset& samples_;
  const Options options_;
  std::atomic<bool> stop_{false};
  bool running_ = false;
  std::vector<std::thread> threads_;
  std::vector<ClientStats> stats_;
  std::chrono::steady_clock::time_point started_{};
};

}  // namespace middlefl::serve
