// Edge inference serving on top of the training stack.
//
// Each federated edge doubles as an inference server for the devices it
// covers: clients submit single samples, the edge coalesces whatever is
// pending into one batch sized for the packed GEMM micro-kernels, and the
// model being served is hot-swapped every time training republishes the
// edge's aggregate (EdgeAggregate / CloudSync) — readers never lock on the
// request path and can never observe a torn model, because models are
// immutable core::Snapshots swapped through a core::SnapshotSlot.
//
// Topology:
//
//   Simulation --EdgeModelSink--> ServingHub --publish--> EdgeServer[n]
//   client threads --submit(features, ticket)--> EdgeServer[n] queue
//   shared ThreadPool --drain task--> batch gather -> Sequential::predict
//
// ServingHub implements core::EdgeModelSink, so attaching it to a
// Simulation (set_edge_model_sink) is the only coupling between training
// and serving: the sink callback is a shared_ptr refcount bump plus an
// atomic version store — no RNG draws, no training-state mutation — which
// is why golden training fingerprints are bitwise identical with serving
// enabled (pipeline_test pins this).
//
// Batching/drain protocol (per edge): submit() appends to a small
// mutex-guarded queue and schedules ONE drain task on the shared pool if
// none is pending. The drain loop repeatedly moves up to max_batch
// requests out of the queue, gathers their features into a pooled batch
// tensor, refreshes the cached model from the slot (reload only when the
// published version moved), runs the forward-only predict() path (fused
// bias+ReLU epilogues, high-water activation buffers — zero steady-state
// allocation), and completes the tickets. When the queue is empty the
// drain un-schedules itself under the same mutex, so no wakeup is lost.
// Running drains on the training pool is deliberate: serving and training
// contend for the same workers, which is exactly the deployment the
// bench measures.
//
// Thread safety: submit() may be called from any thread; publish /
// on_edge_model from the (single) training writer per edge; configuration
// (set_observability, set_max_batch) only at serial points.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/serving_config.hpp"
#include "core/snapshot.hpp"
#include "nn/model_factory.hpp"
#include "obs/observability.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/tensor.hpp"

namespace middlefl::serve {

class EdgeServer;
class ServingHub;

/// Reusable completion slot for one in-flight request. A client arms the
/// ticket by submitting it, blocks in wait(), reads the result, and may
/// then submit the same ticket again — steady-state serving allocates
/// nothing per request. The caller's feature span must stay valid until
/// wait() returns.
class ServeTicket {
 public:
  using Clock = std::chrono::steady_clock;

  ServeTicket() = default;
  ServeTicket(const ServeTicket&) = delete;
  ServeTicket& operator=(const ServeTicket&) = delete;

  /// Blocks until the serving drain completes this ticket.
  void wait() const { done_.wait(false, std::memory_order_acquire); }
  bool done() const noexcept {
    return done_.load(std::memory_order_acquire);
  }

  /// Valid after wait(): predicted class, the version of the model that
  /// produced it, and the enqueue -> completion latency (server-side
  /// queueing + batching + forward; excludes client scheduling).
  std::int32_t prediction() const noexcept { return prediction_; }
  std::uint64_t model_version() const noexcept { return model_version_; }
  double latency_us() const noexcept {
    return std::chrono::duration<double, std::micro>(completed_ - enqueued_)
        .count();
  }

 private:
  friend class EdgeServer;

  void arm(Clock::time_point now) noexcept {
    enqueued_ = now;
    done_.store(false, std::memory_order_relaxed);
  }
  void complete(std::int32_t prediction, std::uint64_t version,
                Clock::time_point now) noexcept {
    prediction_ = prediction;
    model_version_ = version;
    completed_ = now;
    done_.store(true, std::memory_order_release);
    done_.notify_one();
  }

  mutable std::atomic<bool> done_{false};
  std::int32_t prediction_ = -1;
  std::uint64_t model_version_ = 0;
  Clock::time_point enqueued_{};
  Clock::time_point completed_{};
};

/// One edge's serving endpoint: hot-swap slot + request queue. Created and
/// owned by ServingHub.
class EdgeServer {
 public:
  EdgeServer(const EdgeServer&) = delete;
  EdgeServer& operator=(const EdgeServer&) = delete;

  /// Enqueues one single-sample request. Returns false (and leaves the
  /// ticket un-armed) when the queue is at max_queue — the admission-
  /// control path — or when no model has been published yet. `features`
  /// must match the model's per-sample input and outlive ticket.wait().
  bool submit(std::span<const float> features, ServeTicket& ticket);

  /// Swaps the served model. Lock-free for readers: they see either the
  /// old or the new fully-sealed snapshot, never a mixture.
  void publish(const core::Snapshot& model);

  /// Version currently being served (0 = none published yet).
  std::uint64_t model_version() const noexcept { return slot_.version(); }

  std::size_t id() const noexcept { return id_; }

 private:
  friend class ServingHub;

  struct Pending {
    std::span<const float> features;
    ServeTicket* ticket = nullptr;
  };

  EdgeServer(std::size_t id, ServingHub* hub) : id_(id), hub_(hub) {}

  /// Drain task body: runs on the shared pool until the queue is empty.
  void drain();

  const std::size_t id_;
  ServingHub* const hub_;
  core::SnapshotSlot slot_;

  std::mutex mutex_;
  std::deque<Pending> queue_;
  bool drain_scheduled_ = false;
};

/// Owns the per-edge servers and a small pool of inference runtimes
/// (cloned models + pooled batch tensors). Implements core::EdgeModelSink
/// so a Simulation republishes every edge aggregate straight into the
/// matching EdgeServer.
class ServingHub final : public core::EdgeModelSink {
 public:
  /// `pool` runs the drain tasks; nullptr means drains run inline on the
  /// submitting thread (serial mode). `model_spec` must describe the same
  /// architecture the simulation trains (parameter counts must match the
  /// published snapshots).
  ServingHub(const core::ServingConfig& config, std::size_t num_edges,
             const nn::ModelSpec& model_spec, parallel::ThreadPool* pool);
  ~ServingHub() override;

  ServingHub(const ServingHub&) = delete;
  ServingHub& operator=(const ServingHub&) = delete;

  std::size_t num_edges() const noexcept { return servers_.size(); }
  EdgeServer& edge(std::size_t n) { return *servers_.at(n); }

  /// core::EdgeModelSink: called by the training side on every edge
  /// republish (aggregate, cloud sync, warm start, sink attach).
  void on_edge_model(std::size_t edge, const core::Snapshot& model) override;

  /// Attach metrics/trace sinks; must happen before traffic starts.
  /// Registers serve.requests / serve.served / serve.rejected /
  /// serve.batches / serve.model_swaps counters and the serve.latency_us /
  /// serve.batch_occupancy histograms.
  void set_observability(const obs::Observability& obs);

  /// Coalescing cap for subsequent drains (>= 1). Serial-point switch used
  /// by the A/B bench arms (1 = unbatched baseline).
  void set_max_batch(std::size_t n) noexcept {
    max_batch_.store(n == 0 ? 1 : n, std::memory_order_relaxed);
  }
  std::size_t max_batch() const noexcept {
    return max_batch_.load(std::memory_order_relaxed);
  }
  const core::ServingConfig& config() const noexcept { return config_; }

  /// Blocks until every queue is empty and no drain task is running.
  /// Callers must have stopped submitting first (bench window boundary).
  void quiesce();

  /// Always-on relaxed counters (exact at serial points) so benches get
  /// totals without a MetricsRegistry attached.
  struct Stats {
    std::uint64_t submitted = 0;  // accepted into a queue
    std::uint64_t rejected = 0;   // queue full / no model yet
    std::uint64_t served = 0;     // tickets completed
    std::uint64_t batches = 0;    // predict() calls (served/batches = mean
                                  // batch occupancy)
    std::uint64_t publishes = 0;  // model hot-swaps (slot stores)
    std::uint64_t reloads = 0;    // runtime set_parameters refreshes
  };
  Stats stats() const noexcept;

 private:
  friend class EdgeServer;

  /// A cloned model + pooled buffers; borrowed by one drain at a time.
  struct InferenceRuntime {
    std::unique_ptr<nn::Sequential> model;
    std::uint64_t loaded_version = 0;  // version currently in model params
    core::Snapshot cached;             // SnapshotSlot::refresh cache
    tensor::Tensor batch;
    std::vector<std::int32_t> predictions;
    std::vector<EdgeServer::Pending> chunk;
    /// Lazily-built [rows, input...] shapes, indexed by rows, so steady-
    /// state drains never construct a Shape (no heap traffic).
    std::vector<tensor::Shape> shapes;
  };

  InferenceRuntime* acquire_runtime();
  void release_runtime(InferenceRuntime* runtime);
  const tensor::Shape& batch_shape(InferenceRuntime& runtime,
                                   std::size_t rows);
  void schedule_drain(EdgeServer& server);
  void note_drain_done();

  const core::ServingConfig config_;
  parallel::ThreadPool* const pool_;
  std::atomic<std::size_t> max_batch_;
  std::vector<std::unique_ptr<EdgeServer>> servers_;

  std::mutex runtime_mutex_;
  std::condition_variable runtime_cv_;
  std::vector<std::unique_ptr<InferenceRuntime>> runtimes_;
  std::vector<InferenceRuntime*> free_runtimes_;

  std::mutex quiesce_mutex_;
  std::condition_variable quiesce_cv_;
  std::size_t active_drains_ = 0;

  obs::Observability obs_;
  obs::MetricsRegistry::MetricId requests_id_ = 0;
  obs::MetricsRegistry::MetricId served_id_ = 0;
  obs::MetricsRegistry::MetricId rejected_id_ = 0;
  obs::MetricsRegistry::MetricId batches_id_ = 0;
  obs::MetricsRegistry::MetricId swaps_id_ = 0;
  obs::MetricsRegistry::MetricId latency_id_ = 0;
  obs::MetricsRegistry::MetricId occupancy_id_ = 0;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> publishes_{0};
  std::atomic<std::uint64_t> reloads_{0};
};

}  // namespace middlefl::serve
