// Learning-rate schedules over FL time steps.
//
// The Theorem-1 analysis assumes the diminishing schedule
// eta_t = 2 / (mu * (gamma + t)); the experiments use a constant rate with
// optional step decay. All schedules map a global time step to a rate the
// simulator installs on each selected device's optimizer.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <functional>

namespace middlefl::optim {

using LrSchedule = std::function<double(std::size_t time_step)>;

inline LrSchedule constant_lr(double lr) {
  return [lr](std::size_t) { return lr; };
}

/// lr * decay^(floor(t / interval)).
inline LrSchedule step_decay_lr(double lr, double decay,
                                std::size_t interval) {
  return [=](std::size_t t) {
    return lr * std::pow(decay, static_cast<double>(t / interval));
  };
}

/// The schedule from Theorem 1: eta_t = 2 / (mu * (gamma + t)), with
/// gamma = max(8 * beta / mu, I).
inline LrSchedule theorem1_lr(double mu, double beta, std::size_t local_steps) {
  const double gamma =
      std::max(8.0 * beta / mu, static_cast<double>(local_steps));
  return [mu, gamma](std::size_t t) {
    return 2.0 / (mu * (gamma + static_cast<double>(t)));
  };
}

/// Linear warmup to `lr` over `warmup` steps, constant afterwards.
inline LrSchedule warmup_lr(double lr, std::size_t warmup) {
  return [=](std::size_t t) {
    if (warmup == 0 || t >= warmup) return lr;
    return lr * static_cast<double>(t + 1) / static_cast<double>(warmup);
  };
}

}  // namespace middlefl::optim
