#include "optim/sgd.hpp"

#include <stdexcept>

namespace middlefl::optim {

Sgd::Sgd(SgdConfig config) : cfg_(config) {
  if (cfg_.learning_rate <= 0.0) {
    throw std::invalid_argument("Sgd: learning_rate must be positive");
  }
  if (cfg_.momentum < 0.0 || cfg_.momentum >= 1.0) {
    throw std::invalid_argument("Sgd: momentum must be in [0, 1)");
  }
  if (cfg_.weight_decay < 0.0) {
    throw std::invalid_argument("Sgd: weight_decay must be non-negative");
  }
}

void Sgd::step(std::span<float> params, std::span<const float> grads) {
  if (params.size() != grads.size()) {
    throw std::invalid_argument("Sgd::step: size mismatch");
  }
  const auto lr = static_cast<float>(cfg_.learning_rate);
  const auto mu = static_cast<float>(cfg_.momentum);
  const auto wd = static_cast<float>(cfg_.weight_decay);

  if (mu == 0.0f) {
    if (wd == 0.0f) {
      for (std::size_t i = 0; i < params.size(); ++i) {
        params[i] -= lr * grads[i];
      }
    } else {
      for (std::size_t i = 0; i < params.size(); ++i) {
        params[i] -= lr * (grads[i] + wd * params[i]);
      }
    }
    return;
  }

  if (velocity_.size() != params.size()) {
    velocity_.assign(params.size(), 0.0f);
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    const float g = grads[i] + wd * params[i];
    velocity_[i] = mu * velocity_[i] + g;
    params[i] -= lr * velocity_[i];
  }
}

void Sgd::reset() { velocity_.clear(); }

std::unique_ptr<Optimizer> Sgd::clone_config() const {
  return std::make_unique<Sgd>(cfg_);
}

void Sgd::save_state(std::vector<float>& out) const {
  out.assign(velocity_.begin(), velocity_.end());
}

void Sgd::load_state(std::span<const float> state) {
  velocity_.assign(state.begin(), state.end());
}

}  // namespace middlefl::optim
