// Stochastic gradient descent with classical momentum and optional weight
// decay: v = mu*v + g + wd*w ; w -= lr * v.
#pragma once

#include <vector>

#include "optim/optimizer.hpp"

namespace middlefl::optim {

struct SgdConfig {
  double learning_rate = 0.01;
  double momentum = 0.0;
  double weight_decay = 0.0;
};

class Sgd final : public Optimizer {
 public:
  explicit Sgd(SgdConfig config);

  std::string name() const override { return "SGD"; }
  void step(std::span<float> params, std::span<const float> grads) override;
  void reset() override;
  double learning_rate() const noexcept override { return cfg_.learning_rate; }
  void set_learning_rate(double lr) noexcept override {
    cfg_.learning_rate = lr;
  }
  std::unique_ptr<Optimizer> clone_config() const override;
  void save_state(std::vector<float>& out) const override;
  void load_state(std::span<const float> state) override;

  const SgdConfig& config() const noexcept { return cfg_; }

 private:
  SgdConfig cfg_;
  std::vector<float> velocity_;
};

}  // namespace middlefl::optim
