// First-order optimizers over flat parameter vectors.
//
// Optimizers operate on the (parameters, gradients) spans exposed by
// nn::Sequential. State (momentum buffers, Adam moments) is keyed to the
// vector length only, so one optimizer instance can be reset and reattached
// when a device downloads a fresh model — which is exactly what a federated
// round does.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>

namespace middlefl::optim {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  virtual std::string name() const = 0;

  /// Applies one update: params -= f(grads). Both spans must keep the same
  /// length across calls until reset().
  virtual void step(std::span<float> params, std::span<const float> grads) = 0;

  /// Clears internal state (momentum/moments, step counter). Called when a
  /// device re-initializes local training from a downloaded model.
  virtual void reset() = 0;

  virtual double learning_rate() const noexcept = 0;
  virtual void set_learning_rate(double lr) noexcept = 0;

  /// Fresh instance with the same hyperparameters and empty state.
  virtual std::unique_ptr<Optimizer> clone_config() const = 0;
};

/// Factory signature used by the FL simulator to equip every device with an
/// identically-configured optimizer.
using OptimizerFactory = std::unique_ptr<Optimizer> (*)();

}  // namespace middlefl::optim
