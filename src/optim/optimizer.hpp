// First-order optimizers over flat parameter vectors.
//
// Optimizers operate on the (parameters, gradients) spans exposed by
// nn::Sequential. State (momentum buffers, Adam moments) is keyed to the
// vector length only, so one optimizer instance can be reset and reattached
// when a device downloads a fresh model — which is exactly what a federated
// round does.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace middlefl::optim {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  virtual std::string name() const = 0;

  /// Applies one update: params -= f(grads). Both spans must keep the same
  /// length across calls until reset().
  virtual void step(std::span<float> params, std::span<const float> grads) = 0;

  /// Clears internal state (momentum/moments, step counter). Called when a
  /// device re-initializes local training from a downloaded model.
  virtual void reset() = 0;

  virtual double learning_rate() const noexcept = 0;
  virtual void set_learning_rate(double lr) noexcept = 0;

  /// Fresh instance with the same hyperparameters and empty state.
  virtual std::unique_ptr<Optimizer> clone_config() const = 0;

  /// Serializes the internal state (momentum/moments/step counter) into
  /// `out` as a flat float vector, so a virtual device can persist it
  /// across pooled optimizer instances. An empty vector means "no state"
  /// and loads as a reset. The base implementation captures nothing —
  /// optimizers without overrides behave as if reset each round.
  virtual void save_state(std::vector<float>& out) const { out.clear(); }
  /// Restores state captured by save_state on a same-length parameter
  /// vector; an empty span resets.
  virtual void load_state(std::span<const float> state) {
    static_cast<void>(state);
    reset();
  }
};

/// Factory signature used by the FL simulator to equip every device with an
/// identically-configured optimizer.
using OptimizerFactory = std::unique_ptr<Optimizer> (*)();

}  // namespace middlefl::optim
