#include "optim/adam.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace middlefl::optim {

Adam::Adam(AdamConfig config) : cfg_(config) {
  if (cfg_.learning_rate <= 0.0) {
    throw std::invalid_argument("Adam: learning_rate must be positive");
  }
  if (cfg_.beta1 < 0.0 || cfg_.beta1 >= 1.0 || cfg_.beta2 < 0.0 ||
      cfg_.beta2 >= 1.0) {
    throw std::invalid_argument("Adam: betas must be in [0, 1)");
  }
  if (cfg_.epsilon <= 0.0) {
    throw std::invalid_argument("Adam: epsilon must be positive");
  }
}

void Adam::step(std::span<float> params, std::span<const float> grads) {
  if (params.size() != grads.size()) {
    throw std::invalid_argument("Adam::step: size mismatch");
  }
  if (m_.size() != params.size()) {
    m_.assign(params.size(), 0.0f);
    v_.assign(params.size(), 0.0f);
    t_ = 0;
  }
  ++t_;
  const auto b1 = static_cast<float>(cfg_.beta1);
  const auto b2 = static_cast<float>(cfg_.beta2);
  const auto eps = static_cast<float>(cfg_.epsilon);
  const auto wd = static_cast<float>(cfg_.weight_decay);
  const double bias1 = 1.0 - std::pow(cfg_.beta1, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(cfg_.beta2, static_cast<double>(t_));
  const auto alpha =
      static_cast<float>(cfg_.learning_rate * std::sqrt(bias2) / bias1);

  for (std::size_t i = 0; i < params.size(); ++i) {
    const float g = grads[i] + wd * params[i];
    m_[i] = b1 * m_[i] + (1.0f - b1) * g;
    v_[i] = b2 * v_[i] + (1.0f - b2) * g * g;
    params[i] -= alpha * m_[i] / (std::sqrt(v_[i]) + eps);
  }
}

void Adam::reset() {
  m_.clear();
  v_.clear();
  t_ = 0;
}

std::unique_ptr<Optimizer> Adam::clone_config() const {
  return std::make_unique<Adam>(cfg_);
}

void Adam::save_state(std::vector<float>& out) const {
  if (m_.empty()) {
    out.clear();
    return;
  }
  // Layout: [t, m..., v...]; t is exact in a float for any realistic count.
  out.resize(1 + m_.size() + v_.size());
  out[0] = static_cast<float>(t_);
  std::copy(m_.begin(), m_.end(), out.begin() + 1);
  std::copy(v_.begin(), v_.end(),
            out.begin() + 1 + static_cast<std::ptrdiff_t>(m_.size()));
}

void Adam::load_state(std::span<const float> state) {
  if (state.empty()) {
    reset();
    return;
  }
  if (state.size() % 2 != 1) {
    throw std::invalid_argument("Adam::load_state: malformed state");
  }
  const std::size_t n = (state.size() - 1) / 2;
  t_ = static_cast<std::size_t>(state[0]);
  m_.assign(state.begin() + 1, state.begin() + 1 + n);
  v_.assign(state.begin() + 1 + n, state.end());
}

}  // namespace middlefl::optim
