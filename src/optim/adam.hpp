// Adam (Kingma & Ba, 2015) with bias correction; used by the paper for the
// SpeechCommands task (lr 1e-3).
#pragma once

#include <vector>

#include "optim/optimizer.hpp"

namespace middlefl::optim {

struct AdamConfig {
  double learning_rate = 0.001;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  double weight_decay = 0.0;
};

class Adam final : public Optimizer {
 public:
  explicit Adam(AdamConfig config);

  std::string name() const override { return "Adam"; }
  void step(std::span<float> params, std::span<const float> grads) override;
  void reset() override;
  double learning_rate() const noexcept override { return cfg_.learning_rate; }
  void set_learning_rate(double lr) noexcept override {
    cfg_.learning_rate = lr;
  }
  std::unique_ptr<Optimizer> clone_config() const override;
  void save_state(std::vector<float>& out) const override;
  void load_state(std::span<const float> state) override;

  const AdamConfig& config() const noexcept { return cfg_; }
  std::size_t step_count() const noexcept { return t_; }

 private:
  AdamConfig cfg_;
  std::vector<float> m_;
  std::vector<float> v_;
  std::size_t t_ = 0;
};

}  // namespace middlefl::optim
