// Small numerically-stable statistics helpers used by metrics and benches.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace middlefl::util {

/// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
  }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  /// Population variance; 0 for fewer than two samples.
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exponential moving average, the smoothing the paper applies to its
/// accuracy curves ("all results are smoothed and presented by their
/// averages").
class EmaSmoother {
 public:
  /// `alpha` is the weight on the newest observation, in (0, 1].
  explicit EmaSmoother(double alpha) : alpha_(alpha) {}

  double update(double x) noexcept {
    value_ = initialized_ ? alpha_ * x + (1.0 - alpha_) * value_ : x;
    initialized_ = true;
    return value_;
  }

  bool initialized() const noexcept { return initialized_; }
  double value() const noexcept { return value_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

/// Centered moving average with window `2*radius+1`, truncated at the ends;
/// used when smoothing a complete series after the fact.
std::vector<double> moving_average(std::span<const double> series,
                                   std::size_t radius);

/// Arithmetic mean (0 for empty input).
double mean(std::span<const double> values) noexcept;

/// Sample standard deviation (0 for fewer than two values).
double sample_stddev(std::span<const double> values) noexcept;

/// Linear interpolated quantile in [0,1]; requires non-empty input.
double quantile(std::vector<double> values, double q);

}  // namespace middlefl::util
