#include "util/logging.hpp"

#include <cctype>
#include <iostream>

namespace middlefl::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_output_mutex;

}  // namespace

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

LogLevel parse_log_level(std::string_view name) noexcept {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower.push_back(static_cast<char>(std::tolower(c)));
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return LogLevel::kInfo;
}

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

namespace detail {

LogLine::LogLine(LogLevel level, std::string_view file, int line)
    : enabled_(level >= g_level.load(std::memory_order_relaxed)) {
  if (!enabled_) return;
  // Strip the directory part of the path; the basename is enough context.
  const auto slash = file.find_last_of('/');
  if (slash != std::string_view::npos) file.remove_prefix(slash + 1);
  stream_ << '[' << to_string(level) << "] " << file << ':' << line << ": ";
}

LogLine::~LogLine() {
  if (!enabled_) return;
  stream_ << '\n';
  const std::string text = stream_.str();
  std::lock_guard lock(g_output_mutex);
  std::cerr << text;
}

}  // namespace detail
}  // namespace middlefl::util
