// Minimal leveled logger for the simulation stack.
//
// The simulator is deterministic and single-process, so the logger favours
// simplicity: a global level, thread-safe line-at-a-time output to stderr,
// and printf-free stream formatting. Use MIDDLEFL_LOG(Info) << "...";
#pragma once

#include <atomic>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace middlefl::util {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Human-readable tag for a level ("TRACE", "INFO", ...).
std::string_view to_string(LogLevel level) noexcept;

/// Parse a level name (case-insensitive); returns kInfo on unknown input.
LogLevel parse_log_level(std::string_view name) noexcept;

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

namespace detail {

/// One log statement. Accumulates into a buffer, flushes on destruction so
/// concurrent threads never interleave within a line.
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view file, int line);
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine();

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace middlefl::util

#define MIDDLEFL_LOG(level_name)                                     \
  ::middlefl::util::detail::LogLine(                                 \
      ::middlefl::util::LogLevel::k##level_name, __FILE__, __LINE__)
