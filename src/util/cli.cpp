#include "util/cli.hpp"

#include <charconv>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace middlefl::util {
namespace {

[[noreturn]] void bad_value(std::string_view name, std::string_view value) {
  throw std::invalid_argument("invalid value '" + std::string(value) +
                              "' for --" + std::string(name));
}

template <typename T>
T parse_integral(std::string_view name, std::string_view value) {
  T out{};
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc{} || ptr != value.data() + value.size()) {
    bad_value(name, value);
  }
  return out;
}

bool parse_bool(std::string_view name, std::string_view value) {
  if (value == "true" || value == "1" || value == "yes" || value == "on") {
    return true;
  }
  if (value == "false" || value == "0" || value == "no" || value == "off") {
    return false;
  }
  bad_value(name, value);
}

}  // namespace

void CliParser::add_impl(std::string name, std::string help,
                         std::string default_value, bool is_bool,
                         std::function<void(std::string_view)> set) {
  Flag flag{std::move(help), std::move(default_value), is_bool, false,
            std::move(set)};
  if (!flags_.emplace(name, std::move(flag)).second) {
    throw std::logic_error("duplicate flag --" + name);
  }
  order_.push_back(std::move(name));
}

void CliParser::add_flag(std::string name, std::string help, int* target) {
  add_impl(std::move(name), std::move(help), std::to_string(*target), false,
           [target, n = order_.size()](std::string_view v) {
             *target = parse_integral<int>("", v);
           });
}

void CliParser::add_flag(std::string name, std::string help,
                         std::size_t* target) {
  add_impl(std::move(name), std::move(help), std::to_string(*target), false,
           [target](std::string_view v) {
             *target = parse_integral<std::size_t>("", v);
           });
}

void CliParser::add_flag(std::string name, std::string help, double* target) {
  std::ostringstream def;
  def << *target;
  add_impl(std::move(name), std::move(help), def.str(), false,
           [target](std::string_view v) {
             try {
               std::size_t used = 0;
               const double parsed = std::stod(std::string(v), &used);
               if (used != v.size()) bad_value("", v);
               *target = parsed;
             } catch (const std::invalid_argument&) {
               bad_value("", v);
             }
           });
}

void CliParser::add_flag(std::string name, std::string help, bool* target) {
  add_impl(std::move(name), std::move(help), *target ? "true" : "false", true,
           [target](std::string_view v) { *target = parse_bool("", v); });
}

void CliParser::add_flag(std::string name, std::string help,
                         std::string* target) {
  add_impl(std::move(name), std::move(help), *target, false,
           [target](std::string_view v) { *target = std::string(v); });
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << help_text();
      return false;
    }
    if (!arg.starts_with("--")) {
      throw std::invalid_argument("unexpected positional argument '" +
                                  std::string(arg) + "'");
    }
    arg.remove_prefix(2);
    std::string_view name = arg;
    std::optional<std::string_view> value;
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    }
    const auto it = flags_.find(name);
    if (it == flags_.end()) {
      throw std::invalid_argument("unknown flag --" + std::string(name));
    }
    Flag& flag = it->second;
    if (!value) {
      // Bare booleans mean "true"; other types consume the next argv slot.
      if (flag.is_bool &&
          (i + 1 >= argc || std::string_view(argv[i + 1]).starts_with("--"))) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        throw std::invalid_argument("flag --" + std::string(name) +
                                    " requires a value");
      }
    }
    try {
      flag.set(*value);
      flag.seen = true;
    } catch (const std::invalid_argument&) {
      throw std::invalid_argument("invalid value '" + std::string(*value) +
                                  "' for --" + std::string(name));
    }
  }
  return true;
}

bool CliParser::was_set(std::string_view name) const {
  const auto it = flags_.find(name);
  return it != flags_.end() && it->second.seen;
}

std::string CliParser::help_text() const {
  std::ostringstream out;
  out << description_ << "\n\nFlags:\n";
  for (const auto& name : order_) {
    const Flag& flag = flags_.at(name);
    out << "  --" << name << "  " << flag.help << " (default: "
        << (flag.default_value.empty() ? "\"\"" : flag.default_value)
        << ")\n";
  }
  out << "  --help  show this message\n";
  return out.str();
}

}  // namespace middlefl::util
