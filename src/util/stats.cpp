#include "util/stats.hpp"

#include <algorithm>
#include <stdexcept>

namespace middlefl::util {

std::vector<double> moving_average(std::span<const double> series,
                                   std::size_t radius) {
  std::vector<double> out(series.size());
  if (series.empty()) return out;
  // Prefix sums make each window O(1); the series are short (thousands of
  // steps) so double precision is ample.
  std::vector<double> prefix(series.size() + 1, 0.0);
  for (std::size_t i = 0; i < series.size(); ++i) {
    prefix[i + 1] = prefix[i] + series[i];
  }
  for (std::size_t i = 0; i < series.size(); ++i) {
    const std::size_t lo = i >= radius ? i - radius : 0;
    const std::size_t hi = std::min(series.size() - 1, i + radius);
    out[i] = (prefix[hi + 1] - prefix[lo]) / static_cast<double>(hi - lo + 1);
  }
  return out;
}

double mean(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double sample_stddev(std::span<const double> values) noexcept {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double sq = 0.0;
  for (double v : values) sq += (v - m) * (v - m);
  return std::sqrt(sq / static_cast<double>(values.size() - 1));
}

double quantile(std::vector<double> values, double q) {
  if (values.empty()) throw std::invalid_argument("quantile: empty input");
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

}  // namespace middlefl::util
