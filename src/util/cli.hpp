// Tiny declarative CLI flag parser for bench/example binaries.
//
// Flags are `--name value` or `--name=value`; booleans also accept the bare
// form `--name`. Unknown flags are an error so typos in sweep scripts fail
// loudly instead of silently running the default configuration.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace middlefl::util {

class CliParser {
 public:
  explicit CliParser(std::string program_description)
      : description_(std::move(program_description)) {}

  /// Registers a flag bound to `target`; the current value of `target` is
  /// shown as the default in help text.
  void add_flag(std::string name, std::string help, int* target);
  void add_flag(std::string name, std::string help, std::size_t* target);
  void add_flag(std::string name, std::string help, double* target);
  void add_flag(std::string name, std::string help, bool* target);
  void add_flag(std::string name, std::string help, std::string* target);

  /// Parses argv. Returns false (after printing help) when --help was given;
  /// throws std::invalid_argument on malformed input or unknown flags.
  bool parse(int argc, const char* const* argv);

  /// Renders the help text.
  std::string help_text() const;

  /// True when `name` appeared on the parsed command line — the hook
  /// override layers (e.g. --scenario plus explicit flags) use to tell
  /// "explicitly set" from "still the default".
  bool was_set(std::string_view name) const;

 private:
  struct Flag {
    std::string help;
    std::string default_value;
    bool is_bool = false;
    bool seen = false;
    std::function<void(std::string_view)> set;
  };

  void add_impl(std::string name, std::string help, std::string default_value,
                bool is_bool, std::function<void(std::string_view)> set);

  std::string description_;
  std::map<std::string, Flag, std::less<>> flags_;
  std::vector<std::string> order_;  // help prints flags in declaration order
};

}  // namespace middlefl::util
