// CSV emission for experiment results.
//
// Experiment binaries stream one row per (algorithm, step) measurement; the
// writer quotes fields only when required so output stays diff-friendly and
// ingestible by pandas/gnuplot alike.
#pragma once

#include <fstream>
#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace middlefl::util {

/// Escape a single CSV field per RFC 4180 (quote iff it contains
/// comma/quote/newline; embedded quotes are doubled).
std::string csv_escape(std::string_view field);

/// Format a double with enough precision to round-trip plotted series while
/// keeping files compact (up to 9 significant digits, trailing zeros
/// trimmed).
std::string csv_number(double value);

/// Split one CSV line into fields, undoing csv_escape(): quoted fields may
/// contain commas and doubled quotes. Throws std::invalid_argument on a
/// malformed line (unterminated quote, or garbage after a closing quote).
/// The line must not contain the row terminator; embedded newlines inside
/// quoted fields are not supported (csv_escape never emits them unescaped,
/// and every writer in this codebase quotes them into a single line).
std::vector<std::string> csv_split_row(std::string_view line);

/// Row-oriented CSV writer over any ostream. Not thread-safe; one writer per
/// stream.
class CsvWriter {
 public:
  /// Writes to an external stream; the caller keeps ownership.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Opens (and owns) a file stream. Throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  /// Emits the header row. Call at most once, before any data row.
  void header(std::initializer_list<std::string_view> names);
  void header(const std::vector<std::string>& names);

  /// Begins a new row; fields are appended with add().
  CsvWriter& add(std::string_view field);
  CsvWriter& add(double value);
  CsvWriter& add(long long value);
  CsvWriter& add(int value) { return add(static_cast<long long>(value)); }
  CsvWriter& add(std::size_t value) {
    return add(static_cast<long long>(value));
  }

  /// Terminates the current row.
  void end_row();

  /// Number of data rows fully written.
  std::size_t rows_written() const noexcept { return rows_; }

 private:
  void raw_field(std::string_view text);

  std::ofstream owned_;
  std::ostream* out_;
  bool row_open_ = false;
  bool header_written_ = false;
  std::size_t rows_ = 0;
};

}  // namespace middlefl::util
