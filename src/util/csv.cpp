#include "util/csv.hpp"

#include <cstdio>
#include <stdexcept>

namespace middlefl::util {

std::string csv_escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string csv_number(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

CsvWriter::CsvWriter(const std::string& path) : owned_(path), out_(&owned_) {
  if (!owned_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

void CsvWriter::header(std::initializer_list<std::string_view> names) {
  header(std::vector<std::string>(names.begin(), names.end()));
}

void CsvWriter::header(const std::vector<std::string>& names) {
  if (header_written_ || rows_ > 0 || row_open_) {
    throw std::logic_error("CsvWriter: header must be the first row");
  }
  bool first = true;
  for (const auto& name : names) {
    if (!first) *out_ << ',';
    *out_ << csv_escape(name);
    first = false;
  }
  *out_ << '\n';
  header_written_ = true;
}

void CsvWriter::raw_field(std::string_view text) {
  if (row_open_) *out_ << ',';
  *out_ << text;
  row_open_ = true;
}

CsvWriter& CsvWriter::add(std::string_view field) {
  raw_field(csv_escape(field));
  return *this;
}

CsvWriter& CsvWriter::add(double value) {
  raw_field(csv_number(value));
  return *this;
}

CsvWriter& CsvWriter::add(long long value) {
  raw_field(std::to_string(value));
  return *this;
}

void CsvWriter::end_row() {
  *out_ << '\n';
  row_open_ = false;
  ++rows_;
}

}  // namespace middlefl::util
