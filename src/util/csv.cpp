#include "util/csv.hpp"

#include <cstdio>
#include <stdexcept>

namespace middlefl::util {

std::string csv_escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::vector<std::string> csv_split_row(std::string_view line) {
  std::vector<std::string> fields;
  std::string field;
  std::size_t i = 0;
  const std::size_t n = line.size();
  for (;;) {
    field.clear();
    if (i < n && line[i] == '"') {
      ++i;  // opening quote
      for (;;) {
        if (i >= n) {
          throw std::invalid_argument(
              "csv_split_row: unterminated quoted field");
        }
        if (line[i] == '"') {
          if (i + 1 < n && line[i + 1] == '"') {  // doubled quote -> literal
            field.push_back('"');
            i += 2;
          } else {
            ++i;  // closing quote
            break;
          }
        } else {
          field.push_back(line[i++]);
        }
      }
      if (i < n && line[i] != ',') {
        throw std::invalid_argument(
            "csv_split_row: text after closing quote");
      }
    } else {
      while (i < n && line[i] != ',') field.push_back(line[i++]);
    }
    fields.push_back(field);
    if (i >= n) break;
    ++i;  // consume the comma; a trailing comma yields a final empty field
  }
  return fields;
}

std::string csv_number(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

CsvWriter::CsvWriter(const std::string& path) : owned_(path), out_(&owned_) {
  if (!owned_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

void CsvWriter::header(std::initializer_list<std::string_view> names) {
  header(std::vector<std::string>(names.begin(), names.end()));
}

void CsvWriter::header(const std::vector<std::string>& names) {
  if (header_written_ || rows_ > 0 || row_open_) {
    throw std::logic_error("CsvWriter: header must be the first row");
  }
  bool first = true;
  for (const auto& name : names) {
    if (!first) *out_ << ',';
    *out_ << csv_escape(name);
    first = false;
  }
  *out_ << '\n';
  header_written_ = true;
}

void CsvWriter::raw_field(std::string_view text) {
  if (row_open_) *out_ << ',';
  *out_ << text;
  row_open_ = true;
}

CsvWriter& CsvWriter::add(std::string_view field) {
  raw_field(csv_escape(field));
  return *this;
}

CsvWriter& CsvWriter::add(double value) {
  raw_field(csv_number(value));
  return *this;
}

CsvWriter& CsvWriter::add(long long value) {
  raw_field(std::to_string(value));
  return *this;
}

void CsvWriter::end_row() {
  *out_ << '\n';
  row_open_ = false;
  ++rows_;
}

}  // namespace middlefl::util
