#include "config/scenario_build.hpp"

#include <stdexcept>

#include "mobility/markov_mobility.hpp"
#include "mobility/random_waypoint.hpp"
#include "mobility/trace.hpp"
#include "optim/adam.hpp"
#include "optim/sgd.hpp"
#include "parallel/rng.hpp"

namespace middlefl::config {
namespace {

data::Partition make_partition(const DataSpec& d, const data::Dataset& train,
                               std::uint64_t seed) {
  if (d.partition == "major-class") {
    return data::partition_major_class(train, d.devices, d.samples_per_device,
                                       d.major_fraction, seed + 11);
  }
  if (d.partition == "single-class") {
    return data::partition_single_class(train, d.devices,
                                        d.samples_per_device, seed + 11);
  }
  if (d.partition == "iid") {
    return data::partition_iid(train, d.devices, seed + 11);
  }
  if (d.partition == "dirichlet") {
    return data::partition_dirichlet(train, d.devices, d.dirichlet_alpha,
                                     seed + 11);
  }
  if (d.partition == "fleet-window") {
    return data::partition_fleet_window(train, d.devices,
                                        d.samples_per_device);
  }
  throw std::invalid_argument("unknown partition scheme '" + d.partition +
                              "'");
}

std::unique_ptr<optim::Optimizer> make_optimizer(const OptimizerSpec& o) {
  if (o.kind == "adam") {
    return std::make_unique<optim::Adam>(
        optim::AdamConfig{.learning_rate = o.learning_rate,
                          .beta1 = o.beta1,
                          .beta2 = o.beta2,
                          .epsilon = o.epsilon,
                          .weight_decay = o.weight_decay});
  }
  if (o.kind == "sgd") {
    return std::make_unique<optim::Sgd>(
        optim::SgdConfig{.learning_rate = o.learning_rate,
                         .momentum = o.momentum,
                         .weight_decay = o.weight_decay});
  }
  throw std::invalid_argument("unknown optimizer '" + o.kind + "'");
}

}  // namespace

BuiltScenario build_scenario(const ScenarioSpec& spec) {
  BuiltScenario built;
  built.spec = spec;

  // Same seeding chain as the flag front ends: the task preset's base seed
  // mixed with the experiment seed, +11 for the partition draw.
  built.data_config =
      data::task_config(data::parse_task(spec.data.task), spec.data.scale);
  built.data_config.seed =
      parallel::hash_combine(built.data_config.seed, spec.sim.seed);
  const data::SyntheticGenerator generator(built.data_config);
  built.train = generator.generate(spec.data.train_per_class, 1);
  built.test = generator.generate(spec.data.test_per_class, 2);
  built.partition = make_partition(spec.data, built.train, spec.sim.seed);

  if (spec.data.edge_assignment == "by-major-class") {
    built.homes = data::assign_edges_by_major_class(
        built.partition, spec.edges, built.data_config.num_classes);
  } else if (spec.data.edge_assignment == "uniform") {
    built.homes = data::assign_edges_uniform(built.partition.num_devices(),
                                             spec.edges, spec.sim.seed);
  } else {
    throw std::invalid_argument("unknown edge assignment '" +
                                spec.data.edge_assignment + "'");
  }

  built.model = spec.model;
  built.model.input_shape =
      tensor::Shape{built.data_config.channels, built.data_config.height,
                    built.data_config.width};
  built.model.num_classes = built.data_config.num_classes;

  built.optimizer = make_optimizer(spec.optimizer);
  return built;
}

optim::LrSchedule make_lr_schedule(const LrScheduleSpec& spec,
                                   std::size_t local_steps) {
  if (spec.kind == "default") return {};
  if (spec.kind == "constant") return optim::constant_lr(spec.base_lr);
  if (spec.kind == "step-decay") {
    if (spec.decay_every == 0) {
      throw std::invalid_argument("lr_schedule.decay_every must be positive");
    }
    return optim::step_decay_lr(spec.base_lr, spec.decay, spec.decay_every);
  }
  if (spec.kind == "theorem1") {
    return optim::theorem1_lr(spec.mu, spec.beta, local_steps);
  }
  if (spec.kind == "warmup") {
    return optim::warmup_lr(spec.base_lr, spec.warmup_steps);
  }
  throw std::invalid_argument("unknown lr schedule '" + spec.kind + "'");
}

std::unique_ptr<mobility::MobilityModel> make_mobility(
    const ScenarioSpec& spec, const std::vector<std::size_t>& homes,
    std::uint64_t extra_seed) {
  const std::uint64_t seed = spec.sim.seed + 101 + extra_seed;
  if (spec.mobility.model == "markov") {
    auto model = std::make_unique<mobility::MarkovMobility>(
        homes, spec.edges, spec.mobility.switch_prob, seed);
    model->set_topology(mobility::parse_topology(spec.mobility.topology),
                        spec.mobility.home_bias);
    return model;
  }
  if (spec.mobility.model == "random-waypoint") {
    mobility::WaypointConfig cfg;
    cfg.num_devices = homes.size();
    cfg.num_edges = spec.edges;
    cfg.width = spec.mobility.width;
    cfg.height = spec.mobility.height;
    cfg.speed_min = spec.mobility.speed_min;
    cfg.speed_max = spec.mobility.speed_max;
    cfg.pause_probability = spec.mobility.pause_probability;
    cfg.seed = seed;
    return std::make_unique<mobility::RandomWaypointMobility>(cfg);
  }
  if (spec.mobility.model == "trace") {
    if (spec.mobility.trace_file.empty()) {
      throw std::invalid_argument(
          "mobility.model 'trace' requires mobility.trace_file");
    }
    return std::make_unique<mobility::TraceMobility>(
        mobility::Trace::load_file(spec.mobility.trace_file));
  }
  throw std::invalid_argument("unknown mobility model '" +
                              spec.mobility.model + "'");
}

std::unique_ptr<core::Simulation> make_simulation(
    const BuiltScenario& built) {
  core::SimulationConfig cfg = built.spec.sim;
  cfg.lr_schedule =
      make_lr_schedule(built.spec.lr_schedule, cfg.local_steps);
  return std::make_unique<core::Simulation>(
      cfg, built.model, *built.optimizer, built.train, built.partition,
      built.test, make_mobility(built.spec, built.homes),
      core::make_algorithm(built.spec.algorithm));
}

}  // namespace middlefl::config
