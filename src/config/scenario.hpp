// ScenarioSpec: the complete declarative description of one simulator run.
//
// One JSON document covers every layer the flag-driven front ends wire by
// hand: the synthetic task and its Non-IID partition, the edge topology
// and mobility process, the model architecture, the optimizer prototype,
// the learning-rate schedule, the algorithm policy, and the full
// core::SimulationConfig (nested transport link policies, fleet/lazy
// device machinery, heterogeneity knobs). scenario_build.hpp turns a spec
// into live simulator objects via exactly the construction sequence
// tools/middlefl_run has always used, so a config-built run is bitwise
// identical to the equivalent flag-built run (pinned by ctest).
//
// Contract (see ARCHITECTURE.md "Declarative scenarios"):
//   - defaults live in the structs; absent JSON keys keep them;
//   - unknown keys are hard errors with file:line:column context;
//   - the writer emits every schema field in describe order, so
//     write -> read -> write is a byte-for-byte fixpoint;
//   - legacy aliases (upload_failure_prob, upload_compression) are
//     accepted on load, normalized into transport.wireless_up in exactly
//     one place (core::reconcile_uplink_aliases), never re-emitted, and
//     conflicting values across the two views are a hard error.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "config/reflect.hpp"
#include "core/simulation.hpp"
#include "data/synthetic.hpp"
#include "mobility/markov_mobility.hpp"
#include "nn/model_factory.hpp"
#include "transport/compression.hpp"

namespace middlefl::config {

/// Synthetic dataset + Non-IID partition + initial edge clustering.
struct DataSpec {
  std::string task = "mnist";  // mnist|emnist|cifar10|speech
  /// Spatial scale of the synthetic inputs, in (0, 1].
  double scale = 0.5;
  std::size_t train_per_class = 60;
  std::size_t test_per_class = 30;
  /// major-class|single-class|iid|dirichlet|fleet-window.
  std::string partition = "major-class";
  std::size_t devices = 50;
  /// Local dataset size d_m (major-class/single-class/fleet-window).
  std::size_t samples_per_device = 80;
  /// Major-class share for the major-class partition.
  double major_fraction = 0.9;
  /// Label-skew concentration for the dirichlet partition.
  double dirichlet_alpha = 0.5;
  /// by-major-class|uniform initial device->edge clustering.
  std::string edge_assignment = "by-major-class";
};

/// Mobility process. `model` selects which parameter block applies:
/// markov reads switch_prob/topology/home_bias, random-waypoint reads the
/// plane geometry and speeds, trace reads trace_file.
struct MobilitySpec {
  std::string model = "markov";  // markov|random-waypoint|trace
  /// Markov move probability P (the Fig. 7 sweep axis).
  double switch_prob = 0.5;
  std::string topology = "home-ring";  // uniform|ring|home-ring
  double home_bias = 0.5;
  double width = 1000.0;
  double height = 1000.0;
  double speed_min = 20.0;
  double speed_max = 60.0;
  double pause_probability = 0.1;
  std::string trace_file;
};

/// Optimizer prototype cloned into every device runtime.
struct OptimizerSpec {
  std::string kind = "sgd";  // sgd|adam
  double learning_rate = 0.005;
  double momentum = 0.9;        // sgd
  double weight_decay = 0.0;
  double beta1 = 0.9;           // adam
  double beta2 = 0.999;         // adam
  double epsilon = 1e-8;        // adam
};

/// Declarative form of optim::LrSchedule (a std::function, which cannot
/// itself round-trip). kind "default" leaves SimulationConfig::lr_schedule
/// empty, preserving the simulator's historical constant-0.01 fallback.
struct LrScheduleSpec {
  std::string kind = "default";  // default|constant|step-decay|theorem1|warmup
  double base_lr = 0.01;
  double decay = 0.5;            // step-decay factor
  std::size_t decay_every = 100; // step-decay interval
  std::size_t warmup_steps = 100;
  double mu = 0.1;               // theorem1
  double beta = 1.0;             // theorem1
};

/// The whole run description; see the header comment.
struct ScenarioSpec {
  std::string name = "unnamed";
  std::string description;
  std::size_t edges = 10;
  std::string algorithm = "middle";
  DataSpec data;
  MobilitySpec mobility;
  nn::ModelSpec model;
  OptimizerSpec optimizer;
  LrScheduleSpec lr_schedule;
  core::SimulationConfig sim;
};

// ---------------------------------------------------------------------------
// Leaf-count guards. config_test pins count_fields<T>() against these, so
// adding a struct member without a describe() entry fails the suite (and
// the sizeof static_assert in scenario.cpp catches SimulationConfig growth
// at compile time on the reference ABI).

/// SimulationConfig flattened: 5 loop + 3 aggregation + 5 eval + 24
/// transport (6 links x loss/kind/fraction/latency) + 3 regularizer + 2
/// heterogeneity + 4 fleet + 4 serving + 2 comm + seed + 2 execution.
/// Excluded
/// members: lr_schedule (std::function; declared via LrScheduleSpec), pool
/// (runtime pointer), upload_failure_prob/upload_compression (decode-only
/// aliases).
inline constexpr std::size_t kSimulationConfigLeaves = 55;
/// ScenarioSpec flattened: 4 top-level + 10 data + 10 mobility + 4 model
/// + 7 optimizer + 7 lr_schedule + kSimulationConfigLeaves.
inline constexpr std::size_t kScenarioSpecLeaves =
    42 + kSimulationConfigLeaves;

// ---------------------------------------------------------------------------
// Choice-string helpers shared by the schemas below.

inline std::string require_name(const std::string& value,
                                std::initializer_list<std::string_view> legal,
                                const char* what) {
  for (const std::string_view option : legal) {
    if (option == value) return value;
  }
  throw std::invalid_argument(std::string("unknown ") + what + " '" + value +
                              "'");
}

inline std::string compression_kind_name(transport::CompressionKind kind) {
  switch (kind) {
    case transport::CompressionKind::kNone: return "none";
    case transport::CompressionKind::kTopK: return "topk";
    case transport::CompressionKind::kQuant8: return "q8";
  }
  return "none";
}

inline transport::CompressionKind parse_compression_kind_name(
    const std::string& name) {
  if (name == "none") return transport::CompressionKind::kNone;
  if (name == "topk") return transport::CompressionKind::kTopK;
  if (name == "q8") return transport::CompressionKind::kQuant8;
  throw std::invalid_argument("unknown compression kind '" + name + "'");
}

// ---------------------------------------------------------------------------
// Schemas.

template <>
struct Schema<transport::CompressionConfig> {
  template <class V>
  static void describe(V& v, transport::CompressionConfig& c) {
    v.choice("kind", compression_kind_name(c.kind), {"none", "topk", "q8"},
             [&c](const std::string& s) {
               c.kind = parse_compression_kind_name(s);
             });
    v.field("top_k_fraction", c.top_k_fraction);
  }
};

template <>
struct Schema<transport::LinkPolicy> {
  template <class V>
  static void describe(V& v, transport::LinkPolicy& p) {
    v.field("loss_prob", p.loss_prob);
    v.field("compression", p.compression);
    v.field("latency_steps", p.latency_steps);
  }
};

template <>
struct Schema<transport::TransportConfig> {
  template <class V>
  static void describe(V& v, transport::TransportConfig& t) {
    v.field("wireless_down", t.wireless_down);
    v.field("wireless_up", t.wireless_up);
    v.field("wan_up", t.wan_up);
    v.field("wan_down", t.wan_down);
    v.field("broadcast", t.broadcast);
    v.field("carry", t.carry);
  }
};

template <>
struct Schema<core::FleetConfig> {
  template <class V>
  static void describe(V& v, core::FleetConfig& f) {
    v.field("lazy_devices", f.lazy_devices);
    v.field("at_rest", f.at_rest);
    v.field("shards", f.shards);
  }
};

template <>
struct Schema<core::ServingConfig> {
  template <class V>
  static void describe(V& v, core::ServingConfig& s) {
    v.field("enabled", s.enabled);
    v.field("max_batch", s.max_batch);
    v.field("max_queue", s.max_queue);
    v.field("runtimes", s.runtimes);
  }
};

template <>
struct Schema<comm::CommConfig> {
  template <class V>
  static void describe(V& v, comm::CommConfig& c) {
    v.field("async_cloud", c.async_cloud);
    v.field("max_staleness", c.max_staleness);
  }
};

template <>
struct Schema<core::SimulationConfig> {
  template <class V>
  static void describe(V& v, core::SimulationConfig& c) {
    v.field("select_per_edge", c.select_per_edge);
    v.field("local_steps", c.local_steps);
    v.field("cloud_interval", c.cloud_interval);
    v.field("batch_size", c.batch_size);
    v.field("total_steps", c.total_steps);
    v.field("reset_optimizer_each_round", c.reset_optimizer_each_round);
    v.field("broadcast_to_devices", c.broadcast_to_devices);
    v.field("weighted_cloud_aggregation", c.weighted_cloud_aggregation);
    v.field("eval_every", c.eval_every);
    v.field("eval_samples", c.eval_samples);
    v.field("track_per_class", c.track_per_class);
    v.field("track_edge_accuracy", c.track_edge_accuracy);
    v.field("eval_edges", c.eval_edges);
    v.field("transport", c.transport);
    v.field("prox_mu", c.prox_mu);
    v.field("clip_norm", c.clip_norm);
    v.field("server_momentum", c.server_momentum);
    v.field("device_speeds", c.device_speeds);
    v.field("round_deadline", c.round_deadline);
    v.field("fleet", c.fleet);
    v.field("serving", c.serving);
    v.field("comm", c.comm);
    v.field("seed", c.seed);
    v.field("parallel_devices", c.parallel_devices);
    v.field("use_similarity_cache", c.use_similarity_cache);
    // Legacy spellings: accepted on load, normalized into
    // transport.wireless_up by core::reconcile_uplink_aliases (the single
    // normalization point), never emitted.
    v.alias("upload_failure_prob", c.upload_failure_prob);
    v.alias("upload_compression", c.upload_compression);
  }
};

/// input_shape and num_classes are derived from the task preset at build
/// time, so only the free architecture knobs are part of the schema.
template <>
struct Schema<nn::ModelSpec> {
  template <class V>
  static void describe(V& v, nn::ModelSpec& m) {
    v.choice("arch", nn::to_string(m.arch),
             {"logistic", "mlp", "mlp2", "cnn2", "cnn3"},
             [&m](const std::string& s) { m.arch = nn::parse_model_arch(s); });
    v.field("hidden", m.hidden);
    v.field("base_channels", m.base_channels);
    v.field("dropout", m.dropout);
  }
};

template <>
struct Schema<DataSpec> {
  template <class V>
  static void describe(V& v, DataSpec& d) {
    v.choice("task", d.task, {"mnist", "emnist", "cifar10", "speech"},
             [&d](const std::string& s) {
               data::parse_task(s);
               d.task = s;
             });
    v.field("scale", d.scale);
    v.field("train_per_class", d.train_per_class);
    v.field("test_per_class", d.test_per_class);
    v.choice("partition", d.partition,
             {"major-class", "single-class", "iid", "dirichlet",
              "fleet-window"},
             [&d](const std::string& s) {
               d.partition = require_name(
                   s,
                   {"major-class", "single-class", "iid", "dirichlet",
                    "fleet-window"},
                   "partition scheme");
             });
    v.field("devices", d.devices);
    v.field("samples_per_device", d.samples_per_device);
    v.field("major_fraction", d.major_fraction);
    v.field("dirichlet_alpha", d.dirichlet_alpha);
    v.choice("edge_assignment", d.edge_assignment,
             {"by-major-class", "uniform"}, [&d](const std::string& s) {
               d.edge_assignment = require_name(
                   s, {"by-major-class", "uniform"}, "edge assignment");
             });
  }
};

template <>
struct Schema<MobilitySpec> {
  template <class V>
  static void describe(V& v, MobilitySpec& m) {
    v.choice("model", m.model, {"markov", "random-waypoint", "trace"},
             [&m](const std::string& s) {
               m.model = require_name(
                   s, {"markov", "random-waypoint", "trace"},
                   "mobility model");
             });
    v.field("switch_prob", m.switch_prob);
    v.choice("topology", m.topology, {"uniform", "ring", "home-ring"},
             [&m](const std::string& s) {
               mobility::parse_topology(s);
               m.topology = s;
             });
    v.field("home_bias", m.home_bias);
    v.field("width", m.width);
    v.field("height", m.height);
    v.field("speed_min", m.speed_min);
    v.field("speed_max", m.speed_max);
    v.field("pause_probability", m.pause_probability);
    v.field("trace_file", m.trace_file);
  }
};

template <>
struct Schema<OptimizerSpec> {
  template <class V>
  static void describe(V& v, OptimizerSpec& o) {
    v.choice("kind", o.kind, {"sgd", "adam"}, [&o](const std::string& s) {
      o.kind = require_name(s, {"sgd", "adam"}, "optimizer");
    });
    v.field("learning_rate", o.learning_rate);
    v.field("momentum", o.momentum);
    v.field("weight_decay", o.weight_decay);
    v.field("beta1", o.beta1);
    v.field("beta2", o.beta2);
    v.field("epsilon", o.epsilon);
  }
};

template <>
struct Schema<LrScheduleSpec> {
  template <class V>
  static void describe(V& v, LrScheduleSpec& l) {
    v.choice("kind", l.kind,
             {"default", "constant", "step-decay", "theorem1", "warmup"},
             [&l](const std::string& s) {
               l.kind = require_name(
                   s,
                   {"default", "constant", "step-decay", "theorem1",
                    "warmup"},
                   "lr schedule");
             });
    v.field("base_lr", l.base_lr);
    v.field("decay", l.decay);
    v.field("decay_every", l.decay_every);
    v.field("warmup_steps", l.warmup_steps);
    v.field("mu", l.mu);
    v.field("beta", l.beta);
  }
};

template <>
struct Schema<ScenarioSpec> {
  template <class V>
  static void describe(V& v, ScenarioSpec& s) {
    v.field("name", s.name);
    v.field("description", s.description);
    v.field("edges", s.edges);
    v.choice("algorithm", s.algorithm,
             {"middle", "oort", "fedmes", "greedy", "ensemble", "hierfavg"},
             [&s](const std::string& a) {
               core::parse_algorithm(a);
               s.algorithm = a;
             });
    v.field("data", s.data);
    v.field("mobility", s.mobility);
    v.field("model", s.model);
    v.field("optimizer", s.optimizer);
    v.field("lr_schedule", s.lr_schedule);
    v.field("sim", s.sim);
  }
};

// ---------------------------------------------------------------------------
// Load / save.

/// Decodes a parsed document into a spec (strict: unknown keys error) and
/// normalizes the legacy uplink aliases. `source_name` prefixes errors.
ScenarioSpec scenario_from_json(const Json& document,
                                const std::string& source_name);

/// Parses + decodes a JSON text.
ScenarioSpec parse_scenario(std::string_view text,
                            const std::string& source_name);

/// Reads, parses and decodes `path`.
ScenarioSpec load_scenario_file(const std::string& path);

/// Canonical JSON form: every schema field, describe order.
Json scenario_to_json(const ScenarioSpec& spec);

/// scenario_to_json rendered with 2-space indent and a trailing newline —
/// the byte-exact form shipped under examples/scenarios/.
std::string scenario_to_text(const ScenarioSpec& spec);

/// Writes scenario_to_text to `path`; throws std::runtime_error on I/O
/// failure.
void save_scenario_file(const ScenarioSpec& spec, const std::string& path);

}  // namespace middlefl::config
