#include "config/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"

namespace middlefl::config {

Json Json::make_bool(bool value) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = value;
  return j;
}

Json Json::make_number(double value) {
  Json j;
  j.type_ = Type::kNumber;
  j.number_ = value;
  return j;
}

Json Json::make_uint(std::uint64_t value) {
  Json j;
  j.type_ = Type::kNumber;
  j.number_ = static_cast<double>(value);
  j.uint_ = value;
  j.has_uint_ = true;
  return j;
}

Json Json::make_string(std::string value) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(value);
  return j;
}

Json Json::make_array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::make_object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

const Json* Json::find(std::string_view key) const {
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

Json* Json::find(std::string_view key) {
  for (auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

Json& Json::set(std::string key, Json value) {
  if (Json* existing = find(key)) {
    *existing = std::move(value);
    return *existing;
  }
  members_.emplace_back(std::move(key), std::move(value));
  return members_.back().second;
}

Json& Json::push_back(Json value) {
  items_.push_back(std::move(value));
  return items_.back();
}

std::string format_number(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) return buf;
  }
  return buf;
}

namespace {

void write_string(std::ostream& out, const std::string& text) {
  out << '"' << obs::json_escape(text) << '"';
}

void write_newline_indent(std::ostream& out, int indent, int depth) {
  out << '\n';
  for (int i = 0; i < indent * depth; ++i) out << ' ';
}

}  // namespace

void Json::write(std::ostream& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      out << "null";
      return;
    case Type::kBool:
      out << (bool_ ? "true" : "false");
      return;
    case Type::kNumber:
      if (has_uint_) {
        out << uint_;
      } else {
        out << format_number(number_);
      }
      return;
    case Type::kString:
      write_string(out, string_);
      return;
    case Type::kArray: {
      if (items_.empty()) {
        out << "[]";
        return;
      }
      out << '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out << ',';
        if (indent > 0) {
          write_newline_indent(out, indent, depth + 1);
        } else if (i > 0) {
          out << ' ';
        }
        items_[i].write(out, indent, depth + 1);
      }
      if (indent > 0) write_newline_indent(out, indent, depth);
      out << ']';
      return;
    }
    case Type::kObject: {
      if (members_.empty()) {
        out << "{}";
        return;
      }
      out << '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out << ',';
        if (indent > 0) {
          write_newline_indent(out, indent, depth + 1);
        } else if (i > 0) {
          out << ' ';
        }
        write_string(out, members_[i].first);
        out << ": ";
        members_[i].second.write(out, indent, depth + 1);
      }
      if (indent > 0) write_newline_indent(out, indent, depth);
      out << '}';
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::ostringstream out;
  write(out, indent, 0);
  return out.str();
}

namespace {

/// Recursive-descent parser mirroring tools/json_check's strictness, with
/// line/column tracking instead of byte offsets.
class Parser {
 public:
  Parser(std::string_view text, std::string source)
      : text_(text), source_(std::move(source)) {}

  Json parse_document() {
    skip_whitespace();
    Json value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) {
      fail("trailing content after JSON document");
    }
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw std::runtime_error(source_ + ":" + std::to_string(line_) + ":" +
                             std::to_string(column_) + ": " + message);
  }

  [[noreturn]] void fail_at(int line, int column,
                            const std::string& message) const {
    throw std::runtime_error(source_ + ":" + std::to_string(line) + ":" +
                             std::to_string(column) + ": " + message);
  }

  bool eof() const { return pos_ >= text_.size(); }

  char peek() const {
    if (eof()) fail("unexpected end of input");
    return text_[pos_];
  }

  char advance() {
    const char c = peek();
    ++pos_;
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void expect(char c) {
    if (eof() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    advance();
  }

  void skip_whitespace() {
    while (!eof()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        advance();
      } else {
        return;
      }
    }
  }

  void expect_literal(std::string_view literal) {
    for (const char expected : literal) {
      if (eof() || text_[pos_] != expected) {
        fail("invalid literal (expected '" + std::string(literal) + "')");
      }
      advance();
    }
  }

  Json parse_value() {
    if (eof()) fail("unexpected end of input");
    const int line = line_;
    const int column = column_;
    Json value;
    switch (text_[pos_]) {
      case '{':
        value = parse_object();
        break;
      case '[':
        value = parse_array();
        break;
      case '"':
        value = Json::make_string(parse_string());
        break;
      case 't':
        expect_literal("true");
        value = Json::make_bool(true);
        break;
      case 'f':
        expect_literal("false");
        value = Json::make_bool(false);
        break;
      case 'n':
        expect_literal("null");
        value = Json::make_null();
        break;
      default:
        value = parse_number();
        break;
    }
    value.set_position(line, column);
    return value;
  }

  Json parse_object() {
    Json object = Json::make_object();
    expect('{');
    skip_whitespace();
    if (!eof() && text_[pos_] == '}') {
      advance();
      return object;
    }
    while (true) {
      skip_whitespace();
      const int key_line = line_;
      const int key_column = column_;
      if (eof() || text_[pos_] != '"') fail("expected object key string");
      std::string key = parse_string();
      if (object.find(key) != nullptr) {
        fail_at(key_line, key_column, "duplicate key '" + key + "'");
      }
      skip_whitespace();
      expect(':');
      skip_whitespace();
      object.members().emplace_back(std::move(key), parse_value());
      skip_whitespace();
      if (eof()) fail("unterminated object");
      if (text_[pos_] == ',') {
        advance();
        continue;
      }
      expect('}');
      return object;
    }
  }

  Json parse_array() {
    Json array = Json::make_array();
    expect('[');
    skip_whitespace();
    if (!eof() && text_[pos_] == ']') {
      advance();
      return array;
    }
    while (true) {
      skip_whitespace();
      array.items().push_back(parse_value());
      skip_whitespace();
      if (eof()) fail("unterminated array");
      if (text_[pos_] == ',') {
        advance();
        continue;
      }
      expect(']');
      return array;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (eof()) fail("unterminated string");
      const char c = advance();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (eof()) fail("unterminated escape sequence");
      const char escape = advance();
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (eof()) fail("unterminated \\u escape");
            const char h = advance();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // needed by any config surface; reject them loudly).
          if (code >= 0xD800 && code <= 0xDFFF) {
            fail("surrogate \\u escapes are not supported");
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("invalid escape sequence");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    bool negative = false;
    bool integral = true;
    if (!eof() && text_[pos_] == '-') {
      negative = true;
      advance();
    }
    if (eof() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      fail("invalid number");
    }
    if (text_[pos_] == '0') {
      advance();
      if (!eof() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("leading zeros are not allowed");
      }
    } else {
      while (!eof() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        advance();
      }
    }
    if (!eof() && text_[pos_] == '.') {
      integral = false;
      advance();
      if (eof() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("digit expected after decimal point");
      }
      while (!eof() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        advance();
      }
    }
    if (!eof() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      advance();
      if (!eof() && (text_[pos_] == '+' || text_[pos_] == '-')) advance();
      if (eof() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("digit expected in exponent");
      }
      while (!eof() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        advance();
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (integral && !negative) {
      std::uint64_t uint_value = 0;
      const auto [ptr, ec] = std::from_chars(
          token.data(), token.data() + token.size(), uint_value);
      if (ec == std::errc{} && ptr == token.data() + token.size()) {
        return Json::make_uint(uint_value);
      }
    }
    const double value = std::strtod(std::string(token).c_str(), nullptr);
    return Json::make_number(value);
  }

  std::string_view text_;
  std::string source_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

Json parse_json(std::string_view text, const std::string& source_name) {
  return Parser(text, source_name).parse_document();
}

Json parse_json_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    throw std::runtime_error("cannot read '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse_json(buffer.str(), path);
}

void set_by_path(Json& root, std::string_view dotted_path, Json value) {
  Json* node = &root;
  std::string_view remaining = dotted_path;
  while (true) {
    const std::size_t dot = remaining.find('.');
    const std::string_view segment = remaining.substr(0, dot);
    if (segment.empty()) {
      throw std::runtime_error("empty segment in path '" +
                               std::string(dotted_path) + "'");
    }
    if (!node->is_object()) {
      throw std::runtime_error("path '" + std::string(dotted_path) +
                               "' descends into a non-object");
    }
    if (dot == std::string_view::npos) {
      node->set(std::string(segment), std::move(value));
      return;
    }
    Json* next = node->find(segment);
    if (next == nullptr) {
      next = &node->set(std::string(segment), Json::make_object());
    }
    node = next;
    remaining = remaining.substr(dot + 1);
  }
}

}  // namespace middlefl::config
