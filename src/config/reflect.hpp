// Field reflection for config structs: one describe() per struct drives
// serialization, deserialization, counting and perturbation.
//
// A struct opts into the scenario layer by specializing Schema<T>:
//
//   template <> struct Schema<FleetConfig> {
//     template <class V> static void describe(V& v, FleetConfig& c) {
//       v.field("lazy_devices", c.lazy_devices);
//       v.field("at_rest", c.at_rest);        // nested: Schema<Compression…>
//       v.field("shards", c.shards);
//     }
//   };
//
// The same describe() body is then walked by four visitors:
//
//   JsonEncoder    struct -> config::Json (canonical member order = the
//                  describe order, so serialization is deterministic)
//   JsonDecoder    config::Json -> struct, strict: type mismatches and
//                  unknown keys are errors with file:line:column context;
//                  absent keys keep the member's default
//   FieldCounter   counts leaf fields — the schema-registration guard
//                  (config_test pins the count per struct, so adding a
//                  member without a describe() entry fails the suite)
//   FieldPerturber deterministically mutates the i-th leaf — drives the
//                  round-trip property test over every field
//
// Leaf vocabulary: bool, double, float, unsigned integers (size_t /
// uint64), std::string, std::vector<double>, plus two special forms:
//
//   choice(name, current, options, apply)  enum-as-string fields; the
//       apply callback parses+validates, and the options list both
//       documents the legal values and lets the perturber cycle them.
//   alias(name, member)  decode-only legacy spellings (e.g. the
//       upload_failure_prob alias of transport.wireless_up.loss_prob):
//       accepted on read, never emitted, invisible to count/perturb.
#pragma once

#include <concepts>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "config/json.hpp"

namespace middlefl::config {

/// Specialize per reflected struct; see the header comment.
template <class T>
struct Schema;

using ChoiceApply = std::function<void(const std::string&)>;
using ChoiceOptions = std::initializer_list<std::string_view>;

namespace detail {

template <class T>
concept UnsignedField =
    std::unsigned_integral<T> && !std::same_as<T, bool>;

/// A nested reflected struct: anything without a dedicated leaf overload.
template <class T>
concept StructField = !std::is_arithmetic_v<T> &&
                      !std::same_as<T, std::string> &&
                      !std::same_as<T, std::vector<double>>;

}  // namespace detail

// ---------------------------------------------------------------------------
// JsonEncoder

class JsonEncoder {
 public:
  JsonEncoder() : out_(Json::make_object()) {}

  void field(const char* name, bool& v) { out_.set(name, Json::make_bool(v)); }
  void field(const char* name, double& v) {
    out_.set(name, Json::make_number(v));
  }
  void field(const char* name, float& v) {
    out_.set(name, Json::make_number(static_cast<double>(v)));
  }
  void field(const char* name, std::string& v) {
    out_.set(name, Json::make_string(v));
  }
  void field(const char* name, std::vector<double>& v) {
    Json array = Json::make_array();
    for (const double value : v) array.push_back(Json::make_number(value));
    out_.set(name, std::move(array));
  }
  template <detail::UnsignedField T>
  void field(const char* name, T& v) {
    out_.set(name, Json::make_uint(static_cast<std::uint64_t>(v)));
  }
  template <detail::StructField T>
  void field(const char* name, T& v) {
    JsonEncoder sub;
    Schema<T>::describe(sub, v);
    out_.set(name, std::move(sub).take());
  }

  void choice(const char* name, const std::string& current, ChoiceOptions,
              const ChoiceApply&) {
    out_.set(name, Json::make_string(current));
  }

  template <class T>
  void alias(const char*, T&) {}  // aliases are never emitted

  Json take() && { return std::move(out_); }

 private:
  Json out_;
};

/// Serializes a reflected struct to its canonical Json form. describe()
/// takes a mutable reference (the decoder writes through it); encoding
/// never actually mutates, hence the const_cast.
template <class T>
Json to_json(const T& value) {
  JsonEncoder encoder;
  Schema<T>::describe(encoder, const_cast<T&>(value));
  return std::move(encoder).take();
}

// ---------------------------------------------------------------------------
// JsonDecoder

class JsonDecoder {
 public:
  /// `node` must outlive the decoder. `source` names the file (or buffer)
  /// in error messages.
  JsonDecoder(const Json& node, std::string source)
      : node_(node),
        source_(std::move(source)),
        used_(node.is_object() ? node.members().size() : 0, false) {
    if (!node_.is_object()) {
      fail(node_, "expected an object");
    }
  }

  void field(const char* name, bool& v) {
    if (const Json* m = take(name)) {
      if (!m->is_bool()) fail(*m, expected(name, "true or false"));
      v = m->as_bool();
    }
  }
  void field(const char* name, double& v) {
    if (const Json* m = take(name)) {
      if (!m->is_number()) fail(*m, expected(name, "a number"));
      v = m->as_number();
    }
  }
  void field(const char* name, float& v) {
    if (const Json* m = take(name)) {
      if (!m->is_number()) fail(*m, expected(name, "a number"));
      v = static_cast<float>(m->as_number());
    }
  }
  void field(const char* name, std::string& v) {
    if (const Json* m = take(name)) {
      if (!m->is_string()) fail(*m, expected(name, "a string"));
      v = m->as_string();
    }
  }
  void field(const char* name, std::vector<double>& v) {
    if (const Json* m = take(name)) {
      if (!m->is_array()) fail(*m, expected(name, "an array of numbers"));
      v.clear();
      for (const Json& item : m->items()) {
        if (!item.is_number()) {
          fail(item, expected(name, "an array of numbers"));
        }
        v.push_back(item.as_number());
      }
    }
  }
  template <detail::UnsignedField T>
  void field(const char* name, T& v) {
    if (const Json* m = take(name)) {
      if (!m->is_unsigned()) {
        fail(*m, expected(name, "a non-negative integer"));
      }
      v = static_cast<T>(m->as_uint());
    }
  }
  template <detail::StructField T>
  void field(const char* name, T& v) {
    if (const Json* m = take(name)) {
      if (!m->is_object()) fail(*m, expected(name, "an object"));
      JsonDecoder sub(*m, source_);
      Schema<T>::describe(sub, v);
      sub.finish();
    }
  }

  void choice(const char* name, const std::string&, ChoiceOptions options,
              const ChoiceApply& apply) {
    if (const Json* m = take(name)) {
      if (!m->is_string()) fail(*m, expected(name, "a string"));
      try {
        apply(m->as_string());
      } catch (const std::invalid_argument& e) {
        std::string legal;
        for (const std::string_view option : options) {
          legal += legal.empty() ? "" : "|";
          legal += option;
        }
        fail(*m, std::string("key '") + name + "': " + e.what() + " (" +
                     legal + ")");
      }
    }
  }

  void alias(const char* name, double& v) { field(name, v); }
  template <detail::StructField T>
  void alias(const char* name, T& v) {
    field(name, v);
  }

  /// Rejects keys the describe() walk never consumed — the unknown-key
  /// error with file/line context the scenario contract requires.
  void finish() const {
    for (std::size_t i = 0; i < used_.size(); ++i) {
      if (!used_[i]) {
        const auto& [key, value] = node_.members()[i];
        fail(value, "unknown key '" + key + "'");
      }
    }
  }

 private:
  static std::string expected(const char* name, const char* what) {
    return std::string("key '") + name + "' expects " + what;
  }

  [[noreturn]] void fail(const Json& at, const std::string& message) const {
    throw std::runtime_error(source_ + ":" + std::to_string(at.line()) + ":" +
                             std::to_string(at.column()) + ": " + message);
  }

  const Json* take(const char* name) {
    const auto& members = node_.members();
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (members[i].first == name) {
        used_[i] = true;
        return &members[i].second;
      }
    }
    return nullptr;
  }

  const Json& node_;
  std::string source_;
  std::vector<bool> used_;
};

/// Decodes `node` into `out` strictly (unknown keys rejected). Absent keys
/// keep whatever `out` already holds, so defaults come from the struct.
template <class T>
void from_json(const Json& node, const std::string& source, T& out) {
  JsonDecoder decoder(node, source);
  Schema<T>::describe(decoder, out);
  decoder.finish();
}

// ---------------------------------------------------------------------------
// FieldCounter

class FieldCounter {
 public:
  void field(const char*, bool&) { ++count_; }
  void field(const char*, double&) { ++count_; }
  void field(const char*, float&) { ++count_; }
  void field(const char*, std::string&) { ++count_; }
  void field(const char*, std::vector<double>&) { ++count_; }
  template <detail::UnsignedField T>
  void field(const char*, T&) {
    ++count_;
  }
  template <detail::StructField T>
  void field(const char*, T& v) {
    Schema<T>::describe(*this, v);
  }
  void choice(const char*, const std::string&, ChoiceOptions,
              const ChoiceApply&) {
    ++count_;
  }
  template <class T>
  void alias(const char*, T&) {}

  std::size_t count() const noexcept { return count_; }

 private:
  std::size_t count_ = 0;
};

/// Number of leaf fields in T's schema (nested structs flattened).
template <class T>
std::size_t count_fields() {
  T value{};
  FieldCounter counter;
  Schema<T>::describe(counter, value);
  return counter.count();
}

// ---------------------------------------------------------------------------
// FieldPerturber

/// Deterministically mutates the `target`-th leaf (in describe order) to a
/// value different from — but still schema-legal relative to — what it
/// held. Drives the per-field round-trip property test.
class FieldPerturber {
 public:
  explicit FieldPerturber(std::size_t target) : target_(target) {}

  void field(const char* name, bool& v) {
    if (claim(name)) v = !v;
  }
  void field(const char* name, double& v) {
    if (claim(name)) v = v * 0.5 + 0.3125;
  }
  void field(const char* name, float& v) {
    if (claim(name)) v = v * 0.5f + 0.3125f;
  }
  void field(const char* name, std::string& v) {
    if (claim(name)) v += "-x";
  }
  void field(const char* name, std::vector<double>& v) {
    if (claim(name)) v.push_back(1.5);
  }
  template <detail::UnsignedField T>
  void field(const char* name, T& v) {
    if (claim(name)) v = v * 2 + 3;
  }
  template <detail::StructField T>
  void field(const char*, T& v) {
    Schema<T>::describe(*this, v);
  }
  void choice(const char* name, const std::string& current,
              ChoiceOptions options, const ChoiceApply& apply) {
    if (!claim(name)) return;
    // Cycle to the next legal option after the current one.
    std::size_t current_index = 0;
    std::size_t i = 0;
    for (const std::string_view option : options) {
      if (option == current) current_index = i;
      ++i;
    }
    i = 0;
    const std::size_t pick = (current_index + 1) % options.size();
    for (const std::string_view option : options) {
      if (i++ == pick) {
        apply(std::string(option));
        return;
      }
    }
  }
  template <class T>
  void alias(const char*, T&) {}

  bool done() const noexcept { return done_; }
  /// Name of the mutated leaf (for test diagnostics).
  const std::string& mutated() const noexcept { return mutated_; }

 private:
  bool claim(const char* name) {
    if (index_++ != target_) return false;
    done_ = true;
    mutated_ = name;
    return true;
  }

  std::size_t target_ = 0;
  std::size_t index_ = 0;
  bool done_ = false;
  std::string mutated_;
};

/// Mutates leaf `index` of `value`; returns the leaf's field name (empty
/// when `index` is out of range).
template <class T>
std::string perturb_field(T& value, std::size_t index) {
  FieldPerturber perturber(index);
  Schema<T>::describe(perturber, value);
  return perturber.done() ? perturber.mutated() : std::string();
}

}  // namespace middlefl::config
