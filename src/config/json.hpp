// Owned JSON value type with a strict parser and a canonical writer — the
// substrate of the declarative scenario layer.
//
// The repo's observability exporters hand-roll their JSON through the
// escape/number helpers in obs/json.hpp; that is the right shape for
// write-only streams but the scenario layer needs the full round trip:
// parse a spec file with precise error locations, apply dotted-path
// overrides (sweep axes, --set flags), re-serialize canonically. So this
// header adds the missing half while reusing the same conventions:
//
//   - strict RFC-8259 subset, same rules tools/json_check enforces: no
//     comments, no trailing commas, exact true/false/null literals,
//     duplicate object keys rejected;
//   - every node remembers the line/column it was parsed from, so schema
//     errors ("unknown key", "expected number") point at the offending
//     spot in the file, not at a byte offset;
//   - objects preserve insertion order, and the writer emits members in
//     that order with shortest-round-trip number formatting — so
//     write(read(write(x))) == write(x) byte for byte (the fixpoint the
//     scenario tests pin);
//   - integers parsed without sign/fraction/exponent are kept as uint64
//     and re-emitted verbatim, so 64-bit seeds survive the round trip
//     beyond double's 2^53 integer range.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace middlefl::config {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  using Member = std::pair<std::string, Json>;

  Json() = default;

  static Json make_null() { return Json(); }
  static Json make_bool(bool value);
  static Json make_number(double value);
  /// Non-negative integer, emitted without decimal point or exponent.
  static Json make_uint(std::uint64_t value);
  static Json make_string(std::string value);
  static Json make_array();
  static Json make_object();

  Type type() const noexcept { return type_; }
  bool is_object() const noexcept { return type_ == Type::kObject; }
  bool is_array() const noexcept { return type_ == Type::kArray; }
  bool is_number() const noexcept { return type_ == Type::kNumber; }
  bool is_string() const noexcept { return type_ == Type::kString; }
  bool is_bool() const noexcept { return type_ == Type::kBool; }
  bool is_null() const noexcept { return type_ == Type::kNull; }
  /// True for numbers carrying an exact unsigned-integer representation.
  bool is_unsigned() const noexcept {
    return type_ == Type::kNumber && has_uint_;
  }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  std::uint64_t as_uint() const { return uint_; }
  const std::string& as_string() const { return string_; }

  std::vector<Json>& items() { return items_; }
  const std::vector<Json>& items() const { return items_; }
  std::vector<Member>& members() { return members_; }
  const std::vector<Member>& members() const { return members_; }

  /// Object member lookup; nullptr when absent (or not an object).
  const Json* find(std::string_view key) const;
  Json* find(std::string_view key);

  /// Sets (replacing) or appends an object member, preserving order.
  Json& set(std::string key, Json value);
  /// Appends to an array.
  Json& push_back(Json value);

  /// 1-based source position of the token this node was parsed from
  /// (0 when the node was built programmatically).
  int line() const noexcept { return line_; }
  int column() const noexcept { return column_; }
  void set_position(int line, int column) noexcept {
    line_ = line;
    column_ = column;
  }

  /// Canonical serialization: 2-space indent per depth level when
  /// `indent` > 0, single-line compact form when `indent` == 0. Object
  /// members keep insertion order; numbers use the shortest decimal
  /// representation that round-trips.
  void write(std::ostream& out, int indent = 2, int depth = 0) const;
  std::string dump(int indent = 2) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::uint64_t uint_ = 0;
  bool has_uint_ = false;
  std::string string_;
  std::vector<Json> items_;
  std::vector<Member> members_;
  int line_ = 0;
  int column_ = 0;
};

/// Shortest decimal form of `value` that parses back to the same double
/// (tries 15/16/17 significant digits). Non-finite values map to 0, as in
/// obs::json_number — a config file must never become unparseable.
std::string format_number(double value);

/// Parses one complete JSON document (trailing whitespace allowed, any
/// other trailing content rejected). Errors throw std::runtime_error with
/// a "<source>:<line>:<col>: message" prefix.
Json parse_json(std::string_view text, const std::string& source_name);

/// Reads and parses `path`; parse errors carry the path as the source
/// name. Throws std::runtime_error when the file cannot be read.
Json parse_json_file(const std::string& path);

/// Replaces the node at a dotted path ("sim.transport.wireless_up
/// .loss_prob") inside an object tree, creating intermediate objects and
/// missing leaves as needed — schema validation happens later at decode
/// time, where an invented key is rejected with its location. Throws
/// std::runtime_error when a path segment lands on a non-object.
void set_by_path(Json& root, std::string_view dotted_path, Json value);

}  // namespace middlefl::config
