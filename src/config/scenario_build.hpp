// ScenarioSpec -> live simulator objects.
//
// build_scenario replicates, step for step, the construction sequence the
// flag-driven front ends have always used — the same derived seeds
// (hash_combine for the generator, +11 for the partition, +101 for
// mobility), the same generate() salt values, the same optimizer
// construction — so a config-built run is bitwise identical to the
// flag-built equivalent (pinned by the scenario_equivalence ctest).
//
// The data half (datasets, partition, homes, model spec, optimizer
// prototype) is built once and shared; make_simulation constructs a fresh
// mobility model and Simulation from it each call, so sweep cells and
// repeats can reuse one BuiltScenario.
#pragma once

#include <memory>

#include "config/scenario.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "mobility/mobility_model.hpp"
#include "optim/optimizer.hpp"

namespace middlefl::config {

struct BuiltScenario {
  ScenarioSpec spec;
  data::SyntheticConfig data_config;
  // Placeholder 2-class datasets (the Dataset invariant's minimum) until
  // build_scenario fills in the generated ones.
  data::Dataset train{data::Shape{}, 2};
  data::Dataset test{data::Shape{}, 2};
  data::Partition partition;
  /// Initial device->edge assignment (the Markov home edges).
  std::vector<std::size_t> homes;
  /// spec.model with input_shape/num_classes filled from the task preset.
  nn::ModelSpec model;
  std::unique_ptr<optim::Optimizer> optimizer;
};

/// Materializes the data-side of a spec (generator, partition, edge
/// clustering, model, optimizer prototype). Throws std::invalid_argument
/// on semantically bad specs (e.g. a trace mobility without a trace_file).
BuiltScenario build_scenario(const ScenarioSpec& spec);

/// Declarative schedule -> optim::LrSchedule. kind "default" returns an
/// empty function: the Simulation then installs its historical
/// constant-0.01 fallback, exactly as flag-built runs behave.
optim::LrSchedule make_lr_schedule(const LrScheduleSpec& spec,
                                   std::size_t local_steps);

/// Fresh mobility model per simulation, seeded from spec.sim.seed + 101
/// (the front ends' historical offset). `extra_seed` lets bench repeats
/// decorrelate (bench_common adds 7919 * repeat).
std::unique_ptr<mobility::MobilityModel> make_mobility(
    const ScenarioSpec& spec, const std::vector<std::size_t>& homes,
    std::uint64_t extra_seed = 0);

/// One runnable Simulation from a built scenario: fresh mobility, fresh
/// algorithm policy, lr_schedule installed into the config copy.
std::unique_ptr<core::Simulation> make_simulation(const BuiltScenario& built);

}  // namespace middlefl::config
