#include "config/scenario.hpp"

#include <fstream>

namespace middlefl::config {

// Compile-time half of the schema-registration guard: on the reference ABI
// a new SimulationConfig member changes the struct size before anyone
// remembers the describe() entry, so the build fails here with a pointer
// to the schema instead of silently dropping the field from specs.
// (config_test pins the flattened leaf counts for every platform.)
#if defined(__x86_64__) && defined(__GLIBCXX__) && defined(_GLIBCXX_RELEASE)
#define MIDDLEFL_SIMCONFIG_SIZE 488
static_assert(sizeof(core::SimulationConfig) == MIDDLEFL_SIMCONFIG_SIZE,
              "SimulationConfig changed size: register the new member in "
              "Schema<SimulationConfig> (src/config/scenario.hpp) and "
              "update MIDDLEFL_SIMCONFIG_SIZE");
#endif

ScenarioSpec scenario_from_json(const Json& document,
                                const std::string& source_name) {
  ScenarioSpec spec;
  from_json(document, source_name, spec);
  try {
    core::reconcile_uplink_aliases(spec.sim);
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error(source_name + ": " + e.what());
  }
  return spec;
}

ScenarioSpec parse_scenario(std::string_view text,
                            const std::string& source_name) {
  return scenario_from_json(parse_json(text, source_name), source_name);
}

ScenarioSpec load_scenario_file(const std::string& path) {
  return scenario_from_json(parse_json_file(path), path);
}

Json scenario_to_json(const ScenarioSpec& spec) { return to_json(spec); }

std::string scenario_to_text(const ScenarioSpec& spec) {
  return scenario_to_json(spec).dump() + "\n";
}

void save_scenario_file(const ScenarioSpec& spec, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open '" + path + "' for writing");
  }
  out << scenario_to_text(spec);
  if (!out) {
    throw std::runtime_error("failed writing scenario to '" + path + "'");
  }
}

}  // namespace middlefl::config
