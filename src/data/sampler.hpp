// Minibatch sampling from a DataView.
#pragma once

#include <algorithm>
#include <vector>

#include "data/dataset.hpp"
#include "parallel/rng.hpp"
#include "tensor/workspace.hpp"

namespace middlefl::data {

struct Minibatch {
  Tensor features;
  std::vector<std::int32_t> labels;
};

/// Draws `batch_size` positions uniformly with replacement — the "randomly
/// selected data samples xi_t_m" of Eq. (1) — into `out`, reusing its
/// feature/label buffers and the calling thread's Workspace position slot
/// (steady-state local SGD steps perform no heap allocation here).
/// With-replacement keeps every device's draw identically distributed
/// regardless of how few samples it holds. The RNG stream is one
/// rng.bounded(view.size()) call per slot, in slot order — identical to
/// the allocating overload, so sampled indices are unchanged.
inline void sample_minibatch_into(const DataView& view, std::size_t batch_size,
                                  parallel::Xoshiro256& rng, Minibatch& out) {
  if (view.empty()) {
    throw std::invalid_argument("sample_minibatch: empty view");
  }
  auto positions = tensor::Workspace::tls().indices(
      tensor::WsIndexSlot::kMinibatchPositions, batch_size);
  for (auto& p : positions) p = rng.bounded(view.size());
  view.gather_into(positions, out.features);
  view.gather_labels_into(positions, out.labels);
}

/// Allocating convenience wrapper around sample_minibatch_into (same RNG
/// stream, same values).
inline Minibatch sample_minibatch(const DataView& view, std::size_t batch_size,
                                  parallel::Xoshiro256& rng) {
  Minibatch batch;
  sample_minibatch_into(view, batch_size, rng, batch);
  return batch;
}

/// Deterministic sequential batches covering the view once (for evaluation).
inline std::vector<std::vector<std::size_t>> sequential_batches(
    std::size_t total, std::size_t batch_size) {
  std::vector<std::vector<std::size_t>> out;
  for (std::size_t start = 0; start < total; start += batch_size) {
    const std::size_t end = std::min(total, start + batch_size);
    std::vector<std::size_t> batch(end - start);
    for (std::size_t i = start; i < end; ++i) batch[i - start] = i;
    out.push_back(std::move(batch));
  }
  return out;
}

}  // namespace middlefl::data
