// Minibatch sampling from a DataView.
#pragma once

#include <algorithm>
#include <vector>

#include "data/dataset.hpp"
#include "parallel/rng.hpp"

namespace middlefl::data {

struct Minibatch {
  Tensor features;
  std::vector<std::int32_t> labels;
};

/// Draws `batch_size` positions uniformly with replacement — the "randomly
/// selected data samples xi_t_m" of Eq. (1). With-replacement keeps every
/// device's draw identically distributed regardless of how few samples it
/// holds.
inline Minibatch sample_minibatch(const DataView& view, std::size_t batch_size,
                                  parallel::Xoshiro256& rng) {
  if (view.empty()) {
    throw std::invalid_argument("sample_minibatch: empty view");
  }
  std::vector<std::size_t> positions(batch_size);
  for (auto& p : positions) p = rng.bounded(view.size());
  return Minibatch{view.gather(positions), view.gather_labels(positions)};
}

/// Deterministic sequential batches covering the view once (for evaluation).
inline std::vector<std::vector<std::size_t>> sequential_batches(
    std::size_t total, std::size_t batch_size) {
  std::vector<std::vector<std::size_t>> out;
  for (std::size_t start = 0; start < total; start += batch_size) {
    const std::size_t end = std::min(total, start + batch_size);
    std::vector<std::size_t> batch(end - start);
    for (std::size_t i = start; i < end; ++i) batch[i - start] = i;
    out.push_back(std::move(batch));
  }
  return out;
}

}  // namespace middlefl::data
