#include "data/dataset.hpp"

#include <algorithm>
#include <stdexcept>

namespace middlefl::data {

Dataset::Dataset(Shape sample_shape, std::size_t num_classes)
    : sample_shape_(std::move(sample_shape)),
      sample_numel_(sample_shape_.numel()),
      num_classes_(num_classes) {
  if (num_classes_ < 2) {
    throw std::invalid_argument("Dataset: need at least 2 classes");
  }
}

void Dataset::add(std::span<const float> features, std::int32_t label) {
  if (features.size() != sample_numel_) {
    throw std::invalid_argument("Dataset::add: feature size " +
                                std::to_string(features.size()) +
                                " != sample numel " +
                                std::to_string(sample_numel_));
  }
  if (label < 0 || static_cast<std::size_t>(label) >= num_classes_) {
    throw std::out_of_range("Dataset::add: label " + std::to_string(label) +
                            " out of range");
  }
  features_.insert(features_.end(), features.begin(), features.end());
  labels_.push_back(label);
}

void Dataset::reserve(std::size_t n) {
  features_.reserve(features_.size() + n * sample_numel_);
  labels_.reserve(labels_.size() + n);
}

std::span<const float> Dataset::features(std::size_t i) const {
  if (i >= size()) throw std::out_of_range("Dataset::features: bad index");
  return std::span<const float>(features_).subspan(i * sample_numel_,
                                                   sample_numel_);
}

Tensor Dataset::gather(std::span<const std::size_t> indices) const {
  if (indices.empty()) {
    throw std::invalid_argument("Dataset::gather: empty index list");
  }
  std::vector<std::size_t> dims{indices.size()};
  for (std::size_t d : sample_shape_.dims()) dims.push_back(d);
  Tensor batch(Shape(std::move(dims)));
  float* out = batch.data().data();
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const auto sample = features(indices[i]);
    std::copy(sample.begin(), sample.end(), out + i * sample_numel_);
  }
  return batch;
}

std::vector<std::int32_t> Dataset::gather_labels(
    std::span<const std::size_t> indices) const {
  std::vector<std::int32_t> out;
  out.reserve(indices.size());
  for (std::size_t i : indices) out.push_back(label(i));
  return out;
}

namespace {

/// Reshapes `out` to [batch, sample_shape...] reusing its buffer; the
/// Shape temporary is only constructed when the extents actually changed,
/// so the steady-state path (same batch size every local step) does not
/// allocate.
void reset_batch_shape(Tensor& out, std::size_t batch,
                       const Shape& sample_shape) {
  const auto& sdims = sample_shape.dims();
  const auto& odims = out.shape().dims();
  const bool same = odims.size() == sdims.size() + 1 && odims[0] == batch &&
                    std::equal(sdims.begin(), sdims.end(), odims.begin() + 1);
  if (!same) {
    std::vector<std::size_t> dims{batch};
    for (std::size_t d : sdims) dims.push_back(d);
    out.reset_for_overwrite(Shape(std::move(dims)));
  }
}

}  // namespace

void Dataset::gather_into(std::span<const std::size_t> indices,
                          Tensor& out) const {
  if (indices.empty()) {
    throw std::invalid_argument("Dataset::gather_into: empty index list");
  }
  reset_batch_shape(out, indices.size(), sample_shape_);
  float* dst = out.data().data();
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const auto sample = features(indices[i]);
    std::copy(sample.begin(), sample.end(), dst + i * sample_numel_);
  }
}

void Dataset::gather_labels_into(std::span<const std::size_t> indices,
                                 std::vector<std::int32_t>& out) const {
  out.resize(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) out[i] = label(indices[i]);
}

std::vector<std::size_t> Dataset::class_histogram() const {
  std::vector<std::size_t> hist(num_classes_, 0);
  for (std::int32_t l : labels_) ++hist[static_cast<std::size_t>(l)];
  return hist;
}

std::vector<std::size_t> Dataset::indices_of_class(std::int32_t label) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (labels_[i] == label) out.push_back(i);
  }
  return out;
}

DataView::DataView(const Dataset* base, std::vector<std::size_t> indices)
    : base_(base), indices_(std::move(indices)) {
  if (base_ == nullptr) {
    throw std::invalid_argument("DataView: null base dataset");
  }
  for (std::size_t i : indices_) {
    if (i >= base_->size()) {
      throw std::out_of_range("DataView: index " + std::to_string(i) +
                              " exceeds dataset size " +
                              std::to_string(base_->size()));
    }
  }
}

DataView DataView::all(const Dataset& base) {
  std::vector<std::size_t> indices(base.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  return DataView(&base, std::move(indices));
}

DataView DataView::window(const Dataset& base, std::size_t first,
                          std::size_t count) {
  if (base.size() == 0) {
    throw std::invalid_argument("DataView::window: empty base dataset");
  }
  if (first >= base.size()) {
    throw std::out_of_range("DataView::window: first index " +
                            std::to_string(first) + " exceeds dataset size " +
                            std::to_string(base.size()));
  }
  DataView view;
  view.base_ = &base;
  view.first_ = first;
  view.count_ = count;
  view.windowed_ = true;
  return view;
}

std::span<const std::size_t> DataView::indices() const {
  if (windowed_) {
    throw std::logic_error(
        "DataView::indices: window views have no index list");
  }
  return indices_;
}

Tensor DataView::gather(std::span<const std::size_t> positions) const {
  std::vector<std::size_t> base_indices;
  base_indices.reserve(positions.size());
  for (std::size_t p : positions) {
    if (p >= size()) throw std::out_of_range("DataView::gather: bad position");
    base_indices.push_back(base_index(p));
  }
  return base_->gather(base_indices);
}

std::vector<std::int32_t> DataView::gather_labels(
    std::span<const std::size_t> positions) const {
  std::vector<std::int32_t> out;
  out.reserve(positions.size());
  for (std::size_t p : positions) {
    if (p >= size()) {
      throw std::out_of_range("DataView::gather_labels: bad position");
    }
    out.push_back(base_->label(base_index(p)));
  }
  return out;
}

void DataView::gather_into(std::span<const std::size_t> positions,
                           Tensor& out) const {
  if (positions.empty()) {
    throw std::invalid_argument("DataView::gather_into: empty position list");
  }
  reset_batch_shape(out, positions.size(), base_->sample_shape());
  const std::size_t sample_numel = base_->sample_shape().numel();
  float* dst = out.data().data();
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (positions[i] >= size()) {
      throw std::out_of_range("DataView::gather_into: bad position");
    }
    const auto sample = base_->features(base_index(positions[i]));
    std::copy(sample.begin(), sample.end(), dst + i * sample_numel);
  }
}

void DataView::gather_labels_into(std::span<const std::size_t> positions,
                                  std::vector<std::int32_t>& out) const {
  out.resize(positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (positions[i] >= size()) {
      throw std::out_of_range("DataView::gather_labels_into: bad position");
    }
    out[i] = base_->label(base_index(positions[i]));
  }
}

Tensor DataView::all_features() const {
  if (!windowed_) return base_->gather(indices_);
  std::vector<std::size_t> base_indices(count_);
  for (std::size_t i = 0; i < count_; ++i) base_indices[i] = base_index(i);
  return base_->gather(base_indices);
}

std::vector<std::int32_t> DataView::all_labels() const {
  if (!windowed_) return base_->gather_labels(indices_);
  std::vector<std::int32_t> out;
  out.reserve(count_);
  for (std::size_t i = 0; i < count_; ++i) {
    out.push_back(base_->label(base_index(i)));
  }
  return out;
}

std::vector<std::size_t> DataView::class_histogram() const {
  std::vector<std::size_t> hist(base_->num_classes(), 0);
  for (std::size_t i = 0; i < size(); ++i) {
    ++hist[static_cast<std::size_t>(base_->label(base_index(i)))];
  }
  return hist;
}

}  // namespace middlefl::data
