// Non-IID partitioners assigning dataset indices to simulated devices.
//
// The paper's main experiments give every device a *major class* covering
// more than 80% of its samples (§6.1.2); the motivation experiments use a
// 70/30 edge-level split (Fig. 1) and one-class-per-device (Fig. 2).
// Dirichlet and IID partitioners are included for ablations and tests.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"

namespace middlefl::data {

struct Partition {
  /// Base-dataset indices per device (list layout).
  std::vector<std::vector<std::size_t>> device_indices;
  /// Major class per device, or -1 when the notion does not apply.
  std::vector<std::int32_t> major_class;
  /// Window layout (fleet scale): when window_devices > 0 the partition
  /// holds no index lists at all — device m views `window_size` consecutive
  /// samples starting at (m * window_size) mod dataset size, wrapping. O(1)
  /// storage regardless of fleet size; see partition_fleet_window().
  std::size_t window_devices = 0;
  std::size_t window_size = 0;

  std::size_t num_devices() const noexcept {
    return window_devices > 0 ? window_devices : device_indices.size();
  }
  DataView view(const Dataset& base, std::size_t device) const {
    if (window_devices > 0) {
      return DataView::window(
          base, (device * window_size) % base.size(), window_size);
    }
    return DataView(&base, device_indices.at(device));
  }

  /// Removes devices that received no samples (Dirichlet splits with small
  /// alpha can starve devices; the Simulation requires non-empty
  /// partitions). Returns the number of devices dropped.
  std::size_t prune_empty();
};

/// Each device gets `samples_per_device` draws, a `major_fraction` share
/// from its major class (assigned round-robin over classes) and the rest
/// uniformly from the other classes. Sampling is with replacement, so any
/// device count works for any dataset size.
Partition partition_major_class(const Dataset& dataset,
                                std::size_t num_devices,
                                std::size_t samples_per_device,
                                double major_fraction, std::uint64_t seed);

/// Every device holds samples of exactly one class (Fig. 2 setup).
Partition partition_single_class(const Dataset& dataset,
                                 std::size_t num_devices,
                                 std::size_t samples_per_device,
                                 std::uint64_t seed);

/// Classic Dirichlet(alpha) label-skew split of the dataset's indices
/// (without replacement); smaller alpha = more skew.
Partition partition_dirichlet(const Dataset& dataset, std::size_t num_devices,
                              double alpha, std::uint64_t seed);

/// Uniform random split without replacement.
Partition partition_iid(const Dataset& dataset, std::size_t num_devices,
                        std::uint64_t seed);

/// Fleet-scale window partition: every device views `samples_per_device`
/// consecutive samples at a device-dependent offset (wrapping around the
/// dataset). Deterministic, allocation-free per device, and valid for any
/// fleet size — the layout behind the million-device benchmarks.
Partition partition_fleet_window(const Dataset& dataset,
                                 std::size_t num_devices,
                                 std::size_t samples_per_device);

/// Groups devices into `num_edges` clusters by major class so that data is
/// Non-IID *across edges* too (edge e gets the devices whose major class
/// falls in its contiguous class range). Devices with unknown major class
/// are spread round-robin. Returns the initial edge id per device.
std::vector<std::size_t> assign_edges_by_major_class(
    const Partition& partition, std::size_t num_edges,
    std::size_t num_classes);

/// Uniform random initial edge assignment.
std::vector<std::size_t> assign_edges_uniform(std::size_t num_devices,
                                              std::size_t num_edges,
                                              std::uint64_t seed);

}  // namespace middlefl::data
