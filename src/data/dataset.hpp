// In-memory labeled dataset and lightweight index views.
//
// A Dataset owns a contiguous feature block ([n, sample_shape] row-major)
// plus one int32 label per sample. Federated partitions are DataViews —
// index lists over a shared Dataset — so 100 devices share one feature
// block instead of copying slices.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace middlefl::data {

using tensor::Shape;
using tensor::Tensor;

class Dataset {
 public:
  Dataset(Shape sample_shape, std::size_t num_classes);

  /// Appends one sample; `features.size()` must equal sample_shape().numel()
  /// and `label` must be in [0, num_classes).
  void add(std::span<const float> features, std::int32_t label);

  /// Pre-allocates space for `n` additional samples.
  void reserve(std::size_t n);

  std::size_t size() const noexcept { return labels_.size(); }
  const Shape& sample_shape() const noexcept { return sample_shape_; }
  std::size_t num_classes() const noexcept { return num_classes_; }

  std::span<const float> features(std::size_t i) const;
  std::int32_t label(std::size_t i) const { return labels_.at(i); }
  std::span<const std::int32_t> labels() const noexcept { return labels_; }

  /// Gathers the given samples into a batched tensor
  /// [indices.size(), sample_shape...].
  Tensor gather(std::span<const std::size_t> indices) const;
  std::vector<std::int32_t> gather_labels(
      std::span<const std::size_t> indices) const;

  /// Allocation-free gather variants: `out` is reshaped (reusing its
  /// buffer) and overwritten. Same element layout/values as gather().
  void gather_into(std::span<const std::size_t> indices, Tensor& out) const;
  void gather_labels_into(std::span<const std::size_t> indices,
                          std::vector<std::int32_t>& out) const;

  /// Per-class sample counts.
  std::vector<std::size_t> class_histogram() const;
  /// Indices of all samples with the given label.
  std::vector<std::size_t> indices_of_class(std::int32_t label) const;

 private:
  Shape sample_shape_;
  std::size_t sample_numel_;
  std::size_t num_classes_;
  std::vector<float> features_;
  std::vector<std::int32_t> labels_;
};

/// Non-owning subset of a Dataset. The base must outlive the view.
///
/// Two layouts share the interface:
///   list    — an explicit index vector (the general federated partition;
///             O(size) storage per view).
///   window  — `count` consecutive samples starting at `first`, wrapping
///             around the end of the base (O(1) storage per view). This is
///             what lets a million-device fleet share one dataset without
///             a million index vectors; see partition_fleet_window().
class DataView {
 public:
  DataView() = default;
  DataView(const Dataset* base, std::vector<std::size_t> indices);

  /// View covering the whole dataset.
  static DataView all(const Dataset& base);
  /// O(1) wraparound window view (see class comment). `count` may exceed
  /// base.size(): positions revisit samples modulo the base.
  static DataView window(const Dataset& base, std::size_t first,
                         std::size_t count);

  bool empty() const noexcept {
    return windowed_ ? count_ == 0 : indices_.empty();
  }
  std::size_t size() const noexcept {
    return windowed_ ? count_ : indices_.size();
  }
  const Dataset& base() const { return *base_; }
  /// The explicit index list; throws std::logic_error for window views
  /// (they have no materialized list — use base_index()).
  std::span<const std::size_t> indices() const;
  /// Base-dataset index behind view position `i`.
  std::size_t base_index(std::size_t i) const {
    return windowed_ ? (first_ + i) % base_->size() : indices_[i];
  }

  std::span<const float> features(std::size_t i) const {
    return base_->features(base_index(i));
  }
  std::int32_t label(std::size_t i) const {
    return base_->label(base_index(i));
  }

  /// Gathers view-relative positions into a batch tensor.
  Tensor gather(std::span<const std::size_t> positions) const;
  std::vector<std::int32_t> gather_labels(
      std::span<const std::size_t> positions) const;

  /// Allocation-free gather variants (see Dataset::gather_into).
  void gather_into(std::span<const std::size_t> positions, Tensor& out) const;
  void gather_labels_into(std::span<const std::size_t> positions,
                          std::vector<std::int32_t>& out) const;

  /// Materializes the whole view as one batch (used for evaluation sets).
  Tensor all_features() const;
  std::vector<std::int32_t> all_labels() const;

  std::vector<std::size_t> class_histogram() const;

 private:
  const Dataset* base_ = nullptr;
  std::vector<std::size_t> indices_;
  // Window layout (windowed_ set): indices_ stays empty.
  std::size_t first_ = 0;
  std::size_t count_ = 0;
  bool windowed_ = false;
};

}  // namespace middlefl::data
