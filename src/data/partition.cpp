#include "data/partition.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "parallel/rng.hpp"

namespace middlefl::data {
namespace {

using parallel::Xoshiro256;

void check_args(const Dataset& dataset, std::size_t num_devices) {
  if (num_devices == 0) {
    throw std::invalid_argument("partition: num_devices must be positive");
  }
  if (dataset.size() == 0) {
    throw std::invalid_argument("partition: empty dataset");
  }
}

/// Marsaglia-Tsang gamma(shape, 1) sampler; handles shape < 1 via the
/// boosting identity gamma(a) = gamma(a+1) * U^(1/a).
double sample_gamma(double shape, Xoshiro256& rng) {
  if (shape < 1.0) {
    const double u = rng.uniform();
    return sample_gamma(shape + 1.0, rng) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = rng.normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng.uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v;
  }
}

}  // namespace

std::size_t Partition::prune_empty() {
  std::size_t kept = 0;
  for (std::size_t m = 0; m < device_indices.size(); ++m) {
    if (device_indices[m].empty()) continue;
    if (kept != m) {
      device_indices[kept] = std::move(device_indices[m]);
      major_class[kept] = major_class[m];
    }
    ++kept;
  }
  const std::size_t dropped = device_indices.size() - kept;
  device_indices.resize(kept);
  major_class.resize(kept);
  return dropped;
}

Partition partition_major_class(const Dataset& dataset,
                                std::size_t num_devices,
                                std::size_t samples_per_device,
                                double major_fraction, std::uint64_t seed) {
  check_args(dataset, num_devices);
  if (major_fraction < 0.0 || major_fraction > 1.0) {
    throw std::invalid_argument("partition_major_class: major_fraction must be in [0,1]");
  }
  if (samples_per_device == 0) {
    throw std::invalid_argument("partition_major_class: samples_per_device must be positive");
  }
  const std::size_t classes = dataset.num_classes();
  std::vector<std::vector<std::size_t>> by_class(classes);
  for (std::size_t c = 0; c < classes; ++c) {
    by_class[c] = dataset.indices_of_class(static_cast<std::int32_t>(c));
    if (by_class[c].empty()) {
      throw std::invalid_argument("partition_major_class: class " +
                                  std::to_string(c) + " has no samples");
    }
  }

  Partition out;
  out.device_indices.resize(num_devices);
  out.major_class.resize(num_devices);
  parallel::StreamRng streams(seed);
  for (std::size_t m = 0; m < num_devices; ++m) {
    auto rng = streams.stream(m);
    const std::size_t major = m % classes;
    out.major_class[m] = static_cast<std::int32_t>(major);
    auto& mine = out.device_indices[m];
    mine.reserve(samples_per_device);
    for (std::size_t i = 0; i < samples_per_device; ++i) {
      std::size_t cls = major;
      if (classes > 1 && rng.uniform() >= major_fraction) {
        // Uniform over the other classes.
        cls = rng.bounded(classes - 1);
        if (cls >= major) ++cls;
      }
      const auto& pool = by_class[cls];
      mine.push_back(pool[rng.bounded(pool.size())]);
    }
  }
  return out;
}

Partition partition_single_class(const Dataset& dataset,
                                 std::size_t num_devices,
                                 std::size_t samples_per_device,
                                 std::uint64_t seed) {
  return partition_major_class(dataset, num_devices, samples_per_device,
                               /*major_fraction=*/1.0, seed);
}

Partition partition_dirichlet(const Dataset& dataset, std::size_t num_devices,
                              double alpha, std::uint64_t seed) {
  check_args(dataset, num_devices);
  if (alpha <= 0.0) {
    throw std::invalid_argument("partition_dirichlet: alpha must be positive");
  }
  const std::size_t classes = dataset.num_classes();
  Partition out;
  out.device_indices.resize(num_devices);
  out.major_class.assign(num_devices, -1);

  parallel::StreamRng streams(seed);
  for (std::size_t c = 0; c < classes; ++c) {
    auto indices = dataset.indices_of_class(static_cast<std::int32_t>(c));
    auto rng = streams.stream(c);
    std::shuffle(indices.begin(), indices.end(), rng);

    // Dirichlet proportions over devices for this class.
    std::vector<double> props(num_devices);
    double total = 0.0;
    for (double& p : props) {
      p = sample_gamma(alpha, rng);
      total += p;
    }
    // Cut the shuffled list at the cumulative proportions.
    std::size_t start = 0;
    double cumulative = 0.0;
    for (std::size_t m = 0; m < num_devices; ++m) {
      cumulative += props[m] / total;
      const std::size_t end =
          m + 1 == num_devices
              ? indices.size()
              : std::min(indices.size(),
                         static_cast<std::size_t>(std::llround(
                             cumulative * static_cast<double>(indices.size()))));
      for (std::size_t i = start; i < end; ++i) {
        out.device_indices[m].push_back(indices[i]);
      }
      start = std::max(start, end);
    }
  }

  // Record each device's empirical major class (useful for edge grouping).
  for (std::size_t m = 0; m < num_devices; ++m) {
    std::vector<std::size_t> hist(classes, 0);
    for (std::size_t i : out.device_indices[m]) {
      ++hist[static_cast<std::size_t>(dataset.label(i))];
    }
    const auto it = std::max_element(hist.begin(), hist.end());
    if (*it > 0) {
      out.major_class[m] = static_cast<std::int32_t>(it - hist.begin());
    }
  }
  return out;
}

Partition partition_iid(const Dataset& dataset, std::size_t num_devices,
                        std::uint64_t seed) {
  check_args(dataset, num_devices);
  std::vector<std::size_t> indices(dataset.size());
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  Xoshiro256 rng(seed);
  std::shuffle(indices.begin(), indices.end(), rng);

  Partition out;
  out.device_indices.resize(num_devices);
  out.major_class.assign(num_devices, -1);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    out.device_indices[i % num_devices].push_back(indices[i]);
  }
  return out;
}

Partition partition_fleet_window(const Dataset& dataset,
                                 std::size_t num_devices,
                                 std::size_t samples_per_device) {
  if (num_devices == 0) {
    throw std::invalid_argument(
        "partition_fleet_window: num_devices must be positive");
  }
  if (samples_per_device == 0) {
    throw std::invalid_argument(
        "partition_fleet_window: samples_per_device must be positive");
  }
  if (dataset.size() == 0) {
    throw std::invalid_argument("partition_fleet_window: empty dataset");
  }
  Partition out;
  out.window_devices = num_devices;
  out.window_size = samples_per_device;
  return out;
}

std::vector<std::size_t> assign_edges_by_major_class(
    const Partition& partition, std::size_t num_edges,
    std::size_t num_classes) {
  if (num_edges == 0) {
    throw std::invalid_argument("assign_edges_by_major_class: num_edges must be positive");
  }
  std::vector<std::size_t> edge_of(partition.num_devices());
  std::size_t fallback = 0;
  for (std::size_t m = 0; m < partition.num_devices(); ++m) {
    const std::int32_t major = partition.major_class[m];
    if (major < 0) {
      edge_of[m] = fallback++ % num_edges;
      continue;
    }
    // Contiguous class ranges per edge: edge e covers classes
    // [e*C/E, (e+1)*C/E).
    edge_of[m] = std::min(
        num_edges - 1,
        static_cast<std::size_t>(major) * num_edges / num_classes);
  }
  return edge_of;
}

std::vector<std::size_t> assign_edges_uniform(std::size_t num_devices,
                                              std::size_t num_edges,
                                              std::uint64_t seed) {
  if (num_edges == 0) {
    throw std::invalid_argument("assign_edges_uniform: num_edges must be positive");
  }
  Xoshiro256 rng(seed);
  std::vector<std::size_t> edge_of(num_devices);
  for (auto& e : edge_of) e = rng.bounded(num_edges);
  return edge_of;
}

}  // namespace middlefl::data
