// Procedural stand-ins for the paper's datasets.
//
// The evaluation uses MNIST, EMNIST-Letters, CIFAR10 and SpeechCommands;
// none are available offline, so we synthesize class-structured data with
// the same *shape of difficulty* (see DESIGN.md §2). Each class owns a few
// smooth random prototype fields; a sample is a randomly chosen prototype
// warped by a circular shift, amplitude jitter, additive Gaussian noise and
// (for the speech task) a random sparsity mask. Knobs:
//
//   - more classes            -> harder (EMNIST: 26)
//   - more prototypes/class   -> more intra-class variation (CIFAR)
//   - higher noise/deform     -> harder (CIFAR, Speech)
//   - sparsity                -> "long sparse vectors" (SpeechCommands §6.2.2)
//
// Generation is deterministic in (config.seed, salt, class, sample index),
// so train/test splits and repeated runs are reproducible.
#pragma once

#include <cstdint>
#include <string>

#include "data/dataset.hpp"
#include "parallel/rng.hpp"

namespace middlefl::data {

struct SyntheticConfig {
  std::size_t num_classes = 10;
  std::size_t channels = 1;
  std::size_t height = 16;
  std::size_t width = 16;
  std::size_t prototypes_per_class = 2;
  /// Resolution of the low-frequency field the prototypes are upsampled
  /// from; smaller = smoother, more separable classes.
  std::size_t proto_grid = 4;
  float noise_std = 0.25f;
  /// Maximum circular shift, in pixels, applied per sample.
  std::size_t deform = 1;
  /// Amplitude jitter: sample scaled by 1 + amplitude_jitter * N(0,1).
  float amplitude_jitter = 0.15f;
  /// Fraction of positions zeroed per sample (0 disables).
  float sparsity = 0.0f;
  std::uint64_t seed = 1;
};

/// The paper's four tasks.
enum class TaskKind { kMnist, kEmnist, kCifar, kSpeech };

std::string to_string(TaskKind kind);
TaskKind parse_task(const std::string& name);

/// Preset matching the task's difficulty profile. `scale` in (0, 1] shrinks
/// spatial extents for fast CI/bench runs (class count is never reduced).
SyntheticConfig task_config(TaskKind kind, double scale = 1.0);

class SyntheticGenerator {
 public:
  explicit SyntheticGenerator(SyntheticConfig config);

  const SyntheticConfig& config() const noexcept { return cfg_; }
  Shape sample_shape() const;

  /// Draws one sample of class `label` using the caller's stream.
  void sample_into(std::int32_t label, parallel::Xoshiro256& rng,
                   std::span<float> out) const;

  /// Balanced dataset with `per_class` samples per class. `salt`
  /// distinguishes independent draws (e.g. train vs test split).
  Dataset generate(std::size_t per_class, std::uint64_t salt) const;

 private:
  SyntheticConfig cfg_;
  std::size_t sample_numel_;
  // Prototypes: [class][prototype] -> field of sample_numel floats.
  std::vector<std::vector<std::vector<float>>> prototypes_;
};

}  // namespace middlefl::data
