#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace middlefl::data {

std::string to_string(TaskKind kind) {
  switch (kind) {
    case TaskKind::kMnist: return "mnist";
    case TaskKind::kEmnist: return "emnist";
    case TaskKind::kCifar: return "cifar10";
    case TaskKind::kSpeech: return "speech";
  }
  return "?";
}

TaskKind parse_task(const std::string& name) {
  if (name == "mnist") return TaskKind::kMnist;
  if (name == "emnist") return TaskKind::kEmnist;
  if (name == "cifar10" || name == "cifar") return TaskKind::kCifar;
  if (name == "speech" || name == "speechcommands") return TaskKind::kSpeech;
  throw std::invalid_argument("unknown task '" + name + "'");
}

SyntheticConfig task_config(TaskKind kind, double scale) {
  if (scale <= 0.0 || scale > 1.0) {
    throw std::invalid_argument("task_config: scale must be in (0, 1]");
  }
  const auto scaled = [scale](std::size_t full, std::size_t min_dim) {
    return std::max(min_dim,
                    static_cast<std::size_t>(std::lround(full * scale)));
  };
  SyntheticConfig cfg;
  switch (kind) {
    case TaskKind::kMnist:
      cfg.num_classes = 10;
      cfg.channels = 1;
      cfg.height = scaled(16, 8);
      cfg.width = scaled(16, 8);
      cfg.prototypes_per_class = 2;
      cfg.noise_std = 0.20f;
      cfg.deform = 1;
      cfg.seed = 101;
      break;
    case TaskKind::kEmnist:
      cfg.num_classes = 26;
      cfg.channels = 1;
      cfg.height = scaled(16, 8);
      cfg.width = scaled(16, 8);
      cfg.prototypes_per_class = 2;
      cfg.noise_std = 0.25f;
      cfg.deform = 1;
      cfg.seed = 102;
      break;
    case TaskKind::kCifar:
      cfg.num_classes = 10;
      cfg.channels = 3;
      cfg.height = scaled(16, 8);
      cfg.width = scaled(16, 8);
      cfg.prototypes_per_class = 4;
      cfg.proto_grid = 5;
      cfg.noise_std = 0.45f;
      cfg.deform = 2;
      cfg.amplitude_jitter = 0.25f;
      cfg.seed = 103;
      break;
    case TaskKind::kSpeech:
      // "long sparse vectors": a 1 x 16 x 32 spectro-temporal field with a
      // random half of the positions dropped per utterance.
      cfg.num_classes = 10;
      cfg.channels = 1;
      cfg.height = scaled(16, 8);
      cfg.width = scaled(32, 16);
      cfg.prototypes_per_class = 3;
      cfg.noise_std = 0.30f;
      cfg.deform = 3;
      cfg.sparsity = 0.5f;
      cfg.seed = 104;
      break;
  }
  return cfg;
}

namespace {

/// Bilinear upsample of a gh x gw grid to h x w (grid cells cover the image
/// uniformly, edges clamped).
void upsample_bilinear(const float* grid, std::size_t gh, std::size_t gw,
                       float* out, std::size_t h, std::size_t w) {
  for (std::size_t y = 0; y < h; ++y) {
    const float fy = h > 1 ? static_cast<float>(y) /
                                 static_cast<float>(h - 1) *
                                 static_cast<float>(gh - 1)
                           : 0.0f;
    const auto y0 = static_cast<std::size_t>(fy);
    const std::size_t y1 = std::min(y0 + 1, gh - 1);
    const float wy = fy - static_cast<float>(y0);
    for (std::size_t x = 0; x < w; ++x) {
      const float fx = w > 1 ? static_cast<float>(x) /
                                   static_cast<float>(w - 1) *
                                   static_cast<float>(gw - 1)
                             : 0.0f;
      const auto x0 = static_cast<std::size_t>(fx);
      const std::size_t x1 = std::min(x0 + 1, gw - 1);
      const float wx = fx - static_cast<float>(x0);
      const float top =
          (1.0f - wx) * grid[y0 * gw + x0] + wx * grid[y0 * gw + x1];
      const float bottom =
          (1.0f - wx) * grid[y1 * gw + x0] + wx * grid[y1 * gw + x1];
      out[y * w + x] = (1.0f - wy) * top + wy * bottom;
    }
  }
}

}  // namespace

SyntheticGenerator::SyntheticGenerator(SyntheticConfig config)
    : cfg_(config),
      sample_numel_(cfg_.channels * cfg_.height * cfg_.width) {
  if (cfg_.num_classes < 2 || cfg_.channels == 0 || cfg_.height == 0 ||
      cfg_.width == 0 || cfg_.prototypes_per_class == 0 ||
      cfg_.proto_grid < 2) {
    throw std::invalid_argument("SyntheticGenerator: invalid config");
  }
  if (cfg_.sparsity < 0.0f || cfg_.sparsity >= 1.0f) {
    throw std::invalid_argument("SyntheticGenerator: sparsity must be in [0,1)");
  }

  // Prototypes are fixed per (seed, class, prototype id): the "true"
  // class-conditional distribution of the task.
  parallel::StreamRng streams(cfg_.seed);
  prototypes_.resize(cfg_.num_classes);
  const std::size_t gh = cfg_.proto_grid;
  const std::size_t gw = cfg_.proto_grid;
  std::vector<float> grid(gh * gw);
  for (std::size_t c = 0; c < cfg_.num_classes; ++c) {
    prototypes_[c].resize(cfg_.prototypes_per_class);
    for (std::size_t p = 0; p < cfg_.prototypes_per_class; ++p) {
      auto rng = streams.stream(/*a=*/0xC0DE, c, p);
      auto& field = prototypes_[c][p];
      field.resize(sample_numel_);
      for (std::size_t ch = 0; ch < cfg_.channels; ++ch) {
        for (float& g : grid) g = static_cast<float>(rng.normal());
        upsample_bilinear(grid.data(), gh, gw,
                          field.data() + ch * cfg_.height * cfg_.width,
                          cfg_.height, cfg_.width);
      }
    }
  }
}

Shape SyntheticGenerator::sample_shape() const {
  return Shape{cfg_.channels, cfg_.height, cfg_.width};
}

void SyntheticGenerator::sample_into(std::int32_t label,
                                     parallel::Xoshiro256& rng,
                                     std::span<float> out) const {
  if (label < 0 || static_cast<std::size_t>(label) >= cfg_.num_classes) {
    throw std::out_of_range("SyntheticGenerator: bad label");
  }
  if (out.size() != sample_numel_) {
    throw std::invalid_argument("SyntheticGenerator: bad output span");
  }
  const auto& protos = prototypes_[static_cast<std::size_t>(label)];
  const auto& proto = protos[rng.bounded(protos.size())];

  // Per-sample transform: circular shift + amplitude jitter + noise.
  const std::size_t h = cfg_.height;
  const std::size_t w = cfg_.width;
  const std::size_t shift_range = 2 * cfg_.deform + 1;
  const std::size_t dy =
      cfg_.deform > 0 ? rng.bounded(shift_range) : 0;  // in [0, 2*deform]
  const std::size_t dx = cfg_.deform > 0 ? rng.bounded(shift_range) : 0;
  const float amp =
      1.0f + cfg_.amplitude_jitter * static_cast<float>(rng.normal());

  for (std::size_t ch = 0; ch < cfg_.channels; ++ch) {
    const float* plane = proto.data() + ch * h * w;
    float* out_plane = out.data() + ch * h * w;
    for (std::size_t y = 0; y < h; ++y) {
      const std::size_t sy = (y + dy) % h;
      for (std::size_t x = 0; x < w; ++x) {
        const std::size_t sx = (x + dx) % w;
        out_plane[y * w + x] =
            amp * plane[sy * w + sx] +
            cfg_.noise_std * static_cast<float>(rng.normal());
      }
    }
  }

  if (cfg_.sparsity > 0.0f) {
    for (float& v : out) {
      if (rng.uniform_float() < cfg_.sparsity) v = 0.0f;
    }
  }
}

Dataset SyntheticGenerator::generate(std::size_t per_class,
                                     std::uint64_t salt) const {
  Dataset dataset(sample_shape(), cfg_.num_classes);
  dataset.reserve(per_class * cfg_.num_classes);
  parallel::StreamRng streams(parallel::hash_combine(cfg_.seed, salt));
  std::vector<float> sample(sample_numel_);
  // Interleave classes so any prefix of the dataset is roughly balanced.
  for (std::size_t i = 0; i < per_class; ++i) {
    for (std::size_t c = 0; c < cfg_.num_classes; ++c) {
      auto rng = streams.stream(c, i);
      sample_into(static_cast<std::int32_t>(c), rng, sample);
      dataset.add(sample, static_cast<std::int32_t>(c));
    }
  }
  return dataset;
}

}  // namespace middlefl::data
