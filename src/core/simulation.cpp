#include "core/simulation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/aggregation.hpp"
#include "parallel/parallel_for.hpp"
#include "tensor/workspace.hpp"

namespace middlefl::core {
namespace {

// Stream tags keep the per-purpose RNG streams disjoint.
constexpr std::uint64_t kSelectTag = 0x5E1EC7;
constexpr std::uint64_t kTrainTag = 0x7EA1;
constexpr std::uint64_t kUploadTag = 0xFA11;

}  // namespace

Simulation::Simulation(SimulationConfig cfg, const nn::ModelSpec& model_spec,
                       const optim::Optimizer& optimizer_prototype,
                       const data::Dataset& train,
                       const data::Partition& partition,
                       const data::Dataset& test,
                       std::unique_ptr<mobility::MobilityModel> mobility,
                       AlgorithmSpec algorithm)
    : cfg_(std::move(cfg)),
      algorithm_(std::move(algorithm)),
      cloud_(0),
      mobility_(std::move(mobility)),
      streams_(cfg_.seed) {
  if (mobility_ == nullptr) {
    throw std::invalid_argument("Simulation: null mobility model");
  }
  if (partition.num_devices() != mobility_->num_devices()) {
    throw std::invalid_argument(
        "Simulation: partition has " + std::to_string(partition.num_devices()) +
        " devices but mobility has " +
        std::to_string(mobility_->num_devices()));
  }
  if (algorithm_.selection == nullptr) {
    throw std::invalid_argument("Simulation: algorithm has no selection strategy");
  }
  if (!cfg_.lr_schedule) {
    cfg_.lr_schedule = optim::constant_lr(0.01);
  }
  if (cfg_.select_per_edge == 0 || cfg_.local_steps == 0 ||
      cfg_.cloud_interval == 0 || cfg_.batch_size == 0) {
    throw std::invalid_argument("Simulation: K, I, T_c and batch must be positive");
  }

  // Common initialization: one model drawn from the seed, copied everywhere
  // (cloud, edges, devices all start aligned, as in Algorithm 1's t = 0).
  auto init_model = nn::build_model(model_spec, cfg_.seed);
  const std::size_t param_count = init_model->param_count();

  cloud_ = Cloud(param_count);
  cloud_.set_params(init_model->parameters());

  const std::size_t num_edges = mobility_->num_edges();
  edges_.reserve(num_edges);
  for (std::size_t n = 0; n < num_edges; ++n) {
    edges_.emplace_back(n, param_count);
    edges_.back().set_params(init_model->parameters());
  }

  devices_.reserve(partition.num_devices());
  for (std::size_t m = 0; m < partition.num_devices(); ++m) {
    auto model = init_model->clone();
    devices_.emplace_back(m, partition.view(train, m), std::move(model),
                          optimizer_prototype.clone_config());
  }
  similarity_cache_.resize(devices_.size());

  // Per-device local-step budgets from the heterogeneity profile.
  if (!cfg_.device_speeds.empty() &&
      cfg_.device_speeds.size() != devices_.size()) {
    throw std::invalid_argument(
        "Simulation: device_speeds must be empty or one entry per device");
  }
  steps_budget_.assign(devices_.size(), cfg_.local_steps);
  if (cfg_.round_deadline > 0.0) {
    for (std::size_t m = 0; m < devices_.size(); ++m) {
      const double speed =
          cfg_.device_speeds.empty() ? 1.0 : cfg_.device_speeds[m];
      if (speed <= 0.0) {
        throw std::invalid_argument("Simulation: device speeds must be positive");
      }
      const auto budget = static_cast<std::size_t>(
          std::floor(cfg_.round_deadline * speed));
      steps_budget_[m] = std::min(cfg_.local_steps, budget);
    }
  }
  dropped_this_step_.assign(devices_.size(), 0);

  evaluator_ = std::make_unique<Evaluator>(
      init_model->clone(), data::DataView::all(test));
  history_.algorithm = algorithm_.name;
}

bool Simulation::step() {
  ++t_;
  const std::vector<std::size_t> prev_assignment = mobility_->assignment();
  mobility_->advance();
  const auto& assignment = mobility_->assignment();

  // Snapshot the edge models of this step (w^t_n); training initialization
  // and FedMes' previous-edge lookup must not observe partial aggregation.
  // Buffers are refilled in place: after the first step no allocation
  // happens here.
  if (edge_snapshot_.size() != edges_.size()) {
    edge_snapshot_.resize(edges_.size());
  }
  for (std::size_t n = 0; n < edges_.size(); ++n) {
    edge_snapshot_[n].assign(edges_[n].params().begin(),
                             edges_[n].params().end());
  }

  // Group connected devices per edge (the candidate sets M_t_n).
  if (members_.size() != edges_.size()) members_.resize(edges_.size());
  for (auto& members : members_) members.clear();
  for (std::size_t m = 0; m < devices_.size(); ++m) {
    members_[assignment[m]].push_back(m);
  }

  // In-edge device selection (Algorithm 1, line 2). The context lets
  // similarity strategies reuse cached Eq. 11 scores and fan large miss
  // batches out over the pool; it never changes the selected set.
  parallel::ThreadPool* pool =
      cfg_.parallel_devices ? &parallel::ThreadPool::global() : nullptr;
  const SelectionContext context{
      .cloud_version = cloud_.params_version(),
      .cache = cfg_.use_similarity_cache ? &similarity_cache_ : nullptr,
      .pool = pool,
  };
  if (last_selection_.size() != edges_.size()) {
    last_selection_.resize(edges_.size());
  }
  std::vector<Candidate> candidates;
  for (std::size_t n = 0; n < edges_.size(); ++n) {
    last_selection_[n].clear();
    if (members_[n].empty()) continue;
    candidates.clear();
    candidates.reserve(members_[n].size());
    for (std::size_t m : members_[n]) {
      candidates.push_back(Candidate{
          .device_id = m,
          .data_size = static_cast<double>(devices_[m].data_size()),
          .stat_utility = devices_[m].stat_utility(),
          .local_params = devices_[m].params(),
          .params_version = devices_[m].params_version(),
      });
    }
    auto rng = streams_.stream(kSelectTag, n, t_);
    last_selection_[n] = algorithm_.selection->select(
        candidates, cloud_.params(), cfg_.select_per_edge, rng, context);
  }

  // Local training (lines 3-8), parallel across all selected devices of
  // all edges at once.
  train_all_selected(prev_assignment);

  // Edge aggregation (line 9).
  aggregate_edges();

  // Cloud synchronization every T_c steps (lines 10-15).
  const bool sync = (t_ % cfg_.cloud_interval) == 0;
  if (sync) cloud_sync();
  return sync;
}

void Simulation::train_all_selected(
    const std::vector<std::size_t>& prev_assignment) {
  // Flatten every edge's selection into one task list so the pool sees all
  // the step's work at once instead of K-sized bursts per edge. Each device
  // is connected to exactly one edge, so tasks touch disjoint devices.
  train_tasks_.clear();
  for (std::size_t n = 0; n < edges_.size(); ++n) {
    for (std::size_t m : last_selection_[n]) {
      train_tasks_.push_back(TrainTask{n, m});
    }
  }
  if (train_tasks_.empty()) return;

  // Per-task result slots: each task writes only its own entry, and step()
  // reduces them serially in task order below — bitwise deterministic with
  // any thread count (this replaced a mutex-guarded running sum whose
  // accumulation order depended on scheduling).
  task_blend_weight_.assign(train_tasks_.size(), 0.0);
  task_blended_.assign(train_tasks_.size(), 0);

  const auto train_one = [&](std::size_t idx) {
    const TrainTask task = train_tasks_[idx];
    const std::size_t m = task.device;
    Device& device = devices_[m];
    dropped_this_step_[m] = steps_budget_[m] == 0 ? 1 : 0;
    if (dropped_this_step_[m]) {
      // Straggler: cannot finish a single local step before the deadline.
      return;
    }
    const std::span<const float> edge_model = edge_snapshot_[task.edge];
    const bool moved = prev_assignment[m] != task.edge;

    if (moved && algorithm_.on_move != OnDeviceRule::kDownloadEdge) {
      // On-device model aggregation (line 5): blend the carried local model
      // with the downloaded edge model. The output borrows the worker's
      // workspace slot; set_params copies it out before the next borrow.
      std::span<float> blended = tensor::Workspace::tls().floats(
          tensor::WsSlot::kBlend, edge_model.size());
      const std::span<const float> prev_edge =
          algorithm_.on_move == OnDeviceRule::kPrevEdgeAverage
              ? std::span<const float>(edge_snapshot_[prev_assignment[m]])
              : std::span<const float>();
      const double weight =
          apply_on_device_rule(algorithm_.on_move, edge_model,
                               device.params(), prev_edge,
                               algorithm_.fixed_alpha, blended);
      device.set_params(blended);
      task_blended_[idx] = 1;
      task_blend_weight_[idx] = weight;
    } else {
      // Line 7: start from the downloaded edge model.
      device.set_params(edge_model);
    }

    auto rng = streams_.stream(kTrainTag, m, t_);
    device.train(steps_budget_[m], cfg_.batch_size, cfg_.lr_schedule(t_),
                 cfg_.reset_optimizer_each_round, rng, cfg_.prox_mu,
                 cfg_.clip_norm);
    device.mark_trained(t_);
  };

  if (cfg_.parallel_devices && train_tasks_.size() > 1) {
    parallel::parallel_for(0, train_tasks_.size(), train_one);
  } else {
    for (std::size_t i = 0; i < train_tasks_.size(); ++i) train_one(i);
  }

  // Serial reduction in fixed task order.
  std::size_t stragglers = 0;
  for (std::size_t idx = 0; idx < train_tasks_.size(); ++idx) {
    if (dropped_this_step_[train_tasks_[idx].device]) {
      ++stragglers;
      continue;
    }
    if (task_blended_[idx]) {
      ++blends_;
      blend_weight_sum_ += task_blend_weight_[idx];
    }
  }
  straggler_drops_ += stragglers;

  // Communication: every selected device downloads the edge model;
  // stragglers never finish, so they upload nothing. FedMes' moved devices
  // additionally fetch their previous edge's model.
  comm_.device_downloads += train_tasks_.size();
  comm_.device_uploads += train_tasks_.size() - stragglers;
  if (algorithm_.on_move == OnDeviceRule::kPrevEdgeAverage) {
    for (const TrainTask& task : train_tasks_) {
      if (prev_assignment[task.device] != task.edge) ++comm_.device_downloads;
    }
  }
}

void Simulation::aggregate_edges() {
  // Edges aggregate independently: each body writes only its own edge's
  // parameters and result slot. Counters are reduced serially in edge
  // order afterwards, and weighted_average sums every element in model
  // order, so the parallel path is bitwise identical to the serial one.
  edge_agg_results_.assign(edges_.size(), EdgeAggResult{});
  const auto aggregate_one = [&](std::size_t n) {
    const auto& selected = last_selection_[n];
    if (selected.empty()) return;  // idle edge keeps its model
    EdgeAggResult& result = edge_agg_results_[n];
    std::vector<WeightedModel> models;
    std::vector<std::vector<float>> reconstructions;  // keep spans alive
    models.reserve(selected.size());
    reconstructions.reserve(selected.size());
    for (std::size_t m : selected) {
      if (dropped_this_step_[m]) continue;  // straggler never uploaded
      if (cfg_.upload_failure_prob > 0.0) {
        auto rng = streams_.stream(kUploadTag, m, t_);
        if (rng.uniform() < cfg_.upload_failure_prob) {
          ++result.failed_uploads;  // upload lost; device keeps its update
          continue;
        }
      }
      const auto weight = static_cast<double>(devices_[m].data_size());
      if (cfg_.upload_compression.kind != CompressionKind::kNone) {
        // The edge receives a lossy reconstruction of the device's update
        // against this step's edge model.
        auto compressed = compress_model(devices_[m].params(),
                                         edge_snapshot_[n],
                                         cfg_.upload_compression);
        result.upload_bytes += compressed.bytes;
        reconstructions.push_back(std::move(compressed.reconstruction));
        models.push_back(WeightedModel{reconstructions.back(), weight});
      } else {
        result.upload_bytes += devices_[m].params().size() * sizeof(float);
        models.push_back(WeightedModel{devices_[m].params(), weight});
      }
      result.participating += weight;
    }
    if (models.empty()) return;  // every upload failed: edge unchanged
    weighted_average(models, edges_[n].mutable_params());
    edges_[n].add_participation(result.participating);
  };

  if (cfg_.parallel_devices && edges_.size() > 1) {
    parallel::parallel_for(0, edges_.size(), aggregate_one);
  } else {
    for (std::size_t n = 0; n < edges_.size(); ++n) aggregate_one(n);
  }
  for (const EdgeAggResult& result : edge_agg_results_) {
    failed_uploads_ += result.failed_uploads;
    upload_bytes_ += result.upload_bytes;
  }
}

void Simulation::cloud_sync() {
  parallel::ThreadPool* pool =
      cfg_.parallel_devices ? &parallel::ThreadPool::global() : nullptr;
  std::vector<WeightedModel> models;
  models.reserve(edges_.size());
  for (const auto& edge : edges_) {
    const double weight = cfg_.weighted_cloud_aggregation
                              ? edge.participation_weight()
                              : 1.0;
    if (weight > 0.0) {
      models.push_back(WeightedModel{edge.params(), weight});
    }
  }
  if (!models.empty()) {
    if (cfg_.server_momentum > 0.0) {
      // FedAvgM: treat the FedAvg aggregate as a pseudo-gradient step and
      // smooth it with momentum on the server.
      std::span<float> aggregate = tensor::Workspace::tls().floats(
          tensor::WsSlot::kScratch, cloud_.params().size());
      weighted_average(models, aggregate, pool);
      if (server_velocity_.size() != aggregate.size()) {
        server_velocity_.assign(aggregate.size(), 0.0f);
      }
      auto cloud = cloud_.mutable_params();
      const auto m = static_cast<float>(cfg_.server_momentum);
      for (std::size_t i = 0; i < aggregate.size(); ++i) {
        server_velocity_[i] =
            m * server_velocity_[i] + (aggregate[i] - cloud[i]);
        cloud[i] += server_velocity_[i];
      }
    } else {
      weighted_average(models, cloud_.mutable_params(), pool);
    }
    // w_c moved through mutable_params: invalidate cached Eq. 11 scores.
    cloud_.bump_version();
  }
  for (auto& edge : edges_) {
    edge.set_params(cloud_.params());
    edge.reset_participation();
  }
  comm_.edge_uploads += edges_.size();
  comm_.edge_downloads += edges_.size();
  if (cfg_.broadcast_to_devices) {
    for (auto& device : devices_) {
      device.set_params(cloud_.params());
    }
    comm_.device_broadcasts += devices_.size();
  }
}

void Simulation::warm_start(std::span<const float> params) {
  cloud_.set_params(params);
  for (auto& edge : edges_) edge.set_params(params);
  for (auto& device : devices_) device.set_params(params);
}

double Simulation::current_edge_skew() const {
  const std::size_t classes =
      devices_.front().data().base().num_classes();
  std::vector<std::vector<std::size_t>> histograms(
      edges_.size(), std::vector<std::size_t>(classes, 0));
  const auto& assignment = mobility_->assignment();
  for (std::size_t m = 0; m < devices_.size(); ++m) {
    const auto device_hist = devices_[m].data().class_histogram();
    auto& edge_hist = histograms[assignment[m]];
    for (std::size_t c = 0; c < classes; ++c) {
      edge_hist[c] += device_hist[c];
    }
  }
  return mean_edge_skew(histograms);
}

const EvalPoint& Simulation::evaluate_now() {
  EvalPoint point;
  point.step = t_;
  const EvalResult result =
      evaluator_->evaluate(cloud_.params(), cfg_.eval_samples);
  point.accuracy = result.accuracy;
  point.loss = result.loss;
  if (cfg_.track_per_class) {
    point.per_class_accuracy = evaluator_->per_class_accuracy(cloud_.params());
  }
  if (cfg_.track_edge_accuracy) {
    point.edge_accuracy.reserve(edges_.size());
    for (const auto& edge : edges_) {
      point.edge_accuracy.push_back(
          evaluator_->evaluate(edge.params(), cfg_.eval_samples).accuracy);
    }
  }
  history_.points.push_back(std::move(point));
  return history_.points.back();
}

RunHistory Simulation::run(
    const std::function<void(const EvalPoint&)>& progress) {
  if (t_ == 0) {
    // Record the starting point so curves begin at the common init.
    const auto& point = evaluate_now();
    if (progress) progress(point);
  }
  while (t_ < cfg_.total_steps) {
    step();
    if (t_ % cfg_.eval_every == 0 || t_ == cfg_.total_steps) {
      const auto& point = evaluate_now();
      if (progress) progress(point);
    }
  }
  return history_;
}

}  // namespace middlefl::core
