#include "core/simulation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "core/aggregation.hpp"
#include "parallel/parallel_for.hpp"
#include "tensor/workspace.hpp"

namespace middlefl::core {
namespace {

double elapsed_us(obs::TraceRecorder::Clock::time_point begin,
                  obs::TraceRecorder::Clock::time_point end) {
  return std::chrono::duration<double, std::micro>(end - begin).count();
}

// Stream tags keep the per-purpose RNG streams disjoint. Loss draws only
// happen on links with a nonzero loss policy, so tags added for the
// transport layer never perturb default-policy runs. Streams are keyed on
// (tag, entity, step) and every entity is processed by exactly one chain,
// so draws are identical no matter how chains interleave.
constexpr std::uint64_t kSelectTag = 0x5E1EC7;
constexpr std::uint64_t kTrainTag = 0x7EA1;
constexpr std::uint64_t kUploadTag = 0xFA11;     // wireless uplink loss
constexpr std::uint64_t kDownlinkTag = 0xD07;    // wireless downlink loss
constexpr std::uint64_t kWanUpTag = 0x3A9C10;    // WAN uplink loss
constexpr std::uint64_t kWanDownTag = 0x3A9C11;  // WAN downlink loss
constexpr std::uint64_t kBroadcastTag = 0xB9CA;  // broadcast loss

}  // namespace

void reconcile_uplink_aliases(SimulationConfig& cfg) {
  auto& up = cfg.transport.wireless_up;
  if (cfg.upload_failure_prob != 0.0) {
    if (up.loss_prob != 0.0 && up.loss_prob != cfg.upload_failure_prob) {
      throw std::invalid_argument(
          "upload_failure_prob=" + std::to_string(cfg.upload_failure_prob) +
          " conflicts with transport.wireless_up.loss_prob=" +
          std::to_string(up.loss_prob) +
          "; set the uplink loss through one view only");
    }
    up.loss_prob = cfg.upload_failure_prob;
  }
  if (cfg.upload_compression.kind != CompressionKind::kNone) {
    const auto& explicit_c = up.compression;
    if (explicit_c.kind != CompressionKind::kNone &&
        (explicit_c.kind != cfg.upload_compression.kind ||
         explicit_c.top_k_fraction != cfg.upload_compression.top_k_fraction)) {
      throw std::invalid_argument(
          "upload_compression conflicts with "
          "transport.wireless_up.compression; set the uplink compression "
          "through one view only");
    }
    up.compression = cfg.upload_compression;
  }
  cfg.upload_failure_prob = up.loss_prob;
  cfg.upload_compression = up.compression;
}

std::string to_string(StepPhase phase) {
  switch (phase) {
    case StepPhase::kSelect:
      return "select";
    case StepPhase::kDistribute:
      return "distribute";
    case StepPhase::kLocalTrain:
      return "local_train";
    case StepPhase::kUpload:
      return "upload";
    case StepPhase::kEdgeAggregate:
      return "edge_aggregate";
    case StepPhase::kCloudSync:
      return "cloud_sync";
  }
  return "unknown";
}

Simulation::Simulation(SimulationConfig cfg, const nn::ModelSpec& model_spec,
                       const optim::Optimizer& optimizer_prototype,
                       const data::Dataset& train,
                       const data::Partition& partition,
                       const data::Dataset& test,
                       std::unique_ptr<mobility::MobilityModel> mobility,
                       AlgorithmSpec algorithm)
    : cfg_(std::move(cfg)),
      algorithm_(std::move(algorithm)),
      cloud_(0),
      mobility_(std::move(mobility)),
      streams_(cfg_.seed) {
  if (mobility_ == nullptr) {
    throw std::invalid_argument("Simulation: null mobility model");
  }
  if (partition.num_devices() != mobility_->num_devices()) {
    throw std::invalid_argument(
        "Simulation: partition has " + std::to_string(partition.num_devices()) +
        " devices but mobility has " +
        std::to_string(mobility_->num_devices()));
  }
  if (algorithm_.selection == nullptr) {
    throw std::invalid_argument("Simulation: algorithm has no selection strategy");
  }
  if (!cfg_.lr_schedule) {
    cfg_.lr_schedule = optim::constant_lr(0.01);
  }
  if (cfg_.select_per_edge == 0 || cfg_.local_steps == 0 ||
      cfg_.cloud_interval == 0 || cfg_.batch_size == 0) {
    throw std::invalid_argument("Simulation: K, I, T_c and batch must be positive");
  }

  reconcile_uplink_aliases(cfg_);

  pool_ = cfg_.parallel_devices
              ? (cfg_.pool != nullptr ? cfg_.pool
                                      : &parallel::ThreadPool::global())
              : nullptr;
  // Models with order-free per-device transitions shard advance() over the
  // same pool the chains run on; serial models ignore the hint.
  mobility_->set_pool(pool_);

  // Common initialization: one model drawn from the seed, copied everywhere
  // (cloud, edges, devices all start aligned, as in Algorithm 1's t = 0).
  auto init_model = nn::build_model(model_spec, cfg_.seed);
  param_count_ = init_model->param_count();

  cloud_ = Cloud(param_count_);
  cloud_.set_params(init_model->parameters());

  const std::size_t num_edges = mobility_->num_edges();
  edges_.reserve(num_edges);
  for (std::size_t n = 0; n < num_edges; ++n) {
    edges_.emplace_back(n, param_count_);
    edges_.back().adopt(cloud_.snapshot());
  }

  // One uplink delay-queue shard per edge: a chain enqueues into and
  // drains only its own shard, without locks. (The WAN uplink shares the
  // shard count for the async publishes.)
  transport_ = std::make_unique<transport::Transport>(cfg_.transport, num_edges);
  observers_.push_back(&comm_observer_);

  // Collectives backend: the seam every edge/cloud aggregation reduces
  // through.
  communicator_ = std::make_unique<comm::InProcessCommunicator>(pool_);
  if (cfg_.comm.async_cloud) {
    if (cfg_.server_momentum > 0.0) {
      throw std::invalid_argument(
          "Simulation: comm.async_cloud is incompatible with server_momentum "
          "(FedAvgM needs the barriered aggregate-minus-global step)");
    }
    cloud_mailbox_.resize(num_edges);
    fold_credit_.assign(num_edges, 0.0);
    anchor_weight_.assign(num_edges, 0.0);
    anchor_round_.assign(num_edges, 0);
    anchor_valid_.assign(num_edges, 0);
  }

  const std::size_t num_devices = partition.num_devices();
  registry_.configure(cfg_.fleet);
  registry_.set_prototypes(*init_model, optimizer_prototype);
  for (std::size_t m = 0; m < num_devices; ++m) {
    if (cfg_.fleet.lazy_devices) {
      // Virtual device: starts as a zero-cost share of the common init
      // snapshot; dense state materializes only around training.
      registry_.insert(
          Device(m, partition.view(train, m), cloud_.snapshot(), &registry_));
    } else {
      registry_.insert(Device(m, partition.view(train, m), init_model->clone(),
                              optimizer_prototype.clone_config()));
    }
  }
  similarity_cache_.resize(num_devices);

  // Per-device local-step budgets from the heterogeneity profile.
  if (!cfg_.device_speeds.empty() &&
      cfg_.device_speeds.size() != num_devices) {
    throw std::invalid_argument(
        "Simulation: device_speeds must be empty or one entry per device");
  }
  steps_budget_.assign(num_devices, cfg_.local_steps);
  if (cfg_.round_deadline > 0.0) {
    for (std::size_t m = 0; m < num_devices; ++m) {
      const double speed =
          cfg_.device_speeds.empty() ? 1.0 : cfg_.device_speeds[m];
      if (speed <= 0.0) {
        throw std::invalid_argument("Simulation: device speeds must be positive");
      }
      const auto budget = static_cast<std::size_t>(
          std::floor(cfg_.round_deadline * speed));
      steps_budget_[m] = std::min(cfg_.local_steps, budget);
    }
  }
  dropped_this_step_.assign(num_devices, 0);
  download_lost_.assign(num_devices, 0);

  evaluator_ = std::make_unique<Evaluator>(
      init_model->clone(), data::DataView::all(test));
  evaluator_->set_pool(pool_);
  history_.algorithm = algorithm_.name;
}

void Simulation::add_observer(StepObserver* observer) {
  if (observer == nullptr) {
    throw std::invalid_argument("Simulation::add_observer: null observer");
  }
  observers_.push_back(observer);
}

void Simulation::set_observability(const obs::Observability& obs) {
  obs_ = obs;
  graph_.set_trace(obs_.trace);
  evaluator_->set_trace(obs_.trace);
  communicator_->set_trace(obs_.trace);
  if (obs_.trace != nullptr) obs_.trace->name_this_thread("sim");
  if (obs_.metrics != nullptr) {
    obs::MetricsRegistry& m = *obs_.metrics;
    metric_ids_.steps = m.counter("sim.steps");
    metric_ids_.cloud_syncs = m.counter("sim.cloud_syncs");
    metric_ids_.selected = m.counter("sim.selected_devices");
    metric_ids_.stragglers = m.counter("sim.straggler_drops");
    metric_ids_.lost_downloads = m.counter("sim.lost_downloads");
    metric_ids_.blends = m.counter("sim.on_device_aggregations");
    metric_ids_.evaluations = m.counter("sim.evaluations");
    metric_ids_.step_ms = m.histogram(
        "sim.step_ms", {0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000,
                        5000, 10000});
    metric_ids_.fleet_materializations = m.counter("fleet.materializations");
    metric_ids_.fleet_resident = m.gauge("fleet.resident_devices");
    metric_ids_.fleet_delta_bytes = m.gauge("fleet.delta_bytes_at_rest");
    metric_ids_.comm_reduces = m.counter("comm.reduces");
    metric_ids_.comm_reduce_depth = m.gauge("comm.reduce_max_depth");
    metric_ids_.comm_published = m.counter("comm.async_published");
    metric_ids_.comm_applied = m.counter("comm.async_applied");
    metric_ids_.comm_deferred = m.counter("comm.async_deferred");
    metric_ids_.comm_dropped_stale = m.counter("comm.async_dropped_stale");
  }
}

void Simulation::set_edge_model_sink(EdgeModelSink* sink) {
  serving_sink_ = sink;
  if (serving_sink_ == nullptr) return;
  // Initial publication: serving starts against whatever each edge holds
  // right now (the common init, or mid-run models when attached late).
  for (std::size_t n = 0; n < edges_.size(); ++n) {
    serving_sink_->on_edge_model(n, edges_[n].snapshot());
  }
}

void Simulation::notify_phase(StepPhase phase) {
  for (StepObserver* obs : observers_) obs->on_phase(phase, t_);
}

void Simulation::notify_transfers(StepPhase phase, transport::LinkKind kind,
                                  const transport::LinkStats& delta) {
  if (delta.transfers == 0) return;
  for (StepObserver* obs : observers_) {
    obs->on_transfers(phase, kind, delta, t_);
  }
}

bool Simulation::step() {
  const bool observed = obs_.enabled();
  obs::TraceRecorder::Clock::time_point step_begin{};
  if (observed) {
    step_begin = obs::TraceRecorder::Clock::now();
    if (obs_.logger != nullptr) prev_links_ = transport_->bytes_by_link();
    // Fleet gauges are per-step: count materializations from here and
    // re-arm the resident high-water mark. Pure accounting — bare runs
    // skip it and stay bit-identical.
    prev_materializations_ = registry_.materializations();
    prev_comm_counters_ = communicator_->counters();
    prev_async_stats_ = async_stats_;
    registry_.reset_resident_peak();
  }
  ++t_;
  begin_step();

  // One fused task per edge; the pool is joined exactly once. Chains have
  // no cross-edge dependencies within a step — the sync points are the
  // serial sections around this graph.
  graph_.clear();
  for (std::size_t n = 0; n < edges_.size(); ++n) {
    graph_.add("edge-chain/" + std::to_string(n), [this, n] { edge_chain(n); });
  }
  graph_.run(pool_);

  replay_step_events();
  bool sync = false;
  double sync_us = 0.0;
  if (cfg_.comm.async_cloud) {
    // Semi-async: the serial apply point runs EVERY step — contributions
    // land whenever the WAN delivers them, not only at round boundaries.
    // `sync` reports whether the global model changed this step.
    if (observed) {
      const auto begin = obs::TraceRecorder::Clock::now();
      sync = stage_cloud_sync_async();
      const auto end = obs::TraceRecorder::Clock::now();
      sync_us = elapsed_us(begin, end);
      if (sync && obs_.trace != nullptr) {
        obs_.trace->complete("cloud_sync", "phase", begin, end,
                             last_sync_contributing_, "contributing");
      }
    } else {
      sync = stage_cloud_sync_async();
    }
  } else if ((t_ % cfg_.cloud_interval) == 0) {
    sync = true;
    if (observed) {
      const auto begin = obs::TraceRecorder::Clock::now();
      stage_cloud_sync();
      const auto end = obs::TraceRecorder::Clock::now();
      sync_us = elapsed_us(begin, end);
      if (obs_.trace != nullptr) {
        obs_.trace->complete("cloud_sync", "phase", begin, end,
                             last_sync_contributing_, "contributing");
      }
    } else {
      stage_cloud_sync();
    }
  }
  for (StepObserver* obs : observers_) obs->on_step_end(t_, sync);
  if (observed) finish_step_obs(sync, step_begin, sync_us);
  return sync;
}

void Simulation::begin_step() {
  const bool observed = obs_.enabled();
  last_phase_us_ = StepPhaseUs{};

  // Bring prev_assignment_ up to the PRE-advance assignment by patching
  // the previous advance's movers instead of copying all n entries. The
  // full copy remains for the first step and for models that do not track
  // their movers.
  {
    const auto& before = mobility_->assignment();
    const std::vector<std::size_t>* prev_movers = mobility_->movers();
    if (prev_assignment_.size() != before.size() || prev_movers == nullptr) {
      prev_assignment_ = before;
    } else {
      for (const std::size_t m : *prev_movers) {
        prev_assignment_[m] = before[m];
      }
    }
  }

  obs::TraceRecorder::Clock::time_point t0{};
  if (observed) t0 = obs::TraceRecorder::Clock::now();
  mobility_->advance();
  if (observed) {
    const auto t1 = obs::TraceRecorder::Clock::now();
    last_phase_us_.mobility = elapsed_us(t0, t1);
    if (obs_.trace != nullptr) {
      obs_.trace->complete("mobility", "phase", t0, t1, t_, "t");
    }
  }
  const auto& assignment = mobility_->assignment();

  // Snapshot the edge models of this step (w^t_n): an O(1) share of each
  // edge's current immutable block. Chains publish NEW blocks at
  // aggregation, so these stay stable for training initialization and
  // FedMes' prev-edge lookup even while other chains aggregate.
  if (edge_snapshot_.size() != edges_.size()) {
    edge_snapshot_.resize(edges_.size());
  }
  for (std::size_t n = 0; n < edges_.size(); ++n) {
    edge_snapshot_[n] = edges_[n].snapshot();
  }

  // Candidate sets M_t_n: patch the per-edge member lists from the mover
  // delta when the model provides one (only dirty edges pay a re-merge);
  // rebuild from scratch otherwise, or when churn is heavy enough that
  // the full scatter is cheaper. Either path touches only the assignment
  // vector — no device (cold state) is dereferenced — and produces the
  // identical ascending-id lists (pinned by MembershipIncremental tests).
  if (observed) t0 = obs::TraceRecorder::Clock::now();
  const std::vector<std::size_t>* movers = mobility_->movers();
  if (members_ready_ && movers != nullptr &&
      members_.size() == edges_.size() &&
      movers->size() < registry_.size() / 2) {
    patch_members(assignment, *movers);
  } else {
    rebuild_members(assignment);
  }
  if (observed) {
    const auto t1 = obs::TraceRecorder::Clock::now();
    last_phase_us_.membership = elapsed_us(t0, t1);
    if (obs_.trace != nullptr) {
      obs_.trace->complete("membership", "phase", t0, t1, t_, "t");
    }
  }

  // One O(members) settle scan per edge is only needed when non-selected
  // devices can be resident: param-reading selection materializes diverged
  // candidates, and a lossy/compressed broadcast installs private copies
  // fleet-wide. Otherwise settle walks the O(K) selection ids.
  settle_scan_members_ =
      algorithm_.selection->needs_params() || fleet_scan_needed_;
  fleet_scan_needed_ = false;

  if (last_selection_.size() != edges_.size()) {
    last_selection_.resize(edges_.size());
  }
  if (candidates_.size() != edges_.size()) candidates_.resize(edges_.size());
  if (traces_.size() != edges_.size()) traces_.resize(edges_.size());
  if (arrivals_.size() != edges_.size()) {
    arrivals_.resize(edges_.size());
    recon_arena_.resize(edges_.size());
    stale_uploads_.resize(edges_.size());
  }

  for (StepObserver* obs : observers_) obs->on_step_begin(t_);
}

void Simulation::rebuild_members(const std::vector<std::size_t>& assignment) {
  if (members_.size() != edges_.size()) members_.resize(edges_.size());
  for (auto& members : members_) members.clear();
  for (std::size_t m = 0; m < registry_.size(); ++m) {
    members_[assignment[m]].push_back(m);
  }
  members_ready_ = true;
}

void Simulation::patch_members(const std::vector<std::size_t>& assignment,
                               const std::vector<std::size_t>& movers) {
  if (movers.empty()) return;
  if (moved_flag_.size() != registry_.size()) {
    moved_flag_.assign(registry_.size(), 0);
  }
  if (arrivals_by_edge_.size() != edges_.size()) {
    arrivals_by_edge_.resize(edges_.size());
  }
  if (edge_dirty_.size() != edges_.size()) {
    edge_dirty_.assign(edges_.size(), 0);
  }
  dirty_edges_.clear();
  // prev_assignment_ holds the pre-advance assignment, so it names each
  // mover's source edge. Movers arrive ascending, so every per-edge
  // arrival list is ascending by construction.
  for (const std::size_t m : movers) {
    const std::size_t from = prev_assignment_[m];
    const std::size_t to = assignment[m];
    moved_flag_[m] = 1;
    arrivals_by_edge_[to].push_back(m);
    if (!edge_dirty_[from]) {
      edge_dirty_[from] = 1;
      dirty_edges_.push_back(from);
    }
    if (!edge_dirty_[to]) {
      edge_dirty_[to] = 1;
      dirty_edges_.push_back(to);
    }
  }
  for (const std::size_t e : dirty_edges_) {
    auto& list = members_[e];
    // Compact out the departures (a mover cannot already be in its
    // destination list, so flagged entries here are exactly the leavers).
    std::size_t keep = 0;
    for (const std::size_t m : list) {
      if (!moved_flag_[m]) list[keep++] = m;
    }
    list.resize(keep);
    auto& arrivals = arrivals_by_edge_[e];
    if (!arrivals.empty()) {
      // Backward in-place merge of two ascending runs; allocation-free
      // past the capacity high-water mark.
      std::size_t i = keep;
      std::size_t j = arrivals.size();
      list.resize(keep + arrivals.size());
      std::size_t out = list.size();
      while (j > 0) {
        if (i > 0 && list[i - 1] > arrivals[j - 1]) {
          list[--out] = list[--i];
        } else {
          list[--out] = arrivals[--j];
        }
      }
      arrivals.clear();
    }
    edge_dirty_[e] = 0;
  }
  for (const std::size_t m : movers) moved_flag_[m] = 0;
}

void Simulation::edge_chain(std::size_t n) {
  EdgeTrace& trace = traces_[n];
  trace.down = transport::LinkStats{};
  trace.carry = transport::LinkStats{};
  trace.up = transport::LinkStats{};
  trace.wan = transport::LinkStats{};
  trace.stragglers = 0;
  trace.lost_downloads = 0;
  trace.blend_weights.clear();
  // Async mode: the chain ends with its WAN publish at round boundaries,
  // instead of waiting for the barriered CloudSync stage.
  const bool publish =
      cfg_.comm.async_cloud && (t_ % cfg_.cloud_interval) == 0;

  if (!obs_.enabled()) {
    select_edge(n);
    distribute_edge(n, trace);
    train_edge(n);
    upload_edge(n, trace);
    aggregate_edge(n);
    settle_edge(n);
    if (publish) publish_edge(n, trace);
    return;
  }

  // Instrumented path: identical call sequence, plus one clock-read pair
  // per phase feeding both the span and the per-step phase sums. Timing
  // never touches RNG or model state, so both paths are bit-identical.
  const auto timed = [&](std::size_t phase, const char* name, auto&& body) {
    const auto begin = obs::TraceRecorder::Clock::now();
    body();
    const auto end = obs::TraceRecorder::Clock::now();
    trace.phase_us[phase] = elapsed_us(begin, end);
    if (obs_.trace != nullptr) {
      obs_.trace->complete(name, "phase", begin, end, n, "edge");
    }
  };
  timed(0, "select", [&] { select_edge(n); });
  timed(1, "distribute", [&] { distribute_edge(n, trace); });
  timed(2, "local_train", [&] { train_edge(n); });
  timed(3, "upload", [&] { upload_edge(n, trace); });
  timed(4, "edge_aggregate", [&] {
    aggregate_edge(n);
    settle_edge(n);
    if (publish) publish_edge(n, trace);
  });
}

void Simulation::select_edge(std::size_t n) {
  // In-edge device selection (Algorithm 1, line 2). The context lets
  // similarity strategies reuse cached Eq. 11 scores; it never changes the
  // selected set. Cache entries are per device and a device connects to
  // exactly one edge, so concurrent chains touch disjoint entries.
  const SelectionContext context{
      .cloud_version = cloud_.params_version(),
      .cache = cfg_.use_similarity_cache ? &similarity_cache_ : nullptr,
      .pool = pool_,
  };
  last_selection_[n].clear();
  if (members_[n].empty()) return;
  auto rng = streams_.stream(kSelectTag, n, t_);
  if (!algorithm_.selection->needs_metadata()) {
    // Id-only fast path (random selection): the strategy ranks on nothing,
    // so hand it the member ids directly — no Candidate build and, above
    // all, no per-member device dereference. Same draws, same ids as the
    // metadata path (pinned by selection_test).
    last_selection_[n] = algorithm_.selection->select_ids(
        members_[n], cfg_.select_per_edge, rng);
    return;
  }
  auto& candidates = candidates_[n];
  candidates.clear();
  candidates.reserve(members_[n].size());
  // Random/stat-utility strategies never read candidate parameters, so
  // lazy devices stay cold through selection; similarity strategies
  // materialize diverged candidates here (settled again after the chain's
  // aggregation).
  const bool want_params = algorithm_.selection->needs_params();
  for (std::size_t m : members_[n]) {
    const Device& device = registry_.at(m);
    candidates.push_back(Candidate{
        .device_id = m,
        .data_size = static_cast<double>(device.data_size()),
        .stat_utility = device.stat_utility(),
        .local_params =
            want_params ? device.params() : std::span<const float>{},
        .params_version = device.params_version(),
    });
  }
  last_selection_[n] = algorithm_.selection->select(
      candidates, cloud_.params(), cfg_.select_per_edge, rng, context);
}

void Simulation::distribute_edge(std::size_t n, EdgeTrace& trace) {
  transport::Link& downlink = transport_->wireless_down();
  transport::Link& carry = transport_->carry();
  const bool down_lossy = downlink.policy().loss_prob > 0.0;
  const bool down_compressed =
      downlink.policy().compression.kind != CompressionKind::kNone;
  const Snapshot& edge_block = edge_snapshot_[n];
  const std::span<const float> edge_model = edge_block->span();

  for (std::size_t m : last_selection_[n]) {
    Device& device = registry_.at(m);
    dropped_this_step_[m] = steps_budget_[m] == 0 ? 1 : 0;
    download_lost_[m] = 0;
    const bool moved = prev_assignment_[m] != n;

    parallel::Xoshiro256 rng;  // consulted only on a lossy downlink
    std::vector<std::vector<float>> local_arena;  // downlink reconstructions
    transport::SendContext ctx;
    ctx.step = t_;
    ctx.tally = &trace.down;
    if (down_lossy) {
      rng = streams_.stream(kDownlinkTag, m, t_);
      ctx.rng = &rng;
    }
    if (down_compressed) ctx.arena = &local_arena;

    // Every selected device downloads its edge's model; FedMes' moved
    // devices additionally fetch their previous edge's model. Stragglers
    // are charged for the download too — they receive it, then fail to
    // finish a single local step before the deadline.
    const transport::Delivery dl = downlink.send(edge_model, ctx);
    transport::Delivery prev_dl{};
    const bool wants_prev =
        moved && algorithm_.on_move == OnDeviceRule::kPrevEdgeAverage;
    if (wants_prev) {
      prev_dl = downlink.send(edge_snapshot_[prev_assignment_[m]]->span(), ctx);
    }
    if (dropped_this_step_[m]) {
      // Straggler: cannot finish a single local step before the deadline.
      ++trace.stragglers;
      continue;
    }
    if (!dl.delivered) {
      // Download lost in transit: the device sits the round out.
      download_lost_[m] = 1;
      ++trace.lost_downloads;
      continue;
    }

    if (moved && algorithm_.on_move != OnDeviceRule::kDownloadEdge) {
      // On-device model aggregation (line 5): blend the carried local model
      // with the downloaded edge model. The output borrows the worker's
      // workspace slot; set_params copies it out before the next borrow.
      std::span<const float> prev_edge{};
      if (wants_prev) {
        if (!prev_dl.delivered) {
          // The extra FedMes download was lost: fall back to the plain
          // edge download (the rule has nothing to average with).
          install_download(device, dl.payload, edge_block);
          continue;
        }
        prev_edge = prev_dl.payload;
      }
      std::span<const float> local = device.params();
      if (algorithm_.on_move != OnDeviceRule::kPrevEdgeAverage) {
        // The carried local model enters the blend: route it through the
        // carry link (free — zero bytes — but counted).
        transport::SendContext carry_ctx;
        carry_ctx.step = t_;
        carry_ctx.tally = &trace.carry;
        local = carry.send(local, carry_ctx).payload;
      }
      std::span<float> blended = tensor::Workspace::tls().floats(
          tensor::WsSlot::kBlend, edge_model.size());
      const double weight =
          apply_on_device_rule(algorithm_.on_move, dl.payload, local,
                               prev_edge, algorithm_.fixed_alpha, blended);
      device.set_params(blended);
      trace.blend_weights.push_back(weight);
    } else {
      // Line 7: start from the downloaded edge model — a shared adopt of
      // the snapshot when the link passed it through losslessly.
      install_download(device, dl.payload, edge_block);
    }
  }
}

bool Simulation::install_download(Device& device,
                                  std::span<const float> payload,
                                  const Snapshot& source) {
  if (!payload.empty() && payload.data() == source->span().data()) {
    device.adopt(source);
    return true;
  }
  device.set_params(payload);
  return false;
}

void Simulation::train_edge(std::size_t n) {
  // One pooled runtime serves every lazy device in this chain serially;
  // eager devices ignore it. Acquired on first need so edges full of
  // eager devices (or empty selections) stay allocation-free.
  DeviceRuntime* runtime = nullptr;
  for (std::size_t m : last_selection_[n]) {
    if (dropped_this_step_[m] || download_lost_[m]) continue;
    Device& device = registry_.at(m);
    if (device.lazy() && runtime == nullptr) {
      runtime = registry_.acquire_runtime();
    }
    auto rng = streams_.stream(kTrainTag, m, t_);
    device.train(steps_budget_[m], cfg_.batch_size, cfg_.lr_schedule(t_),
                 cfg_.reset_optimizer_each_round, rng, cfg_.prox_mu,
                 cfg_.clip_norm, runtime);
    device.mark_trained(t_);
  }
  if (runtime != nullptr) registry_.release_runtime(runtime);
}

void Simulation::upload_edge(std::size_t n, EdgeTrace& trace) {
  transport::Link& uplink = transport_->wireless_up();
  const bool lossy = uplink.policy().loss_prob > 0.0;
  const bool compressed =
      uplink.policy().compression.kind != CompressionKind::kNone;
  const bool delayed = uplink.policy().latency_steps > 0;

  arrivals_[n].clear();
  recon_arena_[n].clear();
  stale_uploads_[n].clear();
  if (delayed) {
    // Uploads sent latency_steps ago arrive now and join this edge's
    // aggregation, oldest first.
    stale_uploads_[n] = uplink.drain(t_, n);
    for (const transport::Arrival& a : stale_uploads_[n]) {
      arrivals_[n].push_back(UploadArrival{a.payload, a.weight});
    }
  }
  for (std::size_t m : last_selection_[n]) {
    if (dropped_this_step_[m] || download_lost_[m]) continue;
    const auto weight = static_cast<double>(registry_.at(m).data_size());
    parallel::Xoshiro256 rng;
    transport::SendContext ctx;
    ctx.step = t_;
    ctx.shard = n;
    ctx.weight = weight;
    ctx.tally = &trace.up;
    // The edge receives a lossy reconstruction of the device's update
    // against this step's edge model.
    ctx.reference = edge_snapshot_[n]->span();
    if (lossy) {
      rng = streams_.stream(kUploadTag, m, t_);
      ctx.rng = &rng;
    }
    if (compressed) ctx.arena = &recon_arena_[n];
    const transport::Delivery up = uplink.send(registry_.at(m).params(), ctx);
    if (up.delivered) {
      arrivals_[n].push_back(UploadArrival{up.payload, weight});
    }
    // Lost uploads vanish (the device keeps its local update); queued
    // uploads surface through drain() in a later step.
  }
}

void Simulation::aggregate_edge(std::size_t n) {
  if (arrivals_[n].empty()) return;  // idle edge (or every upload lost /
                                     // still in flight) keeps its model
  std::vector<WeightedModel> models;
  models.reserve(arrivals_[n].size());
  double participating = 0.0;
  for (const UploadArrival& arrival : arrivals_[n]) {
    models.push_back(WeightedModel{arrival.payload, arrival.weight});
    participating += arrival.weight;
  }
  // Aggregate into a fresh block, never over the live one: the previous
  // block may be shared (it IS this step's snapshot, and possibly the
  // cloud broadcast), so in-place writes would corrupt concurrent readers.
  std::vector<float> fresh = SnapshotStore::global().borrow(param_count_);
  // Reduce through the collectives backend. Inside a worker this takes the
  // serial fixed-order path — exactly the historical in-chain loop.
  communicator_->reduce(models, std::span<float>(fresh));
  edges_[n].adopt(SnapshotStore::global().seal(std::move(fresh)));
  edges_[n].add_participation(participating);
  // Serving hot-swap: hand the fresh aggregate to the sink from inside
  // this edge's own chain (single writer per edge slot). A refcount bump
  // of the immutable block — no RNG, no mutation, no effect on goldens.
  if (serving_sink_ != nullptr) {
    serving_sink_->on_edge_model(n, edges_[n].snapshot());
  }
}

void Simulation::settle_edge(std::size_t n) {
  // De-materialize every lazy device that is still holding a resident
  // buffer. This must run after aggregate_edge — the upload arrival spans
  // alias the resident buffers until the weighted average has consumed
  // them. The full member scan is only paid when non-selected members can
  // be resident (param-reading selection materializes diverged candidates;
  // a lossy broadcast installs private copies fleet-wide — see
  // settle_scan_members_); otherwise only this chain's selected devices
  // ever touched their parameters, and settle walks the O(K) ids.
  if (settle_scan_members_) {
    for (std::size_t m : members_[n]) {
      Device& device = registry_.at(m);
      if (device.lazy() && device.resident()) device.settle();
    }
    return;
  }
  for (std::size_t m : last_selection_[n]) {
    Device& device = registry_.at(m);
    if (device.lazy() && device.resident()) device.settle();
  }
}

void Simulation::replay_step_events() {
  // Merge the per-chain traces in canonical edge order — the same order
  // the barriered pipeline reduced its flat task list in. Counter merges
  // commute; the blend-weight sum is floating point and is replayed term
  // by term in (edge, selection) order, keeping mean_blend_weight()
  // bitwise stable at any thread count.
  transport::LinkStats down{};
  transport::LinkStats carry{};
  transport::LinkStats up{};
  std::size_t stragglers = 0;
  std::size_t lost = 0;
  std::size_t new_blends = 0;
  double event_weight = 0.0;
  const bool observed = obs_.enabled();
  for (const EdgeTrace& trace : traces_) {
    down += trace.down;
    carry += trace.carry;
    up += trace.up;
    stragglers += trace.stragglers;
    lost += trace.lost_downloads;
    for (const double weight : trace.blend_weights) {
      ++blends_;
      blend_weight_sum_ += weight;
      ++new_blends;
      event_weight += weight;
    }
  }
  straggler_drops_ += stragglers;
  if (observed) {
    // last_events_ feeds finish_step_obs() only; skip the bookkeeping
    // entirely on the disabled path.
    last_events_ = StepEventSummary{};
    for (const EdgeTrace& trace : traces_) {
      for (std::size_t p = 0; p < 5; ++p) {
        last_events_.phase_us[p] += trace.phase_us[p];
      }
    }
    last_events_.stragglers = stragglers;
    last_events_.lost_downloads = lost;
    last_events_.blends = new_blends;
    last_events_.blend_weight = event_weight;
  }

  for (StepObserver* obs : observers_) obs->on_selection(t_, last_selection_);
  notify_phase(StepPhase::kSelect);

  notify_transfers(StepPhase::kDistribute, transport::LinkKind::kWirelessDown,
                   down);
  notify_transfers(StepPhase::kDistribute, transport::LinkKind::kCarry, carry);
  // Instant markers fire here, at the serial replay point in canonical
  // edge order — never from inside the parallel chains — so the trace
  // event stream is deterministic at any thread count.
  if (stragglers > 0 || lost > 0) {
    for (StepObserver* obs : observers_) obs->on_dropouts(t_, stragglers, lost);
    if (obs_.trace != nullptr) {
      obs_.trace->instant("dropouts", "sim", stragglers + lost, "count");
    }
  }
  if (new_blends > 0) {
    for (StepObserver* obs : observers_) {
      obs->on_blends(t_, new_blends, event_weight);
    }
    if (obs_.trace != nullptr) {
      obs_.trace->instant("blends", "sim", new_blends, "count");
    }
  }
  notify_phase(StepPhase::kDistribute);
  notify_phase(StepPhase::kLocalTrain);

  notify_transfers(StepPhase::kUpload, transport::LinkKind::kWirelessUp, up);
  notify_phase(StepPhase::kUpload);
  notify_phase(StepPhase::kEdgeAggregate);
}

void Simulation::stage_cloud_sync() {
  const transport::LinkStats before_up = transport_->wan_up().stats();
  const transport::LinkStats before_down = transport_->wan_down().stats();
  const transport::LinkStats before_bcast = transport_->broadcast().stats();

  transport::Link& wan_up = transport_->wan_up();
  transport::Link& wan_down = transport_->wan_down();
  transport::Link& broadcast = transport_->broadcast();
  const bool up_lossy = wan_up.policy().loss_prob > 0.0;
  const bool up_compressed =
      wan_up.policy().compression.kind != CompressionKind::kNone;

  wan_arena_.clear();
  wan_stale_.clear();
  std::vector<WeightedModel> models;
  models.reserve(edges_.size());

  // Stale WAN uploads from earlier syncs arrive first (async staleness).
  if (wan_up.policy().latency_steps > 0) {
    wan_stale_ = wan_up.drain(t_);
    for (const transport::Arrival& a : wan_stale_) {
      if (a.weight > 0.0) models.push_back(WeightedModel{a.payload, a.weight});
    }
  }

  // Every edge uploads its model over the WAN at sync; edges that saw no
  // participants since the last sync are excluded from the aggregate (but
  // still charged for the upload, as always).
  for (std::size_t n = 0; n < edges_.size(); ++n) {
    const double weight = cfg_.weighted_cloud_aggregation
                              ? edges_[n].participation_weight()
                              : 1.0;
    parallel::Xoshiro256 rng;
    transport::SendContext ctx;
    ctx.step = t_;
    ctx.weight = weight;
    // Delta-code against the global model both endpoints hold from the
    // previous sync's broadcast.
    ctx.reference = cloud_.params();
    if (up_lossy) {
      rng = streams_.stream(kWanUpTag, n, t_);
      ctx.rng = &rng;
    }
    if (up_compressed) ctx.arena = &wan_arena_;
    const transport::Delivery up = wan_up.send(edges_[n].params(), ctx);
    if (up.delivered && weight > 0.0) {
      models.push_back(WeightedModel{up.payload, weight});
    }
  }

  if (!models.empty()) {
    // The aggregate lands in a fresh block: edge uploads alias the edges'
    // live (shared) blocks, so the old global model must stay intact while
    // the average reads them — and the old block may itself still be
    // shared with edges and devices from the previous broadcast.
    std::vector<float> fresh = SnapshotStore::global().borrow(param_count_);
    const std::span<float> next(fresh);
    if (cfg_.server_momentum > 0.0) {
      // FedAvgM: treat the FedAvg aggregate as a pseudo-gradient step and
      // smooth it with momentum on the server.
      std::span<float> aggregate = tensor::Workspace::tls().floats(
          tensor::WsSlot::kScratch, param_count_);
      communicator_->reduce(models, aggregate);
      if (server_velocity_.size() != aggregate.size()) {
        server_velocity_.assign(aggregate.size(), 0.0f);
      }
      const auto cloud = cloud_.params();
      const auto m = static_cast<float>(cfg_.server_momentum);
      for (std::size_t i = 0; i < aggregate.size(); ++i) {
        server_velocity_[i] =
            m * server_velocity_[i] + (aggregate[i] - cloud[i]);
        next[i] = cloud[i] + server_velocity_[i];
      }
    } else {
      // Serial point: the backend runs its deterministic element-block
      // tree on the pool, bitwise identical to the serial loop.
      communicator_->all_reduce(models, next);
    }
    // One publish replaces the old global model; the fresh version
    // invalidates cached Eq. 11 scores by construction.
    cloud_.adopt(SnapshotStore::global().seal(std::move(fresh)));
  }
  const std::size_t contributing = models.size();
  last_sync_contributing_ = contributing;

  // Push the global model back down: cloud -> edge over the WAN, then the
  // broadcast to every device. A lost push leaves the receiver on its old
  // model until the next sync. A lossless push is a shared adopt of the
  // cloud's block — the num_edges + num_devices full copies of the
  // barriered pipeline collapse into refcount bumps.
  const Snapshot& global_block = cloud_.snapshot();
  const bool down_lossy = wan_down.policy().loss_prob > 0.0;
  const bool down_compressed =
      wan_down.policy().compression.kind != CompressionKind::kNone;
  for (std::size_t n = 0; n < edges_.size(); ++n) {
    parallel::Xoshiro256 rng;
    transport::SendContext ctx;
    ctx.step = t_;
    if (down_lossy) {
      rng = streams_.stream(kWanDownTag, n, t_);
      ctx.rng = &rng;
    }
    if (down_compressed) ctx.arena = &wan_arena_;
    const transport::Delivery down = wan_down.send(cloud_.params(), ctx);
    if (down.delivered) {
      if (down.payload.data() == global_block->span().data()) {
        edges_[n].adopt(global_block);
      } else {
        edges_[n].set_params(down.payload);
      }
    }
    edges_[n].reset_participation();
    // Serving hot-swap after the broadcast: a lossless push republishes
    // the shared global block; a lost push republishes the edge's
    // unchanged model (same version — readers treat it as a no-op).
    if (serving_sink_ != nullptr) {
      serving_sink_->on_edge_model(n, edges_[n].snapshot());
    }
  }
  if (cfg_.broadcast_to_devices) {
    const bool bcast_lossy = broadcast.policy().loss_prob > 0.0;
    const bool bcast_compressed =
        broadcast.policy().compression.kind != CompressionKind::kNone;
    for (std::size_t m = 0; m < registry_.size(); ++m) {
      parallel::Xoshiro256 rng;
      transport::SendContext ctx;
      ctx.step = t_;
      if (bcast_lossy) {
        rng = streams_.stream(kBroadcastTag, m, t_);
        ctx.rng = &rng;
      }
      if (bcast_compressed) ctx.arena = &wan_arena_;
      const transport::Delivery push = broadcast.send(cloud_.params(), ctx);
      if (push.delivered &&
          !install_download(registry_.at(m), push.payload, global_block)) {
        // A private install can leave any lazy device resident; the next
        // step's settle must scan full member lists to find them.
        fleet_scan_needed_ = true;
      }
    }
  }

  notify_transfers(StepPhase::kCloudSync, transport::LinkKind::kWanUp,
                   transport_->stats(transport::LinkKind::kWanUp) - before_up);
  notify_transfers(
      StepPhase::kCloudSync, transport::LinkKind::kWanDown,
      transport_->stats(transport::LinkKind::kWanDown) - before_down);
  notify_transfers(
      StepPhase::kCloudSync, transport::LinkKind::kBroadcast,
      transport_->stats(transport::LinkKind::kBroadcast) - before_bcast);
  for (StepObserver* obs : observers_) obs->on_cloud_sync(t_, contributing);
  notify_phase(StepPhase::kCloudSync);
}

void Simulation::publish_edge(std::size_t n, EdgeTrace& trace) {
  transport::Link& wan_up = transport_->wan_up();
  const bool lossy = wan_up.policy().loss_prob > 0.0;
  const bool compressed =
      wan_up.policy().compression.kind != CompressionKind::kNone;
  const double weight = cfg_.weighted_cloud_aggregation
                            ? edges_[n].participation_weight()
                            : 1.0;
  parallel::Xoshiro256 rng;
  transport::SendContext ctx;
  ctx.step = t_;
  ctx.shard = n;  // one WAN shard per edge: lock-free from inside the chain
  ctx.weight = weight;
  ctx.tally = &trace.wan;
  // No delta reference: without the barrier the edge cannot know which
  // global model the cloud will hold when this lands, so compression codes
  // the raw model instead of a delta.
  if (lossy) {
    rng = streams_.stream(kWanUpTag, n, t_);
    ctx.rng = &rng;
  }
  if (compressed) ctx.arena = &recon_arena_[n];
  const transport::Delivery up = wan_up.send(edges_[n].params(), ctx);

  CloudContribution c;
  c.weight = weight;
  c.round = t_ / cfg_.cloud_interval;
  c.sent_step = t_;
  c.version = edges_[n].snapshot()->version();
  if (up.queued) {
    c.queued = true;  // surfaces through the delay queue later
  } else if (!up.delivered) {
    c.dropped = true;  // lost in transit; the weight vanishes with it
  } else if (!up.payload.empty() &&
             up.payload.data() == edges_[n].params().data()) {
    c.shared = edges_[n].snapshot();  // lossless pass-through: zero copy
  } else {
    c.owned.assign(up.payload.begin(), up.payload.end());
  }
  cloud_mailbox_.post(n, std::move(c));
  // Participation resets at publish (not at the cloud's broadcast): the
  // next window accumulates toward the next contribution.
  edges_[n].reset_participation();
}

bool Simulation::stage_cloud_sync_async() {
  transport::Link& wan_up = transport_->wan_up();
  transport::Link& wan_down = transport_->wan_down();
  transport::Link& broadcast = transport_->broadcast();
  const transport::LinkStats before_down = wan_down.stats();
  const transport::LinkStats before_bcast = broadcast.stats();
  // This step's WAN-uplink traffic happened inside the chains; the
  // per-chain tallies are its exact delta (the link's global counters
  // cannot be before/after'd around a parallel section).
  transport::LinkStats wan_up_delta{};
  for (const EdgeTrace& trace : traces_) wan_up_delta += trace.wan;

  const std::uint64_t round_now = t_ / cfg_.cloud_interval;
  const bool delayed = wan_up.policy().latency_steps > 0;

  // The apply batch: bounded-stale contributions in canonical edge order,
  // each discounted by 1/(1 + staleness). The payload storage (drained
  // arrivals, mailbox posts) outlives the reduce below.
  struct PendingApply {
    std::size_t edge;
    std::span<const float> payload;
    double eff;           // staleness-discounted weight entering the reduce
    double raw;           // undiscounted weight (anchor bookkeeping)
    std::uint64_t round;  // cloud round the contribution was sent in
  };
  std::vector<PendingApply> batch;
  std::vector<CloudContribution> delivered;
  delivered.reserve(edges_.size());
  std::vector<transport::Arrival> drained;

  const auto admit = [&](std::size_t n, std::span<const float> payload,
                         double weight, std::size_t sent_step) {
    const std::uint64_t staleness = round_now - sent_step / cfg_.cloud_interval;
    if (staleness > cfg_.comm.max_staleness) {
      // Past the bound: the model is discarded but its weight is folded
      // into this edge's next accepted contribution.
      ++async_stats_.dropped_stale;
      fold_credit_[n] += weight;
      return;
    }
    const double raw = weight + fold_credit_[n];
    fold_credit_[n] = 0.0;
    if (raw <= 0.0) return;  // idle window: nothing to contribute
    const double eff = raw / (1.0 + static_cast<double>(staleness));
    batch.push_back(
        PendingApply{n, payload, eff, raw, round_now - staleness});
    ++async_stats_.applied;
  };

  for (std::size_t n = 0; n < edges_.size(); ++n) {
    if (delayed) {
      // In-flight publishes whose delivery step arrived, oldest first.
      for (transport::Arrival& a : wan_up.drain(t_, n)) {
        const double weight = a.weight;
        const std::size_t sent_step = a.sent_step;
        drained.push_back(std::move(a));
        admit(n, drained.back().payload, weight, sent_step);
      }
    }
    if (auto posted = cloud_mailbox_.take(n)) {
      ++async_stats_.published;
      if (posted->queued) {
        ++async_stats_.deferred;  // surfaces through drain() later
      } else if (!posted->dropped) {
        delivered.push_back(std::move(*posted));
        const CloudContribution& c = delivered.back();
        admit(n, c.view(), c.weight, c.sent_step);
      }
    }
  }

  const bool applied = !batch.empty();
  if (applied) {
    // Anchor: edges absent from this batch whose last applied contribution
    // is still within the staleness bound keep the current global model
    // weighted in, so one straggler batch cannot wipe the mass already
    // folded in. With max_staleness == 0 the anchor is always empty and
    // each apply is a plain FedAvg over the batch — which is exactly the
    // synchronous Eq. 7 when the links add no latency.
    double anchor = 0.0;
    for (std::size_t n = 0; n < edges_.size(); ++n) {
      if (!anchor_valid_[n]) continue;
      bool in_batch = false;
      for (const PendingApply& p : batch) {
        if (p.edge == n) {
          in_batch = true;
          break;
        }
      }
      if (in_batch) continue;
      const std::uint64_t age = round_now - anchor_round_[n];
      if (age > cfg_.comm.max_staleness) continue;
      anchor += anchor_weight_[n] / (1.0 + static_cast<double>(age));
    }
    std::vector<WeightedModel> models;
    models.reserve(batch.size() + 1);
    if (anchor > 0.0) {
      models.push_back(WeightedModel{cloud_.params(), anchor});
    }
    for (const PendingApply& p : batch) {
      models.push_back(WeightedModel{p.payload, p.eff});
    }
    std::vector<float> fresh = SnapshotStore::global().borrow(param_count_);
    communicator_->all_reduce(models, std::span<float>(fresh));
    cloud_.adopt(SnapshotStore::global().seal(std::move(fresh)));
    for (const PendingApply& p : batch) {
      anchor_weight_[p.edge] = p.raw;
      anchor_round_[p.edge] = p.round;
      anchor_valid_[p.edge] = 1;
    }
    ++async_stats_.applies;
    last_sync_contributing_ = batch.size();

    // Push the fresh global model down to the edges — same links, same
    // RNG streams as the barriered sync. Participation is NOT reset here;
    // publish_edge owns that.
    wan_arena_.clear();
    const Snapshot& global_block = cloud_.snapshot();
    const bool down_lossy = wan_down.policy().loss_prob > 0.0;
    const bool down_compressed =
        wan_down.policy().compression.kind != CompressionKind::kNone;
    for (std::size_t n = 0; n < edges_.size(); ++n) {
      parallel::Xoshiro256 rng;
      transport::SendContext ctx;
      ctx.step = t_;
      if (down_lossy) {
        rng = streams_.stream(kWanDownTag, n, t_);
        ctx.rng = &rng;
      }
      if (down_compressed) ctx.arena = &wan_arena_;
      const transport::Delivery down = wan_down.send(cloud_.params(), ctx);
      if (down.delivered) {
        if (down.payload.data() == global_block->span().data()) {
          edges_[n].adopt(global_block);
        } else {
          edges_[n].set_params(down.payload);
        }
      }
      if (serving_sink_ != nullptr) {
        serving_sink_->on_edge_model(n, edges_[n].snapshot());
      }
    }
    // The device broadcast only fires at round boundaries (Algorithm 1's
    // cadence — and the bound=0 zero-latency degeneracy to sync mode).
    // Off-boundary applies propagate lazily through the next edge
    // downloads instead of paying the M-device broadcast: the async
    // mode's per-step saving.
    if (cfg_.broadcast_to_devices && (t_ % cfg_.cloud_interval) == 0) {
      const bool bcast_lossy = broadcast.policy().loss_prob > 0.0;
      const bool bcast_compressed =
          broadcast.policy().compression.kind != CompressionKind::kNone;
      for (std::size_t m = 0; m < registry_.size(); ++m) {
        parallel::Xoshiro256 rng;
        transport::SendContext ctx;
        ctx.step = t_;
        if (bcast_lossy) {
          rng = streams_.stream(kBroadcastTag, m, t_);
          ctx.rng = &rng;
        }
        if (bcast_compressed) ctx.arena = &wan_arena_;
        const transport::Delivery push = broadcast.send(cloud_.params(), ctx);
        if (push.delivered &&
            !install_download(registry_.at(m), push.payload, global_block)) {
          fleet_scan_needed_ = true;
        }
      }
    }
  }

  notify_transfers(StepPhase::kCloudSync, transport::LinkKind::kWanUp,
                   wan_up_delta);
  notify_transfers(StepPhase::kCloudSync, transport::LinkKind::kWanDown,
                   wan_down.stats() - before_down);
  notify_transfers(StepPhase::kCloudSync, transport::LinkKind::kBroadcast,
                   broadcast.stats() - before_bcast);
  if (applied) {
    for (StepObserver* obs : observers_) {
      obs->on_cloud_sync(t_, last_sync_contributing_);
    }
    notify_phase(StepPhase::kCloudSync);
  }
  return applied;
}

void Simulation::finish_step_obs(bool sync,
                                 obs::TraceRecorder::Clock::time_point begin,
                                 double sync_us) {
  const auto end = obs::TraceRecorder::Clock::now();
  const double step_us = elapsed_us(begin, end);
  // Complete the public per-phase breakdown (mobility/membership were
  // recorded by begin_step; the chain phases come from the replayed
  // traces, cross-edge summed).
  last_phase_us_.select = last_events_.phase_us[0];
  last_phase_us_.distribute = last_events_.phase_us[1];
  last_phase_us_.local_train = last_events_.phase_us[2];
  last_phase_us_.upload = last_events_.phase_us[3];
  last_phase_us_.edge_aggregate = last_events_.phase_us[4];
  last_phase_us_.cloud_sync = sync_us;
  std::size_t selected = 0;
  for (const auto& selection : last_selection_) selected += selection.size();
  const std::uint64_t step_materializations =
      registry_.materializations() - prev_materializations_;
  const std::uint64_t resident_peak =
      static_cast<std::uint64_t>(registry_.resident_peak());
  const std::uint64_t delta_bytes = registry_.delta_bytes_at_rest();

  if (obs_.trace != nullptr) {
    obs_.trace->complete("step", "sim", begin, end, t_, "t");
  }
  if (obs_.metrics != nullptr) {
    obs::MetricsRegistry& m = *obs_.metrics;
    m.add(metric_ids_.steps);
    m.add(metric_ids_.selected, static_cast<double>(selected));
    if (last_events_.stragglers > 0) {
      m.add(metric_ids_.stragglers,
            static_cast<double>(last_events_.stragglers));
    }
    if (last_events_.lost_downloads > 0) {
      m.add(metric_ids_.lost_downloads,
            static_cast<double>(last_events_.lost_downloads));
    }
    if (last_events_.blends > 0) {
      m.add(metric_ids_.blends, static_cast<double>(last_events_.blends));
    }
    if (sync) m.add(metric_ids_.cloud_syncs);
    if (step_materializations > 0) {
      m.add(metric_ids_.fleet_materializations,
            static_cast<double>(step_materializations));
    }
    m.set(metric_ids_.fleet_resident, static_cast<double>(resident_peak));
    m.set(metric_ids_.fleet_delta_bytes, static_cast<double>(delta_bytes));
    const comm::CommCounters cc = communicator_->counters();
    if (cc.reduces > prev_comm_counters_.reduces) {
      m.add(metric_ids_.comm_reduces,
            static_cast<double>(cc.reduces - prev_comm_counters_.reduces));
    }
    m.set(metric_ids_.comm_reduce_depth, static_cast<double>(cc.max_depth));
    if (async_stats_.published > prev_async_stats_.published) {
      m.add(metric_ids_.comm_published,
            static_cast<double>(async_stats_.published -
                                prev_async_stats_.published));
    }
    if (async_stats_.applied > prev_async_stats_.applied) {
      m.add(metric_ids_.comm_applied,
            static_cast<double>(async_stats_.applied -
                                prev_async_stats_.applied));
    }
    if (async_stats_.deferred > prev_async_stats_.deferred) {
      m.add(metric_ids_.comm_deferred,
            static_cast<double>(async_stats_.deferred -
                                prev_async_stats_.deferred));
    }
    if (async_stats_.dropped_stale > prev_async_stats_.dropped_stale) {
      m.add(metric_ids_.comm_dropped_stale,
            static_cast<double>(async_stats_.dropped_stale -
                                prev_async_stats_.dropped_stale));
    }
    m.observe(metric_ids_.step_ms, step_us / 1000.0);
  }
  if (obs_.logger != nullptr) {
    obs::StepRecord record;
    record.step = t_;
    record.synced = sync;
    record.selected = selected;
    record.stragglers = last_events_.stragglers;
    record.lost_downloads = last_events_.lost_downloads;
    record.blends = last_events_.blends;
    record.blend_weight_sum = last_events_.blend_weight;
    record.materializations = step_materializations;
    record.resident_peak = resident_peak;
    record.delta_bytes_at_rest = delta_bytes;
    if (sync) record.contributing_edges = last_sync_contributing_;
    record.step_wall_us = step_us;
    record.phase_us = {{"mobility", last_phase_us_.mobility},
                       {"membership", last_phase_us_.membership},
                       {"select", last_events_.phase_us[0]},
                       {"distribute", last_events_.phase_us[1]},
                       {"local_train", last_events_.phase_us[2]},
                       {"upload", last_events_.phase_us[3]},
                       {"edge_aggregate", last_events_.phase_us[4]},
                       {"cloud_sync", sync_us}};
    const auto now_links = transport_->bytes_by_link();
    record.links.reserve(now_links.size());
    for (std::size_t i = 0; i < now_links.size(); ++i) {
      const transport::LinkStats delta =
          i < prev_links_.size() ? now_links[i].stats - prev_links_[i].stats
                                 : now_links[i].stats;
      record.links.push_back(obs::LinkDeltaRecord{
          transport::to_string(now_links[i].kind), delta.transfers,
          delta.dropped, delta.bytes, now_links[i].in_flight});
    }
    obs_.logger->log_step(record);
  }
}

void Simulation::warm_start(std::span<const float> params) {
  if (params.size() != param_count_) {
    throw std::invalid_argument("Simulation::warm_start: size mismatch");
  }
  // One published block shared by every tier, exactly like a lossless
  // broadcast — but out of band: no link is charged.
  const Snapshot snapshot = SnapshotStore::global().publish(params);
  cloud_.adopt(snapshot);
  for (auto& edge : edges_) edge.adopt(snapshot);
  for (std::size_t m = 0; m < registry_.size(); ++m) {
    registry_.at(m).adopt(snapshot);
  }
  if (serving_sink_ != nullptr) {
    for (std::size_t n = 0; n < edges_.size(); ++n) {
      serving_sink_->on_edge_model(n, edges_[n].snapshot());
    }
  }
}

double Simulation::current_edge_skew() const {
  const std::size_t classes =
      registry_.at(0).data().base().num_classes();
  std::vector<std::vector<std::size_t>> histograms(
      edges_.size(), std::vector<std::size_t>(classes, 0));
  const auto& assignment = mobility_->assignment();
  for (std::size_t m = 0; m < registry_.size(); ++m) {
    const auto device_hist = registry_.at(m).data().class_histogram();
    auto& edge_hist = histograms[assignment[m]];
    for (std::size_t c = 0; c < classes; ++c) {
      edge_hist[c] += device_hist[c];
    }
  }
  return mean_edge_skew(histograms);
}

const EvalPoint& Simulation::evaluate_now() {
  const bool observed = obs_.enabled();
  obs::TraceRecorder::Clock::time_point eval_begin{};
  if (observed) eval_begin = obs::TraceRecorder::Clock::now();
  EvalPoint point;
  point.step = t_;
  const EvalResult result =
      evaluator_->evaluate(cloud_.params(), cfg_.eval_samples);
  point.accuracy = result.accuracy;
  point.loss = result.loss;
  if (cfg_.track_per_class) {
    point.per_class_accuracy = evaluator_->per_class_accuracy(cloud_.params());
  }
  if (cfg_.track_edge_accuracy && cfg_.eval_edges) {
    point.edge_accuracy.reserve(edges_.size());
    for (const auto& edge : edges_) {
      point.edge_accuracy.push_back(
          evaluator_->evaluate(edge.params(), cfg_.eval_samples).accuracy);
    }
  }
  history_.points.push_back(std::move(point));
  const EvalPoint& recorded = history_.points.back();
  for (StepObserver* obs : observers_) obs->on_evaluation(recorded);
  if (observed) {
    const auto eval_end = obs::TraceRecorder::Clock::now();
    const double wall_us = elapsed_us(eval_begin, eval_end);
    if (obs_.trace != nullptr) {
      obs_.trace->complete("evaluate", "eval", eval_begin, eval_end, t_, "t");
    }
    if (obs_.metrics != nullptr) obs_.metrics->add(metric_ids_.evaluations);
    if (obs_.logger != nullptr) {
      obs_.logger->log_eval(obs::EvalRecord{recorded.step, recorded.accuracy,
                                            recorded.loss, wall_us});
    }
  }
  return recorded;
}

RunHistory Simulation::run(
    const std::function<void(const EvalPoint&)>& progress) {
  if (t_ == 0) {
    // Record the starting point so curves begin at the common init.
    const auto& point = evaluate_now();
    if (progress) progress(point);
  }
  while (t_ < cfg_.total_steps) {
    step();
    if (t_ % cfg_.eval_every == 0 || t_ == cfg_.total_steps) {
      const auto& point = evaluate_now();
      if (progress) progress(point);
    }
  }
  return history_;
}

}  // namespace middlefl::core
