// Algorithm policies: the (device-selection, on-device-initialization)
// pairs evaluated in the paper (§6.1.3).
//
//   MIDDLE    similarity selection (Eq. 12)  + similarity blend (Eq. 9)
//   OORT      Oort statistical utility       + plain edge download
//   FedMes    random selection               + average of the previous and
//                                              current EDGE models (moved
//                                              devices act as the "overlap")
//   Greedy    Oort statistical utility       + keep the carried local model
//   Ensemble  Oort statistical utility       + plain 1/2-1/2 average of the
//                                              edge and local model
//   HierFAVG  random selection               + plain edge download
//                                              (the "General" baseline of §2)
//
// The on-device rule fires ONLY for devices that entered the edge in this
// time step (Algorithm 1, line 4); everyone else starts local training from
// the freshly downloaded edge model.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/selection.hpp"

namespace middlefl::core {

enum class OnDeviceRule {
  kDownloadEdge,     // w_hat = w_n
  kKeepLocal,        // w_hat = w_m                       (Greedy)
  kPlainAverage,     // w_hat = (w_n + w_m) / 2           (Ensemble, Fig. 2)
  kSimilarityBlend,  // Eq. 9                             (MIDDLE)
  kFixedAlpha,       // w_hat = a*w_n + (1-a)*w_m         (Theorem 1 ablation)
  kPrevEdgeAverage,  // w_hat = (w_n + w_prev_edge) / 2   (FedMes)
  kSignedBlend,      // Eq. 9 without the clamp (ablation of max(.,0))
};

std::string to_string(OnDeviceRule rule);

enum class Algorithm { kMiddle, kOort, kFedMes, kGreedy, kEnsemble, kHierFavg };

std::string to_string(Algorithm algorithm);
Algorithm parse_algorithm(const std::string& name);

/// The standard set compared in Figs. 6-7, in the paper's plotting order.
inline constexpr Algorithm kAllAlgorithms[] = {
    Algorithm::kMiddle, Algorithm::kOort, Algorithm::kFedMes,
    Algorithm::kGreedy, Algorithm::kEnsemble};

struct AlgorithmSpec {
  std::string name;
  std::unique_ptr<SelectionStrategy> selection;
  OnDeviceRule on_move = OnDeviceRule::kDownloadEdge;
  /// Blend coefficient for kFixedAlpha.
  double fixed_alpha = 0.5;
};

/// Builds the named policy.
AlgorithmSpec make_algorithm(Algorithm algorithm);

/// String-keyed registry entry point: make_algorithm("fedmes"). Accepts
/// anything parse_algorithm does (case-insensitive; "general" is an alias
/// of hierfavg); throws std::invalid_argument otherwise.
AlgorithmSpec make_algorithm(const std::string& name);

/// Canonical registry keys for all six Algorithm values, in enum order —
/// what --list-algorithms prints and what sweep axes reference.
const std::vector<std::string>& algorithm_names();

/// Applies the on-device initialization rule, writing w_hat into `out`.
/// `prev_edge_params` is only consulted by kPrevEdgeAverage and may be
/// empty otherwise. Returns the weight effectively given to the non-edge
/// component (0 for kDownloadEdge, 1 for kKeepLocal, U/(1+U) for the
/// similarity blend, ...), which benches log to study the blend dynamics.
double apply_on_device_rule(OnDeviceRule rule,
                            std::span<const float> edge_params,
                            std::span<const float> local_params,
                            std::span<const float> prev_edge_params,
                            double fixed_alpha, std::span<float> out);

}  // namespace middlefl::core
