// Communication accounting for the three-layer hierarchy.
//
// HFL exists to trade wide-area (cloud) traffic for cheap edge-local
// traffic; the counters below let benches report that trade-off per
// algorithm. One "model transfer" = one model crossing a link — attempts,
// including transfers later dropped by a loss policy. MIDDLE's on-device
// aggregation is free: the carried local model is already on the device
// (the transport layer's carry link counts it separately and charges zero
// bytes) — only FedMes pays an extra edge download for its overlap trick.
//
// Since the transport refactor this struct is derived state: Simulation
// rebuilds it from pipeline transfer events (CommStatsObserver in
// step_observer.hpp). Real wire-byte accounting — per link, loss- and
// compression-aware — lives in transport::Transport::bytes_by_link().
#pragma once

#include <cstddef>

namespace middlefl::core {

struct CommStats {
  /// Edge -> device model downloads (every selected device, plus FedMes'
  /// extra previous-edge download).
  std::size_t device_downloads = 0;
  /// Device -> edge model uploads (every selected device).
  std::size_t device_uploads = 0;
  /// Edge -> cloud uploads at synchronization points.
  std::size_t edge_uploads = 0;
  /// Cloud -> edge model pushes at synchronization points.
  std::size_t edge_downloads = 0;
  /// Cloud -> device broadcast pushes at synchronization points.
  std::size_t device_broadcasts = 0;

  std::size_t total_transfers() const noexcept {
    return device_downloads + device_uploads + edge_uploads +
           edge_downloads + device_broadcasts;
  }

  /// Wireless (device <-> edge) transfers.
  std::size_t wireless_transfers() const noexcept {
    return device_downloads + device_uploads + device_broadcasts;
  }

  /// Wide-area (edge <-> cloud) transfers — the expensive link HFL tries
  /// to minimize.
  std::size_t wan_transfers() const noexcept {
    return edge_uploads + edge_downloads;
  }

  /// Nominal bytes for a model of `param_count` float32 parameters,
  /// assuming every counted transfer carried the full uncompressed model.
  /// This is the algorithm-comparison figure of merit (all baselines pay
  /// the same per-transfer cost); for actual wire bytes under loss,
  /// compression or latency policies, read
  /// Simulation::transport().bytes_by_link() instead.
  std::size_t total_bytes(std::size_t param_count) const noexcept {
    return total_transfers() * param_count * sizeof(float);
  }

  CommStats& operator+=(const CommStats& other) noexcept {
    device_downloads += other.device_downloads;
    device_uploads += other.device_uploads;
    edge_uploads += other.edge_uploads;
    edge_downloads += other.edge_downloads;
    device_broadcasts += other.device_broadcasts;
    return *this;
  }
};

}  // namespace middlefl::core
