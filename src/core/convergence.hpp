// Numerical evaluation of the Theorem-1 convergence bound and the Remark-1
// sensitivity analysis.
//
//   E[F(w_c^{T+1})] - F(w_c*)
//     <= beta/(gamma + T + 1) * ( 2B/mu^2 + (gamma+1)/2 * E|w(1) - w*|^2 )
//        + 8 beta I^2 G^2 / (mu^2 gamma^2 alpha (1 - alpha) P),
//
// with gamma = max(8 beta / mu, I), B = sum_m h_m^2 sigma_m^2 + 6 beta Gamma
// and the diminishing step size eta_t = 2 / (mu (gamma + t)).
#pragma once

#include <cstddef>
#include <vector>

namespace middlefl::core {

struct Theorem1Params {
  double beta = 1.0;   // Lipschitz smoothness (Assumption 1)
  double mu = 0.1;     // strong convexity (Assumption 2)
  double big_g = 1.0;  // gradient norm bound G (Assumption 4)
  /// B = sum_m h_m^2 sigma_m^2 + 6 beta Gamma (variance + heterogeneity).
  double big_b = 1.0;
  std::size_t local_steps = 10;  // I
  double alpha = 0.5;            // fixed on-device blend coefficient
  double mobility = 0.5;         // global mobility P in (0, 1]
  std::size_t horizon = 1000;    // T
  /// E[|w(1) - w*|^2], distance of the initial model from the optimum.
  double init_distance_sq = 1.0;
};

/// gamma = max(8 beta / mu, I).
double theorem1_gamma(const Theorem1Params& p);

/// eta_t = 2 / (mu (gamma + t)).
double theorem1_lr(const Theorem1Params& p, std::size_t t);

/// The full right-hand side of Eq. (17). Throws std::invalid_argument when
/// a parameter leaves its admissible range (alpha in (0,1), P in (0,1],
/// beta, mu, G, B positive).
double theorem1_bound(const Theorem1Params& p);

/// Only the mobility term 8 beta I^2 G^2 / (mu^2 gamma^2 alpha(1-alpha) P).
double theorem1_mobility_term(const Theorem1Params& p);

/// d(bound)/dP = -8 beta I^2 G^2 / (mu^2 gamma^2 alpha(1-alpha) P^2)
/// (Eq. 20) — strictly negative on the admissible range, i.e. more mobility
/// always tightens the bound (Remark 1).
double theorem1_dbound_dmobility(const Theorem1Params& p);

/// Helper computing B from per-device weights h_m, gradient variances
/// sigma_m^2 and the heterogeneity gap Gamma = F* - sum h_m F_m*.
double theorem1_big_b(const std::vector<double>& h,
                      const std::vector<double>& sigma_sq, double beta,
                      double gamma_gap);

}  // namespace middlefl::core
