#include "core/entities.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "data/sampler.hpp"
#include "nn/loss.hpp"

namespace middlefl::core {

Device::Device(std::size_t id, data::DataView data,
               std::unique_ptr<nn::Sequential> model,
               std::unique_ptr<optim::Optimizer> optimizer)
    : id_(id),
      data_(std::move(data)),
      model_(std::move(model)),
      optimizer_(std::move(optimizer)) {
  if (model_ == nullptr || !model_->built()) {
    throw std::invalid_argument("Device: model must be built");
  }
  if (optimizer_ == nullptr) {
    throw std::invalid_argument("Device: null optimizer");
  }
  if (data_.empty()) {
    throw std::invalid_argument("Device " + std::to_string(id) +
                                ": empty data partition");
  }
}

void Device::adopt(Snapshot snapshot) {
  if (snapshot == nullptr) {
    throw std::invalid_argument("Device::adopt: null snapshot");
  }
  if (snapshot->size() != model_->param_count()) {
    throw std::invalid_argument("Device::adopt: size mismatch");
  }
  shared_ = std::move(snapshot);
  params_version_ = shared_->version();
}

DeviceTrainStats Device::train(std::size_t local_steps,
                               std::size_t batch_size, double learning_rate,
                               bool reset_optimizer,
                               parallel::Xoshiro256& rng, double prox_mu,
                               double clip_norm) {
  if (local_steps == 0 || batch_size == 0) {
    throw std::invalid_argument("Device::train: steps and batch must be positive");
  }
  if (prox_mu < 0.0 || clip_norm < 0.0) {
    throw std::invalid_argument(
        "Device::train: prox_mu and clip_norm must be non-negative");
  }
  if (reset_optimizer) optimizer_->reset();
  optimizer_->set_learning_rate(learning_rate);
  // Copy-on-write: local SGD is the first write after an adopted download,
  // so the private model buffer materializes here.
  materialize();

  // FedProx anchor: the round's starting parameters.
  std::vector<float> anchor;
  if (prox_mu > 0.0) {
    anchor.assign(model_->parameters().begin(), model_->parameters().end());
  }

  DeviceTrainStats stats;
  std::vector<float> sample_losses(batch_size);
  double loss_acc = 0.0;
  for (std::size_t step = 0; step < local_steps; ++step) {
    data::sample_minibatch_into(data_, batch_size, rng, batch_scratch_);
    const auto& batch = batch_scratch_;
    const nn::Tensor& logits = model_->forward(batch.features, true);
    auto result = nn::softmax_cross_entropy(logits, batch.labels);
    loss_acc += result.loss;

    if (step + 1 == local_steps) {
      // Per-sample losses on the final batch feed the Oort utility; the
      // logits are already computed, so this costs one softmax pass.
      nn::per_example_cross_entropy(logits, batch.labels, sample_losses);
      double sq = 0.0;
      for (float l : sample_losses) sq += static_cast<double>(l) * l;
      stats.mean_sq_loss = sq / static_cast<double>(batch_size);
    }

    model_->zero_grad();
    model_->backward(result.grad_logits);
    if (prox_mu > 0.0) {
      // grad += mu (w - w_anchor): the FedProx proximal gradient.
      auto params = model_->parameters();
      auto grads = model_->gradients();
      const auto mu = static_cast<float>(prox_mu);
      for (std::size_t i = 0; i < params.size(); ++i) {
        grads[i] += mu * (params[i] - anchor[i]);
      }
    }
    if (clip_norm > 0.0) {
      auto grads = model_->gradients();
      double norm_sq = 0.0;
      for (float g : grads) norm_sq += static_cast<double>(g) * g;
      const double norm = std::sqrt(norm_sq);
      if (norm > clip_norm) {
        const auto scale = static_cast<float>(clip_norm / norm);
        for (float& g : grads) g *= scale;
      }
    }
    optimizer_->step(model_->parameters(), model_->gradients());
  }
  stats.batches = local_steps;
  stats.mean_loss = loss_acc / static_cast<double>(local_steps);

  // Oort: U_stat = |B| * sqrt( (1/|B|) sum loss^2 ), with |B| = d_m.
  stat_utility_ = static_cast<double>(data_size()) *
                  std::sqrt(std::max(0.0, stats.mean_sq_loss));
  // Local SGD moved w_m: cached selection scores are stale.
  params_version_ = SnapshotStore::global().next_version();
  return stats;
}

Edge::Edge(std::size_t id, std::size_t param_count) : id_(id) {
  const std::vector<float> zeros(param_count, 0.0f);
  snapshot_ = SnapshotStore::global().publish(zeros);
}

void Edge::set_params(std::span<const float> params) {
  if (params.size() != snapshot_->size()) {
    throw std::invalid_argument("Edge::set_params: size mismatch");
  }
  snapshot_ = SnapshotStore::global().publish(params);
}

void Edge::adopt(Snapshot snapshot) {
  if (snapshot == nullptr) {
    throw std::invalid_argument("Edge::adopt: null snapshot");
  }
  if (snapshot->size() != snapshot_->size()) {
    throw std::invalid_argument("Edge::adopt: size mismatch");
  }
  snapshot_ = std::move(snapshot);
}

Cloud::Cloud(std::size_t param_count) {
  const std::vector<float> zeros(param_count, 0.0f);
  snapshot_ = SnapshotStore::global().publish(zeros);
}

void Cloud::set_params(std::span<const float> params) {
  if (params.size() != snapshot_->size()) {
    throw std::invalid_argument("Cloud::set_params: size mismatch");
  }
  snapshot_ = SnapshotStore::global().publish(params);
}

void Cloud::adopt(Snapshot snapshot) {
  if (snapshot == nullptr) {
    throw std::invalid_argument("Cloud::adopt: null snapshot");
  }
  if (snapshot->size() != snapshot_->size()) {
    throw std::invalid_argument("Cloud::adopt: size mismatch");
  }
  snapshot_ = std::move(snapshot);
}

}  // namespace middlefl::core
