#include "core/entities.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/fleet.hpp"
#include "data/sampler.hpp"
#include "nn/loss.hpp"

namespace middlefl::core {

Device::Device(std::size_t id, data::DataView data,
               std::unique_ptr<nn::Sequential> model,
               std::unique_ptr<optim::Optimizer> optimizer)
    : id_(id),
      data_(std::move(data)),
      model_(std::move(model)),
      optimizer_(std::move(optimizer)) {
  if (model_ == nullptr || !model_->built()) {
    throw std::invalid_argument("Device: model must be built");
  }
  if (optimizer_ == nullptr) {
    throw std::invalid_argument("Device: null optimizer");
  }
  if (data_.empty()) {
    throw std::invalid_argument("Device " + std::to_string(id) +
                                ": empty data partition");
  }
}

Device::Device(std::size_t id, data::DataView data, Snapshot base,
               DeviceRegistry* fleet)
    : id_(id), data_(std::move(data)), fleet_(fleet) {
  if (fleet_ == nullptr) {
    throw std::invalid_argument("Device: null registry for lazy device");
  }
  if (base == nullptr) {
    throw std::invalid_argument("Device: lazy device needs a base snapshot");
  }
  if (data_.empty()) {
    throw std::invalid_argument("Device " + std::to_string(id) +
                                ": empty data partition");
  }
  param_count_ = base->size();
  base_ = base;
  shared_ = std::move(base);
  params_version_ = shared_->version();
}

nn::Sequential& Device::model() {
  if (fleet_ != nullptr) {
    throw std::logic_error("Device::model: lazy devices have no private model");
  }
  materialize();
  return *model_;
}

std::span<const float> Device::params() const {
  if (shared_) return shared_->span();
  if (fleet_ == nullptr) return model_->parameters();
  if (!has_resident_) decode_resident();
  return resident_.data();
}

void Device::set_params(std::span<const float> params) {
  if (fleet_ == nullptr) {
    model_->set_parameters(params);
    shared_.reset();
    params_version_ = SnapshotStore::global().next_version();
    return;
  }
  if (params.size() != param_count_) {
    throw std::invalid_argument("Device::set_params: size mismatch");
  }
  const std::span<float> dst = ensure_resident_for_overwrite();
  std::copy(params.begin(), params.end(), dst.begin());
  dirty_ = true;
  shared_.reset();
  if (delta_valid_) invalidate_delta();
  params_version_ = SnapshotStore::global().next_version();
}

void Device::adopt(Snapshot snapshot) {
  if (snapshot == nullptr) {
    throw std::invalid_argument("Device::adopt: null snapshot");
  }
  if (snapshot->size() != param_count()) {
    throw std::invalid_argument("Device::adopt: size mismatch");
  }
  if (fleet_ != nullptr) {
    // The snapshot supersedes every divergence: return the pooled state
    // and rebase the (now empty) delta on the new block.
    if (has_resident_) {
      fleet_->release_resident(id_, std::move(resident_));
      resident_ = tensor::Tensor{};
      has_resident_ = false;
    }
    if (delta_valid_) invalidate_delta();
    if (delta_ != nullptr) fleet_->release_delta(id_, std::move(delta_));
    dirty_ = false;
    base_ = snapshot;
  }
  shared_ = std::move(snapshot);
  params_version_ = shared_->version();
}

std::span<float> Device::ensure_resident_for_overwrite() {
  if (!has_resident_) {
    resident_ = fleet_->acquire_resident(id_);
    has_resident_ = true;
  }
  // reset_for_overwrite: size without the zero-fill the caller's copy or
  // decode would immediately overwrite.
  resident_.reset_for_overwrite({param_count_});
  return resident_.data();
}

void Device::decode_resident() const {
  if (!delta_valid_) {
    throw std::logic_error("Device: no state to materialize (id " +
                           std::to_string(id_) + ")");
  }
  if (!has_resident_) {
    resident_ = fleet_->acquire_resident(id_);
    has_resident_ = true;
  }
  resident_.reset_for_overwrite({param_count_});
  const std::span<float> out = resident_.data();
  if (delta_->kind == transport::CompressionKind::kNone) {
    // Lossless mode stores the parameters verbatim.
    transport::decode_delta_into(*delta_, out);
  } else {
    transport::decode_delta_onto(*delta_, base_->span(), out);
  }
}

void Device::invalidate_delta() noexcept {
  fleet_->add_delta_bytes(-static_cast<std::int64_t>(delta_->bytes()));
  delta_valid_ = false;
}

void Device::settle() {
  if (fleet_ == nullptr || !has_resident_) return;
  if (dirty_) {
    if (delta_ == nullptr) delta_ = fleet_->acquire_delta(id_);
    const std::size_t old_bytes = delta_valid_ ? delta_->bytes() : 0;
    const transport::CompressionConfig& at_rest = fleet_->config().at_rest;
    const std::span<float> values = resident_.data();
    if (at_rest.kind == transport::CompressionKind::kNone) {
      // Verbatim storage: decode reproduces these exact bits, keeping
      // lazy-mode runs bitwise identical to the eager path.
      transport::encode_delta(values, at_rest, *delta_);
    } else {
      // Quantized at rest: encode w - base in place (the buffer is about
      // to be returned anyway). The settled parameters are now the lossy
      // reconstruction — a content change, so the version must move.
      const std::span<const float> base = base_->span();
      for (std::size_t i = 0; i < values.size(); ++i) values[i] -= base[i];
      transport::encode_delta(values, at_rest, *delta_);
      params_version_ = SnapshotStore::global().next_version();
    }
    delta_valid_ = true;
    fleet_->add_delta_bytes(static_cast<std::int64_t>(delta_->bytes()) -
                            static_cast<std::int64_t>(old_bytes));
    dirty_ = false;
  }
  fleet_->release_resident(id_, std::move(resident_));
  resident_ = tensor::Tensor{};
  has_resident_ = false;
}

void Device::release_fleet_state() noexcept {
  if (fleet_ == nullptr) return;
  if (has_resident_) {
    fleet_->release_resident(id_, std::move(resident_));
    resident_ = tensor::Tensor{};
    has_resident_ = false;
  }
  if (delta_valid_) invalidate_delta();
  if (delta_ != nullptr) fleet_->release_delta(id_, std::move(delta_));
  dirty_ = false;
  shared_.reset();
  base_.reset();
}

DeviceTrainStats Device::train(std::size_t local_steps,
                               std::size_t batch_size, double learning_rate,
                               bool reset_optimizer,
                               parallel::Xoshiro256& rng, double prox_mu,
                               double clip_norm, DeviceRuntime* runtime) {
  if (local_steps == 0 || batch_size == 0) {
    throw std::invalid_argument("Device::train: steps and batch must be positive");
  }
  if (prox_mu < 0.0 || clip_norm < 0.0) {
    throw std::invalid_argument(
        "Device::train: prox_mu and clip_norm must be non-negative");
  }

  DeviceTrainStats stats;
  if (fleet_ == nullptr) {
    if (reset_optimizer) optimizer_->reset();
    optimizer_->set_learning_rate(learning_rate);
    // Copy-on-write: local SGD is the first write after an adopted
    // download, so the private model buffer materializes here.
    materialize();
    stats = run_local_sgd(*model_, *optimizer_, batch_scratch_, local_steps,
                          batch_size, rng, prox_mu, clip_norm);
  } else {
    DeviceRuntime* acquired = nullptr;
    DeviceRuntime* rt = runtime;
    if (rt == nullptr) {
      acquired = fleet_->acquire_runtime();
      rt = acquired;
    }
    try {
      nn::Sequential& model = rt->model();
      optim::Optimizer& optimizer = rt->optimizer();
      if (reset_optimizer) {
        optimizer.reset();
        opt_state_.clear();
        has_opt_state_ = false;
      } else if (has_opt_state_) {
        optimizer.load_state(opt_state_);
      } else {
        optimizer.reset();
      }
      optimizer.set_learning_rate(learning_rate);
      // Materialize into the pooled runtime (decodes the at-rest delta
      // when the device is settled-diverged).
      model.set_parameters(params());
      const bool dropout = fleet_->model_has_dropout();
      if (dropout) {
        if (!dropout_seeded_) {
          // Every model clone starts from the canonical initial stream, so
          // a virtual device's first round matches an eager device's.
          dropout_rng_ = fleet_->initial_dropout_rng();
          dropout_seeded_ = true;
        }
        model.set_dropout_rng(dropout_rng_);
      }
      stats = run_local_sgd(model, optimizer, rt->batch(), local_steps,
                            batch_size, rng, prox_mu, clip_norm);
      // Copy the trained parameters back into resident state; settle()
      // de-materializes them to snapshot + delta after the upload.
      const std::span<float> dst = ensure_resident_for_overwrite();
      const std::span<const float> trained = model.parameters();
      std::copy(trained.begin(), trained.end(), dst.begin());
      dirty_ = true;
      shared_.reset();
      if (delta_valid_) invalidate_delta();
      if (dropout) dropout_rng_ = model.dropout_rng();
      if (!reset_optimizer) {
        optimizer.save_state(opt_state_);
        has_opt_state_ = true;
      }
    } catch (...) {
      if (acquired != nullptr) fleet_->release_runtime(acquired);
      throw;
    }
    if (acquired != nullptr) fleet_->release_runtime(acquired);
  }

  // Oort: U_stat = |B| * sqrt( (1/|B|) sum loss^2 ), with |B| = d_m.
  stat_utility_ = static_cast<double>(data_size()) *
                  std::sqrt(std::max(0.0, stats.mean_sq_loss));
  // Local SGD moved w_m: cached selection scores are stale.
  params_version_ = SnapshotStore::global().next_version();
  return stats;
}

DeviceTrainStats Device::run_local_sgd(nn::Sequential& model,
                                       optim::Optimizer& optimizer,
                                       data::Minibatch& batch_scratch,
                                       std::size_t local_steps,
                                       std::size_t batch_size,
                                       parallel::Xoshiro256& rng,
                                       double prox_mu, double clip_norm) {
  // FedProx anchor: the round's starting parameters.
  std::vector<float> anchor;
  if (prox_mu > 0.0) {
    anchor.assign(model.parameters().begin(), model.parameters().end());
  }

  DeviceTrainStats stats;
  std::vector<float> sample_losses(batch_size);
  double loss_acc = 0.0;
  for (std::size_t step = 0; step < local_steps; ++step) {
    data::sample_minibatch_into(data_, batch_size, rng, batch_scratch);
    const auto& batch = batch_scratch;
    const nn::Tensor& logits = model.forward(batch.features, true);
    auto result = nn::softmax_cross_entropy(logits, batch.labels);
    loss_acc += result.loss;

    if (step + 1 == local_steps) {
      // Per-sample losses on the final batch feed the Oort utility; the
      // logits are already computed, so this costs one softmax pass.
      nn::per_example_cross_entropy(logits, batch.labels, sample_losses);
      double sq = 0.0;
      for (float l : sample_losses) sq += static_cast<double>(l) * l;
      stats.mean_sq_loss = sq / static_cast<double>(batch_size);
    }

    model.zero_grad();
    model.backward(result.grad_logits);
    if (prox_mu > 0.0) {
      // grad += mu (w - w_anchor): the FedProx proximal gradient.
      auto params = model.parameters();
      auto grads = model.gradients();
      const auto mu = static_cast<float>(prox_mu);
      for (std::size_t i = 0; i < params.size(); ++i) {
        grads[i] += mu * (params[i] - anchor[i]);
      }
    }
    if (clip_norm > 0.0) {
      auto grads = model.gradients();
      double norm_sq = 0.0;
      for (float g : grads) norm_sq += static_cast<double>(g) * g;
      const double norm = std::sqrt(norm_sq);
      if (norm > clip_norm) {
        const auto scale = static_cast<float>(clip_norm / norm);
        for (float& g : grads) g *= scale;
      }
    }
    optimizer.step(model.parameters(), model.gradients());
  }
  stats.batches = local_steps;
  stats.mean_loss = loss_acc / static_cast<double>(local_steps);
  return stats;
}

Edge::Edge(std::size_t id, std::size_t param_count) : id_(id) {
  const std::vector<float> zeros(param_count, 0.0f);
  snapshot_ = SnapshotStore::global().publish(zeros);
}

void Edge::set_params(std::span<const float> params) {
  if (params.size() != snapshot_->size()) {
    throw std::invalid_argument("Edge::set_params: size mismatch");
  }
  snapshot_ = SnapshotStore::global().publish(params);
}

void Edge::adopt(Snapshot snapshot) {
  if (snapshot == nullptr) {
    throw std::invalid_argument("Edge::adopt: null snapshot");
  }
  if (snapshot->size() != snapshot_->size()) {
    throw std::invalid_argument("Edge::adopt: size mismatch");
  }
  snapshot_ = std::move(snapshot);
}

Cloud::Cloud(std::size_t param_count) {
  const std::vector<float> zeros(param_count, 0.0f);
  snapshot_ = SnapshotStore::global().publish(zeros);
}

void Cloud::set_params(std::span<const float> params) {
  if (params.size() != snapshot_->size()) {
    throw std::invalid_argument("Cloud::set_params: size mismatch");
  }
  snapshot_ = SnapshotStore::global().publish(params);
}

void Cloud::adopt(Snapshot snapshot) {
  if (snapshot == nullptr) {
    throw std::invalid_argument("Cloud::adopt: null snapshot");
  }
  if (snapshot->size() != snapshot_->size()) {
    throw std::invalid_argument("Cloud::adopt: size mismatch");
  }
  snapshot_ = std::move(snapshot);
}

}  // namespace middlefl::core
