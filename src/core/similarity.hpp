// The similarity utility (paper Eq. 8) and the model-blend / selection
// formulas built on it (Eq. 9-12). All functions operate on flat parameter
// vectors.
#pragma once

#include <span>
#include <vector>

namespace middlefl::core {

/// Cosine similarity <a, b> / (|a||b|); 0 when either vector is zero.
double cosine_similarity(std::span<const float> a, std::span<const float> b);

/// Similarity utility U(a, b) = max(cos(a, b), 0)   [Eq. 8]
/// The clamp stops "blind aggregation" of models whose gradient directions
/// oppose each other from injecting noise.
double similarity_utility(std::span<const float> a, std::span<const float> b);

/// On-device model aggregation [Eq. 9]:
///   w_hat = 1/(1+U) * w_edge + U/(1+U) * w_local,  U = U(w_local, w_edge).
/// The result is dominated by the current edge model but imports the
/// complementary knowledge carried in the local model. Returns the blend
/// weight U/(1+U) given to the local model (useful for logging/ablation).
double on_device_aggregate(std::span<const float> edge_model,
                           std::span<const float> local_model,
                           std::span<float> out);

/// Ablation variant of Eq. 9 WITHOUT the max(.,0) clamp: u is the raw
/// cosine, bounded below at -0.5 so the weights stay finite. Anti-aligned
/// carried models then enter with NEGATIVE weight — the noise-injection
/// failure mode the clamp exists to prevent (DESIGN.md ablation 2).
double on_device_aggregate_signed(std::span<const float> edge_model,
                                  std::span<const float> local_model,
                                  std::span<float> out);

/// Fixed-coefficient variant used by the Theorem-1 analysis:
///   w_hat = (1 - alpha) * w_local + alpha * w_edge,  alpha in (0, 1).
void on_device_aggregate_fixed(std::span<const float> edge_model,
                               std::span<const float> local_model,
                               double alpha, std::span<float> out);

/// Accumulated update Delta_w = w_local - w_cloud   [Eq. 10]
std::vector<float> accumulated_update(std::span<const float> local_model,
                                      std::span<const float> cloud_model);

/// The three reductions Eq. 11 needs, computed in ONE sweep over the two
/// parameter vectors without materializing Delta_w: <w_c, w_m - w_c>,
/// |w_m - w_c|^2 and |w_c|^2. This is the allocation-free fast path under
/// selection scoring (every candidate device, every edge, every step).
struct DeltaSimilarityStats {
  double dot_cloud_delta = 0.0;  // <w_c, Delta_w>
  double delta_norm_sq = 0.0;    // |Delta_w|^2
  double cloud_norm_sq = 0.0;    // |w_c|^2
};
DeltaSimilarityStats delta_similarity_stats(std::span<const float> cloud_model,
                                            std::span<const float> local_model);

/// Eq. 11 utility from precomputed fused stats: max(cos(w_c, Delta_w), 0),
/// 0 when either vector is zero.
double selection_utility_from_stats(const DeltaSimilarityStats& stats);

/// Selection utility U(w_c, Delta_w_m) [Eq. 11]: similarity of the device's
/// accumulated update direction to the (proxy of the) optimal cloud model.
/// MIDDLE selects the K devices with the HIGHEST -U, i.e. the least similar
/// ones — their data is least learned by the global model [Eq. 12].
/// Computed via the fused one-pass kernel (no Delta_w materialization).
double selection_utility(std::span<const float> cloud_model,
                         std::span<const float> local_model);

/// Reference implementation of Eq. 11 that materializes Delta_w and runs
/// the separate dot/nrm2 reductions. Kept for regression tests and the
/// micro-benchmark that tracks the fused kernel's advantage.
double selection_utility_reference(std::span<const float> cloud_model,
                                   std::span<const float> local_model);

}  // namespace middlefl::core
