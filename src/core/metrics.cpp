#include "core/metrics.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <cmath>
#include <stdexcept>

#include "data/sampler.hpp"
#include "parallel/parallel_for.hpp"
#include "util/csv.hpp"
#include "nn/loss.hpp"

namespace middlefl::core {

Evaluator::Evaluator(std::unique_ptr<nn::Sequential> model,
                     data::DataView test_data, std::size_t batch_size)
    : model_(std::move(model)),
      test_(std::move(test_data)),
      batch_size_(batch_size) {
  if (model_ == nullptr || !model_->built()) {
    throw std::invalid_argument("Evaluator: model must be built");
  }
  if (test_.empty()) {
    throw std::invalid_argument("Evaluator: empty test set");
  }
  if (batch_size_ == 0) {
    throw std::invalid_argument("Evaluator: batch size must be positive");
  }
}

EvalResult Evaluator::evaluate_view(std::span<const float> params,
                                    const data::DataView& view) {
  const std::size_t num_batches =
      (view.size() + batch_size_ - 1) / batch_size_;
  if (pool_ != nullptr && pool_->size() > 1 && num_batches >= 2 &&
      !parallel::ThreadPool::in_worker()) {
    return evaluate_view_sharded(params, view, num_batches);
  }
  obs::TraceSpan span(trace_, "eval-sweep", "eval", view.size(), "samples");
  model_->set_parameters(params);
  EvalResult result;
  result.samples = view.size();
  double loss_acc = 0.0;
  std::size_t correct = 0;
  for (const auto& batch : data::sequential_batches(view.size(), batch_size_)) {
    const auto features = view.gather(batch);
    const auto labels = view.gather_labels(batch);
    const nn::Tensor& logits = model_->forward(features, false);
    loss_acc += static_cast<double>(nn::cross_entropy_value(logits, labels)) *
                static_cast<double>(labels.size());
    correct += nn::count_correct(logits, labels);
  }
  result.loss = loss_acc / static_cast<double>(view.size());
  result.accuracy =
      static_cast<double>(correct) / static_cast<double>(view.size());
  return result;
}

std::unique_ptr<nn::Sequential> Evaluator::acquire_worker_model() {
  {
    std::lock_guard lock(spares_mutex_);
    if (!spares_.empty()) {
      auto model = std::move(spares_.back());
      spares_.pop_back();
      return model;
    }
  }
  return model_->clone();  // clone() copies the architecture; cheap vs a batch
}

void Evaluator::release_worker_model(std::unique_ptr<nn::Sequential> model) {
  std::lock_guard lock(spares_mutex_);
  spares_.push_back(std::move(model));
}

EvalResult Evaluator::evaluate_view_sharded(std::span<const float> params,
                                            const data::DataView& view,
                                            std::size_t num_batches) {
  // Fixed-size batch shards, one stat slot per batch. Each slot holds the
  // exact terms the serial loop would add for that batch, and the reduction
  // below walks the slots in batch order — so the summed loss is the same
  // sequence of double additions as the serial sweep, i.e. bitwise equal.
  struct BatchStats {
    double loss_term = 0.0;
    std::size_t correct = 0;
  };
  std::vector<BatchStats> stats(num_batches);
  parallel::parallel_for(
      *pool_, 0, num_batches,
      [&](std::size_t b) {
        obs::TraceSpan span(trace_, "eval-shard", "eval", b, "batch");
        const std::size_t start = b * batch_size_;
        const std::size_t end = std::min(view.size(), start + batch_size_);
        std::vector<std::size_t> positions(end - start);
        for (std::size_t i = start; i < end; ++i) positions[i - start] = i;
        const auto features = view.gather(positions);
        const auto labels = view.gather_labels(positions);
        auto model = acquire_worker_model();
        model->set_parameters(params);
        const nn::Tensor& logits = model->forward(features, false);
        stats[b].loss_term =
            static_cast<double>(nn::cross_entropy_value(logits, labels)) *
            static_cast<double>(labels.size());
        stats[b].correct = nn::count_correct(logits, labels);
        release_worker_model(std::move(model));
      });

  EvalResult result;
  result.samples = view.size();
  double loss_acc = 0.0;
  std::size_t correct = 0;
  for (const BatchStats& s : stats) {
    loss_acc += s.loss_term;
    correct += s.correct;
  }
  result.loss = loss_acc / static_cast<double>(view.size());
  result.accuracy =
      static_cast<double>(correct) / static_cast<double>(view.size());
  return result;
}

EvalResult Evaluator::evaluate(std::span<const float> params,
                               std::size_t max_samples) {
  if (max_samples == 0 || max_samples >= test_.size()) {
    return evaluate_view(params, test_);
  }
  if (subsample_size_ != max_samples) {
    // Deterministic class-interleaved subsample: pick every size/max-th
    // index so the subset stays stable across calls and balanced as long as
    // the base view is.
    std::vector<std::size_t> picks;
    picks.reserve(max_samples);
    const double stride = static_cast<double>(test_.size()) /
                          static_cast<double>(max_samples);
    const auto base_indices = test_.indices();
    for (std::size_t i = 0; i < max_samples; ++i) {
      picks.push_back(
          base_indices[static_cast<std::size_t>(i * stride)]);
    }
    subsample_ = data::DataView(&test_.base(), std::move(picks));
    subsample_size_ = max_samples;
  }
  return evaluate_view(params, subsample_);
}

std::vector<double> Evaluator::per_class_accuracy(
    std::span<const float> params) {
  model_->set_parameters(params);
  const std::size_t classes = test_.base().num_classes();
  std::vector<std::size_t> correct(classes, 0);
  std::vector<std::size_t> total(classes, 0);
  for (const auto& batch : data::sequential_batches(test_.size(), batch_size_)) {
    const auto features = test_.gather(batch);
    const auto labels = test_.gather_labels(batch);
    const nn::Tensor& logits = model_->forward(features, false);
    const std::size_t cols = logits.dim(1);
    for (std::size_t b = 0; b < labels.size(); ++b) {
      const float* row = logits.data().data() + b * cols;
      const auto pred = static_cast<std::int32_t>(
          std::max_element(row, row + cols) - row);
      const auto label = static_cast<std::size_t>(labels[b]);
      ++total[label];
      if (pred == labels[b]) ++correct[label];
    }
  }
  std::vector<double> acc(classes, std::numeric_limits<double>::quiet_NaN());
  for (std::size_t c = 0; c < classes; ++c) {
    if (total[c] > 0) {
      acc[c] = static_cast<double>(correct[c]) / static_cast<double>(total[c]);
    }
  }
  return acc;
}

std::vector<std::vector<double>> Evaluator::confusion_matrix(
    std::span<const float> params) {
  model_->set_parameters(params);
  const std::size_t classes = test_.base().num_classes();
  std::vector<std::vector<std::size_t>> counts(
      classes, std::vector<std::size_t>(classes, 0));
  std::vector<std::size_t> totals(classes, 0);
  for (const auto& batch : data::sequential_batches(test_.size(), batch_size_)) {
    const auto features = test_.gather(batch);
    const auto labels = test_.gather_labels(batch);
    const nn::Tensor& logits = model_->forward(features, false);
    const std::size_t cols = logits.dim(1);
    for (std::size_t b = 0; b < labels.size(); ++b) {
      const float* row = logits.data().data() + b * cols;
      const auto pred = static_cast<std::size_t>(
          std::max_element(row, row + cols) - row);
      const auto label = static_cast<std::size_t>(labels[b]);
      ++counts[label][pred];
      ++totals[label];
    }
  }
  std::vector<std::vector<double>> matrix(
      classes, std::vector<double>(classes, 0.0));
  for (std::size_t t = 0; t < classes; ++t) {
    if (totals[t] == 0) continue;
    for (std::size_t p = 0; p < classes; ++p) {
      matrix[t][p] =
          static_cast<double>(counts[t][p]) / static_cast<double>(totals[t]);
    }
  }
  return matrix;
}

EvalResult Evaluator::evaluate_classes(std::span<const float> params,
                                       std::span<const std::int32_t> classes) {
  std::vector<std::size_t> picks;
  for (std::size_t i = 0; i < test_.size(); ++i) {
    if (std::find(classes.begin(), classes.end(), test_.label(i)) !=
        classes.end()) {
      picks.push_back(test_.indices()[i]);
    }
  }
  if (picks.empty()) {
    throw std::invalid_argument("evaluate_classes: no test samples in the class set");
  }
  return evaluate_view(params, data::DataView(&test_.base(), std::move(picks)));
}

double mean_edge_skew(
    const std::vector<std::vector<std::size_t>>& edge_class_histograms) {
  if (edge_class_histograms.empty()) return 0.0;
  const std::size_t classes = edge_class_histograms.front().size();
  std::vector<double> global(classes, 0.0);
  double total = 0.0;
  for (const auto& hist : edge_class_histograms) {
    if (hist.size() != classes) {
      throw std::invalid_argument("mean_edge_skew: ragged histograms");
    }
    for (std::size_t c = 0; c < classes; ++c) {
      global[c] += static_cast<double>(hist[c]);
      total += static_cast<double>(hist[c]);
    }
  }
  if (total == 0.0) return 0.0;
  for (double& g : global) g /= total;

  double skew_sum = 0.0;
  std::size_t counted = 0;
  for (const auto& hist : edge_class_histograms) {
    double edge_total = 0.0;
    for (std::size_t h : hist) edge_total += static_cast<double>(h);
    if (edge_total == 0.0) continue;
    double tv = 0.0;
    for (std::size_t c = 0; c < classes; ++c) {
      tv += std::abs(static_cast<double>(hist[c]) / edge_total - global[c]);
    }
    skew_sum += 0.5 * tv;
    ++counted;
  }
  return counted == 0 ? 0.0 : skew_sum / static_cast<double>(counted);
}

std::optional<std::size_t> RunHistory::time_to_accuracy(double target) const {
  for (const auto& point : points) {
    if (point.accuracy >= target) return point.step;
  }
  return std::nullopt;
}

double RunHistory::final_accuracy() const {
  return points.empty() ? std::numeric_limits<double>::quiet_NaN()
                        : points.back().accuracy;
}

double RunHistory::best_accuracy() const {
  double best = std::numeric_limits<double>::quiet_NaN();
  for (const auto& point : points) {
    if (std::isnan(best) || point.accuracy > best) best = point.accuracy;
  }
  return best;
}

std::vector<double> RunHistory::accuracy_series() const {
  std::vector<double> out;
  out.reserve(points.size());
  for (const auto& point : points) out.push_back(point.accuracy);
  return out;
}

void save_history_csv(const RunHistory& history, const std::string& path) {
  util::CsvWriter writer(path);
  writer.header({"algorithm", "step", "accuracy", "loss"});
  for (const auto& point : history.points) {
    writer.add(history.algorithm)
        .add(point.step)
        .add(point.accuracy)
        .add(point.loss);
    writer.end_row();
  }
}

RunHistory load_history_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_history_csv: cannot open " + path);
  std::string line;
  if (!std::getline(in, line) || line != "algorithm,step,accuracy,loss") {
    throw std::runtime_error("load_history_csv: unexpected header '" + line +
                             "'");
  }
  RunHistory history;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.back() == '\r') line.pop_back();
    std::vector<std::string> fields;
    try {
      fields = util::csv_split_row(line);
    } catch (const std::invalid_argument& error) {
      throw std::runtime_error("load_history_csv: malformed row '" + line +
                               "': " + error.what());
    }
    if (fields.size() != 4) {
      throw std::runtime_error("load_history_csv: malformed row '" + line +
                               "'");
    }
    if (history.algorithm.empty()) history.algorithm = fields[0];
    EvalPoint point;
    point.step = std::stoul(fields[1]);
    point.accuracy = std::stod(fields[2]);
    point.loss = std::stod(fields[3]);
    history.points.push_back(point);
  }
  return history;
}

std::optional<double> speedup(const RunHistory& ours,
                              const RunHistory& baseline, double target) {
  const auto our_steps = ours.time_to_accuracy(target);
  if (!our_steps) return std::nullopt;
  const auto base_steps = baseline.time_to_accuracy(target);
  if (!base_steps) return std::numeric_limits<double>::infinity();
  if (*our_steps == 0) return std::numeric_limits<double>::infinity();
  return static_cast<double>(*base_steps) / static_cast<double>(*our_steps);
}

}  // namespace middlefl::core
