#include "core/similarity.hpp"

#include <algorithm>
#include <stdexcept>

#include "tensor/blas.hpp"

namespace middlefl::core {

double cosine_similarity(std::span<const float> a, std::span<const float> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("cosine_similarity: size mismatch");
  }
  const double na = tensor::nrm2(a);
  const double nb = tensor::nrm2(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  // Clamp tiny numerical excursions outside [-1, 1].
  return std::clamp(tensor::dot(a, b) / (na * nb), -1.0, 1.0);
}

double similarity_utility(std::span<const float> a, std::span<const float> b) {
  return std::max(cosine_similarity(a, b), 0.0);
}

double on_device_aggregate(std::span<const float> edge_model,
                           std::span<const float> local_model,
                           std::span<float> out) {
  if (edge_model.size() != local_model.size() ||
      out.size() != edge_model.size()) {
    throw std::invalid_argument("on_device_aggregate: size mismatch");
  }
  const double u = similarity_utility(local_model, edge_model);
  const auto w_edge = static_cast<float>(1.0 / (1.0 + u));
  const auto w_local = static_cast<float>(u / (1.0 + u));
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = w_edge * edge_model[i] + w_local * local_model[i];
  }
  return u / (1.0 + u);
}

double on_device_aggregate_signed(std::span<const float> edge_model,
                                  std::span<const float> local_model,
                                  std::span<float> out) {
  if (edge_model.size() != local_model.size() ||
      out.size() != edge_model.size()) {
    throw std::invalid_argument("on_device_aggregate_signed: size mismatch");
  }
  const double u =
      std::clamp(cosine_similarity(local_model, edge_model), -0.5, 1.0);
  const auto w_edge = static_cast<float>(1.0 / (1.0 + u));
  const auto w_local = static_cast<float>(u / (1.0 + u));
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = w_edge * edge_model[i] + w_local * local_model[i];
  }
  return u / (1.0 + u);
}

void on_device_aggregate_fixed(std::span<const float> edge_model,
                               std::span<const float> local_model,
                               double alpha, std::span<float> out) {
  if (alpha <= 0.0 || alpha >= 1.0) {
    throw std::invalid_argument("on_device_aggregate_fixed: alpha must be in (0, 1)");
  }
  if (edge_model.size() != local_model.size() ||
      out.size() != edge_model.size()) {
    throw std::invalid_argument("on_device_aggregate_fixed: size mismatch");
  }
  const auto w_edge = static_cast<float>(alpha);
  const auto w_local = static_cast<float>(1.0 - alpha);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = w_edge * edge_model[i] + w_local * local_model[i];
  }
}

std::vector<float> accumulated_update(std::span<const float> local_model,
                                      std::span<const float> cloud_model) {
  if (local_model.size() != cloud_model.size()) {
    throw std::invalid_argument("accumulated_update: size mismatch");
  }
  std::vector<float> delta(local_model.size());
  for (std::size_t i = 0; i < delta.size(); ++i) {
    delta[i] = local_model[i] - cloud_model[i];
  }
  return delta;
}

double selection_utility(std::span<const float> cloud_model,
                         std::span<const float> local_model) {
  const std::vector<float> delta = accumulated_update(local_model, cloud_model);
  return similarity_utility(cloud_model, delta);
}

}  // namespace middlefl::core
