#include "core/similarity.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/blas.hpp"

namespace middlefl::core {
namespace {

/// One sweep computing <a, b>, |a|^2 and |b|^2 — the shared core of cosine
/// similarity. A single pass touches each parameter once instead of the
/// three passes of dot + nrm2 + nrm2. Four independent double lanes per
/// sum: the explicit lanes map directly to SIMD vectors (the compiler may
/// not reassociate FP sums on its own), matching blas.cpp's dot kernels.
struct CosineStats {
  double dot_ab = 0.0;
  double a_sq = 0.0;
  double b_sq = 0.0;
};

CosineStats cosine_stats(const float* a, const float* b,
                         std::size_t n) noexcept {
  double d0 = 0.0, d1 = 0.0, d2 = 0.0, d3 = 0.0;
  double p0 = 0.0, p1 = 0.0, p2 = 0.0, p3 = 0.0;
  double q0 = 0.0, q1 = 0.0, q2 = 0.0, q3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double a0 = a[i], a1 = a[i + 1], a2 = a[i + 2], a3 = a[i + 3];
    const double b0 = b[i], b1 = b[i + 1], b2 = b[i + 2], b3 = b[i + 3];
    d0 += a0 * b0;
    d1 += a1 * b1;
    d2 += a2 * b2;
    d3 += a3 * b3;
    p0 += a0 * a0;
    p1 += a1 * a1;
    p2 += a2 * a2;
    p3 += a3 * a3;
    q0 += b0 * b0;
    q1 += b1 * b1;
    q2 += b2 * b2;
    q3 += b3 * b3;
  }
  for (; i < n; ++i) {
    const double av = a[i], bv = b[i];
    d0 += av * bv;
    p0 += av * av;
    q0 += bv * bv;
  }
  return CosineStats{(d0 + d1) + (d2 + d3), (p0 + p1) + (p2 + p3),
                     (q0 + q1) + (q2 + q3)};
}

}  // namespace

double cosine_similarity(std::span<const float> a, std::span<const float> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("cosine_similarity: size mismatch");
  }
  const CosineStats stats = cosine_stats(a.data(), b.data(), a.size());
  if (stats.a_sq == 0.0 || stats.b_sq == 0.0) return 0.0;
  // Clamp tiny numerical excursions outside [-1, 1].
  return std::clamp(stats.dot_ab / std::sqrt(stats.a_sq * stats.b_sq), -1.0,
                    1.0);
}

double similarity_utility(std::span<const float> a, std::span<const float> b) {
  return std::max(cosine_similarity(a, b), 0.0);
}

double on_device_aggregate(std::span<const float> edge_model,
                           std::span<const float> local_model,
                           std::span<float> out) {
  if (edge_model.size() != local_model.size() ||
      out.size() != edge_model.size()) {
    throw std::invalid_argument("on_device_aggregate: size mismatch");
  }
  const double u = similarity_utility(local_model, edge_model);
  const auto w_edge = static_cast<float>(1.0 / (1.0 + u));
  const auto w_local = static_cast<float>(u / (1.0 + u));
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = w_edge * edge_model[i] + w_local * local_model[i];
  }
  return u / (1.0 + u);
}

double on_device_aggregate_signed(std::span<const float> edge_model,
                                  std::span<const float> local_model,
                                  std::span<float> out) {
  if (edge_model.size() != local_model.size() ||
      out.size() != edge_model.size()) {
    throw std::invalid_argument("on_device_aggregate_signed: size mismatch");
  }
  const double u =
      std::clamp(cosine_similarity(local_model, edge_model), -0.5, 1.0);
  const auto w_edge = static_cast<float>(1.0 / (1.0 + u));
  const auto w_local = static_cast<float>(u / (1.0 + u));
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = w_edge * edge_model[i] + w_local * local_model[i];
  }
  return u / (1.0 + u);
}

void on_device_aggregate_fixed(std::span<const float> edge_model,
                               std::span<const float> local_model,
                               double alpha, std::span<float> out) {
  if (alpha <= 0.0 || alpha >= 1.0) {
    throw std::invalid_argument("on_device_aggregate_fixed: alpha must be in (0, 1)");
  }
  if (edge_model.size() != local_model.size() ||
      out.size() != edge_model.size()) {
    throw std::invalid_argument("on_device_aggregate_fixed: size mismatch");
  }
  const auto w_edge = static_cast<float>(alpha);
  const auto w_local = static_cast<float>(1.0 - alpha);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = w_edge * edge_model[i] + w_local * local_model[i];
  }
}

std::vector<float> accumulated_update(std::span<const float> local_model,
                                      std::span<const float> cloud_model) {
  if (local_model.size() != cloud_model.size()) {
    throw std::invalid_argument("accumulated_update: size mismatch");
  }
  std::vector<float> delta(local_model.size());
  for (std::size_t i = 0; i < delta.size(); ++i) {
    delta[i] = local_model[i] - cloud_model[i];
  }
  return delta;
}

DeltaSimilarityStats delta_similarity_stats(
    std::span<const float> cloud_model, std::span<const float> local_model) {
  if (local_model.size() != cloud_model.size()) {
    throw std::invalid_argument("delta_similarity_stats: size mismatch");
  }
  const float* c = cloud_model.data();
  const float* w = local_model.data();
  const std::size_t n = cloud_model.size();
  // The delta element is formed in FLOAT (matching the materialized
  // reference, which stores Delta_w as float) before the double reductions.
  // Four independent lanes per sum, same SIMD-friendly shape as blas.cpp.
  double d0 = 0.0, d1 = 0.0, d2 = 0.0, d3 = 0.0;
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  double q0 = 0.0, q1 = 0.0, q2 = 0.0, q3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float delta0 = w[i] - c[i];
    const float delta1 = w[i + 1] - c[i + 1];
    const float delta2 = w[i + 2] - c[i + 2];
    const float delta3 = w[i + 3] - c[i + 3];
    const double c0 = c[i], c1 = c[i + 1], c2 = c[i + 2], c3 = c[i + 3];
    d0 += c0 * delta0;
    d1 += c1 * delta1;
    d2 += c2 * delta2;
    d3 += c3 * delta3;
    s0 += static_cast<double>(delta0) * delta0;
    s1 += static_cast<double>(delta1) * delta1;
    s2 += static_cast<double>(delta2) * delta2;
    s3 += static_cast<double>(delta3) * delta3;
    q0 += c0 * c0;
    q1 += c1 * c1;
    q2 += c2 * c2;
    q3 += c3 * c3;
  }
  for (; i < n; ++i) {
    const float delta = w[i] - c[i];
    const double cv = c[i];
    d0 += cv * delta;
    s0 += static_cast<double>(delta) * delta;
    q0 += cv * cv;
  }
  return DeltaSimilarityStats{(d0 + d1) + (d2 + d3), (s0 + s1) + (s2 + s3),
                              (q0 + q1) + (q2 + q3)};
}

double selection_utility_from_stats(const DeltaSimilarityStats& stats) {
  if (stats.cloud_norm_sq == 0.0 || stats.delta_norm_sq == 0.0) return 0.0;
  const double cosine =
      std::clamp(stats.dot_cloud_delta /
                     std::sqrt(stats.cloud_norm_sq * stats.delta_norm_sq),
                 -1.0, 1.0);
  return std::max(cosine, 0.0);
}

double selection_utility(std::span<const float> cloud_model,
                         std::span<const float> local_model) {
  return selection_utility_from_stats(
      delta_similarity_stats(cloud_model, local_model));
}

double selection_utility_reference(std::span<const float> cloud_model,
                                   std::span<const float> local_model) {
  const std::vector<float> delta = accumulated_update(local_model, cloud_model);
  const double na = tensor::nrm2(cloud_model);
  const double nb = tensor::nrm2(delta);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return std::max(
      std::clamp(tensor::dot(cloud_model, delta) / (na * nb), -1.0, 1.0), 0.0);
}

}  // namespace middlefl::core
