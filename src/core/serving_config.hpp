// Serving-side configuration and the edge-model publication hook.
//
// ServingConfig is the SimulationConfig block that sizes the edge
// inference path (src/serve): how many single-sample requests an
// EdgeServer coalesces into one forward batch, how deep its pending queue
// may grow before it sheds load, and how many pooled inference runtimes
// the hub keeps. The simulator itself never serves — it only republishes
// every edge-model change through an EdgeModelSink — so the block is
// consumed by serving-capable front ends (bench/serving_load,
// middlefl_run --serve-clients) that build a serve::ServingHub from it.
//
// Determinism contract: the sink fires at points where the training-side
// state is already final for the step (end of EdgeAggregate inside the
// edge's own chain, and the serial CloudSync broadcast). Publication is a
// refcount bump of an immutable block; it consumes no RNG draws and never
// writes back into simulation state, so a run with serving attached is
// bit-identical to a bare one (pinned by serve_test).
#pragma once

#include <cstddef>

#include "core/snapshot.hpp"

namespace middlefl::core {

struct ServingConfig {
  /// Master switch consumed by serving-capable front ends; the simulator
  /// republishes to an attached sink regardless (attaching is opt-in).
  bool enabled = false;
  /// Largest request batch one drain pass feeds the forward path. 1 =
  /// the naive one-request-one-GEMM baseline (the serving_load B arm).
  std::size_t max_batch = 16;
  /// Pending requests an EdgeServer queues before rejecting new ones
  /// (load shedding; rejects are counted, never silently dropped).
  std::size_t max_queue = 1024;
  /// Pooled inference runtimes (model clone + batch buffers) shared by
  /// all edges of a hub. Bounds serving's memory to
  /// runtimes * (param_count + activations), independent of edge count.
  std::size_t runtimes = 2;
};

/// Receiver of edge-model publications (the serving hot-swap hook).
/// on_edge_model is called from inside the publishing edge's task chain —
/// concurrently across different edges, never concurrently for one edge —
/// and from the serial cloud-sync broadcast. Implementations must be
/// thread-safe across edges and must not block (a lock-free or
/// briefly-locked snapshot swap; serve::ServingHub publishes into a
/// SnapshotSlot).
class EdgeModelSink {
 public:
  virtual ~EdgeModelSink() = default;
  virtual void on_edge_model(std::size_t edge, const Snapshot& model) = 0;
};

}  // namespace middlefl::core
