// In-edge device selection strategies.
//
// Every time step each edge picks K of its currently-connected devices.
// MIDDLE's rule (Eq. 12) ranks candidates by -U(w_c, Delta_w_m): the devices
// whose accumulated update direction is LEAST similar to the global model
// hold the data the global model has learned least. Baselines use random
// selection (FedMes, HierFAVG) or the Oort statistical utility (OORT,
// Greedy, Ensemble).
//
// Similarity-based strategies score through a SelectionContext: scores hit
// the version-keyed SimilarityCache when neither the device nor the cloud
// moved since the last step, misses are computed with the fused one-pass
// Eq. 11 kernel (no Delta materialization, no allocation per candidate),
// and large miss batches fan out over the thread pool. Scoring stays
// bitwise deterministic: every candidate's value is identical whether it
// came from the cache, a serial recompute or a parallel recompute.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "parallel/rng.hpp"

namespace middlefl::parallel {
class ThreadPool;
}

namespace middlefl::core {

class SimilarityCache;

/// Per-candidate snapshot handed to a strategy. `local_params` aliases the
/// device's live parameter vector and must not be stored.
struct Candidate {
  std::size_t device_id = 0;
  double data_size = 0.0;
  /// Oort statistical utility; nullopt for never-trained devices, which
  /// strategies should prioritize for exploration.
  std::optional<double> stat_utility;
  std::span<const float> local_params;
  /// Device parameter version for the SimilarityCache key (0 when the
  /// caller does not track versions; harmless without a cache).
  std::uint64_t params_version = 0;
};

/// Optional acceleration state for select(). Default-constructed context =
/// no caching, serial scoring — the behavior tests exercise directly.
struct SelectionContext {
  /// Cloud parameter version paired with Candidate::params_version.
  std::uint64_t cloud_version = 0;
  /// Cache of Eq. 11 utilities; nullptr disables caching.
  SimilarityCache* cache = nullptr;
  /// Pool for parallel candidate scoring; nullptr scores serially.
  parallel::ThreadPool* pool = nullptr;
};

/// Eq. 11 utilities for all candidates, cache-aware and (for large miss
/// batches) pool-parallel. Exposed for reuse by strategies and tests.
std::vector<double> score_selection_utilities(
    std::span<const Candidate> candidates, std::span<const float> cloud_params,
    const SelectionContext& context);

/// Top-k ids by descending score after a random shuffle (equal scores break
/// uniformly at random). Production path: O(n + k log k) — nth_element +
/// partial sort over the composite key (score desc, shuffle-rank asc),
/// which returns exactly the ids of stable-sorting the shuffled order by
/// score. Consumes the same rng draws (the shuffle only) as the reference.
std::vector<std::size_t> top_k_by_score(std::span<const Candidate> candidates,
                                        const std::vector<double>& scores,
                                        std::size_t k,
                                        parallel::Xoshiro256& rng);

/// Reference implementation of the same ranking contract: full
/// stable_sort of the shuffled permutation, O(n log n). Kept as the
/// ground truth the equivalence property test pins top_k_by_score against.
std::vector<std::size_t> top_k_by_score_reference(
    std::span<const Candidate> candidates, const std::vector<double>& scores,
    std::size_t k, parallel::Xoshiro256& rng);

class SelectionStrategy {
 public:
  virtual ~SelectionStrategy() = default;

  virtual std::string name() const = 0;

  /// True when select() reads Candidate::local_params. Strategies that
  /// rank on metadata alone (random, Oort utility) override this to false
  /// so callers can skip materializing parameters for lazy devices — the
  /// lever that keeps selection O(1) per candidate at fleet scale.
  virtual bool needs_params() const noexcept { return true; }

  /// True when select() reads any Candidate field beyond device_id.
  /// Random selection ranks on nothing at all, so it overrides this to
  /// false and callers may hand it bare member ids through select_ids(),
  /// skipping the per-member device dereference and Candidate build — the
  /// second fleet-scale lever (a million-device edge pays O(K), not O(n),
  /// to pick K devices).
  virtual bool needs_metadata() const noexcept { return true; }

  /// Returns the ids of min(k, candidates.size()) devices. `cloud_params`
  /// is the current global model w_c (the proxy for w_c* in Eq. 11).
  /// Implementations must be deterministic given `rng` (the context only
  /// accelerates scoring, it never changes the result).
  virtual std::vector<std::size_t> select(
      std::span<const Candidate> candidates,
      std::span<const float> cloud_params, std::size_t k,
      parallel::Xoshiro256& rng,
      const SelectionContext& context = SelectionContext{}) const = 0;

  /// Metadata-free fast path: selects straight from member ids. Only
  /// meaningful when needs_metadata() is false; strategies overriding
  /// needs_metadata() must override this to return exactly the ids (and
  /// consume exactly the rng draws) select() would for id-only candidates.
  /// The default forbids the call so a mismatch fails loudly.
  virtual std::vector<std::size_t> select_ids(std::span<const std::size_t> ids,
                                              std::size_t k,
                                              parallel::Xoshiro256& rng) const;
};

/// Uniform random K-subset (FedMes, HierFAVG).
class RandomSelection final : public SelectionStrategy {
 public:
  std::string name() const override { return "random"; }
  bool needs_params() const noexcept override { return false; }
  bool needs_metadata() const noexcept override { return false; }
  std::vector<std::size_t> select(
      std::span<const Candidate> candidates,
      std::span<const float> cloud_params, std::size_t k,
      parallel::Xoshiro256& rng,
      const SelectionContext& context = SelectionContext{}) const override;
  std::vector<std::size_t> select_ids(
      std::span<const std::size_t> ids, std::size_t k,
      parallel::Xoshiro256& rng) const override;
};

/// Top-K by Oort statistical utility; never-trained candidates rank first
/// in random order (exploration), ties broken randomly.
class StatUtilitySelection final : public SelectionStrategy {
 public:
  std::string name() const override { return "stat-utility"; }
  bool needs_params() const noexcept override { return false; }
  std::vector<std::size_t> select(
      std::span<const Candidate> candidates,
      std::span<const float> cloud_params, std::size_t k,
      parallel::Xoshiro256& rng,
      const SelectionContext& context = SelectionContext{}) const override;
};

/// MIDDLE's Eq. 12: TOPK of -U(w_c, w_m - w_c) — least-similar first. Set
/// `invert` for the ablation that selects the MOST similar devices instead.
class SimilaritySelection final : public SelectionStrategy {
 public:
  explicit SimilaritySelection(bool invert = false) : invert_(invert) {}
  std::string name() const override {
    return invert_ ? "most-similar (ablation)" : "least-similar (MIDDLE)";
  }
  std::vector<std::size_t> select(
      std::span<const Candidate> candidates,
      std::span<const float> cloud_params, std::size_t k,
      parallel::Xoshiro256& rng,
      const SelectionContext& context = SelectionContext{}) const override;

 private:
  bool invert_;
};

/// Extension beyond the paper: ranks by the PRODUCT of Oort's loss signal
/// and MIDDLE's dissimilarity signal — devices whose data is both
/// high-loss and unlike what the global model has absorbed. Never-trained
/// candidates rank first, as in StatUtilitySelection.
class HybridSelection final : public SelectionStrategy {
 public:
  std::string name() const override { return "hybrid (loss x dissimilarity)"; }
  std::vector<std::size_t> select(
      std::span<const Candidate> candidates,
      std::span<const float> cloud_params, std::size_t k,
      parallel::Xoshiro256& rng,
      const SelectionContext& context = SelectionContext{}) const override;
};

}  // namespace middlefl::core
