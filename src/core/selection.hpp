// In-edge device selection strategies.
//
// Every time step each edge picks K of its currently-connected devices.
// MIDDLE's rule (Eq. 12) ranks candidates by -U(w_c, Delta_w_m): the devices
// whose accumulated update direction is LEAST similar to the global model
// hold the data the global model has learned least. Baselines use random
// selection (FedMes, HierFAVG) or the Oort statistical utility (OORT,
// Greedy, Ensemble).
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "parallel/rng.hpp"

namespace middlefl::core {

/// Per-candidate snapshot handed to a strategy. `local_params` aliases the
/// device's live parameter vector and must not be stored.
struct Candidate {
  std::size_t device_id = 0;
  double data_size = 0.0;
  /// Oort statistical utility; nullopt for never-trained devices, which
  /// strategies should prioritize for exploration.
  std::optional<double> stat_utility;
  std::span<const float> local_params;
};

class SelectionStrategy {
 public:
  virtual ~SelectionStrategy() = default;

  virtual std::string name() const = 0;

  /// Returns the ids of min(k, candidates.size()) devices. `cloud_params`
  /// is the current global model w_c (the proxy for w_c* in Eq. 11).
  /// Implementations must be deterministic given `rng`.
  virtual std::vector<std::size_t> select(
      std::span<const Candidate> candidates,
      std::span<const float> cloud_params, std::size_t k,
      parallel::Xoshiro256& rng) const = 0;
};

/// Uniform random K-subset (FedMes, HierFAVG).
class RandomSelection final : public SelectionStrategy {
 public:
  std::string name() const override { return "random"; }
  std::vector<std::size_t> select(std::span<const Candidate> candidates,
                                  std::span<const float> cloud_params,
                                  std::size_t k,
                                  parallel::Xoshiro256& rng) const override;
};

/// Top-K by Oort statistical utility; never-trained candidates rank first
/// in random order (exploration), ties broken randomly.
class StatUtilitySelection final : public SelectionStrategy {
 public:
  std::string name() const override { return "stat-utility"; }
  std::vector<std::size_t> select(std::span<const Candidate> candidates,
                                  std::span<const float> cloud_params,
                                  std::size_t k,
                                  parallel::Xoshiro256& rng) const override;
};

/// MIDDLE's Eq. 12: TOPK of -U(w_c, w_m - w_c) — least-similar first. Set
/// `invert` for the ablation that selects the MOST similar devices instead.
class SimilaritySelection final : public SelectionStrategy {
 public:
  explicit SimilaritySelection(bool invert = false) : invert_(invert) {}
  std::string name() const override {
    return invert_ ? "most-similar (ablation)" : "least-similar (MIDDLE)";
  }
  std::vector<std::size_t> select(std::span<const Candidate> candidates,
                                  std::span<const float> cloud_params,
                                  std::size_t k,
                                  parallel::Xoshiro256& rng) const override;

 private:
  bool invert_;
};

/// Extension beyond the paper: ranks by the PRODUCT of Oort's loss signal
/// and MIDDLE's dissimilarity signal — devices whose data is both
/// high-loss and unlike what the global model has absorbed. Never-trained
/// candidates rank first, as in StatUtilitySelection.
class HybridSelection final : public SelectionStrategy {
 public:
  std::string name() const override { return "hybrid (loss x dissimilarity)"; }
  std::vector<std::size_t> select(std::span<const Candidate> candidates,
                                  std::span<const float> cloud_params,
                                  std::size_t k,
                                  parallel::Xoshiro256& rng) const override;
};

}  // namespace middlefl::core
