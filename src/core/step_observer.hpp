// Observer hooks for the staged simulation step pipeline.
//
// Simulation::step() runs six named phases —
//
//   Select -> Distribute -> LocalTrain -> Upload -> EdgeAggregate
//          -> CloudSync
//
// — and emits events to registered StepObservers at the serial boundary
// after each phase. Metrics, communication accounting and tests subscribe
// here instead of reading counters off the Simulation object; the built-in
// CommStatsObserver below reconstructs the legacy CommStats report purely
// from transfer events, which pins the event stream as complete.
//
// Callbacks run on the simulation thread, outside any parallel region, in
// registration order. Observers must not mutate the simulation; throwing
// from a callback aborts the step. Because events never fire from inside
// parallel loops, an observer needs no synchronization of its own, and
// observing cannot perturb the run (pinned by pipeline_test).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/comm_stats.hpp"
#include "core/metrics.hpp"
#include "transport/link.hpp"

namespace middlefl::core {

enum class StepPhase {
  kSelect,         // in-edge device selection (Algorithm 1, line 2)
  kDistribute,     // edge -> device downloads + on-device carry blends
  kLocalTrain,     // I local SGD steps on every participating device
  kUpload,         // device -> edge uploads through the wireless uplink
  kEdgeAggregate,  // per-edge FedAvg over arrived uploads (Eq. 6)
  kCloudSync,      // edge -> cloud -> everyone, every T_c steps (Eq. 7)
};

std::string to_string(StepPhase phase);

class StepObserver {
 public:
  virtual ~StepObserver() = default;

  /// Step t has begun; mobility has already advanced.
  virtual void on_step_begin(std::size_t step) { (void)step; }

  /// `phase` finished for step t. Fires for kCloudSync only on sync steps.
  virtual void on_phase(StepPhase phase, std::size_t step) {
    (void)phase;
    (void)step;
  }

  /// Traffic `delta` moved over `kind` during `phase` (one event per
  /// (phase, link) pair with nonzero attempts).
  virtual void on_transfers(StepPhase phase, transport::LinkKind kind,
                            const transport::LinkStats& delta,
                            std::size_t step) {
    (void)phase;
    (void)kind;
    (void)delta;
    (void)step;
  }

  /// Devices selected this step, grouped by edge (valid for the callback's
  /// duration only).
  virtual void on_selection(
      std::size_t step,
      const std::vector<std::vector<std::size_t>>& selection) {
    (void)step;
    (void)selection;
  }

  /// Selected devices dropped this step: stragglers that missed the round
  /// deadline, and devices whose model download was lost.
  virtual void on_dropouts(std::size_t step, std::size_t stragglers,
                           std::size_t lost_downloads) {
    (void)step;
    (void)stragglers;
    (void)lost_downloads;
  }

  /// On-device aggregations applied this step and the blend weight they
  /// gave the carried model in total.
  virtual void on_blends(std::size_t step, std::size_t count,
                         double weight_sum) {
    (void)step;
    (void)count;
    (void)weight_sum;
  }

  /// A cloud synchronization aggregated `contributing_edges` edge models
  /// (0 = every WAN upload was lost or still in flight: global unchanged).
  virtual void on_cloud_sync(std::size_t step,
                             std::size_t contributing_edges) {
    (void)step;
    (void)contributing_edges;
  }

  /// Step t finished; `synced` mirrors Simulation::step()'s return.
  virtual void on_step_end(std::size_t step, bool synced) {
    (void)step;
    (void)synced;
  }

  /// An evaluation point was just appended to the run history.
  virtual void on_evaluation(const EvalPoint& point) { (void)point; }
};

/// The legacy communication report, rebuilt as an observer: transfer
/// counts per channel derived purely from on_transfers events. Registered
/// by Simulation itself; Simulation::comm_stats() reads it.
class CommStatsObserver final : public StepObserver {
 public:
  const CommStats& stats() const noexcept { return stats_; }

  void on_transfers(StepPhase, transport::LinkKind kind,
                    const transport::LinkStats& delta,
                    std::size_t) override {
    switch (kind) {
      case transport::LinkKind::kWirelessDown:
        stats_.device_downloads += delta.transfers;
        break;
      case transport::LinkKind::kWirelessUp:
        stats_.device_uploads += delta.transfers;
        break;
      case transport::LinkKind::kWanUp:
        stats_.edge_uploads += delta.transfers;
        break;
      case transport::LinkKind::kWanDown:
        stats_.edge_downloads += delta.transfers;
        break;
      case transport::LinkKind::kBroadcast:
        stats_.device_broadcasts += delta.transfers;
        break;
      case transport::LinkKind::kCarry:
        break;  // the carried model is free — never counted as traffic
    }
  }

 private:
  CommStats stats_;
};

}  // namespace middlefl::core
