// Weighted model aggregation (FedAvg), used at both the edge (Eq. 6) and
// the cloud (Eq. 7). The arithmetic lives in the collectives layer
// (src/comm): this header keeps the historical free-function API for
// tests and algorithm code, while the Simulation itself routes its
// aggregations through comm::Communicator.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "comm/reducer.hpp"

namespace middlefl::parallel {
class ThreadPool;
}

namespace middlefl::core {

/// One contribution to a weighted average: a flat model and its weight
/// (data-sample count d_m at the edge, participating-sample count d_hat_n
/// at the cloud). Alias of the collectives layer's contribution type so
/// aggregation call sites and comm::Communicator::reduce interoperate
/// without conversion.
using WeightedModel = comm::Contribution;

/// out = sum_i weight_i * params_i / sum_i weight_i.
/// Throws if the inputs are empty, sizes differ, a weight is negative, or
/// all weights are zero. Accumulates in double to keep aggregation exact
/// enough to be order-independent in tests. With a non-null `pool`,
/// element ranges are averaged in parallel; every element's sum runs in
/// model order regardless of how the range splits, so the result is
/// bitwise identical to the serial path (the same contract
/// comm::Reducer's tree schedule keeps). The double accumulator comes
/// from the thread-local Workspace, so steady-state calls allocate
/// nothing.
void weighted_average(std::span<const WeightedModel> models,
                      std::span<float> out,
                      parallel::ThreadPool* pool = nullptr);

/// Convenience overload returning a fresh vector.
std::vector<float> weighted_average(std::span<const WeightedModel> models);

}  // namespace middlefl::core
