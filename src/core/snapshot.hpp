// Version-stamped copy-on-write parameter snapshots.
//
// A ParamBlock is an immutable flat parameter vector stamped with a
// process-unique version at publish time. Entities hold blocks through
// Snapshot (shared_ptr<const ParamBlock>): handing a model to another tier
// is a refcount bump, not a memcpy — the broadcast after a cloud sync is
// one publish shared by the cloud, every edge and every device. A private
// copy materializes only when a holder first writes (a blend or an SGD
// step), which is the copy-on-write discipline Distribute relies on.
//
// Versions come from one process-global monotonic counter, so a version
// uniquely identifies parameter *content*: the SimilarityCache keys on
// (device version, cloud version) pairs and needs no invalidation hooks —
// two equal versions guarantee bitwise-equal parameters, which is exactly
// the property cached Eq. 11 scores require. Version values themselves are
// never observable in results; only change/no-change is.
//
// The store recycles retired block buffers through a freelist so the
// steady-state step loop publishes edge/cloud aggregates without heap
// allocation. The recycling deleter owns the freelist via shared_ptr, so
// blocks outliving the store (or the store outliving every block) are both
// safe. All store operations are thread-safe: per-edge task chains publish
// aggregates concurrently.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

namespace middlefl::core {

class ParamBlock;
/// Shared immutable parameter snapshot.
using Snapshot = std::shared_ptr<const ParamBlock>;

namespace detail {
struct BufferPool;
/// Deleter returning a retired block's buffer to the store's freelist.
struct BlockRecycler {
  std::shared_ptr<BufferPool> pool;
  void operator()(const ParamBlock* block) const noexcept;
};
}  // namespace detail

class ParamBlock {
 public:
  std::span<const float> span() const noexcept { return data_; }
  std::size_t size() const noexcept { return data_.size(); }
  /// Process-unique stamp assigned at publish time.
  std::uint64_t version() const noexcept { return version_; }

 private:
  friend class SnapshotStore;
  friend struct detail::BlockRecycler;
  ParamBlock(std::vector<float> data, std::uint64_t version)
      : data_(std::move(data)), version_(version) {}

  std::vector<float> data_;
  std::uint64_t version_;
};

/// Atomically hot-swappable snapshot holder — the serving-side view of one
/// entity's current model.
///
/// One writer (the entity's own task chain, or the serial cloud sync)
/// publishes already-sealed blocks; many readers run inference against
/// whatever block they last saw. The design splits the read path in two:
///
///   fast path   one acquire load of the version stamp. A reader that
///               caches the Snapshot it holds (InferenceRuntime does)
///               calls refresh() before each batch; while the model is
///               unchanged that is the whole cost — no lock, no refcount
///               traffic, no clock reads.
///   swap path   when the stamp moved, the reader takes a brief mutex to
///               copy the shared_ptr (a refcount bump), then runs
///               inference entirely outside the lock.
///
/// Torn models are impossible by construction: ParamBlocks are immutable
/// and the version stamp is written release-after the pointer swap, so a
/// reader that observes version v and then acquires holds a block whose
/// version() is >= v and whose contents are exactly the published ones.
class SnapshotSlot {
 public:
  SnapshotSlot() = default;
  SnapshotSlot(const SnapshotSlot&) = delete;
  SnapshotSlot& operator=(const SnapshotSlot&) = delete;

  /// Installs `snapshot` as the current model (writer side). Readers see
  /// the new version stamp only after the pointer is in place.
  void publish(Snapshot snapshot);

  /// Version stamp of the current snapshot (0 = nothing published yet).
  /// The reader fast path: one acquire load.
  std::uint64_t version() const noexcept {
    return version_.load(std::memory_order_acquire);
  }

  /// The current snapshot (swap path: brief lock, refcount bump). Null
  /// before the first publish.
  Snapshot acquire() const;

  /// Reader fast path: when `cached` already holds the slot's current
  /// version this is a single atomic load and `cached` is untouched;
  /// otherwise `cached` is re-pointed at the current snapshot. Returns
  /// true when `cached` changed (the caller should re-load model
  /// parameters).
  bool refresh(Snapshot& cached) const {
    const std::uint64_t v = version();
    if (cached != nullptr && cached->version() == v) return false;
    cached = acquire();
    return cached != nullptr;
  }

 private:
  mutable std::mutex mutex_;
  Snapshot current_;
  std::atomic<std::uint64_t> version_{0};
};

class SnapshotStore {
 public:
  SnapshotStore();
  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  /// The process-wide store every entity publishes through.
  static SnapshotStore& global();

  /// Next unique version stamp. Also used by Device for private (non-
  /// shared) parameter mutations, so private and shared states draw from
  /// one version space and never collide.
  std::uint64_t next_version() noexcept {
    return version_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Publishes an immutable copy of `data` with a fresh version.
  Snapshot publish(std::span<const float> data);

  /// A mutable scratch buffer of `size` floats (recycled when available,
  /// contents unspecified). Fill it, then seal() it — the in-place
  /// replacement for writing an aggregate into an entity's live buffer.
  std::vector<float> borrow(std::size_t size);

  /// Seals a buffer into an immutable published block with a fresh
  /// version (no copy: the vector moves into the block).
  Snapshot seal(std::vector<float>&& data);

  /// Buffers currently waiting in the freelist (introspection for tests).
  std::size_t pooled() const;

 private:
  std::shared_ptr<detail::BufferPool> pool_;
  std::atomic<std::uint64_t> version_{0};
};

}  // namespace middlefl::core
