// The MIDDLE training loop (paper Algorithm 1), scheduled per edge.
//
// Each time step advances through six named phases:
//
//   Select        every edge picks K of its connected devices (Eq. 12)
//   Distribute    selected devices download the edge model; devices that
//                 just moved blend it with the model they carried
//                 (on-device aggregation, Eq. 9)
//   LocalTrain    I local SGD steps per participating device
//   Upload        trained models go back over the wireless uplink
//   EdgeAggregate each edge FedAvgs the uploads that arrived (Eq. 6)
//   CloudSync     every T_c steps the cloud FedAvgs the edge models with
//                 participating-sample weights (Eq. 7) and broadcasts the
//                 global model down to every edge and device
//
// The phases are embarrassingly parallel PER EDGE: a device is connected
// to exactly one edge per step, cross-edge reads only touch the immutable
// begin-of-step snapshots, and edges couple only at cloud rounds. So
// instead of running six globally-barriered phase loops (4-5 pool joins a
// step), step() builds a sched::TaskGraph with ONE fused
// Select->Distribute->LocalTrain->Upload->EdgeAggregate chain per edge and
// joins the pool once; the only serial sections are the true dependencies
// — the mobility update and snapshotting at step begin, observer event
// replay, and the cloud sync every T_c steps.
//
// Parameters move as version-stamped copy-on-write snapshots
// (core::Snapshot): Distribute hands devices the edge's published block (a
// refcount bump, not a memcpy), a private copy materializes on the first
// write (blend or SGD step), aggregates are sealed into fresh blocks
// (never written over a possibly-shared buffer), and the broadcast after
// CloudSync is one publish shared by every tier.
//
// Every inter-tier model transfer flows through a typed transport::Link
// with its own policy (loss, compression, latency-in-steps delay queues,
// byte accounting). Registered StepObservers see exactly the serial event
// stream of the barriered pipeline: each chain records its traffic and
// blend/dropout outcomes in a private trace, and step() replays the merged
// events in canonical edge order at the serial point after the graph
// joins. All randomness is keyed on (seed, entity, step), link counters
// are commutative atomics, and every cross-chain reduction commits
// serially in fixed edge order, so results are bit-identical regardless of
// thread count (pinned by pipeline_test and determinism_test).
#pragma once

#include <functional>
#include <limits>
#include <memory>

#include "comm/communicator.hpp"
#include "comm/mailbox.hpp"
#include "core/algorithms.hpp"
#include "core/comm_stats.hpp"
#include "core/compression.hpp"
#include "core/entities.hpp"
#include "core/fleet.hpp"
#include "core/metrics.hpp"
#include "core/serving_config.hpp"
#include "core/similarity_cache.hpp"
#include "core/snapshot.hpp"
#include "core/step_observer.hpp"
#include "data/partition.hpp"
#include "mobility/mobility_model.hpp"
#include "nn/model_factory.hpp"
#include "obs/observability.hpp"
#include "optim/lr_schedule.hpp"
#include "optim/optimizer.hpp"
#include "parallel/thread_pool.hpp"
#include "sched/task_graph.hpp"
#include "transport/transport.hpp"

namespace middlefl::core {

struct SimulationConfig {
  std::size_t select_per_edge = 5;   // K
  std::size_t local_steps = 10;      // I
  std::size_t cloud_interval = 10;   // T_c
  std::size_t batch_size = 16;
  std::size_t total_steps = 1000;    // T
  /// Per-step learning rate; defaults to constant 0.01 (the paper's SGD
  /// setting) when empty.
  optim::LrSchedule lr_schedule;
  /// Clear momentum/Adam state whenever a device starts a round from a
  /// downloaded/blended model (the usual FL convention).
  bool reset_optimizer_each_round = true;
  /// Algorithm 1 lines 14-15: push the fresh global model to every device
  /// at sync. Disabling is an ablation that lets local models drift longer.
  bool broadcast_to_devices = true;
  /// Eq. 7 participating-sample weights d_hat_n; false = uniform edge
  /// weights (ablation 4 in DESIGN.md).
  bool weighted_cloud_aggregation = true;

  std::size_t eval_every = 10;
  /// Subsample size for periodic evaluation; 0 = the full test set.
  std::size_t eval_samples = 1000;
  bool track_per_class = false;
  /// Record each edge model's test accuracy at eval points.
  bool track_edge_accuracy = false;
  /// Master switch for the per-edge evaluation sweep: with it off,
  /// evaluate_now() only evaluates the cloud model even when
  /// track_edge_accuracy is set. Throughput benches turn it off — the
  /// edge sweep multiplies eval cost by num_edges for a curve they never
  /// consume.
  bool eval_edges = true;

  /// Per-link transport policies (loss, compression, latency) for the
  /// whole hierarchy. Defaults are perfect links.
  transport::TransportConfig transport;
  /// Legacy alias: populates transport.wireless_up.loss_prob when nonzero
  /// (straggler / radio failure injection on the uplink). The device still
  /// trains — its local model keeps the update — but the edge aggregates
  /// without it that step. After construction both views agree.
  double upload_failure_prob = 0.0;
  /// FedProx proximal coefficient for local training (0 = plain SGD).
  double prox_mu = 0.0;
  /// Global-norm gradient clipping threshold for local steps (0 = off).
  double clip_norm = 0.0;
  /// Server momentum (FedAvgM): the cloud applies
  /// v = m*v + (aggregate - w_c); w_c += v at each sync. 0 disables.
  double server_momentum = 0.0;

  /// System heterogeneity: relative compute speed per device (1.0 =
  /// nominal; empty = homogeneous). With a positive `round_deadline`, a
  /// selected device only completes min(I, floor(deadline * speed)) local
  /// steps within the time step; devices that cannot finish even one step
  /// are dropped from the round (counted by straggler_drops()). This
  /// models the paper's premise that "any device can complete the entire
  /// one-round process in a time step" breaking down on slow hardware.
  std::vector<double> device_speeds;
  /// Local steps a speed-1.0 device can complete per time step; 0 = no
  /// deadline (every device always finishes all I steps).
  double round_deadline = 0.0;
  /// Legacy alias: populates transport.wireless_up.compression when set.
  /// Lossy compression applied to device->edge uploads (the edge
  /// aggregates the reconstruction; upload_bytes() tracks the wire size).
  CompressionConfig upload_compression;

  /// Lazy-device machinery (core/fleet.hpp): virtual snapshot+delta
  /// devices with pooled training runtimes, on by default. The defaults
  /// (lossless at-rest codec) are bitwise identical to eager devices;
  /// fleet.lazy_devices = false restores the historical eager layout.
  FleetConfig fleet;

  /// Edge inference serving (src/serve): batch coalescing and runtime-pool
  /// sizing for the hub a serving-capable front end attaches. The
  /// simulator itself only republishes edge models through the sink hook.
  ServingConfig serving;

  /// Collectives layer (src/comm): reduction backend selection and the
  /// staleness-bounded semi-asynchronous edge->cloud sync. With
  /// comm.async_cloud off (the default) the pipeline is the barriered
  /// Algorithm 1 and results are bitwise identical to historical runs.
  /// Async mode is incompatible with server_momentum (FedAvgM needs the
  /// barriered aggregate-minus-global step) — the constructor throws.
  comm::CommConfig comm;

  std::uint64_t seed = 42;
  /// Run the per-edge task chains (and sharded evaluation) on the thread
  /// pool. Results are bitwise identical either way.
  bool parallel_devices = true;
  /// Pool for all intra-step parallelism; nullptr = the process-wide pool
  /// (parallel::ThreadPool::global()). Lets tests and benches pin exact
  /// worker counts without touching the shared pool.
  parallel::ThreadPool* pool = nullptr;
  /// Reuse Eq. 11 selection scores across steps for (device, cloud)
  /// version pairs that have not changed. Pure acceleration: scores are
  /// bitwise identical with the cache on or off.
  bool use_similarity_cache = true;
};

/// Folds the legacy uplink spellings (`upload_failure_prob`,
/// `upload_compression`) into `transport.wireless_up` — the single
/// normalization point for both the Simulation constructor and the config
/// loader. Setting BOTH views to different nonzero/non-kNone values is a
/// hard error (std::invalid_argument) instead of silent last-writer-wins;
/// afterwards the legacy fields mirror the effective per-link policy, so
/// the call is idempotent.
void reconcile_uplink_aliases(SimulationConfig& cfg);

class Simulation {
 public:
  /// `partition.device_indices.size()` fixes the device count and must
  /// match `mobility->num_devices()`. All models start from one common
  /// initialization drawn from cfg.seed.
  Simulation(SimulationConfig cfg, const nn::ModelSpec& model_spec,
             const optim::Optimizer& optimizer_prototype,
             const data::Dataset& train, const data::Partition& partition,
             const data::Dataset& test,
             std::unique_ptr<mobility::MobilityModel> mobility,
             AlgorithmSpec algorithm);

  /// Advances one time step (t starts at 1): per-edge task chains on the
  /// pool, then event replay, then the serial cloud sync when due.
  /// Returns true if a cloud synchronization happened this step.
  bool step();

  /// Runs the remaining steps up to cfg.total_steps, evaluating on the
  /// configured schedule. `progress` (optional) is invoked after each
  /// evaluation with the fresh point.
  RunHistory run(
      const std::function<void(const EvalPoint&)>& progress = nullptr);

  /// Evaluates the current global model immediately and appends the point
  /// to the history.
  const EvalPoint& evaluate_now();

  /// Warm start: installs `params` (e.g. a loaded checkpoint) as the global
  /// model on the cloud, every edge and every device, exactly like a cloud
  /// synchronization broadcast — one published snapshot shared by every
  /// tier. Size must equal the model's param count. An out-of-band
  /// operator action, not network traffic: no link is charged.
  void warm_start(std::span<const float> params);

  /// Registers an observer (non-owning; must outlive the simulation).
  /// Events fire on the simulation thread in registration order, after the
  /// built-in communication accounting.
  void add_observer(StepObserver* observer);

  /// Attaches the observability bundle (all recorders non-owning, any
  /// subset may be null; they must outlive the simulation). Fans the trace
  /// recorder out to the task graph and evaluator and registers the
  /// simulator's metric ids. With every pointer null (the default) the
  /// instrumentation collapses to one branch per step — no clock reads —
  /// and recording never mutates simulation state or consumes RNG draws,
  /// so instrumented runs are bit-identical to bare ones.
  void set_observability(const obs::Observability& obs);
  const obs::Observability& observability() const noexcept { return obs_; }

  /// Attaches the serving hot-swap hook (non-owning; nullptr detaches; the
  /// sink must outlive the simulation or be detached first). Every edge's
  /// CURRENT model is published immediately, then republished whenever it
  /// changes: at the end of its EdgeAggregate (inside that edge's chain —
  /// one writer per edge) and after the CloudSync broadcast (serial).
  /// Publication shares immutable blocks and consumes no RNG draws, so
  /// attaching a sink never perturbs training (pinned by serve_test).
  void set_edge_model_sink(EdgeModelSink* sink);

  /// Wall-microsecond totals of one step's phases: the five fused chain
  /// phases summed across edges, the serial cloud sync, and the serial
  /// prologue split into the mobility advance and the per-edge membership
  /// update. Filled only while observability is attached (all zeros on
  /// bare runs — timing is part of the obs-off "no clock reads" contract).
  struct StepPhaseUs {
    double mobility = 0.0;
    double membership = 0.0;
    double select = 0.0;
    double distribute = 0.0;
    double local_train = 0.0;
    double upload = 0.0;
    double edge_aggregate = 0.0;
    double cloud_sync = 0.0;
  };

  // --- Introspection (benches, tests) ---
  std::size_t current_step() const noexcept { return t_; }
  /// Phase breakdown of the LAST step (see StepPhaseUs for the contract).
  const StepPhaseUs& last_step_phase_us() const noexcept {
    return last_phase_us_;
  }
  /// Devices connected to each edge as of the last step, ascending by id —
  /// the incrementally-patched membership lists candidate sets build from.
  const std::vector<std::vector<std::size_t>>& edge_members() const noexcept {
    return members_;
  }
  std::size_t num_devices() const noexcept { return registry_.size(); }
  std::size_t num_edges() const noexcept { return edges_.size(); }
  std::span<const float> cloud_params() const { return cloud_.params(); }
  std::span<const float> edge_params(std::size_t n) const {
    return edges_.at(n).params();
  }
  Device& device(std::size_t m) { return registry_.at(m); }
  /// The sharded device registry: fleet accounting (materializations,
  /// resident peaks, at-rest bytes) lives here.
  const DeviceRegistry& fleet() const noexcept { return registry_; }
  const std::vector<std::size_t>& assignment() const {
    return mobility_->assignment();
  }
  /// Devices selected at the last step, grouped by edge.
  const std::vector<std::vector<std::size_t>>& last_selection() const {
    return last_selection_;
  }
  const RunHistory& history() const noexcept { return history_; }
  Evaluator& evaluator() noexcept { return *evaluator_; }
  const SimulationConfig& config() const noexcept { return cfg_; }

  /// The typed links every model transfer flows through; per-link traffic
  /// reports live here (transport().bytes_by_link()).
  transport::Transport& transport() noexcept { return *transport_; }
  const transport::Transport& transport() const noexcept {
    return *transport_;
  }

  /// Model-transfer counters accumulated since construction (rebuilt from
  /// pipeline events by the built-in CommStatsObserver).
  const CommStats& comm_stats() const noexcept {
    return comm_observer_.stats();
  }
  /// Uploads dropped by the wireless uplink's loss policy so far.
  std::size_t failed_uploads() const noexcept {
    return transport_->stats(transport::LinkKind::kWirelessUp).dropped;
  }
  /// Edge-model downloads lost to the wireless downlink's loss policy so
  /// far; the affected device sits the round out.
  std::size_t lost_downloads() const noexcept {
    return transport_->stats(transport::LinkKind::kWirelessDown).dropped;
  }
  /// Selected devices dropped because they could not finish one local step
  /// before the round deadline.
  std::size_t straggler_drops() const noexcept { return straggler_drops_; }
  /// Simulated device->edge uplink bytes (after compression) so far.
  std::size_t upload_bytes() const noexcept {
    return transport_->stats(transport::LinkKind::kWirelessUp).bytes;
  }

  /// Mean total-variation skew of the CURRENT per-edge data mixtures
  /// relative to the global mixture (see core::mean_edge_skew).
  double current_edge_skew() const;

  /// Count of on-device aggregations applied so far and the running mean
  /// blend weight given to the carried local model.
  std::size_t on_device_aggregations() const noexcept { return blends_; }
  double mean_blend_weight() const noexcept {
    return blends_ == 0 ? 0.0 : blend_weight_sum_ / static_cast<double>(blends_);
  }
  /// Selection-score cache hit/miss counters (throughput introspection).
  const SimilarityCache& similarity_cache() const noexcept {
    return similarity_cache_;
  }

  /// The collectives backend every edge and cloud aggregation routes
  /// through (the seam a future multi-process backend plugs into).
  const comm::Communicator& communicator() const noexcept {
    return *communicator_;
  }
  /// Reduction counters (count, task totals, deepest tree) since
  /// construction.
  comm::CommCounters comm_reduce_counters() const noexcept {
    return communicator_->counters();
  }
  /// Semi-async sync counters (published/applied/deferred/dropped-stale);
  /// all zero when comm.async_cloud is off. Cross-checks: published equals
  /// the WAN-uplink transfer count, applied equals the summed contributing
  /// counts reported through StepObserver::on_cloud_sync.
  const comm::AsyncStats& async_stats() const noexcept {
    return async_stats_;
  }

 private:
  /// Everything a fused edge chain must not publish directly while other
  /// chains run: its exact link traffic (mirrored by SendContext::tally),
  /// dropout counts and ordered blend weights. step() replays the merged
  /// events from these in canonical edge order at the serial point after
  /// the graph joins, so observers see the barriered pipeline's stream.
  struct EdgeTrace {
    transport::LinkStats down;   // wireless downlink traffic of this chain
    transport::LinkStats carry;  // carry-link traffic of this chain
    transport::LinkStats up;     // wireless uplink traffic of this chain
    /// WAN-uplink traffic of this chain's async publish (comm.async_cloud
    /// only; sync mode sends WAN traffic from the serial stage directly).
    transport::LinkStats wan;
    std::size_t stragglers = 0;
    std::size_t lost_downloads = 0;
    /// Blend weights in selection order (the canonical reduction order).
    std::vector<double> blend_weights;
    /// Per-phase wall microseconds of this chain (Select..EdgeAggregate),
    /// filled only when observability is attached; replay sums them.
    double phase_us[5] = {};
  };

  /// Per-step event totals captured by replay_step_events() for the
  /// end-of-step observability flush (cheap plain writes, kept current
  /// even when observability is off).
  struct StepEventSummary {
    std::size_t stragglers = 0;
    std::size_t lost_downloads = 0;
    std::size_t blends = 0;
    double blend_weight = 0.0;
    double phase_us[5] = {};
  };

  /// Metric ids registered once by set_observability().
  struct SimMetricIds {
    obs::MetricsRegistry::MetricId steps = 0;
    obs::MetricsRegistry::MetricId cloud_syncs = 0;
    obs::MetricsRegistry::MetricId selected = 0;
    obs::MetricsRegistry::MetricId stragglers = 0;
    obs::MetricsRegistry::MetricId lost_downloads = 0;
    obs::MetricsRegistry::MetricId blends = 0;
    obs::MetricsRegistry::MetricId evaluations = 0;
    obs::MetricsRegistry::MetricId step_ms = 0;  // histogram
    obs::MetricsRegistry::MetricId fleet_materializations = 0;
    obs::MetricsRegistry::MetricId fleet_resident = 0;     // gauge
    obs::MetricsRegistry::MetricId fleet_delta_bytes = 0;  // gauge
    obs::MetricsRegistry::MetricId comm_reduces = 0;
    obs::MetricsRegistry::MetricId comm_reduce_depth = 0;  // gauge
    obs::MetricsRegistry::MetricId comm_published = 0;
    obs::MetricsRegistry::MetricId comm_applied = 0;
    obs::MetricsRegistry::MetricId comm_deferred = 0;
    obs::MetricsRegistry::MetricId comm_dropped_stale = 0;
  };

  // Serial step prologue: mobility advance, per-edge membership, immutable
  // edge snapshots, on_step_begin.
  void begin_step();
  // The fused per-edge task: Select -> Distribute -> LocalTrain -> Upload
  // -> EdgeAggregate for edge n, touching only edge-n/device-owned state.
  void edge_chain(std::size_t n);
  void select_edge(std::size_t n);
  void distribute_edge(std::size_t n, EdgeTrace& trace);
  void train_edge(std::size_t n);
  void upload_edge(std::size_t n, EdgeTrace& trace);
  void aggregate_edge(std::size_t n);
  // De-materializes every resident member of edge n back to
  // snapshot + at-rest delta. Runs inside the chain right after
  // aggregation — the arrivals aggregated there alias resident buffers.
  void settle_edge(std::size_t n);
  // Serial replay of the chains' events in canonical order, plus the
  // ordered blend/straggler reductions.
  void replay_step_events();
  void stage_cloud_sync();
  // Async mode (comm.async_cloud): the edge's end-of-chain WAN publish —
  // send over wan_up (shard n, so concurrent chains never contend) and
  // post the result into the cloud mailbox; resets participation.
  void publish_edge(std::size_t n, EdgeTrace& trace);
  // Async mode's serial apply point, run EVERY step: consumes mailbox
  // posts and due delay-queue arrivals, applies the staleness-weighted
  // bounded-stale batch to the global model without a global barrier.
  // Returns true if the global model changed this step.
  bool stage_cloud_sync_async();
  // End-of-step observability flush (serial point): the step span, metric
  // increments and the JSONL step record. Called only when obs_.enabled().
  void finish_step_obs(bool sync, obs::TraceRecorder::Clock::time_point begin,
                       double sync_us);

  /// Adopts `source` when the delivered payload is a lossless pass-through
  /// of its block (zero-copy sharing); installs a private copy otherwise.
  /// Returns true on the shared-adopt path — false means set_params ran
  /// and a lazy device may now hold a resident buffer.
  bool install_download(Device& device, std::span<const float> payload,
                        const Snapshot& source);
  /// Full membership rebuild from the assignment (first step, untracked
  /// movers, or churn past the patch/rebuild crossover).
  void rebuild_members(const std::vector<std::size_t>& assignment);
  /// Patches members_ from the mover delta: each mover is removed from its
  /// previous edge's list and merged into its new one, preserving the
  /// canonical ascending-id order; clean edges keep their lists untouched.
  void patch_members(const std::vector<std::size_t>& assignment,
                     const std::vector<std::size_t>& movers);

  void notify_phase(StepPhase phase);
  void notify_transfers(StepPhase phase, transport::LinkKind kind,
                        const transport::LinkStats& delta);

  SimulationConfig cfg_;
  AlgorithmSpec algorithm_;
  DeviceRegistry registry_;
  std::vector<Edge> edges_;
  Cloud cloud_;
  std::unique_ptr<mobility::MobilityModel> mobility_;
  std::unique_ptr<Evaluator> evaluator_;
  std::unique_ptr<transport::Transport> transport_;
  parallel::StreamRng streams_;
  /// Resolved from cfg (parallel_devices / pool); nullptr = fully serial.
  parallel::ThreadPool* pool_ = nullptr;
  sched::TaskGraph graph_;
  std::size_t param_count_ = 0;
  std::size_t t_ = 0;
  std::vector<std::vector<std::size_t>> last_selection_;
  std::vector<std::size_t> prev_assignment_;
  // Edge models of this step (w^t_n) as O(1) shared snapshots, taken at
  // step begin so training initialization and FedMes' prev-edge lookup
  // never observe partial aggregation — including across concurrently
  // running chains, since a chain publishes a NEW block instead of
  // mutating the snapshotted one.
  std::vector<Snapshot> edge_snapshot_;
  SimilarityCache similarity_cache_;
  // Step-scratch state, all indexed per edge (each chain writes only its
  // own slot) or per device (each device belongs to one chain), reused
  // across steps to keep the hot loop allocation-light.
  std::vector<std::vector<std::size_t>> members_;
  /// False until the first full rebuild seeds members_ for patching.
  bool members_ready_ = false;
  /// Membership-patch scratch (sized lazily, reused across steps): mover
  /// flags per device, per-edge arrival lists, and the dirty-edge set.
  std::vector<std::uint8_t> moved_flag_;
  std::vector<std::vector<std::size_t>> arrivals_by_edge_;
  std::vector<std::uint8_t> edge_dirty_;
  std::vector<std::size_t> dirty_edges_;
  /// True when this step's settle must scan every member: the selection
  /// strategy materializes candidate params, or the last broadcast
  /// installed private copies (fleet_scan_needed_). Otherwise only
  /// selected devices can be resident and settle_edge walks O(K) ids.
  bool settle_scan_members_ = true;
  /// Latched by a lossy/compressed broadcast (set_params on arbitrary
  /// devices); consumed by the next begin_step.
  bool fleet_scan_needed_ = false;
  std::vector<std::vector<Candidate>> candidates_;
  std::vector<EdgeTrace> traces_;
  // Per-edge upload arrivals feeding EdgeAggregate: payload views into
  // device params, per-edge reconstruction arenas (compressed uploads), or
  // stale uplink arrivals drained from the delay queue.
  struct UploadArrival {
    std::span<const float> payload;
    double weight = 0.0;
  };
  std::vector<std::vector<UploadArrival>> arrivals_;
  std::vector<std::vector<std::vector<float>>> recon_arena_;
  std::vector<std::vector<transport::Arrival>> stale_uploads_;
  // CloudSync scratch: stale WAN arrivals and compressed-reconstruction
  // storage (serial stage, one of each).
  std::vector<transport::Arrival> wan_stale_;
  std::vector<std::vector<float>> wan_arena_;
  // Collectives backend: all edge and cloud aggregations reduce through
  // it (in-process today; the Communicator interface is the seam for a
  // multi-process backend).
  std::unique_ptr<comm::InProcessCommunicator> communicator_;
  // Async mode: one version-stamped contribution an edge chain publishes
  // at its round boundary; consumed serially by stage_cloud_sync_async.
  struct CloudContribution {
    Snapshot shared;           // lossless pass-through: share the block
    std::vector<float> owned;  // otherwise: the reconstructed payload
    double weight = 0.0;
    std::uint64_t round = 0;     // sent_step / T_c, for staleness
    std::size_t sent_step = 0;
    std::uint64_t version = 0;   // edge model version at publish
    bool queued = false;         // in the WAN delay queue, arrives later
    bool dropped = false;        // lost to the WAN loss policy
    std::span<const float> view() const noexcept {
      return shared != nullptr ? shared->span()
                               : std::span<const float>(owned);
    }
  };
  comm::Mailbox<CloudContribution> cloud_mailbox_;
  comm::AsyncStats async_stats_;
  // Per-edge async bookkeeping. fold_credit_ carries the weight of
  // contributions dropped past the staleness bound into the edge's next
  // accepted one. The anchor_* arrays remember each edge's last applied
  // (raw weight, round): when a new batch lands, still-fresh absent edges
  // anchor the current global with their decayed weight so one straggler
  // batch cannot wipe the mass already folded in.
  std::vector<double> fold_credit_;
  std::vector<double> anchor_weight_;
  std::vector<std::uint64_t> anchor_round_;
  std::vector<std::uint8_t> anchor_valid_;
  RunHistory history_;
  std::size_t blends_ = 0;
  double blend_weight_sum_ = 0.0;
  obs::Observability obs_;
  EdgeModelSink* serving_sink_ = nullptr;
  SimMetricIds metric_ids_;
  StepEventSummary last_events_;
  StepPhaseUs last_phase_us_;
  std::size_t last_sync_contributing_ = 0;
  // Link totals at step begin; the JSONL record logs this step's delta.
  std::vector<transport::Transport::LinkReport> prev_links_;
  // Fleet counter at step begin (observed steps), for the per-step delta.
  std::uint64_t prev_materializations_ = 0;
  // Comm counters at step begin (observed steps), for per-step deltas.
  comm::CommCounters prev_comm_counters_;
  comm::AsyncStats prev_async_stats_;
  CommStatsObserver comm_observer_;
  std::vector<StepObserver*> observers_;
  std::vector<float> server_velocity_;
  std::vector<std::size_t> steps_budget_;  // per-device local-step budget
  // One byte per device, NOT vector<bool>: flags are written concurrently
  // from the parallel chains and bit-packed writes would race.
  std::vector<std::uint8_t> dropped_this_step_;
  std::vector<std::uint8_t> download_lost_;
  std::size_t straggler_drops_ = 0;
};

}  // namespace middlefl::core
